// Figure 2: baseline scAtteR performance on the edge.
//
// Reproduces the six panels — FPS, E2E latency, service latency (and
// per-service memory, CPU%, GPU% stacked by service) — for the four
// placements C1, C2, C12, C21 with 1-4 concurrent clients.
//
// Expected shape (paper §4): all configs reach >=25 FPS at ~40 ms E2E
// with one client; FPS collapses with concurrent clients because of the
// sift<->matching dependency loop; CPU/GPU utilization *declines* under
// overload while sift's memory grows from orphaned state.
//
// Every run is traced, and the per-stage service latency derived from
// matched trace spans is cross-checked against the counter-based
// HostStats aggregates — the two measurement paths must agree within
// 1%, which pins the tracer's span boundaries to exactly what the
// histograms sample. Pass a path argument to also dump the final run's
// trace (Perfetto-loadable).
#include <cmath>
#include <cstdio>
#include <sstream>

#include "bench/fig_util.h"
#include "expt/forensics.h"
#include "telemetry/trace.h"

using namespace mar;
using namespace mar::bench;

namespace {

// Trace-derived analogue of ExperimentResult::stage_service_ms(): mean
// span latency per replica, averaged over the stage's active replicas.
double trace_stage_service_ms(const telemetry::Tracer& tracer, SimTime window_start,
                              Stage stage) {
  const auto per_replica =
      tracer.replica_spans(telemetry::spans::kService, window_start);
  double sum = 0.0;
  int n = 0;
  for (const auto& r : per_replica) {
    if (r.stage == stage && r.ms.count() > 0 && r.ms.mean() > 0.0) {
      sum += r.ms.mean();
      ++n;
    }
  }
  return n ? sum / n : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Figure 2: scAtteR baseline on edge (placements x 1-4 clients)\n");

  auto& tracer = telemetry::Tracer::instance();
  tracer.reserve(1u << 20);
  tracer.set_enabled(true);

  const auto placements = baseline_placements();
  constexpr int kMaxClients = 4;

  // results[placement][clients-1]
  std::vector<std::vector<ExperimentResult>> results(placements.size());
  double worst_rel_err = 0.0;
  std::string worst_label;

  expt::print_banner("Trace vs counter cross-check (per-stage service ms)");
  Table xcheck({"run", "stage", "counter ms", "trace ms", "delta %"});

  for (std::size_t p = 0; p < placements.size(); ++p) {
    for (int n = 1; n <= kMaxClients; ++n) {
      ExperimentConfig cfg;
      cfg.mode = core::PipelineMode::kScatter;
      cfg.placement = placements[p].placement;
      cfg.num_clients = n;
      cfg.seed = 1000 + p * 10 + static_cast<std::size_t>(n);

      // One trace buffer per run; warmup events stay in the buffer so
      // spans that straddle the window boundary still pair, mirroring
      // how the histograms see them.
      tracer.clear();
      expt::Experiment e(cfg);
      e.run();
      const ExperimentResult r = e.result();

      for (Stage s : kStages) {
        const double counter_ms = r.stage_service_ms(s);
        if (counter_ms <= 0.0) continue;
        const double trace_ms = trace_stage_service_ms(tracer, e.window_start(), s);
        const double rel = std::abs(trace_ms - counter_ms) / counter_ms;
        const std::string label =
            placements[p].name + " n=" + std::to_string(n) + " " + to_string(s);
        if (rel > worst_rel_err) {
          worst_rel_err = rel;
          worst_label = label;
        }
        if (rel > 0.01 || (p == 0 && n == 1)) {
          xcheck.add_row({placements[p].name + " n=" + std::to_string(n), to_string(s),
                          Table::num(counter_ms, 3), Table::num(trace_ms, 3),
                          Table::num(rel * 100.0, 3)});
        }
      }
      results[p].push_back(r);
    }
  }
  xcheck.print();
  std::printf("worst trace/counter deviation: %.4f%% (%s)\n", worst_rel_err * 100.0,
              worst_label.empty() ? "-" : worst_label.c_str());

  auto qos_table = [&](const char* title, auto metric, int precision) {
    expt::print_banner(title);
    std::vector<std::string> cols{"clients"};
    for (const auto& np : placements) cols.push_back(np.name);
    Table t(cols);
    for (int n = 1; n <= kMaxClients; ++n) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::size_t p = 0; p < placements.size(); ++p) {
        row.push_back(Table::num(metric(results[p][n - 1]), precision));
      }
      t.add_row(std::move(row));
    }
    t.print();
  };

  qos_table("FPS (successful frames/s per client)",
            [](const ExperimentResult& r) { return r.fps_mean; }, 1);
  qos_table("E2E latency (ms, mean)",
            [](const ExperimentResult& r) { return r.e2e_ms_mean; }, 1);
  qos_table("Service latency (ms, sum of per-stage means)",
            [](const ExperimentResult& r) {
              double sum = 0.0;
              for (Stage s : kStages) sum += r.stage_service_ms(s);
              return sum;
            },
            1);
  qos_table("Frame success rate (%)",
            [](const ExperimentResult& r) { return r.success_rate * 100.0; }, 1);

  // Stacked per-service hardware panels, one table per placement.
  for (std::size_t p = 0; p < placements.size(); ++p) {
    expt::print_banner("Per-service resources — " + placements[p].name);
    Table t(service_columns("clients/metric"));
    for (int n = 1; n <= kMaxClients; ++n) {
      const ExperimentResult& r = results[p][n - 1];
      std::vector<std::string> mem{"n=" + std::to_string(n) + " mem(GB)"};
      std::vector<std::string> cpu{"n=" + std::to_string(n) + " cpu(%)"};
      std::vector<std::string> gpu{"n=" + std::to_string(n) + " gpu(%)"};
      for (Stage s : kStages) {
        mem.push_back(Table::num(r.stage_mem_gb(s), 2));
        cpu.push_back(Table::num(r.stage_cpu_share(s) * 100.0, 2));
        gpu.push_back(Table::num(r.stage_gpu_share(s) * 100.0, 2));
      }
      t.add_row(std::move(mem));
      t.add_row(std::move(cpu));
      t.add_row(std::move(gpu));
    }
    t.print();
  }

  // Optional: dump the final run's trace for Perfetto inspection.
  if (argc > 1 && tracer.write_chrome_trace(argv[1])) {
    std::printf("wrote %s (final run, %zu events)\n", argv[1], tracer.size());
  }

  // Machine-readable summary for downstream plotting/regression checks.
  {
    std::ostringstream json;
    json << "{\n  \"figure\": \"fig2_baseline_edge\",\n  \"worst_trace_rel_err\": "
         << jnum(worst_rel_err) << ",\n  \"placements\": [";
    for (std::size_t p = 0; p < placements.size(); ++p) {
      json << (p ? ",\n    " : "\n    ") << "{\"name\": " << jstr(placements[p].name)
           << ", \"runs\": [";
      for (int n = 1; n <= kMaxClients; ++n) {
        const ExperimentResult& r = results[p][static_cast<std::size_t>(n - 1)];
        json << (n > 1 ? ", " : "") << "{\"clients\": " << n
             << ", \"fps\": " << jnum(r.fps_mean) << ", \"e2e_ms\": " << jnum(r.e2e_ms_mean)
             << ", \"success_rate\": " << jnum(r.success_rate)
             << ", \"sift_mem_gb\": " << jnum(r.stage_mem_gb(Stage::kSift)) << "}";
      }
      json << "]}";
    }
    json << "\n  ]\n}\n";
    if (write_text_file("BENCH_fig2_baseline_edge.json", json.str())) {
      std::printf("wrote BENCH_fig2_baseline_edge.json\n");
    }
  }

  // Frame forensics epilogue: name the final run's worst frames,
  // reconstructed hop by hop from its retained traces. Stdout only —
  // the JSON above is already written and stays byte-identical.
  {
    const expt::TraceLog log = expt::from_tracer(tracer);
    expt::print_banner("Worst frames of the final run (frame forensics)");
    for (std::uint32_t id : expt::worst_trace_ids(log, 3)) {
      if (const auto tl = expt::reconstruct_frame(log, id)) {
        std::fputs(expt::render_timeline(*tl).c_str(), stdout);
        std::fputc('\n', stdout);
      }
    }
  }

  if (worst_rel_err > 0.01) {
    std::fprintf(stderr,
                 "FAIL: trace-derived service latency deviates %.3f%% (> 1%%) from "
                 "counters (%s)\n",
                 worst_rel_err * 100.0, worst_label.c_str());
    return 1;
  }
  std::printf("trace/counter cross-check PASSED (<= 1%%)\n");
  return 0;
}
