// Figure 2: baseline scAtteR performance on the edge.
//
// Reproduces the six panels — FPS, E2E latency, service latency (and
// per-service memory, CPU%, GPU% stacked by service) — for the four
// placements C1, C2, C12, C21 with 1-4 concurrent clients.
//
// Expected shape (paper §4): all configs reach >=25 FPS at ~40 ms E2E
// with one client; FPS collapses with concurrent clients because of the
// sift<->matching dependency loop; CPU/GPU utilization *declines* under
// overload while sift's memory grows from orphaned state.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Figure 2: scAtteR baseline on edge (placements x 1-4 clients)\n");

  const auto placements = baseline_placements();
  constexpr int kMaxClients = 4;

  // results[placement][clients-1]
  std::vector<std::vector<ExperimentResult>> results(placements.size());
  for (std::size_t p = 0; p < placements.size(); ++p) {
    for (int n = 1; n <= kMaxClients; ++n) {
      ExperimentConfig cfg;
      cfg.mode = core::PipelineMode::kScatter;
      cfg.placement = placements[p].placement;
      cfg.num_clients = n;
      cfg.seed = 1000 + p * 10 + static_cast<std::size_t>(n);
      results[p].push_back(expt::run_experiment(cfg));
    }
  }

  auto qos_table = [&](const char* title, auto metric, int precision) {
    expt::print_banner(title);
    std::vector<std::string> cols{"clients"};
    for (const auto& np : placements) cols.push_back(np.name);
    Table t(cols);
    for (int n = 1; n <= kMaxClients; ++n) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::size_t p = 0; p < placements.size(); ++p) {
        row.push_back(Table::num(metric(results[p][n - 1]), precision));
      }
      t.add_row(std::move(row));
    }
    t.print();
  };

  qos_table("FPS (successful frames/s per client)",
            [](const ExperimentResult& r) { return r.fps_mean; }, 1);
  qos_table("E2E latency (ms, mean)",
            [](const ExperimentResult& r) { return r.e2e_ms_mean; }, 1);
  qos_table("Service latency (ms, sum of per-stage means)",
            [](const ExperimentResult& r) {
              double sum = 0.0;
              for (Stage s : kStages) sum += r.stage_service_ms(s);
              return sum;
            },
            1);
  qos_table("Frame success rate (%)",
            [](const ExperimentResult& r) { return r.success_rate * 100.0; }, 1);

  // Stacked per-service hardware panels, one table per placement.
  for (std::size_t p = 0; p < placements.size(); ++p) {
    expt::print_banner("Per-service resources — " + placements[p].name);
    Table t(service_columns("clients/metric"));
    for (int n = 1; n <= kMaxClients; ++n) {
      const ExperimentResult& r = results[p][n - 1];
      std::vector<std::string> mem{"n=" + std::to_string(n) + " mem(GB)"};
      std::vector<std::string> cpu{"n=" + std::to_string(n) + " cpu(%)"};
      std::vector<std::string> gpu{"n=" + std::to_string(n) + " gpu(%)"};
      for (Stage s : kStages) {
        mem.push_back(Table::num(r.stage_mem_gb(s), 2));
        cpu.push_back(Table::num(r.stage_cpu_share(s) * 100.0, 2));
        gpu.push_back(Table::num(r.stage_gpu_share(s) * 100.0, 2));
      }
      t.add_row(std::move(mem));
      t.add_row(std::move(cpu));
      t.add_row(std::move(gpu));
    }
    t.print();
  }

  return 0;
}
