// Figure 5: resource utilization vs concurrent clients, scAtteR vs
// scAtteR++ on the C2 placement (all services on E2).
//
// Reproduces the paper's CPU% / GPU% / memory characterization as the
// client count climbs past the collapse point:
//
//  * scAtteR's sift memory blows up with clients (orphaned feature
//    state accumulates in the store until the sweep timeout reclaims
//    it) while every other stage stays flat — and the blow-up is
//    decoupled from delivered work: GB per delivered FPS explodes as
//    throughput collapses.
//  * scAtteR++'s sift memory instead grows by a *constant* per-client
//    increment (the sidecar's pre-allocated ingress buffers) — big,
//    but provisioned, not leaked.
//  * the bottleneck accelerator (sift's GPU) saturates *below* full
//    under scAtteR and dips past the collapse point (frames die in
//    queues before reaching compute), while scAtteR++'s sidecar
//    admission keeps it pinned at capacity.
//
// The per-second utilization timelines come from the read-only
// ResourcePool sampler (ExperimentConfig::utilization_sample_interval),
// the same data the live /metrics plane exposes; peaks come from the
// pools' high-water marks. Emits BENCH_fig5_utilization.json.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

namespace {

constexpr int kMaxClients = 6;

struct RunSummary {
  int clients = 0;
  double fps = 0.0;
  double e2e_ms = 0.0;
  double cpu_util = 0.0;      // E2 mean over the window
  double cpu_peak = 0.0;      // E2 peak cores in use / capacity
  double gpu_util = 0.0;
  double mem_gb = 0.0;        // E2 mean resident memory
  double mem_gb_peak = 0.0;   // E2 high-water
  double sift_mem_gb = 0.0;   // sift replicas' mean resident memory
  double other_mem_gb = 0.0;  // every non-sift stage's memory summed
  expt::MachineTimeline e2_timeline;
};

const expt::MachineReport* find_machine(const ExperimentResult& r, const std::string& name) {
  for (const auto& m : r.machines) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

RunSummary run_one(core::PipelineMode mode, int clients, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.mode = mode;
  cfg.placement = SymbolicPlacement::single(Site::kE2);
  cfg.num_clients = clients;
  cfg.seed = seed;
  cfg.utilization_sample_interval = seconds(1.0);
  const ExperimentResult r = expt::run_experiment(cfg);

  RunSummary s;
  s.clients = clients;
  s.fps = r.fps_mean;
  s.e2e_ms = r.e2e_ms_mean;
  s.sift_mem_gb = r.stage_mem_gb(Stage::kSift);
  for (Stage st : {Stage::kPrimary, Stage::kEncoding, Stage::kLsh, Stage::kMatching}) {
    s.other_mem_gb += r.stage_mem_gb(st);
  }
  if (const expt::MachineReport* e2 = find_machine(r, "E2")) {
    s.cpu_util = e2->cpu_util;
    s.cpu_peak = e2->cpu_peak;
    s.gpu_util = e2->gpu_util;
    s.mem_gb = e2->mem_gb_mean;
    s.mem_gb_peak = e2->mem_gb_peak;
  }
  for (const expt::MachineTimeline& t : r.timelines) {
    if (t.machine == "E2") s.e2_timeline = t;
  }
  return s;
}

std::string timeline_json(const expt::MachineTimeline& t) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < t.points.size(); ++i) {
    const expt::UtilizationPoint& p = t.points[i];
    out << (i ? ", " : "") << "{\"t_s\": " << jnum(p.t_s) << ", \"cpu\": " << jnum(p.cpu)
        << ", \"gpu\": " << jnum(p.gpu) << ", \"mem_gb\": " << jnum(p.mem_gb)
        << ", \"state_gb\": " << jnum(p.state_gb) << "}";
  }
  out << "]";
  return out.str();
}

}  // namespace

int main() {
  std::printf("Figure 5: CPU/GPU/memory vs clients, scAtteR vs scAtteR++ on C2\n");

  const struct {
    const char* name;
    core::PipelineMode mode;
  } systems[] = {
      {"scAtteR", core::PipelineMode::kScatter},
      {"scAtteR++", core::PipelineMode::kScatterPP},
  };

  std::vector<std::vector<RunSummary>> runs(2);
  for (std::size_t sys = 0; sys < 2; ++sys) {
    for (int n = 1; n <= kMaxClients; ++n) {
      runs[sys].push_back(
          run_one(systems[sys].mode, n, 5000 + sys * 100 + static_cast<std::uint64_t>(n)));
    }
  }

  for (std::size_t sys = 0; sys < 2; ++sys) {
    expt::print_banner(std::string("E2 utilization — ") + systems[sys].name);
    Table t({"clients", "fps", "cpu(%)", "cpu peak(%)", "gpu(%)", "mem(GB)", "mem peak(GB)",
             "sift mem(GB)"});
    for (const RunSummary& s : runs[sys]) {
      t.add_row({std::to_string(s.clients), Table::num(s.fps, 1),
                 Table::num(s.cpu_util * 100.0, 1), Table::num(s.cpu_peak * 100.0, 1),
                 Table::num(s.gpu_util * 100.0, 1), Table::num(s.mem_gb, 2),
                 Table::num(s.mem_gb_peak, 2), Table::num(s.sift_mem_gb, 3)});
    }
    t.print();
  }

  // --- Qualitative gates (paper's shape, not exact numbers) ----------
  const std::vector<RunSummary>& sc = runs[0];    // scAtteR
  const std::vector<RunSummary>& scpp = runs[1];  // scAtteR++
  int failures = 0;
  auto gate = [&](bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  };

  expt::print_banner("Qualitative gates");

  // 1. scAtteR's sift memory blows up with clients (orphaned state)
  //    while every other stage stays flat.
  gate(sc.back().sift_mem_gb >= sc.front().sift_mem_gb * 3.0 &&
           sc.back().other_mem_gb <= sc.front().other_mem_gb * 1.3 + 0.05,
       "scAtteR sift memory blows up, other stages flat (sift " +
           jnum(sc.front().sift_mem_gb) + " -> " + jnum(sc.back().sift_mem_gb) +
           " GB; others " + jnum(sc.front().other_mem_gb) + " -> " +
           jnum(sc.back().other_mem_gb) + " GB)");

  // 2. The blow-up is decoupled from delivered work: GB held per
  //    delivered FPS explodes as throughput collapses.
  const double gb_per_fps_1 = sc.front().fps > 0 ? sc.front().sift_mem_gb / sc.front().fps : 0;
  const double gb_per_fps_n = sc.back().fps > 0 ? sc.back().sift_mem_gb / sc.back().fps : 0;
  gate(gb_per_fps_1 > 0 && gb_per_fps_n >= gb_per_fps_1 * 5.0,
       "scAtteR sift GB per delivered FPS explodes (" + jnum(gb_per_fps_1) + " -> " +
           jnum(gb_per_fps_n) + " GB/FPS)");

  // 3. scAtteR++'s sift memory grows by a roughly constant per-client
  //    increment (the sidecar's pre-allocated ingress buffers) — no
  //    accelerating orphan growth.
  double min_marg = 1e9, max_marg = 0.0;
  for (std::size_t i = 1; i < scpp.size(); ++i) {
    const double m = scpp[i].sift_mem_gb - scpp[i - 1].sift_mem_gb;
    min_marg = std::min(min_marg, m);
    max_marg = std::max(max_marg, m);
  }
  gate(min_marg > 0.0 && max_marg <= min_marg * 1.25 + 0.05,
       "scAtteR++ sift memory grows by a constant per-client buffer (" + jnum(min_marg) +
           " .. " + jnum(max_marg) + " GB/client)");

  // 4. scAtteR's bottleneck accelerator (sift's GPU) saturates below
  //    full and dips past the collapse point.
  bool sc_gpu_dips = false;
  double sc_gpu_max = 0.0;
  for (std::size_t i = 0; i < sc.size(); ++i) {
    sc_gpu_max = std::max(sc_gpu_max, sc[i].gpu_util);
    if (i > 0 && sc[i].gpu_util < sc[i - 1].gpu_util - 0.01) sc_gpu_dips = true;
  }
  gate(sc_gpu_max <= 0.95 && sc_gpu_dips,
       "scAtteR GPU saturates below full and dips past collapse (max " +
           jnum(sc_gpu_max * 100.0) + "%)");

  // 5. scAtteR++'s admission keeps the bottleneck fed at full load:
  //    GPU pinned near capacity, above scAtteR's, CPU near its peak.
  double scpp_cpu_peak = 0.0;
  for (const RunSummary& s : scpp) scpp_cpu_peak = std::max(scpp_cpu_peak, s.cpu_util);
  gate(scpp.back().gpu_util >= 0.95 && scpp.back().gpu_util > sc.back().gpu_util &&
           scpp.back().cpu_util >= scpp_cpu_peak * 0.9,
       "scAtteR++ keeps the bottleneck fed at n=" + std::to_string(kMaxClients) + " (GPU " +
           jnum(scpp.back().gpu_util * 100.0) + "% vs scAtteR " +
           jnum(sc.back().gpu_util * 100.0) + "%, CPU " + jnum(scpp.back().cpu_util * 100.0) +
           "%)");

  // 6. The sampler actually produced timelines (one point per second).
  gate(!sc.back().e2_timeline.points.empty() && !scpp.back().e2_timeline.points.empty(),
       "utilization timelines populated (" +
           std::to_string(sc.back().e2_timeline.points.size()) + " points)");

  // --- BENCH_fig5_utilization.json -----------------------------------
  std::ostringstream json;
  json << "{\n  \"figure\": \"fig5_utilization\",\n  \"placement\": \"C2\",\n  \"systems\": [";
  for (std::size_t sys = 0; sys < 2; ++sys) {
    json << (sys ? ",\n    " : "\n    ") << "{\"name\": " << jstr(systems[sys].name)
         << ", \"runs\": [";
    for (std::size_t i = 0; i < runs[sys].size(); ++i) {
      const RunSummary& s = runs[sys][i];
      json << (i ? ",\n      " : "\n      ") << "{\"clients\": " << s.clients
           << ", \"fps\": " << jnum(s.fps) << ", \"e2e_ms\": " << jnum(s.e2e_ms)
           << ", \"cpu_util\": " << jnum(s.cpu_util) << ", \"cpu_peak\": " << jnum(s.cpu_peak)
           << ", \"gpu_util\": " << jnum(s.gpu_util) << ", \"mem_gb\": " << jnum(s.mem_gb)
           << ", \"mem_gb_peak\": " << jnum(s.mem_gb_peak)
           << ", \"sift_mem_gb\": " << jnum(s.sift_mem_gb)
           << ", \"other_mem_gb\": " << jnum(s.other_mem_gb)
           << ", \"e2_timeline\": " << timeline_json(s.e2_timeline) << "}";
    }
    json << "\n    ]}";
  }
  json << "\n  ],\n  \"gates_failed\": " << failures << "\n}\n";
  const char* out_path = "BENCH_fig5_utilization.json";
  if (write_text_file(out_path, json.str())) {
    std::printf("wrote %s\n", out_path);
  }

  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d qualitative gate(s) violated\n", failures);
    return 1;
  }
  std::printf("all qualitative gates PASSED\n");
  return 0;
}
