// Ablation: application-aware vs hardware-aware orchestration
// (paper §6, Insights I and IV).
//
// Eight clients join a two-replica-capable scAtteR++ deployment. Three
// orchestration policies race:
//   none      — static deployment,
//   hardware  — scale a stage when GPU occupancy crosses 70% (what
//               Kubernetes-style orchestrators can see),
//   app-aware — scale the stage whose sidecar reports >10% queue drops
//               (the proposed virtualization-boundary hook).
//
// Expected: the overloaded pipeline keeps hardware utilization LOW
// (stalls, drops), so the hardware policy reacts little or late, while
// the app-aware policy scales the right stage and recovers FPS.
#include <cstdio>

#include "bench/fig_util.h"
#include "ctrl/scale_policy.h"

using namespace mar;
using namespace mar::bench;

namespace {

struct Outcome {
  double fps = 0.0;
  std::size_t scale_actions = 0;
  std::string scaled_stages;
};

Outcome run_policy(const char* policy, int clients) {
  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = SymbolicPlacement::single(Site::kE2);
  cfg.num_clients = clients;
  cfg.warmup = seconds(2.0);
  cfg.duration = seconds(60.0);
  cfg.seed = 15000 + static_cast<std::uint64_t>(clients);

  expt::Experiment e(cfg);
  e.build();

  std::unique_ptr<ctrl::ScalePolicy> scaler;
  if (std::string(policy) != "none") {
    ctrl::ScalePolicy::Config sc;
    if (std::string(policy) == "hardware") {
      sc.signal = ctrl::ScalePolicy::Signal::kHardware;
      sc.up_threshold = 0.70;
    } else {
      sc.signal = ctrl::ScalePolicy::Signal::kApplication;
      sc.up_threshold = 0.10;
    }
    scaler = std::make_unique<ctrl::ScalePolicy>(e.deployment(), sc);
    scaler->start();
  }
  e.run();

  Outcome out;
  out.fps = e.result().fps_mean;
  if (scaler) {
    out.scale_actions = scaler->events().size();
    for (const auto& ev : scaler->events()) {
      if (!out.scaled_stages.empty()) out.scaled_stages += ",";
      out.scaled_stages += to_string(ev.stage);
    }
  }
  if (out.scaled_stages.empty()) out.scaled_stages = "-";
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation: orchestration policy under overload (scAtteR++, base C2)\n");

  for (int clients : {6, 8}) {
    expt::print_banner("clients = " + std::to_string(clients));
    Table t({"policy", "FPS/client", "scale actions", "stages scaled"});
    for (const char* policy : {"none", "hardware", "app-aware"}) {
      const Outcome o = run_policy(policy, clients);
      t.add_row({policy, Table::num(o.fps, 1), std::to_string(o.scale_actions),
                 o.scaled_stages});
    }
    t.print();
  }
  std::printf(
      "\nInsight IV: the hardware-only policy cannot see the application-level\n"
      "drops, so it reacts weakly; the app-aware policy scales the stages that\n"
      "actually shed load.\n");
  return 0;
}
