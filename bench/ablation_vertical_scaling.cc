// Ablation: vertical scalability and GPU resource contention
// (paper §5/§6: "vertical scalability and model optimization help
// shift the saturation point ... but must deal with resource
// contention, which is critical especially for GPUs").
//
// Sweeps the edge server's GPU provisioning for a fixed scAtteR++
// deployment (all services on E2) and reports where the framerate
// saturates:
//   2x A40 (paper's E2) / 4x A40 (more devices, less co-location) /
//   2x "A40 at 2x clock" (faster devices) / 1x A40 (contended).
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Ablation: vertical GPU scaling on E2 (scAtteR++, all services on E2)\n");

  struct Variant {
    const char* name;
    int gpus;
    double speed;
  };
  const Variant variants[] = {
      {"1x A40", 1, 1.25},
      {"2x A40 (paper E2)", 2, 1.25},
      {"4x A40", 4, 1.25},
      {"2x A40 @2x clock", 2, 2.5},
  };

  expt::print_banner("FPS per client");
  std::vector<std::string> cols{"clients"};
  for (const auto& v : variants) cols.emplace_back(v.name);
  Table t(cols);
  for (int n = 2; n <= 10; n += 2) {
    std::vector<std::string> row{std::to_string(n)};
    for (const Variant& v : variants) {
      ExperimentConfig cfg;
      cfg.mode = core::PipelineMode::kScatterPP;
      cfg.placement = SymbolicPlacement::single(Site::kE2);
      cfg.num_clients = n;
      cfg.seed = 16000 + static_cast<std::uint64_t>(n);
      cfg.testbed.e2_gpus.assign(static_cast<std::size_t>(v.gpus),
                                 hw::GpuModel{"ampere", v.speed});
      row.push_back(Table::num(expt::run_experiment(cfg).fps_mean, 1));
    }
    t.add_row(std::move(row));
  }
  t.print();

  std::printf(
      "\nMore/faster GPUs push the saturation point to higher client counts,\n"
      "but the single-instance services and the pipeline design remain the\n"
      "eventual limit — the paper's argument for horizontal scaling.\n");
  return 0;
}
