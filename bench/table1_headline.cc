// Headline comparison (abstract & §5): scAtteR++ vs scAtteR.
//
//   * framerate improvement at 4 concurrent clients (paper: ~2.5-4x),
//   * single-client FPS delta (paper: +9 %) and success-rate delta,
//   * client capacity: the most concurrent clients each system can
//     serve at or above a 10 FPS floor (paper: ~2.75-2.8x).
//
// scAtteR runs its best fixed placement (C2); scAtteR++ additionally
// scales out ([1,2,2,1,2]), which statefulness denies scAtteR.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

namespace {

ExperimentResult run(core::PipelineMode mode, const SymbolicPlacement& placement, int clients,
                     std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.mode = mode;
  cfg.placement = placement;
  cfg.num_clients = clients;
  cfg.seed = seed;
  return expt::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf("Table 1 (headline): scAtteR++ vs scAtteR\n");
  constexpr double kFpsFloor = 10.0;
  constexpr int kMaxClients = 12;

  const SymbolicPlacement scatter_best = SymbolicPlacement::single(Site::kE2);
  const SymbolicPlacement pp_scaled = SymbolicPlacement::replicated({1, 2, 2, 1, 2});

  expt::print_banner("FPS per client by load");
  Table t({"clients", "scAtteR (C2)", "scAtteR++ (C2)", "scAtteR++ [1,2,2,1,2]"});
  std::vector<double> fps_scatter, fps_pp, fps_pp_scaled;
  for (int n = 1; n <= kMaxClients; ++n) {
    const auto seed = static_cast<std::uint64_t>(n);
    fps_scatter.push_back(
        run(core::PipelineMode::kScatter, scatter_best, n, 12000 + seed).fps_mean);
    fps_pp.push_back(
        run(core::PipelineMode::kScatterPP, scatter_best, n, 12100 + seed).fps_mean);
    fps_pp_scaled.push_back(
        run(core::PipelineMode::kScatterPP, pp_scaled, n, 12200 + seed).fps_mean);
    t.add_row({std::to_string(n), Table::num(fps_scatter.back(), 1),
               Table::num(fps_pp.back(), 1), Table::num(fps_pp_scaled.back(), 1)});
  }
  t.print();

  auto capacity = [&](const std::vector<double>& fps) {
    int cap = 0;
    for (int n = 1; n <= kMaxClients; ++n) {
      if (fps[static_cast<std::size_t>(n - 1)] >= kFpsFloor) cap = n;
    }
    return cap;
  };
  const int cap_scatter = capacity(fps_scatter);
  const int cap_pp = capacity(fps_pp_scaled);

  expt::print_banner("Headline numbers");
  Table h({"metric", "scAtteR", "scAtteR++", "ratio", "paper"});
  h.add_row({"FPS @ 4 clients", Table::num(fps_scatter[3], 1), Table::num(fps_pp_scaled[3], 1),
             Table::num(fps_scatter[3] > 0 ? fps_pp_scaled[3] / fps_scatter[3] : 0, 2) + "x",
             "~2.5-4x"});
  h.add_row({"clients @ >=10 FPS", std::to_string(cap_scatter), std::to_string(cap_pp),
             Table::num(cap_scatter ? static_cast<double>(cap_pp) / cap_scatter : 0, 2) + "x",
             "~2.75x"});
  h.add_row({"FPS @ 1 client", Table::num(fps_scatter[0], 1), Table::num(fps_pp[0], 1),
             Table::num(fps_scatter[0] > 0 ? fps_pp[0] / fps_scatter[0] : 0, 2) + "x",
             "+9%"});
  h.print();

  return 0;
}
