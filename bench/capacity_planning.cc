// Capacity planning at population scale (ROADMAP north star).
//
// Three questions, answered on the partitioned DES + fluid-cohort
// engine (expt::CapacityEngine):
//   1. How many E2-class machines serve 100k users at 25 FPS, for
//      scAtteR vs scAtteR++?  (detailed single-box density search +
//      memory bound)
//   2. How fast is the parallel engine?  Self-speedup curve over
//      1/2/4/8 threads against the sequential engine on a detailed +
//      aggregate population workload.
//   3. Is the parallel engine exact?  Determinism gate: every thread
//      count must reproduce the sequential run's completion digest
//      bit-for-bit, and the fluid tail must agree with the detailed
//      probes' FPS within 5% at moderate load.
//
// Writes BENCH_capacity.json. Smoke knobs: --population, --machines,
// --detailed_clients, --duration_s, --sim_threads (comma list).
//
// Honesty note: wall-clock speedup is reported together with the host
// core count; the >=4x-at-8-threads gate is only meaningful (and only
// enforced) when the host actually has >= 8 hardware threads.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/fig_util.h"
#include "common/parallel.h"
#include "expt/capacity.h"

namespace {

using mar::bench::jnum;
using mar::bench::jstr;
using mar::expt::CapacityConfig;
using mar::expt::CapacityEngine;
using mar::expt::CapacityPlan;
using mar::expt::CapacityResult;

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct SpeedupPoint {
  int threads = 0;  // 0 = sequential engine (no pool dispatch at all)
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t digest = 0;
};

}  // namespace

int main(int argc, char** argv) {
  double population = 100000.0;
  int machines = 8;
  int detailed = 1000;
  double duration_s = 10.0;
  double session_mean_s = 300.0;
  double roaming = 0.125;
  std::vector<int> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name) -> const char* {
      const std::size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 && arg.size() > n ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--population=")) population = std::atof(v);
    if (const char* v = val("--machines=")) machines = std::atoi(v);
    if (const char* v = val("--detailed_clients=")) detailed = std::atoi(v);
    if (const char* v = val("--duration_s=")) duration_s = std::atof(v);
    if (const char* v = val("--session_mean_s=")) session_mean_s = std::atof(v);
    if (const char* v = val("--roaming=")) roaming = std::atof(v);
    if (const char* v = val("--sim_threads=")) {
      thread_counts.clear();
      std::stringstream ss(v);
      std::string tok;
      while (std::getline(ss, tok, ',')) thread_counts.push_back(std::atoi(tok.c_str()));
    }
  }

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("capacity_planning: %d machines, %.0f fluid sessions, %d detailed probes, "
              "%.0fs sim, host threads=%u\n",
              machines, population, detailed, duration_s, hw_threads);

  // --- 1. machines per 100k users, scAtteR vs scAtteR++ --------------
  CapacityConfig base;
  base.machines = machines;
  base.detailed_clients = detailed;
  base.duration = mar::seconds(duration_s);
  base.population.mean_population = population;
  base.population.session_mean_s = session_mean_s;
  base.roaming_fraction = roaming;

  std::vector<CapacityPlan> plans;
  for (const auto mode :
       {mar::core::PipelineMode::kScatter, mar::core::PipelineMode::kScatterPP}) {
    CapacityConfig cfg = base;
    cfg.mode = mode;
    plans.push_back(CapacityEngine::plan_machines(cfg));
    const CapacityPlan& p = plans.back();
    std::printf("  %-9s %d clients/box (%s-bound, gpu %d / mem %d)  ->  %d machines per "
                "100k users  [fps %.1f, success %.3f at plan]\n",
                p.mode.c_str(), p.clients_per_box, p.binding_constraint.c_str(),
                p.gpu_bound_clients, p.memory_bound_clients, p.machines_per_100k,
                p.fps_at_plan, p.success_at_plan);
  }

  // --- 2+3. self-speedup curve + determinism digests -----------------
  // scAtteR++ workload: detailed probes (with roaming cross-partition
  // traffic) over the fluid population.
  CapacityConfig load = base;
  load.mode = mar::core::PipelineMode::kScatterPP;

  std::vector<SpeedupPoint> curve;
  {
    SpeedupPoint seq;
    seq.threads = 0;
    CapacityEngine engine(load);
    const auto t0 = std::chrono::steady_clock::now();
    const CapacityResult r = engine.run(1);
    seq.wall_s = wall_seconds(t0);
    seq.events = r.events_fired;
    seq.events_per_sec = seq.wall_s > 0 ? static_cast<double>(r.events_fired) / seq.wall_s : 0;
    seq.digest = r.digest;
    curve.push_back(seq);
    std::printf("  sequential: %llu events in %.2fs (%.2f M events/s), digest %016llx\n",
                static_cast<unsigned long long>(seq.events), seq.wall_s,
                seq.events_per_sec / 1e6, static_cast<unsigned long long>(seq.digest));
  }
  CapacityResult parallel_result;  // kept for the fluid-vs-detailed gate
  for (const int t : thread_counts) {
    SpeedupPoint pt;
    pt.threads = t;
    mar::set_parallel_threads(t);
    CapacityEngine engine(load);
    const auto t0 = std::chrono::steady_clock::now();
    const CapacityResult r = engine.run(t);
    pt.wall_s = wall_seconds(t0);
    pt.events = r.events_fired;
    pt.events_per_sec = pt.wall_s > 0 ? static_cast<double>(r.events_fired) / pt.wall_s : 0;
    pt.digest = r.digest;
    curve.push_back(pt);
    parallel_result = r;
    std::printf("  %d threads: %.2fs (%.2f M events/s), speedup %.2fx, digest %016llx\n", t,
                pt.wall_s, pt.events_per_sec / 1e6,
                curve.front().wall_s > 0 ? curve.front().wall_s / pt.wall_s : 0.0,
                static_cast<unsigned long long>(pt.digest));
  }
  mar::set_parallel_threads(0);  // restore default

  // Gates.
  int gates_failed = 0;
  bool digests_equal = true;
  for (const SpeedupPoint& pt : curve) {
    if (pt.digest != curve.front().digest) digests_equal = false;
  }
  if (!digests_equal) {
    ++gates_failed;
    std::printf("  GATE FAILED: parallel digest != sequential digest\n");
  }

  // Fluid-vs-detailed agreement: the cohort tail and the per-frame
  // probes describe the same population, so their served/offered FPS
  // ratios must agree when the machines aren't saturated. At overload
  // the two models sag by different mechanisms (fluid truncation vs
  // per-frame queueing/loss), so the gate arms only when the fluid tail
  // is actually being served near target.
  const double fluid_ratio = parallel_result.fluid_target_fps > 0.0
                                 ? parallel_result.fluid_session_fps /
                                       parallel_result.fluid_target_fps
                                 : 0.0;
  const double detailed_ratio = parallel_result.detailed_target_fps_mean > 0.0
                                    ? parallel_result.detailed_fps_mean /
                                          parallel_result.detailed_target_fps_mean
                                    : 0.0;
  const bool agreement_armed = fluid_ratio >= 0.5 && detailed_ratio > 0.0;
  double fluid_detailed_gap = 0.0;
  std::printf("  fluid %.2f/%.0f fps per session vs detailed %.2f/%.0f fps per client\n",
              parallel_result.fluid_session_fps, parallel_result.fluid_target_fps,
              parallel_result.detailed_fps_mean, parallel_result.detailed_target_fps_mean);
  if (agreement_armed) {
    fluid_detailed_gap = detailed_ratio - fluid_ratio;
    std::printf("  aggregate-vs-detailed served ratio gap: %+.1f%%\n",
                100.0 * fluid_detailed_gap);
    if (fluid_detailed_gap > 0.05 || fluid_detailed_gap < -0.05) {
      ++gates_failed;
      std::printf("  GATE FAILED: aggregate-vs-detailed FPS gap exceeds 5%%\n");
    }
  }

  // Speedup gate, armed only on hosts that can express it.
  double speedup8 = 0.0;
  for (const SpeedupPoint& pt : curve) {
    if (pt.threads == 8 && curve.front().wall_s > 0) {
      speedup8 = curve.front().wall_s / pt.wall_s;
    }
  }
  const bool speedup_gate_armed = hw_threads >= 8;
  if (speedup_gate_armed && speedup8 > 0.0 && speedup8 < 4.0) {
    ++gates_failed;
    std::printf("  GATE FAILED: 8-thread self-speedup %.2fx < 4x\n", speedup8);
  }
  if (parallel_result.lookahead_violations > 0) {
    ++gates_failed;
    std::printf("  GATE FAILED: %llu lookahead violations\n",
                static_cast<unsigned long long>(parallel_result.lookahead_violations));
  }

  std::ostringstream j;
  j << "{\n  \"bench\": \"capacity_planning\",\n";
  j << "  \"host_hardware_threads\": " << hw_threads << ",\n";
  j << "  \"config\": {\"machines\": " << machines << ", \"population\": " << jnum(population)
    << ", \"detailed_clients\": " << detailed << ", \"duration_s\": " << jnum(duration_s)
    << "},\n";
  j << "  \"plans\": [\n";
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const CapacityPlan& p = plans[i];
    j << "    {\"mode\": " << jstr(p.mode) << ", \"clients_per_box\": " << p.clients_per_box
      << ", \"machines_per_100k\": " << p.machines_per_100k
      << ", \"binding_constraint\": " << jstr(p.binding_constraint)
      << ", \"gpu_bound_clients\": " << p.gpu_bound_clients
      << ", \"memory_bound_clients\": " << p.memory_bound_clients
      << ", \"fps_at_plan\": " << jnum(p.fps_at_plan)
      << ", \"success_at_plan\": " << jnum(p.success_at_plan) << "}"
      << (i + 1 < plans.size() ? ",\n" : "\n");
  }
  j << "  ],\n  \"speedup_curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const SpeedupPoint& pt = curve[i];
    char digest_hex[32];
    std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                  static_cast<unsigned long long>(pt.digest));
    j << "    {\"threads\": " << pt.threads << ", \"wall_s\": " << jnum(pt.wall_s)
      << ", \"events\": " << pt.events << ", \"events_per_sec\": " << jnum(pt.events_per_sec)
      << ", \"speedup\": "
      << jnum(curve.front().wall_s > 0 && pt.wall_s > 0 ? curve.front().wall_s / pt.wall_s
                                                        : 0.0)
      << ", \"digest\": " << jstr(digest_hex) << "}"
      << (i + 1 < curve.size() ? ",\n" : "\n");
  }
  j << "  ],\n";
  j << "  \"events_per_sec_sequential\": " << jnum(curve.front().events_per_sec) << ",\n";
  j << "  \"speedup_8t\": " << jnum(speedup8) << ",\n";
  j << "  \"speedup_gate_armed\": " << (speedup_gate_armed ? "true" : "false") << ",\n";
  j << "  \"digests_equal\": " << (digests_equal ? "true" : "false") << ",\n";
  j << "  \"fluid_session_fps\": " << jnum(parallel_result.fluid_session_fps) << ",\n";
  j << "  \"fluid_target_fps\": " << jnum(parallel_result.fluid_target_fps) << ",\n";
  j << "  \"detailed_fps_mean\": " << jnum(parallel_result.detailed_fps_mean) << ",\n";
  j << "  \"detailed_target_fps_mean\": " << jnum(parallel_result.detailed_target_fps_mean)
    << ",\n";
  j << "  \"agreement_armed\": " << (agreement_armed ? "true" : "false") << ",\n";
  j << "  \"fluid_detailed_gap\": " << jnum(fluid_detailed_gap) << ",\n";
  j << "  \"fluid_sessions_mean\": " << jnum(parallel_result.fluid_sessions_mean) << ",\n";
  j << "  \"messages_posted\": " << parallel_result.messages_posted << ",\n";
  j << "  \"lookahead_violations\": " << parallel_result.lookahead_violations << ",\n";
  j << "  \"windows_run\": " << parallel_result.windows_run << ",\n";
  j << "  \"gates_failed\": " << gates_failed << "\n}\n";
  if (!mar::bench::write_text_file("BENCH_capacity.json", j.str())) {
    std::printf("  (could not write BENCH_capacity.json)\n");
  }
  std::printf("  gates_failed: %d -> BENCH_capacity.json\n", gates_failed);
  return gates_failed == 0 ? 0 : 1;
}
