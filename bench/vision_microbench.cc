// Microbenchmarks of the real vision kernels (google-benchmark): the
// per-stage costs that motivate the paper's GPU offloading. These are
// the CPU-native counterparts of the calibrated stage costs the
// simulator charges.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "vision/engine.h"
#include "vision/fisher.h"
#include "vision/gmm.h"
#include "vision/homography.h"
#include "vision/lsh.h"
#include "vision/matcher.h"
#include "vision/pca.h"
#include "vision/sift.h"
#include "video/scene.h"

namespace {

using namespace mar;

const video::WorkplaceScene& scene() {
  static video::WorkplaceScene s(640, 360);
  return s;
}

vision::Image frame_480() {
  static vision::Image img = vision::resize(scene().render(0.0), 480, 270);
  return img;
}

vision::FeatureList features() {
  static vision::FeatureList f = [] {
    vision::SiftParams params;
    params.max_features = 300;
    return vision::SiftDetector(params).detect(frame_480());
  }();
  return f;
}

std::vector<std::vector<float>> descriptor_matrix() {
  std::vector<std::vector<float>> out;
  for (const auto& f : features()) {
    out.emplace_back(f.descriptor.begin(), f.descriptor.end());
  }
  return out;
}

void BM_Preprocess(benchmark::State& state) {
  const vision::Image full = scene().render(0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::resize(full, 480, 270));
  }
}
BENCHMARK(BM_Preprocess)->Unit(benchmark::kMillisecond);

// Kernels below sweep the pool size (second arg) so the per-stage cost
// trajectory is tracked per thread count; counters label the lanes.
void BM_SiftDetect(benchmark::State& state) {
  mar::set_parallel_threads(static_cast<int>(state.range(1)));
  const vision::Image img = frame_480();
  vision::SiftParams params;
  params.max_features = static_cast<int>(state.range(0));
  const vision::SiftDetector detector(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(img));
  }
  state.counters["threads"] = static_cast<double>(state.range(1));
  mar::set_parallel_threads(0);
}
BENCHMARK(BM_SiftDetect)
    ->ArgNames({"features", "threads"})
    ->Args({150, 1})
    ->Args({300, 1})
    ->Args({300, 2})
    ->Args({300, 4})
    ->Unit(benchmark::kMillisecond);

void BM_Blur(benchmark::State& state) {
  mar::set_parallel_threads(static_cast<int>(state.range(0)));
  const vision::Image img = frame_480();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::gaussian_blur(img, 1.6f));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  mar::set_parallel_threads(0);
}
BENCHMARK(BM_Blur)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Match(benchmark::State& state) {
  mar::set_parallel_threads(static_cast<int>(state.range(0)));
  const auto query = features();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vision::match_features(query, query));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  mar::set_parallel_threads(0);
}
BENCHMARK(BM_Match)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_PcaTransform(benchmark::State& state) {
  const auto desc = descriptor_matrix();
  vision::Pca pca;
  pca.fit(desc, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pca.transform(desc));
  }
}
BENCHMARK(BM_PcaTransform)->Unit(benchmark::kMillisecond);

void BM_FisherEncode(benchmark::State& state) {
  mar::set_parallel_threads(static_cast<int>(state.range(0)));
  const auto desc = descriptor_matrix();
  vision::Pca pca;
  pca.fit(desc, 32);
  const auto reduced = pca.transform(desc);
  Rng rng(1);
  vision::Gmm gmm;
  vision::GmmParams params;
  params.components = 8;
  gmm.fit(reduced, params, rng);
  const vision::FisherEncoder encoder(&gmm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(reduced));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  mar::set_parallel_threads(0);
}
BENCHMARK(BM_FisherEncode)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_LshQuery(benchmark::State& state) {
  Rng rng(2);
  vision::LshIndex index(512, vision::LshParams{}, rng);
  std::vector<float> query(512);
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::vector<float> v(512);
    for (float& x : v) x = static_cast<float>(rng.gaussian(0, 1));
    index.insert(i, v);
    if (i == 0) query = v;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.nearest(query, 2));
  }
}
BENCHMARK(BM_LshQuery)->Unit(benchmark::kMicrosecond);

void BM_MatchAndRansac(benchmark::State& state) {
  const auto query = features();
  Rng rng(3);
  for (auto _ : state) {
    const auto matches = vision::match_features(query, query);
    std::vector<vision::Point2f> src, dst;
    for (const auto& m : matches) {
      const auto& a = query[static_cast<std::size_t>(m.train_index)].keypoint;
      const auto& b = query[static_cast<std::size_t>(m.query_index)].keypoint;
      src.push_back({a.x, a.y});
      dst.push_back({b.x, b.y});
    }
    benchmark::DoNotOptimize(
        vision::find_homography_ransac(src, dst, vision::RansacParams{}, rng));
  }
}
BENCHMARK(BM_MatchAndRansac)->Unit(benchmark::kMillisecond);

void BM_SceneRender(benchmark::State& state) {
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scene().render(t));
    t += 1.0 / 30.0;
  }
}
BENCHMARK(BM_SceneRender)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN, plus a default JSON summary (BENCH_vision.json in the
// working directory) so the per-stage perf trajectory is recorded on
// every run; pass --benchmark_out=... to override.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_vision.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
