// Figure 6: scAtteR++ baseline on the edge.
//
// Same methodology as Figure 2 (four placements, 1-4 clients) but with
// the redesigned pipeline: stateless sift (state in-band, 180->480 KB)
// and a sidecar queue with a 100 ms staleness threshold at every
// service ingress.
//
// Expected shape (paper §5): +9% FPS with one client, ~2.5x framerate
// with concurrent clients (>=12 FPS at 4 clients; C12 ~20 FPS);
// slightly higher per-service latency (the sidecar hand-off); resource
// use scales with load instead of collapsing; drops become threshold
// drops rather than ingress losses.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Figure 6: scAtteR++ baseline on edge (sidecar + stateless sift)\n");

  const auto placements = baseline_placements();
  constexpr int kMaxClients = 4;

  std::vector<std::vector<ExperimentResult>> results(placements.size());
  for (std::size_t p = 0; p < placements.size(); ++p) {
    for (int n = 1; n <= kMaxClients; ++n) {
      ExperimentConfig cfg;
      cfg.mode = core::PipelineMode::kScatterPP;
      cfg.placement = placements[p].placement;
      cfg.num_clients = n;
      cfg.seed = 6000 + p * 10 + static_cast<std::size_t>(n);
      results[p].push_back(expt::run_experiment(cfg));
    }
  }

  auto qos_table = [&](const char* title, auto metric, int precision) {
    expt::print_banner(title);
    std::vector<std::string> cols{"clients"};
    for (const auto& np : placements) cols.push_back(np.name);
    Table t(cols);
    for (int n = 1; n <= kMaxClients; ++n) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::size_t p = 0; p < placements.size(); ++p) {
        row.push_back(Table::num(metric(results[p][n - 1]), precision));
      }
      t.add_row(std::move(row));
    }
    t.print();
  };

  qos_table("FPS (successful frames/s per client)",
            [](const ExperimentResult& r) { return r.fps_mean; }, 1);
  qos_table("Service latency (ms, sum of per-stage means)",
            [](const ExperimentResult& r) {
              double sum = 0.0;
              for (Stage s : kStages) sum += r.stage_service_ms(s);
              return sum;
            },
            1);
  qos_table("Frame success rate (%)",
            [](const ExperimentResult& r) { return r.success_rate * 100.0; }, 1);
  qos_table("E2E latency (ms, mean)",
            [](const ExperimentResult& r) { return r.e2e_ms_mean; }, 1);

  for (std::size_t p = 0; p < placements.size(); ++p) {
    expt::print_banner("Per-service resources — " + placements[p].name);
    Table t(service_columns("clients/metric"));
    for (int n = 1; n <= kMaxClients; ++n) {
      const ExperimentResult& r = results[p][n - 1];
      std::vector<std::string> mem{"n=" + std::to_string(n) + " mem(GB)"};
      std::vector<std::string> gpu{"n=" + std::to_string(n) + " gpu(%)"};
      std::vector<std::string> drop{"n=" + std::to_string(n) + " drop(%)"};
      for (Stage s : kStages) {
        mem.push_back(Table::num(r.stage_mem_gb(s), 2));
        gpu.push_back(Table::num(r.stage_gpu_share(s) * 100.0, 2));
        drop.push_back(Table::num(r.stage_drop_ratio(s) * 100.0, 1));
      }
      t.add_row(std::move(mem));
      t.add_row(std::move(gpu));
      t.add_row(std::move(drop));
    }
    t.print();
  }

  return 0;
}
