// Latency-attribution + burn-rate forecasting gate (observability
// plane; paper §5's "where does the tail come from?" question).
//
// Part 1 — attribution. Two traced runs over the same offered load:
//   scAtteR    — stateful sift; the state-fetch loop and the socket
//                buffer should own the tail,
//   scAtteR++  — stateless sift behind the sidecar; no state fetches,
//                and the RPC hand-off must stay flat across bands.
// The critical-path extractor decomposes every delivered frame's E2E
// envelope; the banded blame report must agree with the experiment's
// own on_frame counters (ground truth) to within kDecompTolPct.
//
// Part 2 — forecasting. Clients ramp onto a C2 deployment twice with
// the same seed: once with the reactive drop-ratio loop, once with the
// predictive arm (fast-window SLO burn + rising ingress trend) on top.
// The predictive run must take its first scale-up strictly earlier,
// and a flat under-capacity workload must produce zero actions.
//
// Gates (all counted in gates_failed):
//   1. trace-derived mean E2E within kDecompTolPct of the hook's mean,
//      for both modes, with unattributed gap blame under kGapTolPct,
//   2. scAtteR: p99-band state-fetch blame > p50-band and > 1 ms,
//   3. scAtteR++: zero state-fetch blame; rpc hand-off flat across
//      bands (p99 - p50 <= kRpcFlatMs),
//   4. predictive first scale-up strictly earlier than reactive, with
//      >= 1 action credited to the predictive arm,
//   5. flat workload under capacity: zero control actions,
//   6. same-seed rerun bit-identical (blame + action digest),
//   7. mar_blame_ms / mar_slo_burn_rate visible on a live /metrics
//      scrape and the blame JSON served on /debug/blame.
//
// Writes BENCH_blame.json. Smoke knobs: --clients, --duration_s,
// --ramp_clients, --ramp_duration_s, --seed.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/fig_util.h"
#include "ctrl/reoptimizer.h"
#include "ctrl/scale_policy.h"
#include "expt/attribution.h"
#include "net/http.h"
#include "telemetry/critical_path.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

using namespace mar;
using namespace mar::bench;
using telemetry::PathComponent;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * kFnvPrime;
}
std::uint64_t fnv_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv_mix(h, bits);
}

constexpr double kDecompTolPct = 2.0;  // trace total vs hook mean E2E
constexpr double kGapTolPct = 2.0;     // unattributed envelope share
constexpr double kRpcFlatMs = 0.5;     // scAtteR++ hand-off band spread

struct BenchKnobs {
  int clients = 2;            // attribution runs
  double duration_s = 8.0;
  int ramp_clients = 4;       // forecasting ramp
  double ramp_duration_s = 20.0;
  double ramp_stagger_s = 2.0;
  std::uint64_t seed = 47000;
};

// --- Part 1: traced attribution runs --------------------------------

struct TracedRun {
  expt::BlameReport report;
  double hook_mean_e2e_ms = 0.0;  // counter ground truth (all successes)
  int hook_delivered = 0;
  double cp_mean_e2e_ms = 0.0;    // mean critical-path envelope
  double decomp_err_pct = 0.0;
  double gap_pct = 0.0;           // unattributed share of the envelope
  std::uint64_t digest = kFnvOffset;
};

double band_mean(const expt::BlameReport& r, const char* band, PathComponent c) {
  for (const auto& b : r.bands) {
    if (b.label == band) return b.mean_ms[static_cast<std::size_t>(c)];
  }
  return 0.0;
}

TracedRun run_traced(const BenchKnobs& k, core::PipelineMode mode) {
  auto& tracer = telemetry::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);

  ExperimentConfig cfg;
  cfg.mode = mode;
  cfg.placement = SymbolicPlacement::single(Site::kE2);
  cfg.num_clients = k.clients;
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(k.duration_s);
  cfg.seed = k.seed;

  double hook_sum = 0.0;
  int hook_n = 0;
  cfg.on_frame_hook = [&](SimTime, double e2e_ms, bool success) {
    if (!success) return;
    hook_sum += e2e_ms;
    ++hook_n;
  };

  expt::Experiment e(cfg);
  e.build();
  e.run();

  TracedRun out;
  out.report = expt::build_blame_report(expt::from_tracer(tracer));
  tracer.set_enabled(false);

  out.hook_delivered = hook_n;
  out.hook_mean_e2e_ms = hook_n > 0 ? hook_sum / hook_n : 0.0;
  double cp_sum = 0.0;
  double attributed = 0.0;
  for (const auto& b : out.report.bands) cp_sum += b.mean_total_ms * b.frames;
  for (int c = 0; c < telemetry::kNumPathComponents; ++c) {
    if (static_cast<PathComponent>(c) == PathComponent::kGap) continue;
    attributed += out.report.overall_mean_ms[static_cast<std::size_t>(c)];
  }
  const double gap = out.report.overall_mean_ms[static_cast<std::size_t>(PathComponent::kGap)];
  out.cp_mean_e2e_ms =
      out.report.frames_delivered > 0 ? cp_sum / out.report.frames_delivered : 0.0;
  out.decomp_err_pct = out.hook_mean_e2e_ms > 0.0
                           ? 100.0 * std::abs(out.cp_mean_e2e_ms - out.hook_mean_e2e_ms) /
                                 out.hook_mean_e2e_ms
                           : 100.0;
  out.gap_pct = attributed + gap > 0.0 ? 100.0 * gap / (attributed + gap) : 0.0;

  out.digest = fnv_mix(out.digest, static_cast<std::uint64_t>(out.report.frames_total));
  out.digest = fnv_mix(out.digest, static_cast<std::uint64_t>(out.report.frames_delivered));
  out.digest = fnv_double(out.digest, out.report.e2e_p99_ms);
  for (const auto& b : out.report.bands) {
    out.digest = fnv_double(out.digest, b.mean_total_ms);
    for (double v : b.mean_ms) out.digest = fnv_double(out.digest, v);
  }
  return out;
}

// --- Part 2: predictive vs reactive ramp ----------------------------

struct RampRun {
  double first_scale_up_s = -1.0;  // -1 = never fired
  std::uint64_t scale_ups = 0;
  std::uint64_t predictive_ups = 0;
  std::uint64_t total_actions = 0;
  double peak_burn = 0.0;  // fast-window burn at the end of the run
  std::uint64_t digest = kFnvOffset;
};

RampRun run_ramp(const BenchKnobs& k, bool predictive, bool flat) {
  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = SymbolicPlacement::single(Site::kE2);
  cfg.num_clients = flat ? 1 : k.ramp_clients;
  cfg.client_stagger = flat ? millis(0.0) : seconds(k.ramp_stagger_s);
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(k.ramp_duration_s);
  cfg.seed = k.seed;
  expt::SloTargets slo;
  slo.min_fps = 24.0;
  slo.max_e2e_p99_ms = 120.0;  // latency breach leads the drop trigger
  cfg.slo = slo;

  expt::Experiment e(cfg);
  e.build();

  ctrl::ScalePolicy::Config sc;
  sc.max_replicas_per_stage = 2;
  ctrl::ScalePolicy policy(e.deployment(), sc);
  ctrl::ReOptimizerConfig rc;
  rc.interval = millis(250.0);
  rc.breach_ticks = 3;
  rc.cooldown = seconds(2.0);
  rc.predictive = predictive;
  rc.predict_ticks = 2;
  ctrl::ReOptimizer reopt(policy, e.slo_watchdog(), rc);
  reopt.start();
  e.run();

  RampRun out;
  out.scale_ups = reopt.scale_up_actions();
  out.predictive_ups = reopt.predictive_scale_ups();
  out.total_actions = reopt.actions().size();
  if (predictive) {
    out.peak_burn = reopt.burn_rate().fast_burn(e.testbed().runtime().now());
  }
  for (const auto& a : reopt.actions()) {
    if (a.kind == ctrl::CtrlAction::Kind::kScaleUp && out.first_scale_up_s < 0.0) {
      out.first_scale_up_s = to_seconds(a.t);
    }
    out.digest = fnv_mix(out.digest, static_cast<std::uint64_t>(a.kind));
    out.digest = fnv_mix(out.digest, static_cast<std::uint64_t>(a.t));
    out.digest = fnv_mix(out.digest, static_cast<std::uint64_t>(a.stage));
  }
  return out;
}

// Minimal blocking HTTP client: one request, read to EOF (the metrics
// server closes after each response).
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  BenchKnobs k;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name) -> const char* {
      const std::size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 && arg.size() > n ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--clients=")) k.clients = std::atoi(v);
    if (const char* v = val("--duration_s=")) k.duration_s = std::atof(v);
    if (const char* v = val("--ramp_clients=")) k.ramp_clients = std::atoi(v);
    if (const char* v = val("--ramp_duration_s=")) k.ramp_duration_s = std::atof(v);
    if (const char* v = val("--seed=")) k.seed = std::strtoull(v, nullptr, 10);
  }

  telemetry::MetricRegistry::instance().set_enabled(true);
  std::printf("blame_attribution: %d traced clients x %.0fs per mode, %d-client ramp %.0fs\n",
              k.clients, k.duration_s, k.ramp_clients, k.ramp_duration_s);

  const TracedRun scatter = run_traced(k, core::PipelineMode::kScatter);
  const TracedRun scatterpp = run_traced(k, core::PipelineMode::kScatterPP);
  const TracedRun scatter2 = run_traced(k, core::PipelineMode::kScatter);  // same seed

  Table t({"mode", "frames", "delivered", "hook mean (ms)", "trace mean (ms)", "err %",
           "gap %", "e2e p99 (ms)"});
  auto row = [&](const char* name, const TracedRun& r) {
    t.add_row({name, std::to_string(r.report.frames_total),
               std::to_string(r.report.frames_delivered), Table::num(r.hook_mean_e2e_ms, 2),
               Table::num(r.cp_mean_e2e_ms, 2), Table::num(r.decomp_err_pct, 3),
               Table::num(r.gap_pct, 3), Table::num(r.report.e2e_p99_ms, 1)});
  };
  row("scatter", scatter);
  row("scatter++", scatterpp);
  t.print();

  const double sf_p50 = band_mean(scatter.report, "p50", PathComponent::kStateFetch);
  const double sf_p99 = band_mean(scatter.report, "p99", PathComponent::kStateFetch);
  const double pp_sf =
      scatterpp.report.overall_mean_ms[static_cast<std::size_t>(PathComponent::kStateFetch)];
  const double pp_rpc_p50 = band_mean(scatterpp.report, "p50", PathComponent::kRpc);
  const double pp_rpc_p99 = band_mean(scatterpp.report, "p99", PathComponent::kRpc);
  std::printf("  scatter state_fetch blame: p50 %.2fms -> p99 %.2fms; "
              "scatter++ state_fetch %.2fms, rpc p50 %.2fms / p99 %.2fms\n",
              sf_p50, sf_p99, pp_sf, pp_rpc_p50, pp_rpc_p99);

  const RampRun reactive = run_ramp(k, /*predictive=*/false, /*flat=*/false);
  const RampRun predictive = run_ramp(k, /*predictive=*/true, /*flat=*/false);
  const RampRun predictive2 = run_ramp(k, /*predictive=*/true, /*flat=*/false);
  const RampRun flat = run_ramp(k, /*predictive=*/true, /*flat=*/true);
  std::printf("  ramp first scale-up: reactive %.2fs, predictive %.2fs "
              "(%llu predictive actions, peak fast burn %.1f); flat run: %llu actions\n",
              reactive.first_scale_up_s, predictive.first_scale_up_s,
              static_cast<unsigned long long>(predictive.predictive_ups),
              predictive.peak_burn, static_cast<unsigned long long>(flat.total_actions));

  int gates_failed = 0;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      ++gates_failed;
      std::printf("  GATE FAILED: %s\n", what);
    }
  };
  gate(scatter.decomp_err_pct <= kDecompTolPct && scatterpp.decomp_err_pct <= kDecompTolPct,
       "trace-derived mean E2E diverges >2% from the on_frame ground truth");
  gate(scatter.gap_pct <= kGapTolPct && scatterpp.gap_pct <= kGapTolPct,
       "unattributed gap blame exceeds 2% of the envelope");
  gate(sf_p99 > sf_p50 && sf_p99 > 1.0,
       "scatter p99-band state-fetch blame does not dominate the tail");
  gate(pp_sf == 0.0, "scatter++ shows state-fetch blame (stateless sift must have none)");
  gate(pp_rpc_p99 > 0.0 && pp_rpc_p99 - pp_rpc_p50 <= kRpcFlatMs,
       "scatter++ rpc hand-off blame is not flat across bands");
  gate(reactive.first_scale_up_s >= 0.0 && predictive.first_scale_up_s >= 0.0 &&
           predictive.first_scale_up_s < reactive.first_scale_up_s,
       "predictive run did not scale up strictly earlier than reactive");
  gate(predictive.predictive_ups >= 1, "no action credited to the predictive arm");
  gate(flat.total_actions == 0, "flat under-capacity workload produced control actions");
  const bool rerun_identical =
      scatter.digest == scatter2.digest && predictive.digest == predictive2.digest;
  gate(rerun_identical, "same-seed rerun diverged (blame or action digest)");

  // Live witness: the blame gauges, burn windows, and /debug/blame
  // payload must be reachable over HTTP, not just in-process.
  expt::publish_blame_gauges(scatter.report);
  const std::string blame_json = expt::blame_report_json(scatter.report);
  net::HttpServer server;
  net::serve_metrics(server, telemetry::MetricRegistry::instance(),
                     [&] { return expt::render_blame_table(scatter.report); });
  server.handle("/debug/blame", "application/json", [&] { return blame_json; });
  bool witnessed = false;
  if (server.start(0).is_ok()) {
    const std::string scrape = http_get(server.port(), "/metrics");
    const std::string debug = http_get(server.port(), "/debug/blame");
    witnessed = scrape.find("mar_blame_ms{") != std::string::npos &&
                scrape.find("mar_slo_burn_rate{") != std::string::npos &&
                scrape.find("mar_ingress_trend_fps") != std::string::npos &&
                debug.find("\"bands\"") != std::string::npos;
    server.stop();
  }
  gate(witnessed, "mar_blame_ms / mar_slo_burn_rate / /debug/blame not live-scrapable");

  char sdig[32], pdig[32];
  std::snprintf(sdig, sizeof(sdig), "%016llx", static_cast<unsigned long long>(scatter.digest));
  std::snprintf(pdig, sizeof(pdig), "%016llx",
                static_cast<unsigned long long>(predictive.digest));
  std::ostringstream j;
  j << "{\n  \"bench\": \"blame_attribution\",\n";
  j << "  \"config\": {\"clients\": " << k.clients << ", \"duration_s\": " << jnum(k.duration_s)
    << ", \"ramp_clients\": " << k.ramp_clients
    << ", \"ramp_duration_s\": " << jnum(k.ramp_duration_s) << ", \"seed\": " << k.seed
    << "},\n";
  auto traced_json = [&](const char* name, const TracedRun& r) {
    j << "  " << jstr(name) << ": {\"frames_total\": " << r.report.frames_total
      << ", \"frames_delivered\": " << r.report.frames_delivered
      << ", \"hook_mean_e2e_ms\": " << jnum(r.hook_mean_e2e_ms)
      << ", \"trace_mean_e2e_ms\": " << jnum(r.cp_mean_e2e_ms)
      << ", \"decomp_err_pct\": " << jnum(r.decomp_err_pct)
      << ", \"gap_pct\": " << jnum(r.gap_pct)
      << ", \"e2e_p99_ms\": " << jnum(r.report.e2e_p99_ms)
      << ", \"open_spans\": " << r.report.open_spans
      << ", \"orphan_ends\": " << r.report.orphan_ends << "},\n";
  };
  traced_json("scatter", scatter);
  traced_json("scatterpp", scatterpp);
  j << "  \"blame\": {\"scatter_state_fetch_p50_ms\": " << jnum(sf_p50)
    << ", \"scatter_state_fetch_p99_ms\": " << jnum(sf_p99)
    << ", \"scatterpp_state_fetch_ms\": " << jnum(pp_sf)
    << ", \"scatterpp_rpc_p50_ms\": " << jnum(pp_rpc_p50)
    << ", \"scatterpp_rpc_p99_ms\": " << jnum(pp_rpc_p99) << "},\n";
  j << "  \"forecast\": {\"reactive_first_scale_up_s\": " << jnum(reactive.first_scale_up_s)
    << ", \"predictive_first_scale_up_s\": " << jnum(predictive.first_scale_up_s)
    << ", \"predictive_lead_s\": "
    << jnum(reactive.first_scale_up_s - predictive.first_scale_up_s)
    << ", \"predictive_scale_ups\": " << predictive.predictive_ups
    << ", \"peak_fast_burn\": " << jnum(predictive.peak_burn)
    << ", \"flat_actions\": " << flat.total_actions << "},\n";
  j << "  \"digests\": {\"scatter\": " << jstr(sdig) << ", \"predictive\": " << jstr(pdig)
    << "},\n";
  j << "  \"rerun_identical\": " << (rerun_identical ? "true" : "false") << ",\n";
  j << "  \"metrics_witnessed\": " << (witnessed ? "true" : "false") << ",\n";
  j << "  \"gates_failed\": " << gates_failed << "\n}\n";
  if (!write_text_file("BENCH_blame.json", j.str())) {
    std::printf("  (could not write BENCH_blame.json)\n");
  }
  std::printf("  gates_failed: %d -> BENCH_blame.json\n", gates_failed);
  return gates_failed == 0 ? 0 : 1;
}
