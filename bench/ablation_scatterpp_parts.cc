// Ablation: which scAtteR++ mechanism buys what?
//
// scAtteR++ = stateless sift (in-band state, no fetch loop) + sidecar
// ingress (queue + filter + threshold). This bench toggles the two
// independently on the C2 placement:
//
//   baseline        — stateful sift, drop-when-busy (scAtteR)
//   stateless-only  — in-band state, still drop-when-busy
//   sidecar-only    — sidecar queues, but sift stays stateful
//   full scAtteR++  — both
//
// Expected: statelessness removes the fetch-loop collapse (the larger
// win); the sidecar converts residual random drops into newest-frame
// delivery and smooths multi-client load. Their combination compounds.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Ablation: scAtteR++ mechanisms (placement C2, 1-6 clients)\n");

  struct Variant {
    const char* name;
    core::PipelineFeatures features;
  };
  const Variant variants[] = {
      {"scAtteR (neither)", {false, false}},
      {"stateless only", {true, false}},
      {"sidecar only", {false, true}},
      {"scAtteR++ (both)", {true, true}},
  };

  expt::print_banner("FPS per client");
  std::vector<std::string> cols{"clients"};
  for (const auto& v : variants) cols.emplace_back(v.name);
  Table t(cols);
  Table drops(cols);
  for (int n = 1; n <= 6; ++n) {
    std::vector<std::string> row{std::to_string(n)};
    std::vector<std::string> drop_row{std::to_string(n)};
    for (const Variant& v : variants) {
      ExperimentConfig cfg;
      cfg.mode = v.features.sidecar ? core::PipelineMode::kScatterPP
                                    : core::PipelineMode::kScatter;
      cfg.features = v.features;
      cfg.placement = SymbolicPlacement::single(Site::kE2);
      cfg.num_clients = n;
      cfg.seed = 13000 + static_cast<std::uint64_t>(n);
      const ExperimentResult r = expt::run_experiment(cfg);
      row.push_back(Table::num(r.fps_mean, 1));
      double total_drop = 0.0;
      for (Stage s : kStages) total_drop += r.stage_drop_ratio(s);
      drop_row.push_back(Table::pct(total_drop / kNumStages));
    }
    t.add_row(std::move(row));
    drops.add_row(std::move(drop_row));
  }
  t.print();
  expt::print_banner("Mean per-stage drop ratio");
  drops.print();

  return 0;
}
