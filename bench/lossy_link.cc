// Lossy-link duel: fire-and-forget vs the production recovery tiers
// (XOR-parity FEC + NACK retransmission) over a real UDP socket pair
// on loopback, at 1/5/10 % per-datagram transmit loss.
//
// Loss comes from the FrameChannel's deterministic transmit-loss
// harness (seeded Bernoulli over outgoing data/parity datagrams,
// control exempt), so the fire-and-forget cells reproduce exactly and
// the recovery cells are stable to well under the diff tolerance.
//
// Each cell sends kFrames frames of kPayloadBytes (5 data fragments;
// the recovery mode adds 2 parity datagrams at k=4) and pumps both
// channels single-threaded until the frame completes or a per-mode
// deadline passes. Fire-and-forget frames that never complete are
// expired out of the reassembler and counted unrecoverable.
//
// Gates: recovery never does worse at any loss rate and is strictly
// better at 5 % and 10 %; recovery stays >= 90 % at every rate; at
// least one frame completes on FEC alone (repair, zero NACKs for that
// frame); at least one fragment is actually retransmitted; fire-and-
// forget leaves unrecoverable frames at 5 %+; the three recovery
// counters (mar_net_rtx_total, mar_net_fec_repairs_total,
// mar_net_frames_unrecoverable_total) show up non-zero on a live
// /metrics scrape; and the fire-and-forget 5 % cell is bit-identical
// on a same-seed rerun. Emits BENCH_lossy_link.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/fig_util.h"
#include "net/frame_channel.h"
#include "net/http.h"
#include "telemetry/registry.h"

using namespace mar;
using namespace mar::bench;
using Clock = std::chrono::steady_clock;

namespace {

constexpr int kFrames = 30;
constexpr std::size_t kPayloadBytes = 280 * 1024;  // 5 fragments of <= 60 KB
constexpr int kFecGroup = 4;
constexpr double kLossRates[] = {0.01, 0.05, 0.10};

struct CellResult {
  std::string name;
  std::string mode;
  double loss = 0.0;
  int delivered = 0;
  double success_rate = 0.0;
  double mean_e2e_ms = 0.0;
  std::uint64_t harness_dropped = 0;
  std::uint64_t fec_repairs = 0;
  std::uint64_t frames_fec_only = 0;
  std::uint64_t rtx_fragments = 0;
  std::uint64_t nacks = 0;
  std::uint64_t unrecoverable = 0;
};

std::string cell_name(bool recovery, double loss) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s_loss%g", recovery ? "rtx_fec" : "fnf", loss * 100.0);
  return buf;
}

CellResult run_cell(bool recovery, double loss, std::uint64_t seed) {
  net::ChannelOptions sender_opts;
  sender_opts.enable_rtx = recovery;
  sender_opts.fec_group = recovery ? kFecGroup : 0;
  sender_opts.tx_loss_rate = loss;
  sender_opts.tx_loss_seed = seed;

  net::ChannelOptions receiver_opts;
  receiver_opts.enable_rtx = recovery;
  receiver_opts.rtx.nack_timeout = std::chrono::milliseconds(10);
  // Fire-and-forget: expire doomed partials quickly so the
  // unrecoverable accounting is visible inside the bench run.
  receiver_opts.reassembly_timeout =
      recovery ? std::chrono::milliseconds(500) : std::chrono::milliseconds(50);

  net::FrameChannel sender(sender_opts);
  net::FrameChannel receiver(receiver_opts);
  if (!sender.open(0).is_ok() || !receiver.open(0).is_ok()) {
    std::fprintf(stderr, "socket open failed\n");
    std::exit(2);
  }
  const net::SockAddr dst = receiver.local_addr().value();

  // Deterministic payload bytes; content is irrelevant to the duel.
  std::vector<std::uint8_t> payload(kPayloadBytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>((i * 131 + seed) & 0xFF);
  }

  CellResult cell;
  cell.name = cell_name(recovery, loss);
  cell.mode = recovery ? "rtx_fec" : "fire_and_forget";
  cell.loss = loss;

  const auto frame_deadline =
      recovery ? std::chrono::milliseconds(400) : std::chrono::milliseconds(40);
  double e2e_sum_ms = 0.0;
  for (int f = 0; f < kFrames; ++f) {
    wire::FramePacket pkt;
    pkt.header.client = ClientId{1};
    pkt.header.frame = FrameId{static_cast<std::uint64_t>(f)};
    pkt.header.stage = Stage::kPrimary;
    pkt.payload = payload;
    pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());

    const auto t0 = Clock::now();
    if (auto st = sender.send(pkt, dst); !st.is_ok()) {
      std::fprintf(stderr, "send failed: %s\n", st.message().c_str());
      std::exit(2);
    }
    const auto deadline = t0 + frame_deadline;
    bool got = false;
    while (Clock::now() < deadline) {
      if (auto rx = receiver.poll(1)) {
        e2e_sum_ms += std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
        ++cell.delivered;
        got = true;
        (void)rx;
        break;
      }
      sender.poll(0);  // answer NACKs, absorb ACKs
    }
    if (!got) sender.poll(0);
  }

  // Flush doomed partials so unrecoverable frames are all counted.
  const auto flush_until = Clock::now() + receiver_opts.reassembly_timeout +
                           std::chrono::milliseconds(20);
  while (Clock::now() < flush_until) {
    receiver.poll(1);
    sender.poll(0);
  }

  cell.success_rate = static_cast<double>(cell.delivered) / kFrames;
  cell.mean_e2e_ms = cell.delivered > 0 ? e2e_sum_ms / cell.delivered : 0.0;
  cell.harness_dropped = sender.harness_dropped();
  cell.fec_repairs = receiver.fec_repairs();
  cell.frames_fec_only = receiver.frames_fec_only();
  cell.rtx_fragments = sender.rtx_fragments_sent();
  cell.nacks = receiver.nacks_sent();
  cell.unrecoverable = receiver.frames_unrecoverable();
  return cell;
}

// Minimal blocking HTTP client: one request, read to EOF (the metrics
// server closes after each response).
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// Whether the scrape has a `name<suffix> <value>` sample with value > 0.
bool counter_nonzero(const std::string& scrape, const std::string& name) {
  std::istringstream lines(scrape);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(name, 0) != 0 || line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    if (space == std::string::npos) continue;
    if (std::atof(line.c_str() + space + 1) > 0.0) return true;
  }
  return false;
}

}  // namespace

int main() {
  std::printf("Lossy-link duel: fire-and-forget vs FEC(k=%d)+NACK rtx, %d frames of %zu KB\n",
              kFecGroup, kFrames, kPayloadBytes / 1024);
  auto& registry = telemetry::MetricRegistry::instance();
  registry.set_enabled(true);

  std::vector<CellResult> cells;
  for (double loss : kLossRates) {
    const auto seed = static_cast<std::uint64_t>(loss * 1000.0) + 7;
    cells.push_back(run_cell(/*recovery=*/false, loss, seed));
    cells.push_back(run_cell(/*recovery=*/true, loss, seed));
  }
  // Determinism witness: the fire-and-forget harness has no timing
  // dependence, so the same seed must reproduce the 5 % cell exactly.
  const CellResult fnf5_again = run_cell(/*recovery=*/false, 0.05, 57);
  const CellResult& fnf5 = cells[2];
  const bool rerun_identical = fnf5_again.delivered == fnf5.delivered &&
                               fnf5_again.harness_dropped == fnf5.harness_dropped &&
                               fnf5_again.unrecoverable == fnf5.unrecoverable;

  expt::print_banner("Frame success under per-datagram loss");
  Table t({"cell", "loss", "delivered", "success", "dropped", "FEC repairs", "rtx frags",
           "NACKs", "unrecoverable", "mean e2e ms"});
  for (const auto& c : cells) {
    t.add_row({c.name, Table::num(c.loss * 100.0, 0) + "%",
               std::to_string(c.delivered) + "/" + std::to_string(kFrames),
               Table::num(c.success_rate * 100.0, 1) + "%", std::to_string(c.harness_dropped),
               std::to_string(c.fec_repairs), std::to_string(c.rtx_fragments),
               std::to_string(c.nacks), std::to_string(c.unrecoverable),
               Table::num(c.mean_e2e_ms, 1)});
  }
  t.print();

  // Live witness: the recovery counters must be visible on /metrics.
  net::HttpServer server;
  net::serve_metrics(server, registry);
  bool metrics_witnessed = false;
  if (server.start(0).is_ok()) {
    const std::string scrape = http_get(server.port(), "/metrics");
    metrics_witnessed = counter_nonzero(scrape, "mar_net_rtx_total") &&
                        counter_nonzero(scrape, "mar_net_fec_repairs_total") &&
                        counter_nonzero(scrape, "mar_net_frames_unrecoverable_total");
    server.stop();
  }

  int failures = 0;
  auto gate = [&](bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  };

  expt::print_banner("Gates");
  for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
    const CellResult& fnf = cells[i];
    const CellResult& rec = cells[i + 1];
    const bool strict = fnf.loss >= 0.05 - 1e-9;
    const bool ok = strict ? rec.success_rate > fnf.success_rate
                           : rec.success_rate >= fnf.success_rate;
    gate(ok, "at " + jnum(fnf.loss * 100.0) + "% loss recovery " +
                 (strict ? "strictly beats" : "does no worse than") + " fire-and-forget (" +
                 jnum(rec.success_rate) + " vs " + jnum(fnf.success_rate) + ")");
    gate(rec.success_rate >= 0.90, "recovery holds >= 90% at " + jnum(fnf.loss * 100.0) +
                                       "% loss (" + jnum(rec.success_rate) + ")");
  }
  std::uint64_t fec_only = 0, rtx_total = 0, fnf_unrecoverable = 0;
  for (const auto& c : cells) {
    if (c.mode == "rtx_fec") {
      fec_only += c.frames_fec_only;
      rtx_total += c.rtx_fragments;
    } else if (c.loss >= 0.05 - 1e-9) {
      fnf_unrecoverable += c.unrecoverable;
    }
  }
  gate(fec_only >= 1, "at least one frame completed on FEC alone, zero NACKs (" +
                          std::to_string(fec_only) + ")");
  gate(rtx_total >= 1,
       "NACKs produced actual retransmissions (" + std::to_string(rtx_total) + " fragments)");
  gate(fnf_unrecoverable >= 1, "fire-and-forget leaves unrecoverable frames at 5%+ (" +
                                   std::to_string(fnf_unrecoverable) + ")");
  gate(metrics_witnessed,
       "mar_net_{rtx,fec_repairs,frames_unrecoverable}_total non-zero on live /metrics");
  gate(rerun_identical, "same-seed fire-and-forget rerun is bit-identical");

  std::ostringstream json;
  json << "{\n  \"bench\": \"lossy_link\",\n  \"frames_per_cell\": " << kFrames
       << ",\n  \"payload_bytes\": " << kPayloadBytes << ",\n  \"fec_group\": " << kFecGroup
       << ",\n  \"runs\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    json << (i == 0 ? "\n    " : ",\n    ") << "{\"name\": " << jstr(c.name)
         << ", \"mode\": " << jstr(c.mode) << ", \"loss\": " << jnum(c.loss)
         << ", \"delivered\": " << c.delivered
         << ", \"success_rate\": " << jnum(c.success_rate)
         << ", \"harness_dropped\": " << c.harness_dropped
         << ", \"fec_repairs\": " << c.fec_repairs
         << ", \"frames_fec_only\": " << c.frames_fec_only
         << ", \"rtx_fragments\": " << c.rtx_fragments << ", \"nacks\": " << c.nacks
         << ", \"unrecoverable\": " << c.unrecoverable
         << ", \"mean_e2e_ms\": " << jnum(c.mean_e2e_ms) << "}";
  }
  json << "\n  ],\n  \"metrics_witnessed\": " << (metrics_witnessed ? "true" : "false")
       << ",\n  \"deterministic_rerun_identical\": " << (rerun_identical ? "true" : "false")
       << ",\n  \"gates_failed\": " << failures << "\n}\n";
  const char* out_path = "BENCH_lossy_link.json";
  if (write_text_file(out_path, json.str())) std::printf("wrote %s\n", out_path);

  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d gate(s) violated\n", failures);
    return 1;
  }
  std::printf("all gates PASSED\n");
  return 0;
}
