// Shared helpers for the per-figure benchmark binaries.
#pragma once

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "expt/experiment.h"
#include "expt/table.h"

namespace mar::bench {

using expt::ExperimentConfig;
using expt::ExperimentResult;
using expt::Site;
using expt::SymbolicPlacement;
using expt::Table;

// The paper's four baseline placements (§4, Fig. 2), pipeline order
// [primary, sift, encoding, lsh, matching].
struct NamedPlacement {
  std::string name;
  SymbolicPlacement placement;
};

inline std::vector<NamedPlacement> baseline_placements() {
  return {
      {"C1 (all E1)", SymbolicPlacement::single(Site::kE1)},
      {"C2 (all E2)", SymbolicPlacement::single(Site::kE2)},
      {"C12 [E1,E1,E2,E2,E2]",
       SymbolicPlacement::per_stage({Site::kE1, Site::kE1, Site::kE2, Site::kE2, Site::kE2})},
      {"C21 [E2,E2,E1,E1,E1]",
       SymbolicPlacement::per_stage({Site::kE2, Site::kE2, Site::kE1, Site::kE1, Site::kE1})},
  };
}

inline const std::array<Stage, kNumStages> kStages = {
    Stage::kPrimary, Stage::kSift, Stage::kEncoding, Stage::kLsh, Stage::kMatching};

// Per-service columns ("primary", "sift", ...) after a leading label column.
inline std::vector<std::string> service_columns(const std::string& first) {
  std::vector<std::string> cols{first};
  for (Stage s : kStages) cols.emplace_back(to_string(s));
  return cols;
}

// --- BENCH_*.json summary output ------------------------------------
// Each fig bench writes a machine-readable summary next to where it
// runs (the files are gitignored run artifacts, like BENCH_vision.json).
// JSON is assembled with ostringstream + these two formatters — the
// same idiom as expt::to_json.

inline std::string jnum(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

inline bool write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace mar::bench
