// Figure 12 (appendix A.2): sidecar analytics with all scAtteR++
// services on E1, clients joining one per minute up to four.
//
// Expected shape: services keep up until the third client joins
// (~90 FPS ingress); then queue drops appear downstream of sift —
// encoding dropping close to half — because frames have already aged in
// earlier queues even though sift itself processes at line rate.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Figure 12: scAtteR++ sidecar analytics, all services on E1\n");

  constexpr int kClients = 4;
  const SimDuration kInterval = seconds(60.0);

  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = SymbolicPlacement::single(Site::kE1);
  cfg.num_clients = kClients;
  cfg.client_stagger = kInterval;
  cfg.warmup = 0;
  cfg.duration = kInterval * kClients;
  cfg.seed = 8012;

  expt::Experiment e(cfg);
  e.run();

  expt::print_banner("Per-service ingress FPS / drop ratio per one-minute interval");
  Table t(service_columns("clients/metric"));
  for (int m = 0; m < kClients; ++m) {
    std::vector<std::string> in_row{"n=" + std::to_string(m + 1) + " FPS"};
    std::vector<std::string> drop_row{"n=" + std::to_string(m + 1) + " drop"};
    for (Stage s : kStages) {
      double ingress = 0.0, drops = 0.0;
      for (dsp::ServiceHost* host : e.deployment().hosts_of(s)) {
        for (int sec = m * 60; sec < (m + 1) * 60; ++sec) {
          ingress += static_cast<double>(
              host->stats().ingress_per_sec.count_at(static_cast<std::size_t>(sec)));
          drops += static_cast<double>(
              host->stats().drops_per_sec.count_at(static_cast<std::size_t>(sec)));
        }
      }
      in_row.push_back(Table::num(ingress / 60.0, 1));
      drop_row.push_back(ingress > 0 ? Table::pct(drops / ingress) : "0.0%");
    }
    t.add_row(std::move(in_row));
    t.add_row(std::move(drop_row));
  }
  t.print();

  return 0;
}
