// Crash-recovery experiment: kill a sift replica mid-run and measure
// how each system rides it out (paper §5: statefulness is the fault
// line between scAtteR and scAtteR++).
//
// Setup: C2-ish placement with sift x2 (E2 + E1), 3 clients, heartbeat
// failover on (200 ms probes, 600 ms suspicion, 800 ms respawn). At
// t=+10 s into the measurement window the E2 sift replica is killed by
// a scripted FaultPlan.
//
// What the crash does differently per system:
//  * scAtteR: the dead replica's feature store dies with it. Every
//    in-flight frame pinned to that replica now *must* miss its state
//    fetch; matching busy-waits the 22 ms deadline (plus one retry)
//    per orphan, serializing the stage — the dip is deeper and longer
//    than the instantaneous frame loss.
//  * scAtteR++: state rides inside the frames, so the crash costs only
//    the frames physically inside the replica at that instant; routing
//    shifts to the survivor on the very next resolve().
//
// Measured from the clients' per-second delivered-frame series:
//  dip depth     — baseline minus the worst post-crash second,
//  MTTR          — first second >= crash whose next 3 s all clear 90 %
//                  of baseline,
//  frames lost   — sum of (baseline - delivered) over the post-crash
//                  window.
//
// Gates: both systems recover; scAtteR++ recovers strictly faster and
// loses strictly fewer frames; scAtteR loses stored state while
// scAtteR++ loses none; failover actually evicted + respawned; and a
// same-seed rerun is bit-identical (determinism of seed + plan).
// Emits BENCH_fault_recovery.json.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/fig_util.h"
#include "expt/forensics.h"
#include "fault/fault_plan.h"
#include "telemetry/trace.h"

using namespace mar;
using namespace mar::bench;

namespace {

constexpr int kClients = 3;
constexpr int kDurationS = 40;
constexpr int kCrashAtS = 10;
constexpr int kBaselineFromS = 2;
constexpr int kBaselineToS = 9;  // exclusive
constexpr double kRecoveredFrac = 0.90;
constexpr int kRecoveredRunS = 3;

struct RunOutcome {
  ExperimentResult r;
  std::vector<double> delivered;  // frames/s summed over clients, window-relative
  double baseline = 0.0;
  double dip_depth = 0.0;
  double mttr_s = -1.0;  // -1 = never recovered
  double frames_lost = 0.0;
  bool recovered = false;
};

RunOutcome run_one(core::PipelineMode mode, std::uint64_t seed) {
  // One trace ring per run; tail retention keeps the crash-window
  // frames (drop-flushed and fault/outlier promotions) so the dip can
  // be inspected frame by frame. The retention plane is telemetry-only
  // — the determinism gate below compares its counters across the
  // same-seed rerun along with the delivered-frame series.
  telemetry::Tracer::instance().clear();
  ExperimentConfig cfg;
  cfg.mode = mode;
  // sift x2 so the pipeline survives the crash: replica 0 on E2 (the
  // victim), replica 1 on E1; everything else on E2.
  cfg.placement = SymbolicPlacement::replicated({1, 2, 1, 1, 1}, Site::kE2, Site::kE1);
  cfg.num_clients = kClients;
  cfg.warmup = seconds(5.0);
  cfg.duration = seconds(static_cast<double>(kDurationS));
  cfg.seed = seed;
  // One bounded retry before a fetch deadline fails the frame.
  cfg.costs.state_fetch_retries = 1;
  cfg.trace_sample_every = 0;
  cfg.retention.emplace();

  const auto plan = fault::FaultPlan::parse("crash@10s:stage=sift,replica=0");
  if (!plan.is_ok()) {
    std::fprintf(stderr, "bad fault plan: %s\n", plan.status().message().c_str());
    std::exit(2);
  }
  cfg.fault_plan = plan.value();

  orchestra::FailoverConfig fo;
  fo.heartbeat_interval = millis(200.0);
  fo.suspicion_timeout = millis(600.0);
  fo.respawn_delay = millis(800.0);
  cfg.failover = fo;

  expt::Experiment e(cfg);
  e.run();

  RunOutcome out;
  out.r = e.result();

  // Delivered frames per window-second, summed over clients. The
  // per-second series are indexed by absolute sim time; the window
  // starts at `warmup`.
  const std::size_t first = static_cast<std::size_t>(e.window_start() / kSecond);
  out.delivered.assign(kDurationS, 0.0);
  for (const auto& c : e.clients()) {
    for (int w = 0; w < kDurationS; ++w) {
      out.delivered[static_cast<std::size_t>(w)] +=
          static_cast<double>(c->stats().success_per_sec.count_at(first + static_cast<std::size_t>(w)));
    }
  }

  double base_sum = 0.0;
  for (int w = kBaselineFromS; w < kBaselineToS; ++w) {
    base_sum += out.delivered[static_cast<std::size_t>(w)];
  }
  out.baseline = base_sum / static_cast<double>(kBaselineToS - kBaselineFromS);

  double worst = out.baseline;
  for (int w = kCrashAtS; w < std::min(kCrashAtS + 8, kDurationS); ++w) {
    worst = std::min(worst, out.delivered[static_cast<std::size_t>(w)]);
  }
  out.dip_depth = out.baseline - worst;

  const double threshold = kRecoveredFrac * out.baseline;
  for (int w = kCrashAtS; w + kRecoveredRunS <= kDurationS; ++w) {
    bool ok = true;
    for (int k = 0; k < kRecoveredRunS; ++k) {
      if (out.delivered[static_cast<std::size_t>(w + k)] < threshold) {
        ok = false;
        break;
      }
    }
    if (ok) {
      out.recovered = true;
      out.mttr_s = static_cast<double>(w - kCrashAtS);
      break;
    }
  }

  for (int w = kCrashAtS; w < kDurationS; ++w) {
    out.frames_lost +=
        std::max(0.0, out.baseline - out.delivered[static_cast<std::size_t>(w)]);
  }
  return out;
}

std::string series_json(const std::vector<double>& v) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < v.size(); ++i) out << (i ? ", " : "") << jnum(v[i]);
  out << "]";
  return out.str();
}

bool identical(const RunOutcome& a, const RunOutcome& b) {
  return a.delivered == b.delivered && a.r.fps_mean == b.r.fps_mean &&
         a.r.e2e_ms_mean == b.r.e2e_ms_mean && a.r.success_rate == b.r.success_rate &&
         a.r.fault.state_lost == b.r.fault.state_lost &&
         a.r.fault.fetch_timeouts == b.r.fault.fetch_timeouts &&
         a.r.fault.suspected == b.r.fault.suspected &&
         a.r.fault.respawns == b.r.fault.respawns &&
         a.r.fault.tx_suppressed == b.r.fault.tx_suppressed &&
         a.r.fault.routing_failures == b.r.fault.routing_failures &&
         // Tail retention rides along in every run; its verdicts must
         // reproduce bit-for-bit too.
         a.r.retention.frames_closed == b.r.retention.frames_closed &&
         a.r.retention.retained_total() == b.r.retention.retained_total() &&
         a.r.retention.drop_flushed == b.r.retention.drop_flushed;
}

}  // namespace

int main() {
  std::printf("Fault recovery: kill sift[0] at t=+%ds, %d clients, failover on\n", kCrashAtS,
              kClients);

  constexpr std::uint64_t kSeed = 9100;
  telemetry::Tracer::instance().reserve(1u << 20);
  telemetry::Tracer::instance().set_enabled(true);
  const RunOutcome sc = run_one(core::PipelineMode::kScatter, kSeed);
  const RunOutcome pp = run_one(core::PipelineMode::kScatterPP, kSeed);
  // Determinism witness: the same seed + plan must reproduce scAtteR's
  // run bit-for-bit.
  const RunOutcome sc2 = run_one(core::PipelineMode::kScatter, kSeed);

  const struct {
    const char* name;
    const RunOutcome* o;
  } rows[] = {{"scAtteR", &sc}, {"scAtteR++", &pp}};

  expt::print_banner("Crash recovery, per system");
  Table t({"system", "baseline fps", "dip depth", "MTTR(s)", "frames lost", "state lost",
           "fetch timeouts", "suspected", "respawns"});
  for (const auto& row : rows) {
    const RunOutcome& o = *row.o;
    t.add_row({row.name, Table::num(o.baseline, 1), Table::num(o.dip_depth, 1),
               o.recovered ? Table::num(o.mttr_s, 0) : "never", Table::num(o.frames_lost, 1),
               std::to_string(o.r.fault.state_lost), std::to_string(o.r.fault.fetch_timeouts),
               std::to_string(o.r.fault.suspected), std::to_string(o.r.fault.respawns)});
  }
  t.print();

  int failures = 0;
  auto gate = [&](bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  };

  expt::print_banner("Gates");
  gate(sc.recovered && pp.recovered,
       "both systems recover to >=90% of baseline (scAtteR " +
           (sc.recovered ? jnum(sc.mttr_s) + "s" : std::string("never")) + ", scAtteR++ " +
           (pp.recovered ? jnum(pp.mttr_s) + "s" : std::string("never")) + ")");
  gate(pp.recovered && sc.recovered && pp.mttr_s < sc.mttr_s,
       "scAtteR++ recovers strictly faster (MTTR " + jnum(pp.mttr_s) + "s < " +
           jnum(sc.mttr_s) + "s)");
  gate(pp.frames_lost < sc.frames_lost,
       "scAtteR++ loses strictly fewer frames (" + jnum(pp.frames_lost) + " < " +
           jnum(sc.frames_lost) + ")");
  gate(sc.r.fault.state_lost > 0 && pp.r.fault.state_lost == 0,
       "crash drops stored state only under scAtteR (" +
           std::to_string(sc.r.fault.state_lost) + " entries vs 0)");
  gate(sc.r.fault.suspected >= 1 && sc.r.fault.respawns >= 1 && pp.r.fault.suspected >= 1 &&
           pp.r.fault.respawns >= 1,
       "heartbeat failover evicted and respawned the dead replica in both runs");
  gate(identical(sc, sc2), "same seed + same plan is bit-identical on rerun");

  std::ostringstream json;
  json << "{\n  \"bench\": \"fault_recovery\",\n  \"crash_at_s\": " << kCrashAtS
       << ",\n  \"clients\": " << kClients << ",\n  \"systems\": [";
  bool first_sys = true;
  for (const auto& row : rows) {
    const RunOutcome& o = *row.o;
    json << (first_sys ? "\n    " : ",\n    ") << "{\"name\": " << jstr(row.name)
         << ", \"baseline_fps\": " << jnum(o.baseline)
         << ", \"dip_depth_fps\": " << jnum(o.dip_depth)
         << ", \"recovered\": " << (o.recovered ? "true" : "false")
         << ", \"mttr_s\": " << jnum(o.mttr_s)
         << ", \"frames_lost\": " << jnum(o.frames_lost)
         << ", \"state_lost\": " << o.r.fault.state_lost
         << ", \"fetch_timeouts\": " << o.r.fault.fetch_timeouts
         << ", \"fetch_retries\": " << o.r.fault.fetch_retries
         << ", \"suspected\": " << o.r.fault.suspected
         << ", \"respawns\": " << o.r.fault.respawns
         << ", \"routing_failures\": " << o.r.fault.routing_failures
         << ", \"tx_suppressed\": " << o.r.fault.tx_suppressed
         << ", \"delivered_per_sec\": " << series_json(o.delivered) << "}";
    first_sys = false;
  }
  json << "\n  ],\n  \"deterministic_rerun_identical\": " << (identical(sc, sc2) ? "true" : "false")
       << ",\n  \"gates_failed\": " << failures << "\n}\n";
  const char* out_path = "BENCH_fault_recovery.json";
  if (write_text_file(out_path, json.str())) std::printf("wrote %s\n", out_path);

  // Frame forensics epilogue: the trace ring still holds the final
  // (scAtteR rerun) crash run's retained traces — reconstruct its
  // worst frames so the report names where the dip's latency went.
  // Stdout only; the JSON above is already written.
  {
    expt::print_banner("Tail retention, per system");
    Table rt({"system", "frames closed", "retained", "drop-flushed", "recycled"});
    for (const auto& row : rows) {
      const auto& ret = row.o->r.retention;
      rt.add_row({row.name, std::to_string(ret.frames_closed),
                  std::to_string(ret.retained_total()), std::to_string(ret.drop_flushed),
                  std::to_string(ret.recycled)});
    }
    rt.print();

    const expt::TraceLog log = expt::from_tracer(telemetry::Tracer::instance());
    expt::print_banner("Worst retained frames of the final run (frame forensics)");
    for (std::uint32_t id : expt::worst_trace_ids(log, 3)) {
      if (const auto tl = expt::reconstruct_frame(log, id)) {
        std::fputs(expt::render_timeline(*tl).c_str(), stdout);
        std::fputc('\n', stdout);
      }
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d gate(s) violated\n", failures);
    return 1;
  }
  std::printf("all gates PASSED\n");
  return 0;
}
