// Figure 7: scAtteR++ FPS when increasing scaled services and clients.
//
// Replication configs [1,2,2,1,2], [1,2,1,1,2], [1,3,2,1,3] (counts per
// stage, base replica on E2 and extras on E1), swept over 1-10
// concurrent clients.
//
// Expected shape (paper §5): scAtteR++ scales out because sift is
// stateless — at 8 clients it still achieves the framerate scAtteR
// managed with 4 on the same cluster (~2.8x capacity); [1,3,2,1,3]
// sustains the most clients.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Figure 7: scAtteR++ with replicated services, 1-10 clients\n");

  const std::vector<NamedPlacement> configs = {
      {"[1,2,2,1,2]", SymbolicPlacement::replicated({1, 2, 2, 1, 2})},
      {"[1,2,1,1,2]", SymbolicPlacement::replicated({1, 2, 1, 1, 2})},
      {"[1,3,2,1,3]", SymbolicPlacement::replicated({1, 3, 2, 1, 3})},
  };
  constexpr int kMaxClients = 10;

  expt::print_banner("FPS per client (median over clients)");
  std::vector<std::string> cols{"clients"};
  for (const auto& c : configs) cols.push_back(c.name);
  Table t(cols);
  for (int n = 1; n <= kMaxClients; ++n) {
    std::vector<std::string> row{std::to_string(n)};
    for (std::size_t p = 0; p < configs.size(); ++p) {
      ExperimentConfig cfg;
      cfg.mode = core::PipelineMode::kScatterPP;
      cfg.placement = configs[p].placement;
      cfg.num_clients = n;
      cfg.seed = 7000 + p * 100 + static_cast<std::size_t>(n);
      const ExperimentResult r = expt::run_experiment(cfg);
      row.push_back(Table::num(r.fps_median, 1));
    }
    t.add_row(std::move(row));
  }
  t.print();

  return 0;
}
