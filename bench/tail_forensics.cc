// Tail-retention acceptance bench: does the flight-recorder keep the
// frames the paper's analysis actually needs?
//
// A fig2-style edge run under scAtteR++ (placement C2, 2 clients) with
// tail retention on and head sampling off (trace_sample_every = 0 —
// the tail policy, not the frame counter, decides what survives). The
// steady state is healthy (~27 FPS/client, no drops); at t=+20 s a
// scripted 3 s brownout cuts E2 to 5 % CPU, so the sidecar queues
// back up and the run contains exactly the traffic tail tracing
// exists for: a burst of stale drops at dequeue, an SLO-violation
// window, and p99 outliers — then full recovery.
//
// Gates (ISSUE 5 acceptance):
//  * >= 95 % of stale-dropped frames have a retained trace — distinct
//    trace ids with a drop_stale instant in the durable ring vs the
//    hosts' dropped_stale counters (both measurement-window scoped),
//  * >= 95 % of SLO-breaching frames retained (retained_slo over
//    slo_breach_frames),
//  * total retained traces <= 10 % of frames (closed + drop-flushed),
//  * at least one mar_frame_e2e_ms exemplar whose trace_id resolves
//    via expt::reconstruct_frame() to a retained trace,
//  * frame_forensics-style --worst 3 reconstruction yields a complete
//    capture->verdict timeline for each (printed below the tables).
//
// Emits BENCH_tail_forensics.json and tail_forensics_events.log (the
// latter is what `frame_forensics` consumes; both are run artifacts).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/fig_util.h"
#include "expt/forensics.h"
#include "fault/fault_plan.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

using namespace mar;
using namespace mar::bench;

namespace {

constexpr int kClients = 2;
constexpr double kDurationS = 60.0;
constexpr double kMaxRetainedFrac = 0.10;
constexpr double kMinCoverage = 0.95;

struct Gate {
  std::string name;
  bool pass = false;
  std::string detail;
};

void print_gates(const std::vector<Gate>& gates) {
  expt::print_banner("Acceptance gates");
  for (const auto& g : gates) {
    std::printf("  [%s] %s (%s)\n", g.pass ? "PASS" : "FAIL", g.name.c_str(),
                g.detail.c_str());
  }
}

}  // namespace

int main(int, char**) {
  std::printf("Tail retention & frame forensics: scAtteR++ brownout run, %d clients\n",
              kClients);

  auto& tracer = telemetry::Tracer::instance();
  tracer.reserve(1u << 20);
  tracer.set_enabled(true);
  tracer.clear();
  telemetry::MetricRegistry::instance().set_enabled(true);

  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = SymbolicPlacement::single(Site::kE2);  // fig2's C2
  cfg.num_clients = kClients;
  cfg.duration = seconds(kDurationS);
  cfg.seed = 7001;
  // Tail retention decides what survives; head sampling is off.
  cfg.trace_sample_every = 0;
  cfg.retention.emplace();
  cfg.retention->baseline_every = 128;
  cfg.retention->outlier_factor = 1.2;
  // SLO sized to the healthy steady state (~27 FPS/client, p95 ~50 ms)
  // so only the brownout dip violates it; the short window lets the
  // watchdog clear soon after recovery instead of smearing the breach
  // over the whole run.
  expt::SloTargets slo;
  slo.min_fps = 22.0;
  slo.max_e2e_p99_ms = 120.0;
  slo.window = seconds(2.0);
  slo.warmup = seconds(1.0);
  cfg.slo = slo;

  // Machine 1 is E2 (testbed adds E1, E2, cloud, clients in order).
  const auto plan = fault::FaultPlan::parse("brownout@20s+3s:machine=1,frac=0.05");
  if (!plan.is_ok()) {
    std::fprintf(stderr, "bad fault plan: %s\n", plan.status().message().c_str());
    return 2;
  }
  cfg.fault_plan = plan.value();

  expt::Experiment e(cfg);
  e.run();
  const ExperimentResult r = e.result();
  const expt::RetentionReport& ret = r.retention;

  // Window-scoped stale drops: the hosts' counters reset at the window
  // start, so only trace events at/after it are comparable.
  std::uint64_t stale_dropped = 0;
  for (Stage s : kStages) {
    for (const dsp::ServiceHost* h : e.deployment().hosts_of(s)) {
      stale_dropped += h->stats().dropped_stale;
    }
  }
  const expt::TraceLog log = expt::from_tracer(tracer);
  std::set<std::uint32_t> stale_traced;
  for (const auto& ev : log.events) {
    if (ev.trace_id != 0 && ev.ts >= e.window_start() &&
        ev.phase == telemetry::TracePhase::kInstant &&
        std::strcmp(ev.name, telemetry::spans::kDropStale) == 0) {
      stale_traced.insert(ev.trace_id);
    }
  }

  const std::uint64_t frames_resolved = ret.frames_closed + ret.drop_flushed;
  const double stale_cov =
      stale_dropped ? static_cast<double>(stale_traced.size()) /
                          static_cast<double>(stale_dropped)
                    : 0.0;
  const double slo_cov =
      ret.slo_breach_frames ? static_cast<double>(ret.retained_slo) /
                                  static_cast<double>(ret.slo_breach_frames)
                            : 0.0;
  const double retained_frac =
      frames_resolved ? static_cast<double>(ret.retained_total()) /
                            static_cast<double>(frames_resolved)
                      : 1.0;

  Table summary({"frames", "retained", "kept %", "stale drops", "stale traced",
                 "slo frames", "kept slo"});
  summary.add_row({std::to_string(frames_resolved), std::to_string(ret.retained_total()),
               jnum(100.0 * retained_frac), std::to_string(stale_dropped),
               std::to_string(stale_traced.size()), std::to_string(ret.slo_breach_frames),
               std::to_string(ret.retained_slo)});
  summary.print();
  Table split({"kept slo", "kept fault", "kept outlier", "kept base", "drop-flushed",
               "recycled", "evicted", "truncated"});
  split.add_row({std::to_string(ret.retained_slo), std::to_string(ret.retained_fault),
             std::to_string(ret.retained_outlier), std::to_string(ret.retained_baseline),
             std::to_string(ret.drop_flushed), std::to_string(ret.recycled),
             std::to_string(ret.evicted), std::to_string(ret.truncated)});
  split.print();

  // Exemplar gate: a bucket exemplar of mar_frame_e2e_ms must point at
  // a trace that reconstructs as retained.
  auto& hist = telemetry::MetricRegistry::instance().histogram(
      "mar_frame_e2e_ms", "End-to-end frame latency (capture to result).",
      telemetry::FixedHistogram::default_latency_ms_bounds());
  std::uint32_t exemplar_id = 0;
  double exemplar_ms = 0.0;
  bool exemplar_resolves = false;
  for (const auto& ex : hist.exemplars()) {
    if (ex.trace_id == 0) continue;
    const auto tl = expt::reconstruct_frame(log, ex.trace_id);
    if (tl && tl->retain_reason != telemetry::RetainReason::kNone) {
      exemplar_id = ex.trace_id;
      exemplar_ms = ex.value;
      exemplar_resolves = true;
      break;
    }
  }

  // Worst-3 forensics, the frame_forensics --worst 3 view.
  const auto worst = expt::worst_trace_ids(log, 3);
  std::size_t worst_complete = 0;
  expt::print_banner("Worst retained frames (capture->verdict)");
  for (std::uint32_t id : worst) {
    const auto tl = expt::reconstruct_frame(log, id);
    if (!tl) continue;
    if (tl->complete()) ++worst_complete;
    std::fputs(expt::render_timeline(*tl).c_str(), stdout);
    std::fputc('\n', stdout);
  }

  tracer.write_event_log("tail_forensics_events.log");
  std::printf("wrote tail_forensics_events.log (%zu events) — inspect with "
              "./build/examples/frame_forensics\n",
              log.events.size());

  std::vector<Gate> gates;
  gates.push_back({"stale-dropped frames have retained traces",
                   stale_dropped > 0 && stale_cov >= kMinCoverage,
                   jnum(100.0 * stale_cov) + "% of " + std::to_string(stale_dropped)});
  gates.push_back({"SLO-breaching frames retained",
                   ret.slo_breach_frames > 0 && slo_cov >= kMinCoverage,
                   jnum(100.0 * slo_cov) + "% of " + std::to_string(ret.slo_breach_frames)});
  gates.push_back({"retained traces <= 10% of frames", retained_frac <= kMaxRetainedFrac,
                   jnum(100.0 * retained_frac) + "%"});
  gates.push_back({"histogram exemplar resolves to a retained trace", exemplar_resolves,
                   exemplar_resolves
                       ? "trace_id=" + std::to_string(exemplar_id) + " @ " +
                             jnum(exemplar_ms) + " ms"
                       : "no exemplar resolved"});
  gates.push_back({"worst-3 timelines complete",
                   worst.size() == 3 && worst_complete == worst.size(),
                   std::to_string(worst_complete) + "/" + std::to_string(worst.size())});
  print_gates(gates);

  int failed = 0;
  for (const auto& g : gates) failed += g.pass ? 0 : 1;

  std::ostringstream json;
  json << "{\n  \"bench\": \"tail_forensics\",\n";
  json << "  \"clients\": " << kClients << ",\n";
  json << "  \"duration_s\": " << jnum(kDurationS) << ",\n";
  json << "  \"frames_resolved\": " << frames_resolved << ",\n";
  json << "  \"frames_closed\": " << ret.frames_closed << ",\n";
  json << "  \"retained_total\": " << ret.retained_total() << ",\n";
  json << "  \"retained_frac\": " << jnum(retained_frac) << ",\n";
  json << "  \"retained_slo\": " << ret.retained_slo << ",\n";
  json << "  \"retained_fault\": " << ret.retained_fault << ",\n";
  json << "  \"retained_outlier\": " << ret.retained_outlier << ",\n";
  json << "  \"retained_baseline\": " << ret.retained_baseline << ",\n";
  json << "  \"drop_flushed\": " << ret.drop_flushed << ",\n";
  json << "  \"recycled\": " << ret.recycled << ",\n";
  json << "  \"evicted\": " << ret.evicted << ",\n";
  json << "  \"truncated\": " << ret.truncated << ",\n";
  json << "  \"stale_dropped\": " << stale_dropped << ",\n";
  json << "  \"stale_traced\": " << stale_traced.size() << ",\n";
  json << "  \"stale_coverage\": " << jnum(stale_cov) << ",\n";
  json << "  \"slo_breach_frames\": " << ret.slo_breach_frames << ",\n";
  json << "  \"slo_coverage\": " << jnum(slo_cov) << ",\n";
  json << "  \"exemplar_trace_id\": " << exemplar_id << ",\n";
  json << "  \"fps_mean\": " << jnum(r.fps_mean) << ",\n";
  json << "  \"e2e_ms_mean\": " << jnum(r.e2e_ms_mean) << ",\n";
  json << "  \"gates_failed\": " << failed << "\n}\n";
  if (!write_text_file("BENCH_tail_forensics.json", json.str())) {
    std::fprintf(stderr, "failed to write BENCH_tail_forensics.json\n");
    return 1;
  }
  std::printf("wrote BENCH_tail_forensics.json\n");
  if (failed) {
    std::printf("%d gate(s) FAILED\n", failed);
    return 1;
  }
  std::printf("all acceptance gates PASSED\n");
  return 0;
}
