// Ablation: the sidecar's staleness threshold (scAtteR++ uses 100 ms,
// the XR latency budget). Sweeping it shows the trade-off the paper's
// design point sits on: a tight threshold sheds more frames but keeps
// delivered frames fresh; a loose one maximizes throughput at the cost
// of stale (high-E2E) deliveries.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Ablation: sidecar staleness threshold (scAtteR++, C2, 4 & 8 clients)\n");

  const struct {
    const char* name;
    SimDuration value;
  } thresholds[] = {
      {"25 ms", millis(25.0)},   {"50 ms", millis(50.0)},   {"100 ms (paper)", millis(100.0)},
      {"200 ms", millis(200.0)}, {"unbounded", 0},
  };

  for (int clients : {4, 8}) {
    expt::print_banner("clients = " + std::to_string(clients));
    Table t({"threshold", "FPS/client", "E2E ms (mean)", "E2E ms (p95)", "stale drop %"});
    for (const auto& th : thresholds) {
      ExperimentConfig cfg;
      cfg.mode = core::PipelineMode::kScatterPP;
      cfg.placement = SymbolicPlacement::replicated({1, 2, 2, 1, 2});
      cfg.num_clients = clients;
      cfg.costs.sidecar_threshold = th.value;
      cfg.seed = 14000 + static_cast<std::uint64_t>(clients);
      const ExperimentResult r = expt::run_experiment(cfg);
      double stale = 0.0;
      for (Stage s : kStages) stale += r.stage_drop_ratio(s);
      t.add_row({th.name, Table::num(r.fps_mean, 1), Table::num(r.e2e_ms_mean, 1),
                 Table::num(r.e2e_ms_p95, 1), Table::num(stale / kNumStages * 100.0, 1)});
    }
    t.print();
  }
  return 0;
}
