// Profiling-plane gate: the in-process sampling profiler must actually
// attribute the vision pipeline, and the allocation profiler must
// reproduce the paper's memory story.
//
// Phase A (attribution): run the real AR engine over camera frames
// with the profiler sampling at 99 Hz. Gates: >= 70 % of CPU samples
// resolve to a named stage frame (preprocess/sift/encoding/lsh/
// matching and their nested scopes), the folded output names the sift
// scopes, and enough samples landed for the fraction to mean anything.
//
// Phase B (allocation story): per-frame attributed allocation in the
// sift scopes (scale-space pyramid + descriptors) must dwarf the
// stateless stages — encoding, lsh, matching — by > 10x each. This is
// Fig. 2/Fig. 5 of the paper in miniature: sift's 1.6 -> 4.8 GB
// footprint is the pyramid, not the service logic around it.
//
// Phase C (overhead): min-of-reps process CPU time of the same frame
// loop with the profiler off vs sampling at 99 Hz; gate <= 15 %
// (typically well under 5 %; the bound is loose because the 1-CPU CI
// box shares cores with the collector thread).
//
// A live witness scrapes /metrics and requires mar_profile_samples_
// total nonzero. Emits BENCH_profile.json.
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/fig_util.h"
#include "net/http.h"
#include "telemetry/profiler.h"
#include "telemetry/registry.h"
#include "video/scene.h"
#include "vision/engine.h"

using namespace mar;
using namespace mar::bench;

namespace {

constexpr int kHz = 99;
constexpr int kAttributionFrames = 10;
constexpr int kOverheadFrames = 3;
constexpr int kOverheadReps = 3;

void train_engine(vision::ArEngine& engine, video::WorkplaceScene& scene) {
  engine.add_reference("monitor",
                       scene.render_reference(video::SceneObject::kMonitor, 220, 140));
  engine.add_reference("keyboard",
                       scene.render_reference(video::SceneObject::kKeyboard, 180, 70));
  engine.add_reference("table", scene.render_reference(video::SceneObject::kTable, 290, 75));
  if (!engine.finalize_training()) {
    std::fprintf(stderr, "training failed\n");
    std::exit(1);
  }
}

// Frames are pre-rendered so the profiled loop is pure pipeline work:
// scene rasterization is the camera's job, not a stage the paper
// characterizes, and it would only dilute the attribution fraction.
std::vector<vision::Image> render_clip(video::VideoSource& source, int frames) {
  std::vector<vision::Image> clip;
  clip.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    clip.push_back(source.frame(static_cast<std::uint64_t>(i * 3 % 30)));
  }
  return clip;
}

void run_frames(vision::ArEngine& engine, const std::vector<vision::Image>& clip) {
  for (const vision::Image& frame : clip) (void)engine.process(frame);
}

double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// Attributed bytes of every stage whose name puts it inside the sift
// service: the pyramid, the extrema scan, per-octave blurs, and the
// descriptor buffer.
bool is_sift_stage(const std::string& name) {
  return name.rfind("sift", 0) == 0 || name == "img_blur";
}

std::uint64_t group_bytes(const telemetry::AllocReport& allocs,
                          const std::vector<std::string>& names) {
  std::uint64_t total = 0;
  for (const auto& s : allocs.stages) {
    for (const auto& n : names) {
      if (s.stage == n) total += s.bytes;
    }
  }
  return total;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

bool counter_nonzero(const std::string& scrape, const std::string& name) {
  std::istringstream lines(scrape);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(name, 0) != 0 || line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    if (space == std::string::npos) continue;
    if (std::atof(line.c_str() + space + 1) > 0.0) return true;
  }
  return false;
}

}  // namespace

int main() {
  std::printf("Profile attribution: sampling profiler + alloc attribution on the AR engine\n");
  auto& registry = telemetry::MetricRegistry::instance();
  registry.set_enabled(true);
  auto& profiler = telemetry::Profiler::instance();
  profiler.publish_to_registry();

  video::WorkplaceScene scene;
  vision::ArEngine engine;
  train_engine(engine, scene);
  video::VideoSource source(scene, /*fps=*/30.0);
  const std::vector<vision::Image> clip = render_clip(source, kAttributionFrames);
  const std::vector<vision::Image> short_clip = render_clip(source, kOverheadFrames);
  run_frames(engine, short_clip);  // warm caches / pools before measuring

  // --- Phase A: CPU-sample attribution over the real pipeline --------
  if (auto st = profiler.start(kHz); !st.is_ok()) {
    std::fprintf(stderr, "profiler start failed: %s\n", st.message().c_str());
    return 1;
  }
  run_frames(engine, clip);
  const telemetry::ProfileReport report = profiler.stop();
  const telemetry::AllocReport allocs = profiler.alloc_report();

  const double attributed = report.attributed_fraction();
  const std::string folded = report.folded_text();
  std::printf("\n%llu samples over %.2f s, %.1f%% attributed, %llu dropped, %d threads\n",
              static_cast<unsigned long long>(report.samples), report.duration_s,
              100.0 * attributed, static_cast<unsigned long long>(report.dropped),
              report.threads_profiled);

  // --- Phase B: per-frame allocation by stage ------------------------
  std::uint64_t sift_bytes = 0;
  for (const auto& s : allocs.stages) {
    if (is_sift_stage(s.stage)) sift_bytes += s.bytes;
  }
  const std::uint64_t encoding_bytes = group_bytes(allocs, {"encoding", "fisher_accum"});
  const std::uint64_t lsh_bytes = group_bytes(allocs, {"lsh", "lsh_query"});
  const std::uint64_t matching_bytes = group_bytes(allocs, {"matching", "match_distance"});
  const double per_frame = 1.0 / kAttributionFrames;
  expt::print_banner("Attributed allocation per frame (MB)");
  Table alloc_t({"stage group", "MB/frame"});
  const auto mb = [&](std::uint64_t b) {
    return Table::num(static_cast<double>(b) * per_frame / (1024.0 * 1024.0), 2);
  };
  alloc_t.add_row({"sift (pyramid+descriptors)", mb(sift_bytes)});
  alloc_t.add_row({"encoding", mb(encoding_bytes)});
  alloc_t.add_row({"lsh", mb(lsh_bytes)});
  alloc_t.add_row({"matching", mb(matching_bytes)});
  alloc_t.print();

  // --- Phase C: sampling overhead ------------------------------------
  // Min-of-reps CPU time filters scheduler noise; the profiler-off rep
  // also witnesses that disabled scopes cost one relaxed load.
  double off_s = 1e30, on_s = 1e30;
  for (int r = 0; r < kOverheadReps; ++r) {
    const double t0 = process_cpu_seconds();
    run_frames(engine, short_clip);
    off_s = std::min(off_s, process_cpu_seconds() - t0);
  }
  for (int r = 0; r < kOverheadReps; ++r) {
    if (!profiler.start(kHz).is_ok()) return 1;
    const double t0 = process_cpu_seconds();
    run_frames(engine, short_clip);
    const double dt = process_cpu_seconds() - t0;
    (void)profiler.stop();
    on_s = std::min(on_s, dt);
  }
  const double overhead_pct = off_s > 0.0 ? 100.0 * (on_s - off_s) / off_s : 0.0;
  std::printf("\noverhead: %.3f s off vs %.3f s on at %d Hz (%.1f%%)\n", off_s, on_s, kHz,
              overhead_pct);

  // --- Live witness: profiler counters on /metrics -------------------
  net::HttpServer server;
  net::serve_metrics(server, registry);
  bool metrics_witnessed = false;
  if (server.start(0).is_ok()) {
    const std::string scrape = http_get(server.port(), "/metrics");
    metrics_witnessed = counter_nonzero(scrape, "mar_profile_samples_total") &&
                        counter_nonzero(scrape, "mar_profile_alloc_bytes_total");
    server.stop();
  }

  int failures = 0;
  auto gate = [&](bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  };

  expt::print_banner("Gates");
  gate(report.samples >= 30,
       "enough samples to judge attribution (" + std::to_string(report.samples) + " >= 30)");
  gate(attributed >= 0.70,
       ">= 70% of samples attribute to a named stage (" + jnum(attributed) + ")");
  gate(folded.find("sift_pyramid") != std::string::npos,
       "folded stacks name the sift pyramid scope");
  gate(report.dropped == 0, "no ring-full sample drops at 99 Hz");
  gate(sift_bytes > 10 * encoding_bytes && sift_bytes > 10 * lsh_bytes &&
           sift_bytes > 10 * matching_bytes,
       "sift allocation dwarfs every stateless stage by > 10x (" +
           std::to_string(sift_bytes) + " B vs enc " + std::to_string(encoding_bytes) +
           " / lsh " + std::to_string(lsh_bytes) + " / match " +
           std::to_string(matching_bytes) + ")");
  gate(overhead_pct <= 15.0,
       "99 Hz sampling costs <= 15% CPU (" + jnum(overhead_pct) + "%)");
  gate(metrics_witnessed, "mar_profile_* counters nonzero on a live /metrics scrape");

  std::ostringstream json;
  json << "{\n  \"bench\": \"profile_attribution\",\n"
       << "  \"hz\": " << kHz << ",\n"
       << "  \"frames\": " << kAttributionFrames << ",\n"
       << "  \"samples\": " << report.samples << ",\n"
       << "  \"dropped\": " << report.dropped << ",\n"
       << "  \"threads_profiled\": " << report.threads_profiled << ",\n"
       << "  \"attributed_fraction\": " << jnum(attributed) << ",\n"
       << "  \"alloc_mb_per_frame\": {"
       << "\"sift\": " << jnum(static_cast<double>(sift_bytes) * per_frame / 1048576.0)
       << ", \"encoding\": "
       << jnum(static_cast<double>(encoding_bytes) * per_frame / 1048576.0)
       << ", \"lsh\": " << jnum(static_cast<double>(lsh_bytes) * per_frame / 1048576.0)
       << ", \"matching\": "
       << jnum(static_cast<double>(matching_bytes) * per_frame / 1048576.0) << "},\n"
       << "  \"sift_alloc_dominance\": "
       << jnum(static_cast<double>(sift_bytes) /
               static_cast<double>(std::max<std::uint64_t>(
                   1, std::max(encoding_bytes, std::max(lsh_bytes, matching_bytes)))))
       << ",\n"
       << "  \"overhead_pct\": " << jnum(overhead_pct) << ",\n"
       << "  \"gates_failed\": " << failures << "\n}\n";
  if (!write_text_file("BENCH_profile.json", json.str())) {
    std::fprintf(stderr, "failed to write BENCH_profile.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_profile.json\n");
  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d gate(s) violated\n", failures);
    return 1;
  }
  return 0;
}
