// Figure 3: impact of service scalability on scAtteR (stateful sift).
//
// Replica-count configs [2,2,1,1,1], [1,2,1,1,2], [1,2,2,1,2] (base
// replica on E2, extras on E1), 1-4 clients, with the orchestrator's
// round-robin load balancing. Frames processed by a sift replica stay
// tied to it: matching's state fetch cannot be re-balanced.
//
// Expected shape (paper §4): [2,2,1,1,1] *loses* ~26% FPS versus the
// single-instance baseline (replicated ingress floods the remaining
// single-instance stages); [1,2,1,1,2] tracks the baseline (state
// tie-ins defeat the balancing); [1,2,2,1,2] is the best configuration
// (~10-15% FPS gain at 2-3 clients) at the cost of ~30% higher E2E
// latency from the load-balancing hop.
#include <cstdio>
#include <sstream>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Figure 3: scAtteR service scalability (replicas on E2+E1)\n");

  const std::vector<NamedPlacement> configs = {
      {"baseline C2", SymbolicPlacement::single(Site::kE2)},
      {"[2,2,1,1,1]", SymbolicPlacement::replicated({2, 2, 1, 1, 1})},
      {"[1,2,1,1,2]", SymbolicPlacement::replicated({1, 2, 1, 1, 2})},
      {"[1,2,2,1,2]", SymbolicPlacement::replicated({1, 2, 2, 1, 2})},
  };
  constexpr int kMaxClients = 4;

  std::vector<std::vector<ExperimentResult>> results(configs.size());
  for (std::size_t p = 0; p < configs.size(); ++p) {
    for (int n = 1; n <= kMaxClients; ++n) {
      ExperimentConfig cfg;
      cfg.mode = core::PipelineMode::kScatter;
      cfg.placement = configs[p].placement;
      cfg.num_clients = n;
      cfg.seed = 3000 + p * 10 + static_cast<std::size_t>(n);
      results[p].push_back(expt::run_experiment(cfg));
    }
  }

  auto qos_table = [&](const char* title, auto metric, int precision) {
    expt::print_banner(title);
    std::vector<std::string> cols{"clients"};
    for (const auto& np : configs) cols.push_back(np.name);
    Table t(cols);
    for (int n = 1; n <= kMaxClients; ++n) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::size_t p = 0; p < configs.size(); ++p) {
        row.push_back(Table::num(metric(results[p][n - 1]), precision));
      }
      t.add_row(std::move(row));
    }
    t.print();
  };

  qos_table("FPS (successful frames/s per client)",
            [](const ExperimentResult& r) { return r.fps_mean; }, 1);
  qos_table("E2E latency (ms, mean)",
            [](const ExperimentResult& r) { return r.e2e_ms_mean; }, 1);
  qos_table("Service latency (ms, sum of per-stage means)",
            [](const ExperimentResult& r) {
              double sum = 0.0;
              for (Stage s : kStages) sum += r.stage_service_ms(s);
              return sum;
            },
            1);

  // The orchestrator-visible story: hardware metrics do not mirror QoS.
  for (std::size_t p = 1; p < configs.size(); ++p) {
    expt::print_banner("Per-service resources — " + configs[p].name);
    Table t(service_columns("clients/metric"));
    for (int n = 1; n <= kMaxClients; ++n) {
      const ExperimentResult& r = results[p][n - 1];
      std::vector<std::string> mem{"n=" + std::to_string(n) + " mem(GB)"};
      std::vector<std::string> cpu{"n=" + std::to_string(n) + " cpu(%)"};
      std::vector<std::string> gpu{"n=" + std::to_string(n) + " gpu(%)"};
      for (Stage s : kStages) {
        mem.push_back(Table::num(r.stage_mem_gb(s), 2));
        cpu.push_back(Table::num(r.stage_cpu_share(s) * 100.0, 2));
        gpu.push_back(Table::num(r.stage_gpu_share(s) * 100.0, 2));
      }
      t.add_row(std::move(mem));
      t.add_row(std::move(cpu));
      t.add_row(std::move(gpu));
    }
    t.print();
  }

  // Headline comparison at 2-3 clients.
  expt::print_banner("FPS delta vs baseline (paper: [2,2,1,1,1] -26%, [1,2,2,1,2] +10..15%)");
  Table d({"config", "n=2", "n=3", "n=4"});
  for (std::size_t p = 1; p < configs.size(); ++p) {
    std::vector<std::string> row{configs[p].name};
    for (int n = 2; n <= 4; ++n) {
      const double base = results[0][n - 1].fps_mean;
      const double v = results[p][n - 1].fps_mean;
      row.push_back(Table::num(base > 0 ? (v - base) / base * 100.0 : 0.0, 1) + "%");
    }
    d.add_row(std::move(row));
  }
  d.print();

  // Machine-readable summary for downstream plotting/regression checks.
  std::ostringstream json;
  json << "{\n  \"figure\": \"fig3_scalability\",\n  \"configs\": [";
  for (std::size_t p = 0; p < configs.size(); ++p) {
    json << (p ? ",\n    " : "\n    ") << "{\"name\": " << jstr(configs[p].name)
         << ", \"runs\": [";
    for (int n = 1; n <= kMaxClients; ++n) {
      const ExperimentResult& r = results[p][static_cast<std::size_t>(n - 1)];
      json << (n > 1 ? ", " : "") << "{\"clients\": " << n
           << ", \"fps\": " << jnum(r.fps_mean) << ", \"e2e_ms\": " << jnum(r.e2e_ms_mean)
           << ", \"success_rate\": " << jnum(r.success_rate) << "}";
    }
    json << "]}";
  }
  json << "\n  ]\n}\n";
  if (write_text_file("BENCH_fig3_scalability.json", json.str())) {
    std::printf("wrote BENCH_fig3_scalability.json\n");
  }

  return 0;
}
