// Figure 11 (appendix A.1.2): hybrid edge-cloud deployment
// [E1, C, C, C, C] — primary at the local edge, the rest on the cloud
// VM, with the pipeline's large frames crossing the public Internet.
//
// Expected shape: severe degradation versus cloud-only — FPS well below
// the cloud deployment and roughly 2x its service latency — driven by
// frame drops on the edge->cloud path (fragmented 180 KB frames over a
// lossy Internet link).
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Figure 11: scAtteR hybrid edge-cloud deployment [E1,C,C,C,C]\n");

  expt::print_banner("QoS and per-service latency");
  Table t({"clients", "FPS", "E2E ms", "success %", "primary ms", "sift ms", "encoding ms",
           "lsh ms", "matching ms"});
  std::vector<ExperimentResult> hybrid;
  for (int n = 1; n <= 4; ++n) {
    ExperimentConfig cfg;
    cfg.mode = core::PipelineMode::kScatter;
    cfg.placement = SymbolicPlacement::per_stage(
        {Site::kE1, Site::kCloud, Site::kCloud, Site::kCloud, Site::kCloud});
    cfg.num_clients = n;
    cfg.seed = 11000 + static_cast<std::uint64_t>(n);
    hybrid.push_back(expt::run_experiment(cfg));
    const ExperimentResult& r = hybrid.back();
    std::vector<std::string> row{std::to_string(n), Table::num(r.fps_mean, 1),
                                 Table::num(r.e2e_ms_mean, 1),
                                 Table::num(r.success_rate * 100.0, 1)};
    for (Stage s : kStages) row.push_back(Table::num(r.stage_service_ms(s), 1));
    t.add_row(std::move(row));
  }
  t.print();

  // Contrast with cloud-only (fig. 4's deployment) at the same loads.
  expt::print_banner("Reference: cloud-only FPS / E2E");
  Table c({"clients", "cloud FPS", "cloud E2E ms", "hybrid FPS", "hybrid E2E ms"});
  for (int n = 1; n <= 4; ++n) {
    ExperimentConfig cfg;
    cfg.mode = core::PipelineMode::kScatter;
    cfg.placement = SymbolicPlacement::single(Site::kCloud);
    cfg.num_clients = n;
    cfg.seed = 11100 + static_cast<std::uint64_t>(n);
    const ExperimentResult r = expt::run_experiment(cfg);
    c.add_row({std::to_string(n), Table::num(r.fps_mean, 1), Table::num(r.e2e_ms_mean, 1),
               Table::num(hybrid[static_cast<std::size_t>(n - 1)].fps_mean, 1),
               Table::num(hybrid[static_cast<std::size_t>(n - 1)].e2e_ms_mean, 1)});
  }
  c.print();

  return 0;
}
