

function(mar_bench name)
  # benches include "bench/fig_util.h" relative to the repo root

  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE mar_expt mar_core mar_orchestra)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
endfunction()

mar_bench(fig2_baseline_edge)
mar_bench(fig3_scalability)
mar_bench(fig4_cloud)
mar_bench(fig5_utilization)
mar_bench(fig6_scatterpp_edge)
mar_bench(fig7_scatterpp_scaling)
mar_bench(fig8_sidecar_analytics)
mar_bench(fig9_network_conditions)
mar_bench(fig10_jitter)
mar_bench(fig11_hybrid_cloud)
mar_bench(fig12_sidecar_all_e1)
mar_bench(table1_headline)

mar_bench(fault_recovery)
mar_bench(tail_forensics)
mar_bench(capacity_planning)

# Live-transport duel over real UDP sockets; needs the net layer.
mar_bench(lossy_link)
target_link_libraries(lossy_link PRIVATE mar_net)

# Profiling-plane gate: real vision pipeline + sampling profiler.
mar_bench(profile_attribution)
target_link_libraries(profile_attribution PRIVATE mar_vision mar_video mar_net
                                                  Threads::Threads)

mar_bench(ablation_scatterpp_parts)
mar_bench(ablation_sidecar_threshold)
mar_bench(ablation_app_aware)
target_link_libraries(ablation_app_aware PRIVATE mar_ctrl)

# Closed-loop control plane vs static placement; needs src/ctrl.
mar_bench(placement_reopt)
target_link_libraries(placement_reopt PRIVATE mar_ctrl)

# Critical-path blame + predictive-vs-reactive forecast; ctrl + live HTTP.
mar_bench(blame_attribution)
target_link_libraries(blame_attribution PRIVATE mar_ctrl mar_net Threads::Threads)
mar_bench(ablation_vertical_scaling)

add_executable(vision_microbench ${CMAKE_SOURCE_DIR}/bench/vision_microbench.cc)
set_target_properties(vision_microbench PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
target_link_libraries(vision_microbench PRIVATE mar_vision mar_video benchmark::benchmark Threads::Threads)
