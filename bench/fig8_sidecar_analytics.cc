// Figure 8: sidecar analytics — per-service ingress FPS and queue drop
// ratio as clients join one per minute (1 -> 10), config [1,3,2,1,3].
//
// Expected shape (paper §5): ingress FPS of the later stages plateaus
// around 4 clients (~90 FPS); matching's drop rate starts climbing at 3
// clients (10% -> 40%); sift's reaches ~50% at 8-10 clients, halving
// the ingress FPS of the latest stages; primary tops out near 240 FPS.
//
// The run is traced with frame sampling (every 8th frame per client) to
// bound trace volume over the 10-minute window; the span-derived
// sidecar queue delay is shown next to the counter-based histogram view
// (the trace additionally sees frames that queued and were then dropped
// stale, so it reads slightly higher under overload — that gap *is* the
// sidecar filter doing its job).
//
//   fig8_sidecar_analytics [--trace_out PATH] [--metrics_out PATH]
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "bench/fig_util.h"
#include "telemetry/trace.h"

using namespace mar;
using namespace mar::bench;

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace_out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics_out") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    }
  }

  std::printf("Figure 8: scAtteR++ sidecar analytics, clients joining 1/min\n");

  constexpr int kClients = 10;
  const SimDuration kInterval = seconds(60.0);

  auto& tracer = telemetry::Tracer::instance();
  tracer.reserve(1u << 20);
  tracer.set_enabled(true);

  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = SymbolicPlacement::replicated({1, 3, 2, 1, 3});
  cfg.num_clients = kClients;
  cfg.client_stagger = kInterval;
  cfg.warmup = 0;
  cfg.duration = kInterval * kClients;
  cfg.seed = 8001;
  cfg.trace_sample_every = 8;  // bound event volume on the long run

  expt::Experiment e(cfg);
  e.run();

  // Aggregate the per-second ingress/drop series of each stage across
  // its replicas into one row per one-minute interval.
  Table in_t(service_columns("clients"));
  Table drop_t(service_columns("clients"));
  // [minute][stage] ingress FPS and drop ratio, kept for the JSON summary.
  std::vector<std::array<double, kNumStages>> ingress_fps(kClients);
  std::vector<std::array<double, kNumStages>> drop_ratio(kClients);

  for (int m = 0; m < kClients; ++m) {
    std::vector<std::string> in_row{std::to_string(m + 1)};
    std::vector<std::string> drop_row{std::to_string(m + 1)};
    for (Stage s : kStages) {
      double ingress = 0.0, drops = 0.0;
      for (dsp::ServiceHost* host : e.deployment().hosts_of(s)) {
        const auto& in_series = host->stats().ingress_per_sec;
        const auto& drop_series = host->stats().drops_per_sec;
        for (int sec = m * 60; sec < (m + 1) * 60; ++sec) {
          ingress += static_cast<double>(in_series.count_at(static_cast<std::size_t>(sec)));
          drops += static_cast<double>(drop_series.count_at(static_cast<std::size_t>(sec)));
        }
      }
      ingress_fps[static_cast<std::size_t>(m)][static_cast<std::size_t>(s)] = ingress / 60.0;
      drop_ratio[static_cast<std::size_t>(m)][static_cast<std::size_t>(s)] =
          ingress > 0 ? drops / ingress : 0.0;
      in_row.push_back(Table::num(ingress / 60.0, 1));
      drop_row.push_back(ingress > 0 ? Table::pct(drops / ingress) : "0.0%");
    }
    in_t.add_row(std::move(in_row));
    drop_t.add_row(std::move(drop_row));
  }
  expt::print_banner("Ingress FPS per service (per one-minute interval)");
  in_t.print();
  expt::print_banner("Queue drop ratio per service (per one-minute interval)");
  drop_t.print();

  // Sidecar queue delay: counter-based histogram (dequeued frames only)
  // vs span-derived view (also includes frames dropped stale/superseded
  // after queueing, on sampled frames).
  expt::print_banner("Sidecar queue delay (ms): counters vs trace spans");
  const auto queue_spans =
      tracer.stage_spans(telemetry::spans::kSidecarQueue, e.window_start());
  Table q_t({"stage", "counter mean", "counter n", "trace mean", "trace n"});
  for (Stage s : kStages) {
    // Count-weighted mean over the stage's replicas.
    double weighted = 0.0;
    std::uint64_t counter_n = 0;
    for (dsp::ServiceHost* host : e.deployment().hosts_of(s)) {
      const auto& h = host->stats().queue_time_ms;
      weighted += h.mean() * static_cast<double>(h.count());
      counter_n += h.count();
    }
    const double counter_mean = counter_n ? weighted / static_cast<double>(counter_n) : 0.0;
    const auto& span_acc = queue_spans[static_cast<std::size_t>(s)];
    q_t.add_row({to_string(s), Table::num(counter_mean, 2), std::to_string(counter_n),
                 Table::num(span_acc.count() ? span_acc.mean() : 0.0, 2),
                 std::to_string(span_acc.count())});
  }
  q_t.print();
  std::printf("trace: %zu events recorded, %llu dropped (sampling 1/%u frames)\n",
              tracer.size(), static_cast<unsigned long long>(tracer.dropped()),
              cfg.trace_sample_every);

  if (!trace_path.empty() && tracer.write_chrome_trace(trace_path)) {
    std::printf("wrote %s — open at https://ui.perfetto.dev\n", trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    const std::string text = tracer.prometheus_text();
    if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", metrics_path.c_str());
    }
  }

  // Machine-readable summary for downstream plotting/regression checks.
  std::ostringstream json;
  json << "{\n  \"figure\": \"fig8_sidecar_analytics\",\n  \"minutes\": [";
  for (int m = 0; m < kClients; ++m) {
    json << (m ? ",\n    " : "\n    ") << "{\"clients\": " << (m + 1) << ", \"ingress_fps\": {";
    for (std::size_t s = 0; s < kNumStages; ++s) {
      json << (s ? ", " : "") << jstr(to_string(kStages[s])) << ": "
           << jnum(ingress_fps[static_cast<std::size_t>(m)][s]);
    }
    json << "}, \"drop_ratio\": {";
    for (std::size_t s = 0; s < kNumStages; ++s) {
      json << (s ? ", " : "") << jstr(to_string(kStages[s])) << ": "
           << jnum(drop_ratio[static_cast<std::size_t>(m)][s]);
    }
    json << "}}";
  }
  json << "\n  ]\n}\n";
  if (write_text_file("BENCH_fig8_sidecar_analytics.json", json.str())) {
    std::printf("wrote BENCH_fig8_sidecar_analytics.json\n");
  }
  return 0;
}
