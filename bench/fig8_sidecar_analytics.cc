// Figure 8: sidecar analytics — per-service ingress FPS and queue drop
// ratio as clients join one per minute (1 -> 10), config [1,3,2,1,3].
//
// Expected shape (paper §5): ingress FPS of the later stages plateaus
// around 4 clients (~90 FPS); matching's drop rate starts climbing at 3
// clients (10% -> 40%); sift's reaches ~50% at 8-10 clients, halving
// the ingress FPS of the latest stages; primary tops out near 240 FPS.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Figure 8: scAtteR++ sidecar analytics, clients joining 1/min\n");

  constexpr int kClients = 10;
  const SimDuration kInterval = seconds(60.0);

  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = SymbolicPlacement::replicated({1, 3, 2, 1, 3});
  cfg.num_clients = kClients;
  cfg.client_stagger = kInterval;
  cfg.warmup = 0;
  cfg.duration = kInterval * kClients;
  cfg.seed = 8001;

  expt::Experiment e(cfg);
  e.run();

  // Aggregate the per-second ingress/drop series of each stage across
  // its replicas into one row per one-minute interval.
  Table in_t(service_columns("clients"));
  Table drop_t(service_columns("clients"));

  for (int m = 0; m < kClients; ++m) {
    std::vector<std::string> in_row{std::to_string(m + 1)};
    std::vector<std::string> drop_row{std::to_string(m + 1)};
    for (Stage s : kStages) {
      double ingress = 0.0, drops = 0.0;
      for (dsp::ServiceHost* host : e.deployment().hosts_of(s)) {
        const auto& in_series = host->stats().ingress_per_sec;
        const auto& drop_series = host->stats().drops_per_sec;
        for (int sec = m * 60; sec < (m + 1) * 60; ++sec) {
          ingress += static_cast<double>(in_series.count_at(static_cast<std::size_t>(sec)));
          drops += static_cast<double>(drop_series.count_at(static_cast<std::size_t>(sec)));
        }
      }
      in_row.push_back(Table::num(ingress / 60.0, 1));
      drop_row.push_back(ingress > 0 ? Table::pct(drops / ingress) : "0.0%");
    }
    in_t.add_row(std::move(in_row));
    drop_t.add_row(std::move(drop_row));
  }
  expt::print_banner("Ingress FPS per service (per one-minute interval)");
  in_t.print();
  expt::print_banner("Queue drop ratio per service (per one-minute interval)");
  drop_t.print();

  return 0;
}
