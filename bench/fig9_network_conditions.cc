// Figure 9 (appendix A.1.1): impact of mobile network conditions on
// scAtteR. The pipeline runs on E2; the client access link is shaped
// tc-style: (a) packet-loss sweep at 1 ms delay, (b) latency sweep at
// 1e-5 % loss, with the paper's mobility emulation (+10 ms oscillation,
// 20 % probability) on latency runs.
//
// Expected shape: loss trims FPS (frame fragments die) but leaves E2E
// flat; latency shifts E2E up by the RTT but barely affects FPS —
// scAtteR has no staleness threshold, so late frames still complete.
// LTE / 5G / WiFi-6 presets match the paper's cited measurements.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

namespace {

ExperimentResult run_with_access(const sim::LinkModel& access, int clients, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatter;
  cfg.placement = SymbolicPlacement::single(Site::kE2);
  cfg.num_clients = clients;
  cfg.testbed.client_e1 = access;  // clients reach E2 through this link
  cfg.seed = seed;
  return expt::run_experiment(cfg);
}

}  // namespace

int main() {
  std::printf("Figure 9: scAtteR under emulated mobile connectivity (pipeline on E2)\n");

  // (a) Packet-loss sweep, 1 ms delay, no mobility oscillation.
  struct LossPoint {
    const char* label;
    double loss;
  };
  const LossPoint losses[] = {
      {"0.00001%", 1e-7},
      {"0.01%", 1e-4},
      {"0.08% (LTE)", 8e-4},
  };

  expt::print_banner("(a) packet loss sweep — FPS / E2E ms");
  Table ta({"clients", "loss=1e-5% FPS", "0.01% FPS", "0.08% FPS", "1e-5% E2E", "0.01% E2E",
            "0.08% E2E"});
  for (int n = 1; n <= 4; ++n) {
    std::vector<ExperimentResult> rs;
    for (const auto& lp : losses) {
      rs.push_back(run_with_access(
          expt::TestbedConfig::access_custom(millis(1.0), lp.loss, /*mobility=*/false), n,
          9100 + static_cast<std::uint64_t>(n)));
    }
    ta.add_row({std::to_string(n), Table::num(rs[0].fps_mean, 1), Table::num(rs[1].fps_mean, 1),
                Table::num(rs[2].fps_mean, 1), Table::num(rs[0].e2e_ms_mean, 1),
                Table::num(rs[1].e2e_ms_mean, 1), Table::num(rs[2].e2e_ms_mean, 1)});
  }
  ta.print();

  // (b) Latency sweep, 1e-5 % loss, mobility oscillation enabled.
  const SimDuration rtts[] = {millis(1.0), millis(5.0), millis(10.0), millis(40.0)};
  expt::print_banner("(b) latency sweep (with +10ms/20% mobility oscillation) — FPS / E2E ms");
  Table tb({"clients", "1ms FPS", "5ms FPS", "10ms FPS", "40ms FPS", "1ms E2E", "5ms E2E",
            "10ms E2E", "40ms E2E"});
  for (int n = 1; n <= 4; ++n) {
    std::vector<ExperimentResult> rs;
    for (SimDuration rtt : rtts) {
      rs.push_back(run_with_access(expt::TestbedConfig::access_custom(rtt, 1e-7), n,
                                   9200 + static_cast<std::uint64_t>(n)));
    }
    std::vector<std::string> row{std::to_string(n)};
    for (const auto& r : rs) row.push_back(Table::num(r.fps_mean, 1));
    for (const auto& r : rs) row.push_back(Table::num(r.e2e_ms_mean, 1));
    tb.add_row(std::move(row));
  }
  tb.print();

  return 0;
}
