// Figure 4: scAtteR cloud-only deployment.
//
// All five services on the AWS GPU VM (+15 ms client RTT, virtualized
// V100 not matched by the container's sm target).
//
// Expected shape (paper §4): median ~18 FPS vs 25 on edge, success rate
// ~64%, E2E ~+20 ms over the edge, hardware far from saturated (<5%
// CPU, <25% GPU, <2% memory of the VM), slightly higher jitter.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Figure 4: scAtteR cloud-only deployment (1-4 clients)\n");

  constexpr int kMaxClients = 4;
  std::vector<ExperimentResult> results;
  for (int n = 1; n <= kMaxClients; ++n) {
    ExperimentConfig cfg;
    cfg.mode = core::PipelineMode::kScatter;
    cfg.placement = SymbolicPlacement::single(Site::kCloud);
    cfg.num_clients = n;
    cfg.seed = 4000 + static_cast<std::size_t>(n);
    results.push_back(expt::run_experiment(cfg));
  }

  expt::print_banner("QoS");
  Table t({"clients", "FPS", "FPS median", "E2E ms", "success %", "jitter ms"});
  for (int n = 1; n <= kMaxClients; ++n) {
    const ExperimentResult& r = results[n - 1];
    t.add_row({std::to_string(n), Table::num(r.fps_mean, 1), Table::num(r.fps_median, 1),
               Table::num(r.e2e_ms_mean, 1), Table::num(r.success_rate * 100.0, 1),
               Table::num(r.jitter_ms, 2)});
  }
  t.print();

  expt::print_banner("Per-service resources (cloud VM)");
  Table h(service_columns("clients/metric"));
  for (int n = 1; n <= kMaxClients; ++n) {
    const ExperimentResult& r = results[n - 1];
    std::vector<std::string> mem{"n=" + std::to_string(n) + " mem(GB)"};
    std::vector<std::string> cpu{"n=" + std::to_string(n) + " cpu(%)"};
    std::vector<std::string> gpu{"n=" + std::to_string(n) + " gpu(%)"};
    for (Stage s : kStages) {
      mem.push_back(Table::num(r.stage_mem_gb(s), 2));
      cpu.push_back(Table::num(r.stage_cpu_share(s) * 100.0, 2));
      gpu.push_back(Table::num(r.stage_gpu_share(s) * 100.0, 2));
    }
    h.add_row(std::move(mem));
    h.add_row(std::move(cpu));
    h.add_row(std::move(gpu));
  }
  h.print();

  return 0;
}
