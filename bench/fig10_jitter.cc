// Figure 10 (appendix): inter-frame receive jitter for (a) the baseline
// edge placements, (b) the scAtteR service-scalability configs, and
// (c) the cloud-only deployment.
//
// Expected shape: jitter grows with concurrent clients (frame drops
// create irregular result spacing); baseline edge reaches the highest
// values; the cloud adds network-induced jitter even at low load.
#include <cstdio>

#include "bench/fig_util.h"

using namespace mar;
using namespace mar::bench;

int main() {
  std::printf("Figure 10: result jitter (ms) vs concurrent clients\n");

  auto sweep = [](const std::vector<NamedPlacement>& configs, core::PipelineMode mode,
                  std::uint64_t seed_base) {
    std::vector<std::string> cols{"clients"};
    for (const auto& c : configs) cols.push_back(c.name);
    Table t(cols);
    for (int n = 1; n <= 4; ++n) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::size_t p = 0; p < configs.size(); ++p) {
        ExperimentConfig cfg;
        cfg.mode = mode;
        cfg.placement = configs[p].placement;
        cfg.num_clients = n;
        cfg.seed = seed_base + p * 10 + static_cast<std::uint64_t>(n);
        row.push_back(Table::num(expt::run_experiment(cfg).jitter_ms, 2));
      }
      t.add_row(std::move(row));
    }
    t.print();
  };

  expt::print_banner("(a) baseline edge");
  sweep(baseline_placements(), core::PipelineMode::kScatter, 10100);

  expt::print_banner("(b) service scalability");
  sweep({{"[2,2,1,1,1]", SymbolicPlacement::replicated({2, 2, 1, 1, 1})},
         {"[1,2,1,1,2]", SymbolicPlacement::replicated({1, 2, 1, 1, 2})},
         {"[1,2,2,1,2]", SymbolicPlacement::replicated({1, 2, 2, 1, 2})}},
        core::PipelineMode::kScatter, 10200);

  expt::print_banner("(c) cloud-only");
  sweep({{"cloud", SymbolicPlacement::single(Site::kCloud)}}, core::PipelineMode::kScatter,
        10300);

  return 0;
}
