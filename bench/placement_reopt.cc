// Closed-loop placement + scaling vs a static deployment (ROADMAP
// item 2; paper §6, Insights I/IV).
//
// scAtteR++ clients ramp onto a static C2 (all-E2) deployment, hold a
// ~15s congested plateau (the E2 box serves ~77% of the offered
// frames), then all but one leave. Two runs race over the identical
// offered load:
//   static — the seed deployment, untouched,
//   reopt  — ctrl::ScalePolicy + ctrl::ReOptimizer closing the loop on
//            the SLO watchdog (scale-up under sustained breach,
//            drain-based scale-down after the ramp-down).
// A third run repeats `reopt` with the same seed: the whole control
// loop must be bit-identical (action-sequence digest + peak p99).
//
// Gates (all counted in gates_failed):
//   1. reopt strictly beats static on plateau ("peak") E2E p99,
//   2. reopt retires >= 1 replica within scale_down_slack_s of the
//      ramp-down, with zero frames lost on the drain path,
//   3. same-seed rerun is bit-identical (digest + peak p99),
//   4. the control actions are visible on /metrics (mar_ctrl_*),
//   5. PlacementSearch: same seed => same plan + evaluation digest.
//
// Writes BENCH_placement.json. Smoke knobs: --clients, --duration_s,
// --down_at_s, --seed.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/fig_util.h"
#include "ctrl/placement_search.h"
#include "ctrl/reoptimizer.h"
#include "ctrl/scale_policy.h"
#include "telemetry/registry.h"

using namespace mar;
using namespace mar::bench;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * kFnvPrime;
}

double p99_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const auto rank =
      static_cast<std::size_t>(0.99 * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(rank), v.end());
  return v[rank];
}

struct RunResult {
  double peak_p99_ms = 0.0;   // E2E p99 over the overload plateau
  double peak_fps = 0.0;      // delivered FPS (all clients) on the plateau
  double fps_mean = 0.0;
  std::size_t final_instances = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t replans = 0;
  std::uint64_t retired = 0;
  std::uint64_t forced_retires = 0;
  std::uint64_t drain_frames_lost = 0;
  double first_retire_after_down_s = -1.0;  // relative to the ramp-down
  std::uint64_t digest = kFnvOffset;        // control actions + peak p99
};

struct BenchKnobs {
  int clients = 3;
  double duration_s = 45.0;
  double down_at_s = 25.0;
  double plateau_start_s = 10.0;
  double scale_down_slack_s = 10.0;
  std::uint64_t seed = 42000;
};

ExperimentConfig experiment_config(const BenchKnobs& k) {
  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = SymbolicPlacement::single(Site::kE2);
  cfg.num_clients = k.clients;
  cfg.client_stagger = millis(500.0);  // ramp-up: one client every 0.5s
  cfg.warmup = seconds(2.0);
  cfg.duration = seconds(k.duration_s);
  cfg.seed = k.seed;
  expt::SloTargets slo;
  slo.min_fps = 24.0;
  cfg.slo = slo;
  return cfg;
}

RunResult run_once(const BenchKnobs& k, bool closed_loop) {
  ExperimentConfig cfg = experiment_config(k);

  std::vector<double> plateau_e2e;
  std::uint64_t plateau_frames = 0;
  cfg.on_frame_hook = [&](SimTime t, double e2e_ms, bool success) {
    if (!success) return;
    if (t < seconds(k.plateau_start_s) || t >= seconds(k.down_at_s)) return;
    plateau_e2e.push_back(e2e_ms);
    ++plateau_frames;
  };

  expt::Experiment e(cfg);
  e.build();

  std::unique_ptr<ctrl::ScalePolicy> policy;
  std::unique_ptr<ctrl::ReOptimizer> reopt;
  if (closed_loop) {
    ctrl::ScalePolicy::Config sc;
    // Between the plateau's ~37 fps per replica and the post-ramp-down
    // ~12: the down arm stays quiet at full load and only drains after
    // the clients actually leave.
    sc.down_ingress_fps = 30.0;
    sc.max_replicas_per_stage = 2;
    policy = std::make_unique<ctrl::ScalePolicy>(e.deployment(), sc);
    ctrl::ReOptimizerConfig rc;
    rc.interval = millis(500.0);
    rc.breach_ticks = 2;
    rc.clear_ticks = 4;
    rc.cooldown = seconds(2.0);
    // Replan arm: when scale-up caps out and the breach persists, run
    // the placement search and move the pipeline to the winning plan.
    rc.allow_replan = true;
    rc.replan_after_blocked = 3;
    rc.search.seed = k.seed;
    rc.search.offered_clients = k.clients;
    reopt = std::make_unique<ctrl::ReOptimizer>(*policy, e.slo_watchdog(), rc);
    reopt->start();
  }

  // Ramp-down: every client but the first leaves at down_at_s.
  e.testbed().runtime().schedule_after(seconds(k.down_at_s), [&] {
    for (std::size_t i = 1; i < e.clients().size(); ++i) e.clients()[i]->stop();
  });
  e.run();

  RunResult out;
  out.peak_p99_ms = p99_of(plateau_e2e);
  out.peak_fps = static_cast<double>(plateau_frames) /
                 (k.down_at_s - k.plateau_start_s);
  out.fps_mean = e.result().fps_mean;
  out.final_instances = e.deployment().instances().size();
  if (policy) {
    out.scale_ups = policy->scale_ups();
    out.retired = policy->retired();
    out.forced_retires = policy->forced_retires();
    out.drain_frames_lost = policy->drain_frames_lost();
    for (const auto& ev : policy->events()) {
      if ((ev.kind == ctrl::ScalePolicy::Event::Kind::kRetire ||
           ev.kind == ctrl::ScalePolicy::Event::Kind::kForcedRetire) &&
          ev.t >= seconds(k.down_at_s) && out.first_retire_after_down_s < 0.0) {
        out.first_retire_after_down_s = to_seconds(ev.t - seconds(k.down_at_s));
      }
    }
  }
  if (reopt) {
    out.scale_downs = reopt->scale_down_actions();
    out.replans = reopt->replans();
    for (const auto& a : reopt->actions()) {
      out.digest = fnv_mix(out.digest, static_cast<std::uint64_t>(a.kind));
      out.digest = fnv_mix(out.digest, static_cast<std::uint64_t>(a.t));
      out.digest = fnv_mix(out.digest, static_cast<std::uint64_t>(a.stage));
    }
  }
  std::uint64_t p99_bits = 0;
  static_assert(sizeof(p99_bits) == sizeof(out.peak_p99_ms));
  std::memcpy(&p99_bits, &out.peak_p99_ms, sizeof(p99_bits));
  out.digest = fnv_mix(out.digest, p99_bits);
  out.digest = fnv_mix(out.digest, out.final_instances);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchKnobs k;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* name) -> const char* {
      const std::size_t n = std::strlen(name);
      return arg.compare(0, n, name) == 0 && arg.size() > n ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--clients=")) k.clients = std::atoi(v);
    if (const char* v = val("--duration_s=")) k.duration_s = std::atof(v);
    if (const char* v = val("--down_at_s=")) k.down_at_s = std::atof(v);
    if (const char* v = val("--seed=")) k.seed = std::strtoull(v, nullptr, 10);
  }

  std::printf("placement_reopt: %d scAtteR++ clients on C2, ramp-down at %.0fs, %.0fs run\n",
              k.clients, k.down_at_s, k.duration_s);

  const RunResult rs = run_once(k, /*closed_loop=*/false);
  const RunResult rr = run_once(k, /*closed_loop=*/true);
  const RunResult rr2 = run_once(k, /*closed_loop=*/true);  // same seed: must be identical

  Table t({"run", "peak p99 (ms)", "peak FPS", "FPS/client", "replicas end", "retired"});
  t.add_row({"static", Table::num(rs.peak_p99_ms, 1), Table::num(rs.peak_fps, 1),
             Table::num(rs.fps_mean, 1), std::to_string(rs.final_instances), "-"});
  t.add_row({"reopt", Table::num(rr.peak_p99_ms, 1), Table::num(rr.peak_fps, 1),
             Table::num(rr.fps_mean, 1), std::to_string(rr.final_instances),
             std::to_string(rr.retired)});
  t.print();

  const double p99_improvement_pct =
      rs.peak_p99_ms > 0.0 ? 100.0 * (rs.peak_p99_ms - rr.peak_p99_ms) / rs.peak_p99_ms
                           : 0.0;
  std::printf("  plateau p99: static %.1fms -> reopt %.1fms (%+.1f%%), scale-ups %llu, "
              "scale-downs %llu, replans %llu\n",
              rs.peak_p99_ms, rr.peak_p99_ms, p99_improvement_pct,
              static_cast<unsigned long long>(rr.scale_ups),
              static_cast<unsigned long long>(rr.scale_downs),
              static_cast<unsigned long long>(rr.replans));
  if (rr.first_retire_after_down_s >= 0.0) {
    std::printf("  first retire %.1fs after ramp-down, drain losses %llu (forced %llu)\n",
                rr.first_retire_after_down_s,
                static_cast<unsigned long long>(rr.drain_frames_lost),
                static_cast<unsigned long long>(rr.forced_retires));
  }

  int gates_failed = 0;
  if (!(rr.peak_p99_ms < rs.peak_p99_ms)) {
    ++gates_failed;
    std::printf("  GATE FAILED: reopt plateau p99 %.1fms !< static %.1fms\n", rr.peak_p99_ms,
                rs.peak_p99_ms);
  }
  const bool scaled_down_in_time = rr.retired >= 1 &&
                                   rr.first_retire_after_down_s >= 0.0 &&
                                   rr.first_retire_after_down_s <= k.scale_down_slack_s;
  if (!scaled_down_in_time) {
    ++gates_failed;
    std::printf("  GATE FAILED: no retire within %.0fs of the ramp-down\n",
                k.scale_down_slack_s);
  }
  if (rr.drain_frames_lost != 0) {
    ++gates_failed;
    std::printf("  GATE FAILED: %llu frames lost on the drain path\n",
                static_cast<unsigned long long>(rr.drain_frames_lost));
  }
  const bool rerun_identical = rr.digest == rr2.digest && rr.peak_p99_ms == rr2.peak_p99_ms;
  if (!rerun_identical) {
    ++gates_failed;
    std::printf("  GATE FAILED: same-seed rerun diverged (%016llx vs %016llx)\n",
                static_cast<unsigned long long>(rr.digest),
                static_cast<unsigned long long>(rr2.digest));
  }
  const std::string metrics = telemetry::MetricRegistry::instance().prometheus_text();
  const bool metrics_visible = metrics.find("mar_ctrl_scale_up_total") != std::string::npos &&
                               metrics.find("mar_ctrl_scale_down_total") != std::string::npos &&
                               metrics.find("mar_ctrl_drain_retired_total") != std::string::npos;
  if (!metrics_visible) {
    ++gates_failed;
    std::printf("  GATE FAILED: mar_ctrl_* counters missing from /metrics\n");
  }

  // --- placement search determinism ---------------------------------
  ctrl::PlacementSearchConfig pc;
  pc.seed = k.seed;
  pc.offered_clients = 6;
  pc.eval_duration = seconds(4.0);
  ctrl::PlacementSearch sa(pc);
  const ctrl::PlacementSearch::Result pa = sa.run();
  ctrl::PlacementSearch sb(pc);
  const ctrl::PlacementSearch::Result pb = sb.run();
  std::printf("  placement search: best %s (score %.3f, p99 %.1fms, %d machines), "
              "%llu evals / %llu cached, digest %016llx\n",
              pa.best.label().c_str(), pa.best_score.score, pa.best_score.e2e_p99_ms,
              pa.best_score.machines, static_cast<unsigned long long>(pa.evaluations),
              static_cast<unsigned long long>(pa.cache_hits),
              static_cast<unsigned long long>(pa.digest));
  const bool search_deterministic =
      pa.digest == pb.digest && pa.best.key() == pb.best.key();
  if (!search_deterministic) {
    ++gates_failed;
    std::printf("  GATE FAILED: same-seed placement search diverged\n");
  }

  char run_digest[32], search_digest[32];
  std::snprintf(run_digest, sizeof(run_digest), "%016llx",
                static_cast<unsigned long long>(rr.digest));
  std::snprintf(search_digest, sizeof(search_digest), "%016llx",
                static_cast<unsigned long long>(pa.digest));
  std::ostringstream j;
  j << "{\n  \"bench\": \"placement_reopt\",\n";
  j << "  \"config\": {\"clients\": " << k.clients << ", \"duration_s\": "
    << jnum(k.duration_s) << ", \"down_at_s\": " << jnum(k.down_at_s)
    << ", \"seed\": " << k.seed << "},\n";
  j << "  \"static\": {\"peak_p99_ms\": " << jnum(rs.peak_p99_ms)
    << ", \"peak_fps\": " << jnum(rs.peak_fps) << ", \"fps_mean\": " << jnum(rs.fps_mean)
    << ", \"final_instances\": " << rs.final_instances << "},\n";
  j << "  \"reopt\": {\"peak_p99_ms\": " << jnum(rr.peak_p99_ms)
    << ", \"peak_fps\": " << jnum(rr.peak_fps) << ", \"fps_mean\": " << jnum(rr.fps_mean)
    << ", \"final_instances\": " << rr.final_instances
    << ", \"scale_ups\": " << rr.scale_ups << ", \"scale_downs\": " << rr.scale_downs
    << ", \"replans\": " << rr.replans
    << ", \"retired\": " << rr.retired << ", \"forced_retires\": " << rr.forced_retires
    << ", \"drain_frames_lost\": " << rr.drain_frames_lost
    << ", \"first_retire_after_down_s\": " << jnum(rr.first_retire_after_down_s)
    << ", \"digest\": " << jstr(run_digest) << "},\n";
  j << "  \"p99_improvement_pct\": " << jnum(p99_improvement_pct) << ",\n";
  j << "  \"rerun_identical\": " << (rerun_identical ? "true" : "false") << ",\n";
  j << "  \"metrics_visible\": " << (metrics_visible ? "true" : "false") << ",\n";
  j << "  \"search\": {\"best\": " << jstr(pa.best.label())
    << ", \"score\": " << jnum(pa.best_score.score)
    << ", \"e2e_p99_ms\": " << jnum(pa.best_score.e2e_p99_ms)
    << ", \"fps\": " << jnum(pa.best_score.fps)
    << ", \"machines\": " << pa.best_score.machines
    << ", \"state_mbytes_s\": " << jnum(pa.best_score.state_mbytes_s)
    << ", \"evaluations\": " << pa.evaluations << ", \"cache_hits\": " << pa.cache_hits
    << ", \"digest\": " << jstr(search_digest)
    << ", \"deterministic\": " << (search_deterministic ? "true" : "false") << "},\n";
  j << "  \"gates_failed\": " << gates_failed << "\n}\n";
  if (!write_text_file("BENCH_placement.json", j.str())) {
    std::printf("  (could not write BENCH_placement.json)\n");
  }
  std::printf("  gates_failed: %d -> BENCH_placement.json\n", gates_failed);
  return gates_failed == 0 ? 0 : 1;
}
