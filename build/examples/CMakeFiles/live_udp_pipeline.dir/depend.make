# Empty dependencies file for live_udp_pipeline.
# This may be replaced when dependencies are built.
