file(REMOVE_RECURSE
  "CMakeFiles/live_udp_pipeline.dir/live_udp_pipeline.cpp.o"
  "CMakeFiles/live_udp_pipeline.dir/live_udp_pipeline.cpp.o.d"
  "live_udp_pipeline"
  "live_udp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_udp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
