# Empty compiler generated dependencies file for orchestrated_failover.
# This may be replaced when dependencies are built.
