file(REMOVE_RECURSE
  "CMakeFiles/orchestrated_failover.dir/orchestrated_failover.cpp.o"
  "CMakeFiles/orchestrated_failover.dir/orchestrated_failover.cpp.o.d"
  "orchestrated_failover"
  "orchestrated_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orchestrated_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
