# Empty dependencies file for mobile_connectivity.
# This may be replaced when dependencies are built.
