file(REMOVE_RECURSE
  "CMakeFiles/mobile_connectivity.dir/mobile_connectivity.cpp.o"
  "CMakeFiles/mobile_connectivity.dir/mobile_connectivity.cpp.o.d"
  "mobile_connectivity"
  "mobile_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
