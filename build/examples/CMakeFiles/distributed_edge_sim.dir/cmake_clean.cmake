file(REMOVE_RECURSE
  "CMakeFiles/distributed_edge_sim.dir/distributed_edge_sim.cpp.o"
  "CMakeFiles/distributed_edge_sim.dir/distributed_edge_sim.cpp.o.d"
  "distributed_edge_sim"
  "distributed_edge_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_edge_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
