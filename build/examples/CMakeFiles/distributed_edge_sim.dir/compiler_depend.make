# Empty compiler generated dependencies file for distributed_edge_sim.
# This may be replaced when dependencies are built.
