file(REMOVE_RECURSE
  "libmar_net.a"
)
