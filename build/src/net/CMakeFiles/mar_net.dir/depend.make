# Empty dependencies file for mar_net.
# This may be replaced when dependencies are built.
