file(REMOVE_RECURSE
  "CMakeFiles/mar_net.dir/fragment.cc.o"
  "CMakeFiles/mar_net.dir/fragment.cc.o.d"
  "CMakeFiles/mar_net.dir/frame_channel.cc.o"
  "CMakeFiles/mar_net.dir/frame_channel.cc.o.d"
  "CMakeFiles/mar_net.dir/udp.cc.o"
  "CMakeFiles/mar_net.dir/udp.cc.o.d"
  "libmar_net.a"
  "libmar_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
