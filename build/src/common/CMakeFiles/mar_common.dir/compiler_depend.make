# Empty compiler generated dependencies file for mar_common.
# This may be replaced when dependencies are built.
