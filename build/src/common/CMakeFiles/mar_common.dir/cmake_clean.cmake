file(REMOVE_RECURSE
  "CMakeFiles/mar_common.dir/log.cc.o"
  "CMakeFiles/mar_common.dir/log.cc.o.d"
  "CMakeFiles/mar_common.dir/parallel.cc.o"
  "CMakeFiles/mar_common.dir/parallel.cc.o.d"
  "CMakeFiles/mar_common.dir/rng.cc.o"
  "CMakeFiles/mar_common.dir/rng.cc.o.d"
  "libmar_common.a"
  "libmar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
