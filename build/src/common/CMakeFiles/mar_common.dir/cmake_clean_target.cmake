file(REMOVE_RECURSE
  "libmar_common.a"
)
