file(REMOVE_RECURSE
  "libmar_telemetry.a"
)
