# Empty dependencies file for mar_telemetry.
# This may be replaced when dependencies are built.
