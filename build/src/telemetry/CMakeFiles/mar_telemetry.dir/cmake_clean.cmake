file(REMOVE_RECURSE
  "CMakeFiles/mar_telemetry.dir/histogram.cc.o"
  "CMakeFiles/mar_telemetry.dir/histogram.cc.o.d"
  "libmar_telemetry.a"
  "libmar_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
