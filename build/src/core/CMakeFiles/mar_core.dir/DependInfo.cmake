
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/mar_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/mar_core.dir/client.cc.o.d"
  "/root/repo/src/core/services.cc" "src/core/CMakeFiles/mar_core.dir/services.cc.o" "gcc" "src/core/CMakeFiles/mar_core.dir/services.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/mar_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mar_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/mar_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/mar_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
