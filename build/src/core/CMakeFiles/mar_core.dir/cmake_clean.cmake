file(REMOVE_RECURSE
  "CMakeFiles/mar_core.dir/client.cc.o"
  "CMakeFiles/mar_core.dir/client.cc.o.d"
  "CMakeFiles/mar_core.dir/services.cc.o"
  "CMakeFiles/mar_core.dir/services.cc.o.d"
  "libmar_core.a"
  "libmar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
