file(REMOVE_RECURSE
  "libmar_core.a"
)
