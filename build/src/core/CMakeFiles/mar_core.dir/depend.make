# Empty dependencies file for mar_core.
# This may be replaced when dependencies are built.
