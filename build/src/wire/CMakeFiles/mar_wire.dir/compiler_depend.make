# Empty compiler generated dependencies file for mar_wire.
# This may be replaced when dependencies are built.
