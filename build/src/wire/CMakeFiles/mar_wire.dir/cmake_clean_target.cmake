file(REMOVE_RECURSE
  "libmar_wire.a"
)
