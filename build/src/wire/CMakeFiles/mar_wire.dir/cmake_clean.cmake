file(REMOVE_RECURSE
  "CMakeFiles/mar_wire.dir/message.cc.o"
  "CMakeFiles/mar_wire.dir/message.cc.o.d"
  "libmar_wire.a"
  "libmar_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
