file(REMOVE_RECURSE
  "libmar_dsp.a"
)
