# Empty compiler generated dependencies file for mar_dsp.
# This may be replaced when dependencies are built.
