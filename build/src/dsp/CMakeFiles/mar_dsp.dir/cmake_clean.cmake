file(REMOVE_RECURSE
  "CMakeFiles/mar_dsp.dir/compute.cc.o"
  "CMakeFiles/mar_dsp.dir/compute.cc.o.d"
  "CMakeFiles/mar_dsp.dir/service_host.cc.o"
  "CMakeFiles/mar_dsp.dir/service_host.cc.o.d"
  "CMakeFiles/mar_dsp.dir/state_store.cc.o"
  "CMakeFiles/mar_dsp.dir/state_store.cc.o.d"
  "libmar_dsp.a"
  "libmar_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
