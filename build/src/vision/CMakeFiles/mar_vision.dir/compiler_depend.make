# Empty compiler generated dependencies file for mar_vision.
# This may be replaced when dependencies are built.
