file(REMOVE_RECURSE
  "CMakeFiles/mar_vision.dir/engine.cc.o"
  "CMakeFiles/mar_vision.dir/engine.cc.o.d"
  "CMakeFiles/mar_vision.dir/fast_detector.cc.o"
  "CMakeFiles/mar_vision.dir/fast_detector.cc.o.d"
  "CMakeFiles/mar_vision.dir/fisher.cc.o"
  "CMakeFiles/mar_vision.dir/fisher.cc.o.d"
  "CMakeFiles/mar_vision.dir/gmm.cc.o"
  "CMakeFiles/mar_vision.dir/gmm.cc.o.d"
  "CMakeFiles/mar_vision.dir/homography.cc.o"
  "CMakeFiles/mar_vision.dir/homography.cc.o.d"
  "CMakeFiles/mar_vision.dir/image.cc.o"
  "CMakeFiles/mar_vision.dir/image.cc.o.d"
  "CMakeFiles/mar_vision.dir/kmeans.cc.o"
  "CMakeFiles/mar_vision.dir/kmeans.cc.o.d"
  "CMakeFiles/mar_vision.dir/linalg.cc.o"
  "CMakeFiles/mar_vision.dir/linalg.cc.o.d"
  "CMakeFiles/mar_vision.dir/lsh.cc.o"
  "CMakeFiles/mar_vision.dir/lsh.cc.o.d"
  "CMakeFiles/mar_vision.dir/matcher.cc.o"
  "CMakeFiles/mar_vision.dir/matcher.cc.o.d"
  "CMakeFiles/mar_vision.dir/pca.cc.o"
  "CMakeFiles/mar_vision.dir/pca.cc.o.d"
  "CMakeFiles/mar_vision.dir/pose.cc.o"
  "CMakeFiles/mar_vision.dir/pose.cc.o.d"
  "CMakeFiles/mar_vision.dir/serialize.cc.o"
  "CMakeFiles/mar_vision.dir/serialize.cc.o.d"
  "CMakeFiles/mar_vision.dir/sift.cc.o"
  "CMakeFiles/mar_vision.dir/sift.cc.o.d"
  "libmar_vision.a"
  "libmar_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
