
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/engine.cc" "src/vision/CMakeFiles/mar_vision.dir/engine.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/engine.cc.o.d"
  "/root/repo/src/vision/fast_detector.cc" "src/vision/CMakeFiles/mar_vision.dir/fast_detector.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/fast_detector.cc.o.d"
  "/root/repo/src/vision/fisher.cc" "src/vision/CMakeFiles/mar_vision.dir/fisher.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/fisher.cc.o.d"
  "/root/repo/src/vision/gmm.cc" "src/vision/CMakeFiles/mar_vision.dir/gmm.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/gmm.cc.o.d"
  "/root/repo/src/vision/homography.cc" "src/vision/CMakeFiles/mar_vision.dir/homography.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/homography.cc.o.d"
  "/root/repo/src/vision/image.cc" "src/vision/CMakeFiles/mar_vision.dir/image.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/image.cc.o.d"
  "/root/repo/src/vision/kmeans.cc" "src/vision/CMakeFiles/mar_vision.dir/kmeans.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/kmeans.cc.o.d"
  "/root/repo/src/vision/linalg.cc" "src/vision/CMakeFiles/mar_vision.dir/linalg.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/linalg.cc.o.d"
  "/root/repo/src/vision/lsh.cc" "src/vision/CMakeFiles/mar_vision.dir/lsh.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/lsh.cc.o.d"
  "/root/repo/src/vision/matcher.cc" "src/vision/CMakeFiles/mar_vision.dir/matcher.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/matcher.cc.o.d"
  "/root/repo/src/vision/pca.cc" "src/vision/CMakeFiles/mar_vision.dir/pca.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/pca.cc.o.d"
  "/root/repo/src/vision/pose.cc" "src/vision/CMakeFiles/mar_vision.dir/pose.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/pose.cc.o.d"
  "/root/repo/src/vision/serialize.cc" "src/vision/CMakeFiles/mar_vision.dir/serialize.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/serialize.cc.o.d"
  "/root/repo/src/vision/sift.cc" "src/vision/CMakeFiles/mar_vision.dir/sift.cc.o" "gcc" "src/vision/CMakeFiles/mar_vision.dir/sift.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
