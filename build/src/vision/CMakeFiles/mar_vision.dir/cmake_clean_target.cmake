file(REMOVE_RECURSE
  "libmar_vision.a"
)
