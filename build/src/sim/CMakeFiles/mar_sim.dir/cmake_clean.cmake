file(REMOVE_RECURSE
  "CMakeFiles/mar_sim.dir/event_loop.cc.o"
  "CMakeFiles/mar_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/mar_sim.dir/network.cc.o"
  "CMakeFiles/mar_sim.dir/network.cc.o.d"
  "libmar_sim.a"
  "libmar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
