# Empty compiler generated dependencies file for mar_sim.
# This may be replaced when dependencies are built.
