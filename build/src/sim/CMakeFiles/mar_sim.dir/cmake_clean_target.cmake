file(REMOVE_RECURSE
  "libmar_sim.a"
)
