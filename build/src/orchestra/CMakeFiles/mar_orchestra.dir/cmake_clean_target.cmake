file(REMOVE_RECURSE
  "libmar_orchestra.a"
)
