file(REMOVE_RECURSE
  "CMakeFiles/mar_orchestra.dir/orchestrator.cc.o"
  "CMakeFiles/mar_orchestra.dir/orchestrator.cc.o.d"
  "libmar_orchestra.a"
  "libmar_orchestra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_orchestra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
