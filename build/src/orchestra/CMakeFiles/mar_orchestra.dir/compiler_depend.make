# Empty compiler generated dependencies file for mar_orchestra.
# This may be replaced when dependencies are built.
