file(REMOVE_RECURSE
  "libmar_hw.a"
)
