# Empty compiler generated dependencies file for mar_hw.
# This may be replaced when dependencies are built.
