
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cost_model.cc" "src/hw/CMakeFiles/mar_hw.dir/cost_model.cc.o" "gcc" "src/hw/CMakeFiles/mar_hw.dir/cost_model.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/mar_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/mar_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/resource.cc" "src/hw/CMakeFiles/mar_hw.dir/resource.cc.o" "gcc" "src/hw/CMakeFiles/mar_hw.dir/resource.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mar_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/mar_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
