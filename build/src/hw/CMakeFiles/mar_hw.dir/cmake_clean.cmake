file(REMOVE_RECURSE
  "CMakeFiles/mar_hw.dir/cost_model.cc.o"
  "CMakeFiles/mar_hw.dir/cost_model.cc.o.d"
  "CMakeFiles/mar_hw.dir/machine.cc.o"
  "CMakeFiles/mar_hw.dir/machine.cc.o.d"
  "CMakeFiles/mar_hw.dir/resource.cc.o"
  "CMakeFiles/mar_hw.dir/resource.cc.o.d"
  "libmar_hw.a"
  "libmar_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
