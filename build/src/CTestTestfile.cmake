# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("wire")
subdirs("sim")
subdirs("net")
subdirs("vision")
subdirs("video")
subdirs("hw")
subdirs("telemetry")
subdirs("dsp")
subdirs("orchestra")
subdirs("core")
subdirs("expt")
