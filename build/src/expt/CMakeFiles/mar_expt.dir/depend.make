# Empty dependencies file for mar_expt.
# This may be replaced when dependencies are built.
