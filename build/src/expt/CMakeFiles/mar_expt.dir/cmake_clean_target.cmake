file(REMOVE_RECURSE
  "libmar_expt.a"
)
