file(REMOVE_RECURSE
  "CMakeFiles/mar_expt.dir/autoscaler.cc.o"
  "CMakeFiles/mar_expt.dir/autoscaler.cc.o.d"
  "CMakeFiles/mar_expt.dir/deployment.cc.o"
  "CMakeFiles/mar_expt.dir/deployment.cc.o.d"
  "CMakeFiles/mar_expt.dir/experiment.cc.o"
  "CMakeFiles/mar_expt.dir/experiment.cc.o.d"
  "CMakeFiles/mar_expt.dir/report.cc.o"
  "CMakeFiles/mar_expt.dir/report.cc.o.d"
  "CMakeFiles/mar_expt.dir/table.cc.o"
  "CMakeFiles/mar_expt.dir/table.cc.o.d"
  "CMakeFiles/mar_expt.dir/testbed.cc.o"
  "CMakeFiles/mar_expt.dir/testbed.cc.o.d"
  "libmar_expt.a"
  "libmar_expt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_expt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
