# Empty dependencies file for mar_video.
# This may be replaced when dependencies are built.
