file(REMOVE_RECURSE
  "libmar_video.a"
)
