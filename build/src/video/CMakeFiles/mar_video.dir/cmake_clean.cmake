file(REMOVE_RECURSE
  "CMakeFiles/mar_video.dir/scene.cc.o"
  "CMakeFiles/mar_video.dir/scene.cc.o.d"
  "libmar_video.a"
  "libmar_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mar_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
