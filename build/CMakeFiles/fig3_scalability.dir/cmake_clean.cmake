file(REMOVE_RECURSE
  "CMakeFiles/fig3_scalability.dir/bench/fig3_scalability.cc.o"
  "CMakeFiles/fig3_scalability.dir/bench/fig3_scalability.cc.o.d"
  "bench/fig3_scalability"
  "bench/fig3_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
