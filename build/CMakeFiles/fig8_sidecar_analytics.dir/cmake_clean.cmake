file(REMOVE_RECURSE
  "CMakeFiles/fig8_sidecar_analytics.dir/bench/fig8_sidecar_analytics.cc.o"
  "CMakeFiles/fig8_sidecar_analytics.dir/bench/fig8_sidecar_analytics.cc.o.d"
  "bench/fig8_sidecar_analytics"
  "bench/fig8_sidecar_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sidecar_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
