# Empty dependencies file for fig8_sidecar_analytics.
# This may be replaced when dependencies are built.
