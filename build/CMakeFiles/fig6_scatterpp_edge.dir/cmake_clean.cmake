file(REMOVE_RECURSE
  "CMakeFiles/fig6_scatterpp_edge.dir/bench/fig6_scatterpp_edge.cc.o"
  "CMakeFiles/fig6_scatterpp_edge.dir/bench/fig6_scatterpp_edge.cc.o.d"
  "bench/fig6_scatterpp_edge"
  "bench/fig6_scatterpp_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scatterpp_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
