# Empty dependencies file for fig6_scatterpp_edge.
# This may be replaced when dependencies are built.
