file(REMOVE_RECURSE
  "CMakeFiles/vision_microbench.dir/bench/vision_microbench.cc.o"
  "CMakeFiles/vision_microbench.dir/bench/vision_microbench.cc.o.d"
  "bench/vision_microbench"
  "bench/vision_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
