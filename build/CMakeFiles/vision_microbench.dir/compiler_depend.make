# Empty compiler generated dependencies file for vision_microbench.
# This may be replaced when dependencies are built.
