# Empty compiler generated dependencies file for fig12_sidecar_all_e1.
# This may be replaced when dependencies are built.
