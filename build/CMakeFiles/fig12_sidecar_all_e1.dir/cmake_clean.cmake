file(REMOVE_RECURSE
  "CMakeFiles/fig12_sidecar_all_e1.dir/bench/fig12_sidecar_all_e1.cc.o"
  "CMakeFiles/fig12_sidecar_all_e1.dir/bench/fig12_sidecar_all_e1.cc.o.d"
  "bench/fig12_sidecar_all_e1"
  "bench/fig12_sidecar_all_e1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sidecar_all_e1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
