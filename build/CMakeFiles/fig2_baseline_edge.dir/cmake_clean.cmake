file(REMOVE_RECURSE
  "CMakeFiles/fig2_baseline_edge.dir/bench/fig2_baseline_edge.cc.o"
  "CMakeFiles/fig2_baseline_edge.dir/bench/fig2_baseline_edge.cc.o.d"
  "bench/fig2_baseline_edge"
  "bench/fig2_baseline_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_baseline_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
