# Empty compiler generated dependencies file for fig2_baseline_edge.
# This may be replaced when dependencies are built.
