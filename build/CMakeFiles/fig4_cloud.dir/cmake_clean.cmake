file(REMOVE_RECURSE
  "CMakeFiles/fig4_cloud.dir/bench/fig4_cloud.cc.o"
  "CMakeFiles/fig4_cloud.dir/bench/fig4_cloud.cc.o.d"
  "bench/fig4_cloud"
  "bench/fig4_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
