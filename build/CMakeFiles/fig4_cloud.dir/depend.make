# Empty dependencies file for fig4_cloud.
# This may be replaced when dependencies are built.
