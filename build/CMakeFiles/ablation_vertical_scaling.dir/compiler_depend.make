# Empty compiler generated dependencies file for ablation_vertical_scaling.
# This may be replaced when dependencies are built.
