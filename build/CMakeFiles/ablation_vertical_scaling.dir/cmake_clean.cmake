file(REMOVE_RECURSE
  "CMakeFiles/ablation_vertical_scaling.dir/bench/ablation_vertical_scaling.cc.o"
  "CMakeFiles/ablation_vertical_scaling.dir/bench/ablation_vertical_scaling.cc.o.d"
  "bench/ablation_vertical_scaling"
  "bench/ablation_vertical_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vertical_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
