file(REMOVE_RECURSE
  "CMakeFiles/table1_headline.dir/bench/table1_headline.cc.o"
  "CMakeFiles/table1_headline.dir/bench/table1_headline.cc.o.d"
  "bench/table1_headline"
  "bench/table1_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
