# Empty dependencies file for table1_headline.
# This may be replaced when dependencies are built.
