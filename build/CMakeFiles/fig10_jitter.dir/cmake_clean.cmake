file(REMOVE_RECURSE
  "CMakeFiles/fig10_jitter.dir/bench/fig10_jitter.cc.o"
  "CMakeFiles/fig10_jitter.dir/bench/fig10_jitter.cc.o.d"
  "bench/fig10_jitter"
  "bench/fig10_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
