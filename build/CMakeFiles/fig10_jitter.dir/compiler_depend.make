# Empty compiler generated dependencies file for fig10_jitter.
# This may be replaced when dependencies are built.
