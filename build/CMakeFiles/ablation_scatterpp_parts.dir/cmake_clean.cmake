file(REMOVE_RECURSE
  "CMakeFiles/ablation_scatterpp_parts.dir/bench/ablation_scatterpp_parts.cc.o"
  "CMakeFiles/ablation_scatterpp_parts.dir/bench/ablation_scatterpp_parts.cc.o.d"
  "bench/ablation_scatterpp_parts"
  "bench/ablation_scatterpp_parts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scatterpp_parts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
