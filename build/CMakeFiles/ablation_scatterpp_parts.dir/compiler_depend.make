# Empty compiler generated dependencies file for ablation_scatterpp_parts.
# This may be replaced when dependencies are built.
