file(REMOVE_RECURSE
  "CMakeFiles/fig11_hybrid_cloud.dir/bench/fig11_hybrid_cloud.cc.o"
  "CMakeFiles/fig11_hybrid_cloud.dir/bench/fig11_hybrid_cloud.cc.o.d"
  "bench/fig11_hybrid_cloud"
  "bench/fig11_hybrid_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hybrid_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
