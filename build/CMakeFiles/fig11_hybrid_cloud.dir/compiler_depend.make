# Empty compiler generated dependencies file for fig11_hybrid_cloud.
# This may be replaced when dependencies are built.
