file(REMOVE_RECURSE
  "CMakeFiles/ablation_sidecar_threshold.dir/bench/ablation_sidecar_threshold.cc.o"
  "CMakeFiles/ablation_sidecar_threshold.dir/bench/ablation_sidecar_threshold.cc.o.d"
  "bench/ablation_sidecar_threshold"
  "bench/ablation_sidecar_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sidecar_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
