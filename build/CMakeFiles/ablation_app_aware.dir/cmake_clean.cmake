file(REMOVE_RECURSE
  "CMakeFiles/ablation_app_aware.dir/bench/ablation_app_aware.cc.o"
  "CMakeFiles/ablation_app_aware.dir/bench/ablation_app_aware.cc.o.d"
  "bench/ablation_app_aware"
  "bench/ablation_app_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_app_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
