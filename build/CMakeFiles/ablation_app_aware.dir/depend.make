# Empty dependencies file for ablation_app_aware.
# This may be replaced when dependencies are built.
