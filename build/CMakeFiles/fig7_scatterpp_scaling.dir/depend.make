# Empty dependencies file for fig7_scatterpp_scaling.
# This may be replaced when dependencies are built.
