file(REMOVE_RECURSE
  "CMakeFiles/fig7_scatterpp_scaling.dir/bench/fig7_scatterpp_scaling.cc.o"
  "CMakeFiles/fig7_scatterpp_scaling.dir/bench/fig7_scatterpp_scaling.cc.o.d"
  "bench/fig7_scatterpp_scaling"
  "bench/fig7_scatterpp_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scatterpp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
