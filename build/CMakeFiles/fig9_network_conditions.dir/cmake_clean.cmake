file(REMOVE_RECURSE
  "CMakeFiles/fig9_network_conditions.dir/bench/fig9_network_conditions.cc.o"
  "CMakeFiles/fig9_network_conditions.dir/bench/fig9_network_conditions.cc.o.d"
  "bench/fig9_network_conditions"
  "bench/fig9_network_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_network_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
