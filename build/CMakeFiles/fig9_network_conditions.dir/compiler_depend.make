# Empty compiler generated dependencies file for fig9_network_conditions.
# This may be replaced when dependencies are built.
