file(REMOVE_RECURSE
  "CMakeFiles/vision_fast_test.dir/vision_fast_test.cc.o"
  "CMakeFiles/vision_fast_test.dir/vision_fast_test.cc.o.d"
  "vision_fast_test"
  "vision_fast_test.pdb"
  "vision_fast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_fast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
