# Empty dependencies file for vision_fast_test.
# This may be replaced when dependencies are built.
