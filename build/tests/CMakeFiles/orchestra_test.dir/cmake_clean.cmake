file(REMOVE_RECURSE
  "CMakeFiles/orchestra_test.dir/orchestra_test.cc.o"
  "CMakeFiles/orchestra_test.dir/orchestra_test.cc.o.d"
  "orchestra_test"
  "orchestra_test.pdb"
  "orchestra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orchestra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
