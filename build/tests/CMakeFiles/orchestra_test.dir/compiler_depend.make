# Empty compiler generated dependencies file for orchestra_test.
# This may be replaced when dependencies are built.
