# Empty dependencies file for vision_sift_test.
# This may be replaced when dependencies are built.
