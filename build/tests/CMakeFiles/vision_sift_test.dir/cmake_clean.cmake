file(REMOVE_RECURSE
  "CMakeFiles/vision_sift_test.dir/vision_sift_test.cc.o"
  "CMakeFiles/vision_sift_test.dir/vision_sift_test.cc.o.d"
  "vision_sift_test"
  "vision_sift_test.pdb"
  "vision_sift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_sift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
