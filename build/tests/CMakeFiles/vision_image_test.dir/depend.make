# Empty dependencies file for vision_image_test.
# This may be replaced when dependencies are built.
