file(REMOVE_RECURSE
  "CMakeFiles/vision_image_test.dir/vision_image_test.cc.o"
  "CMakeFiles/vision_image_test.dir/vision_image_test.cc.o.d"
  "vision_image_test"
  "vision_image_test.pdb"
  "vision_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
