# Empty dependencies file for vision_parallel_test.
# This may be replaced when dependencies are built.
