file(REMOVE_RECURSE
  "CMakeFiles/vision_parallel_test.dir/vision_parallel_test.cc.o"
  "CMakeFiles/vision_parallel_test.dir/vision_parallel_test.cc.o.d"
  "vision_parallel_test"
  "vision_parallel_test.pdb"
  "vision_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
