# Empty dependencies file for vision_engine_test.
# This may be replaced when dependencies are built.
