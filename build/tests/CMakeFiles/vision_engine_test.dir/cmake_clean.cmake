file(REMOVE_RECURSE
  "CMakeFiles/vision_engine_test.dir/vision_engine_test.cc.o"
  "CMakeFiles/vision_engine_test.dir/vision_engine_test.cc.o.d"
  "vision_engine_test"
  "vision_engine_test.pdb"
  "vision_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
