file(REMOVE_RECURSE
  "CMakeFiles/vision_geometry_test.dir/vision_geometry_test.cc.o"
  "CMakeFiles/vision_geometry_test.dir/vision_geometry_test.cc.o.d"
  "vision_geometry_test"
  "vision_geometry_test.pdb"
  "vision_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
