file(REMOVE_RECURSE
  "CMakeFiles/vision_math_test.dir/vision_math_test.cc.o"
  "CMakeFiles/vision_math_test.dir/vision_math_test.cc.o.d"
  "vision_math_test"
  "vision_math_test.pdb"
  "vision_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vision_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
