# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/dsp_test[1]_include.cmake")
include("/root/repo/build/tests/orchestra_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/vision_image_test[1]_include.cmake")
include("/root/repo/build/tests/vision_sift_test[1]_include.cmake")
include("/root/repo/build/tests/vision_math_test[1]_include.cmake")
include("/root/repo/build/tests/vision_geometry_test[1]_include.cmake")
include("/root/repo/build/tests/vision_engine_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/expt_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/vision_fast_test[1]_include.cmake")
include("/root/repo/build/tests/autoscaler_test[1]_include.cmake")
include("/root/repo/build/tests/vision_parallel_test[1]_include.cmake")
