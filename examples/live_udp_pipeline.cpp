// Live distributed pipeline over real UDP sockets.
//
// Runs the five scAtteR++ services as threads, each bound to its own
// UDP socket, moving real frames/features/Fisher vectors through the
// shared wire format (serialize -> fragment -> reassemble -> parse) —
// the live-mode counterpart of the simulated deployment. The client
// thread streams synthetic camera frames and measures end-to-end
// latency of the returned detections.
//
// Build & run:  ./build/examples/live_udp_pipeline
//
//   --metrics_port=N   serve live /metrics, /healthz, /statusz on port N
//                      (0 = ephemeral; the bound port is printed). The
//                      scrape shows per-service latency histograms, frame
//                      and drop counters, and the process's CPU/RSS from
//                      /proc — the real-substrate half of the metrics
//                      plane the simulator also exports.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "net/frame_channel.h"
#include "net/http.h"
#include "telemetry/procstat.h"
#include "telemetry/registry.h"
#include "vision/engine.h"
#include "vision/serialize.h"
#include "video/scene.h"

using namespace mar;
using Clock = std::chrono::steady_clock;

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
      .count();
}

// Image payload: u16 width, u16 height, then 8-bit pixels.
std::vector<std::uint8_t> encode_image(const vision::Image& img) {
  ByteWriter w(4 + img.size());
  w.put_u16(static_cast<std::uint16_t>(img.width()));
  w.put_u16(static_cast<std::uint16_t>(img.height()));
  w.put_bytes(vision::to_bytes(img));
  return std::move(w).take();
}

vision::Image decode_image(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const int w = r.get_u16();
  const int h = r.get_u16();
  const auto pixels = r.get_bytes(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  if (!r.ok()) return {};
  return vision::from_bytes(pixels.data(), w, h);
}

// Two-part payload: [u32 size_a][blob_a][u32 size_b][blob_b].
std::vector<std::uint8_t> pack2(const std::vector<std::uint8_t>& a,
                                const std::vector<std::uint8_t>& b) {
  ByteWriter w(8 + a.size() + b.size());
  w.put_u32(static_cast<std::uint32_t>(a.size()));
  w.put_bytes(a);
  w.put_u32(static_cast<std::uint32_t>(b.size()));
  w.put_bytes(b);
  return std::move(w).take();
}

bool unpack2(std::span<const std::uint8_t> bytes, std::vector<std::uint8_t>& a,
             std::vector<std::uint8_t>& b) {
  ByteReader r(bytes);
  const std::uint32_t na = r.get_u32();
  a = r.get_bytes(na);
  const std::uint32_t nb = r.get_u32();
  b = r.get_bytes(nb);
  return r.ok();
}

}  // namespace

int main(int argc, char** argv) {
  int metrics_port = -1;  // -1 = metrics plane off
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--metrics_port=", 0) == 0) {
      metrics_port = std::atoi(arg.c_str() + std::strlen("--metrics_port="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf("Live UDP pipeline: 5 services + 1 client on loopback\n");

  // Live metrics plane: per-stage latency histograms updated by the
  // service threads (sharded cells — no contention), frame/drop
  // counters, and OS-level CPU/RSS gauges from /proc.
  auto& registry = telemetry::MetricRegistry::instance();
  const char* stage_names[] = {"primary", "sift", "encoding", "lsh", "matching"};
  telemetry::FixedHistogram* stage_hist[5];
  for (int s = 0; s < 5; ++s) {
    stage_hist[s] = &registry.histogram(
        "mar_service_ms", "Per-frame service processing latency (ms).",
        telemetry::FixedHistogram::default_latency_ms_bounds(), {{"stage", stage_names[s]}});
  }
  telemetry::FixedHistogram& e2e_hist = registry.histogram(
      "mar_frame_e2e_ms", "Client-observed capture-to-result latency (ms).",
      telemetry::FixedHistogram::default_latency_ms_bounds());
  telemetry::Counter& frames_sent_total =
      registry.counter("mar_frames_sent_total", "Frames the client sent.");
  telemetry::Counter& results_total =
      registry.counter("mar_results_total", "Results delivered to the client.");
  telemetry::Counter& parse_drops_total = registry.counter(
      "mar_parse_drops_total", "Packets dropped by a service on a malformed payload.");

  net::HttpServer metrics_server;
  telemetry::ProcStatSampler proc_sampler(registry);
  if (metrics_port >= 0) {
    registry.set_enabled(true);
    net::serve_metrics(metrics_server, registry);
    if (auto st = metrics_server.start(static_cast<std::uint16_t>(metrics_port));
        !st.is_ok()) {
      std::fprintf(stderr, "metrics server failed: %s\n", st.message().c_str());
      return 1;
    }
    proc_sampler.start(std::chrono::milliseconds(250));
    std::printf("metrics plane listening on port %u (GET /metrics /healthz /statusz)\n",
                metrics_server.port());
    std::fflush(stdout);  // scripts poll a redirected log for this line
  }

  // One shared, pre-trained engine; each stage thread uses only its
  // stage's (const) part, matching owns the tracker.
  video::WorkplaceScene scene(640, 360);
  vision::EngineParams params;
  params.working_width = 320;
  params.sift.max_features = 250;
  vision::ArEngine engine(params);
  engine.add_reference("monitor",
                       scene.render_reference(video::SceneObject::kMonitor, 220, 140));
  engine.add_reference("keyboard",
                       scene.render_reference(video::SceneObject::kKeyboard, 180, 70));
  engine.add_reference("table", scene.render_reference(video::SceneObject::kTable, 290, 75));
  if (!engine.finalize_training()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  // Open one channel per stage + the client.
  constexpr int kStages = 5;
  std::vector<net::FrameChannel> channels(kStages + 1);
  std::vector<net::SockAddr> addrs(kStages + 1);
  for (int i = 0; i <= kStages; ++i) {
    if (!channels[static_cast<std::size_t>(i)].open(0).is_ok()) {
      std::fprintf(stderr, "socket open failed\n");
      return 1;
    }
    addrs[static_cast<std::size_t>(i)] =
        channels[static_cast<std::size_t>(i)].local_addr().value();
  }
  const net::SockAddr client_addr = addrs[kStages];

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;

  auto service = [&](int stage) {
    auto& ch = channels[static_cast<std::size_t>(stage)];
    const net::SockAddr next =
        stage + 1 < kStages ? addrs[static_cast<std::size_t>(stage + 1)] : client_addr;
    while (!stop.load(std::memory_order_relaxed)) {
      auto received = ch.poll(20);
      if (!received) continue;
      wire::FramePacket& pkt = received->packet;
      const auto t0 = Clock::now();
      switch (static_cast<Stage>(stage)) {
        case Stage::kPrimary: {
          const vision::Image img = decode_image(pkt.payload);
          pkt.payload = encode_image(engine.preprocess(img));
          break;
        }
        case Stage::kSift: {
          const vision::Image img = decode_image(pkt.payload);
          const auto features = engine.extract(img, img);
          pkt.payload = vision::serialize_features(features.features);
          pkt.header.carries_state = true;  // stateless pipeline
          break;
        }
        case Stage::kEncoding: {
          const auto features = vision::parse_features(pkt.payload);
          if (!features) {
            parse_drops_total.inc();
            continue;
          }
          const auto fisher = engine.encode(*features);
          pkt.payload = pack2(vision::serialize_features(*features),
                              vision::serialize_floats(fisher));
          break;
        }
        case Stage::kLsh: {
          std::vector<std::uint8_t> feat_blob, fisher_blob;
          if (!unpack2(pkt.payload, feat_blob, fisher_blob)) {
            parse_drops_total.inc();
            continue;
          }
          const auto fisher = vision::parse_floats(fisher_blob);
          if (!fisher) {
            parse_drops_total.inc();
            continue;
          }
          const auto candidates = engine.lookup(*fisher);
          pkt.payload = pack2(feat_blob, vision::serialize_ids(candidates));
          break;
        }
        case Stage::kMatching: {
          std::vector<std::uint8_t> feat_blob, id_blob;
          if (!unpack2(pkt.payload, feat_blob, id_blob)) {
            parse_drops_total.inc();
            continue;
          }
          const auto features = vision::parse_features(feat_blob);
          const auto candidates = vision::parse_ids(id_blob);
          if (!features || !candidates) {
            parse_drops_total.inc();
            continue;
          }
          vision::ExtractedFeatures ef;
          ef.features = *features;
          pkt.payload = vision::serialize_detections(engine.match_and_pose(ef, *candidates));
          pkt.header.kind = wire::MessageKind::kResult;
          pkt.header.match_ok = !pkt.payload.empty();
          break;
        }
        case Stage::kResult:
          continue;
      }
      stage_hist[static_cast<std::size_t>(stage)]->observe(
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
      pkt.header.stage = static_cast<Stage>(stage + 1);
      pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
      ch.send(pkt, next);
    }
  };

  workers.reserve(kStages);
  for (int s = 0; s < kStages; ++s) workers.emplace_back(service, s);

  // Client: stream frames at ~4 FPS (CPU-bound SIFT on one core) and
  // collect results.
  constexpr int kFrames = 12;
  auto& client_ch = channels[kStages];
  int results = 0, recognized = 0;
  double total_e2e_ms = 0.0;

  std::thread sender([&] {
    for (int i = 0; i < kFrames && !stop.load(); ++i) {
      wire::FramePacket pkt;
      pkt.header.client = ClientId{1};
      pkt.header.frame = FrameId{static_cast<std::uint64_t>(i)};
      pkt.header.stage = Stage::kPrimary;
      pkt.header.capture_ts = now_ns();
      pkt.payload = encode_image(scene.render(static_cast<double>(i) / 4.0));
      pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
      client_ch.send(pkt, addrs[0]);
      frames_sent_total.inc();
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  });

  const auto deadline = Clock::now() + std::chrono::seconds(15);
  while (results < kFrames && Clock::now() < deadline) {
    auto received = client_ch.poll(50);
    if (!received) continue;
    ++results;
    const double e2e_ms =
        static_cast<double>(now_ns() - received->packet.header.capture_ts) / 1e6;
    total_e2e_ms += e2e_ms;
    results_total.inc();
    e2e_hist.observe(e2e_ms);
    const auto detections = vision::parse_detections(received->packet.payload);
    const std::size_t n_det = detections ? detections->size() : 0;
    if (n_det > 0) ++recognized;
    std::printf("frame %llu: %zu detections, E2E %.0f ms\n",
                static_cast<unsigned long long>(received->packet.header.frame.value()), n_det,
                e2e_ms);
  }

  stop.store(true);
  sender.join();
  for (auto& w : workers) w.join();
  proc_sampler.stop();
  metrics_server.stop();

  std::printf("\ndelivered %d/%d frames, %d with detections, mean E2E %.0f ms\n", results,
              kFrames, recognized, results ? total_e2e_ms / results : 0.0);
  return results > 0 ? 0 : 1;
}
