// Live distributed pipeline over real UDP sockets.
//
// Runs the five scAtteR++ services as threads, each bound to its own
// UDP socket, moving real frames/features/Fisher vectors through the
// shared wire format (serialize -> fragment -> reassemble -> parse) —
// the live-mode counterpart of the simulated deployment. The client
// thread streams synthetic camera frames and measures end-to-end
// latency of the returned detections.
//
// Build & run:  ./build/examples/live_udp_pipeline
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "net/frame_channel.h"
#include "vision/engine.h"
#include "vision/serialize.h"
#include "video/scene.h"

using namespace mar;
using Clock = std::chrono::steady_clock;

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
      .count();
}

// Image payload: u16 width, u16 height, then 8-bit pixels.
std::vector<std::uint8_t> encode_image(const vision::Image& img) {
  ByteWriter w(4 + img.size());
  w.put_u16(static_cast<std::uint16_t>(img.width()));
  w.put_u16(static_cast<std::uint16_t>(img.height()));
  w.put_bytes(vision::to_bytes(img));
  return std::move(w).take();
}

vision::Image decode_image(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const int w = r.get_u16();
  const int h = r.get_u16();
  const auto pixels = r.get_bytes(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  if (!r.ok()) return {};
  return vision::from_bytes(pixels.data(), w, h);
}

// Two-part payload: [u32 size_a][blob_a][u32 size_b][blob_b].
std::vector<std::uint8_t> pack2(const std::vector<std::uint8_t>& a,
                                const std::vector<std::uint8_t>& b) {
  ByteWriter w(8 + a.size() + b.size());
  w.put_u32(static_cast<std::uint32_t>(a.size()));
  w.put_bytes(a);
  w.put_u32(static_cast<std::uint32_t>(b.size()));
  w.put_bytes(b);
  return std::move(w).take();
}

bool unpack2(std::span<const std::uint8_t> bytes, std::vector<std::uint8_t>& a,
             std::vector<std::uint8_t>& b) {
  ByteReader r(bytes);
  const std::uint32_t na = r.get_u32();
  a = r.get_bytes(na);
  const std::uint32_t nb = r.get_u32();
  b = r.get_bytes(nb);
  return r.ok();
}

}  // namespace

int main() {
  std::printf("Live UDP pipeline: 5 services + 1 client on loopback\n");

  // One shared, pre-trained engine; each stage thread uses only its
  // stage's (const) part, matching owns the tracker.
  video::WorkplaceScene scene(640, 360);
  vision::EngineParams params;
  params.working_width = 320;
  params.sift.max_features = 250;
  vision::ArEngine engine(params);
  engine.add_reference("monitor",
                       scene.render_reference(video::SceneObject::kMonitor, 220, 140));
  engine.add_reference("keyboard",
                       scene.render_reference(video::SceneObject::kKeyboard, 180, 70));
  engine.add_reference("table", scene.render_reference(video::SceneObject::kTable, 290, 75));
  if (!engine.finalize_training()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  // Open one channel per stage + the client.
  constexpr int kStages = 5;
  std::vector<net::FrameChannel> channels(kStages + 1);
  std::vector<net::SockAddr> addrs(kStages + 1);
  for (int i = 0; i <= kStages; ++i) {
    if (!channels[static_cast<std::size_t>(i)].open(0).is_ok()) {
      std::fprintf(stderr, "socket open failed\n");
      return 1;
    }
    addrs[static_cast<std::size_t>(i)] =
        channels[static_cast<std::size_t>(i)].local_addr().value();
  }
  const net::SockAddr client_addr = addrs[kStages];

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;

  auto service = [&](int stage) {
    auto& ch = channels[static_cast<std::size_t>(stage)];
    const net::SockAddr next =
        stage + 1 < kStages ? addrs[static_cast<std::size_t>(stage + 1)] : client_addr;
    while (!stop.load(std::memory_order_relaxed)) {
      auto received = ch.poll(20);
      if (!received) continue;
      wire::FramePacket& pkt = received->packet;
      switch (static_cast<Stage>(stage)) {
        case Stage::kPrimary: {
          const vision::Image img = decode_image(pkt.payload);
          pkt.payload = encode_image(engine.preprocess(img));
          break;
        }
        case Stage::kSift: {
          const vision::Image img = decode_image(pkt.payload);
          const auto features = engine.extract(img, img);
          pkt.payload = vision::serialize_features(features.features);
          pkt.header.carries_state = true;  // stateless pipeline
          break;
        }
        case Stage::kEncoding: {
          const auto features = vision::parse_features(pkt.payload);
          if (!features) continue;
          const auto fisher = engine.encode(*features);
          pkt.payload = pack2(vision::serialize_features(*features),
                              vision::serialize_floats(fisher));
          break;
        }
        case Stage::kLsh: {
          std::vector<std::uint8_t> feat_blob, fisher_blob;
          if (!unpack2(pkt.payload, feat_blob, fisher_blob)) continue;
          const auto fisher = vision::parse_floats(fisher_blob);
          if (!fisher) continue;
          const auto candidates = engine.lookup(*fisher);
          pkt.payload = pack2(feat_blob, vision::serialize_ids(candidates));
          break;
        }
        case Stage::kMatching: {
          std::vector<std::uint8_t> feat_blob, id_blob;
          if (!unpack2(pkt.payload, feat_blob, id_blob)) continue;
          const auto features = vision::parse_features(feat_blob);
          const auto candidates = vision::parse_ids(id_blob);
          if (!features || !candidates) continue;
          vision::ExtractedFeatures ef;
          ef.features = *features;
          pkt.payload = vision::serialize_detections(engine.match_and_pose(ef, *candidates));
          pkt.header.kind = wire::MessageKind::kResult;
          pkt.header.match_ok = !pkt.payload.empty();
          break;
        }
        case Stage::kResult:
          continue;
      }
      pkt.header.stage = static_cast<Stage>(stage + 1);
      pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
      ch.send(pkt, next);
    }
  };

  workers.reserve(kStages);
  for (int s = 0; s < kStages; ++s) workers.emplace_back(service, s);

  // Client: stream frames at ~4 FPS (CPU-bound SIFT on one core) and
  // collect results.
  constexpr int kFrames = 12;
  auto& client_ch = channels[kStages];
  int results = 0, recognized = 0;
  double total_e2e_ms = 0.0;

  std::thread sender([&] {
    for (int i = 0; i < kFrames && !stop.load(); ++i) {
      wire::FramePacket pkt;
      pkt.header.client = ClientId{1};
      pkt.header.frame = FrameId{static_cast<std::uint64_t>(i)};
      pkt.header.stage = Stage::kPrimary;
      pkt.header.capture_ts = now_ns();
      pkt.payload = encode_image(scene.render(static_cast<double>(i) / 4.0));
      pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
      client_ch.send(pkt, addrs[0]);
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  });

  const auto deadline = Clock::now() + std::chrono::seconds(15);
  while (results < kFrames && Clock::now() < deadline) {
    auto received = client_ch.poll(50);
    if (!received) continue;
    ++results;
    const double e2e_ms =
        static_cast<double>(now_ns() - received->packet.header.capture_ts) / 1e6;
    total_e2e_ms += e2e_ms;
    const auto detections = vision::parse_detections(received->packet.payload);
    const std::size_t n_det = detections ? detections->size() : 0;
    if (n_det > 0) ++recognized;
    std::printf("frame %llu: %zu detections, E2E %.0f ms\n",
                static_cast<unsigned long long>(received->packet.header.frame.value()), n_det,
                e2e_ms);
  }

  stop.store(true);
  sender.join();
  for (auto& w : workers) w.join();

  std::printf("\ndelivered %d/%d frames, %d with detections, mean E2E %.0f ms\n", results,
              kFrames, recognized, results ? total_e2e_ms / results : 0.0);
  return results > 0 ? 0 : 1;
}
