// Live distributed pipeline over real UDP sockets, served by ONE
// epoll event loop.
//
// The five scAtteR++ services and every client share a single
// net::EpollLoop: each service is a UDP socket whose readable handler
// runs the stage inline, clients are timer-driven frame sources, and
// the transport's housekeeping (NACK backoff, reassembly GC) rides a
// periodic timer on the same loop. No thread-per-socket — one process
// serves 6 sockets by default and hundreds with --clients=N, which is
// the shape a production edge box needs (ROADMAP item 3).
//
// The full production transport is switchable from the command line:
//
//   --rtx              receiver-driven NACK retransmission + ACKs
//   --fec_group=K      one XOR-parity datagram per K data fragments
//   --loss=P           deterministic transmit-loss harness (0..1) on
//                      every channel, so the recovery tiers have
//                      something to recover from on loopback
//   --adaptive         sender-side quality stepping: clients shrink
//                      their frames under sustained loss (CloudAR-
//                      style fidelity adaptation) and recover slowly
//   --clients=N        number of concurrent client sockets (default 1)
//   --frames=N         frames per client (default 12)
//   --metrics_port=N   serve live /metrics, /healthz, /statusz (and
//                      GET /debug/pprof/{profile,heap,cmdline}) on port
//                      N (0 = ephemeral; the bound port is printed).
//                      The scrape includes the transport counters:
//                      mar_net_rtx_total, mar_net_fec_repairs_total,
//                      mar_net_frames_unrecoverable_total, and the
//                      per-channel mar_net_receiver_loss_ratio gauge.
//   --profile          sample the run with the in-process CPU profiler
//   --profile_hz=N     sampling rate (default 99)
//   --profile_out=P    artifact prefix (default "live_udp_profile")
//
// Build & run:  ./build/examples/live_udp_pipeline --loss=0.05 --rtx --fec_group=4
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "net/adaptive.h"
#include "net/epoll_loop.h"
#include "net/frame_channel.h"
#include "expt/report.h"
#include "net/http.h"
#include "telemetry/procstat.h"
#include "telemetry/profiler.h"
#include "telemetry/registry.h"
#include "vision/engine.h"
#include "vision/image.h"
#include "vision/serialize.h"
#include "video/scene.h"

using namespace mar;
using Clock = std::chrono::steady_clock;

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now().time_since_epoch())
      .count();
}

// Image payload: u16 width, u16 height, then 8-bit pixels.
std::vector<std::uint8_t> encode_image(const vision::Image& img) {
  ByteWriter w(4 + img.size());
  w.put_u16(static_cast<std::uint16_t>(img.width()));
  w.put_u16(static_cast<std::uint16_t>(img.height()));
  w.put_bytes(vision::to_bytes(img));
  return std::move(w).take();
}

vision::Image decode_image(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const int w = r.get_u16();
  const int h = r.get_u16();
  const auto pixels = r.get_bytes(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  if (!r.ok()) return {};
  return vision::from_bytes(pixels.data(), w, h);
}

// Two-part payload: [u32 size_a][blob_a][u32 size_b][blob_b].
std::vector<std::uint8_t> pack2(const std::vector<std::uint8_t>& a,
                                const std::vector<std::uint8_t>& b) {
  ByteWriter w(8 + a.size() + b.size());
  w.put_u32(static_cast<std::uint32_t>(a.size()));
  w.put_bytes(a);
  w.put_u32(static_cast<std::uint32_t>(b.size()));
  w.put_bytes(b);
  return std::move(w).take();
}

bool unpack2(std::span<const std::uint8_t> bytes, std::vector<std::uint8_t>& a,
             std::vector<std::uint8_t>& b) {
  ByteReader r(bytes);
  const std::uint32_t na = r.get_u32();
  a = r.get_bytes(na);
  const std::uint32_t nb = r.get_u32();
  b = r.get_bytes(nb);
  return r.ok();
}

struct Flags {
  int metrics_port = -1;  // -1 = metrics plane off
  int clients = 1;
  int frames = 12;
  int frame_period_ms = 250;
  bool rtx = false;
  int fec_group = 0;
  double loss = 0.0;
  bool adaptive = false;
  bool profile = false;
  int profile_hz = 99;
  std::string profile_out = "live_udp_profile";
};

bool parse_flags(int argc, char** argv, Flags& f) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto intval = [&](const char* prefix, int& out) {
      if (arg.rfind(prefix, 0) != 0) return false;
      out = std::atoi(arg.c_str() + std::strlen(prefix));
      return true;
    };
    if (intval("--metrics_port=", f.metrics_port) || intval("--clients=", f.clients) ||
        intval("--frames=", f.frames) || intval("--period_ms=", f.frame_period_ms) ||
        intval("--fec_group=", f.fec_group) || intval("--profile_hz=", f.profile_hz)) {
      continue;
    }
    if (arg == "--rtx") {
      f.rtx = true;
    } else if (arg == "--adaptive") {
      f.adaptive = true;
    } else if (arg == "--profile") {
      f.profile = true;
    } else if (arg.rfind("--profile_out=", 0) == 0) {
      f.profile_out = arg.c_str() + std::strlen("--profile_out=");
    } else if (arg.rfind("--loss=", 0) == 0) {
      f.loss = std::atof(arg.c_str() + std::strlen("--loss="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  f.clients = std::max(1, f.clients);
  f.frames = std::max(1, f.frames);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, flags)) return 2;

  constexpr int kStages = 5;
  std::printf("Live UDP pipeline: %d services + %d client(s) on one epoll loop\n", kStages,
              flags.clients);
  if (flags.loss > 0.0 || flags.rtx || flags.fec_group > 0) {
    std::printf("transport: loss=%.0f%% rtx=%s fec_group=%d adaptive=%s\n",
                flags.loss * 100.0, flags.rtx ? "on" : "off", flags.fec_group,
                flags.adaptive ? "on" : "off");
  }

  // Live metrics plane: per-stage latency histograms, frame/drop
  // counters, transport recovery counters, and CPU/RSS from /proc.
  auto& registry = telemetry::MetricRegistry::instance();
  const char* stage_names[] = {"primary", "sift", "encoding", "lsh", "matching"};
  telemetry::FixedHistogram* stage_hist[kStages];
  for (int s = 0; s < kStages; ++s) {
    stage_hist[s] = &registry.histogram(
        "mar_service_ms", "Per-frame service processing latency (ms).",
        telemetry::FixedHistogram::default_latency_ms_bounds(), {{"stage", stage_names[s]}});
  }
  telemetry::FixedHistogram& e2e_hist = registry.histogram(
      "mar_frame_e2e_ms", "Client-observed capture-to-result latency (ms).",
      telemetry::FixedHistogram::default_latency_ms_bounds());
  telemetry::Counter& frames_sent_total =
      registry.counter("mar_frames_sent_total", "Frames the clients sent.");
  telemetry::Counter& results_total =
      registry.counter("mar_results_total", "Results delivered to the clients.");
  telemetry::Counter& parse_drops_total = registry.counter(
      "mar_parse_drops_total", "Packets dropped by a service on a malformed payload.");

  net::HttpServer metrics_server;
  telemetry::ProcStatSampler proc_sampler(registry);
  if (flags.metrics_port >= 0) {
    registry.set_enabled(true);
    net::serve_metrics(metrics_server, registry);
    net::serve_pprof(metrics_server);
    telemetry::Profiler::instance().publish_to_registry();
    if (auto st = metrics_server.start(static_cast<std::uint16_t>(flags.metrics_port));
        !st.is_ok()) {
      std::fprintf(stderr, "metrics server failed: %s\n", st.message().c_str());
      return 1;
    }
    proc_sampler.start(std::chrono::milliseconds(250));
    std::printf("metrics plane listening on port %u (GET /metrics /healthz /statusz)\n",
                metrics_server.port());
    std::fflush(stdout);  // scripts poll a redirected log for this line
  }

  // One shared, pre-trained engine; stages use only their (const)
  // part, matching owns the tracker. Everything runs on the loop
  // thread, so no synchronization is needed anywhere below.
  video::WorkplaceScene scene(640, 360);
  vision::EngineParams params;
  params.working_width = 320;
  params.sift.max_features = 250;
  vision::ArEngine engine(params);
  engine.add_reference("monitor",
                       scene.render_reference(video::SceneObject::kMonitor, 220, 140));
  engine.add_reference("keyboard",
                       scene.render_reference(video::SceneObject::kKeyboard, 180, 70));
  engine.add_reference("table", scene.render_reference(video::SceneObject::kTable, 290, 75));
  if (!engine.finalize_training()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  net::ChannelOptions copts;
  copts.enable_rtx = flags.rtx;
  copts.fec_group = flags.fec_group;
  copts.rtx.nack_timeout = std::chrono::milliseconds(10);
  copts.tx_loss_rate = flags.loss;

  // One channel per stage + one per client, all on the same loop.
  const int n_channels = kStages + flags.clients;
  std::vector<net::FrameChannel> channels;
  channels.reserve(static_cast<std::size_t>(n_channels));
  std::vector<net::SockAddr> addrs(static_cast<std::size_t>(n_channels));
  for (int i = 0; i < n_channels; ++i) {
    copts.tx_loss_seed = static_cast<std::uint64_t>(i) + 1;
    channels.emplace_back(copts);
    if (!channels.back().open(0).is_ok()) {
      std::fprintf(stderr, "socket open failed\n");
      return 1;
    }
    addrs[static_cast<std::size_t>(i)] = channels.back().local_addr().value();
  }
  auto client_channel = [&](int c) -> net::FrameChannel& {
    return channels[static_cast<std::size_t>(kStages + c)];
  };
  auto client_addr = [&](std::uint32_t client_id) {  // ClientId{c+1} -> addr
    return addrs[static_cast<std::size_t>(kStages) + client_id - 1];
  };

  // Per-client progress + adaptive quality state.
  struct ClientState {
    int frames_sent = 0;
    int results = 0;
    int recognized = 0;
    double total_e2e_ms = 0.0;
    net::AdaptiveQuality quality;
    std::uint64_t last_frags = 0, last_rtx = 0;
  };
  net::AdaptiveConfig acfg;
  acfg.down_threshold = 0.05;
  std::vector<ClientState> clients(static_cast<std::size_t>(flags.clients),
                                   ClientState{0, 0, 0, 0.0, net::AdaptiveQuality(acfg), 0, 0});

  auto run_stage = [&](int stage, net::FrameChannel::Received& received) {
    wire::FramePacket& pkt = received.packet;
    const auto t0 = Clock::now();
    switch (static_cast<Stage>(stage)) {
      case Stage::kPrimary: {
        const vision::Image img = decode_image(pkt.payload);
        pkt.payload = encode_image(engine.preprocess(img));
        break;
      }
      case Stage::kSift: {
        const vision::Image img = decode_image(pkt.payload);
        const auto features = engine.extract(img, img);
        pkt.payload = vision::serialize_features(features.features);
        pkt.header.carries_state = true;  // stateless pipeline
        break;
      }
      case Stage::kEncoding: {
        const auto features = vision::parse_features(pkt.payload);
        if (!features) {
          parse_drops_total.inc();
          return;
        }
        const auto fisher = engine.encode(*features);
        pkt.payload = pack2(vision::serialize_features(*features),
                            vision::serialize_floats(fisher));
        break;
      }
      case Stage::kLsh: {
        std::vector<std::uint8_t> feat_blob, fisher_blob;
        if (!unpack2(pkt.payload, feat_blob, fisher_blob)) {
          parse_drops_total.inc();
          return;
        }
        const auto fisher = vision::parse_floats(fisher_blob);
        if (!fisher) {
          parse_drops_total.inc();
          return;
        }
        const auto candidates = engine.lookup(*fisher);
        pkt.payload = pack2(feat_blob, vision::serialize_ids(candidates));
        break;
      }
      case Stage::kMatching: {
        std::vector<std::uint8_t> feat_blob, id_blob;
        if (!unpack2(pkt.payload, feat_blob, id_blob)) {
          parse_drops_total.inc();
          return;
        }
        const auto features = vision::parse_features(feat_blob);
        const auto candidates = vision::parse_ids(id_blob);
        if (!features || !candidates) {
          parse_drops_total.inc();
          return;
        }
        vision::ExtractedFeatures ef;
        ef.features = *features;
        pkt.payload = vision::serialize_detections(engine.match_and_pose(ef, *candidates));
        pkt.header.kind = wire::MessageKind::kResult;
        pkt.header.match_ok = !pkt.payload.empty();
        break;
      }
      case Stage::kResult:
        return;
    }
    stage_hist[stage]->observe(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
    pkt.header.stage = static_cast<Stage>(stage + 1);
    pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
    const net::SockAddr next = stage + 1 < kStages
                                   ? addrs[static_cast<std::size_t>(stage + 1)]
                                   : client_addr(pkt.header.client.value());
    channels[static_cast<std::size_t>(stage)].send(pkt, next);
  };

  net::EpollLoop loop;
  if (auto st = loop.init(); !st.is_ok()) {
    std::fprintf(stderr, "epoll init failed: %s\n", st.message().c_str());
    return 1;
  }

  // Service handlers: drain the stage socket, run the stage inline.
  for (int s = 0; s < kStages; ++s) {
    loop.add(channels[static_cast<std::size_t>(s)].fd(), [&, s] {
      while (auto received = channels[static_cast<std::size_t>(s)].poll(0)) {
        run_stage(s, *received);
      }
    });
  }

  // Client result handlers.
  for (int c = 0; c < flags.clients; ++c) {
    loop.add(client_channel(c).fd(), [&, c] {
      ClientState& st = clients[static_cast<std::size_t>(c)];
      while (auto received = client_channel(c).poll(0)) {
        ++st.results;
        const double e2e_ms =
            static_cast<double>(now_ns() - received->packet.header.capture_ts) / 1e6;
        st.total_e2e_ms += e2e_ms;
        results_total.inc();
        e2e_hist.observe(e2e_ms);
        const auto detections = vision::parse_detections(received->packet.payload);
        const std::size_t n_det = detections ? detections->size() : 0;
        if (n_det > 0) ++st.recognized;
        if (flags.clients == 1) {
          std::printf("frame %llu: %zu detections, E2E %.0f ms%s\n",
                      static_cast<unsigned long long>(
                          received->packet.header.frame.value()),
                      n_det, e2e_ms,
                      received->fec_repairs > 0 ? " (FEC-repaired)" : "");
        }
      }
    });
  }

  // Client frame sources: periodic timers on the same loop, staggered
  // so multi-client runs do not send in lockstep.
  for (int c = 0; c < flags.clients; ++c) {
    const auto period = std::chrono::milliseconds(flags.frame_period_ms);
    const auto stagger =
        std::chrono::milliseconds(flags.frame_period_ms * c / std::max(1, flags.clients));
    loop.schedule_after(stagger, [&, c] {
      ClientState& st = clients[static_cast<std::size_t>(c)];
      if (st.frames_sent >= flags.frames) return;
      net::FrameChannel& ch = client_channel(c);
      // Feed the quality controller the previous frame's transport
      // outcome (fragments first-sent vs retransmitted on this hop).
      if (flags.adaptive && st.frames_sent > 0) {
        st.quality.on_frame(ch.fragments_sent() - st.last_frags,
                            ch.rtx_fragments_sent() - st.last_rtx, /*delivered=*/true);
      }
      st.last_frags = ch.fragments_sent();
      st.last_rtx = ch.rtx_fragments_sent();

      wire::FramePacket pkt;
      pkt.header.client = ClientId{static_cast<std::uint32_t>(c) + 1};
      pkt.header.frame = FrameId{static_cast<std::uint64_t>(st.frames_sent)};
      pkt.header.stage = Stage::kPrimary;
      pkt.header.capture_ts = now_ns();
      vision::Image img = scene.render(static_cast<double>(st.frames_sent) / 4.0);
      if (flags.adaptive && st.quality.scale() < 1.0) {
        // Fidelity adaptation: smaller frames fragment less, so each
        // frame survives a lossy hop superlinearly more often.
        const double s = st.quality.scale();
        img = vision::resize(img, std::max(64, static_cast<int>(img.width() * s)),
                             std::max(36, static_cast<int>(img.height() * s)));
      }
      pkt.payload = encode_image(img);
      pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
      ch.send(pkt, addrs[0]);
      ++st.frames_sent;
      frames_sent_total.inc();
    }, period);
  }

  // Transport housekeeping: NACK backoff deadlines and reassembly GC
  // tick even when no datagrams arrive.
  loop.schedule_after(std::chrono::milliseconds(5), [&] {
    for (auto& ch : channels) ch.tick();
  }, std::chrono::milliseconds(5));

  if (flags.profile) {
    if (auto st = telemetry::Profiler::instance().start(flags.profile_hz); !st.is_ok()) {
      std::fprintf(stderr, "profiler failed to start: %s\n", st.message().c_str());
      return 1;
    }
  }

  const int want_results = flags.frames * flags.clients;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(flags.frames * flags.frame_period_ms + 15000);
  loop.run([&] {
    int results = 0;
    for (const auto& st : clients) results += st.results;
    return results < want_results && Clock::now() < deadline;
  });

  if (flags.profile) {
    const telemetry::ProfileReport prof_report = telemetry::Profiler::instance().stop();
    const telemetry::AllocReport allocs = telemetry::Profiler::instance().alloc_report();
    if (expt::write_profile_artifacts(prof_report, allocs, flags.profile_out,
                                      "live_udp_pipeline")) {
      std::printf("profiler: %llu samples (%.0f%% attributed); wrote %s.folded, "
                  "%s.speedscope.json\n",
                  static_cast<unsigned long long>(prof_report.samples),
                  100.0 * prof_report.attributed_fraction(), flags.profile_out.c_str(),
                  flags.profile_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write profile artifacts at %s.*\n",
                   flags.profile_out.c_str());
    }
  }

  proc_sampler.stop();
  metrics_server.stop();

  int results = 0, recognized = 0, sent = 0;
  double total_e2e = 0.0;
  std::uint64_t rtx = 0, repairs = 0, unrecoverable = 0, harness_dropped = 0;
  int min_level = 99;
  for (int c = 0; c < flags.clients; ++c) {
    const ClientState& st = clients[static_cast<std::size_t>(c)];
    results += st.results;
    recognized += st.recognized;
    sent += st.frames_sent;
    total_e2e += st.total_e2e_ms;
    min_level = std::min(min_level, st.quality.level());
  }
  for (const auto& ch : channels) {
    rtx += ch.rtx_fragments_sent();
    repairs += ch.fec_repairs();
    unrecoverable += ch.frames_unrecoverable();
    harness_dropped += ch.harness_dropped();
  }

  std::printf("\nserved %zu sockets on one epoll loop (%llu events, %llu timer fires)\n",
              channels.size(), static_cast<unsigned long long>(loop.events_dispatched()),
              static_cast<unsigned long long>(loop.timers_fired()));
  std::printf("delivered %d/%d frames, %d with detections, mean E2E %.0f ms\n", results,
              sent, recognized, results ? total_e2e / results : 0.0);
  if (flags.loss > 0.0 || flags.rtx || flags.fec_group > 0) {
    double max_loss_ratio = 0.0;
    for (const auto& ch : channels) {
      max_loss_ratio = std::max(max_loss_ratio, ch.receiver_loss_ratio());
    }
    std::printf("transport: %llu datagrams harness-dropped, %llu fragments retransmitted, "
                "%llu FEC repairs, %llu frames unrecoverable, "
                "max receiver-observed loss %.1f%%\n",
                static_cast<unsigned long long>(harness_dropped),
                static_cast<unsigned long long>(rtx),
                static_cast<unsigned long long>(repairs),
                static_cast<unsigned long long>(unrecoverable), max_loss_ratio * 100.0);
  }
  if (flags.adaptive) {
    std::printf("adaptive: lowest quality level reached %d\n", min_level);
  }
  return results > 0 ? 0 : 1;
}
