// Quickstart: the complete AR engine in one process.
//
// Trains the recognizer on the synthetic workplace objects (monitor,
// keyboard, table), replays the 30 FPS camera clip, and prints what the
// pipeline detects and tracks, with per-stage timings — the same five
// stages scAtteR deploys as distributed microservices.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "vision/engine.h"
#include "video/scene.h"

using namespace mar;

int main() {
  std::printf("scAtteR quickstart: single-process AR pipeline\n\n");

  // 1) Train the engine on reference images of the scene objects.
  video::WorkplaceScene scene;
  vision::ArEngine engine;
  engine.add_reference("monitor",
                       scene.render_reference(video::SceneObject::kMonitor, 220, 140));
  engine.add_reference("keyboard",
                       scene.render_reference(video::SceneObject::kKeyboard, 180, 70));
  engine.add_reference("table", scene.render_reference(video::SceneObject::kTable, 290, 75));
  if (!engine.finalize_training()) {
    std::fprintf(stderr, "training failed: not enough features\n");
    return 1;
  }
  std::printf("trained on %zu reference objects\n\n", engine.num_references());

  // 2) Replay the camera and run the pipeline per frame.
  video::VideoSource source(scene, /*fps=*/30.0);
  vision::StageTimings total;
  int frames = 0, frames_with_detections = 0;

  for (std::uint64_t i = 0; i < 30; i += 3) {  // every 3rd frame of one second
    const vision::Image frame = source.frame(i);
    const vision::FrameResult result = engine.process(frame);
    ++frames;
    if (!result.detections.empty()) ++frames_with_detections;

    std::printf("frame %3llu: %3zu features, %zu detections, %zu live tracks (%.0f ms)\n",
                static_cast<unsigned long long>(i), result.feature_count,
                result.detections.size(), result.tracks.size(), result.timings.total_ms());
    for (const vision::Detection& d : result.detections) {
      const vision::Point2f c = d.center();
      std::printf("    %-8s at (%4.0f,%4.0f)  inliers=%-3d score=%.2f\n", d.label.c_str(), c.x,
                  c.y, d.inliers, d.score);
    }
    total.preprocess_ms += result.timings.preprocess_ms;
    total.extract_ms += result.timings.extract_ms;
    total.encode_ms += result.timings.encode_ms;
    total.lookup_ms += result.timings.lookup_ms;
    total.match_ms += result.timings.match_ms;
  }

  std::printf("\nmean per-stage latency over %d frames:\n", frames);
  std::printf("  primary (pre-process):  %6.1f ms\n", total.preprocess_ms / frames);
  std::printf("  sift (detect/extract):  %6.1f ms\n", total.extract_ms / frames);
  std::printf("  encoding (PCA+Fisher):  %6.1f ms\n", total.encode_ms / frames);
  std::printf("  lsh (NN shortlist):     %6.1f ms\n", total.lookup_ms / frames);
  std::printf("  matching (pose+track):  %6.1f ms\n", total.match_ms / frames);
  std::printf("frames with detections: %d/%d\n", frames_with_detections, frames);

  // 3) Dump one frame for inspection.
  if (vision::write_pgm(source.frame(0), "quickstart_frame0.pgm")) {
    std::printf("wrote quickstart_frame0.pgm\n");
  }
  return 0;
}
