// Quickstart: the complete AR engine in one process.
//
// Trains the recognizer on the synthetic workplace objects (monitor,
// keyboard, table), replays the 30 FPS camera clip, and prints what the
// pipeline detects and tracks, with per-stage timings — the same five
// stages scAtteR deploys as distributed microservices.
//
// Build & run:  ./build/examples/quickstart
//
// With --trace_out=trace.json the run also records a distributed trace:
// the vision engine's per-stage timings become spans on an "engine"
// track, and a short simulated deployment (sidecar ingress + stateful
// sift, so both the scAtteR++ queue and the scAtteR state-fetch loop
// appear) adds per-replica service, queue, RPC, link, and end-to-end
// spans. Open the file at https://ui.perfetto.dev.
//
//   --trace_out=PATH   write a Chrome trace-event JSON (Perfetto)
//   --out_dir=DIR      directory for output artifacts (default: out)
//   --metrics_port=N   serve live /metrics, /healthz, /statusz on port N
//                      (0 = pick an ephemeral port; printed at startup)
//                      (also mounts GET /debug/pprof/{profile,heap,cmdline})
//   --serve_ms=N       keep the metrics server up N ms after the run so
//                      a scraper can read the final state; a background
//                      demo-load thread keeps the vision pipeline busy so
//                      /debug/pprof/profile?seconds=1 captures real stages
//   --profile          sample the engine run with the in-process CPU
//                      profiler and write collapsed-stack + speedscope
//                      artifacts (plus .heap.folded alloc attribution)
//   --profile_hz=N     sampling rate for --profile (default 99)
//   --profile_out=P    artifact prefix (default <out_dir>/quickstart_profile)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "expt/attribution.h"
#include "expt/experiment.h"
#include "expt/forensics.h"
#include "expt/report.h"
#include "net/http.h"
#include "telemetry/procstat.h"
#include "telemetry/profiler.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"
#include "video/scene.h"
#include "vision/engine.h"

using namespace mar;

namespace {

// Replay the simulator's span vocabulary for the single-process engine:
// each vision stage becomes a complete span on the engine track, laid
// out sequentially the way the frame actually flowed.
void trace_engine_frame(std::uint64_t frame, const vision::StageTimings& t,
                        SimTime* cursor) {
  auto& tracer = telemetry::Tracer::instance();
  if (!tracer.enabled()) return;
  const struct {
    Stage stage;
    double ms;
  } stages[] = {
      {Stage::kPrimary, t.preprocess_ms}, {Stage::kSift, t.extract_ms},
      {Stage::kEncoding, t.encode_ms},    {Stage::kLsh, t.lookup_ms},
      {Stage::kMatching, t.match_ms},
  };
  for (const auto& s : stages) {
    const auto dur = static_cast<SimDuration>(s.ms * static_cast<double>(kMillisecond));
    tracer.complete(telemetry::kEngineTrack, telemetry::spans::kService, *cursor, dur,
                    ClientId{0}, FrameId{frame}, s.stage);
    *cursor += dur;
  }
}

// A short simulated deployment so the exported trace shows the
// distributed side: sidecar queueing, RPC hand-offs, link transit, and
// matching's state-fetch round trips to sift. With retention on, the
// run flight-records every frame and promotes only the interesting
// ones; the TailSampler's exemplar-carrying observations land in the
// registry's mar_frame_e2e_ms histogram, so /metrics links latency
// buckets to retained trace ids.
expt::RetentionReport run_traced_sim(bool with_retention) {
  expt::ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  // Sidecar ingress *and* stateful sift: one run exercises both the
  // scAtteR++ queue and the scAtteR fetch loop.
  cfg.features = core::PipelineFeatures{/*stateless_sift=*/false, /*sidecar=*/true};
  cfg.num_clients = 2;
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(4.0);
  if (with_retention) {
    cfg.retention.emplace();
    cfg.trace_sample_every = 0;  // tail retention picks the frames
  }
  return expt::run_experiment(cfg).retention;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string out_dir = "out";
  int metrics_port = -1;  // -1 = metrics plane off
  long serve_ms = 0;
  bool profile = false;
  int profile_hz = 99;
  std::string profile_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (arg.compare(0, len, flag) != 0) return nullptr;
      if (arg.size() > len && arg[len] == '=') return arg.c_str() + len + 1;
      if (arg.size() == len && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value_of("--trace_out")) {
      trace_out = v;
    } else if (const char* v = value_of("--out_dir")) {
      out_dir = v;
    } else if (const char* v = value_of("--metrics_port")) {
      metrics_port = std::atoi(v);
    } else if (const char* v = value_of("--serve_ms")) {
      serve_ms = std::atol(v);
    } else if (arg == "--profile") {
      profile = true;
    } else if (const char* v = value_of("--profile_hz")) {
      profile_hz = std::atoi(v);
    } else if (const char* v = value_of("--profile_out")) {
      profile_out = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s (see examples/quickstart.cpp)\n", arg.c_str());
      return 2;
    }
  }
  if (!trace_out.empty()) telemetry::Tracer::instance().set_enabled(true);

  std::printf("scAtteR quickstart: single-process AR pipeline\n\n");

  // Live metrics plane: lock-free registry + embedded HTTP server.
  auto& registry = telemetry::MetricRegistry::instance();
  net::HttpServer metrics_server;
  telemetry::ProcStatSampler proc_sampler(registry);
  // Latency-attribution state: filled after the traced sim runs; the
  // /debug/blame and /statusz handlers run on the serve thread, so the
  // strings live behind a mutex.
  struct BlameState {
    std::mutex mu;
    std::string json = "{\"frames_total\": 0, \"bands\": []}\n";
    std::string table = "blame report: no traced frames yet\n";
  };
  auto blame = std::make_shared<BlameState>();
  if (metrics_port >= 0) {
    registry.set_enabled(true);
    net::serve_metrics(metrics_server, registry, [blame] {
      std::lock_guard<std::mutex> lock(blame->mu);
      return blame->table;
    });
    net::serve_pprof(metrics_server);
    metrics_server.handle("/debug/blame", "application/json", [blame] {
      std::lock_guard<std::mutex> lock(blame->mu);
      return blame->json;
    });
    telemetry::Profiler::instance().publish_to_registry();
    if (auto st = metrics_server.start(static_cast<std::uint16_t>(metrics_port));
        !st.is_ok()) {
      std::fprintf(stderr, "metrics server failed: %s\n", st.message().c_str());
      return 1;
    }
    proc_sampler.start(std::chrono::milliseconds(250));
    std::printf("metrics plane listening on port %u (GET /metrics /healthz /statusz)\n\n",
                metrics_server.port());
    std::fflush(stdout);  // scripts poll a redirected log for this line
  }
  const char* stage_names[] = {"primary", "sift", "encoding", "lsh", "matching"};
  telemetry::FixedHistogram* stage_hist[5];
  for (int s = 0; s < 5; ++s) {
    stage_hist[s] = &registry.histogram(
        "mar_service_ms", "Per-frame service processing latency (ms).",
        telemetry::FixedHistogram::default_latency_ms_bounds(), {{"stage", stage_names[s]}});
  }
  telemetry::FixedHistogram& e2e_hist = registry.histogram(
      "mar_frame_e2e_ms", "Capture-to-result latency across all stages (ms).",
      telemetry::FixedHistogram::default_latency_ms_bounds());
  telemetry::Counter& frames_total =
      registry.counter("mar_frames_total", "Frames processed by the engine.");
  telemetry::Counter& detections_total =
      registry.counter("mar_detections_total", "Object detections produced.");

  // 1) Train the engine on reference images of the scene objects.
  video::WorkplaceScene scene;
  vision::ArEngine engine;
  engine.add_reference("monitor",
                       scene.render_reference(video::SceneObject::kMonitor, 220, 140));
  engine.add_reference("keyboard",
                       scene.render_reference(video::SceneObject::kKeyboard, 180, 70));
  engine.add_reference("table", scene.render_reference(video::SceneObject::kTable, 290, 75));
  if (!engine.finalize_training()) {
    std::fprintf(stderr, "training failed: not enough features\n");
    return 1;
  }
  std::printf("trained on %zu reference objects\n\n", engine.num_references());

  // Arm the sampling profiler over the engine run. start() also turns
  // on stage/alloc attribution, so the .heap.folded artifact shows the
  // per-stage allocation story (the pyramid dwarfs everything else).
  if (profile) {
    if (auto st = telemetry::Profiler::instance().start(profile_hz); !st.is_ok()) {
      std::fprintf(stderr, "profiler failed to start: %s\n", st.message().c_str());
      return 1;
    }
    std::printf("profiling at %d Hz\n\n", profile_hz);
  }

  // 2) Replay the camera and run the pipeline per frame.
  video::VideoSource source(scene, /*fps=*/30.0);
  vision::StageTimings total;
  int frames = 0, frames_with_detections = 0;
  SimTime engine_cursor = 0;
  telemetry::Tracer::instance().set_track_name(telemetry::kEngineTrack,
                                               "engine (single-process)");

  for (std::uint64_t i = 0; i < 30; i += 3) {  // every 3rd frame of one second
    const vision::Image frame = source.frame(i);
    const vision::FrameResult result = engine.process(frame);
    ++frames;
    if (!result.detections.empty()) ++frames_with_detections;
    trace_engine_frame(i, result.timings, &engine_cursor);

    frames_total.inc();
    detections_total.inc(result.detections.size());
    const double stage_ms[] = {result.timings.preprocess_ms, result.timings.extract_ms,
                               result.timings.encode_ms, result.timings.lookup_ms,
                               result.timings.match_ms};
    for (int s = 0; s < 5; ++s) stage_hist[s]->observe(stage_ms[s]);
    e2e_hist.observe(result.timings.total_ms());

    std::printf("frame %3llu: %3zu features, %zu detections, %zu live tracks (%.0f ms)\n",
                static_cast<unsigned long long>(i), result.feature_count,
                result.detections.size(), result.tracks.size(), result.timings.total_ms());
    for (const vision::Detection& d : result.detections) {
      const vision::Point2f c = d.center();
      std::printf("    %-8s at (%4.0f,%4.0f)  inliers=%-3d score=%.2f\n", d.label.c_str(), c.x,
                  c.y, d.inliers, d.score);
    }
    total.preprocess_ms += result.timings.preprocess_ms;
    total.extract_ms += result.timings.extract_ms;
    total.encode_ms += result.timings.encode_ms;
    total.lookup_ms += result.timings.lookup_ms;
    total.match_ms += result.timings.match_ms;
  }

  std::printf("\nmean per-stage latency over %d frames:\n", frames);
  std::printf("  primary (pre-process):  %6.1f ms\n", total.preprocess_ms / frames);
  std::printf("  sift (detect/extract):  %6.1f ms\n", total.extract_ms / frames);
  std::printf("  encoding (PCA+Fisher):  %6.1f ms\n", total.encode_ms / frames);
  std::printf("  lsh (NN shortlist):     %6.1f ms\n", total.lookup_ms / frames);
  std::printf("  matching (pose+track):  %6.1f ms\n", total.match_ms / frames);
  std::printf("frames with detections: %d/%d\n", frames_with_detections, frames);

  // Profiler report: collapsed stacks + speedscope + alloc attribution.
  if (profile) {
    const telemetry::ProfileReport prof_report = telemetry::Profiler::instance().stop();
    const telemetry::AllocReport allocs = telemetry::Profiler::instance().alloc_report();
    std::error_code prof_ec;
    std::filesystem::create_directories(out_dir, prof_ec);
    const std::string prefix =
        profile_out.empty() ? out_dir + "/quickstart_profile" : profile_out;
    if (!expt::write_profile_artifacts(prof_report, allocs, prefix, "quickstart")) {
      std::fprintf(stderr, "failed to write profile artifacts at %s.*\n", prefix.c_str());
      return 1;
    }
    std::printf("\nprofiler: %llu samples (%.0f%% attributed to stages, %llu dropped), "
                "%.1f MB attributed allocations\n",
                static_cast<unsigned long long>(prof_report.samples),
                100.0 * prof_report.attributed_fraction(),
                static_cast<unsigned long long>(prof_report.dropped),
                static_cast<double>(allocs.total_bytes()) / (1024.0 * 1024.0));
    std::printf("wrote %s.folded and %s.speedscope.json — open the latter at "
                "https://speedscope.app\n",
                prefix.c_str(), prefix.c_str());
  }

  // 3) Dump one frame for inspection (outputs stay out of the repo root).
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string pgm_path = out_dir + "/quickstart_frame0.pgm";
  if (vision::write_pgm(source.frame(0), pgm_path)) {
    std::printf("wrote %s\n", pgm_path.c_str());
  }

  // 4) Distributed trace export (with --trace_out), and/or a retention
  // run so the metrics plane serves histogram exemplars.
  if (!trace_out.empty() || metrics_server.running()) {
    std::printf("\nrunning a short simulated deployment for the trace...\n");
    if (metrics_server.running()) telemetry::Tracer::instance().set_enabled(true);
    const expt::RetentionReport retention = run_traced_sim(metrics_server.running());
    if (retention.enabled) {
      std::printf("tail retention kept %llu of %llu closed frames "
                  "(%llu drop-flushed); exemplars on /metrics\n",
                  static_cast<unsigned long long>(retention.retained_total() -
                                                  retention.drop_flushed),
                  static_cast<unsigned long long>(retention.frames_closed),
                  static_cast<unsigned long long>(retention.drop_flushed));
    }
    // Fold the retained traces into the blame report: per-band
    // component milliseconds as mar_blame_ms gauges, a table on
    // /statusz, and JSON at /debug/blame.
    const expt::BlameReport blame_report =
        expt::build_blame_report(expt::from_tracer(telemetry::Tracer::instance()));
    expt::publish_blame_gauges(blame_report);
    {
      std::lock_guard<std::mutex> lock(blame->mu);
      blame->json = expt::blame_report_json(blame_report);
      blame->table = expt::render_blame_table(blame_report);
    }
    std::printf("\n%s", expt::render_blame_table(blame_report).c_str());
  }
  if (!trace_out.empty()) {
    auto& tracer = telemetry::Tracer::instance();
    if (!tracer.write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
    const auto service = tracer.stage_spans(telemetry::spans::kService);
    const auto queue = tracer.stage_spans(telemetry::spans::kSidecarQueue);
    const auto fetch = tracer.stage_spans(telemetry::spans::kStateFetch);
    std::size_t service_spans = 0, queue_spans = 0;
    for (const auto& acc : service) service_spans += acc.count();
    for (const auto& acc : queue) queue_spans += acc.count();
    std::printf("wrote %s: %zu events (%zu service spans, %zu sidecar-queue spans, "
                "%zu state-fetch round trips) — open at https://ui.perfetto.dev\n",
                trace_out.c_str(), tracer.size(), service_spans, queue_spans,
                static_cast<std::size_t>(fetch[static_cast<int>(Stage::kMatching)].count()));
  }

  // 5) Hold the metrics plane so a scraper can read the final state.
  // A background demo-load thread keeps the vision pipeline busy so a
  // live /debug/pprof/profile?seconds=N capture sees real stage frames
  // (the endpoint arms timers for all threads alive at capture start).
  if (metrics_server.running() && serve_ms > 0) {
    std::atomic<bool> demo_stop{false};
    std::thread demo_load([&] {
      std::uint64_t i = 0;
      while (!demo_stop.load(std::memory_order_relaxed)) {
        (void)engine.process(source.frame(i % 30));
        ++i;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
    std::printf("\nserving metrics for %ld ms more on port %u...\n", serve_ms,
                metrics_server.port());
    std::fflush(stdout);  // scripts wait on this line before scraping
    std::this_thread::sleep_for(std::chrono::milliseconds(serve_ms));
    demo_stop.store(true, std::memory_order_relaxed);
    demo_load.join();
  }
  proc_sampler.stop();
  metrics_server.stop();
  return 0;
}
