// Parameterized experiment runner: configure a deployment from the
// command line, run it, and print (or export) the paper's metrics.
//
//   ./build/examples/experiment_cli --mode scatterpp --placement
//       1,2,2,1,2 --clients 6 --duration 60 --seed 7 --out result.json
//   (one line; wrapped here for width)
//
//   --mode       scatter | scatterpp            (default scatter)
//   --placement  e1 | e2 | cloud | hybrid | a,b,c,d,e replica counts
//   --clients    concurrent clients             (default 1)
//   --fps        client framerate               (default 30)
//   --duration   measurement seconds            (default 60)
//   --threshold  sidecar threshold ms           (default 100)
//   --fast-sift  use the accelerator cost model
//   --seed       RNG seed                       (default 1)
//   --out          write a .csv/.json/.prom report
//   --trace_out    write a Chrome trace-event JSON (Perfetto)
//   --metrics_out  write span-derived Prometheus text from the tracer
//   --trace_sample trace every Nth frame per client when tracing is
//                  on (default 1 = every frame, 0 = none; --trace-sample
//                  is accepted as an alias). Head sampling: the frames
//                  it picks go straight to the durable ring.
//   --events_out   write the raw trace-event log frame_forensics reads
//
// Profiling (the DES burns real CPU in the event loop; the profiler
// shows where — see docs/EXPERIMENTS.md "finding the hot loop"):
//   --profile        sample this process with the in-process CPU profiler
//   --profile_hz N   sampling rate (default 99)
//   --profile_out P  artifact prefix (default "experiment_profile"):
//                    P.folded, P.speedscope.json, P.heap.folded
//
// Tail-based retention (composes with --trace_sample; typical use sets
// --trace_sample 0 and lets the tail policy keep the interesting frames):
//   --retain                enable tail retention (flight-record every
//                           frame; promote on SLO breach, drop, fault
//                           window, p99 outlier, 1-in-N baseline)
//   --retain_baseline N     deterministic 1-in-N baseline (default 64)
//   --retain_outlier_factor F  promote when e2e >= F * rolling p99
//                              (default 1.0; 0 disables)
//
// Fault plane (strictly opt-in; see src/fault/fault_plan.h for the
// plan grammar — times are relative to the measurement window start):
//   --fault_plan    e.g. "crash@10s:stage=sift,replica=0"
//   --heartbeat_ms  failover probe interval        (default 250)
//   --suspicion_ms  missed-ack eviction timeout    (default 750)
//   --respawn_ms    eviction -> respawn delay      (default 1000)
// Any of the three timing knobs (or a fault plan with a crash/reboot)
// enables heartbeat failover.
//
// Control plane (src/ctrl; see ARCHITECTURE.md §11):
//   --placement_search  run the deterministic multi-objective placement
//                       search first and deploy its winning plan
//                       (overrides --placement)
//   --reopt             close the loop during the run: ScalePolicy +
//                       ReOptimizer (scale-up under sustained drops,
//                       drain-based scale-down, mar_ctrl_* counters);
//                       prints a control-action summary table and the
//                       recent-actions log
//   --drain_ms D        drain deadline before a force-retire (default
//                       10000; only meaningful with --reopt)
//   --predict           arm the predictive scale-up arm (burn-rate +
//                       ingress-trend forecast; implies --reopt)
//   --burn_fast_s S     fast burn window seconds        (default 5)
//   --burn_slow_s S     slow burn window seconds        (default 60)
//   --trend_s S         ingress-trend fit window seconds (default 10)
//   --burn_budget F     SLO error budget fraction       (default 0.01)
//
// Latency attribution (ARCHITECTURE.md §12; needs tracing on):
//   --blame             print the critical-path blame table after the run
//   --blame_out PATH    write the blame report JSON (/debug/blame shape)
//   --metrics_port N    after the run, serve /metrics, /statusz (with the
//                       blame table + control-plane recent actions) and
//                       /debug/blame on port N (0 = ephemeral)
//   --serve_ms N        keep that server up N ms (default 2000)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "ctrl/placement_search.h"
#include "ctrl/reoptimizer.h"
#include "ctrl/scale_policy.h"
#include "expt/attribution.h"
#include "expt/experiment.h"
#include "expt/forensics.h"
#include "expt/report.h"
#include "expt/table.h"
#include "net/http.h"
#include "telemetry/profiler.h"
#include "telemetry/trace.h"

using namespace mar;
using namespace mar::expt;

namespace {

SymbolicPlacement parse_placement(const std::string& spec) {
  if (spec == "e1") return SymbolicPlacement::single(Site::kE1);
  if (spec == "e2") return SymbolicPlacement::single(Site::kE2);
  if (spec == "cloud") return SymbolicPlacement::single(Site::kCloud);
  if (spec == "hybrid") {
    return SymbolicPlacement::per_stage(
        {Site::kE1, Site::kCloud, Site::kCloud, Site::kCloud, Site::kCloud});
  }
  // Replica-count vector "a,b,c,d,e".
  std::array<int, kNumStages> counts{1, 1, 1, 1, 1};
  std::size_t pos = 0;
  for (int i = 0; i < kNumStages && pos < spec.size(); ++i) {
    counts[static_cast<std::size_t>(i)] = std::max(1, std::atoi(spec.c_str() + pos));
    const std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return SymbolicPlacement::replicated(counts);
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  std::string out_path;
  std::string trace_path;
  std::string metrics_path;
  std::string events_path;
  std::string placement_spec = "e2";
  std::string fault_plan_text;
  orchestra::FailoverConfig failover;
  bool failover_requested = false;
  bool profile = false;
  int profile_hz = 99;
  std::string profile_out = "experiment_profile";
  bool placement_search = false;
  bool reopt = false;
  double drain_ms = 10000.0;
  bool predict = false;
  expt::BurnRateConfig burn_cfg;
  bool blame_print = false;
  std::string blame_path;
  int metrics_port = -1;  // -1 = no post-run server
  long serve_ms = 2000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (arg == "--mode") {
      cfg.mode = std::strcmp(next(), "scatterpp") == 0 ? core::PipelineMode::kScatterPP
                                                       : core::PipelineMode::kScatter;
    } else if (arg == "--placement") {
      placement_spec = next();
    } else if (arg == "--clients") {
      cfg.num_clients = std::atoi(next());
    } else if (arg == "--fps") {
      cfg.client_fps = std::atof(next());
    } else if (arg == "--duration") {
      cfg.duration = seconds(std::atof(next()));
    } else if (arg == "--threshold") {
      cfg.costs.sidecar_threshold = millis(std::atof(next()));
    } else if (arg == "--fast-sift") {
      const SimDuration threshold = cfg.costs.sidecar_threshold;
      cfg.costs = hw::CostModel::fast_detector();
      cfg.costs.sidecar_threshold = threshold;
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--trace_out") {
      trace_path = next();
    } else if (arg == "--metrics_out") {
      metrics_path = next();
    } else if (arg == "--trace-sample" || arg == "--trace_sample") {
      cfg.trace_sample_every = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--events_out") {
      events_path = next();
    } else if (arg == "--retain") {
      if (!cfg.retention) cfg.retention.emplace();
    } else if (arg == "--retain_baseline") {
      if (!cfg.retention) cfg.retention.emplace();
      cfg.retention->baseline_every = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--retain_outlier_factor") {
      if (!cfg.retention) cfg.retention.emplace();
      cfg.retention->outlier_factor = std::atof(next());
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--profile_hz") {
      profile_hz = std::atoi(next());
    } else if (arg == "--profile_out") {
      profile_out = next();
    } else if (arg == "--fault_plan") {
      fault_plan_text = next();
    } else if (arg == "--heartbeat_ms") {
      failover.heartbeat_interval = millis(std::atof(next()));
      failover_requested = true;
    } else if (arg == "--suspicion_ms") {
      failover.suspicion_timeout = millis(std::atof(next()));
      failover_requested = true;
    } else if (arg == "--respawn_ms") {
      failover.respawn_delay = millis(std::atof(next()));
      failover_requested = true;
    } else if (arg == "--placement_search") {
      placement_search = true;
    } else if (arg == "--reopt") {
      reopt = true;
    } else if (arg == "--drain_ms") {
      drain_ms = std::atof(next());
    } else if (arg == "--predict") {
      predict = true;
      reopt = true;
    } else if (arg == "--burn_fast_s") {
      burn_cfg.fast_window = seconds(std::atof(next()));
    } else if (arg == "--burn_slow_s") {
      burn_cfg.slow_window = seconds(std::atof(next()));
    } else if (arg == "--trend_s") {
      burn_cfg.trend_window = seconds(std::atof(next()));
    } else if (arg == "--burn_budget") {
      burn_cfg.budget = std::atof(next());
    } else if (arg == "--blame") {
      blame_print = true;
    } else if (arg == "--blame_out") {
      blame_path = next();
    } else if (arg == "--metrics_port") {
      metrics_port = std::atoi(next());
    } else if (arg == "--serve_ms") {
      serve_ms = std::atol(next());
    } else if (arg == "--help") {
      std::printf("see the header of examples/experiment_cli.cpp for usage\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  cfg.placement = parse_placement(placement_spec);
  if (placement_search) {
    ctrl::PlacementSearchConfig pc;
    pc.seed = cfg.seed;
    pc.mode = cfg.mode;
    pc.costs = cfg.costs;
    pc.target_fps = cfg.client_fps;
    pc.offered_clients = cfg.num_clients;
    ctrl::PlacementSearch search(pc);
    const ctrl::PlacementSearch::Result found = search.run();
    std::printf("placement search: best %s (score %.3f, predicted p99 %.1f ms, "
                "%d machines, %llu evals)\n",
                found.best.label().c_str(), found.best_score.score,
                found.best_score.e2e_p99_ms, found.best_score.machines,
                static_cast<unsigned long long>(found.evaluations));
    cfg.placement = found.best.to_placement();
  }
  if (!fault_plan_text.empty()) {
    auto plan = fault::FaultPlan::parse(fault_plan_text);
    if (!plan.is_ok()) {
      std::fprintf(stderr, "--fault_plan: %s\n", plan.status().message().c_str());
      return 2;
    }
    cfg.fault_plan = plan.value();
    // Crash/reboot experiments are pointless without a detector to
    // notice and repair them.
    for (const auto& f : plan.value().faults) {
      if (f.kind == fault::FaultKind::kInstanceCrash ||
          f.kind == fault::FaultKind::kMachineReboot) {
        failover_requested = true;
      }
    }
  }
  if (failover_requested) cfg.failover = failover;
  if (!trace_path.empty() || !metrics_path.empty() || !events_path.empty() ||
      cfg.retention) {
    telemetry::Tracer::instance().set_enabled(true);
  }

  if (profile) {
    if (auto st = telemetry::Profiler::instance().start(profile_hz); !st.is_ok()) {
      std::fprintf(stderr, "profiler failed to start: %s\n", st.message().c_str());
      return 1;
    }
  }

  std::printf("running %s on %s with %d client(s), %.0f s window...\n",
              to_string(cfg.mode), cfg.placement.to_label().c_str(), cfg.num_clients,
              to_seconds(cfg.duration));
  Experiment e(cfg);
  e.build();
  std::unique_ptr<ctrl::ScalePolicy> policy;
  std::unique_ptr<ctrl::ReOptimizer> reoptimizer;
  if (reopt) {
    ctrl::ScalePolicy::Config sc;
    sc.drain_deadline = millis(drain_ms);
    policy = std::make_unique<ctrl::ScalePolicy>(e.deployment(), sc);
    ctrl::ReOptimizerConfig rc;
    rc.predictive = predict;
    rc.burn = burn_cfg;
    reoptimizer = std::make_unique<ctrl::ReOptimizer>(*policy, e.slo_watchdog(), rc);
    reoptimizer->start();
  }
  e.run();
  const ExperimentResult r = e.result();

  if (profile) {
    const telemetry::ProfileReport prof_report = telemetry::Profiler::instance().stop();
    const telemetry::AllocReport allocs = telemetry::Profiler::instance().alloc_report();
    if (write_profile_artifacts(prof_report, allocs, profile_out, "experiment_cli")) {
      std::printf("profiler: %llu samples (%.0f%% attributed); wrote %s.folded, "
                  "%s.speedscope.json\n",
                  static_cast<unsigned long long>(prof_report.samples),
                  100.0 * prof_report.attributed_fraction(), profile_out.c_str(),
                  profile_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write profile artifacts at %s.*\n",
                   profile_out.c_str());
      return 1;
    }
  }

  Table qos({"FPS/client", "E2E ms", "p95 ms", "success %", "jitter ms"});
  qos.add_row({Table::num(r.fps_mean, 1), Table::num(r.e2e_ms_mean, 1),
               Table::num(r.e2e_ms_p95, 1), Table::num(r.success_rate * 100.0, 1),
               Table::num(r.jitter_ms, 2)});
  qos.print();

  Table per_service(
      {"service", "machine", "svc ms", "queue ms", "mem GB", "gpu %", "drop %"});
  for (const auto& s : r.services) {
    per_service.add_row({std::string(to_string(s.stage)) + "#" +
                             std::to_string(s.replica_index),
                         s.machine, Table::num(s.service_ms_mean, 1),
                         Table::num(s.queue_ms_mean, 1), Table::num(s.mem_gb_mean, 2),
                         Table::num(s.gpu_share * 100.0, 1),
                         Table::num(s.drop_ratio * 100.0, 1)});
  }
  per_service.print();

  if (r.fault.enabled) {
    Table fault_t({"injected", "suspected", "respawns", "route fails", "state lost",
                   "fetch t/o", "tx suppressed"});
    fault_t.add_row({std::to_string(r.fault.injected), std::to_string(r.fault.suspected),
                     std::to_string(r.fault.respawns), std::to_string(r.fault.routing_failures),
                     std::to_string(r.fault.state_lost), std::to_string(r.fault.fetch_timeouts),
                     std::to_string(r.fault.tx_suppressed)});
    fault_t.print();
  }

  if (reoptimizer) {
    Table ctrl_t({"scale-ups", "predictive", "scale-downs", "replans", "blocked",
                  "retired", "forced", "drain loss"});
    ctrl_t.add_row({std::to_string(reoptimizer->scale_up_actions()),
                    std::to_string(reoptimizer->predictive_scale_ups()),
                    std::to_string(reoptimizer->scale_down_actions()),
                    std::to_string(reoptimizer->replans()),
                    std::to_string(reoptimizer->blocked()),
                    std::to_string(policy->retired()),
                    std::to_string(policy->forced_retires()),
                    std::to_string(policy->drain_frames_lost())});
    ctrl_t.print();
    std::fputs(ctrl::render_recent_actions(*reoptimizer).c_str(), stdout);
  }

  if (r.retention.enabled) {
    Table ret({"closed", "slo-breach", "kept slo", "kept fault", "kept outlier",
               "kept base", "drop-flushed", "recycled"});
    ret.add_row({std::to_string(r.retention.frames_closed),
                 std::to_string(r.retention.slo_breach_frames),
                 std::to_string(r.retention.retained_slo),
                 std::to_string(r.retention.retained_fault),
                 std::to_string(r.retention.retained_outlier),
                 std::to_string(r.retention.retained_baseline),
                 std::to_string(r.retention.drop_flushed),
                 std::to_string(r.retention.recycled)});
    ret.print();
  }

  if (!out_path.empty()) {
    if (write_report(r, out_path)) {
      std::printf("wrote %s\n", out_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
  }
  auto& tracer = telemetry::Tracer::instance();
  if (!trace_path.empty()) {
    if (tracer.write_chrome_trace(trace_path)) {
      std::printf("wrote %s (%zu events, %llu dropped) — open at https://ui.perfetto.dev\n",
                  trace_path.c_str(), tracer.size(),
                  static_cast<unsigned long long>(tracer.dropped()));
    } else {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      return 1;
    }
  }
  if (!events_path.empty()) {
    if (tracer.write_event_log(events_path)) {
      std::printf("wrote %s — inspect with frame_forensics\n", events_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", events_path.c_str());
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    const std::string text = tracer.prometheus_text();
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr || std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
      std::fprintf(stderr, "failed to write %s\n", metrics_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::fclose(f);
    std::printf("wrote %s\n", metrics_path.c_str());
  }

  // Latency attribution: fold the run's traces into a blame report for
  // the table / JSON file / post-run metrics server.
  const bool want_blame =
      blame_print || !blame_path.empty() || metrics_port >= 0;
  expt::BlameReport blame_report;
  if (want_blame && tracer.enabled()) {
    blame_report = expt::build_blame_report(expt::from_tracer(tracer));
    expt::publish_blame_gauges(blame_report);
  }
  if (blame_print) std::fputs(expt::render_blame_table(blame_report).c_str(), stdout);
  if (!blame_path.empty()) {
    const std::string json = expt::blame_report_json(blame_report);
    std::FILE* f = std::fopen(blame_path.c_str(), "w");
    if (f == nullptr || std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
      std::fprintf(stderr, "failed to write %s\n", blame_path.c_str());
      if (f != nullptr) std::fclose(f);
      return 1;
    }
    std::fclose(f);
    std::printf("wrote %s\n", blame_path.c_str());
  }

  // Post-run metrics plane: final registry state, the blame table and
  // control-plane recent actions on /statusz, JSON at /debug/blame.
  if (metrics_port >= 0) {
    auto& registry = telemetry::MetricRegistry::instance();
    registry.set_enabled(true);
    if (want_blame) expt::publish_blame_gauges(blame_report);
    net::HttpServer server;
    const std::string statusz_extra =
        expt::render_blame_table(blame_report) +
        (reoptimizer ? ctrl::render_recent_actions(*reoptimizer) : std::string());
    net::serve_metrics(server, registry, [statusz_extra] { return statusz_extra; });
    const std::string blame_json = expt::blame_report_json(blame_report);
    server.handle("/debug/blame", "application/json", [blame_json] { return blame_json; });
    if (auto st = server.start(static_cast<std::uint16_t>(metrics_port)); !st.is_ok()) {
      std::fprintf(stderr, "metrics server failed: %s\n", st.message().c_str());
      return 1;
    }
    std::printf("serving metrics for %ld ms on port %u (GET /metrics /statusz "
                "/debug/blame)\n",
                serve_ms, server.port());
    std::fflush(stdout);  // scripts wait on this line before scraping
    std::this_thread::sleep_for(std::chrono::milliseconds(serve_ms));
    server.stop();
  }
  return 0;
}
