// Distributed deployment study in the simulator.
//
// Deploys the five-service pipeline on the simulated E1/E2/cloud
// testbed under the Oakestra-like orchestrator and compares scAtteR
// (stateful sift, drop-when-busy) against scAtteR++ (stateless sift +
// sidecar queues) at increasing client load — a minimal version of the
// paper's §4/§5 experiments using the public experiment API.
//
// Build & run:  ./build/examples/distributed_edge_sim
#include <cstdio>

#include "expt/experiment.h"
#include "expt/table.h"

using namespace mar;
using namespace mar::expt;

int main() {
  std::printf("Distributed AR on the simulated edge testbed\n");
  std::printf("placement: C2 (all services on edge server E2), 1-4 clients\n");

  Table t({"clients", "scAtteR FPS", "scAtteR E2E ms", "scAtteR++ FPS", "scAtteR++ E2E ms"});
  for (int n = 1; n <= 4; ++n) {
    ExperimentConfig cfg;
    cfg.placement = SymbolicPlacement::single(Site::kE2);
    cfg.num_clients = n;
    cfg.duration = seconds(30.0);
    cfg.seed = 500 + static_cast<std::uint64_t>(n);

    cfg.mode = core::PipelineMode::kScatter;
    const ExperimentResult scatter = run_experiment(cfg);
    cfg.mode = core::PipelineMode::kScatterPP;
    const ExperimentResult pp = run_experiment(cfg);

    t.add_row({std::to_string(n), Table::num(scatter.fps_mean, 1),
               Table::num(scatter.e2e_ms_mean, 1), Table::num(pp.fps_mean, 1),
               Table::num(pp.e2e_ms_mean, 1)});
  }
  t.print();

  std::printf(
      "\nThe stateful sift<->matching loop collapses scAtteR under load;\n"
      "scAtteR++'s in-band state and sidecar queues keep the framerate up.\n"
      "Run the bench/fig* binaries for the full paper reproduction.\n");
  return 0;
}
