// Mobile access-network study (paper §A.1.1 as a library example).
//
// Replays the same scAtteR++ deployment behind emulated LTE, 5G, and
// WiFi-6 access links (RTT/loss/mobility oscillation taken from the
// measurement studies the paper cites) and prints the client-side QoS
// plus the per-stage telemetry the sidecars attach to returned frames.
//
// Build & run:  ./build/examples/mobile_connectivity
#include <cstdio>

#include "expt/experiment.h"
#include "expt/table.h"

using namespace mar;
using namespace mar::expt;

int main() {
  std::printf("scAtteR++ behind emulated mobile access networks (2 clients)\n\n");

  const struct {
    const char* name;
    sim::LinkModel link;
  } networks[] = {
      {"Ethernet", TestbedConfig::default_client_e1()},
      {"WiFi-6", TestbedConfig::access_wifi6()},
      {"5G", TestbedConfig::access_5g()},
      {"LTE", TestbedConfig::access_lte()},
  };

  Table t({"access", "FPS/client", "E2E ms", "success %", "jitter ms"});
  ExperimentConfig last_cfg;
  for (const auto& net : networks) {
    ExperimentConfig cfg;
    cfg.mode = core::PipelineMode::kScatterPP;
    cfg.placement = SymbolicPlacement::single(Site::kE2);
    cfg.num_clients = 2;
    cfg.duration = seconds(30.0);
    cfg.testbed.client_e1 = net.link;
    cfg.seed = 321;
    const ExperimentResult r = run_experiment(cfg);
    t.add_row({net.name, Table::num(r.fps_mean, 1), Table::num(r.e2e_ms_mean, 1),
               Table::num(r.success_rate * 100.0, 1), Table::num(r.jitter_ms, 2)});
    last_cfg = cfg;
  }
  t.print();

  // Show the in-band sidecar telemetry for the LTE run: where frames
  // spend their time, as seen by the client.
  std::printf("\nper-stage time of delivered frames (LTE, from in-band hop records):\n");
  Experiment e(last_cfg);
  e.run();
  Table hops({"stage", "queue ms", "process ms"});
  const auto& stats = e.clients().front()->stats();
  for (int s = 0; s < kNumStages; ++s) {
    hops.add_row({to_string(static_cast<Stage>(s)),
                  Table::num(stats.hop_queue_ms[static_cast<std::size_t>(s)].mean(), 2),
                  Table::num(stats.hop_process_ms[static_cast<std::size_t>(s)].mean(), 2)});
  }
  hops.print();
  return 0;
}
