// Orchestrated failure recovery, then a live drain.
//
// Act 1: deploys scAtteR++ and kills the single-instance lsh service
// mid-run; the orchestrator's watchdog detects the dead replica and
// re-deploys it (paper §3.2: Oakestra "automatically re-deploys
// services upon failures"). Delivered framerate collapses while the
// stage is gone and recovers after the restart.
//
// Act 2: at t=20s the control plane drains one of the two sift
// replicas live — routing stops immediately, in-flight frames finish,
// and the replica retires without losing a frame (the scale-down half
// of src/ctrl's drain-before-decommission path).
//
// Build & run:  ./build/examples/orchestrated_failover
#include <cstdio>
#include <string>
#include <vector>

#include "ctrl/scale_policy.h"
#include "expt/experiment.h"

using namespace mar;
using namespace mar::expt;

int main() {
  std::printf("Failure injection: killing the only lsh instance at t=10s,\n"
              "then draining a surplus sift replica at t=20s\n\n");

  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = SymbolicPlacement::replicated({1, 2, 2, 1, 2});
  cfg.num_clients = 8;
  cfg.warmup = 0;
  cfg.duration = seconds(30.0);
  cfg.seed = 77;

  Experiment e(cfg);
  e.build();

  // Install the watchdog and schedule the failure before time starts.
  auto& orch = e.testbed().orchestrator();
  orch.enable_auto_restart(/*detection_interval=*/seconds(1.0), /*redeploy_delay=*/seconds(2.0));
  const InstanceId victim = orch.instances_of(Stage::kLsh).front();
  e.testbed().loop().schedule_at(seconds(10.0), [&orch, victim] {
    std::printf("t=10s  lsh instance %u crashes\n", victim.value());
    orch.kill_instance(victim);
  });

  // The live drain: mark the second sift replica draining at t=20s;
  // the policy's monitor retires it once its queue and in-flight work
  // settle.
  ctrl::ScalePolicy policy(e.deployment(), ctrl::ScalePolicy::Config{});
  const InstanceId surplus = orch.instances_of(Stage::kSift).back();
  e.testbed().loop().schedule_at(seconds(20.0), [&policy, surplus] {
    std::printf("t=20s  draining sift instance %u (routing stops now)\n",
                surplus.value());
    policy.drain(surplus);
  });

  e.run();

  // Per-second successful-frame rate across all clients.
  std::printf("\nper-second delivered FPS (all clients):\n");
  std::vector<double> per_sec(30, 0.0);
  for (const auto& c : e.clients()) {
    const auto& ts = c->stats().success_per_sec;
    for (std::size_t s = 0; s < per_sec.size(); ++s) {
      per_sec[s] += static_cast<double>(ts.count_at(s));
    }
  }
  for (std::size_t s = 0; s < per_sec.size(); ++s) {
    std::printf("t=%2zus  %5.1f fps  %s\n", s, per_sec[s],
                std::string(static_cast<std::size_t>(per_sec[s] / 2.0), '#').c_str());
  }
  std::printf("\nredeploys performed by the watchdog: %llu\n",
              static_cast<unsigned long long>(orch.redeploy_count()));
  std::printf("drain: retired %llu replica(s), %llu forced, %llu frame(s) lost\n",
              static_cast<unsigned long long>(policy.retired()),
              static_cast<unsigned long long>(policy.forced_retires()),
              static_cast<unsigned long long>(policy.drain_frames_lost()));
  return 0;
}
