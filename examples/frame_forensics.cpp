// Frame forensics CLI: reconstruct hop-by-hop timelines of traced
// frames from a raw trace-event log.
//
//   ./build/examples/frame_forensics events.log --worst 3
//   ./build/examples/frame_forensics events.log --trace 421
//   ./build/examples/frame_forensics events.log --dropped
//   ./build/examples/frame_forensics events.log --list
//
// The log is what Tracer::write_event_log() produces — e.g.
// `experiment_cli ... --retain --events_out events.log`, or the
// events file bench/tail_forensics writes. Each reconstruction shows
// the frame's capture→verdict timeline (link transit, sidecar queue
// wait, RPC hand-off, service compute, state-fetch loop, drop verdict)
// and a per-hop budget table; frames kept by tail retention are
// annotated with their retention reason.
//
//   --trace ID   reconstruct one frame by trace id
//   --blame ID   critical path of one frame: each envelope slice blamed
//                on a component, with per-component self-times
//   --worst N    the N frames with the widest capture→verdict span
//   --dropped    every frame whose timeline ends in a drop/loss
//   --list       one summary line per traced frame
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "expt/forensics.h"
#include "telemetry/critical_path.h"

using namespace mar;
using namespace mar::expt;

namespace {

int render_ids(const TraceLog& log, const std::vector<std::uint32_t>& ids,
               const char* what) {
  if (ids.empty()) {
    std::printf("no %s frames in the log\n", what);
    return 0;
  }
  for (std::uint32_t id : ids) {
    const auto tl = reconstruct_frame(log, id);
    if (!tl) continue;
    std::fputs(render_timeline(*tl).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: frame_forensics <events.log> "
                 "[--trace ID | --blame ID | --worst N | --dropped | --list]\n");
    return 2;
  }
  const auto log = load_trace_log(argv[1]);
  if (!log) {
    std::fprintf(stderr, "failed to read %s (not a mar-trace-events log?)\n", argv[1]);
    return 1;
  }

  std::string mode = "--worst";
  std::uint32_t trace_id = 0;
  std::size_t worst_n = 3;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : "0"; };
    if (arg == "--trace" || arg == "--blame") {
      mode = arg;
      trace_id = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--worst") {
      mode = arg;
      worst_n = static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--dropped" || arg == "--list") {
      mode = arg;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  if (mode == "--trace") {
    const auto tl = reconstruct_frame(*log, trace_id);
    if (!tl) {
      std::fprintf(stderr, "trace %u not found in the log\n", trace_id);
      return 1;
    }
    std::fputs(render_timeline(*tl).c_str(), stdout);
    return 0;
  }
  if (mode == "--blame") {
    std::vector<telemetry::TraceEvent> events;
    for (const auto& e : log->events) {
      if (e.trace_id == trace_id) events.push_back(e);
    }
    if (events.empty()) {
      std::fprintf(stderr, "trace %u not found in the log\n", trace_id);
      return 1;
    }
    std::fputs(
        telemetry::render_critical_path(telemetry::extract_critical_path(events)).c_str(),
        stdout);
    return 0;
  }
  if (mode == "--worst") return render_ids(*log, worst_trace_ids(*log, worst_n), "traced");
  if (mode == "--dropped") return render_ids(*log, dropped_trace_ids(*log), "dropped");

  // --list: one line per frame.
  const auto ids = all_trace_ids(*log);
  std::printf("%zu traced frames\n", ids.size());
  for (std::uint32_t id : ids) {
    const auto tl = reconstruct_frame(*log, id);
    if (!tl) continue;
    std::printf("trace %-8u client %-3u frame %-6llu span %8.3f ms  verdict %-13s %s\n",
                tl->trace_id, tl->client, static_cast<unsigned long long>(tl->frame),
                tl->span_ms(), tl->verdict.c_str(),
                tl->retain_reason != telemetry::RetainReason::kNone
                    ? telemetry::to_string(tl->retain_reason)
                    : "");
  }
  return 0;
}
