#include <gtest/gtest.h>

#include "common/rng.h"
#include "wire/message.h"

namespace mar::wire {
namespace {

FramePacket sample_packet() {
  FramePacket pkt;
  pkt.header.client = ClientId{3};
  pkt.header.frame = FrameId{991};
  pkt.header.stage = Stage::kEncoding;
  pkt.header.kind = MessageKind::kFrameData;
  pkt.header.capture_ts = 123'456'789;
  pkt.header.client_endpoint = EndpointId{17};
  pkt.header.reply_to = EndpointId{21};
  pkt.header.sift_instance = InstanceId{2};
  pkt.header.payload_bytes = 180 * 1024;
  pkt.header.carries_state = true;
  pkt.header.match_ok = true;
  pkt.header.trace.trace_id = 0xBEEF;
  pkt.hops.push_back(HopRecord{Stage::kPrimary, millis(1.0), millis(3.0)});
  pkt.hops.push_back(HopRecord{Stage::kSift, millis(2.5), millis(11.0)});
  pkt.payload = {9, 8, 7, 6};
  return pkt;
}

TEST(Wire, SerializeParseRoundTrip) {
  const FramePacket pkt = sample_packet();
  const auto bytes = serialize(pkt);
  const auto parsed = parse(bytes);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->header.client, pkt.header.client);
  EXPECT_EQ(parsed->header.frame, pkt.header.frame);
  EXPECT_EQ(parsed->header.stage, pkt.header.stage);
  EXPECT_EQ(parsed->header.kind, pkt.header.kind);
  EXPECT_EQ(parsed->header.capture_ts, pkt.header.capture_ts);
  EXPECT_EQ(parsed->header.client_endpoint, pkt.header.client_endpoint);
  EXPECT_EQ(parsed->header.reply_to, pkt.header.reply_to);
  EXPECT_EQ(parsed->header.sift_instance, pkt.header.sift_instance);
  EXPECT_EQ(parsed->header.payload_bytes, pkt.header.payload_bytes);
  EXPECT_EQ(parsed->header.carries_state, pkt.header.carries_state);
  EXPECT_EQ(parsed->header.match_ok, pkt.header.match_ok);
  EXPECT_EQ(parsed->header.trace.trace_id, pkt.header.trace.trace_id);
  EXPECT_TRUE(parsed->header.trace.active());
  ASSERT_EQ(parsed->hops.size(), 2u);
  EXPECT_EQ(parsed->hops[1].stage, Stage::kSift);
  EXPECT_EQ(parsed->hops[1].queue_time, millis(2.5));
  EXPECT_EQ(parsed->payload, pkt.payload);
}

TEST(Wire, EmptyPacketRoundTrip) {
  FramePacket pkt;
  const auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
  EXPECT_TRUE(parsed->hops.empty());
  EXPECT_EQ(parsed->header.trace.trace_id, 0u);
  EXPECT_FALSE(parsed->header.trace.active());
}

TEST(Wire, RejectsBadMagic) {
  auto bytes = serialize(sample_packet());
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(parse(bytes).has_value());
}

TEST(Wire, RejectsBadVersion) {
  auto bytes = serialize(sample_packet());
  bytes[1] = 99;
  EXPECT_FALSE(parse(bytes).has_value());
}

TEST(Wire, RejectsTruncation) {
  const auto bytes = serialize(sample_packet());
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(parse(std::span(bytes.data(), cut)).has_value()) << "cut=" << cut;
  }
}

TEST(Wire, WireSizeUsesModeledPayloadWhenEmpty) {
  FramePacket pkt;
  pkt.header.payload_bytes = 1000;
  EXPECT_EQ(pkt.wire_size(), FramePacket::kHeaderWireBytes + 1000);
}

TEST(Wire, WireSizeUsesRealPayloadWhenPresent) {
  FramePacket pkt;
  pkt.header.payload_bytes = 1000;  // stale modeled size
  pkt.payload.assign(64, 0);
  EXPECT_EQ(pkt.wire_size(), FramePacket::kHeaderWireBytes + 64);
}

TEST(Wire, WireSizeCountsHops) {
  FramePacket pkt;
  pkt.hops.resize(3);
  EXPECT_EQ(pkt.wire_size(), FramePacket::kHeaderWireBytes + 3 * FramePacket::kHopWireBytes);
}

TEST(Wire, CanonicalSizesSane) {
  // The paper's numbers: sift output grows 180 KB -> 480 KB with state.
  EXPECT_EQ(sizes::kSiftOut, 180u * 1024u);
  EXPECT_EQ(sizes::kSiftOutStateful, 480u * 1024u);
  EXPECT_GT(sizes::kClientFrame, sizes::kResult);
  EXPECT_LT(sizes::kStateFetchReq, 1024u);
}

TEST(Wire, MessageKindNames) {
  EXPECT_STREQ(to_string(MessageKind::kFrameData), "frame_data");
  EXPECT_STREQ(to_string(MessageKind::kResult), "result");
}

// Property: random packets survive the round trip bit-exactly.
class WireFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzRoundTrip, RandomPacket) {
  Rng rng(GetParam());
  FramePacket pkt;
  pkt.header.client = ClientId{static_cast<std::uint32_t>(rng.next_u64())};
  pkt.header.frame = FrameId{rng.next_u64() >> 1};
  pkt.header.stage = static_cast<Stage>(rng.uniform_int(0, 5));
  pkt.header.kind = static_cast<MessageKind>(rng.uniform_int(0, 3));
  pkt.header.capture_ts = static_cast<SimTime>(rng.next_u64() >> 2);
  pkt.header.payload_bytes = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
  pkt.header.carries_state = rng.bernoulli(0.5);
  pkt.header.match_ok = rng.bernoulli(0.5);
  pkt.header.trace.trace_id = static_cast<std::uint32_t>(rng.next_u64());
  const int n_hops = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < n_hops; ++i) {
    pkt.hops.push_back(HopRecord{static_cast<Stage>(rng.uniform_int(0, 4)),
                                 rng.uniform_int(0, millis(100.0)),
                                 rng.uniform_int(0, millis(50.0))});
  }
  const auto n_payload = static_cast<std::size_t>(rng.uniform_int(0, 2048));
  pkt.payload.resize(n_payload);
  for (auto& b : pkt.payload) b = static_cast<std::uint8_t>(rng.next_u64());

  const auto parsed = parse(serialize(pkt));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.client, pkt.header.client);
  EXPECT_EQ(parsed->header.frame, pkt.header.frame);
  EXPECT_EQ(parsed->header.capture_ts, pkt.header.capture_ts);
  EXPECT_EQ(parsed->header.trace.trace_id, pkt.header.trace.trace_id);
  EXPECT_EQ(parsed->hops.size(), pkt.hops.size());
  EXPECT_EQ(parsed->payload, pkt.payload);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, WireFuzzRoundTrip, ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace mar::wire
