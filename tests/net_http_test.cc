#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/http.h"
#include "telemetry/profiler.h"
#include "telemetry/registry.h"

namespace mar::net {
namespace {

// Minimal blocking HTTP client: one request over a real socket, read
// to EOF (the server closes after each response).
std::string http_get_raw(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_get_raw(port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

struct HttpFixture : ::testing::Test {
  void SetUp() override {
    telemetry::MetricRegistry::instance().reset_values();
    telemetry::MetricRegistry::instance().set_enabled(true);
    serve_metrics(server, telemetry::MetricRegistry::instance(),
                  [] { return std::string("extra-status-line"); });
    const Status st = server.start(0);  // ephemeral port
    ASSERT_TRUE(st.is_ok()) << st.message();
    ASSERT_TRUE(server.running());
    ASSERT_NE(server.port(), 0);
  }
  void TearDown() override {
    server.stop();
    telemetry::MetricRegistry::instance().set_enabled(false);
    telemetry::MetricRegistry::instance().reset_values();
  }
  HttpServer server;
};

TEST_F(HttpFixture, HealthzOverRealSocket) {
  const std::string response = http_get(server.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(body_of(response), "ok\n");
}

TEST_F(HttpFixture, MetricsIsPrometheusParseable) {
  telemetry::MetricRegistry::instance()
      .counter("t_http_total", "scrape test", {{"stage", "sift"}})
      .inc(4);
  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);

  // Every non-comment line must be "<name>[{labels}] <value>" with a
  // numeric value — the contract a Prometheus scraper relies on.
  std::istringstream lines(body_of(response));
  std::string line;
  int samples = 0;
  bool saw_ours = false;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + sp + 1, &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
    if (line.compare(0, sp, "t_http_total{stage=\"sift\"}") == 0) {
      saw_ours = true;
      EXPECT_EQ(line.substr(sp + 1), "4");
    }
    ++samples;
  }
  EXPECT_GT(samples, 0);
  EXPECT_TRUE(saw_ours);
}

TEST_F(HttpFixture, StatuszIncludesExtraText) {
  const std::string response = http_get(server.port(), "/statusz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body_of(response).find("metrics snapshot"), std::string::npos);
  EXPECT_NE(body_of(response).find("extra-status-line"), std::string::npos);
}

TEST_F(HttpFixture, UnknownPathIs404) {
  const std::string response = http_get(server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404 Not Found"), std::string::npos);
}

TEST_F(HttpFixture, QueryStringIsStripped) {
  const std::string response = http_get(server.port(), "/healthz?verbose=1");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST_F(HttpFixture, MalformedRequestIs400) {
  const std::string response = http_get_raw(server.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos);
}

TEST_F(HttpFixture, NonGetIs405) {
  const std::string response =
      http_get_raw(server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos);
}

TEST_F(HttpFixture, StopIsIdempotentAndRestartable) {
  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
  const Status st = server.start(0);
  ASSERT_TRUE(st.is_ok()) << st.message();
  EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"), std::string::npos);
}

TEST(HttpServer, StartWhileRunningFails) {
  HttpServer s;
  s.handle("/x", "text/plain", [] { return std::string("x"); });
  ASSERT_TRUE(s.start(0).is_ok());
  EXPECT_FALSE(s.start(0).is_ok());
  s.stop();
}

// A response far larger than any socket buffer forces send() to return
// short writes; the body must still arrive complete and byte-exact.
TEST(HttpServer, LargeResponseSurvivesPartialWrites) {
  std::string big(4u << 20, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i * 31) % 26);
  }
  HttpServer s;
  s.handle("/big", "application/octet-stream", [&big] { return big; });
  ASSERT_TRUE(s.start(0).is_ok());
  const std::string response =
      http_get_raw(s.port(), "GET /big HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: " + std::to_string(big.size())),
            std::string::npos);
  EXPECT_EQ(body_of(response), big);
  s.stop();
}

// A request head past the 8 KiB cap gets a 431 rather than a silent
// hang-up, so a misbehaving scraper sees why it was refused.
TEST_F(HttpFixture, OversizedRequestHeadIs431) {
  std::string request = "GET /" + std::string(10000, 'q') + " HTTP/1.1\r\nHost: x\r\n\r\n";
  const std::string response = http_get_raw(server.port(), request);
  EXPECT_NE(response.find("HTTP/1.1 431 "), std::string::npos);
}

// A client that disappears mid-response (EPIPE territory) must not
// take the accept thread down; the next request still gets served.
TEST(HttpServer, ClientAbortMidResponseDoesNotKillServer) {
  std::string big(4u << 20, 'z');
  HttpServer s;
  s.handle("/big", "application/octet-stream", [&big] { return big; });
  ASSERT_TRUE(s.start(0).is_ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(s.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET /big HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  char buf[1024];
  (void)::recv(fd, buf, sizeof(buf), 0);  // read a sliver of the response
  // Abort hard: RST on close so the server's next send() fails.
  linger lg{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);

  const std::string response =
      http_get_raw(s.port(), "GET /big HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(response).size(), big.size());
  s.stop();
}

// --- query_param -----------------------------------------------------------

TEST(QueryParam, ParsesKeysExactly) {
  EXPECT_EQ(query_param("seconds=3&hz=97", "hz"), "97");
  EXPECT_EQ(query_param("seconds=3&hz=97", "seconds"), "3");
  EXPECT_EQ(query_param("seconds=3&hz=97", "format"), "");
  EXPECT_EQ(query_param("", "hz"), "");
  // Keys must match whole, not by prefix or suffix.
  EXPECT_EQ(query_param("xhz=1&hz=2", "hz"), "2");
  EXPECT_EQ(query_param("hzz=1", "hz"), "");
  // Empty values and flag-style tokens don't derail later pairs.
  EXPECT_EQ(query_param("a=&verbose&b=4", "b"), "4");
  EXPECT_EQ(query_param("a=&b=4", "a"), "");
}

// --- /debug/pprof ----------------------------------------------------------

struct PprofFixture : ::testing::Test {
  void SetUp() override {
    serve_pprof(server);
    ASSERT_TRUE(server.start(0).is_ok());
  }
  void TearDown() override {
    server.stop();
    auto& profiler = telemetry::Profiler::instance();
    if (profiler.running()) (void)profiler.stop();
    profiler.set_attribution(false);
    profiler.reset_alloc();
  }
  HttpServer server;
};

TEST_F(PprofFixture, IndexListsEndpoints) {
  const std::string response = http_get(server.port(), "/debug/pprof");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body_of(response).find("/debug/pprof/profile"), std::string::npos);
  EXPECT_NE(body_of(response).find("/debug/pprof/heap"), std::string::npos);
}

TEST_F(PprofFixture, HeapReportsAttributedAllocations) {
  // Empty table: the endpoint explains itself instead of returning "".
  EXPECT_NE(body_of(http_get(server.port(), "/debug/pprof/heap"))
                .find("no allocation samples"),
            std::string::npos);

  telemetry::Profiler::instance().set_attribution(true);
  telemetry::profile_alloc_as("sift_pyramid", 12345);
  const std::string response = http_get(server.port(), "/debug/pprof/heap");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body_of(response).find("sift_pyramid 12345"), std::string::npos);
}

TEST_F(PprofFixture, CmdlineNamesThisBinary) {
  const std::string response = http_get(server.port(), "/debug/pprof/cmdline");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body_of(response).find("net_http_test"), std::string::npos);
}

TEST_F(PprofFixture, ProfileCapturesBusyStageOverHttp) {
  // Keep a stage busy for the whole capture window so the 1 s scrape
  // has something to attribute.
  std::atomic<bool> stop_burn{false};
  std::thread burner([&stop_burn] {
    volatile double sink = 0.0;
    while (!stop_burn.load(std::memory_order_relaxed)) {
      // Scope re-created per iteration: ProfScope arms at construction,
      // and the profiler is only enabled once the HTTP request lands.
      telemetry::ProfScope scope("http_burn_stage");
      for (int i = 0; i < 100'000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
    }
    (void)sink;
  });
  const std::string response =
      http_get(server.port(), "/debug/pprof/profile?seconds=1&hz=200");
  stop_burn.store(true, std::memory_order_relaxed);
  burner.join();

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("http_burn_stage"), std::string::npos) << body;
  // Folded format: every line is "stack count" with a positive count.
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::strtoul(line.c_str() + sp + 1, nullptr, 10), 0u) << line;
  }
}

// Teardown with a connected-but-silent client: stop() must come back
// (bounded by the request timeout) instead of hanging on the join.
TEST(HttpServer, StopWithIdleConnectionReturns) {
  HttpServer s;
  s.handle("/x", "text/plain", [] { return std::string("x"); });
  ASSERT_TRUE(s.start(0).is_ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(s.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Never send anything; the server is blocked in read_request_head.
  s.stop();
  EXPECT_FALSE(s.running());
  ::close(fd);
}

}  // namespace
}  // namespace mar::net
