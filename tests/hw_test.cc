#include <gtest/gtest.h>

#include "common/rng.h"
#include "hw/cost_model.h"
#include "hw/machine.h"
#include "hw/resource.h"
#include "sim/event_loop.h"

namespace mar::hw {
namespace {

// --- ResourcePool ------------------------------------------------------------

struct PoolFixture : ::testing::Test {
  sim::EventLoop loop;
};

TEST_F(PoolFixture, ImmediateGrantWhenFree) {
  ResourcePool pool(loop, 2);
  bool granted = false;
  pool.acquire(1, [&] { granted = true; });
  EXPECT_TRUE(granted);
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST_F(PoolFixture, QueuesWhenFull) {
  ResourcePool pool(loop, 1);
  int grants = 0;
  pool.acquire(1, [&] { ++grants; });
  pool.acquire(1, [&] { ++grants; });
  EXPECT_EQ(grants, 1);
  EXPECT_EQ(pool.waiting(), 1u);
  pool.release(1);
  EXPECT_EQ(grants, 2);
  EXPECT_EQ(pool.waiting(), 0u);
  EXPECT_EQ(pool.in_use(), 1u);
}

TEST_F(PoolFixture, FifoGrantOrder) {
  ResourcePool pool(loop, 1);
  std::vector<int> order;
  pool.acquire(1, [&] { order.push_back(0); });
  pool.acquire(1, [&] { order.push_back(1); });
  pool.acquire(1, [&] { order.push_back(2); });
  pool.release(1);
  pool.release(1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(PoolFixture, MultiUnitRequests) {
  ResourcePool pool(loop, 4);
  int grants = 0;
  pool.acquire(3, [&] { ++grants; });
  pool.acquire(2, [&] { ++grants; });  // won't fit: 3+2 > 4
  EXPECT_EQ(grants, 1);
  pool.release(3);
  EXPECT_EQ(grants, 2);
}

TEST_F(PoolFixture, OversizedRequestDropped) {
  ResourcePool pool(loop, 2);
  bool granted = false;
  pool.acquire(3, [&] { granted = true; });
  pool.release(2);
  EXPECT_FALSE(granted);
}

TEST_F(PoolFixture, ReleaseClampsAtZero) {
  ResourcePool pool(loop, 2);
  pool.release(5);  // spurious
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST_F(PoolFixture, UtilizationIntegratesBusyTime) {
  ResourcePool pool(loop, 2);
  pool.reset_window();
  loop.schedule_at(0, [&] { pool.acquire(1, [] {}); });
  loop.schedule_at(millis(50.0), [&] { pool.release(1); });
  loop.run_until(millis(100.0));
  // 1 of 2 units busy for half the window -> 25%.
  EXPECT_NEAR(pool.utilization(), 0.25, 0.001);
}

TEST_F(PoolFixture, UtilizationCountsInFlight) {
  ResourcePool pool(loop, 1);
  pool.reset_window();
  pool.acquire(1, [] {});
  loop.run_until(millis(10.0));
  EXPECT_NEAR(pool.utilization(), 1.0, 0.001);
}

TEST_F(PoolFixture, WindowResetRestartsIntegral) {
  ResourcePool pool(loop, 1);
  pool.acquire(1, [] {});
  loop.run_until(millis(10.0));
  pool.release(1);
  pool.reset_window();
  loop.run_until(millis(20.0));
  EXPECT_NEAR(pool.utilization(), 0.0, 0.001);
}

TEST_F(PoolFixture, PeakTracksHighWater) {
  ResourcePool pool(loop, 4);
  pool.acquire(2, [] {});
  pool.acquire(1, [] {});
  EXPECT_EQ(pool.peak_in_use(), 3u);
  pool.release(3);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.peak_in_use(), 3u);  // high-water survives release
  pool.acquire(1, [] {});
  EXPECT_EQ(pool.peak_in_use(), 3u);  // lower re-acquire doesn't move it
}

TEST_F(PoolFixture, PeakCountsWaiterGrants) {
  ResourcePool pool(loop, 2);
  pool.acquire(2, [] {});
  pool.acquire(2, [] {});  // queued
  EXPECT_EQ(pool.peak_in_use(), 2u);
  pool.release(2);  // waiter granted through the release path
  EXPECT_EQ(pool.in_use(), 2u);
  EXPECT_EQ(pool.peak_in_use(), 2u);
}

TEST_F(PoolFixture, WindowResetRebasesPeakToCurrent) {
  ResourcePool pool(loop, 4);
  pool.acquire(3, [] {});
  pool.release(2);
  EXPECT_EQ(pool.peak_in_use(), 3u);
  pool.reset_window();
  EXPECT_EQ(pool.peak_in_use(), 1u);  // rebased to what's still held
  pool.acquire(1, [] {});
  EXPECT_EQ(pool.peak_in_use(), 2u);
}

// Property: in_use never exceeds capacity under random operations.
class PoolRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolRandomOps, InvariantHolds) {
  sim::EventLoop loop;
  ResourcePool pool(loop, 3);
  Rng rng(GetParam());
  std::uint32_t held = 0;
  for (int i = 0; i < 1'000; ++i) {
    if (rng.bernoulli(0.6)) {
      pool.acquire(static_cast<std::uint32_t>(rng.uniform_int(1, 3)), [&] {});
    } else if (held < pool.in_use()) {
      pool.release(1);
    }
    ASSERT_LE(pool.in_use(), pool.capacity());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolRandomOps, ::testing::Range<std::uint64_t>(0, 6));

// --- MemoryAccount --------------------------------------------------------------

TEST_F(PoolFixture, MemoryTracksPeakAndCurrent) {
  MemoryAccount mem(loop, 1'000);
  mem.allocate(400);
  mem.allocate(300);
  EXPECT_EQ(mem.used(), 700u);
  EXPECT_EQ(mem.peak(), 700u);
  mem.free(500);
  EXPECT_EQ(mem.used(), 200u);
  EXPECT_EQ(mem.peak(), 700u);
}

TEST_F(PoolFixture, MemoryFreeClampsAtZero) {
  MemoryAccount mem(loop, 1'000);
  mem.allocate(100);
  mem.free(500);
  EXPECT_EQ(mem.used(), 0u);
}

TEST_F(PoolFixture, MemoryTimeWeightedMean) {
  MemoryAccount mem(loop, 1'000);
  mem.reset_window();
  loop.schedule_at(0, [&] { mem.allocate(100); });
  loop.schedule_at(millis(50.0), [&] { mem.free(100); });
  loop.run_until(millis(100.0));
  EXPECT_NEAR(mem.mean_used(), 50.0, 0.5);
}

// --- Machine ------------------------------------------------------------------------

TEST(MachineSpec, PaperTestbedShapes) {
  const MachineSpec e1 = MachineSpec::edge1();
  const MachineSpec e2 = MachineSpec::edge2();
  const MachineSpec cloud = MachineSpec::cloud();
  EXPECT_EQ(e1.gpus.size(), 2u);
  EXPECT_EQ(e2.gpus.size(), 2u);
  EXPECT_EQ(cloud.gpus.size(), 1u);
  EXPECT_TRUE(cloud.virtualized);
  EXPECT_FALSE(e1.virtualized);
  EXPECT_GT(e2.memory_bytes, e1.memory_bytes);
  EXPECT_GT(e2.gpus[0].speed_factor, e1.gpus[0].speed_factor);  // A40 > RTX 2080
}

TEST(Machine, GpuPinningBalances) {
  sim::EventLoop loop;
  Machine m(loop, MachineId{0}, MachineSpec::edge1());
  EXPECT_EQ(m.pin_service_to_gpu(), 0u);
  EXPECT_EQ(m.pin_service_to_gpu(), 1u);
  EXPECT_EQ(m.pin_service_to_gpu(), 0u);
  EXPECT_EQ(m.pin_service_to_gpu(), 1u);
}

TEST(Machine, ColocationSlowsGpu) {
  sim::EventLoop loop;
  Machine m(loop, MachineId{0}, MachineSpec::edge1());
  m.pin_service_to_gpu();  // one service on gpu0
  const double alone = m.gpu_time_scale(0);
  m.pin_service_to_gpu();  // gpu1
  m.pin_service_to_gpu();  // second on gpu0
  const double shared = m.gpu_time_scale(0);
  EXPECT_GT(shared, alone);
}

TEST(Machine, ColocationPenaltyIsCapped) {
  sim::EventLoop loop;
  MachineSpec spec = MachineSpec::edge1();
  spec.gpus = {GpuModel{"geforce-rtx", 1.0}};
  Machine m(loop, MachineId{0}, spec);
  for (int i = 0; i < 10; ++i) m.pin_service_to_gpu();
  EXPECT_LE(m.gpu_time_scale(0), kGpuColocationPenaltyCap + 1e-9);
}

TEST(Machine, VirtualizationPenaltyApplied) {
  sim::EventLoop loop;
  Machine cloud(loop, MachineId{0}, MachineSpec::cloud());
  Machine edge(loop, MachineId{1}, MachineSpec::edge1());
  EXPECT_GT(cloud.cpu_time_scale(), edge.cpu_time_scale() * 1.1);
}

TEST(Machine, GpuSlotsRespected) {
  sim::EventLoop loop;
  Machine cloud(loop, MachineId{0}, MachineSpec::cloud());
  // V100 exposes multiple concurrent kernel slots.
  EXPECT_GT(cloud.gpu(0).capacity(), 1u);
}

// --- CostModel ------------------------------------------------------------------------

TEST(CostModel, SiftIsHeaviestGpuStage) {
  const CostModel m = CostModel::standard();
  const SimDuration sift = m.stage(Stage::kSift).gpu_time;
  for (Stage s : {Stage::kEncoding, Stage::kLsh, Stage::kMatching}) {
    EXPECT_GE(sift, m.stage(s).gpu_time);
  }
  EXPECT_EQ(m.stage(Stage::kPrimary).gpu_time, 0);  // CPU-only
}

TEST(CostModel, FastDetectorOnlyChangesSift) {
  const CostModel std_model = CostModel::standard();
  const CostModel fast = CostModel::fast_detector();
  EXPECT_LT(fast.stage(Stage::kSift).gpu_time, std_model.stage(Stage::kSift).gpu_time);
  EXPECT_EQ(fast.stage(Stage::kEncoding).gpu_time, std_model.stage(Stage::kEncoding).gpu_time);
  EXPECT_EQ(fast.stage(Stage::kMatching).gpu_time, std_model.stage(Stage::kMatching).gpu_time);
}

TEST(CostModel, SampleIsClampedAroundMean) {
  Rng rng(7);
  const SimDuration mean = millis(10.0);
  for (int i = 0; i < 10'000; ++i) {
    const SimDuration v = CostModel::sample(mean, 0.2, rng);
    ASSERT_GE(v, static_cast<SimDuration>(0.3 * mean));
    ASSERT_LE(v, 5 * mean);
  }
}

TEST(CostModel, SampleMeanApproximatesTarget) {
  Rng rng(11);
  const SimDuration mean = millis(10.0);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(CostModel::sample(mean, 0.2, rng));
  EXPECT_NEAR(sum / n / static_cast<double>(mean), 1.0, 0.02);
}

TEST(CostModel, ZeroCvIsDeterministic) {
  Rng rng(13);
  EXPECT_EQ(CostModel::sample(millis(5.0), 0.0, rng), millis(5.0));
  EXPECT_EQ(CostModel::sample(0, 0.5, rng), 0);
}

TEST(CostModel, ScatterPlusPlusKnobsPresent) {
  const CostModel m = CostModel::standard();
  EXPECT_EQ(m.sidecar_threshold, millis(100.0));  // paper's XR budget
  EXPECT_GT(m.sidecar_rpc_overhead, 0);
  EXPECT_GT(m.state_entry_bytes, 0u);
  EXPECT_GT(m.state_timeout, 0);
  EXPECT_GT(m.recognition_failure_prob, 0.0);
  EXPECT_LT(m.recognition_failure_prob, 0.3);
}

}  // namespace
}  // namespace mar::hw
