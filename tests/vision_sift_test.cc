#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "vision/sift.h"

namespace mar::vision {
namespace {

// Synthetic test pattern: bright blobs on a dark background give
// well-localized scale-space extrema.
Image blob_image(int w, int h, const std::vector<std::pair<float, float>>& centers,
                 float radius = 6.0f) {
  Image img(w, h, 0.1f);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (const auto& [cx, cy] : centers) {
        const float dx = static_cast<float>(x) - cx;
        const float dy = static_cast<float>(y) - cy;
        img.at(x, y) += 0.8f * std::exp(-(dx * dx + dy * dy) / (2.0f * radius * radius));
      }
    }
  }
  return img;
}

// Textured image with plenty of features.
Image textured_image(int w, int h, std::uint64_t seed = 3) {
  Rng rng(seed);
  Image img(w, h);
  // Random rectangles create corners and edges at multiple scales.
  for (int i = 0; i < 40; ++i) {
    const int x0 = static_cast<int>(rng.uniform_int(0, w - 10));
    const int y0 = static_cast<int>(rng.uniform_int(0, h - 10));
    const int bw = static_cast<int>(rng.uniform_int(5, 25));
    const int bh = static_cast<int>(rng.uniform_int(5, 25));
    const float val = static_cast<float>(rng.uniform(0.2, 1.0));
    for (int y = y0; y < std::min(h, y0 + bh); ++y) {
      for (int x = x0; x < std::min(w, x0 + bw); ++x) img.at(x, y) = val;
    }
  }
  return img;
}

TEST(Sift, FindsBlobNearCenter) {
  const Image img = blob_image(96, 96, {{48.0f, 48.0f}});
  SiftDetector detector;
  const FeatureList features = detector.detect(img);
  ASSERT_FALSE(features.empty());
  // The strongest feature should sit on the blob.
  const auto best = std::max_element(features.begin(), features.end(),
                                     [](const Feature& a, const Feature& b) {
                                       return a.keypoint.response < b.keypoint.response;
                                     });
  EXPECT_NEAR(best->keypoint.x, 48.0f, 4.0f);
  EXPECT_NEAR(best->keypoint.y, 48.0f, 4.0f);
}

TEST(Sift, EmptyOnFlatImage) {
  const Image img(96, 96, 0.5f);
  SiftDetector detector;
  EXPECT_TRUE(detector.detect(img).empty());
}

TEST(Sift, EmptyOnTinyImage) {
  const Image img = blob_image(16, 16, {{8.0f, 8.0f}});
  SiftDetector detector;
  EXPECT_TRUE(detector.detect(img).empty());
}

TEST(Sift, TextureYieldsManyFeatures) {
  const Image img = textured_image(160, 120);
  SiftDetector detector;
  EXPECT_GT(detector.detect(img).size(), 50u);
}

TEST(Sift, DescriptorsAreUnitNorm) {
  const Image img = textured_image(160, 120);
  SiftDetector detector;
  for (const Feature& f : detector.detect(img)) {
    float norm = 0.0f;
    float max_component = 0.0f;
    for (float v : f.descriptor) {
      norm += v * v;
      max_component = std::max(max_component, v);
      ASSERT_GE(v, 0.0f);
    }
    ASSERT_NEAR(std::sqrt(norm), 1.0f, 0.01f);
    // Clipped at 0.2 before the final renormalization, so components
    // stay well below 1 but can exceed 0.2 for sparse descriptors.
    ASSERT_LE(max_component, 0.5f);
  }
}

TEST(Sift, MaxFeaturesKeepsStrongest) {
  const Image img = textured_image(160, 120);
  SiftParams limited;
  limited.max_features = 20;
  SiftParams unlimited;
  unlimited.max_features = 0;
  const FeatureList few = SiftDetector(limited).detect(img);
  const FeatureList all = SiftDetector(unlimited).detect(img);
  ASSERT_EQ(few.size(), 20u);
  ASSERT_GT(all.size(), few.size());
  // The kept responses should dominate the overall distribution.
  float min_kept = 1e9f;
  for (const Feature& f : few) min_kept = std::min(min_kept, f.keypoint.response);
  std::vector<float> responses;
  for (const Feature& f : all) responses.push_back(f.keypoint.response);
  std::sort(responses.rbegin(), responses.rend());
  EXPECT_GE(min_kept, responses[25] * 0.9f);
}

TEST(Sift, TranslationMovesKeypoints) {
  const Image a = blob_image(128, 128, {{50.0f, 60.0f}});
  const Image b = blob_image(128, 128, {{70.0f, 60.0f}});  // +20 px in x
  SiftDetector detector;
  const FeatureList fa = detector.detect(a);
  const FeatureList fb = detector.detect(b);
  ASSERT_FALSE(fa.empty());
  ASSERT_FALSE(fb.empty());
  const auto strongest = [](const FeatureList& fl) {
    return *std::max_element(fl.begin(), fl.end(), [](const Feature& x, const Feature& y) {
      return x.keypoint.response < y.keypoint.response;
    });
  };
  EXPECT_NEAR(strongest(fb).keypoint.x - strongest(fa).keypoint.x, 20.0f, 4.0f);
}

TEST(Sift, MatchingDescriptorsAcrossTranslation) {
  // Descriptors of the same texture patch should match across a shift.
  Image big = textured_image(200, 150, /*seed=*/9);
  Image a(160, 120), b(160, 120);
  for (int y = 0; y < 120; ++y) {
    for (int x = 0; x < 160; ++x) {
      a.at(x, y) = big.at(x, y);
      b.at(x, y) = big.at(x + 15, y + 10);
    }
  }
  SiftDetector detector;
  const FeatureList fa = detector.detect(a);
  const FeatureList fb = detector.detect(b);
  ASSERT_GT(fa.size(), 10u);
  ASSERT_GT(fb.size(), 10u);

  // For each feature in `a` inside the overlap, the best match in `b`
  // should frequently be ~(-15, -10) away.
  int consistent = 0, tested = 0;
  for (const Feature& f : fa) {
    if (f.keypoint.x < 20 || f.keypoint.y < 15) continue;
    float best = 1e9f;
    const Feature* best_feature = nullptr;
    for (const Feature& g : fb) {
      const float d = descriptor_distance(f.descriptor, g.descriptor);
      if (d < best) {
        best = d;
        best_feature = &g;
      }
    }
    if (best_feature == nullptr || best > 0.5f) continue;
    ++tested;
    const float dx = f.keypoint.x - best_feature->keypoint.x;
    const float dy = f.keypoint.y - best_feature->keypoint.y;
    if (std::abs(dx - 15.0f) < 3.0f && std::abs(dy - 10.0f) < 3.0f) ++consistent;
  }
  ASSERT_GT(tested, 5);
  EXPECT_GT(static_cast<double>(consistent) / tested, 0.6);
}

TEST(Sift, ScaleRecordedAtOctaves) {
  const Image img = blob_image(192, 192, {{96.0f, 96.0f}}, /*radius=*/14.0f);
  SiftDetector detector;
  const FeatureList features = detector.detect(img);
  ASSERT_FALSE(features.empty());
  // A large blob should produce at least one feature beyond octave 0.
  const bool has_large_scale =
      std::any_of(features.begin(), features.end(),
                  [](const Feature& f) { return f.keypoint.scale > 3.0f; });
  EXPECT_TRUE(has_large_scale);
}

// Property: detection is deterministic.
TEST(Sift, Deterministic) {
  const Image img = textured_image(160, 120);
  SiftDetector detector;
  const FeatureList a = detector.detect(img);
  const FeatureList b = detector.detect(img);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keypoint.x, b[i].keypoint.x);
    EXPECT_EQ(a[i].descriptor, b[i].descriptor);
  }
}

}  // namespace
}  // namespace mar::vision
