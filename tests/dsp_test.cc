#include <gtest/gtest.h>

#include <memory>

#include "dsp/runtime.h"
#include "dsp/service_host.h"
#include "dsp/servicelet.h"
#include "dsp/state_store.h"
#include "hw/cost_model.h"
#include "hw/machine.h"

namespace mar::dsp {
namespace {

// Servicelet that stays busy for a fixed duration, then finishes.
class TimedServicelet : public Servicelet {
 public:
  explicit TimedServicelet(SimDuration busy_for) : busy_for_(busy_for) {}

  void process(wire::FramePacket pkt) override {
    ++processed_;
    last_ = pkt;
    host().runtime().schedule_after(busy_for_, [this] { host().finish_current(); });
  }

  int processed_ = 0;
  wire::FramePacket last_;

 private:
  SimDuration busy_for_;
};

struct HostFixture : ::testing::Test {
  HostFixture()
      : net(loop, Rng{1}),
        rt(loop, net),
        machine(loop, MachineId{0}, hw::MachineSpec::edge1()),
        costs(hw::CostModel::standard()) {}

  ServiceHost& make_host(IngressMode mode, SimDuration busy_for = millis(10.0),
                         Stage stage = Stage::kSift) {
    HostConfig cfg;
    cfg.stage = stage;
    cfg.mode = mode;
    cfg.uses_gpu = false;
    auto servicelet = std::make_unique<TimedServicelet>(busy_for);
    servicelet_ = servicelet.get();
    host_ = std::make_unique<ServiceHost>(rt, machine, InstanceId{0}, cfg, costs,
                                          std::move(servicelet), Rng{2});
    return *host_;
  }

  // Sends a frame packet to the host through the network.
  void send_frame(ServiceHost& host, std::uint64_t frame, std::uint32_t payload = 100'000,
                  ClientId client = ClientId{1}, SimTime capture_ts = -1) {
    wire::FramePacket pkt;
    pkt.header.client = client;
    pkt.header.frame = FrameId{frame};
    pkt.header.kind = wire::MessageKind::kFrameData;
    pkt.header.capture_ts = capture_ts < 0 ? loop.now() : capture_ts;
    pkt.header.payload_bytes = payload;
    net.send(src, host.ingress(), std::move(pkt));
  }

  sim::EventLoop loop;
  sim::SimNetwork net;
  SimRuntime rt;
  hw::Machine machine;
  hw::CostModel costs;
  std::unique_ptr<ServiceHost> host_;
  TimedServicelet* servicelet_ = nullptr;
  EndpointId src = net.create_endpoint(MachineId{0}, nullptr);
};

// --- drop-when-busy (scAtteR) ------------------------------------------------

TEST_F(HostFixture, ProcessesWhenIdle) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  send_frame(host, 1);
  loop.run();
  EXPECT_EQ(servicelet_->processed_, 1);
  EXPECT_EQ(host.stats().completed, 1u);
  EXPECT_EQ(host.stats().dropped_total(), 0u);
}

TEST_F(HostFixture, BusyDropsExcessFrames) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy, millis(10.0));
  // Three frames arrive back-to-back; one processes, one waits in the
  // socket buffer, the third is dropped.
  send_frame(host, 1);
  send_frame(host, 2);
  send_frame(host, 3);
  loop.run();
  EXPECT_EQ(servicelet_->processed_, 2);
  EXPECT_EQ(host.stats().dropped_busy, 1u);
}

TEST_F(HostFixture, ControlMessagesBufferSeparately) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy, millis(10.0));
  send_frame(host, 1);
  // Two small control messages while busy: both fit the control buffer.
  send_frame(host, 2, /*payload=*/100);
  send_frame(host, 3, /*payload=*/100);
  loop.run();
  EXPECT_EQ(servicelet_->processed_, 3);
  EXPECT_EQ(host.stats().dropped_total(), 0u);
}

TEST_F(HostFixture, SocketBufferAddsQueueTime) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy, millis(10.0));
  send_frame(host, 1);
  send_frame(host, 2);
  loop.run();
  ASSERT_EQ(host.stats().queue_time_ms.count(), 1u);
  EXPECT_GT(host.stats().queue_time_ms.mean(), 5.0);
}

TEST_F(HostFixture, StatsTrackReceived) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy, millis(1.0));
  for (int i = 0; i < 5; ++i) {
    send_frame(host, static_cast<std::uint64_t>(i));
    loop.run();
  }
  EXPECT_EQ(host.stats().received, 5u);
  EXPECT_EQ(host.stats().dispatched, 5u);
  EXPECT_NEAR(host.stats().process_time_ms.mean(), 1.0, 0.1);
}

// --- sidecar (scAtteR++) ---------------------------------------------------------

TEST_F(HostFixture, SidecarQueuesInsteadOfDropping) {
  ServiceHost& host = make_host(IngressMode::kSidecar, millis(10.0));
  // Different clients so the per-client filter keeps all of them.
  for (std::uint32_t c = 1; c <= 4; ++c) {
    send_frame(host, 1, 100'000, ClientId{c});
  }
  loop.run();
  EXPECT_EQ(servicelet_->processed_, 4);
  EXPECT_EQ(host.stats().dropped_total(), 0u);
}

TEST_F(HostFixture, SidecarFiltersSupersededFrames) {
  ServiceHost& host = make_host(IngressMode::kSidecar, millis(10.0));
  // Same client: frame 2 supersedes queued frame 1 while 0 processes.
  send_frame(host, 0);
  send_frame(host, 1);
  send_frame(host, 2);
  loop.run();
  EXPECT_EQ(servicelet_->processed_, 2);
  EXPECT_EQ(servicelet_->last_.header.frame, FrameId{2});
  EXPECT_EQ(host.stats().dropped_stale, 1u);
}

TEST_F(HostFixture, SidecarDropsStaleAtDequeue) {
  ServiceHost& host = make_host(IngressMode::kSidecar, millis(300.0));
  // First frame occupies the service for 300 ms; the queued frames of
  // other clients exceed the 100 ms threshold while waiting.
  for (std::uint32_t c = 1; c <= 3; ++c) send_frame(host, 1, 100'000, ClientId{c});
  loop.run();
  EXPECT_EQ(servicelet_->processed_, 1);
  EXPECT_EQ(host.stats().dropped_stale, 2u);
}

TEST_F(HostFixture, SidecarChargesRpcOverhead) {
  ServiceHost& host = make_host(IngressMode::kSidecar, millis(5.0));
  send_frame(host, 1);
  loop.run();
  ASSERT_EQ(host.stats().process_time_ms.count(), 1u);
  // Process time includes the gRPC hand-off.
  EXPECT_GT(host.stats().process_time_ms.mean(),
            5.0 + to_millis(costs.sidecar_rpc_overhead) * 0.9);
}

TEST_F(HostFixture, SidecarRecordsHop) {
  ServiceHost& host = make_host(IngressMode::kSidecar, millis(5.0));
  send_frame(host, 1);
  loop.run();
  ASSERT_EQ(servicelet_->last_.hops.size(), 1u);
  EXPECT_EQ(servicelet_->last_.hops[0].stage, Stage::kSift);
}

TEST_F(HostFixture, SidecarAllocatesClientBuffers) {
  ServiceHost& host = make_host(IngressMode::kSidecar, millis(1.0));
  const std::uint64_t base = host.memory_used();
  send_frame(host, 1, 100'000, ClientId{1});
  loop.run();
  const std::uint64_t one_client = host.memory_used();
  EXPECT_GE(one_client, base + costs.sidecar_client_buffer_bytes);
  send_frame(host, 1, 100'000, ClientId{2});
  loop.run();
  EXPECT_GE(host.memory_used(), one_client + costs.sidecar_client_buffer_bytes);
  // Same client again: no new buffer.
  const std::uint64_t two_clients = host.memory_used();
  send_frame(host, 2, 100'000, ClientId{2});
  loop.run();
  EXPECT_EQ(host.memory_used(), two_clients);
}

TEST_F(HostFixture, SidecarQueueOverflowDrops) {
  ServiceHost& host = make_host(IngressMode::kSidecar, millis(50.0));
  // Rebuild with a tiny queue.
  HostConfig cfg;
  cfg.stage = Stage::kSift;
  cfg.mode = IngressMode::kSidecar;
  cfg.queue_capacity = 2;
  auto servicelet = std::make_unique<TimedServicelet>(millis(50.0));
  auto* raw = servicelet.get();
  ServiceHost small(rt, machine, InstanceId{1}, cfg, costs, std::move(servicelet), Rng{3});
  (void)host;
  for (std::uint32_t c = 1; c <= 5; ++c) {
    wire::FramePacket pkt;
    pkt.header.client = ClientId{c};
    pkt.header.frame = FrameId{1};
    pkt.header.capture_ts = loop.now();
    pkt.header.payload_bytes = 1000;
    net.send(src, small.ingress(), std::move(pkt));
  }
  loop.run();
  EXPECT_GT(small.stats().dropped_overflow, 0u);
  EXPECT_GT(raw->processed_, 0);
}

// --- failure handling ---------------------------------------------------------------

TEST_F(HostFixture, KilledHostDropsTraffic) {
  ServiceHost& host = make_host(IngressMode::kSidecar, millis(1.0));
  host.kill();
  EXPECT_TRUE(host.is_down());
  send_frame(host, 1);
  loop.run();
  EXPECT_EQ(servicelet_->processed_, 0);
  EXPECT_EQ(host.stats().dropped_down, 1u);
}

TEST_F(HostFixture, RestartResumesProcessing) {
  ServiceHost& host = make_host(IngressMode::kSidecar, millis(1.0));
  host.kill();
  send_frame(host, 1);
  loop.run();
  host.restart();
  EXPECT_FALSE(host.is_down());
  send_frame(host, 2);
  loop.run();
  EXPECT_EQ(servicelet_->processed_, 1);
}

TEST_F(HostFixture, KillReturnsQueueMemory) {
  ServiceHost& host = make_host(IngressMode::kSidecar, millis(100.0));
  for (std::uint32_t c = 1; c <= 3; ++c) send_frame(host, 1, 200'000, ClientId{c});
  loop.run_until(millis(5.0));
  EXPECT_GT(host.queue_length(), 0u);
  const std::uint64_t before = host.memory_used();
  host.kill();
  EXPECT_LT(host.memory_used(), before);
  EXPECT_EQ(host.queue_length(), 0u);
}

// --- window reset ----------------------------------------------------------------------

TEST_F(HostFixture, StatsWindowResetKeepsTimeSeries) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy, millis(1.0));
  send_frame(host, 1);
  loop.run();
  host.stats().reset_window();
  EXPECT_EQ(host.stats().received, 0u);
  EXPECT_EQ(host.stats().completed, 0u);
  // Time series persist for the whole-run analytics figures.
  EXPECT_EQ(host.stats().ingress_per_sec.count_at(0), 1u);
}

// --- state store -------------------------------------------------------------------------

TEST_F(HostFixture, StateStorePutTake) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  StateStore store(host, seconds(1.0), 1024);
  store.put(ClientId{1}, FrameId{5});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.take(ClientId{1}, FrameId{5}));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.take(ClientId{1}, FrameId{5}));  // already taken
}

TEST_F(HostFixture, StateStoreMissingKey) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  StateStore store(host, seconds(1.0), 1024);
  EXPECT_FALSE(store.take(ClientId{9}, FrameId{9}));
}

TEST_F(HostFixture, StateStoreChargesMemory) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  const std::uint64_t base = host.memory_used();
  StateStore store(host, seconds(1.0), 4096);
  store.put(ClientId{1}, FrameId{1});
  store.put(ClientId{1}, FrameId{2});
  EXPECT_EQ(host.memory_used(), base + 2 * 4096);
  store.take(ClientId{1}, FrameId{1});
  EXPECT_EQ(host.memory_used(), base + 4096);
}

TEST_F(HostFixture, StateStoreEvictsOrphansAfterTimeout) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  StateStore store(host, millis(500.0), 1024);
  store.put(ClientId{1}, FrameId{1});
  loop.run_until(seconds(2.0));
  loop.run();  // drain the sweep timers
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.orphaned(), 1u);
  EXPECT_FALSE(store.take(ClientId{1}, FrameId{1}));
}

TEST_F(HostFixture, StateStoreOverwriteRefreshesExpiry) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  StateStore store(host, millis(500.0), 1024);
  store.put(ClientId{1}, FrameId{1});
  loop.run_until(millis(400.0));
  store.put(ClientId{1}, FrameId{1});  // refresh
  loop.run_until(millis(700.0));
  EXPECT_TRUE(store.take(ClientId{1}, FrameId{1}));
}

// --- state store crash path ----------------------------------------------------------

TEST_F(HostFixture, StateStoreClearDropsEverythingAndFreesMemory) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  const std::uint64_t base = host.memory_used();
  StateStore store(host, seconds(1.0), 4096);
  store.put(ClientId{1}, FrameId{1});
  store.put(ClientId{1}, FrameId{2});
  store.put(ClientId{2}, FrameId{1});
  ASSERT_TRUE(store.take(ClientId{1}, FrameId{1}));
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.lost_to_crash(), 2u);
  EXPECT_EQ(host.memory_used(), base);
  // Post-crash fetches must miss — this is scAtteR's failure mode.
  EXPECT_FALSE(store.take(ClientId{1}, FrameId{2}));
  EXPECT_FALSE(store.take(ClientId{2}, FrameId{1}));
}

TEST_F(HostFixture, StateStoreSweepAfterClearIsSafe) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  StateStore store(host, millis(500.0), 1024);
  store.put(ClientId{1}, FrameId{1});  // schedules the sweep timer
  store.clear();
  loop.run_until(seconds(2.0));
  loop.run();  // the pending sweep fires against an empty map
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.orphaned(), 0u);  // cleared entries are crash losses, not orphans
  EXPECT_EQ(store.lost_to_crash(), 1u);
}

TEST_F(HostFixture, StateStoreOrphanAndCrashCountsAreDistinct) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  StateStore store(host, millis(500.0), 1024);
  store.put(ClientId{1}, FrameId{1});
  loop.run_until(seconds(2.0));
  loop.run();  // entry 1 times out -> orphaned
  store.put(ClientId{1}, FrameId{2});
  store.clear();  // entry 2 dies in the crash
  EXPECT_EQ(store.orphaned(), 1u);
  EXPECT_EQ(store.lost_to_crash(), 1u);
}

TEST_F(HostFixture, StateStoreSweepTimerAfterDestructionIsSafe) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  const std::uint64_t base = host.memory_used();
  {
    StateStore store(host, millis(500.0), 1024);
    store.put(ClientId{1}, FrameId{1});  // sweep timer now pending
  }
  // The store is gone but its timer is still queued; the alive_ guard
  // must keep it from touching freed memory.
  loop.run_until(seconds(2.0));
  loop.run();
  EXPECT_EQ(host.memory_used(), base);
}

// --- crash semantics on the host -------------------------------------------------------

class KillAwareServicelet : public Servicelet {
 public:
  void process(wire::FramePacket) override { host().finish_current(); }
  void on_killed() override { ++kills_; }
  int kills_ = 0;
};

TEST_F(HostFixture, KillNotifiesServicelet) {
  HostConfig cfg;
  cfg.stage = Stage::kSift;
  auto servicelet = std::make_unique<KillAwareServicelet>();
  KillAwareServicelet* raw = servicelet.get();
  ServiceHost host(rt, machine, InstanceId{7}, cfg, costs, std::move(servicelet), Rng{3});
  host.kill();
  EXPECT_EQ(raw->kills_, 1);
}

TEST_F(HostFixture, SendWhileDownIsSuppressedAndCounted) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  host.kill();
  wire::FramePacket pkt;
  pkt.header.client = ClientId{1};
  pkt.header.frame = FrameId{1};
  host.send(src, std::move(pkt));
  EXPECT_EQ(host.stats().tx_suppressed, 1u);
}

TEST_F(HostFixture, SendToInvalidEndpointCountsUnroutable) {
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  wire::FramePacket pkt;
  pkt.header.client = ClientId{1};
  pkt.header.frame = FrameId{2};
  host.send(EndpointId{}, std::move(pkt));
  EXPECT_EQ(host.stats().tx_unroutable, 1u);
}

TEST_F(HostFixture, DecommissionReturnsMachineMemoryExactlyOnce) {
  const std::uint64_t before = machine.memory().used();
  ServiceHost& host = make_host(IngressMode::kDropWhenBusy);
  StateStore store(host, seconds(10.0), 4096);
  store.put(ClientId{1}, FrameId{1});
  EXPECT_GT(machine.memory().used(), before);
  host.decommission();
  EXPECT_TRUE(host.is_decommissioned());
  EXPECT_EQ(machine.memory().used(), before);
  host.decommission();  // idempotent: no double free
  EXPECT_EQ(machine.memory().used(), before);
  host.restart();  // no resurrection after eviction
  EXPECT_TRUE(host.is_down());
}

}  // namespace
}  // namespace mar::dsp
