#include "telemetry/critical_path.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/time.h"
#include "expt/attribution.h"
#include "expt/forensics.h"

namespace mar::telemetry {
namespace {

// Raw-event builder: the extractor takes plain TraceEvent arrays, so
// the edge cases (orphan ends, clamped begins, terminal instants) can
// be laid out explicitly instead of coaxed out of a simulation run.
TraceEvent ev(SimTime ts, TracePhase phase, const char* name, std::uint32_t track,
              Stage stage = Stage::kPrimary, SimDuration dur = 0,
              std::uint32_t trace_id = 7) {
  TraceEvent e;
  e.ts = ts;
  e.dur = dur;
  e.name = name;
  e.frame = 7;
  e.client = 3;
  e.track = track;
  e.trace_id = trace_id;
  e.stage = stage;
  e.phase = phase;
  return e;
}

constexpr std::uint32_t kClientTrack = kClientTrackBase + 3;

TEST(CriticalPathTest, EmptyInputYieldsIncomplete) {
  const CriticalPath cp = extract_critical_path(nullptr, 0);
  EXPECT_FALSE(cp.delivered);
  EXPECT_EQ(cp.verdict, "incomplete");
  EXPECT_DOUBLE_EQ(cp.total_ms(), 0.0);
  EXPECT_TRUE(cp.segments.empty());
}

// A well-formed chain decomposes with zero gap: every envelope slice
// lands on exactly one component and the per-stage split matches the
// spans that produced it.
TEST(CriticalPathTest, NormalChainDecomposesFully) {
  std::vector<TraceEvent> events;
  events.push_back(ev(millis(0), TracePhase::kBegin, spans::kFrameE2e, kClientTrack));
  events.push_back(
      ev(millis(0), TracePhase::kComplete, spans::kLink, kNetworkTrack, Stage::kPrimary, millis(10)));
  events.push_back(ev(millis(10), TracePhase::kBegin, spans::kSocketBuffer, 1));
  events.push_back(ev(millis(20), TracePhase::kEnd, spans::kSocketBuffer, 1));
  events.push_back(ev(millis(20), TracePhase::kBegin, spans::kService, 1, Stage::kMatching));
  // State round trip recorded inside the matching service span: its
  // slices must fold into kStateFetch, not count as service twice.
  events.push_back(ev(millis(30), TracePhase::kBegin, spans::kStateFetch, 1, Stage::kMatching));
  events.push_back(ev(millis(45), TracePhase::kEnd, spans::kStateFetch, 1, Stage::kMatching));
  events.push_back(ev(millis(60), TracePhase::kEnd, spans::kService, 1, Stage::kMatching));
  events.push_back(ev(millis(60), TracePhase::kBegin, spans::kSidecarQueue, 2, Stage::kLsh));
  events.push_back(ev(millis(70), TracePhase::kEnd, spans::kSidecarQueue, 2, Stage::kLsh));
  events.push_back(ev(millis(70), TracePhase::kBegin, spans::kService, 2, Stage::kLsh));
  events.push_back(ev(millis(90), TracePhase::kEnd, spans::kService, 2, Stage::kLsh));
  events.push_back(
      ev(millis(90), TracePhase::kComplete, spans::kLink, kNetworkTrack, Stage::kPrimary, millis(10)));
  events.push_back(ev(millis(100), TracePhase::kEnd, spans::kFrameE2e, kClientTrack));

  const CriticalPath cp = extract_critical_path(events);
  EXPECT_TRUE(cp.delivered);
  EXPECT_EQ(cp.verdict, "result");
  EXPECT_EQ(cp.trace_id, 7u);
  EXPECT_EQ(cp.client, 3u);
  EXPECT_NEAR(cp.total_ms(), 100.0, 1e-9);
  EXPECT_EQ(cp.open_spans, 0);
  EXPECT_EQ(cp.orphan_ends, 0);

  EXPECT_NEAR(cp.blame(PathComponent::kUpload), 10.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kSocketBuffer), 10.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kStateFetch), 15.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kService), 45.0, 1e-9);  // 25 matching + 20 lsh
  EXPECT_NEAR(cp.blame(PathComponent::kQueue), 10.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kDownload), 10.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kGap), 0.0, 1e-9);
  EXPECT_NEAR(cp.attributed_ms(), 100.0, 1e-9);

  EXPECT_NEAR(cp.stage_queue_ms[static_cast<std::size_t>(Stage::kPrimary)], 10.0, 1e-9);
  EXPECT_NEAR(cp.stage_queue_ms[static_cast<std::size_t>(Stage::kLsh)], 10.0, 1e-9);
  EXPECT_NEAR(cp.stage_service_ms[static_cast<std::size_t>(Stage::kMatching)], 25.0, 1e-9);
  EXPECT_NEAR(cp.stage_service_ms[static_cast<std::size_t>(Stage::kLsh)], 20.0, 1e-9);

  // Segments tile the envelope: sorted, adjacent, no overlap.
  ASSERT_FALSE(cp.segments.empty());
  EXPECT_EQ(cp.segments.front().start, cp.start);
  EXPECT_EQ(cp.segments.back().end, cp.end);
  for (std::size_t i = 1; i < cp.segments.size(); ++i) {
    EXPECT_EQ(cp.segments[i].start, cp.segments[i - 1].end);
  }
}

// A begin with no end (run clipped mid-flight, replica died): the wait
// was real up to the envelope end, so it is clamped there and counted.
TEST(CriticalPathTest, MissingEndClampsToEnvelopeAndCounts) {
  std::vector<TraceEvent> events;
  events.push_back(ev(millis(0), TracePhase::kBegin, spans::kFrameE2e, kClientTrack));
  events.push_back(ev(millis(10), TracePhase::kBegin, spans::kService, 1, Stage::kSift));
  events.push_back(ev(millis(50), TracePhase::kEnd, spans::kFrameE2e, kClientTrack));

  const CriticalPath cp = extract_critical_path(events);
  EXPECT_TRUE(cp.delivered);
  EXPECT_EQ(cp.open_spans, 1);
  EXPECT_EQ(cp.orphan_ends, 0);
  EXPECT_NEAR(cp.blame(PathComponent::kService), 40.0, 1e-9);  // 10..50 clamped
  EXPECT_NEAR(cp.blame(PathComponent::kGap), 10.0, 1e-9);      // 0..10 uncovered
  EXPECT_NEAR(cp.stage_service_ms[static_cast<std::size_t>(Stage::kSift)], 40.0, 1e-9);
}

// The PR 4 failover shape: a respawned replica finishes a span whose
// begin was recorded on the dead replica's track. The end pairs with
// nothing (pairing is per {track, name, stage}), the begin never
// closes — one orphan end, one clamped open span, no double counting.
TEST(CriticalPathTest, CrossTrackOrphanEndFromFailover) {
  std::vector<TraceEvent> events;
  events.push_back(ev(millis(0), TracePhase::kBegin, spans::kFrameE2e, kClientTrack));
  events.push_back(ev(millis(10), TracePhase::kBegin, spans::kService, 1, Stage::kSift));
  // Respawn finishes "the same" span on its own track.
  events.push_back(ev(millis(30), TracePhase::kEnd, spans::kService, 2, Stage::kSift));
  events.push_back(ev(millis(50), TracePhase::kEnd, spans::kFrameE2e, kClientTrack));

  const CriticalPath cp = extract_critical_path(events);
  EXPECT_TRUE(cp.delivered);
  EXPECT_EQ(cp.open_spans, 1);
  EXPECT_EQ(cp.orphan_ends, 1);
  // The orphan end contributes no interval; only the clamped begin
  // blames service time (10..50).
  EXPECT_NEAR(cp.blame(PathComponent::kService), 40.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kGap), 10.0, 1e-9);
}

// A frame whose chain ends at a drop instant: not delivered, the
// instant's name is the verdict, and the envelope closes at the
// instant so the queue wait that killed it is still attributed.
TEST(CriticalPathTest, DroppedFrameKeepsInstantVerdict) {
  std::vector<TraceEvent> events;
  events.push_back(ev(millis(0), TracePhase::kBegin, spans::kFrameE2e, kClientTrack));
  events.push_back(
      ev(millis(0), TracePhase::kComplete, spans::kLink, kNetworkTrack, Stage::kPrimary, millis(10)));
  events.push_back(ev(millis(10), TracePhase::kBegin, spans::kSidecarQueue, 1, Stage::kSift));
  events.push_back(ev(millis(30), TracePhase::kEnd, spans::kSidecarQueue, 1, Stage::kSift));
  events.push_back(ev(millis(30), TracePhase::kInstant, spans::kDropStale, 1, Stage::kSift));

  const CriticalPath cp = extract_critical_path(events);
  EXPECT_FALSE(cp.delivered);
  EXPECT_EQ(cp.verdict, "drop_stale");
  EXPECT_NEAR(cp.total_ms(), 30.0, 1e-9);
  // Sole link of an undelivered frame is the upload, never download.
  EXPECT_NEAR(cp.blame(PathComponent::kUpload), 10.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kDownload), 0.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kQueue), 20.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kGap), 0.0, 1e-9);
}

// Retransmission recovery outranks the link transit it stalls: the
// rtx_stall overlay claims its slices, the rest stays network.
TEST(CriticalPathTest, RtxStallOutranksLinkTransit) {
  std::vector<TraceEvent> events;
  events.push_back(ev(millis(0), TracePhase::kBegin, spans::kFrameE2e, kClientTrack));
  events.push_back(
      ev(millis(0), TracePhase::kComplete, spans::kLink, kNetworkTrack, Stage::kPrimary, millis(10)));
  events.push_back(
      ev(millis(10), TracePhase::kComplete, spans::kLink, kNetworkTrack, Stage::kSift, millis(30)));
  events.push_back(ev(millis(25), TracePhase::kComplete, spans::kRtxStall, kNetworkTrack,
                      Stage::kSift, millis(15)));
  events.push_back(
      ev(millis(40), TracePhase::kComplete, spans::kLink, kNetworkTrack, Stage::kPrimary, millis(10)));
  events.push_back(ev(millis(50), TracePhase::kEnd, spans::kFrameE2e, kClientTrack));

  const CriticalPath cp = extract_critical_path(events);
  EXPECT_TRUE(cp.delivered);
  EXPECT_NEAR(cp.blame(PathComponent::kUpload), 10.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kNetwork), 15.0, 1e-9);   // 10..25
  EXPECT_NEAR(cp.blame(PathComponent::kRtxStall), 15.0, 1e-9);  // 25..40 overlay wins
  EXPECT_NEAR(cp.blame(PathComponent::kDownload), 10.0, 1e-9);
  EXPECT_NEAR(cp.blame(PathComponent::kGap), 0.0, 1e-9);
}

TEST(CriticalPathTest, RenderIncludesVerdictAndMalformedCounts) {
  std::vector<TraceEvent> events;
  events.push_back(ev(millis(0), TracePhase::kBegin, spans::kFrameE2e, kClientTrack));
  events.push_back(ev(millis(10), TracePhase::kBegin, spans::kService, 1, Stage::kSift));
  events.push_back(ev(millis(50), TracePhase::kEnd, spans::kFrameE2e, kClientTrack));
  const CriticalPath cp = extract_critical_path(events);
  const std::string out = render_critical_path(cp);
  EXPECT_NE(out.find("(result)"), std::string::npos);
  EXPECT_NE(out.find("1 open (clamped)"), std::string::npos);
  EXPECT_NE(out.find("service"), std::string::npos);
}

}  // namespace
}  // namespace mar::telemetry

namespace mar::expt {
namespace {

using telemetry::PathComponent;
using telemetry::TraceEvent;
using telemetry::TracePhase;

TraceEvent frame_ev(SimTime ts, TracePhase phase, const char* name, std::uint32_t trace_id,
                    std::uint32_t track = 1, Stage stage = Stage::kSift) {
  TraceEvent e;
  e.ts = ts;
  e.name = name;
  e.frame = trace_id;
  e.client = 0;
  e.track = track;
  e.trace_id = trace_id;
  e.stage = stage;
  e.phase = phase;
  return e;
}

// Delivered frames with totals 10..100 ms band into p50/p90/p100 (the
// p99 band [0.90, 0.99) is empty at n=10 and must be omitted, not
// emitted with zero frames), and non-result verdicts are counted but
// never banded.
TEST(BlameReportTest, BandsPartitionDeliveredPopulation) {
  TraceLog log;
  for (std::uint32_t id = 1; id <= 10; ++id) {
    const SimTime total = millis(10.0 * id);
    log.events.push_back(
        frame_ev(0, TracePhase::kBegin, telemetry::spans::kFrameE2e, id, 10000 + id));
    log.events.push_back(frame_ev(0, TracePhase::kBegin, telemetry::spans::kService, id));
    log.events.push_back(frame_ev(total, TracePhase::kEnd, telemetry::spans::kService, id));
    log.events.push_back(
        frame_ev(total, TracePhase::kEnd, telemetry::spans::kFrameE2e, id, 10000 + id));
  }
  // One dropped, one clipped mid-flight.
  log.events.push_back(
      frame_ev(0, TracePhase::kBegin, telemetry::spans::kFrameE2e, 11, 10011));
  log.events.push_back(frame_ev(millis(5), TracePhase::kInstant, telemetry::spans::kDropBusy, 11));
  log.events.push_back(
      frame_ev(0, TracePhase::kBegin, telemetry::spans::kFrameE2e, 12, 10012));

  const BlameReport r = build_blame_report(log);
  EXPECT_EQ(r.frames_total, 12);
  EXPECT_EQ(r.frames_delivered, 10);
  EXPECT_EQ(r.frames_dropped, 1);
  EXPECT_EQ(r.frames_incomplete, 1);
  EXPECT_NEAR(r.e2e_p99_ms, 100.0, 1e-9);

  // n=10: p50 takes ranks [0,5), p90 [5,9), p99 [9,9) -> skipped,
  // p100 [9,10). Frames across bands sum to the delivered count.
  ASSERT_EQ(r.bands.size(), 3u);
  EXPECT_EQ(r.bands[0].label, "p50");
  EXPECT_EQ(r.bands[0].frames, 5);
  EXPECT_NEAR(r.bands[0].mean_total_ms, 30.0, 1e-9);  // mean of 10..50
  EXPECT_EQ(r.bands[1].label, "p90");
  EXPECT_EQ(r.bands[1].frames, 4);
  EXPECT_NEAR(r.bands[1].mean_total_ms, 75.0, 1e-9);  // mean of 60..90
  EXPECT_EQ(r.bands[2].label, "p100");
  EXPECT_EQ(r.bands[2].frames, 1);
  EXPECT_NEAR(r.bands[2].max_total_ms, 100.0, 1e-9);
  int banded = 0;
  for (const BlameBand& b : r.bands) banded += b.frames;
  EXPECT_EQ(banded, r.frames_delivered);

  // Every delivered frame was wall-to-wall service time.
  EXPECT_NEAR(r.overall_mean_ms[static_cast<std::size_t>(PathComponent::kService)], 55.0, 1e-9);

  const std::string table = render_blame_table(r);
  EXPECT_NE(table.find("p100"), std::string::npos);
  const std::string json = blame_report_json(r);
  EXPECT_NE(json.find("\"bands\""), std::string::npos);
  EXPECT_NE(json.find("\"frames_delivered\": 10"), std::string::npos);
}

TEST(BurnRateTest, WindowedBurnIsBreachFractionOverBudget) {
  BurnRateConfig cfg;
  cfg.budget = 0.1;
  BurnRate br(cfg);
  EXPECT_DOUBLE_EQ(br.fast_burn(seconds(10.0)), 0.0);  // no samples yet
  for (int t = 1; t <= 10; ++t) {
    br.observe(seconds(static_cast<double>(t)), /*violating=*/t >= 6, 30.0);
  }
  const SimTime now = seconds(10.0);
  // Fast 5 s window holds t=5..10 (6 samples, 5 breached).
  EXPECT_NEAR(br.fast_burn(now), (5.0 / 6.0) / 0.1, 1e-9);
  // Slow 60 s window holds all 10 samples, 5 breached.
  EXPECT_NEAR(br.slow_burn(now), (5.0 / 10.0) / 0.1, 1e-9);
}

TEST(BurnRateTest, TrendIsExactOnLinearIngress) {
  BurnRate br;
  // Fewer than 3 samples: no fit.
  br.observe(seconds(1.0), false, 10.0);
  br.observe(seconds(2.0), false, 12.0);
  EXPECT_DOUBLE_EQ(br.ingress_trend_fps_per_s(seconds(2.0)), 0.0);
  // Linear series at 2 fps/s: least squares recovers the slope exactly.
  for (int t = 3; t <= 9; ++t) {
    br.observe(seconds(static_cast<double>(t)), false, 8.0 + 2.0 * t);
  }
  EXPECT_NEAR(br.ingress_trend_fps_per_s(seconds(9.0)), 2.0, 1e-9);
  // Flat series: slope 0.
  BurnRate flat;
  for (int t = 0; t < 5; ++t) {
    flat.observe(seconds(static_cast<double>(t)), false, 30.0);
  }
  EXPECT_NEAR(flat.ingress_trend_fps_per_s(seconds(4.0)), 0.0, 1e-9);
}

TEST(BurnRateTest, EvictsSamplesBeyondRetention) {
  BurnRate br;  // keep = max(slow 60 s, trend 10 s)
  br.observe(seconds(0.0), true, 30.0);
  EXPECT_EQ(br.samples(), 1u);
  br.observe(seconds(200.0), false, 30.0);
  EXPECT_EQ(br.samples(), 1u);  // t=0 fell out of every window
  EXPECT_DOUBLE_EQ(br.slow_burn(seconds(200.0)), 0.0);
}

}  // namespace
}  // namespace mar::expt
