// Control-plane coverage: drain-before-decommission semantics,
// PlacementSearch determinism, and the ReOptimizer's closed loop
// (breach scale-up, post-ramp scale-down, fault interaction).
#include <gtest/gtest.h>

#include <algorithm>
#include <string_view>

#include "ctrl/placement_search.h"
#include "ctrl/reoptimizer.h"
#include "ctrl/scale_policy.h"
#include "expt/experiment.h"
#include "fault/fault_plan.h"
#include "telemetry/registry.h"

namespace mar::ctrl {
namespace {

expt::ExperimentConfig base_config(int clients) {
  expt::ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = expt::SymbolicPlacement::single(expt::Site::kE2);
  cfg.num_clients = clients;
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(20.0);
  cfg.seed = 4100;
  return cfg;
}

// A clean drain of a surplus replica under light load loses nothing:
// routing stops immediately, in-flight frames finish, the retire is
// voluntary (not deadline-forced), and the replica never resurrects.
TEST(ScalePolicy, DrainCleanScaleDown) {
  expt::ExperimentConfig cfg = base_config(2);
  expt::Experiment e(cfg);
  e.build();
  const InstanceId added = e.deployment().add_replica(Stage::kSift, e.testbed().e1());

  ScalePolicy::Config sc;
  ScalePolicy policy(e.deployment(), sc);
  e.testbed().runtime().schedule_after(seconds(5.0), [&] { policy.drain(added); });
  e.run();

  auto& orch = e.testbed().orchestrator();
  EXPECT_EQ(policy.drains_begun(), 1u);
  EXPECT_EQ(policy.retired(), 1u);
  EXPECT_EQ(policy.forced_retires(), 0u);
  EXPECT_EQ(policy.drain_frames_lost(), 0u);
  EXPECT_TRUE(orch.is_retired(added));
  EXPECT_FALSE(orch.is_draining(added));
  EXPECT_EQ(orch.live_replicas(Stage::kSift), 1u);
  // The run itself stayed healthy: the surviving replica kept serving.
  EXPECT_GT(e.result().fps_mean, 0.0);
}

// A drain that cannot settle by the deadline is force-retired — and
// the frames it still held are counted as drain losses rather than
// silently vanishing.
TEST(ScalePolicy, DrainDeadlineForcesRetire) {
  expt::ExperimentConfig cfg = base_config(8);  // overloaded: queues stay full
  expt::Experiment e(cfg);
  e.build();
  const InstanceId added = e.deployment().add_replica(Stage::kSift, e.testbed().e1());

  ScalePolicy::Config sc;
  sc.drain_poll = millis(50.0);
  sc.drain_settle = seconds(5.0);     // can never settle before...
  sc.drain_deadline = millis(200.0);  // ...the deadline fires
  ScalePolicy policy(e.deployment(), sc);
  e.testbed().runtime().schedule_after(seconds(5.0), [&] { policy.drain(added); });
  e.run();

  EXPECT_EQ(policy.retired(), 1u);
  EXPECT_EQ(policy.forced_retires(), 1u);
  EXPECT_TRUE(e.testbed().orchestrator().is_retired(added));
  // The forced retire is visible on /metrics.
  const std::string metrics = telemetry::MetricRegistry::instance().prometheus_text();
  EXPECT_NE(metrics.find("mar_ctrl_drain_forced_total"), std::string::npos);
}

// Same seed => same evaluation sequence => same winning plan and the
// same digest, process-independent (tsan label: the capacity engine's
// partition pool runs under thread instrumentation).
TEST(PlacementSearch, Deterministic) {
  PlacementSearchConfig cfg;
  cfg.seed = 77;
  cfg.population = 4;
  cfg.generations = 2;
  cfg.offered_clients = 4;
  cfg.eval_duration = seconds(3.0);

  PlacementSearch a(cfg);
  const PlacementSearch::Result ra = a.run();
  PlacementSearch b(cfg);
  const PlacementSearch::Result rb = b.run();

  EXPECT_GT(ra.evaluations, 0u);
  EXPECT_EQ(ra.best.key(), rb.best.key());
  EXPECT_EQ(ra.best.label(), rb.best.label());
  EXPECT_EQ(ra.digest, rb.digest);
  EXPECT_DOUBLE_EQ(ra.best_score.score, rb.best_score.score);
  // The winner is a real plan: every stage placed, primary unsplit.
  EXPECT_EQ(ra.best.replicas[0], 1);
}

// Sustained SLO breach on an overloaded deployment drives the closed
// loop to scale up the shedding stage.
TEST(ReOptimizer, ScalesUpOnBreach) {
  expt::ExperimentConfig cfg = base_config(8);
  expt::SloTargets slo;
  slo.min_fps = 20.0;  // overloaded scAtteR++ sits well under this
  cfg.slo = slo;
  expt::Experiment e(cfg);
  e.build();

  ScalePolicy policy(e.deployment(), ScalePolicy::Config{});
  ReOptimizerConfig rc;
  rc.interval = millis(500.0);
  rc.breach_ticks = 2;
  rc.cooldown = seconds(2.0);
  ReOptimizer ro(policy, e.slo_watchdog(), rc);
  ro.start();
  e.run();

  EXPECT_GT(ro.scale_up_actions(), 0u);
  EXPECT_GT(e.deployment().instances().size(), 5u);
  const std::string metrics = telemetry::MetricRegistry::instance().prometheus_text();
  EXPECT_NE(metrics.find("mar_ctrl_scale_up_total"), std::string::npos);
}

// When the offered load ramps down, the loop notices the sustained
// quiet window and drains a surplus replica — without losing a frame.
TEST(ReOptimizer, ScaleDownAfterLoadDrop) {
  expt::ExperimentConfig cfg = base_config(6);
  cfg.duration = seconds(30.0);
  expt::Experiment e(cfg);
  e.build();
  e.deployment().add_replica(Stage::kSift, e.testbed().e1());

  ScalePolicy::Config sc;
  sc.down_ingress_fps = 60.0;  // overload: ~150 fps/replica; post-drop: ~25
  ScalePolicy policy(e.deployment(), sc);
  ReOptimizerConfig rc;
  rc.interval = millis(500.0);
  rc.clear_ticks = 3;
  rc.cooldown = seconds(1.0);
  ReOptimizer ro(policy, /*watchdog=*/nullptr, rc);
  ro.start();
  // Ramp down: two thirds of the clients leave mid-run.
  e.testbed().runtime().schedule_after(seconds(12.0), [&] {
    for (std::size_t i = 2; i < e.clients().size(); ++i) e.clients()[i]->stop();
  });
  e.run();

  EXPECT_GT(ro.scale_down_actions(), 0u);
  EXPECT_GT(policy.retired(), 0u);
  EXPECT_EQ(policy.forced_retires(), 0u);
  EXPECT_EQ(policy.drain_frames_lost(), 0u);
  // The retire happened after the ramp-down, not during overload.
  bool down_after_drop = false;
  for (const auto& a : ro.actions()) {
    if (a.kind == CtrlAction::Kind::kScaleDown && a.t > seconds(12.0)) {
      down_after_drop = true;
    }
  }
  EXPECT_TRUE(down_after_drop);
}

// With scale-up capped at the current replica count, a persistent
// breach escalates to the replan arm: a PlacementSearch runs and the
// winning plan is applied live through Orchestrator::move_instance.
TEST(ReOptimizer, CappedBreachEscalatesToReplan) {
  expt::ExperimentConfig cfg = base_config(8);
  expt::Experiment e(cfg);
  e.build();

  ScalePolicy::Config sc;
  sc.max_replicas_per_stage = 1;  // every scale-up attempt is invalid
  ScalePolicy policy(e.deployment(), sc);
  ReOptimizerConfig rc;
  rc.interval = millis(500.0);
  rc.breach_ticks = 2;
  rc.cooldown = seconds(1.0);
  rc.allow_replan = true;
  rc.replan_after_blocked = 2;
  rc.search.population = 4;
  rc.search.generations = 1;
  rc.search.eval_duration = seconds(2.0);
  ReOptimizer ro(policy, /*watchdog=*/nullptr, rc);
  ro.start();
  e.run();

  EXPECT_EQ(ro.scale_up_actions(), 0u);
  EXPECT_GE(ro.replans(), 1u);
  // The C2 seed placement differs from the search winner somewhere, so
  // at least one replica was actually rebuilt on a new machine.
  EXPECT_GT(e.testbed().orchestrator().instance_moves(), 0u);
  const std::string metrics = telemetry::MetricRegistry::instance().prometheus_text();
  EXPECT_NE(metrics.find("mar_ctrl_replan_total"), std::string::npos);
}

// A replica crash during the loop's cooldown must not wedge it: the
// fault hold defers to the failover plane (counted as blocked), and
// once the respawn lands the loop acts again.
TEST(ReOptimizer, CrashDuringCooldownDoesNotWedge) {
  expt::ExperimentConfig cfg = base_config(8);
  cfg.duration = seconds(25.0);
  cfg.fault_plan = fault::FaultPlan::parse("crash@6s:stage=sift,replica=0").value();
  cfg.failover = orchestra::FailoverConfig{};
  expt::Experiment e(cfg);
  e.build();

  ScalePolicy policy(e.deployment(), ScalePolicy::Config{});
  ReOptimizerConfig rc;
  rc.interval = millis(500.0);
  rc.breach_ticks = 2;
  rc.cooldown = seconds(4.0);  // the crash at 6s lands inside a cooldown
  ReOptimizer ro(policy, /*watchdog=*/nullptr, rc);
  ro.start();
  e.run();

  const expt::ExperimentResult r = e.result();
  EXPECT_GE(r.fault.respawns, 1u);
  // The loop kept acting after the crash: at least one scale-up (or
  // explicitly-counted blocked decision) is timestamped after it.
  bool acted_after_crash = false;
  for (const auto& a : ro.actions()) {
    if (a.t > seconds(6.0)) acted_after_crash = true;
  }
  EXPECT_TRUE(acted_after_crash);
  EXPECT_GE(ro.scale_up_actions(), 1u);
}

// The predictive arm fires on burn + rising ingress agreement during a
// staggered client ramp — before the reactive drop trigger would — and
// stamps its actions with the "predictive" reason.
TEST(ReOptimizer, PredictiveFiresOnRampBeforeDrops) {
  expt::ExperimentConfig cfg = base_config(4);
  cfg.client_stagger = seconds(2.0);  // offered load ramps up
  cfg.duration = seconds(12.0);
  expt::SloTargets slo;
  slo.min_fps = 24.0;
  slo.max_e2e_p99_ms = 120.0;
  cfg.slo = slo;
  expt::Experiment e(cfg);
  e.build();

  ScalePolicy::Config sc;
  sc.max_replicas_per_stage = 2;
  ScalePolicy policy(e.deployment(), sc);
  ReOptimizerConfig rc;
  rc.interval = millis(250.0);
  rc.breach_ticks = 3;
  rc.cooldown = seconds(2.0);
  rc.predictive = true;
  rc.predict_ticks = 2;
  ReOptimizer ro(policy, e.slo_watchdog(), rc);
  ro.start();
  e.run();

  EXPECT_GE(ro.predictive_scale_ups(), 1u);
  bool tagged = false;
  for (const auto& a : ro.actions()) {
    if (a.kind == CtrlAction::Kind::kScaleUp &&
        std::string_view(a.reason) == "predictive") {
      tagged = true;
    }
  }
  EXPECT_TRUE(tagged);
  // The forecast state the decision came from is inspectable.
  EXPECT_GT(ro.burn_rate().samples(), 0u);
  const std::string metrics = telemetry::MetricRegistry::instance().prometheus_text();
  EXPECT_NE(metrics.find("mar_ctrl_predictive_total"), std::string::npos);
  EXPECT_NE(metrics.find("mar_slo_burn_rate"), std::string::npos);
  // The /statusz action log names the predictive firing too (render
  // the full history: cooldown-blocked ticks crowd the newest slots).
  const std::string log = render_recent_actions(ro, ro.actions().size());
  EXPECT_NE(log.find("predictive"), std::string::npos);
}

// A flat, healthy workload gives the predictive arm nothing to act on:
// no burn, no rising trend, zero control actions of any kind.
TEST(ReOptimizer, PredictiveQuietOnFlatLoad) {
  expt::ExperimentConfig cfg = base_config(1);
  cfg.duration = seconds(10.0);
  expt::SloTargets slo;
  slo.min_fps = 24.0;
  slo.max_e2e_p99_ms = 120.0;
  cfg.slo = slo;
  expt::Experiment e(cfg);
  e.build();

  ScalePolicy policy(e.deployment(), ScalePolicy::Config{});
  ReOptimizerConfig rc;
  rc.interval = millis(250.0);
  rc.breach_ticks = 3;
  rc.cooldown = seconds(2.0);
  rc.predictive = true;
  rc.predict_ticks = 2;
  ReOptimizer ro(policy, e.slo_watchdog(), rc);
  ro.start();
  e.run();

  EXPECT_EQ(ro.predictive_scale_ups(), 0u);
  EXPECT_TRUE(ro.actions().empty());
}

}  // namespace
}  // namespace mar::ctrl
