#include <gtest/gtest.h>

#include "expt/slo.h"

namespace mar::expt {
namespace {

// 30 FPS of successful frames over [from, to) at 20 ms E2E.
void feed_healthy(SloWatchdog& w, SimTime from, SimTime to) {
  const SimDuration step = millis(1000.0 / 30.0);
  for (SimTime t = from; t < to; t += step) w.observe_frame(t, 20.0, true);
}

SloTargets fps_target(double min_fps) {
  SloTargets t;
  t.min_fps = min_fps;
  t.window = seconds(2.0);
  t.warmup = seconds(1.0);
  return t;
}

TEST(SloWatchdog, HealthyStreamNeverTransitions) {
  SloWatchdog w(fps_target(25.0), "test", 1);
  feed_healthy(w, 0, seconds(5.0));
  EXPECT_FALSE(w.evaluate(seconds(5.0)));
  EXPECT_EQ(w.transitions(), 0u);
  EXPECT_EQ(w.violations_entered(), 0u);
  EXPECT_NEAR(w.window_fps(), 30.0, 1.0);
  EXPECT_NEAR(w.window_p99_ms(), 20.0, 1e-9);
}

TEST(SloWatchdog, EdgeTriggeredTransitionCycle) {
  SloWatchdog w(fps_target(25.0), "test", 1);

  // Healthy stream for 4 s.
  feed_healthy(w, 0, seconds(4.0));
  EXPECT_FALSE(w.evaluate(seconds(4.0)));

  // Starvation: repeated evaluations while no frames arrive must count
  // ONE violation edge, not one per tick.
  for (double t = 4.1; t < 8.0; t += 0.1) {
    w.evaluate(seconds(t));
  }
  EXPECT_TRUE(w.violating());
  EXPECT_EQ(w.transitions(), 1u);
  EXPECT_EQ(w.violations_entered(), 1u);

  // Recovery: a fresh healthy window flips back exactly once.
  feed_healthy(w, seconds(8.0), seconds(11.0));
  for (double t = 10.0; t < 11.0; t += 0.1) {
    w.evaluate(seconds(t));
  }
  EXPECT_FALSE(w.violating());
  EXPECT_EQ(w.transitions(), 2u);
  EXPECT_EQ(w.violations_entered(), 1u);  // recovery is not an "entered" edge
}

TEST(SloWatchdog, WarmupSuppressesEarlyEvaluation) {
  SloWatchdog w(fps_target(25.0), "test", 1);
  // One lonely frame: window FPS is far below target, but the warmup
  // keeps the watchdog quiet until 1 s after the first observation.
  w.observe_frame(millis(10.0), 20.0, false);
  EXPECT_FALSE(w.evaluate(millis(500.0)));
  EXPECT_EQ(w.transitions(), 0u);
  EXPECT_TRUE(w.evaluate(seconds(2.0)));
  EXPECT_EQ(w.violations_entered(), 1u);
}

TEST(SloWatchdog, FailedFramesDoNotCountTowardFps) {
  SloTargets targets = fps_target(15.0);
  SloWatchdog w(targets, "test", 1);
  // 30 FPS delivered but every second frame failed -> 15 FPS effective,
  // right at the threshold; all-failed would be 0 and violating.
  const SimDuration step = millis(1000.0 / 30.0);
  bool ok = true;
  for (SimTime t = 0; t < seconds(3.0); t += step) {
    w.observe_frame(t, 20.0, ok);
    ok = !ok;
  }
  w.evaluate(seconds(3.0));
  EXPECT_NEAR(w.window_fps(), 15.0, 1.0);
}

TEST(SloWatchdog, LatencyTargetUsesWindowP99) {
  SloTargets targets;
  targets.max_e2e_p99_ms = 50.0;
  targets.window = seconds(2.0);
  targets.warmup = 0;
  SloWatchdog w(targets, "test", 1);

  for (int i = 0; i < 100; ++i) w.observe_frame(millis(10.0 * i), 20.0, true);
  EXPECT_FALSE(w.evaluate(seconds(1.0)));

  // A burst of 200 ms frames pushes the window p99 over target.
  for (int i = 0; i < 100; ++i) w.observe_frame(seconds(1.0) + millis(5.0 * i), 200.0, true);
  EXPECT_TRUE(w.evaluate(seconds(1.5)));
  EXPECT_GT(w.window_p99_ms(), 50.0);
  EXPECT_EQ(w.violations_entered(), 1u);
}

TEST(SloWatchdog, PerClientFpsDivision) {
  SloTargets targets = fps_target(20.0);
  targets.warmup = 0;
  SloWatchdog w(targets, "test", 2);
  // 30 aggregate FPS over 2 clients = 15 per client < 20 -> violating.
  feed_healthy(w, 0, seconds(3.0));
  EXPECT_TRUE(w.evaluate(seconds(3.0)));
  EXPECT_NEAR(w.window_fps(), 15.0, 1.0);
}

TEST(SloWatchdog, ZeroTargetsDisableChecks) {
  SloTargets targets;  // both targets 0 = disabled
  targets.warmup = 0;
  SloWatchdog w(targets, "test", 1);
  w.observe_frame(0, 5000.0, false);
  EXPECT_FALSE(w.evaluate(seconds(5.0)));
  EXPECT_EQ(w.transitions(), 0u);
}

}  // namespace
}  // namespace mar::expt
