#include <gtest/gtest.h>

#include <algorithm>

#include "expt/experiment.h"
#include "expt/table.h"
#include "expt/testbed.h"

namespace mar::expt {
namespace {

// --- testbed ------------------------------------------------------------------

TEST(Testbed, BuildsPaperTopology) {
  Testbed tb;
  EXPECT_EQ(tb.orchestrator().num_machines(), 4u);  // E1, E2, cloud, client NUC
  EXPECT_EQ(tb.orchestrator().machine(tb.e1()).spec().name, "E1");
  EXPECT_EQ(tb.orchestrator().machine(tb.e2()).spec().name, "E2");
  EXPECT_EQ(tb.orchestrator().machine(tb.cloud()).spec().name, "Cloud");
}

TEST(Testbed, AccessPresetsMatchPaper) {
  const auto lte = TestbedConfig::access_lte();
  EXPECT_EQ(lte.latency, millis(20.0));  // 40 ms RTT
  EXPECT_NEAR(lte.loss_rate, 0.0008, 1e-9);
  EXPECT_EQ(lte.oscillation_delay, millis(10.0));
  EXPECT_NEAR(lte.oscillation_prob, 0.2, 1e-9);

  const auto g5 = TestbedConfig::access_5g();
  EXPECT_EQ(g5.latency, millis(5.0));  // 10 ms RTT
  const auto wifi = TestbedConfig::access_wifi6();
  EXPECT_EQ(wifi.latency, millis(2.5));  // 5 ms RTT
}

TEST(Testbed, CloudPathHasHigherLatencyThanEdge) {
  const TestbedConfig cfg;
  EXPECT_GT(cfg.client_cloud.latency, cfg.client_e1.latency * 5);
  EXPECT_GT(cfg.client_cloud.jitter_stddev, cfg.client_e1.jitter_stddev);
  EXPECT_GT(cfg.edge_cloud.loss_rate, 0.0);
}

// --- placements -----------------------------------------------------------------

TEST(Placement, SingleSiteLabel) {
  const SymbolicPlacement p = SymbolicPlacement::single(Site::kE1);
  EXPECT_EQ(p.to_label(), "[E1,E1,E1,E1,E1]");
  for (const auto& r : p.replicas) EXPECT_EQ(r.size(), 1u);
}

TEST(Placement, PerStage) {
  const SymbolicPlacement p = SymbolicPlacement::per_stage(
      {Site::kE1, Site::kE1, Site::kE2, Site::kE2, Site::kCloud});
  EXPECT_EQ(p.to_label(), "[E1,E1,E2,E2,C]");
}

TEST(Placement, ReplicatedCountsAndAlternation) {
  const SymbolicPlacement p = SymbolicPlacement::replicated({1, 3, 2, 1, 2});
  EXPECT_EQ(p.to_label(), "[E2,3,2,E2,2]");
  EXPECT_EQ(p.replicas[1].size(), 3u);
  EXPECT_EQ(p.replicas[1][0], Site::kE2);  // base on E2
  EXPECT_EQ(p.replicas[1][1], Site::kE1);  // extras alternate to E1
  EXPECT_EQ(p.replicas[1][2], Site::kE2);
}

TEST(Placement, ResolvesToMachines) {
  Testbed tb;
  const PlacementConfig cfg = SymbolicPlacement::single(Site::kCloud).resolve(tb);
  for (const auto& r : cfg.replicas) {
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], tb.cloud());
  }
}

// --- experiment ------------------------------------------------------------------

TEST(Experiment, ShortRunProducesConsistentResult) {
  ExperimentConfig cfg;
  cfg.num_clients = 2;
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(5.0);
  cfg.seed = 3;
  const ExperimentResult r = run_experiment(cfg);

  EXPECT_EQ(r.per_client_fps.size(), 2u);
  EXPECT_GT(r.fps_mean, 5.0);
  EXPECT_LE(r.fps_mean, 31.0);
  EXPECT_GT(r.e2e_ms_mean, 10.0);
  EXPECT_GT(r.success_rate, 0.3);
  EXPECT_LE(r.success_rate, 1.0);
  EXPECT_EQ(r.services.size(), 5u);
  EXPECT_EQ(r.machines.size(), 4u);
}

TEST(Experiment, SameSeedIsReproducible) {
  ExperimentConfig cfg;
  cfg.num_clients = 2;
  cfg.duration = seconds(5.0);
  cfg.seed = 99;
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.fps_mean, b.fps_mean);
  EXPECT_EQ(a.e2e_ms_mean, b.e2e_ms_mean);
  EXPECT_EQ(a.success_rate, b.success_rate);
}

TEST(Experiment, DifferentSeedsVary) {
  ExperimentConfig cfg;
  cfg.num_clients = 2;
  cfg.duration = seconds(5.0);
  cfg.seed = 1;
  const ExperimentResult a = run_experiment(cfg);
  cfg.seed = 2;
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_NE(a.e2e_ms_mean, b.e2e_ms_mean);
}

TEST(Experiment, ServiceReportsCoverAllStages) {
  ExperimentConfig cfg;
  cfg.duration = seconds(3.0);
  Experiment e(cfg);
  e.run();
  const ExperimentResult r = e.result();
  std::array<int, kNumStages> seen{};
  for (const auto& s : r.services) ++seen[static_cast<std::size_t>(s.stage)];
  for (int count : seen) EXPECT_EQ(count, 1);
  for (const auto& s : r.services) {
    EXPECT_FALSE(s.machine.empty());
    EXPECT_GT(s.mem_gb_mean, 0.0);
  }
}

TEST(Experiment, StageAggregationSumsReplicas) {
  ExperimentResult r;
  ServiceReport a;
  a.stage = Stage::kSift;
  a.mem_gb_mean = 1.0;
  a.cpu_share = 0.1;
  a.drop_ratio = 0.5;
  a.received = 100;
  ServiceReport b = a;
  b.mem_gb_mean = 2.0;
  b.drop_ratio = 0.0;
  b.received = 300;
  r.services = {a, b};
  EXPECT_DOUBLE_EQ(r.stage_mem_gb(Stage::kSift), 3.0);
  EXPECT_DOUBLE_EQ(r.stage_cpu_share(Stage::kSift), 0.2);
  // Weighted drop ratio: (0.5*100 + 0*300) / 400.
  EXPECT_DOUBLE_EQ(r.stage_drop_ratio(Stage::kSift), 0.125);
  EXPECT_EQ(r.stage_mem_gb(Stage::kLsh), 0.0);
}

TEST(Experiment, StaggeredClientsStartLate) {
  ExperimentConfig cfg;
  cfg.num_clients = 3;
  cfg.warmup = 0;
  cfg.duration = seconds(10.0);
  cfg.client_stagger = seconds(3.0);
  Experiment e(cfg);
  e.run();
  // Client 2 starts at ~6 s: it can have sent at most ~4 s of frames.
  const auto& clients = e.clients();
  EXPECT_GT(clients[0]->stats().frames_sent, clients[2]->stats().frames_sent * 2);
}

TEST(Experiment, UtilizationSamplerPopulatesTimelines) {
  ExperimentConfig cfg;
  cfg.duration = seconds(5.0);
  cfg.utilization_sample_interval = seconds(1.0);
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_FALSE(r.timelines.empty());
  for (const MachineTimeline& t : r.timelines) {
    EXPECT_FALSE(t.machine.empty());
    ASSERT_GE(t.points.size(), 4u);
    for (const UtilizationPoint& p : t.points) {
      EXPECT_GE(p.cpu, 0.0);
      EXPECT_LE(p.cpu, 1.0 + 1e-9);
      EXPECT_GE(p.gpu, 0.0);
      EXPECT_LE(p.gpu, 1.0 + 1e-9);
      EXPECT_GE(p.mem_gb, 0.0);
      EXPECT_GE(p.state_gb, 0.0);
    }
    // Sample times advance monotonically through the window.
    for (std::size_t i = 1; i < t.points.size(); ++i) {
      EXPECT_GT(t.points[i].t_s, t.points[i - 1].t_s);
    }
  }
  EXPECT_TRUE(std::any_of(r.machines.begin(), r.machines.end(),
                          [](const MachineReport& m) { return m.cpu_peak > 0.0; }));
}

TEST(Experiment, SamplerOffLeavesTimelinesEmpty) {
  ExperimentConfig cfg;
  cfg.duration = seconds(3.0);
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.timelines.empty());
}

// The sampler only reads pool integrals — turning it on must not
// perturb the simulation itself. Bit-identical QoS, not just close.
TEST(Experiment, UtilizationSamplerPreservesBitIdentity) {
  ExperimentConfig base;
  base.num_clients = 2;
  base.duration = seconds(5.0);
  base.seed = 42;
  const ExperimentResult off = run_experiment(base);

  ExperimentConfig sampled = base;
  sampled.utilization_sample_interval = millis(250.0);
  const ExperimentResult on = run_experiment(sampled);

  EXPECT_EQ(off.fps_mean, on.fps_mean);
  EXPECT_EQ(off.e2e_ms_mean, on.e2e_ms_mean);
  EXPECT_EQ(off.success_rate, on.success_rate);
  ASSERT_EQ(off.per_client_fps.size(), on.per_client_fps.size());
  for (std::size_t i = 0; i < off.per_client_fps.size(); ++i) {
    EXPECT_EQ(off.per_client_fps[i], on.per_client_fps[i]);
  }
}

TEST(Experiment, SloWatchdogReportsThroughResult) {
  ExperimentConfig cfg;
  cfg.num_clients = 4;  // overloaded single-E2 placement
  cfg.placement = SymbolicPlacement::single(Site::kE2);
  cfg.duration = seconds(10.0);
  cfg.seed = 7;
  SloTargets slo;
  slo.min_fps = 25.0;  // the collapse makes this unattainable at n=4
  cfg.slo = slo;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.slo.enabled);
  EXPECT_TRUE(r.slo.violating);
  EXPECT_GE(r.slo.violations_entered, 1u);
  EXPECT_GE(r.slo.transitions, r.slo.violations_entered);
  EXPECT_LT(r.slo.window_fps, 25.0);
}

TEST(Experiment, SloOffByDefault) {
  ExperimentConfig cfg;
  cfg.duration = seconds(2.0);
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_FALSE(r.slo.enabled);
  EXPECT_EQ(r.slo.transitions, 0u);
}

TEST(Experiment, MonitorFlagCollectsSamples) {
  ExperimentConfig cfg;
  cfg.duration = seconds(4.0);
  cfg.monitor = true;
  Experiment e(cfg);
  e.run();
  EXPECT_GT(e.testbed().orchestrator().monitor_samples().size(), 2u);
}

// --- table -----------------------------------------------------------------------

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumAndPctHelpers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
}

TEST(Table, ShortRowsPad) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

}  // namespace
}  // namespace mar::expt
