// Capacity-planning engine determinism and model validation: identical
// results at every thread count, fluid-vs-detailed agreement, the
// scAtteR-vs-scAtteR++ density ordering, the population workload
// generator, and ExperimentResult JSON bit-identity under MAR_THREADS.
// Carries the `tsan` ctest label: the partitioned runs inside must be
// clean under thread instrumentation.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "expt/capacity.h"
#include "expt/experiment.h"
#include "expt/population.h"
#include "expt/report.h"
#include "fault/fault_plan.h"

namespace mar::expt {
namespace {

// Small but non-degenerate: 3 machines, roaming probes (cross-partition
// traffic), a live fluid tail.
CapacityConfig small_config(core::PipelineMode mode = core::PipelineMode::kScatterPP) {
  CapacityConfig cfg;
  cfg.mode = mode;
  cfg.machines = 3;
  cfg.detailed_clients = 6;
  cfg.roaming_fraction = 0.34;
  cfg.population.mean_population = 9.0;
  cfg.population.session_mean_s = 20.0;
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(8.0);
  cfg.seed = 42;
  return cfg;
}

CapacityResult run_capacity(const CapacityConfig& cfg, int threads) {
  set_parallel_threads(threads);
  CapacityEngine engine(cfg);
  CapacityResult r = engine.run(threads);
  set_parallel_threads(0);
  return r;
}

void expect_identical(const CapacityResult& a, const CapacityResult& b, int threads) {
  EXPECT_EQ(a.digest, b.digest) << "threads=" << threads;
  EXPECT_EQ(a.events_fired, b.events_fired) << "threads=" << threads;
  EXPECT_EQ(a.messages_posted, b.messages_posted) << "threads=" << threads;
  EXPECT_EQ(a.windows_run, b.windows_run) << "threads=" << threads;
  // Doubles compared exactly: the claim is bit-identity, not tolerance.
  EXPECT_EQ(a.detailed_fps_mean, b.detailed_fps_mean) << "threads=" << threads;
  EXPECT_EQ(a.detailed_e2e_ms_mean, b.detailed_e2e_ms_mean) << "threads=" << threads;
  EXPECT_EQ(a.detailed_success_rate, b.detailed_success_rate) << "threads=" << threads;
  EXPECT_EQ(a.fluid_session_fps, b.fluid_session_fps) << "threads=" << threads;
  EXPECT_EQ(a.fluid_sessions_mean, b.fluid_sessions_mean) << "threads=" << threads;
  EXPECT_EQ(a.fluid_frames_served, b.fluid_frames_served) << "threads=" << threads;
  ASSERT_EQ(a.machine_reports.size(), b.machine_reports.size());
  for (std::size_t m = 0; m < a.machine_reports.size(); ++m) {
    EXPECT_EQ(a.machine_reports[m].gpu_util, b.machine_reports[m].gpu_util);
    EXPECT_EQ(a.machine_reports[m].mem_gb_mean, b.machine_reports[m].mem_gb_mean);
    ASSERT_EQ(a.machine_reports[m].timeline.size(), b.machine_reports[m].timeline.size());
    for (std::size_t i = 0; i < a.machine_reports[m].timeline.size(); ++i) {
      EXPECT_EQ(a.machine_reports[m].timeline[i].gpu, b.machine_reports[m].timeline[i].gpu);
      EXPECT_EQ(a.machine_reports[m].timeline[i].sessions,
                b.machine_reports[m].timeline[i].sessions);
    }
  }
}

TEST(CapacityEngine, ResultBitIdenticalAcrossThreadCounts) {
  const CapacityResult sequential = run_capacity(small_config(), 1);
  EXPECT_GT(sequential.events_fired, 0u);
  EXPECT_GT(sequential.messages_posted, 0u);  // roaming probes crossed partitions
  EXPECT_EQ(sequential.lookahead_violations, 0u);
  for (const int threads : {2, 4, 8}) {
    expect_identical(run_capacity(small_config(), threads), sequential, threads);
  }
}

TEST(CapacityEngine, ScatterModeIsAlsoDeterministic) {
  const CapacityConfig cfg = small_config(core::PipelineMode::kScatter);
  const CapacityResult sequential = run_capacity(cfg, 1);
  expect_identical(run_capacity(cfg, 4), sequential, 4);
}

TEST(CapacityEngine, FluidTailAgreesWithDetailedProbes) {
  // Moderate (non-saturated, balanced) load: the fluid cohort and the
  // per-frame probes describe the same population, so their
  // served/offered ratios must agree. Each E2 box serves ~82 fps; one
  // probe + 1.5 fluid sessions offer ~63 fps (~76% utilization).
  // roaming 1.0 makes every probe serve on the next machine over —
  // cross-partition traffic while keeping the per-box load symmetric.
  // Saturated or skewed configs diverge by design — probes hold pool
  // priority over the fluid tail.
  CapacityConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.machines = 2;
  cfg.detailed_clients = 2;
  cfg.roaming_fraction = 1.0;
  cfg.population.mean_population = 3.0;
  cfg.population.session_mean_s = 20.0;
  cfg.duration = seconds(20.0);
  const CapacityResult r = run_capacity(cfg, 2);

  ASSERT_GT(r.fluid_target_fps, 0.0);
  ASSERT_GT(r.detailed_target_fps_mean, 0.0);
  const double fluid_ratio = r.fluid_session_fps / r.fluid_target_fps;
  const double detailed_ratio = r.detailed_fps_mean / r.detailed_target_fps_mean;
  ASSERT_GE(fluid_ratio, 0.5) << "tail starved: agreement comparison not meaningful";
  EXPECT_NEAR(detailed_ratio, fluid_ratio, 0.05);
  EXPECT_GT(r.messages_posted, 0u);  // the probes really did roam
}

TEST(CapacityEngine, DropWhenBusyPacksFewerClientsThanSidecarQueue) {
  CapacityConfig cfg;
  cfg.machines = 1;
  cfg.detailed_clients = 0;
  cfg.population.mean_population = 0.0;  // plan_machines drives its own probes
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(6.0);

  cfg.mode = core::PipelineMode::kScatter;
  const CapacityPlan scatter = CapacityEngine::plan_machines(cfg);
  cfg.mode = core::PipelineMode::kScatterPP;
  const CapacityPlan scatterpp = CapacityEngine::plan_machines(cfg);

  // Periodic streams collide; drop-when-busy loses those frames while
  // the sidecar queue absorbs them, so scAtteR++ packs more clients on
  // the same box and needs fewer machines per 100k users.
  EXPECT_GT(scatter.clients_per_box, 0);
  EXPECT_GT(scatterpp.clients_per_box, scatter.clients_per_box);
  EXPECT_LT(scatterpp.machines_per_100k, scatter.machines_per_100k);
  EXPECT_EQ(scatter.binding_constraint, "gpu");
  EXPECT_EQ(scatterpp.binding_constraint, "gpu");
  // scAtteR's per-session sift state dwarfs the sidecar buffer, so its
  // memory ceiling is far lower — even though GPU binds first on E2.
  EXPECT_LT(scatter.memory_bound_clients, scatterpp.memory_bound_clients);
}

TEST(CapacityEngine, SessionMemoryFollowsModeMechanism) {
  const CapacityConfig cfg = small_config();
  // scAtteR retains fps * state_timeout sift entries per session;
  // scAtteR++ pins one sidecar client buffer.
  const std::uint64_t scatter =
      CapacityEngine::session_memory_bytes(cfg, core::PipelineMode::kScatter);
  const std::uint64_t scatterpp =
      CapacityEngine::session_memory_bytes(cfg, core::PipelineMode::kScatterPP);
  EXPECT_EQ(scatterpp, cfg.costs.sidecar_client_buffer_bytes);
  const double expected = cfg.target_fps * to_seconds(cfg.costs.state_timeout) *
                          static_cast<double>(cfg.costs.state_entry_bytes);
  EXPECT_NEAR(static_cast<double>(scatter), expected, expected * 0.01);
  EXPECT_GT(scatter, scatterpp);
}

// --- population workload generator ------------------------------------------

TEST(PopulationModel, DefaultMixOffersPaperFrameRate) {
  PopulationModel model(PopulationConfig{}, 1);
  EXPECT_NEAR(model.mean_session_fps(), 25.0, 1e-9);
  double total = 0.0;
  for (const DeviceClass& d : model.mix()) total += d.weight;
  EXPECT_NEAR(total, 1.0, 1e-12);  // weights normalized
}

TEST(PopulationModel, DiurnalRateOscillatesAroundBase) {
  PopulationConfig cfg;
  cfg.mean_population = 3'000.0;
  cfg.session_mean_s = 300.0;
  cfg.diurnal_amplitude = 0.3;
  PopulationModel model(cfg, 1);
  const double base = cfg.mean_population / cfg.session_mean_s;  // 10/s
  double lo = 1e30;
  double hi = -1e30;
  for (int i = 0; i < 200; ++i) {
    const double r = model.arrival_rate(seconds(i * (86'400.0 / 200.0)));
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    EXPECT_GE(r, 0.0);
  }
  EXPECT_NEAR(lo, base * 0.7, base * 0.02);
  EXPECT_NEAR(hi, base * 1.3, base * 0.02);
  EXPECT_NEAR(model.expected_population(0), cfg.mean_population, cfg.mean_population * 0.02);
}

TEST(PopulationModel, SampledArrivalsAreSeedDeterministic) {
  PopulationConfig cfg;
  cfg.mean_population = 600.0;
  cfg.session_mean_s = 60.0;  // 10 arrivals/s
  PopulationModel a(cfg, 7);
  PopulationModel b(cfg, 7);
  PopulationModel c(cfg, 8);
  std::size_t total = 0;
  for (int w = 0; w < 20; ++w) {
    const auto arr_a = a.sample_arrivals(seconds(w * 1.0), seconds(w * 1.0 + 1.0));
    const auto arr_b = b.sample_arrivals(seconds(w * 1.0), seconds(w * 1.0 + 1.0));
    ASSERT_EQ(arr_a.size(), arr_b.size());
    for (std::size_t i = 0; i < arr_a.size(); ++i) {
      EXPECT_EQ(arr_a[i].at, arr_b[i].at);
      EXPECT_EQ(arr_a[i].duration, arr_b[i].duration);
      EXPECT_EQ(arr_a[i].device_class, arr_b[i].device_class);
      EXPECT_GE(arr_a[i].at, seconds(w * 1.0));
      EXPECT_LT(arr_a[i].at, seconds(w * 1.0 + 1.0));
    }
    total += arr_a.size();
  }
  EXPECT_NEAR(static_cast<double>(total), 200.0, 60.0);  // ~10/s over 20 s
  // A different seed must actually change the stream: compare the full
  // arrival-time sequence, not just counts (which can collide).
  std::vector<SimTime> times_a;
  PopulationModel a2(cfg, 7);
  for (int w = 0; w < 20; ++w) {
    for (const auto& s : a2.sample_arrivals(seconds(w * 1.0), seconds(w * 1.0 + 1.0))) {
      times_a.push_back(s.at);
    }
  }
  std::vector<SimTime> times_c;
  for (int w = 0; w < 20; ++w) {
    for (const auto& s : c.sample_arrivals(seconds(w * 1.0), seconds(w * 1.0 + 1.0))) {
      times_c.push_back(s.at);
    }
  }
  EXPECT_NE(times_a, times_c);
}

TEST(PopulationModel, RampStartsSpreadLinearly) {
  const auto starts = PopulationModel::ramp_starts(4, seconds(8.0));
  ASSERT_EQ(starts.size(), 4u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], seconds(2.0));
  EXPECT_EQ(starts[3], seconds(6.0));  // last client starts before ramp end
  EXPECT_TRUE(PopulationModel::ramp_starts(0, seconds(5.0)).empty());
}

// --- ExperimentResult JSON bit-identity under MAR_THREADS -------------------

ExperimentConfig json_config() {
  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = SymbolicPlacement::single(Site::kE2);
  cfg.num_clients = 4;
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(12.0);
  cfg.utilization_sample_interval = seconds(2.0);
  cfg.seed = 321;
  return cfg;
}

std::string run_to_json(const ExperimentConfig& cfg, int threads) {
  set_parallel_threads(threads);
  const ExperimentResult r = run_experiment(cfg);
  set_parallel_threads(0);
  return to_json(r);
}

TEST(ExperimentDeterminism, JsonBitIdenticalAcrossThreadCounts) {
  const std::string baseline = run_to_json(json_config(), 1);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(run_to_json(json_config(), threads), baseline) << "threads=" << threads;
  }
}

TEST(ExperimentDeterminism, JsonBitIdenticalWithFaultPlan) {
  ExperimentConfig cfg = json_config();
  const auto plan = fault::FaultPlan::parse("crash@5s:stage=sift,replica=0");
  ASSERT_TRUE(plan.is_ok()) << plan.status().message();
  cfg.fault_plan = plan.value();
  set_parallel_threads(1);
  const ExperimentResult r1 = run_experiment(cfg);
  set_parallel_threads(0);
  // The crash must actually have fired, or the test proves nothing.
  EXPECT_GE(r1.fault.injected, 1u);
  const std::string baseline = to_json(r1);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(run_to_json(cfg, threads), baseline) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace mar::expt
