// Thread-pool unit tests plus bit-identical determinism checks for the
// parallel vision kernels: every kernel must produce exactly the same
// bytes at pool size 1, 2, and hardware_concurrency().
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "vision/engine.h"
#include "vision/fisher.h"
#include "vision/gmm.h"
#include "vision/image.h"
#include "vision/matcher.h"
#include "vision/pca.h"
#include "vision/sift.h"
#include "video/scene.h"

namespace mar::vision {
namespace {

// --- thread pool ---------------------------------------------------------------

class PoolTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

TEST_F(PoolTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.for_range(5, 5, 1, [&](std::int64_t, std::int64_t) { calls.fetch_add(1); });
  pool.for_range(7, 3, 1, [&](std::int64_t, std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(PoolTest, GrainLargerThanRangeIsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::int64_t seen_begin = -1, seen_end = -1;
  pool.for_chunks(2, 9, 100, [&](std::int64_t chunk, std::int64_t i0, std::int64_t i1) {
    calls.fetch_add(1);
    EXPECT_EQ(chunk, 0);
    seen_begin = i0;
    seen_end = i1;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 2);
  EXPECT_EQ(seen_end, 9);
}

TEST_F(PoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_range(0, kN, 7, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST_F(PoolTest, ChunkGridIndependentOfPoolSize) {
  EXPECT_EQ(ThreadPool::num_chunks(0, 100, 7), 15);
  EXPECT_EQ(ThreadPool::num_chunks(0, 0, 7), 0);
  EXPECT_EQ(ThreadPool::num_chunks(3, 4, 100), 1);
  // The grid is a static property: pools of any size see the same chunks.
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<std::int64_t>> bounds(15);
    pool.for_chunks(0, 100, 7, [&](std::int64_t chunk, std::int64_t i0, std::int64_t i1) {
      bounds[static_cast<std::size_t>(chunk)].store(i0 * 1000 + i1);
    });
    for (std::int64_t c = 0; c < 15; ++c) {
      const std::int64_t i0 = c * 7;
      const std::int64_t i1 = std::min<std::int64_t>(100, (c + 1) * 7);
      EXPECT_EQ(bounds[static_cast<std::size_t>(c)].load(), i0 * 1000 + i1);
    }
  }
}

TEST_F(PoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.for_range(0, 100, 1,
                              [](std::int64_t i0, std::int64_t) {
                                if (i0 == 42) throw std::runtime_error("boom");
                              }),
               std::runtime_error);
  // The pool must survive a throwing job and run the next one fully.
  std::atomic<int> count{0};
  pool.for_range(0, 64, 4, [&](std::int64_t i0, std::int64_t i1) {
    count.fetch_add(static_cast<int>(i1 - i0));
  });
  EXPECT_EQ(count.load(), 64);
}

TEST_F(PoolTest, SerialPoolPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.for_range(0, 10, 1,
                     [](std::int64_t, std::int64_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

TEST_F(PoolTest, NestedCallRunsSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.for_range(0, 8, 1, [&](std::int64_t, std::int64_t) {
    pool.for_range(0, 10, 2, [&](std::int64_t i0, std::int64_t i1) {
      inner_total.fetch_add(static_cast<int>(i1 - i0));
    });
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST_F(PoolTest, GlobalPoolIsReusedAcrossCalls) {
  set_parallel_threads(4);
  ThreadPool* first = &global_pool();
  EXPECT_EQ(parallel_threads(), 4);

  // If the pool respawned threads per call, new thread ids would keep
  // appearing; a fixed worker set stays within `size()` distinct ids.
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int run = 0; run < 20; ++run) {
    parallel_for(0, 64, 1, [&](std::int64_t, std::int64_t) {
      std::lock_guard<std::mutex> lk(mu);
      ids.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(&global_pool(), first);
  }
  EXPECT_LE(ids.size(), 4u);
}

TEST_F(PoolTest, MarThreadsEnvOverridesDefault) {
  ::setenv("MAR_THREADS", "3", 1);
  set_parallel_threads(0);  // re-derive the default sizing
  EXPECT_EQ(parallel_threads(), 3);
  ::unsetenv("MAR_THREADS");
  set_parallel_threads(0);
  EXPECT_GE(parallel_threads(), 1);
}

// --- kernel determinism --------------------------------------------------------

Image test_frame() {
  static const Image frame = [] {
    video::WorkplaceScene scene(640, 360);
    return resize(scene.render(0.0), 480, 270);
  }();
  return frame;
}

std::vector<int> pool_sizes() {
  const int hc = static_cast<int>(std::thread::hardware_concurrency());
  return {1, 2, std::max(hc, 1)};
}

void expect_images_identical(const Image& a, const Image& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "pixel " << i;
  }
}

void expect_features_identical(const FeatureList& a, const FeatureList& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].keypoint.x, b[i].keypoint.x) << i;
    ASSERT_EQ(a[i].keypoint.y, b[i].keypoint.y) << i;
    ASSERT_EQ(a[i].keypoint.scale, b[i].keypoint.scale) << i;
    ASSERT_EQ(a[i].keypoint.angle, b[i].keypoint.angle) << i;
    ASSERT_EQ(a[i].keypoint.response, b[i].keypoint.response) << i;
    ASSERT_EQ(a[i].keypoint.octave, b[i].keypoint.octave) << i;
    for (int j = 0; j < kDescriptorDim; ++j) {
      ASSERT_EQ(a[i].descriptor[static_cast<std::size_t>(j)],
                b[i].descriptor[static_cast<std::size_t>(j)])
          << "feature " << i << " dim " << j;
    }
  }
}

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

TEST_F(DeterminismTest, BlurAndResizeBitIdenticalAcrossPoolSizes) {
  const Image frame = test_frame();
  set_parallel_threads(1);
  const Image blur_serial = gaussian_blur(frame, 1.6f);
  const Image resize_serial = resize(frame, 123, 77);
  const Image dog_serial = subtract(blur_serial, frame);
  for (int n : pool_sizes()) {
    set_parallel_threads(n);
    expect_images_identical(blur_serial, gaussian_blur(frame, 1.6f));
    expect_images_identical(resize_serial, resize(frame, 123, 77));
    expect_images_identical(dog_serial, subtract(blur_serial, frame));
  }
}

TEST_F(DeterminismTest, BlurMatchesClampedReference) {
  // The interior fast path must reproduce the straightforward
  // clamp-everywhere convolution bit for bit, including when the
  // kernel radius exceeds the image (all-border case).
  for (const auto& [w, h, sigma] : {std::tuple{40, 30, 2.0f}, std::tuple{5, 4, 2.0f}}) {
    Image img(w, h);
    Rng rng(11);
    for (float& v : img.data()) v = static_cast<float>(rng.uniform(0.0, 1.0));

    const int radius = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
    std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
    float sum = 0.0f;
    for (int i = -radius; i <= radius; ++i) {
      const float v = std::exp(-static_cast<float>(i * i) / (2.0f * sigma * sigma));
      kernel[static_cast<std::size_t>(i + radius)] = v;
      sum += v;
    }
    for (float& kv : kernel) kv /= sum;
    Image tmp(w, h), ref(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        float acc = 0.0f;
        for (int i = -radius; i <= radius; ++i) {
          acc += kernel[static_cast<std::size_t>(i + radius)] * img.at_clamped(x + i, y);
        }
        tmp.at(x, y) = acc;
      }
    }
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        float acc = 0.0f;
        for (int i = -radius; i <= radius; ++i) {
          acc += kernel[static_cast<std::size_t>(i + radius)] * tmp.at_clamped(x, y + i);
        }
        ref.at(x, y) = acc;
      }
    }
    for (int n : pool_sizes()) {
      set_parallel_threads(n);
      expect_images_identical(ref, gaussian_blur(img, sigma));
    }
  }
}

TEST_F(DeterminismTest, SiftFeaturesBitIdenticalAcrossPoolSizes) {
  const Image frame = test_frame();
  SiftParams params;
  params.max_features = 300;
  const SiftDetector detector(params);
  set_parallel_threads(1);
  const FeatureList serial = detector.detect(frame);
  ASSERT_FALSE(serial.empty());
  for (int n : pool_sizes()) {
    set_parallel_threads(n);
    expect_features_identical(serial, detector.detect(frame));
  }
}

TEST_F(DeterminismTest, MatchSetBitIdenticalAndEqualToNaiveReference) {
  const Image frame = test_frame();
  SiftParams params;
  params.max_features = 200;
  set_parallel_threads(1);
  const FeatureList features = SiftDetector(params).detect(frame);
  ASSERT_GE(features.size(), 2u);

  // Naive reference: full Euclidean distances, no early exit.
  const MatcherParams mp;
  std::vector<Match> ref;
  for (std::size_t qi = 0; qi < features.size(); ++qi) {
    float best = std::numeric_limits<float>::max(), second = best;
    int best_ti = -1;
    for (std::size_t ti = 0; ti < features.size(); ++ti) {
      float d2 = 0.0f;
      for (int j = 0; j < kDescriptorDim; ++j) {
        const float d = features[qi].descriptor[static_cast<std::size_t>(j)] -
                        features[ti].descriptor[static_cast<std::size_t>(j)];
        d2 += d * d;
      }
      const float dist = std::sqrt(d2);
      if (dist < best) {
        second = best;
        best = dist;
        best_ti = static_cast<int>(ti);
      } else if (dist < second) {
        second = dist;
      }
    }
    if (best_ti >= 0 && best <= mp.max_distance && best < mp.ratio * second) {
      ref.push_back(Match{static_cast<int>(qi), best_ti, best});
    }
  }

  for (int n : pool_sizes()) {
    set_parallel_threads(n);
    const auto matches = match_features(features, features, mp);
    ASSERT_EQ(matches.size(), ref.size());
    for (std::size_t i = 0; i < matches.size(); ++i) {
      EXPECT_EQ(matches[i].query_index, ref[i].query_index);
      EXPECT_EQ(matches[i].train_index, ref[i].train_index);
      EXPECT_NEAR(matches[i].distance, ref[i].distance, 1e-6f);
    }
  }
}

TEST_F(DeterminismTest, FisherAndPcaBitIdenticalAcrossPoolSizes) {
  const Image frame = test_frame();
  SiftParams params;
  params.max_features = 200;
  set_parallel_threads(1);
  const FeatureList features = SiftDetector(params).detect(frame);
  std::vector<std::vector<float>> desc;
  for (const auto& f : features) desc.emplace_back(f.descriptor.begin(), f.descriptor.end());
  ASSERT_GE(desc.size(), 64u);

  Pca pca;
  pca.fit(desc, 16);
  const auto reduced_serial = pca.transform(desc);
  Rng rng(1);
  Gmm gmm;
  GmmParams gp;
  gp.components = 4;
  ASSERT_TRUE(gmm.fit(reduced_serial, gp, rng));
  const FisherEncoder encoder(&gmm);
  const auto fv_serial = encoder.encode(reduced_serial);
  ASSERT_FALSE(fv_serial.empty());

  for (int n : pool_sizes()) {
    set_parallel_threads(n);
    const auto reduced = pca.transform(desc);
    ASSERT_EQ(reduced.size(), reduced_serial.size());
    for (std::size_t i = 0; i < reduced.size(); ++i) {
      for (std::size_t j = 0; j < reduced[i].size(); ++j) {
        ASSERT_EQ(reduced[i][j], reduced_serial[i][j]) << i << "," << j;
      }
    }
    const auto fv = encoder.encode(reduced);
    ASSERT_EQ(fv.size(), fv_serial.size());
    for (std::size_t i = 0; i < fv.size(); ++i) ASSERT_EQ(fv[i], fv_serial[i]) << i;
  }
}

TEST_F(DeterminismTest, EnginePipelineIdenticalAcrossPoolSizes) {
  video::WorkplaceScene scene(640, 360);
  auto build_and_run = [&scene](int threads) {
    set_parallel_threads(threads);
    EngineParams params;
    params.working_width = 320;
    params.sift.max_features = 250;
    ArEngine engine(params);
    engine.add_reference("monitor",
                         scene.render_reference(video::SceneObject::kMonitor, 220, 140));
    engine.add_reference("keyboard",
                         scene.render_reference(video::SceneObject::kKeyboard, 180, 70));
    engine.add_reference("table",
                         scene.render_reference(video::SceneObject::kTable, 290, 75));
    EXPECT_TRUE(engine.finalize_training());
    const Image pre = engine.preprocess(scene.render(1.0));
    const ExtractedFeatures feats = engine.extract(pre, scene.render(1.0));
    return engine.encode(feats.features);
  };
  const auto serial = build_and_run(1);
  ASSERT_FALSE(serial.empty());
  const auto parallel = build_and_run(std::max(2, static_cast<int>(std::thread::hardware_concurrency())));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) ASSERT_EQ(serial[i], parallel[i]) << i;
}

}  // namespace
}  // namespace mar::vision
