#include <gtest/gtest.h>

#include <cstdio>

#include "vision/image.h"

namespace mar::vision {
namespace {

Image gradient_image(int w, int h) {
  Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.at(x, y) = static_cast<float>(x) / static_cast<float>(w);
    }
  }
  return img;
}

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3, 0.5f);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  EXPECT_FLOAT_EQ(img.at(2, 1), 0.5f);
  img.at(2, 1) = 0.9f;
  EXPECT_FLOAT_EQ(img.at(2, 1), 0.9f);
}

TEST(Image, EmptyByDefault) {
  Image img;
  EXPECT_TRUE(img.empty());
}

TEST(Image, ClampedAccessReplicatesBorder) {
  Image img(2, 2);
  img.at(0, 0) = 1.0f;
  img.at(1, 1) = 2.0f;
  EXPECT_FLOAT_EQ(img.at_clamped(-5, -5), 1.0f);
  EXPECT_FLOAT_EQ(img.at_clamped(10, 10), 2.0f);
}

TEST(Image, BilinearSampleInterpolates) {
  Image img(2, 1);
  img.at(0, 0) = 0.0f;
  img.at(1, 0) = 1.0f;
  EXPECT_NEAR(img.sample(0.5f, 0.0f), 0.5f, 1e-6);
  EXPECT_NEAR(img.sample(0.25f, 0.0f), 0.25f, 1e-6);
}

TEST(Image, SampleClampsOutside) {
  Image img(2, 2, 0.7f);
  EXPECT_FLOAT_EQ(img.sample(-3.0f, -3.0f), 0.7f);
  EXPECT_FLOAT_EQ(img.sample(99.0f, 99.0f), 0.7f);
}

TEST(ImageOps, BlurPreservesMeanReducesVariance) {
  Image img(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) img.at(x, y) = ((x + y) % 2) ? 1.0f : 0.0f;
  }
  const Image blurred = gaussian_blur(img, 2.0f);
  double mean_in = 0, mean_out = 0, var_in = 0, var_out = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    mean_in += img.data()[i];
    mean_out += blurred.data()[i];
  }
  mean_in /= static_cast<double>(img.size());
  mean_out /= static_cast<double>(img.size());
  for (std::size_t i = 0; i < img.size(); ++i) {
    var_in += (img.data()[i] - mean_in) * (img.data()[i] - mean_in);
    var_out += (blurred.data()[i] - mean_out) * (blurred.data()[i] - mean_out);
  }
  EXPECT_NEAR(mean_out, mean_in, 0.01);
  EXPECT_LT(var_out, var_in * 0.1);
}

TEST(ImageOps, BlurZeroSigmaIsIdentity) {
  const Image img = gradient_image(16, 16);
  const Image out = gaussian_blur(img, 0.0f);
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], img.data()[i]);
  }
}

TEST(ImageOps, ResizeDimensions) {
  const Image img = gradient_image(100, 50);
  const Image out = resize(img, 40, 20);
  EXPECT_EQ(out.width(), 40);
  EXPECT_EQ(out.height(), 20);
  // Gradient preserved approximately.
  EXPECT_LT(out.at(0, 10), out.at(39, 10));
}

TEST(ImageOps, HalfSizeHalvesDimensions) {
  const Image img = gradient_image(64, 32);
  const Image out = half_size(img);
  EXPECT_EQ(out.width(), 32);
  EXPECT_EQ(out.height(), 16);
}

TEST(ImageOps, DoubleSizeDoublesDimensions) {
  const Image img = gradient_image(16, 16);
  const Image out = double_size(img);
  EXPECT_EQ(out.width(), 32);
  EXPECT_EQ(out.height(), 32);
}

TEST(ImageOps, SubtractIsPixelwise) {
  Image a(2, 2, 0.8f), b(2, 2, 0.3f);
  const Image d = subtract(a, b);
  EXPECT_NEAR(d.at(0, 0), 0.5f, 1e-6);
}

TEST(ImageOps, ByteRoundTrip) {
  const Image img = gradient_image(10, 10);
  const auto bytes = to_bytes(img);
  const Image back = from_bytes(bytes.data(), 10, 10);
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(back.data()[i], img.data()[i], 1.0f / 255.0f);
  }
}

TEST(ImageOps, ByteConversionClamps) {
  Image img(1, 1);
  img.at(0, 0) = 7.5f;
  EXPECT_EQ(to_bytes(img)[0], 255);
  img.at(0, 0) = -2.0f;
  EXPECT_EQ(to_bytes(img)[0], 0);
}

TEST(ImageOps, WritePgm) {
  const Image img = gradient_image(8, 8);
  const std::string path = "/tmp/mar_test_image.pgm";
  ASSERT_TRUE(write_pgm(img, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char header[3] = {};
  ASSERT_EQ(std::fread(header, 1, 2, f), 2u);
  EXPECT_EQ(header[0], 'P');
  EXPECT_EQ(header[1], '5');
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mar::vision
