// PartitionedEngine conservative-sync semantics and ClientCohort fluid
// model. The determinism tests run the same workload at several thread
// counts and demand bit-identical trajectories; the whole binary
// carries the `tsan` ctest label so a MAR_SANITIZE=thread build proves
// the window barrier actually publishes the outboxes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/cohort.h"
#include "sim/partition.h"

namespace mar::sim {
namespace {

constexpr SimDuration kLookahead = 1'000;

// --- window / lookahead mechanics ------------------------------------------

TEST(PartitionedEngine, RunsLocalEventsAndCountsWindows) {
  PartitionedEngine eng(2, kLookahead);
  int fired = 0;
  eng.loop(0).schedule_at(100, [&] { ++fired; });
  eng.loop(1).schedule_at(4'500, [&] { ++fired; });
  eng.run_until(10'000, /*threads=*/1);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.events_fired(), 2u);
  EXPECT_EQ(eng.windows_run(), 10u);  // 10'000 / lookahead
  EXPECT_EQ(eng.loop(0).now(), 10'000);
  EXPECT_EQ(eng.loop(1).now(), 10'000);
}

TEST(PartitionedEngine, DeadlineNotMultipleOfLookaheadTruncatesLastWindow) {
  PartitionedEngine eng(2, kLookahead);
  eng.run_until(2'500, /*threads=*/1);
  EXPECT_EQ(eng.windows_run(), 3u);
  EXPECT_EQ(eng.loop(0).now(), 2'500);
}

TEST(PartitionedEngine, CrossPartitionPostDeliversAtRequestedTime) {
  PartitionedEngine eng(2, kLookahead);
  SimTime delivered_at = -1;
  eng.loop(0).schedule_at(500, [&] {
    // now + lookahead is the tight legal bound: equal to the running
    // window's end, never earlier.
    eng.post(0, 1, eng.loop(0).now() + kLookahead,
             [&] { delivered_at = eng.loop(1).now(); });
  });
  eng.run_until(5'000, /*threads=*/1);
  EXPECT_EQ(delivered_at, 1'500);
  EXPECT_EQ(eng.messages_posted(), 1u);
  EXPECT_EQ(eng.lookahead_violations(), 0u);
}

TEST(PartitionedEngine, ViolatingPostIsClampedToWindowEndAndCounted) {
  PartitionedEngine eng(2, kLookahead);
  SimTime delivered_at = -1;
  eng.loop(0).schedule_at(500, [&] {
    // t = 700 < window end 1'000: partition 1 may already be past 700.
    eng.post(0, 1, 700, [&] { delivered_at = eng.loop(1).now(); });
  });
  eng.run_until(5'000, /*threads=*/1);
  EXPECT_EQ(delivered_at, 1'000);  // clamped to the window boundary
  EXPECT_EQ(eng.lookahead_violations(), 1u);
  EXPECT_EQ(eng.messages_posted(), 1u);
}

TEST(PartitionedEngine, OnWindowHookSeesEveryBarrier) {
  PartitionedEngine eng(3, kLookahead);
  std::vector<std::pair<SimTime, SimTime>> windows;
  eng.run_until(3'000, /*threads=*/1,
                [&](SimTime ws, SimTime we) { windows.emplace_back(ws, we); });
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0], (std::pair<SimTime, SimTime>{0, 1'000}));
  EXPECT_EQ(windows[2], (std::pair<SimTime, SimTime>{2'000, 3'000}));
}

TEST(PartitionedEngine, ResumesAcrossMultipleRunUntilCalls) {
  PartitionedEngine eng(2, kLookahead);
  int fired = 0;
  eng.loop(0).schedule_at(1'500, [&] { ++fired; });
  eng.run_until(1'000, /*threads=*/1);
  EXPECT_EQ(fired, 0);
  eng.run_until(2'000, /*threads=*/1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.windows_run(), 2u);
}

// --- determinism across thread counts --------------------------------------

// A ping-ring workload: every partition runs a periodic local process
// that draws from its own RNG and posts work to the next partition
// over. Each partition appends observations only to its own trace (the
// single-writer rule the engine guarantees), and the traces are folded
// into one FNV-1a digest in partition order.
std::uint64_t ring_workload_digest(int partitions, int threads) {
  set_parallel_threads(threads);
  PartitionedEngine eng(partitions, kLookahead);
  std::vector<std::vector<std::uint64_t>> trace(static_cast<std::size_t>(partitions));
  std::vector<Rng> rng;
  rng.reserve(static_cast<std::size_t>(partitions));
  for (int p = 0; p < partitions; ++p) rng.emplace_back(0x9e377 + static_cast<std::uint64_t>(p));

  std::function<void(int)> tick = [&](int p) {
    EventLoop& loop = eng.loop(p);
    const std::uint64_t draw =
        static_cast<std::uint64_t>(rng[static_cast<std::size_t>(p)].uniform_int(0, 1 << 20));
    trace[static_cast<std::size_t>(p)].push_back(
        static_cast<std::uint64_t>(loop.now()) * 31 + draw);
    const int dst = (p + 1) % partitions;
    // Draws happen here, in p's window; the message carries the value.
    eng.post(p, dst, loop.now() + kLookahead + static_cast<SimDuration>(draw % 500),
             [&trace, &eng, dst, draw] {
               trace[static_cast<std::size_t>(dst)].push_back(
                   static_cast<std::uint64_t>(eng.loop(dst).now()) ^ draw);
             });
    loop.schedule_after(250 + 37 * static_cast<SimDuration>(p), [&tick, p] { tick(p); });
  };
  for (int p = 0; p < partitions; ++p) {
    eng.loop(p).schedule_at(10 * p, [&tick, p] { tick(p); });
  }
  eng.run_until(200 * kLookahead, threads);
  set_parallel_threads(0);

  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& t : trace) {
    for (const std::uint64_t v : t) {
      h ^= v;
      h *= 1099511628211ULL;
    }
  }
  EXPECT_EQ(eng.lookahead_violations(), 0u);
  return h;
}

TEST(PartitionedEngine, TrajectoryBitIdenticalAcrossThreadCounts) {
  const std::uint64_t sequential = ring_workload_digest(4, 1);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(ring_workload_digest(4, threads), sequential) << "threads=" << threads;
  }
}

TEST(PartitionedEngine, SinglePartitionDegeneratesToPlainLoop) {
  EXPECT_EQ(ring_workload_digest(1, 1), ring_workload_digest(1, 4));
}

// --- fluid cohort -----------------------------------------------------------

CohortConfig cohort_config() {
  CohortConfig c;
  c.target_fps = 25.0;
  c.service_time = millis(40.0);  // one capacity unit serves exactly 25 fps
  c.session_mean_s = 20.0;
  c.memory_per_session = 1 << 20;
  return c;
}

TEST(ClientCohort, ConvergesToLittlesLaw) {
  ClientCohort cohort(cohort_config());
  // lambda * Ts = 10/s * 20s = 200 steady-state sessions.
  for (int i = 0; i < 2'000; ++i) cohort.advance(millis(100.0), 10.0, 1e9);
  EXPECT_NEAR(cohort.active_sessions(), 200.0, 0.01);
}

TEST(ClientCohort, ClosedFormMatchesSingleExponentialStep) {
  ClientCohort cohort(cohort_config());
  cohort.add_sessions(100.0);
  const CohortWindow w = cohort.advance(seconds(5.0), 0.0, 1e9);
  // No arrivals: s(t) = s0 * e^(-t/Ts).
  EXPECT_NEAR(w.active, 100.0 * std::exp(-5.0 / 20.0), 1e-9);
  EXPECT_NEAR(w.departures, 100.0 - w.active, 1e-9);
}

TEST(ClientCohort, AmpleCapacityServesOfferedLoad) {
  ClientCohort cohort(cohort_config());
  cohort.add_sessions(100.0);
  // 100 sessions * 25 fps need 100 units; grant 200.
  const CohortWindow w = cohort.advance(millis(10.0), 0.0, 200.0);
  EXPECT_NEAR(w.served_fps, w.offered_fps, 1e-9);
  EXPECT_NEAR(w.session_fps, 25.0, 1e-6);
  EXPECT_NEAR(w.demand_units, w.offered_fps / 25.0, 1e-9);
  EXPECT_LT(w.utilization, 0.51);
}

TEST(ClientCohort, ScarceCapacityTruncatesServedFps) {
  ClientCohort cohort(cohort_config());
  cohort.add_sessions(100.0);
  // Grant half the needed units: session fps sags to ~12.5, not a backlog.
  const CohortWindow w = cohort.advance(millis(10.0), 0.0, 50.0);
  EXPECT_NEAR(w.served_fps, 50.0 * 25.0, 1e-6);
  EXPECT_NEAR(w.session_fps, 12.5, 0.01);
  EXPECT_NEAR(w.utilization, 1.0, 1e-9);
}

TEST(ClientCohort, AdvanceIsDeterministic) {
  ClientCohort a(cohort_config());
  ClientCohort b(cohort_config());
  for (int i = 0; i < 500; ++i) {
    const double rate = 5.0 + 3.0 * std::sin(i * 0.01);
    const CohortWindow wa = a.advance(millis(100.0), rate, 40.0);
    const CohortWindow wb = b.advance(millis(100.0), rate, 40.0);
    ASSERT_EQ(wa.active, wb.active);
    ASSERT_EQ(wa.served_fps, wb.served_fps);
  }
  EXPECT_EQ(a.frames_served(), b.frames_served());
}

TEST(ClientCohort, PromotionMovesSessionsWithoutCreatingThem) {
  ClientCohort cohort(cohort_config());
  cohort.add_sessions(10.0);
  cohort.remove_sessions(4.0);
  EXPECT_NEAR(cohort.active_sessions(), 6.0, 1e-12);
  EXPECT_EQ(cohort.memory_bytes(), 6u << 20);
  cohort.remove_sessions(100.0);  // over-removal clamps at zero
  EXPECT_EQ(cohort.active_sessions(), 0.0);
}

}  // namespace
}  // namespace mar::sim
