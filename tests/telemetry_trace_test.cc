// Tests for the per-frame distributed tracer: recording semantics,
// span pairing under the thread pool, exporter well-formedness, and the
// end-to-end frame flow of a traced simulated experiment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "expt/experiment.h"
#include "telemetry/trace.h"

namespace mar::telemetry {
namespace {

// Every test owns the process-wide tracer for its duration.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reserve(1u << 16);
    Tracer::instance().set_enabled(true);
  }
  void TearDown() override { Tracer::instance().set_enabled(false); }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  auto& t = Tracer::instance();
  t.set_enabled(false);
  t.instant(1, spans::kDropBusy, 10, ClientId{0}, FrameId{0}, Stage::kPrimary);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST_F(TraceTest, RecordsAndSnapshotsInOrder) {
  auto& t = Tracer::instance();
  t.begin(7, spans::kService, 100, ClientId{1}, FrameId{2}, Stage::kSift);
  t.end(7, spans::kService, 250, ClientId{1}, FrameId{2}, Stage::kSift);
  const auto events = t.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, TracePhase::kBegin);
  EXPECT_EQ(events[1].phase, TracePhase::kEnd);
  EXPECT_EQ(events[0].track, 7u);
  EXPECT_EQ(events[0].ts, 100);
  EXPECT_EQ(events[1].ts, 250);
}

TEST_F(TraceTest, RingDropsWhenFullAndCounts) {
  auto& t = Tracer::instance();
  t.reserve(8);
  for (int i = 0; i < 20; ++i) {
    t.instant(1, spans::kDropBusy, i, ClientId{0}, FrameId{0}, Stage::kPrimary);
  }
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.capacity(), 8u);
}

TEST_F(TraceTest, SpanPairingAndWindowFilter) {
  auto& t = Tracer::instance();
  // Two spans on one track; only the second ends inside the window.
  t.begin(3, spans::kService, millis(0.0), ClientId{0}, FrameId{0}, Stage::kLsh);
  t.end(3, spans::kService, millis(5.0), ClientId{0}, FrameId{0}, Stage::kLsh);
  t.begin(3, spans::kService, millis(8.0), ClientId{0}, FrameId{1}, Stage::kLsh);
  t.end(3, spans::kService, millis(20.0), ClientId{0}, FrameId{1}, Stage::kLsh);

  const auto all = t.replica_spans(spans::kService);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].track, 3u);
  EXPECT_EQ(all[0].ms.count(), 2u);

  // min_end_ts admits a span that *began* before the window, matching
  // how a histogram reset at window start sees it.
  const auto windowed = t.replica_spans(spans::kService, millis(10.0));
  ASSERT_EQ(windowed.size(), 1u);
  EXPECT_EQ(windowed[0].ms.count(), 1u);
  EXPECT_NEAR(windowed[0].ms.mean(), 12.0, 1e-9);

  const auto by_stage = t.stage_spans(spans::kService);
  EXPECT_EQ(by_stage[static_cast<int>(Stage::kLsh)].count(), 2u);
  EXPECT_EQ(by_stage[static_cast<int>(Stage::kSift)].count(), 0u);
}

TEST_F(TraceTest, CompleteSpansNeedNoPairing) {
  auto& t = Tracer::instance();
  t.complete(9, spans::kLink, millis(1.0), millis(3.0), ClientId{2}, FrameId{7},
             Stage::kEncoding);
  const auto by_stage = t.stage_spans(spans::kLink);
  ASSERT_EQ(by_stage[static_cast<int>(Stage::kEncoding)].count(), 1u);
  EXPECT_NEAR(by_stage[static_cast<int>(Stage::kEncoding)].mean(), 3.0, 1e-9);
}

TEST_F(TraceTest, UnmatchedEndIsIgnored) {
  auto& t = Tracer::instance();
  t.end(4, spans::kService, 100, ClientId{0}, FrameId{0}, Stage::kSift);
  EXPECT_TRUE(t.replica_spans(spans::kService).empty());
}

// Concurrent recording from every pool lane must lose nothing and tag
// each event with the recording lane. (Runs under the tsan label.)
TEST_F(TraceTest, ParallelRecordingIsLossless) {
  auto& t = Tracer::instance();
  constexpr std::int64_t kEvents = 20000;
  parallel_for(0, kEvents, /*grain=*/64, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      t.instant(1, spans::kDropBusy, i, ClientId{0},
                FrameId{static_cast<std::uint64_t>(i)}, Stage::kPrimary);
    }
  });
  EXPECT_EQ(t.size(), static_cast<std::size_t>(kEvents));
  EXPECT_EQ(t.dropped(), 0u);

  // Every index recorded exactly once.
  std::vector<bool> seen(kEvents, false);
  int max_lane = 0;
  for (const TraceEvent& e : t.snapshot()) {
    ASSERT_LT(e.frame, static_cast<std::uint64_t>(kEvents));
    EXPECT_FALSE(seen[e.frame]);
    seen[e.frame] = true;
    max_lane = std::max<int>(max_lane, e.lane);
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  if (parallel_threads() > 1) EXPECT_GT(max_lane, 0);
}

TEST_F(TraceTest, NextTraceIdIsNonzeroAndUnique) {
  auto& t = Tracer::instance();
  std::set<std::uint32_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t id = t.next_trace_id();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

// ---------------------------------------------------------------------------
// Exporters

// Minimal structural JSON check: balanced braces/brackets outside of
// string literals, no trailing comma before a closer.
void ExpectWellFormedJson(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  char last_significant = '\0';
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        last_significant = '"';
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      EXPECT_NE(last_significant, ',') << "trailing comma before closer";
      --depth;
      ASSERT_GE(depth, 0);
    }
    if (!std::isspace(static_cast<unsigned char>(c))) last_significant = c;
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_EQ(depth, 0) << "unbalanced braces";
}

TEST_F(TraceTest, ChromeTraceExportIsWellFormed) {
  auto& t = Tracer::instance();
  t.set_track_name(5, "sift#5 (edge-1 \"gpu\")");  // name needing escapes
  t.begin(5, spans::kService, millis(1.0), ClientId{0}, FrameId{0}, Stage::kSift);
  t.end(5, spans::kService, millis(2.0), ClientId{0}, FrameId{0}, Stage::kSift);
  t.complete(9000, spans::kLink, millis(0.5), millis(0.2), ClientId{0}, FrameId{0},
             Stage::kSift);
  t.instant(5, spans::kDropStale, millis(3.0), ClientId{0}, FrameId{1}, Stage::kSift);
  t.counter(5, "queue_len", millis(3.0), 4.0);

  const std::string json = t.chrome_trace_json();
  ExpectWellFormedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\\\"gpu\\\""), std::string::npos);  // escaped quote survived
}

TEST_F(TraceTest, PrometheusTextExport) {
  auto& t = Tracer::instance();
  t.begin(5, spans::kService, millis(1.0), ClientId{0}, FrameId{0}, Stage::kSift);
  t.end(5, spans::kService, millis(4.0), ClientId{0}, FrameId{0}, Stage::kSift);
  t.instant(5, spans::kDropStale, millis(5.0), ClientId{0}, FrameId{1}, Stage::kSift);

  const std::string text = t.prometheus_text();
  EXPECT_NE(text.find("mar_trace_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("mar_trace_span_ms{span=\"service\",stage=\"sift\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("mar_trace_instants_total{event=\"drop_stale\",stage=\"sift\"} 1"),
            std::string::npos);
  // Exposition format: every HELP has a TYPE.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n') > 0, true);
  std::size_t helps = 0, types = 0, pos = 0;
  while ((pos = text.find("# HELP", pos)) != std::string::npos) ++helps, pos += 6;
  pos = 0;
  while ((pos = text.find("# TYPE", pos)) != std::string::npos) ++types, pos += 6;
  EXPECT_EQ(helps, types);
}

// ---------------------------------------------------------------------------
// End-to-end frame flow through a simulated deployment

TEST_F(TraceTest, ScatterFrameFlowProducesOneServiceSpanPerStage) {
  auto& t = Tracer::instance();
  t.reserve(1u << 18);

  expt::ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatter;
  cfg.num_clients = 1;
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(4.0);
  cfg.seed = 42;
  expt::run_experiment(cfg);

  // Pair events per (client, frame): a frame whose e2e span closed went
  // all the way through the pipeline.
  struct PerFrame {
    bool e2e_begin = false, e2e_end = false;
    int frame_service_spans = 0;  // kService spans carrying kFrameData
    int fetch_begin = 0, fetch_end = 0;
  };
  std::map<std::uint64_t, PerFrame> frames;
  std::map<std::tuple<std::uint32_t, std::uint64_t, int>, int> open_service;
  for (const TraceEvent& e : t.snapshot()) {
    PerFrame& f = frames[e.frame];
    if (std::strcmp(e.name, spans::kFrameE2e) == 0) {
      if (e.phase == TracePhase::kBegin) f.e2e_begin = true;
      if (e.phase == TracePhase::kEnd) f.e2e_end = true;
    } else if (std::strcmp(e.name, spans::kService) == 0) {
      auto key = std::make_tuple(e.track, e.frame, static_cast<int>(e.stage));
      if (e.phase == TracePhase::kBegin) {
        // `value` carries the message kind; 0 == kFrameData.
        open_service[key] = e.value == 0.0 ? 1 : 0;
      } else if (e.phase == TracePhase::kEnd) {
        auto it = open_service.find(key);
        if (it != open_service.end()) {
          f.frame_service_spans += it->second;
          open_service.erase(it);
        }
      }
    } else if (std::strcmp(e.name, spans::kStateFetch) == 0) {
      if (e.phase == TracePhase::kBegin) ++f.fetch_begin;
      if (e.phase == TracePhase::kEnd) ++f.fetch_end;
    }
  }

  int completed = 0;
  for (const auto& [frame, f] : frames) {
    if (!(f.e2e_begin && f.e2e_end)) continue;
    ++completed;
    // One compute span at each of the five services...
    EXPECT_EQ(f.frame_service_spans, kNumStages) << "frame " << frame;
    // ...plus a completed state-fetch round trip (scAtteR fetch loop).
    EXPECT_GE(f.fetch_begin, 1) << "frame " << frame;
    EXPECT_EQ(f.fetch_begin, f.fetch_end) << "frame " << frame;
  }
  EXPECT_GT(completed, 10);  // 4 s at 30 FPS: plenty of delivered frames

  // The trace saw real state-fetch latency on matching.
  const auto fetch = t.stage_spans(spans::kStateFetch);
  EXPECT_GT(fetch[static_cast<int>(Stage::kMatching)].count(), 0u);
  EXPECT_GT(fetch[static_cast<int>(Stage::kMatching)].mean(), 0.0);
}

TEST_F(TraceTest, SidecarFlowRecordsQueueSpans) {
  auto& t = Tracer::instance();
  t.reserve(1u << 18);

  expt::ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.num_clients = 2;
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(3.0);
  cfg.seed = 43;
  expt::run_experiment(cfg);

  const auto queue = t.stage_spans(spans::kSidecarQueue);
  std::uint64_t total = 0;
  for (const auto& acc : queue) total += acc.count();
  EXPECT_GT(total, 0u);

  const auto handoff = t.stage_spans(spans::kRpcHandoff);
  std::uint64_t handoffs = 0;
  for (const auto& acc : handoff) handoffs += acc.count();
  EXPECT_GT(handoffs, 0u);
}

TEST_F(TraceTest, SamplingTracesEveryNthFrame) {
  auto& t = Tracer::instance();

  expt::ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatter;
  cfg.num_clients = 1;
  cfg.warmup = seconds(0.5);
  cfg.duration = seconds(2.0);
  cfg.seed = 44;
  cfg.trace_sample_every = 4;
  expt::run_experiment(cfg);

  std::set<std::uint64_t> traced_frames;
  for (const TraceEvent& e : t.snapshot()) {
    if (std::strcmp(e.name, spans::kFrameE2e) == 0 && e.phase == TracePhase::kBegin) {
      traced_frames.insert(e.frame);
    }
  }
  ASSERT_FALSE(traced_frames.empty());
  for (std::uint64_t f : traced_frames) EXPECT_EQ(f % 4, 0u);
}

}  // namespace
}  // namespace mar::telemetry
