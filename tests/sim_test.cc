#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/network.h"
#include "telemetry/registry.h"

namespace mar::sim {
namespace {

// --- event loop --------------------------------------------------------

TEST(EventLoop, FiresInTimestampOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, FifoAmongEqualTimestamps) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, ScheduleAfterIsRelative) {
  EventLoop loop;
  SimTime fired_at = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_after(50, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(EventLoop, PastEventsClampToNow) {
  EventLoop loop;
  SimTime fired_at = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_at(10, [&] { fired_at = loop.now(); });  // in the past
  });
  loop.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(EventLoop, CancelPreventsFiring) {
  EventLoop loop;
  bool fired = false;
  const EventId id = loop.schedule_at(10, [&] { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, CancelIsIdempotentAndSafeAfterFire) {
  EventLoop loop;
  const EventId id = loop.schedule_at(10, [] {});
  loop.run();
  loop.cancel(id);  // already fired: no-op
  loop.cancel(EventId{});  // invalid: no-op
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(10, [&] { ++fired; });
  loop.schedule_at(20, [&] { ++fired; });
  loop.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(loop.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventLoop, RunUntilAdvancesTimeWithoutEvents) {
  EventLoop loop;
  loop.run_until(1'000);
  EXPECT_EQ(loop.now(), 1'000);
}

TEST(EventLoop, CascadingEventsAllFire) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) loop.schedule_after(1, recurse);
  };
  loop.schedule_at(0, recurse);
  loop.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), 99);
}

TEST(EventLoop, TimeNeverGoesBackwards) {
  EventLoop loop;
  Rng rng(5);
  SimTime last_seen = 0;
  bool monotone = true;
  for (int i = 0; i < 500; ++i) {
    loop.schedule_at(rng.uniform_int(0, 10'000), [&] {
      if (loop.now() < last_seen) monotone = false;
      last_seen = loop.now();
    });
  }
  loop.run();
  EXPECT_TRUE(monotone);
}

// --- slab storage + accounting ---------------------------------------------

TEST(EventLoop, SlabReusesSlotsAfterFire) {
  EventLoop loop;
  const EventId first = loop.schedule_at(10, [] {});
  loop.run();
  // The freed slot is handed back out, with a fresh generation so the
  // old id cannot alias the new event.
  const EventId second = loop.schedule_at(20, [] {});
  EXPECT_EQ(second.slot, first.slot);
  EXPECT_NE(second.gen, first.gen);
}

TEST(EventLoop, StaleCancelAfterSlotReuseIsNoOp) {
  EventLoop loop;
  const EventId stale = loop.schedule_at(10, [] {});
  loop.run();  // fires; slot returns to the free list

  bool fired = false;
  loop.schedule_at(20, [&] { fired = true; });  // reuses the slot
  loop.cancel(stale);  // generation mismatch: must not kill the new event
  loop.run();
  EXPECT_TRUE(fired);
}

TEST(EventLoop, StaleCancelAfterCancelAndReuseIsNoOp) {
  EventLoop loop;
  const EventId stale = loop.schedule_at(10, [] {});
  loop.cancel(stale);
  bool fired = false;
  loop.schedule_at(20, [&] { fired = true; });
  loop.cancel(stale);  // double-cancel across a reuse boundary
  loop.run();
  EXPECT_TRUE(fired);
}

TEST(EventLoop, StatsCountScheduledFiredCancelled) {
  EventLoop loop;
  const EventId a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  loop.schedule_at(30, [] {});
  loop.cancel(a);
  loop.cancel(a);  // idempotent: must not double-count
  loop.run();
  EXPECT_EQ(loop.stats().scheduled, 3u);
  EXPECT_EQ(loop.stats().fired, 2u);
  EXPECT_EQ(loop.stats().cancelled, 1u);
}

TEST(EventLoop, NegativeDelayClampsToNowAndCounts) {
  EventLoop loop;
  SimTime fired_at = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_after(-50, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 100);  // clamped to "now", not swallowed
  EXPECT_EQ(loop.stats().negative_delay_clamps, 1u);
  EXPECT_EQ(loop.stats().past_time_clamps, 0u);
}

TEST(EventLoop, PastTimeScheduleCounts) {
  EventLoop loop;
  loop.schedule_at(100, [&] { loop.schedule_at(10, [] {}); });
  loop.run();
  EXPECT_EQ(loop.stats().past_time_clamps, 1u);
  EXPECT_EQ(loop.stats().negative_delay_clamps, 0u);
}

TEST(EventLoop, RunUntilOverCancelledOnlyQueueFiresNothing) {
  EventLoop loop;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) ids.push_back(loop.schedule_at(i * 10, [] {}));
  for (const EventId id : ids) loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  // run_until must reclaim the stale heap entries, fire nothing, and
  // still land now() on the deadline.
  EXPECT_EQ(loop.run_until(1'000), 0u);
  EXPECT_EQ(loop.now(), 1'000);
  EXPECT_EQ(loop.stats().fired, 0u);
  EXPECT_EQ(loop.stats().cancelled, 16u);
}

TEST(EventLoop, MixedChurnKeepsAccountingConsistent) {
  EventLoop loop;
  Rng rng(11);
  std::vector<EventId> live;
  for (int i = 0; i < 2'000; ++i) {
    live.push_back(loop.schedule_at(rng.uniform_int(0, 10'000), [] {}));
    if (i % 3 == 0) {
      loop.cancel(live[static_cast<std::size_t>(rng.uniform_int(0, i))]);
    }
  }
  loop.run();
  const EventLoopStats& s = loop.stats();
  EXPECT_EQ(s.scheduled, 2'000u);
  EXPECT_EQ(s.fired + s.cancelled, 2'000u);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, MirrorsTotalsIntoMetricRegistry) {
  auto& reg = telemetry::MetricRegistry::instance();
  reg.set_enabled(true);
  auto& fired = reg.counter("mar_sim_events_fired_total", "");
  auto& cancelled = reg.counter("mar_sim_events_cancelled_total", "");
  auto& clamped = reg.counter("mar_sim_schedule_clamped_total", "");
  const std::uint64_t fired0 = fired.value();
  const std::uint64_t cancelled0 = cancelled.value();
  const std::uint64_t clamped0 = clamped.value();

  EventLoop loop;
  const EventId a = loop.schedule_at(10, [] {});
  loop.cancel(a);
  loop.schedule_at(20, [&] { loop.schedule_after(-1, [] {}); });
  loop.run();

  EXPECT_EQ(fired.value() - fired0, 2u);      // the t=20 event + the clamped one
  EXPECT_EQ(cancelled.value() - cancelled0, 1u);
  EXPECT_EQ(clamped.value() - clamped0, 1u);
  reg.set_enabled(false);
}

// --- link model -----------------------------------------------------------

TEST(LinkModel, LoopbackIsCheapAndLossless) {
  const LinkModel m = LinkModel::loopback();
  Rng rng(1);
  EXPECT_TRUE(m.survives(1'000'000, rng));
  EXPECT_LT(m.propagation_delay(rng), millis(1.0));
}

TEST(LinkModel, WithRttHalvesLatency) {
  const LinkModel m = LinkModel::with_rtt(millis(10.0));
  EXPECT_EQ(m.latency, millis(5.0));
}

TEST(LinkModel, FragmentLossCompoundsWithSize) {
  LinkModel m;
  m.loss_rate = 0.001;  // per 1400-byte fragment
  Rng rng(3);
  int survived_small = 0, survived_large = 0;
  for (int i = 0; i < 20'000; ++i) {
    survived_small += m.survives(500, rng) ? 1 : 0;
    survived_large += m.survives(250 * 1024, rng) ? 1 : 0;
  }
  // One fragment: ~99.9% survival. 180 fragments: ~83%.
  EXPECT_GT(survived_small, 19'800);
  EXPECT_LT(survived_large, 17'500);
  EXPECT_GT(survived_large, 15'500);
}

TEST(LinkModel, ZeroLossAlwaysSurvives) {
  LinkModel m;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(m.survives(1 << 20, rng));
}

TEST(LinkModel, SerializationDelayScalesWithBytes) {
  LinkModel m;
  m.bandwidth_bytes_per_sec = 125'000'000.0;  // 1 Gbps
  EXPECT_EQ(m.serialization_delay(125'000'000), kSecond);
  EXPECT_EQ(m.serialization_delay(0), 0);
  LinkModel unlimited;
  EXPECT_EQ(unlimited.serialization_delay(1 << 30), 0);
}

TEST(LinkModel, RecoveryDisabledByDefault) {
  const LinkModel m;
  EXPECT_FALSE(m.recovery.enabled());
  // With loss off, deliver() is a pure computation: no rng draws, so
  // the legacy survives() sequence stays bit-identical.
  LinkModel lossless;
  Rng a(7), b(7);
  const auto out = lossless.deliver(250 * 1024, a);
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.fragments, static_cast<int>((250 * 1024 + LinkModel::kMtuBytes - 1) /
                                            LinkModel::kMtuBytes));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(LinkModel, RecoveryBeatsFireAndForget) {
  LinkModel plain;
  plain.loss_rate = 0.02;
  LinkModel recovering = plain;
  recovering.recovery.fec_group = 4;
  recovering.recovery.rtx_rounds = 3;

  Rng rng_plain(11), rng_rec(11);
  constexpr std::size_t kBytes = 250 * 1024;  // ~180 fragments
  int plain_ok = 0, rec_ok = 0;
  std::int64_t repairs = 0, rtx = 0, rounds = 0;
  for (int i = 0; i < 3'000; ++i) {
    plain_ok += plain.survives(kBytes, rng_plain) ? 1 : 0;
    const DeliveryOutcome out = recovering.deliver(kBytes, rng_rec);
    rec_ok += out.delivered ? 1 : 0;
    repairs += out.fec_repairs;
    rtx += out.rtx_fragments;
    rounds += out.rtx_rounds;
  }
  // ~180 fragments at 2% loss: fire-and-forget survives ~2.6% of the
  // time; FEC + 3 NACK rounds recovers essentially always.
  EXPECT_LT(plain_ok, 300);
  EXPECT_GT(rec_ok, 2'900);
  EXPECT_GT(repairs, 0);
  EXPECT_GT(rtx, 0);
  EXPECT_GT(rounds, 0);
}

TEST(LinkModel, FecAloneRepairsOnlySingleLossGroups) {
  LinkModel m;
  m.loss_rate = 0.05;
  m.recovery.fec_group = 4;  // no rtx rounds
  Rng rng(13);
  int delivered = 0, trials = 4'000;
  std::int64_t repairs = 0;
  for (int i = 0; i < trials; ++i) {
    const DeliveryOutcome out = m.deliver(8 * LinkModel::kMtuBytes, rng);
    delivered += out.delivered ? 1 : 0;
    repairs += out.fec_repairs;
    EXPECT_EQ(out.rtx_rounds, 0);
  }
  // 8 fragments at 5%: plain survival ~66%; parity lifts it but cannot
  // reach the rtx-backed ~100%.
  EXPECT_GT(delivered, static_cast<int>(trials * 0.85));
  EXPECT_LT(delivered, trials);
  EXPECT_GT(repairs, 0);
}

TEST(LinkModel, RtxRoundsAreBoundedByBudget) {
  LinkModel m;
  m.loss_rate = 0.5;  // brutal: most messages need every round
  m.recovery.rtx_rounds = 2;
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const DeliveryOutcome out = m.deliver(20 * LinkModel::kMtuBytes, rng);
    EXPECT_LE(out.rtx_rounds, 2);
    if (!out.delivered) EXPECT_EQ(out.rtx_rounds, 2);  // gave up only after both
  }
}

TEST(LinkModel, OscillationAddsDelaySometimes) {
  LinkModel m;
  m.latency = millis(5.0);
  m.oscillation_delay = millis(10.0);
  m.oscillation_prob = 0.2;
  Rng rng(5);
  int oscillated = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (m.propagation_delay(rng) > millis(12.0)) ++oscillated;
  }
  EXPECT_NEAR(oscillated / 10'000.0, 0.2, 0.02);
}

// --- network ------------------------------------------------------------------

struct NetFixture : ::testing::Test {
  EventLoop loop;
  SimNetwork net{loop, Rng{99}};
  MachineId m0{0}, m1{1};
};

TEST_F(NetFixture, DeliversToHandler) {
  wire::FramePacket received;
  int count = 0;
  const EndpointId a = net.create_endpoint(m0, nullptr);
  const EndpointId b = net.create_endpoint(m1, [&](wire::FramePacket p) {
    received = std::move(p);
    ++count;
  });
  net.set_link(m0, m1, LinkModel::with_rtt(millis(4.0)));

  wire::FramePacket pkt;
  pkt.header.frame = FrameId{7};
  net.send(a, b, pkt);
  loop.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(received.header.frame, FrameId{7});
  EXPECT_GE(loop.now(), millis(2.0));  // one-way latency applied
}

TEST_F(NetFixture, IntraMachineUsesLoopback) {
  int count = 0;
  const EndpointId a = net.create_endpoint(m0, nullptr);
  const EndpointId b = net.create_endpoint(m0, [&](wire::FramePacket) { ++count; });
  net.send(a, b, {});
  loop.run();
  EXPECT_EQ(count, 1);
  EXPECT_LT(loop.now(), millis(1.0));
}

TEST_F(NetFixture, DestroyedEndpointDropsSilently) {
  int count = 0;
  const EndpointId a = net.create_endpoint(m0, nullptr);
  const EndpointId b = net.create_endpoint(m0, [&](wire::FramePacket) { ++count; });
  net.destroy_endpoint(b);
  net.send(a, b, {});
  loop.run();
  EXPECT_EQ(count, 0);
}

TEST_F(NetFixture, RebindRestoresDelivery) {
  int count = 0;
  const EndpointId a = net.create_endpoint(m0, nullptr);
  const EndpointId b = net.create_endpoint(m0, nullptr);
  net.rebind(b, [&](wire::FramePacket) { ++count; });
  net.send(a, b, {});
  loop.run();
  EXPECT_EQ(count, 1);
}

TEST_F(NetFixture, InvalidEndpointsIgnored) {
  const EndpointId a = net.create_endpoint(m0, nullptr);
  net.send(a, EndpointId::invalid(), {});
  net.send(EndpointId::invalid(), a, {});
  loop.run();  // must not crash
  EXPECT_EQ(net.datagrams_sent(), 0u);
}

TEST_F(NetFixture, LossyLinkDropsSomeFrames) {
  int count = 0;
  const EndpointId a = net.create_endpoint(m0, nullptr);
  const EndpointId b = net.create_endpoint(m1, [&](wire::FramePacket) { ++count; });
  LinkModel lossy = LinkModel::with_rtt(millis(2.0));
  lossy.loss_rate = 0.001;
  net.set_link(m0, m1, lossy);

  wire::FramePacket pkt;
  pkt.header.payload_bytes = 250 * 1024;  // ~183 fragments
  for (int i = 0; i < 2'000; ++i) net.send(a, b, pkt);
  loop.run();
  EXPECT_LT(count, 1'900);  // ~17% frame loss expected
  EXPECT_GT(count, 1'400);
  EXPECT_EQ(net.datagrams_lost(), 2'000u - static_cast<std::uint64_t>(count));
}

TEST_F(NetFixture, SharedBandwidthQueuesAndTailDrops) {
  int count = 0;
  SimTime last_delivery = 0;
  const EndpointId a = net.create_endpoint(m0, nullptr);
  const EndpointId b = net.create_endpoint(m1, [&](wire::FramePacket) {
    ++count;
    last_delivery = loop.now();
  });
  LinkModel narrow = LinkModel::with_rtt(millis(2.0));
  narrow.bandwidth_bytes_per_sec = 1'000'000.0;  // 8 Mbps
  narrow.max_queue_delay = millis(50.0);
  net.set_link(m0, m1, narrow);

  wire::FramePacket pkt;
  pkt.header.payload_bytes = 10'000;  // 10 ms serialization each
  for (int i = 0; i < 20; ++i) net.send(a, b, pkt);  // 200 ms of backlog
  loop.run();
  // Only ~6 frames fit within the 50 ms queue budget (+1 in service).
  EXPECT_LT(count, 10);
  EXPECT_GT(count, 2);
  // Deliveries spread out by the serializer, not all at t=latency.
  EXPECT_GT(last_delivery, millis(30.0));
}

TEST_F(NetFixture, ByteAndSendCountersAdvance) {
  const EndpointId a = net.create_endpoint(m0, nullptr);
  const EndpointId b = net.create_endpoint(m0, [](wire::FramePacket) {});
  wire::FramePacket pkt;
  pkt.header.payload_bytes = 100;
  net.send(a, b, pkt);
  EXPECT_EQ(net.datagrams_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), pkt.wire_size());
  EXPECT_EQ(net.machine_of(a), m0);
}

}  // namespace
}  // namespace mar::sim
