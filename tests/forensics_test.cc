#include "expt/forensics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "expt/experiment.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace.h"

namespace mar::expt {
namespace {

using telemetry::Tracer;
using telemetry::spans::kDropStale;
using telemetry::spans::kFrameE2e;
using telemetry::spans::kLink;
using telemetry::spans::kRetained;
using telemetry::spans::kService;
using telemetry::spans::kSidecarQueue;

constexpr std::uint32_t kClientTrack = telemetry::kClientTrackBase + 0;

struct ForensicsTest : ::testing::Test {
  void SetUp() override {
    auto& tracer = Tracer::instance();
    tracer.reserve(4096);
    tracer.set_enabled(true);
    tracer.clear();
    tracer.set_track_name(kClientTrack, "client#0");
    tracer.set_track_name(0, "primary#0 (E2)");
  }
  void TearDown() override { Tracer::instance().clear(); }

  // A minimal delivered frame: e2e span wrapping a link hop and a
  // service span, all carrying `id`.
  static void record_delivered(std::uint32_t id, SimTime start, SimTime dur) {
    auto& t = Tracer::instance();
    const ClientId c{0};
    const FrameId f{id};
    t.begin(kClientTrack, kFrameE2e, start, c, f, Stage::kPrimary, 0.0, id);
    t.complete(telemetry::kNetworkTrack, kLink, start, dur / 4, c, f, Stage::kPrimary, 0.0, id);
    t.begin(0, kService, start + dur / 4, c, f, Stage::kPrimary, 0.0, id);
    t.end(0, kService, start + dur / 2, c, f, Stage::kPrimary, 0.0, id);
    t.end(kClientTrack, kFrameE2e, start + dur, c, f, Stage::kPrimary, 0.0, id);
  }
};

TEST_F(ForensicsTest, ReconstructsADeliveredFrame) {
  record_delivered(42, 1'000'000, 8'000'000);
  const TraceLog log = from_tracer(Tracer::instance());
  const auto tl = reconstruct_frame(log, 42);
  ASSERT_TRUE(tl.has_value());
  EXPECT_EQ(tl->trace_id, 42u);
  EXPECT_EQ(tl->verdict, "result");
  EXPECT_TRUE(tl->complete());
  EXPECT_NEAR(tl->span_ms(), 8.0, 1e-9);
  // Hops are sorted by start and the service span paired begin/end.
  ASSERT_GE(tl->hops.size(), 3u);
  EXPECT_TRUE(std::is_sorted(tl->hops.begin(), tl->hops.end(),
                             [](const TimelineHop& a, const TimelineHop& b) {
                               return a.start < b.start;
                             }));
  const auto svc = std::find_if(tl->hops.begin(), tl->hops.end(), [](const TimelineHop& h) {
    return h.name == kService;
  });
  ASSERT_NE(svc, tl->hops.end());
  EXPECT_FALSE(svc->open);
  EXPECT_NEAR(svc->dur_ms(), 2.0, 1e-9);
  EXPECT_EQ(svc->track, "primary#0 (E2)");
  const std::string text = render_timeline(*tl);
  EXPECT_NE(text.find("verdict result"), std::string::npos);
  EXPECT_NE(text.find("per-hop budget"), std::string::npos);
}

TEST_F(ForensicsTest, DropInstantBecomesTheVerdict) {
  auto& t = Tracer::instance();
  const ClientId c{0};
  const FrameId f{7};
  t.begin(kClientTrack, kFrameE2e, 100, c, f, Stage::kPrimary, 0.0, 7);
  t.begin(0, kSidecarQueue, 200, c, f, Stage::kPrimary, 0.0, 7);
  t.instant(0, kDropStale, 900, c, f, Stage::kPrimary, 0.0, 7);
  t.instant(kClientTrack, kRetained, 900, c, f, Stage::kPrimary,
            static_cast<double>(telemetry::RetainReason::kDrop), 7);

  const TraceLog log = from_tracer(Tracer::instance());
  const auto tl = reconstruct_frame(log, 7);
  ASSERT_TRUE(tl.has_value());
  EXPECT_EQ(tl->verdict, kDropStale);
  EXPECT_TRUE(tl->complete());
  EXPECT_EQ(tl->retain_reason, telemetry::RetainReason::kDrop);
  // The retained marker is metadata, not a hop; the unmatched queue
  // begin surfaces as an open hop.
  for (const auto& h : tl->hops) EXPECT_NE(h.name, kRetained);
  const auto queue = std::find_if(tl->hops.begin(), tl->hops.end(), [](const TimelineHop& h) {
    return h.name == kSidecarQueue;
  });
  ASSERT_NE(queue, tl->hops.end());
  EXPECT_TRUE(queue->open);
}

TEST_F(ForensicsTest, UnknownTraceIdIsNullopt) {
  record_delivered(1, 0, 1'000'000);
  const TraceLog log = from_tracer(Tracer::instance());
  EXPECT_FALSE(reconstruct_frame(log, 999).has_value());
}

TEST_F(ForensicsTest, EventLogRoundTripsThroughParse) {
  record_delivered(3, 500'000, 4'000'000);
  auto& t = Tracer::instance();
  t.instant(0, kDropStale, 42, ClientId{0}, FrameId{9}, Stage::kSift, 1.25, 4);

  const std::string text = t.event_log_text();
  const auto parsed = parse_trace_log(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events.size(), t.size());
  EXPECT_EQ(parsed->track_label(0), "primary#0 (E2)");

  // Reconstruction from the parsed log matches the live one.
  const auto live = reconstruct_frame(from_tracer(t), 3);
  const auto disk = reconstruct_frame(*parsed, 3);
  ASSERT_TRUE(live && disk);
  EXPECT_EQ(live->verdict, disk->verdict);
  EXPECT_EQ(live->hops.size(), disk->hops.size());
  EXPECT_DOUBLE_EQ(live->span_ms(), disk->span_ms());

  const auto inst = std::find_if(parsed->events.begin(), parsed->events.end(),
                                 [](const telemetry::TraceEvent& e) { return e.trace_id == 4; });
  ASSERT_NE(inst, parsed->events.end());
  EXPECT_EQ(std::string(inst->name), kDropStale);
  EXPECT_EQ(inst->stage, Stage::kSift);
  EXPECT_DOUBLE_EQ(inst->value, 1.25);
}

TEST_F(ForensicsTest, ParseRejectsWrongHeaderAndSkipsGarbageLines) {
  EXPECT_FALSE(parse_trace_log("not an event log\n").has_value());
  const auto parsed = parse_trace_log(
      "# mar-trace-events v1\n"
      "track 5 sift#1\n"
      "this line is garbage\n"
      "ev 100 0 0 2 1 5 0 0 2 8 drop_stale\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->track_label(5), "sift#1");
}

TEST_F(ForensicsTest, WorstAndDroppedRankings) {
  record_delivered(10, 0, 2'000'000);           // 2 ms
  record_delivered(11, 5'000'000, 9'000'000);   // 9 ms — worst
  record_delivered(12, 1'000'000, 4'000'000);   // 4 ms
  auto& t = Tracer::instance();
  t.begin(kClientTrack, kFrameE2e, 100, ClientId{0}, FrameId{13}, Stage::kPrimary, 0.0, 13);
  t.instant(0, kDropStale, 600'100, ClientId{0}, FrameId{13}, Stage::kPrimary, 0.0, 13);

  const TraceLog log = from_tracer(t);
  const auto worst = worst_trace_ids(log, 2);
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0], 11u);
  EXPECT_EQ(worst[1], 12u);
  const auto dropped = dropped_trace_ids(log);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], 13u);
  EXPECT_EQ(all_trace_ids(log).size(), 4u);
}

// Retention end to end: a small scAtteR++ experiment with the tail
// policy on must keep the deterministic baseline sample, reconstruct
// every retained trace completely, and leave nothing in the ring when
// retention is off (head sampling 0 + retention unset => no traces).
TEST_F(ForensicsTest, ExperimentRetentionIntegration) {
  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.num_clients = 1;
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(5.0);
  cfg.seed = 42;
  cfg.trace_sample_every = 0;
  cfg.retention.emplace();
  cfg.retention->baseline_every = 16;

  Experiment e(cfg);
  e.run();
  const RetentionReport ret = e.result().retention;
  EXPECT_TRUE(ret.enabled);
  EXPECT_GT(ret.frames_closed, 0u);
  EXPECT_GT(ret.retained_baseline, 0u);
  EXPECT_EQ(ret.frames_closed,
            ret.retained_slo + ret.retained_fault + ret.retained_outlier +
                ret.retained_baseline + ret.recycled);

  const TraceLog log = from_tracer(Tracer::instance());
  const auto ids = all_trace_ids(log);
  EXPECT_EQ(ids.size(), ret.retained_total());
  for (std::uint32_t id : ids) {
    const auto tl = reconstruct_frame(log, id);
    ASSERT_TRUE(tl.has_value()) << "trace " << id;
    EXPECT_TRUE(tl->complete()) << "trace " << id << " verdict " << tl->verdict;
    EXPECT_NE(tl->retain_reason, telemetry::RetainReason::kNone) << "trace " << id;
  }

  // Control: retention unset + head sampling off leaves the ring empty.
  Tracer::instance().clear();
  ExperimentConfig off = cfg;
  off.retention.reset();
  Experiment e2(off);
  e2.run();
  EXPECT_FALSE(e2.result().retention.enabled);
  EXPECT_EQ(Tracer::instance().size(), 0u);
}

}  // namespace
}  // namespace mar::expt
