#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "vision/fast_detector.h"
#include "vision/matcher.h"
#include "vision/sift.h"
#include "video/scene.h"

namespace mar::vision {
namespace {

// Checkerboard: corners everywhere.
Image checkerboard(int w, int h, int cell) {
  Image img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img.at(x, y) = ((x / cell + y / cell) % 2) ? 0.9f : 0.1f;
    }
  }
  return img;
}

Image scene_frame() {
  static Image img = resize(video::WorkplaceScene(640, 360).render(0.0), 320, 180);
  return img;
}

TEST(FastDetector, FindsCheckerboardCorners) {
  const Image img = checkerboard(160, 120, 16);
  FastDetector detector;
  const FeatureList features = detector.detect(img);
  EXPECT_GT(features.size(), 20u);
  // Detected corners should sit near cell boundaries.
  for (const Feature& f : features) {
    const float mx = std::fmod(f.keypoint.x, 16.0f);
    const float my = std::fmod(f.keypoint.y, 16.0f);
    const float dist_x = std::min(mx, 16.0f - mx);
    const float dist_y = std::min(my, 16.0f - my);
    EXPECT_LE(std::min(dist_x, dist_y), 5.0f);
  }
}

TEST(FastDetector, FlatImageHasNoFeatures) {
  FastDetector detector;
  EXPECT_TRUE(detector.detect(Image(128, 128, 0.5f)).empty());
}

TEST(FastDetector, TinyImageHandled) {
  FastDetector detector;
  EXPECT_TRUE(detector.detect(Image(8, 8, 0.5f)).empty());
}

TEST(FastDetector, RespectsMaxFeatures) {
  FastParams params;
  params.max_features = 10;
  const FeatureList features = FastDetector(params).detect(checkerboard(160, 120, 12));
  EXPECT_LE(features.size(), 10u);
  EXPECT_GT(features.size(), 5u);
}

TEST(FastDetector, NonMaxSuppressionSpacesCorners) {
  FastParams params;
  params.nms_radius = 8;
  const FeatureList features = FastDetector(params).detect(checkerboard(160, 120, 16));
  for (std::size_t i = 0; i < features.size(); ++i) {
    for (std::size_t j = i + 1; j < features.size(); ++j) {
      const float dx = features[i].keypoint.x - features[j].keypoint.x;
      const float dy = features[i].keypoint.y - features[j].keypoint.y;
      ASSERT_GT(dx * dx + dy * dy, 64.0f);
    }
  }
}

TEST(FastDetector, DescriptorsAreUnitNorm) {
  const FeatureList features = FastDetector().detect(scene_frame());
  ASSERT_GT(features.size(), 20u);
  for (const Feature& f : features) {
    float norm = 0.0f;
    for (float v : f.descriptor) norm += v * v;
    ASSERT_NEAR(std::sqrt(norm), 1.0f, 0.01f);
  }
}

TEST(FastDetector, Deterministic) {
  const Image img = scene_frame();
  FastDetector detector;
  const FeatureList a = detector.detect(img);
  const FeatureList b = detector.detect(img);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].keypoint.x, b[i].keypoint.x);
    EXPECT_EQ(a[i].descriptor, b[i].descriptor);
  }
}

TEST(FastDetector, DescriptorsMatchAcrossTranslation) {
  const Image big = resize(video::WorkplaceScene(640, 360).render(0.0), 400, 225);
  Image a(320, 180), b(320, 180);
  for (int y = 0; y < 180; ++y) {
    for (int x = 0; x < 320; ++x) {
      a.at(x, y) = big.at(x, y);
      b.at(x, y) = big.at(x + 12, y + 8);
    }
  }
  FastParams params;
  params.threshold = 0.02f;  // the synthetic scene is low-contrast
  FastDetector detector(params);
  const FeatureList fa = detector.detect(a);
  const FeatureList fb = detector.detect(b);
  ASSERT_GT(fa.size(), 15u);
  ASSERT_GT(fb.size(), 15u);

  MatcherParams mp;
  mp.max_distance = 1.0f;
  const auto matches = match_features(fa, fb, mp);
  ASSERT_GT(matches.size(), 8u);
  int consistent = 0;
  for (const Match& m : matches) {
    const auto& ka = fa[static_cast<std::size_t>(m.query_index)].keypoint;
    const auto& kb = fb[static_cast<std::size_t>(m.train_index)].keypoint;
    if (std::abs((ka.x - kb.x) - 12.0f) < 3.0f && std::abs((ka.y - kb.y) - 8.0f) < 3.0f) {
      ++consistent;
    }
  }
  EXPECT_GT(static_cast<double>(consistent) / static_cast<double>(matches.size()), 0.5);
}

TEST(FastDetector, FasterThanSift) {
  const Image img = scene_frame();
  const auto time_it = [&img](auto&& detector) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 3; ++i) (void)detector.detect(img);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };
  const double fast_s = time_it(FastDetector());
  const double sift_s = time_it(SiftDetector());
  EXPECT_LT(fast_s, sift_s / 2.0);  // the whole point of the substitution
}

}  // namespace
}  // namespace mar::vision
