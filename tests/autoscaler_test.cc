#include <gtest/gtest.h>

#include "ctrl/scale_policy.h"
#include "expt/experiment.h"
#include "expt/population.h"
#include "expt/report.h"

namespace mar::expt {
namespace {

ExperimentConfig overloaded_config(int clients = 6) {
  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatterPP;
  cfg.placement = SymbolicPlacement::single(Site::kE2);
  cfg.num_clients = clients;
  cfg.warmup = seconds(1.0);
  cfg.duration = seconds(20.0);
  cfg.seed = 900;
  return cfg;
}

TEST(ScalePolicy, AppAwareScalesUnderOverload) {
  Experiment e(overloaded_config());
  e.build();
  ctrl::ScalePolicy::Config sc;
  sc.signal = ctrl::ScalePolicy::Signal::kApplication;
  sc.up_threshold = 0.10;
  ctrl::ScalePolicy scaler(e.deployment(), sc);
  scaler.start();
  e.run();
  EXPECT_GT(scaler.events().size(), 0u);
  // More than the initial 5 replicas must now exist.
  EXPECT_GT(e.deployment().instances().size(), 5u);
}

TEST(ScalePolicy, AppAwareImprovesFps) {
  const ExperimentResult base = run_experiment(overloaded_config());

  Experiment e(overloaded_config());
  e.build();
  ctrl::ScalePolicy::Config sc;
  sc.signal = ctrl::ScalePolicy::Signal::kApplication;
  ctrl::ScalePolicy scaler(e.deployment(), sc);
  scaler.start();
  e.run();
  EXPECT_GT(e.result().fps_mean, base.fps_mean * 1.1);
}

TEST(ScalePolicy, IdleSystemNeverScales) {
  ExperimentConfig cfg = overloaded_config(/*clients=*/1);
  Experiment e(cfg);
  e.build();
  ctrl::ScalePolicy::Config sc;
  sc.signal = ctrl::ScalePolicy::Signal::kApplication;
  ctrl::ScalePolicy scaler(e.deployment(), sc);
  scaler.start();
  e.run();
  EXPECT_EQ(scaler.events().size(), 0u);
  EXPECT_EQ(e.deployment().instances().size(), 5u);
}

TEST(ScalePolicy, RespectsReplicaCap) {
  Experiment e(overloaded_config(10));
  e.build();
  ctrl::ScalePolicy::Config sc;
  sc.signal = ctrl::ScalePolicy::Signal::kApplication;
  sc.max_replicas_per_stage = 2;
  sc.interval = millis(500.0);
  ctrl::ScalePolicy scaler(e.deployment(), sc);
  scaler.start();
  e.run();
  for (int s = 0; s < kNumStages; ++s) {
    EXPECT_LE(e.deployment().hosts_of(static_cast<Stage>(s)).size(), 2u);
  }
}

TEST(ScalePolicy, HardwareSignalReactsToOccupancyOnly) {
  Experiment e(overloaded_config());
  e.build();
  ctrl::ScalePolicy::Config sc;
  sc.signal = ctrl::ScalePolicy::Signal::kHardware;
  sc.up_threshold = 1.01;  // impossible occupancy: must never fire
  ctrl::ScalePolicy scaler(e.deployment(), sc);
  scaler.start();
  e.run();
  EXPECT_EQ(scaler.events().size(), 0u);
}

TEST(Deployment, AddReplicaJoinsRouting) {
  ExperimentConfig cfg = overloaded_config(1);
  Experiment e(cfg);
  e.build();
  const InstanceId added = e.deployment().add_replica(Stage::kSift, e.testbed().e1());
  e.run();
  // The new replica received traffic through the round-robin router.
  EXPECT_GT(e.testbed().orchestrator().host(added).stats().received, 0u);
  EXPECT_EQ(e.deployment().hosts_of(Stage::kSift).size(), 2u);
}

// --- population-driven ramp smoke test -------------------------------------

// Arrivals ramp 1 -> N over the warmup-adjacent window (the population
// generator's linear ramp schedule, fed through client_stagger), the
// SLO watchdog holds per-client FPS, and the app-aware scaler absorbs
// the growing load.
TEST(ScalePolicy, HoldsFpsThroughPopulationRamp) {
  constexpr int kClients = 10;
  const SimDuration ramp = seconds(10.0);
  const auto starts = PopulationModel::ramp_starts(kClients, ramp);
  ASSERT_EQ(starts.size(), static_cast<std::size_t>(kClients));

  ExperimentConfig cfg = overloaded_config(kClients);
  // phase_offset = i * stagger reproduces the generator's schedule:
  // ramp_starts is linear, so the per-client spacing is starts[1].
  cfg.client_stagger = starts[1];
  cfg.duration = seconds(30.0);
  SloTargets slo;
  slo.min_fps = 10.0;
  cfg.slo = slo;

  const ExperimentResult base = run_experiment(cfg);  // no scaler: sags

  Experiment e(cfg);
  e.build();
  ctrl::ScalePolicy::Config sc;
  sc.signal = ctrl::ScalePolicy::Signal::kApplication;
  ctrl::ScalePolicy scaler(e.deployment(), sc);
  scaler.start();
  e.run();
  const ExperimentResult scaled = e.result();

  // The scaler reacted while the ramp was still filling in, and the
  // watchdog-tracked FPS ends up strictly better than unscaled.
  EXPECT_GT(scaler.events().size(), 0u);
  EXPECT_GT(e.deployment().instances().size(), 5u);
  EXPECT_GT(scaled.fps_mean, base.fps_mean * 1.1);
  ASSERT_TRUE(scaled.slo.enabled);
  EXPECT_GT(scaled.slo.window_fps, base.slo.window_fps);
}

// --- report export ---------------------------------------------------------

TEST(Report, CsvContainsAllSections) {
  ExperimentConfig cfg = overloaded_config(1);
  cfg.duration = seconds(5.0);
  const ExperimentResult r = run_experiment(cfg);
  const std::string csv = to_csv(r);
  EXPECT_NE(csv.find("qos,fps_mean,"), std::string::npos);
  EXPECT_NE(csv.find("sift,"), std::string::npos);
  EXPECT_NE(csv.find("matching,"), std::string::npos);
  EXPECT_NE(csv.find("E2,"), std::string::npos);
}

TEST(Report, JsonIsStructured) {
  ExperimentConfig cfg = overloaded_config(1);
  cfg.duration = seconds(5.0);
  const ExperimentResult r = run_experiment(cfg);
  const std::string json = to_json(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"qos\""), std::string::npos);
  EXPECT_NE(json.find("\"services\""), std::string::npos);
  EXPECT_NE(json.find("\"machines\""), std::string::npos);
  // Balanced braces (cheap structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Report, WritesFileByExtension) {
  ExperimentConfig cfg = overloaded_config(1);
  cfg.duration = seconds(3.0);
  const ExperimentResult r = run_experiment(cfg);
  const std::string path = "/tmp/mar_report_test.json";
  ASSERT_TRUE(write_report(r, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char c = 0;
  ASSERT_EQ(std::fread(&c, 1, 1, f), 1u);
  EXPECT_EQ(c, '{');
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mar::expt
