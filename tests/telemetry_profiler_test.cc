// Profiling-plane tests: stage-scope + allocation attribution, the
// signal-driven CPU sampler, and the start/stop lifecycle under
// concurrent attribution traffic (this file carries the tsan label).
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/profiler.h"

namespace mar::telemetry {
namespace {

using Clock = std::chrono::steady_clock;

// Burn real CPU time (the sampler's timers are CPU-clock driven, so
// sleeping produces no samples).
void burn_cpu_ms(int ms) {
  volatile double sink = 0.0;
  const auto until = Clock::now() + std::chrono::milliseconds(ms);
  while (Clock::now() < until) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  }
  (void)sink;
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().set_attribution(false);
    Profiler::instance().reset_alloc();
  }
  void TearDown() override {
    if (Profiler::instance().running()) (void)Profiler::instance().stop();
    Profiler::instance().set_attribution(false);
    Profiler::instance().reset_alloc();
  }
};

TEST_F(ProfilerTest, DisabledScopesAndAllocsAreNoOps) {
  ASSERT_FALSE(profiling_enabled());
  {
    ProfScope scope("sift");
    profile_alloc(4096);
    profile_alloc_as("encoding", 4096);
  }
  EXPECT_TRUE(Profiler::instance().alloc_report().stages.empty());
}

TEST_F(ProfilerTest, AllocAttributesToInnermostScope) {
  Profiler::instance().set_attribution(true);
  {
    ProfScope outer("sift");
    profile_alloc(100);
    {
      ProfScope inner("sift_pyramid");
      profile_alloc(1000);
      profile_alloc(1000);
    }
  }
  profile_alloc(7);  // no scope active on this thread anymore

  const AllocReport report = Profiler::instance().alloc_report();
  const AllocReport::Stage* outer_stage = report.find("sift");
  const AllocReport::Stage* inner_stage = report.find("sift_pyramid");
  const AllocReport::Stage* unattributed = report.find("(unattributed)");
  ASSERT_NE(outer_stage, nullptr);
  ASSERT_NE(inner_stage, nullptr);
  ASSERT_NE(unattributed, nullptr);
  EXPECT_EQ(outer_stage->bytes, 100u);
  EXPECT_EQ(outer_stage->calls, 1u);
  EXPECT_EQ(inner_stage->bytes, 2000u);
  EXPECT_EQ(inner_stage->calls, 2u);
  EXPECT_EQ(unattributed->bytes, 7u);
  EXPECT_EQ(report.total_bytes(), 2107u);

  // Explicit-stage attribution wins over the active scope.
  {
    ProfScope scope("matching");
    profile_alloc_as("dsp_state", 55);
  }
  const AllocReport after = Profiler::instance().alloc_report();
  ASSERT_NE(after.find("dsp_state"), nullptr);
  EXPECT_EQ(after.find("dsp_state")->bytes, 55u);

  // Folded output carries one "stage bytes" line per stage.
  const std::string folded = after.folded_text();
  EXPECT_NE(folded.find("sift_pyramid 2000"), std::string::npos);
}

TEST_F(ProfilerTest, ResetAllocClears) {
  Profiler::instance().set_attribution(true);
  profile_alloc_as("sift", 123);
  ASSERT_FALSE(Profiler::instance().alloc_report().stages.empty());
  Profiler::instance().reset_alloc();
  EXPECT_TRUE(Profiler::instance().alloc_report().stages.empty());
}

TEST_F(ProfilerTest, CpuSamplingAttributesBusyScope) {
  ASSERT_TRUE(Profiler::instance().start(500).is_ok());
  {
    ProfScope scope("spin_stage");
    burn_cpu_ms(300);
  }
  const ProfileReport report = Profiler::instance().stop();
  EXPECT_FALSE(Profiler::instance().running());
  EXPECT_EQ(report.hz, 500);
  EXPECT_GT(report.duration_s, 0.0);
  ASSERT_GT(report.samples, 0u);
  EXPECT_GT(report.stage_samples("spin_stage"), 0u);
  EXPECT_GT(report.attributed_fraction(), 0.0);

  const std::string folded = report.folded_text();
  EXPECT_NE(folded.find("spin_stage"), std::string::npos);
  // Every folded line is "stack count"; counts sum to `samples`.
  std::uint64_t total = 0;
  for (const auto& [stack, count] : report.folded) {
    EXPECT_FALSE(stack.empty());
    total += count;
  }
  EXPECT_EQ(total, report.samples);

  const std::string speedscope = report.speedscope_json("test");
  EXPECT_NE(speedscope.find("\"$schema\""), std::string::npos);
  EXPECT_NE(speedscope.find("spin_stage"), std::string::npos);
}

TEST_F(ProfilerTest, StartWhileRunningFails) {
  ASSERT_TRUE(Profiler::instance().start(99).is_ok());
  EXPECT_TRUE(Profiler::instance().running());
  EXPECT_FALSE(Profiler::instance().start(99).is_ok());
  (void)Profiler::instance().stop();
}

TEST_F(ProfilerTest, StopWhenNotRunningIsEmptyNoOp) {
  ASSERT_FALSE(Profiler::instance().running());
  const ProfileReport report = Profiler::instance().stop();
  EXPECT_EQ(report.samples, 0u);
  EXPECT_TRUE(report.folded.empty());
}

TEST_F(ProfilerTest, SnapshotIsMonotonicWhileRunning) {
  ASSERT_TRUE(Profiler::instance().start(500).is_ok());
  ProfScope scope("snap_stage");
  burn_cpu_ms(150);
  const ProfileReport first = Profiler::instance().snapshot();
  burn_cpu_ms(150);
  const ProfileReport second = Profiler::instance().snapshot();
  EXPECT_GE(second.samples, first.samples);
  const ProfileReport final_report = Profiler::instance().stop();
  EXPECT_GE(final_report.samples, second.samples);
  // The last completed report stays queryable after stop().
  EXPECT_EQ(Profiler::instance().snapshot().samples, final_report.samples);
}

// The tsan-label centerpiece: worker threads hammer scopes and allocs
// while the main thread cycles start/stop. The quiesce protocol must
// keep handler-vs-reset and scope-vs-sampler accesses race-free.
TEST_F(ProfilerTest, StartStopRestartUnderConcurrentAttribution) {
  std::atomic<bool> stop_workers{false};
  std::vector<std::thread> workers;
  workers.reserve(3);
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&stop_workers] {
      while (!stop_workers.load(std::memory_order_relaxed)) {
        ProfScope outer("worker_outer");
        profile_alloc(64);
        {
          ProfScope inner("worker_inner");
          profile_alloc(32);
          burn_cpu_ms(1);
        }
      }
    });
  }

  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(Profiler::instance().start(500).is_ok());
    burn_cpu_ms(60);
    const ProfileReport report = Profiler::instance().stop();
    EXPECT_GE(report.samples, 0u);
  }

  stop_workers.store(true, std::memory_order_relaxed);
  for (auto& t : workers) t.join();

  const AllocReport allocs = Profiler::instance().alloc_report();
  ASSERT_NE(allocs.find("worker_inner"), nullptr);
  EXPECT_GT(allocs.find("worker_inner")->bytes, 0u);
}

}  // namespace
}  // namespace mar::telemetry
