// Production-transport tests: XOR-parity FEC repair, the NACK
// retransmission controller (clock-injected, no sleeps), the epoll
// event loop, sender-side adaptive quality, and the recovery-enabled
// FrameChannel end to end on loopback.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "net/adaptive.h"
#include "net/epoll_loop.h"
#include "net/fragment.h"
#include "net/frame_channel.h"
#include "net/rtx.h"
#include "telemetry/registry.h"

namespace mar::net {
namespace {

using std::chrono::milliseconds;

std::vector<std::uint8_t> random_blob(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

// --- FEC ----------------------------------------------------------------------

TEST(Fec, ParityRepairsSingleLossPerGroup) {
  const auto msg = random_blob(5 * kMaxFragmentPayload - 1000, 1);  // 5 fragments
  const auto frags = fragment_message(msg, 50);
  const auto parity = fec_parity_fragments(msg, 50, 4);
  ASSERT_EQ(frags.size(), 5u);
  ASSERT_EQ(parity.size(), 2u);  // groups {0..3} and {4}

  Reassembler r;
  Reassembler::AddResult done;
  // Drop fragment 1; deliver the rest plus both parity datagrams.
  for (std::size_t i = 0; i < frags.size(); ++i) {
    if (i == 1) continue;
    done = r.add_ex(frags[i]);
    EXPECT_FALSE(done.message.has_value());
  }
  done = r.add_ex(parity[0]);  // repairs fragment 1 -> completes
  if (!done.message) done = r.add_ex(parity[1]);
  ASSERT_TRUE(done.message.has_value());
  EXPECT_EQ(*done.message, msg);
  EXPECT_EQ(done.message_repairs, 1u);
  EXPECT_EQ(r.fec_repairs(), 1u);
}

TEST(Fec, ParityArrivingFirstRepairsOnLastDataFragment) {
  const auto msg = random_blob(3 * kMaxFragmentPayload, 2);  // 3 fragments, one group
  const auto frags = fragment_message(msg, 51);
  const auto parity = fec_parity_fragments(msg, 51, 4);
  ASSERT_EQ(parity.size(), 1u);

  Reassembler r;
  EXPECT_FALSE(r.add_ex(parity[0]).message.has_value());
  EXPECT_FALSE(r.add_ex(frags[0]).message.has_value());
  // Fragment 1 lost; fragment 2's arrival makes 1 the group's single
  // missing index, so the pending parity finishes the job.
  const auto done = r.add_ex(frags[2]);
  ASSERT_TRUE(done.message.has_value());
  EXPECT_EQ(*done.message, msg);
  EXPECT_EQ(done.repaired, 1u);
}

TEST(Fec, TwoLossesInOneGroupAreBeyondParity) {
  const auto msg = random_blob(4 * kMaxFragmentPayload, 3);
  const auto frags = fragment_message(msg, 52);
  const auto parity = fec_parity_fragments(msg, 52, 4);
  Reassembler r;
  r.add_ex(frags[0]);
  r.add_ex(frags[3]);  // fragments 1 and 2 lost
  const auto res = r.add_ex(parity[0]);
  EXPECT_FALSE(res.message.has_value());
  EXPECT_EQ(res.repaired, 0u);
  EXPECT_EQ(r.pending(), 1u);
}

TEST(Fec, UnevenTailGroupRepairs) {
  // 5 fragments at k=4: the tail group holds a single fragment, whose
  // parity is a plain copy — losing it must still repair.
  const auto msg = random_blob(4 * kMaxFragmentPayload + 500, 4);
  const auto frags = fragment_message(msg, 53);
  const auto parity = fec_parity_fragments(msg, 53, 4);
  ASSERT_EQ(frags.size(), 5u);
  Reassembler r;
  for (std::size_t i = 0; i < 4; ++i) r.add_ex(frags[i]);  // fragment 4 lost
  const auto done = r.add_ex(parity[1]);
  ASSERT_TRUE(done.message.has_value());
  EXPECT_EQ(*done.message, msg);
}

TEST(Fec, ConflictingParityMetadataRejected) {
  const auto msg = random_blob(2 * kMaxFragmentPayload, 5);
  auto parity = fec_parity_fragments(msg, 54, 4);
  ASSERT_EQ(parity.size(), 1u);
  // total_bytes inconsistent with the fragment count -> rejected.
  auto bad = parity[0];
  bad[10] = 0xFF;  // clobber total_bytes (bytes 10..13 little-endian)
  bad[11] = 0xFF;
  bad[12] = 0xFF;
  bad[13] = 0x00;
  Reassembler r;
  const auto res = r.add_ex(bad);
  EXPECT_FALSE(res.accepted);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Fec, LateParityCannotResurrectCompletedMessage) {
  // Regression: a parity datagram over a 1-fragment group IS that
  // fragment, so without completed-id memory the message would deliver
  // twice (and cascade through a pipeline).
  const auto msg = random_blob(1000, 6);
  const auto frags = fragment_message(msg, 55);
  const auto parity = fec_parity_fragments(msg, 55, 4);
  ASSERT_EQ(frags.size(), 1u);
  ASSERT_EQ(parity.size(), 1u);
  Reassembler r;
  ASSERT_TRUE(r.add_ex(frags[0]).message.has_value());
  const auto again = r.add_ex(parity[0]);
  EXPECT_FALSE(again.message.has_value());
  EXPECT_FALSE(again.accepted);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Fec, LateDuplicateDataCannotResurrectEither) {
  const auto msg = random_blob(2 * kMaxFragmentPayload, 7);
  const auto frags = fragment_message(msg, 56);
  Reassembler r;
  r.add_ex(frags[0]);
  ASSERT_TRUE(r.add_ex(frags[1]).message.has_value());
  const auto dup = r.add_ex(frags[0]);  // crossed the completion
  EXPECT_FALSE(dup.accepted);
  EXPECT_EQ(r.pending(), 0u);
}

// --- Reassembler bounds -------------------------------------------------------

TEST(Reassembler, MaxPendingCapEvictsStalest) {
  Reassembler r(milliseconds(60'000), /*max_pending=*/3);
  const auto msg = random_blob(2 * kMaxFragmentPayload, 8);
  for (std::uint32_t id = 1; id <= 3; ++id) {
    r.add_ex(fragment_message(msg, id)[0]);
    std::this_thread::sleep_for(milliseconds(2));  // distinct last_activity
  }
  EXPECT_EQ(r.pending(), 3u);
  EXPECT_EQ(r.evicted(), 0u);
  r.add_ex(fragment_message(msg, 4)[0]);
  EXPECT_EQ(r.pending(), 3u);
  EXPECT_EQ(r.evicted(), 1u);
  // The stalest partial (id 1) is the one that went.
  bool saw1 = false, saw4 = false;
  for (const auto& m : r.pending_messages()) {
    saw1 |= m.id == 1;
    saw4 |= m.id == 4;
  }
  EXPECT_FALSE(saw1);
  EXPECT_TRUE(saw4);
}

TEST(Reassembler, GcExpiryCounterIsAccurate) {
  Reassembler r(milliseconds(0));
  const auto msg = random_blob(2 * kMaxFragmentPayload, 9);
  r.add_ex(fragment_message(msg, 70)[0]);
  r.add_ex(fragment_message(msg, 71)[0]);
  std::this_thread::sleep_for(milliseconds(2));
  r.garbage_collect();
  EXPECT_EQ(r.pending(), 0u);
  EXPECT_EQ(r.expired(), 2u);
  r.garbage_collect();  // idempotent: nothing left to expire
  EXPECT_EQ(r.expired(), 2u);
}

TEST(Reassembler, TruncatedAndGarbageDatagramsRejected) {
  const auto msg = random_blob(1000, 10);
  auto frag = fragment_message(msg, 80)[0];
  Reassembler r;
  // Truncated below the header.
  const std::vector<std::uint8_t> stub(frag.begin(), frag.begin() + kFragmentHeaderBytes - 1);
  EXPECT_FALSE(r.add_ex(stub).accepted);
  // Truncated payload (len field no longer matches remaining bytes).
  const std::vector<std::uint8_t> cut(frag.begin(), frag.end() - 10);
  EXPECT_FALSE(r.add_ex(cut).accepted);
  // Unknown magic.
  auto alien = frag;
  alien[0] = 0x42;
  EXPECT_FALSE(r.add_ex(alien).accepted);
  // index >= count.
  auto bad_index = frag;
  bad_index[5] = 9;  // index u16 little-endian at offset 5
  EXPECT_FALSE(r.add_ex(bad_index).accepted);
  EXPECT_EQ(r.pending(), 0u);
  // The intact original still round-trips.
  EXPECT_TRUE(r.add_ex(frag).message.has_value());
}

TEST(Reassembler, AbandonBlocksResurrection) {
  const auto msg = random_blob(3 * kMaxFragmentPayload, 11);
  const auto frags = fragment_message(msg, 90);
  Reassembler r;
  r.add_ex(frags[0]);
  EXPECT_EQ(r.pending(), 1u);
  EXPECT_TRUE(r.abandon(90));
  EXPECT_EQ(r.pending(), 0u);
  // Stragglers for the abandoned id must not restart reassembly (and
  // with it the NACK cycle).
  EXPECT_FALSE(r.add_ex(frags[1]).accepted);
  EXPECT_EQ(r.pending(), 0u);
  EXPECT_FALSE(r.abandon(90));  // nothing left to drop
}

TEST(Reassembler, MissingFragmentsReportsGaps) {
  const auto msg = random_blob(3 * kMaxFragmentPayload, 12);
  const auto frags = fragment_message(msg, 91);
  Reassembler r;
  r.add_ex(frags[0]);
  r.add_ex(frags[2]);
  EXPECT_EQ(r.missing_fragments(91), (std::vector<std::uint16_t>{1}));
  EXPECT_TRUE(r.missing_fragments(999).empty());  // unknown id
}

// --- NACK/ACK wire ------------------------------------------------------------

TEST(RtxWire, NackRoundTrip) {
  const NackInfo in{0xDEADBEEF, 7, {0, 3, 6}};
  const auto wire = encode_nack(in);
  EXPECT_TRUE(is_control_datagram(wire));
  const auto out = parse_nack(wire);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->message_id, in.message_id);
  EXPECT_EQ(out->count, in.count);
  EXPECT_EQ(out->missing, in.missing);
}

TEST(RtxWire, AckRoundTripAndDiscrimination) {
  const auto ack = encode_ack(1234);
  EXPECT_TRUE(is_control_datagram(ack));
  EXPECT_EQ(parse_ack(ack), std::optional<std::uint32_t>(1234));
  EXPECT_FALSE(parse_nack(ack).has_value());
  const auto frag = fragment_message(random_blob(10, 13), 1)[0];
  EXPECT_FALSE(is_control_datagram(frag));
  EXPECT_FALSE(parse_ack(frag).has_value());
  // Truncated NACK (missing list shorter than advertised).
  auto nack = encode_nack(NackInfo{1, 2, {0, 1}});
  nack.pop_back();
  EXPECT_FALSE(parse_nack(nack).has_value());
}

// --- RtxController (clock-injected, no sleeps) --------------------------------

TEST(RtxController, NackBackoffScheduleAndAbandon) {
  RtxConfig cfg;
  cfg.max_rounds = 2;
  cfg.nack_timeout = milliseconds(25);
  cfg.backoff = 2.0;
  RtxController rtx(cfg);

  const auto msg = random_blob(2 * kMaxFragmentPayload, 14);
  const auto frags = fragment_message(msg, 300);
  Reassembler r;
  r.add_ex(frags[0]);  // fragment 1 missing
  const auto t0 = RtxController::Clock::now();

  // Within the quiet window: arms, nothing due.
  EXPECT_TRUE(rtx.due(r, t0).nacks.empty());
  // Past the stall timeout: first NACK with the missing index.
  auto due = rtx.due(r, t0 + milliseconds(30));
  ASSERT_EQ(due.nacks.size(), 1u);
  EXPECT_EQ(due.nacks[0].id, 300u);
  EXPECT_EQ(due.nacks[0].missing, (std::vector<std::uint16_t>{1}));
  EXPECT_TRUE(rtx.nacked(300));
  // Immediately after: backed off, not due again.
  EXPECT_TRUE(rtx.due(r, t0 + milliseconds(31)).nacks.empty());
  // After backoff^1 * timeout: round two.
  due = rtx.due(r, t0 + milliseconds(30 + 51));
  ASSERT_EQ(due.nacks.size(), 1u);
  // Budget exhausted on the next deadline: abandon, schedule dropped.
  due = rtx.due(r, t0 + milliseconds(30 + 51 + 101));
  EXPECT_TRUE(due.nacks.empty());
  ASSERT_EQ(due.abandon.size(), 1u);
  EXPECT_EQ(due.abandon[0], 300u);
  EXPECT_EQ(rtx.frames_abandoned(), 1u);
  EXPECT_EQ(rtx.nacks_sent(), 2u);
}

TEST(RtxController, ScheduleForgetsCompletedMessages) {
  RtxController rtx;
  const auto msg = random_blob(2 * kMaxFragmentPayload, 15);
  const auto frags = fragment_message(msg, 301);
  Reassembler r;
  r.add_ex(frags[0]);
  (void)rtx.due(r, RtxController::Clock::now());
  r.add_ex(frags[1]);  // completes; no longer pending
  (void)rtx.due(r, RtxController::Clock::now());
  EXPECT_FALSE(rtx.nacked(301));  // schedule entry pruned
}

TEST(RtxController, SenderRetainAnswersWithinBudget) {
  RtxConfig cfg;
  cfg.rtx_budget = 2;
  RtxController rtx(cfg);
  const auto now = RtxController::Clock::now();
  const auto msg = random_blob(3 * kMaxFragmentPayload, 16);
  auto frags = fragment_message(msg, 400);
  const auto frag1 = frags[1];
  rtx.retain(400, std::move(frags), now);
  EXPECT_EQ(rtx.retained(), 1u);

  auto resend = rtx.handle_nack(NackInfo{400, 3, {1}});
  ASSERT_EQ(resend.size(), 1u);
  EXPECT_EQ(*resend[0], frag1);
  // Out-of-range indexes are skipped, unknown ids answer nothing.
  EXPECT_TRUE(rtx.handle_nack(NackInfo{400, 3, {9}}).empty());
  EXPECT_TRUE(rtx.handle_nack(NackInfo{999, 3, {0}}).empty());
  // Budget (2): one more fragment, then exhausted.
  EXPECT_EQ(rtx.handle_nack(NackInfo{400, 3, {0, 2}}).size(), 1u);
  EXPECT_EQ(rtx.rtx_budget_exhausted(), 1u);
  EXPECT_EQ(rtx.fragments_retransmitted(), 2u);
}

TEST(RtxController, RetainedMessagesAgeOutAndAckReleases) {
  RtxConfig cfg;
  cfg.retain_for = milliseconds(100);
  cfg.max_retained = 2;
  RtxController rtx(cfg);
  const auto t0 = RtxController::Clock::now();
  const auto msg = random_blob(100, 17);
  rtx.retain(1, fragment_message(msg, 1), t0);
  rtx.retain(2, fragment_message(msg, 2), t0 + milliseconds(10));
  rtx.retain(3, fragment_message(msg, 3), t0 + milliseconds(20));  // evicts oldest (1)
  EXPECT_EQ(rtx.retained(), 2u);
  EXPECT_TRUE(rtx.handle_nack(NackInfo{1, 1, {0}}).empty());

  rtx.handle_ack(2);
  EXPECT_EQ(rtx.retained(), 1u);
  rtx.expire_retained(t0 + milliseconds(200));
  EXPECT_EQ(rtx.retained(), 0u);
}

// --- EpollLoop ----------------------------------------------------------------

struct PipePair {
  int fds[2] = {-1, -1};
  PipePair() { EXPECT_EQ(::pipe(fds), 0); }
  ~PipePair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

TEST(EpollLoop, DispatchesReadableFds) {
  EpollLoop loop;
  ASSERT_TRUE(loop.init().is_ok());
  PipePair p;
  int fired = 0;
  ASSERT_TRUE(loop.add(p.fds[0], [&] {
    char buf[8];
    (void)::read(p.fds[0], buf, sizeof(buf));
    ++fired;
  }).is_ok());
  EXPECT_EQ(loop.watched(), 1u);

  EXPECT_EQ(loop.run_once(0), 0);  // nothing readable yet
  ASSERT_EQ(::write(p.fds[1], "x", 1), 1);
  EXPECT_GE(loop.run_once(100), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.events_dispatched(), 1u);

  ASSERT_TRUE(loop.remove(p.fds[0]).is_ok());
  EXPECT_EQ(loop.watched(), 0u);
  ASSERT_EQ(::write(p.fds[1], "y", 1), 1);
  EXPECT_EQ(loop.run_once(0), 0);  // removed fd no longer dispatches
}

TEST(EpollLoop, OneShotAndPeriodicTimers) {
  EpollLoop loop;
  ASSERT_TRUE(loop.init().is_ok());
  int one_shot = 0, periodic = 0;
  loop.schedule_after(milliseconds(5), [&] { ++one_shot; });
  loop.schedule_after(milliseconds(2), [&] { ++periodic; }, milliseconds(2));

  const auto deadline = EpollLoop::Clock::now() + milliseconds(500);
  while ((one_shot < 1 || periodic < 3) && EpollLoop::Clock::now() < deadline) {
    loop.run_once(20);
  }
  EXPECT_EQ(one_shot, 1);
  EXPECT_GE(periodic, 3);
  EXPECT_GE(loop.timers_fired(), 4u);
}

TEST(EpollLoop, CancelledTimerNeverFires) {
  EpollLoop loop;
  ASSERT_TRUE(loop.init().is_ok());
  int fired = 0;
  const auto id = loop.schedule_after(milliseconds(1), [&] { ++fired; });
  loop.cancel(id);
  const auto deadline = EpollLoop::Clock::now() + milliseconds(50);
  while (EpollLoop::Clock::now() < deadline) loop.run_once(10);
  EXPECT_EQ(fired, 0);
}

TEST(EpollLoop, TimersFireInDeadlineOrder) {
  EpollLoop loop;
  ASSERT_TRUE(loop.init().is_ok());
  std::vector<int> order;
  loop.schedule_after(milliseconds(8), [&] { order.push_back(2); });
  loop.schedule_after(milliseconds(2), [&] { order.push_back(1); });
  const auto deadline = EpollLoop::Clock::now() + milliseconds(500);
  while (order.size() < 2 && EpollLoop::Clock::now() < deadline) loop.run_once(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EpollLoop, RunHonorsKeepGoing) {
  EpollLoop loop;
  ASSERT_TRUE(loop.init().is_ok());
  int ticks = 0;
  loop.schedule_after(milliseconds(1), [&] { ++ticks; }, milliseconds(1));
  loop.run([&] { return ticks < 3; }, /*max_wait_ms=*/5);
  EXPECT_GE(ticks, 3);
}

// --- AdaptiveQuality ----------------------------------------------------------

TEST(Adaptive, StepsDownUnderSustainedLossAndHonorsCooldown) {
  AdaptiveConfig cfg;
  cfg.cooldown_frames = 4;
  AdaptiveQuality q(cfg);
  EXPECT_EQ(q.level(), cfg.max_level);
  EXPECT_DOUBLE_EQ(q.scale(), 1.0);

  // 30% of fragments needing retransmission: EWMA crosses the 8%
  // threshold quickly, but cooldown spaces the downgrades out.
  int frames_to_first_drop = 0;
  while (q.level() == cfg.max_level && frames_to_first_drop < 50) {
    q.on_frame(10, 3, true);
    ++frames_to_first_drop;
  }
  EXPECT_LT(frames_to_first_drop, 10);
  EXPECT_EQ(q.level(), cfg.max_level - 1);
  const auto down_before = q.downgrades();
  q.on_frame(10, 3, true);  // inside the cooldown window
  EXPECT_EQ(q.downgrades(), down_before);
}

TEST(Adaptive, UndeliveredFrameCountsAsTotalLoss) {
  AdaptiveQuality q;
  q.on_frame(10, 0, /*delivered=*/false);
  EXPECT_GT(q.loss_estimate(), 0.2);  // alpha * 1.0
}

TEST(Adaptive, RecoversOnlyAfterSustainedCleanFrames) {
  AdaptiveConfig cfg;
  cfg.hold_frames = 8;
  AdaptiveQuality q(cfg);
  while (q.level() > cfg.min_level) q.on_frame(10, 6, true);
  EXPECT_EQ(q.level(), cfg.min_level);
  EXPECT_GT(q.downgrades(), 0u);
  EXPECT_LT(q.scale(), 1.0);
  EXPECT_GE(q.scale(), 0.39);

  int clean = 0;
  while (q.level() < cfg.max_level && clean < 500) {
    q.on_frame(10, 0, true);
    ++clean;
  }
  EXPECT_EQ(q.level(), cfg.max_level);
  // Decay of the EWMA plus hold_frames per step: strictly slower than
  // the way down.
  EXPECT_GT(clean, cfg.hold_frames);
  EXPECT_EQ(q.upgrades(), static_cast<std::uint64_t>(cfg.max_level - cfg.min_level));
}

// --- FrameChannel with recovery on --------------------------------------------

TEST(FrameChannelRecovery, LossyLinkRecoversWithFecAndRtx) {
  ChannelOptions sender_opts;
  sender_opts.enable_rtx = true;
  sender_opts.fec_group = 4;
  sender_opts.tx_loss_rate = 0.15;
  sender_opts.tx_loss_seed = 1234;
  ChannelOptions receiver_opts;
  receiver_opts.enable_rtx = true;
  receiver_opts.rtx.nack_timeout = milliseconds(5);

  FrameChannel sender(sender_opts), receiver(receiver_opts);
  ASSERT_TRUE(sender.open(0).is_ok());
  ASSERT_TRUE(receiver.open(0).is_ok());
  const SockAddr dst = SockAddr::loopback(receiver.local_addr().value().port);

  int delivered = 0;
  constexpr int kFrames = 8;
  for (int f = 0; f < kFrames; ++f) {
    wire::FramePacket pkt;
    pkt.header.frame = FrameId{static_cast<std::uint64_t>(f)};
    pkt.payload = random_blob(280'000, 100 + static_cast<std::uint64_t>(f));
    pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
    ASSERT_TRUE(sender.send(pkt, dst).is_ok());
    const auto deadline = std::chrono::steady_clock::now() + milliseconds(500);
    while (std::chrono::steady_clock::now() < deadline) {
      if (auto rx = receiver.poll(1)) {
        EXPECT_EQ(rx->packet.payload, pkt.payload);
        ++delivered;
        break;
      }
      sender.poll(0);
    }
  }
  // At 15% per-datagram loss a fire-and-forget 5-fragment frame
  // survives ~44% of the time; with FEC + NACK every frame lands.
  EXPECT_EQ(delivered, kFrames);
  EXPECT_GT(sender.harness_dropped(), 0u);
  EXPECT_GT(receiver.fec_repairs() + sender.rtx_fragments_sent(), 0u);
  EXPECT_EQ(receiver.frames_unrecoverable(), 0u);
}

TEST(FrameChannelRecovery, ReceiverLossRatioReflectsObservedLoss) {
  telemetry::MetricRegistry::instance().set_enabled(true);
  ChannelOptions sender_opts;
  sender_opts.enable_rtx = true;
  sender_opts.fec_group = 4;
  sender_opts.tx_loss_rate = 0.2;
  sender_opts.tx_loss_seed = 77;
  ChannelOptions receiver_opts;
  receiver_opts.enable_rtx = true;
  receiver_opts.rtx.nack_timeout = milliseconds(5);

  FrameChannel sender(sender_opts), receiver(receiver_opts);
  ASSERT_TRUE(sender.open(0).is_ok());
  ASSERT_TRUE(receiver.open(0).is_ok());
  const SockAddr dst = SockAddr::loopback(receiver.local_addr().value().port);

  // Before any message settles the estimate is a defined 0, not NaN.
  EXPECT_EQ(receiver.receiver_loss_ratio(), 0.0);

  int delivered = 0;
  constexpr int kFrames = 6;
  for (int f = 0; f < kFrames; ++f) {
    wire::FramePacket pkt;
    pkt.header.frame = FrameId{static_cast<std::uint64_t>(f)};
    pkt.payload = random_blob(280'000, 500 + static_cast<std::uint64_t>(f));
    pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
    ASSERT_TRUE(sender.send(pkt, dst).is_ok());
    const auto deadline = std::chrono::steady_clock::now() + milliseconds(500);
    while (std::chrono::steady_clock::now() < deadline) {
      if (receiver.poll(1)) {
        ++delivered;
        break;
      }
      sender.poll(0);
    }
  }
  ASSERT_EQ(delivered, kFrames);

  // 20% harness loss over ~30 fragments: the receiver must have seen
  // *some* loss (FEC repair or NACK), and the ratio stays a ratio.
  ASSERT_GT(sender.harness_dropped(), 0u);
  const double ratio = receiver.receiver_loss_ratio();
  EXPECT_GT(ratio, 0.0);
  EXPECT_LE(ratio, 1.0);
  // Housekeeping published the per-channel gauge once a message settled.
  EXPECT_NE(telemetry::MetricRegistry::instance().prometheus_text().find(
                "mar_net_receiver_loss_ratio{"),
            std::string::npos);

  // A clean channel reports zero: the estimate never invents loss.
  FrameChannel clean_tx, clean_rx;
  ASSERT_TRUE(clean_tx.open(0).is_ok());
  ASSERT_TRUE(clean_rx.open(0).is_ok());
  wire::FramePacket pkt;
  pkt.payload = random_blob(100'000, 7);
  pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
  ASSERT_TRUE(clean_tx.send(pkt, SockAddr::loopback(clean_rx.local_addr().value().port))
                  .is_ok());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  bool got = false;
  while (!got && std::chrono::steady_clock::now() < deadline) {
    got = clean_rx.poll(5).has_value();
  }
  ASSERT_TRUE(got);
  EXPECT_EQ(clean_rx.receiver_loss_ratio(), 0.0);
  telemetry::MetricRegistry::instance().set_enabled(false);
  telemetry::MetricRegistry::instance().reset_values();
}

TEST(FrameChannelRecovery, TwoSendersShareOneReceiverWithoutIdCollision) {
  // Regression: channels allocate disjoint message-id blocks; two
  // senders whose counters both start at "first message" must not
  // interleave into one corrupted reassembly.
  FrameChannel a, b, rx;
  ASSERT_TRUE(a.open(0).is_ok());
  ASSERT_TRUE(b.open(0).is_ok());
  ASSERT_TRUE(rx.open(0).is_ok());
  const SockAddr dst = SockAddr::loopback(rx.local_addr().value().port);

  wire::FramePacket pa, pb;
  pa.header.client = ClientId{1};
  pa.payload = random_blob(200'000, 21);
  pb.header.client = ClientId{2};
  pb.payload = random_blob(200'000, 22);
  ASSERT_TRUE(a.send(pa, dst).is_ok());
  ASSERT_TRUE(b.send(pb, dst).is_ok());

  int got_a = 0, got_b = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (got_a + got_b < 2 && std::chrono::steady_clock::now() < deadline) {
    if (auto rx_pkt = rx.poll(10)) {
      if (rx_pkt->packet.header.client == ClientId{1}) {
        EXPECT_EQ(rx_pkt->packet.payload, pa.payload);
        ++got_a;
      } else {
        EXPECT_EQ(rx_pkt->packet.payload, pb.payload);
        ++got_b;
      }
    }
  }
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
}

}  // namespace
}  // namespace mar::net
