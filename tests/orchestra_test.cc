#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/services.h"
#include "orchestra/orchestrator.h"

namespace mar::orchestra {
namespace {

class NullServicelet : public dsp::Servicelet {
 public:
  void process(wire::FramePacket) override { host().finish_current(); }
};

struct OrchFixture : ::testing::Test {
  OrchFixture() : net(loop, Rng{1}), rt(loop, net), orch(rt) {
    e1 = orch.add_machine(hw::MachineSpec::edge1());
    e2 = orch.add_machine(hw::MachineSpec::edge2());
    cloud = orch.add_machine(hw::MachineSpec::cloud());
  }

  InstanceId deploy_null(Stage stage, MachineId target) {
    dsp::HostConfig cfg;
    cfg.stage = stage;
    return orch.deploy(stage, target, cfg, costs,
                       [] { return std::make_unique<NullServicelet>(); });
  }

  sim::EventLoop loop;
  sim::SimNetwork net;
  dsp::SimRuntime rt;
  Orchestrator orch;
  hw::CostModel costs = hw::CostModel::standard();
  MachineId e1, e2, cloud;
};

// --- placement / SLA ---------------------------------------------------------

TEST_F(OrchFixture, SchedulePrefersEmptyMachine) {
  ServiceSla sla;
  sla.needs_gpu = true;
  const auto first = orch.schedule(sla);
  ASSERT_TRUE(first.is_ok());
  deploy_null(Stage::kSift, first.value());
  const auto second = orch.schedule(sla);
  ASSERT_TRUE(second.is_ok());
  EXPECT_NE(second.value(), first.value());  // least-loaded first
}

TEST_F(OrchFixture, ScheduleRespectsGpuArchConstraint) {
  ServiceSla sla;
  sla.needs_gpu = true;
  sla.gpu_archs = {"tesla"};  // only the cloud VM has a Tesla GPU
  const auto placed = orch.schedule(sla);
  ASSERT_TRUE(placed.is_ok());
  EXPECT_EQ(placed.value(), cloud);
}

TEST_F(OrchFixture, ScheduleRejectsImpossibleArch) {
  ServiceSla sla;
  sla.needs_gpu = true;
  sla.gpu_archs = {"tpu-v9"};
  const auto placed = orch.schedule(sla);
  EXPECT_FALSE(placed.is_ok());
  EXPECT_EQ(placed.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(OrchFixture, ScheduleRespectsMemoryDemand) {
  ServiceSla sla;
  sla.needs_gpu = false;
  sla.memory_bytes = 200ULL * 1024 * 1024 * 1024;  // 200 GB: only E2 fits
  const auto placed = orch.schedule(sla);
  ASSERT_TRUE(placed.is_ok());
  EXPECT_EQ(placed.value(), e2);
}

TEST_F(OrchFixture, CpuOnlySlaIgnoresGpus) {
  ServiceSla sla;
  sla.needs_gpu = false;
  sla.gpu_archs = {"whatever"};
  EXPECT_TRUE(orch.schedule(sla).is_ok());
}

// --- semantic addressing --------------------------------------------------------

TEST_F(OrchFixture, ResolveRoundRobinsAcrossReplicas) {
  const InstanceId a = deploy_null(Stage::kSift, e1);
  const InstanceId b = deploy_null(Stage::kSift, e2);
  wire::FrameHeader header;
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 4; ++i) seen.insert(orch.resolve(Stage::kSift, header).value());
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen.count(orch.endpoint_of(a).value()));
  EXPECT_TRUE(seen.count(orch.endpoint_of(b).value()));
}

TEST_F(OrchFixture, ResolveSkipsDeadReplicas) {
  const InstanceId a = deploy_null(Stage::kSift, e1);
  const InstanceId b = deploy_null(Stage::kSift, e2);
  orch.kill_instance(a);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(orch.resolve(Stage::kSift, {}), orch.endpoint_of(b));
  }
}

TEST_F(OrchFixture, ResolveWithNoReplicasIsInvalid) {
  EXPECT_FALSE(orch.resolve(Stage::kLsh, {}).valid());
}

TEST_F(OrchFixture, EndpointOfUnknownInstanceIsInvalid) {
  EXPECT_FALSE(orch.endpoint_of(InstanceId{99}).valid());
}

TEST_F(OrchFixture, InstancesOfFiltersByStage) {
  deploy_null(Stage::kSift, e1);
  deploy_null(Stage::kSift, e2);
  deploy_null(Stage::kEncoding, e1);
  EXPECT_EQ(orch.instances_of(Stage::kSift).size(), 2u);
  EXPECT_EQ(orch.instances_of(Stage::kEncoding).size(), 1u);
  EXPECT_EQ(orch.instances_of(Stage::kMatching).size(), 0u);
  EXPECT_EQ(orch.instance_count(), 3u);
}

// --- deployment side effects --------------------------------------------------------

TEST_F(OrchFixture, DeployChargesBaseMemory) {
  const std::uint64_t before = orch.machine(e1).memory().used();
  deploy_null(Stage::kSift, e1);
  EXPECT_EQ(orch.machine(e1).memory().used(),
            before + costs.stage(Stage::kSift).base_memory_bytes);
}

// --- monitoring ---------------------------------------------------------------------

TEST_F(OrchFixture, MonitorSamplesHardwareOnly) {
  deploy_null(Stage::kSift, e1);
  orch.start_monitor(seconds(1.0));
  loop.run_until(seconds(5.0));
  ASSERT_GE(orch.monitor_samples().size(), 4u);
  const MonitorSample& s = orch.monitor_samples().front();
  ASSERT_EQ(s.machines.size(), 3u);
  // Hardware counters are visible; idle services show ~0 utilization
  // but nonzero resident memory (Insight I's blind spot).
  EXPECT_EQ(s.machines[0].cpu_util, 0.0);
  EXPECT_GT(s.machines[0].memory_used, 0u);
}

TEST_F(OrchFixture, MonitorStops) {
  orch.start_monitor(seconds(1.0));
  loop.run_until(seconds(2.5));
  const std::size_t count = orch.monitor_samples().size();
  orch.stop_monitor();
  loop.run_until(seconds(10.0));
  EXPECT_EQ(orch.monitor_samples().size(), count);
}

// --- failure recovery ------------------------------------------------------------------

TEST_F(OrchFixture, WatchdogRedeploysDeadInstance) {
  const InstanceId a = deploy_null(Stage::kSift, e1);
  orch.enable_auto_restart(millis(500.0), seconds(1.0));
  loop.run_until(seconds(1.0));
  orch.kill_instance(a);
  EXPECT_TRUE(orch.host(a).is_down());
  loop.run_until(seconds(4.0));
  EXPECT_FALSE(orch.host(a).is_down());
  EXPECT_EQ(orch.redeploy_count(), 1u);
}

TEST_F(OrchFixture, ResolveWithNoReplicasCountsRoutingFailure) {
  EXPECT_FALSE(orch.resolve(Stage::kLsh, {}).valid());
  EXPECT_EQ(orch.routing_failures(Stage::kLsh), 1u);
  EXPECT_EQ(orch.routing_failures(), 1u);
}

TEST_F(OrchFixture, ResolveWithAllReplicasDeadCountsRoutingFailure) {
  const InstanceId a = deploy_null(Stage::kSift, e1);
  orch.kill_instance(a);
  EXPECT_FALSE(orch.resolve(Stage::kSift, {}).valid());
  EXPECT_FALSE(orch.resolve(Stage::kSift, {}).valid());
  EXPECT_EQ(orch.routing_failures(Stage::kSift), 2u);
  EXPECT_EQ(orch.routing_failures(Stage::kLsh), 0u);
}

TEST_F(OrchFixture, DownMachineExcludedFromResolve) {
  deploy_null(Stage::kSift, e1);
  const InstanceId b = deploy_null(Stage::kSift, e2);
  orch.set_machine_down(e1, true);
  EXPECT_TRUE(orch.is_machine_down(e1));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(orch.resolve(Stage::kSift, {}), orch.endpoint_of(b));
  }
  orch.set_machine_down(e1, false);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 4; ++i) seen.insert(orch.resolve(Stage::kSift, {}).value());
  EXPECT_EQ(seen.size(), 2u);
}

TEST_F(OrchFixture, FailoverLeavesHealthyInstancesAlone) {
  const InstanceId a = deploy_null(Stage::kSift, e1);
  orch.enable_failover(FailoverConfig{});
  loop.run_until(seconds(10.0));
  EXPECT_EQ(orch.failover_suspected(), 0u);
  EXPECT_EQ(orch.failover_respawns(), 0u);
  EXPECT_FALSE(orch.host(a).is_down());
}

TEST_F(OrchFixture, FailoverEvictsRespawnsAndRepairsRoutes) {
  const InstanceId a = deploy_null(Stage::kSift, e1);
  const InstanceId b = deploy_null(Stage::kSift, e2);
  FailoverConfig fo;
  fo.heartbeat_interval = millis(100.0);
  fo.suspicion_timeout = millis(300.0);
  fo.respawn_delay = millis(200.0);
  orch.enable_failover(fo);
  loop.run_until(seconds(1.0));
  const EndpointId old_ep = orch.endpoint_of(a);
  orch.kill_instance(a);

  // During suspicion + respawn, resolve() only hands out the survivor.
  loop.run_until(seconds(1.5));
  EXPECT_EQ(orch.failover_suspected(), 1u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(orch.resolve(Stage::kSift, {}), orch.endpoint_of(b));
  }

  // After respawn + cold start the replica is back, with the same
  // InstanceId but a fresh host (the old one is parked in the
  // graveyard), and round-robin covers both replicas again.
  loop.run_until(seconds(4.0));
  EXPECT_EQ(orch.failover_respawns(), 1u);
  EXPECT_EQ(orch.retired_hosts().size(), 1u);
  EXPECT_FALSE(orch.host(a).is_down());
  const EndpointId new_ep = orch.endpoint_of(a);
  EXPECT_TRUE(new_ep.valid());
  EXPECT_NE(new_ep, old_ep);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 4; ++i) seen.insert(orch.resolve(Stage::kSift, {}).value());
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen.count(new_ep.value()));
}

TEST_F(OrchFixture, RebootMachineCyclesItsInstances) {
  const InstanceId a = deploy_null(Stage::kSift, e1);
  const InstanceId enc = deploy_null(Stage::kEncoding, e1);
  loop.run_until(seconds(1.0));
  orch.reboot_machine(e1, seconds(1.0));
  EXPECT_TRUE(orch.is_machine_down(e1));
  EXPECT_TRUE(orch.host(a).is_down());
  EXPECT_TRUE(orch.host(enc).is_down());
  EXPECT_FALSE(orch.resolve(Stage::kSift, {}).valid());  // nothing live anywhere
  EXPECT_GE(orch.routing_failures(Stage::kSift), 1u);
  // down_for (1 s) + reboot cold start (2 s) later, everything is back.
  loop.run_until(seconds(6.0));
  EXPECT_FALSE(orch.is_machine_down(e1));
  EXPECT_FALSE(orch.host(a).is_down());
  EXPECT_FALSE(orch.host(enc).is_down());
  EXPECT_TRUE(orch.resolve(Stage::kSift, {}).valid());
}

TEST_F(OrchFixture, WatchdogHandlesRepeatedFailures) {
  const InstanceId a = deploy_null(Stage::kSift, e1);
  orch.enable_auto_restart(millis(500.0), millis(500.0));
  for (int round = 0; round < 3; ++round) {
    orch.kill_instance(a);
    loop.run_until(loop.now() + seconds(3.0));
    EXPECT_FALSE(orch.host(a).is_down()) << "round " << round;
  }
  EXPECT_EQ(orch.redeploy_count(), 3u);
}

}  // namespace
}  // namespace mar::orchestra
