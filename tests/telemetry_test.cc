#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "telemetry/histogram.h"
#include "telemetry/stats.h"
#include "telemetry/timeseries.h"

namespace mar::telemetry {
namespace {

// --- Accumulator -----------------------------------------------------------

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(3.5);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 3.5);
  EXPECT_EQ(a.max(), 3.5);
}

TEST(Accumulator, HandlesNegatives) {
  Accumulator a;
  a.add(-5.0);
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.min(), -5.0);
}

TEST(Accumulator, ResetClears) {
  Accumulator a;
  a.add(1.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
}

TEST(RatioCounter, Basics) {
  RatioCounter r;
  EXPECT_EQ(r.ratio(), 0.0);
  r.hit();
  r.hit();
  r.miss();
  r.miss();
  EXPECT_DOUBLE_EQ(r.ratio(), 0.5);
  EXPECT_EQ(r.hits(), 2u);
  EXPECT_EQ(r.total(), 4u);
  r.reset();
  EXPECT_EQ(r.total(), 0u);
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.percentile(50.0), 0.0);
}

TEST(Histogram, EmptyQueriesAreAllZero) {
  Histogram h;
  EXPECT_EQ(h.median(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(0.0), 0.0);
  EXPECT_EQ(h.percentile(100.0), 0.0);
}

TEST(Histogram, ExactPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.median(), 50.5, 1e-9);
  EXPECT_NEAR(h.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.percentile(100.0), 100.0, 1e-9);
  EXPECT_NEAR(h.percentile(95.0), 95.05, 1e-9);
}

TEST(Histogram, PercentileClampsInput) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  EXPECT_EQ(h.percentile(-5.0), 1.0);
  EXPECT_EQ(h.percentile(200.0), 2.0);
}

TEST(Histogram, InterleavedAddAndQuery) {
  Histogram h;
  h.add(3.0);
  EXPECT_EQ(h.median(), 3.0);
  h.add(1.0);  // must re-sort internally
  EXPECT_EQ(h.percentile(0.0), 1.0);
  h.add(2.0);
  EXPECT_EQ(h.median(), 2.0);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_EQ(a.max(), 4.0);
}

TEST(Histogram, MergeMatchesPerSampleAdds) {
  Rng rng(17);
  Histogram merged, part_a, part_b, reference;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.gaussian(10.0, 4.0);
    (i % 2 ? part_a : part_b).add(v);
    reference.add(v);
  }
  merged.merge(part_a);
  merged.merge(part_b);
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_NEAR(merged.mean(), reference.mean(), 1e-9);
  EXPECT_NEAR(merged.stddev(), reference.stddev(), 1e-9);
  EXPECT_EQ(merged.min(), reference.min());
  EXPECT_EQ(merged.max(), reference.max());
  for (double p : {1.0, 50.0, 99.0}) {
    EXPECT_NEAR(merged.percentile(p), reference.percentile(p), 1e-9) << "p=" << p;
  }
}

TEST(Histogram, MergeEmptyCases) {
  Histogram a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);  // into empty adopts everything
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.median(), 2.0);
}

TEST(Histogram, MergeWithSelfDoublesSamples) {
  Histogram h;
  h.add(1.0);
  h.add(5.0);
  h.merge(h);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.median(), 3.0);
  EXPECT_EQ(h.max(), 5.0);
}

TEST(Histogram, MergeAfterQueryKeepsPercentilesExact) {
  Histogram a, b;
  a.add(10.0);
  EXPECT_EQ(a.median(), 10.0);  // forces a sort before the merge
  b.add(1.0);
  b.add(2.0);
  a.merge(b);  // bulk append defers the re-sort
  EXPECT_EQ(a.percentile(0.0), 1.0);
  EXPECT_EQ(a.median(), 2.0);
}

TEST(Histogram, MeanTracksAccumulator) {
  Histogram h;
  Rng rng(3);
  Accumulator ref;
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.gaussian(10.0, 3.0);
    h.add(v);
    ref.add(v);
  }
  EXPECT_NEAR(h.mean(), ref.mean(), 1e-9);
  EXPECT_NEAR(h.stddev(), ref.stddev(), 1e-9);
}

// Property: percentiles agree with a sorted reference across
// distributions.
class HistogramDistributionSweep : public ::testing::TestWithParam<int> {};

TEST_P(HistogramDistributionSweep, MatchesSortedReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Histogram h;
  std::vector<double> ref;
  for (int i = 0; i < 2'000; ++i) {
    double v = 0.0;
    switch (GetParam() % 3) {
      case 0:
        v = rng.uniform(0.0, 100.0);
        break;
      case 1:
        v = rng.gaussian(50.0, 10.0);
        break;
      default:
        v = rng.exponential(20.0);
        break;
    }
    h.add(v);
    ref.push_back(v);
  }
  std::sort(ref.begin(), ref.end());
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double rank = p / 100.0 * static_cast<double>(ref.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - std::floor(rank);
    const double expected = ref[lo] * (1 - frac) + ref[hi] * frac;
    EXPECT_NEAR(h.percentile(p), expected, 1e-9) << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, HistogramDistributionSweep, ::testing::Range(0, 9));

// --- TimeSeries ------------------------------------------------------------------

TEST(TimeSeries, BucketsByTime) {
  TimeSeries ts(kSecond);
  ts.add(0, 1.0);
  ts.add(millis(500.0), 2.0);
  ts.add(seconds(1.5), 10.0);
  EXPECT_EQ(ts.buckets(), 2u);
  EXPECT_DOUBLE_EQ(ts.sum_at(0), 3.0);
  EXPECT_EQ(ts.count_at(0), 2u);
  EXPECT_DOUBLE_EQ(ts.mean_at(0), 1.5);
  EXPECT_DOUBLE_EQ(ts.sum_at(1), 10.0);
}

TEST(TimeSeries, RateIsPerSecond) {
  TimeSeries ts(kSecond);
  for (int i = 0; i < 30; ++i) ts.add(millis(i * 33.0));
  EXPECT_DOUBLE_EQ(ts.rate_at(0), 30.0);
}

TEST(TimeSeries, OutOfRangeReadsAreZero) {
  TimeSeries ts;
  EXPECT_EQ(ts.sum_at(99), 0.0);
  EXPECT_EQ(ts.count_at(99), 0u);
  EXPECT_EQ(ts.mean_at(99), 0.0);
}

TEST(TimeSeries, NegativeTimeGoesToFirstBucket) {
  TimeSeries ts;
  ts.add(-seconds(5.0), 1.0);
  EXPECT_EQ(ts.count_at(0), 1u);
}

TEST(TimeSeries, CustomBucketWidth) {
  TimeSeries ts(millis(100.0));
  ts.add(millis(250.0));
  EXPECT_EQ(ts.bucket_index(millis(250.0)), 2u);
  EXPECT_EQ(ts.count_at(2), 1u);
}

TEST(TimeSeries, ResetClears) {
  TimeSeries ts;
  ts.add(0);
  ts.reset();
  EXPECT_EQ(ts.buckets(), 0u);
}

}  // namespace
}  // namespace mar::telemetry
