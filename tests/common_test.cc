#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bytes.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "common/types.h"

namespace mar {
namespace {

// --- ids ----------------------------------------------------------------

TEST(Id, DefaultIsInvalid) {
  ClientId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, ClientId::invalid());
}

TEST(Id, ValueRoundTrip) {
  const ClientId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(Id, Ordering) {
  EXPECT_LT(ClientId{1}, ClientId{2});
  EXPECT_EQ(ClientId{7}, ClientId{7});
  EXPECT_NE(ClientId{7}, ClientId{8});
}

TEST(Id, Hashable) {
  std::unordered_set<ClientId> set;
  set.insert(ClientId{1});
  set.insert(ClientId{2});
  set.insert(ClientId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Stage, NamesAndOrder) {
  EXPECT_STREQ(to_string(Stage::kPrimary), "primary");
  EXPECT_STREQ(to_string(Stage::kMatching), "matching");
  EXPECT_EQ(next_stage(Stage::kPrimary), Stage::kSift);
  EXPECT_EQ(next_stage(Stage::kMatching), Stage::kResult);
  EXPECT_EQ(kNumStages, 5);
}

// --- time ----------------------------------------------------------------

TEST(Time, Conversions) {
  EXPECT_EQ(millis(1.0), 1'000'000);
  EXPECT_EQ(seconds(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_millis(millis(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3.0)), 3.0);
}

TEST(Time, SubMillisecondPrecision) {
  EXPECT_EQ(micros(250.0), 250'000);
  EXPECT_DOUBLE_EQ(to_millis(micros(500.0)), 0.5);
}

// --- rng ------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
  EXPECT_EQ(rng.uniform_int(5, 2), 5);  // inverted range clamps to lo
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ForkIndependence) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream should differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// Property sweep: moments hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UnitIntervalAndMean) {
  Rng rng(GetParam());
  double sum = 0.0;
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20'000, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xDEADBEEFULL,
                                           0xFFFFFFFFFFFFFFFFULL));

// --- bytes ------------------------------------------------------------------

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x1234);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f32(3.5f);
  w.put_f64(-2.25);
  const auto buf = std::move(w).take();

  ByteReader r(buf);
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_FLOAT_EQ(r.get_f32(), 3.5f);
  EXPECT_DOUBLE_EQ(r.get_f64(), -2.25);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.put_string("hello");
  w.put_string("");
  const auto buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.ok());
}

TEST(Bytes, ReadPastEndFails) {
  ByteWriter w;
  w.put_u16(7);
  const auto buf = std::move(w).take();
  ByteReader r(buf);
  (void)r.get_u32();  // wants 4 bytes, only 2 available
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, TruncatedStringFails) {
  ByteWriter w;
  w.put_u32(100);  // claims 100 bytes, provides none
  const auto buf = std::move(w).take();
  ByteReader r(buf);
  (void)r.get_string();
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, BytesRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  ByteWriter w;
  w.put_bytes(payload);
  const auto buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_EQ(r.get_bytes(5), payload);
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  const auto buf = std::move(w).take();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

// --- status -------------------------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ErrorCarriesMessage) {
  Status s(StatusCode::kNotFound, "missing thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.to_string().find("missing thing"), std::string::npos);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r = Status{StatusCode::kUnavailable, "down"};
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

// --- log -----------------------------------------------------------------------

TEST(Log, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // These must compile and not crash even when filtered out.
  MAR_DEBUG << "invisible";
  MAR_INFO << "invisible " << 42;
  set_log_level(before);
}

}  // namespace
}  // namespace mar
