#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "telemetry/trace.h"

namespace mar::telemetry {
namespace {

TraceEvent make_event(std::uint32_t trace_id, const char* name, TracePhase phase,
                      SimTime ts = 1000) {
  TraceEvent e;
  e.ts = ts;
  e.name = name;
  e.trace_id = trace_id;
  e.client = 3;
  e.frame = 17;
  e.track = kClientTrackBase + 3;
  e.phase = phase;
  return e;
}

std::vector<TraceEvent> ring_events() { return Tracer::instance().snapshot(); }

std::size_t ring_count(std::uint32_t trace_id) {
  const auto events = ring_events();
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [trace_id](const TraceEvent& e) { return e.trace_id == trace_id; }));
}

struct FlightRecorderTest : ::testing::Test {
  void SetUp() override {
    auto& tracer = Tracer::instance();
    tracer.reserve(4096);
    tracer.set_enabled(true);
    tracer.clear();
    recorder().configure(8);  // 8 slots: ids 1 and 9 collide
    recorder().set_enabled(true);
  }
  void TearDown() override {
    recorder().set_enabled(false);
    recorder().reset();
    Tracer::instance().clear();
  }
  static FlightRecorder& recorder() { return FlightRecorder::instance(); }
};

TEST_F(FlightRecorderTest, BufferedEventsStayOutOfTheRingUntilPromoted) {
  recorder().open(5);
  EXPECT_TRUE(recorder().is_open(5));
  EXPECT_TRUE(recorder().try_record(make_event(5, spans::kService, TracePhase::kBegin)));
  EXPECT_TRUE(recorder().try_record(make_event(5, spans::kService, TracePhase::kEnd, 2000)));
  EXPECT_EQ(ring_count(5), 0u);

  EXPECT_TRUE(recorder().promote(5, ClientId{3}, FrameId{17}, 2500, RetainReason::kOutlier));
  // Both buffered events plus the synthetic `retained` instant.
  EXPECT_EQ(ring_count(5), 3u);
  const auto events = ring_events();
  const auto retained = std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
    return std::string(e.name) == spans::kRetained;
  });
  ASSERT_NE(retained, events.end());
  EXPECT_EQ(retained->trace_id, 5u);
  EXPECT_EQ(retained->ts, 2500);
  EXPECT_EQ(retained->value, static_cast<double>(RetainReason::kOutlier));
  EXPECT_EQ(recorder().stats().promoted, 1u);
  EXPECT_FALSE(recorder().is_open(5));
}

TEST_F(FlightRecorderTest, RecycleDiscardsTheBuffer) {
  recorder().open(6);
  EXPECT_TRUE(recorder().try_record(make_event(6, spans::kService, TracePhase::kBegin)));
  EXPECT_TRUE(recorder().recycle(6));
  EXPECT_EQ(ring_count(6), 0u);
  EXPECT_EQ(recorder().stats().recycled, 1u);
  // The slot is free: a later verdict for the same id finds nothing.
  EXPECT_FALSE(recorder().promote(6, ClientId{3}, FrameId{17}, 1, RetainReason::kBaseline));
}

TEST_F(FlightRecorderTest, TerminalDropInstantFlushesImmediately) {
  recorder().open(7);
  EXPECT_TRUE(recorder().try_record(make_event(7, spans::kLink, TracePhase::kBegin)));
  EXPECT_TRUE(recorder().try_record(make_event(7, spans::kDropStale, TracePhase::kInstant, 3000)));

  // Buffered span + the drop instant + the synthetic retained instant.
  EXPECT_EQ(ring_count(7), 3u);
  EXPECT_EQ(recorder().stats().drop_flushed, 1u);
  const auto events = ring_events();
  const auto retained = std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
    return std::string(e.name) == spans::kRetained;
  });
  ASSERT_NE(retained, events.end());
  EXPECT_EQ(retained->value, static_cast<double>(RetainReason::kDrop));
  // The frame never closes; its promote must miss.
  EXPECT_FALSE(recorder().promote(7, ClientId{3}, FrameId{17}, 1, RetainReason::kSlo));
}

TEST_F(FlightRecorderTest, CollidingOpenEvictsTheStaleOccupant) {
  recorder().open(1);
  EXPECT_TRUE(recorder().try_record(make_event(1, spans::kService, TracePhase::kBegin)));
  recorder().open(9);  // 9 & 7 == 1 & 7 with 8 slots
  EXPECT_EQ(recorder().stats().evicted, 1u);
  EXPECT_FALSE(recorder().is_open(1));
  EXPECT_TRUE(recorder().is_open(9));
  EXPECT_FALSE(recorder().promote(1, ClientId{3}, FrameId{17}, 1, RetainReason::kBaseline));
  EXPECT_TRUE(recorder().promote(9, ClientId{3}, FrameId{17}, 1, RetainReason::kBaseline));
  EXPECT_EQ(ring_count(1), 0u);  // evicted events are gone, not promoted
}

TEST_F(FlightRecorderTest, OverflowingBufferTruncatesWithoutSpilling) {
  recorder().open(2);
  const std::size_t extra = 5;
  for (std::size_t i = 0; i < FlightRecorder::kEventsPerBuffer + extra; ++i) {
    EXPECT_TRUE(recorder().try_record(
        make_event(2, spans::kService, TracePhase::kBegin, static_cast<SimTime>(i))));
  }
  EXPECT_EQ(recorder().stats().truncated, extra);
  EXPECT_EQ(ring_count(2), 0u);  // truncation must not half-spill into the ring
  EXPECT_TRUE(recorder().promote(2, ClientId{3}, FrameId{17}, 1, RetainReason::kSlo));
  EXPECT_EQ(ring_count(2), FlightRecorder::kEventsPerBuffer + 1);  // + retained
}

TEST_F(FlightRecorderTest, EventsWithoutAnOpenSlotAreNotConsumed) {
  // trace_id 0 (untraced) and an id nobody opened both fall through to
  // the caller, which records them durably as usual.
  EXPECT_FALSE(recorder().try_record(make_event(0, spans::kService, TracePhase::kBegin)));
  EXPECT_FALSE(recorder().try_record(make_event(4, spans::kService, TracePhase::kBegin)));
}

TEST_F(FlightRecorderTest, DisabledGateIsProcessWide) {
  recorder().set_enabled(false);
  EXPECT_FALSE(flight_recording_enabled());
  recorder().set_enabled(true);
  EXPECT_TRUE(flight_recording_enabled());
}

TEST_F(FlightRecorderTest, TracerRoutesTracedEventsThroughOpenSlots) {
  // End-to-end through Tracer::record(): a traced event with an open
  // slot is buffered, not appended to the ring.
  auto& tracer = Tracer::instance();
  recorder().open(11);
  tracer.instant(kNetworkTrack, spans::kUdpTx, 100, ClientId{1}, FrameId{2},
                 Stage::kPrimary, 0.0, /*trace_id=*/11);
  EXPECT_EQ(ring_count(11), 0u);
  tracer.instant(kNetworkTrack, spans::kUdpTx, 100, ClientId{1}, FrameId{2},
                 Stage::kPrimary, 0.0, /*trace_id=*/12);  // no slot: straight to the ring
  EXPECT_EQ(ring_count(12), 1u);
  EXPECT_TRUE(recorder().recycle(11));
}

}  // namespace
}  // namespace mar::telemetry
