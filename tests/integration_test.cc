// System-level invariants from the paper, checked end-to-end in the
// simulator. These assert the *shape* of the findings — who wins, and
// in which direction metrics move — not absolute values.
#include <gtest/gtest.h>

#include "expt/experiment.h"

namespace mar::expt {
namespace {

ExperimentResult run(core::PipelineMode mode, const SymbolicPlacement& placement, int clients,
                     std::uint64_t seed, double duration_s = 30.0) {
  ExperimentConfig cfg;
  cfg.mode = mode;
  cfg.placement = placement;
  cfg.num_clients = clients;
  cfg.duration = seconds(duration_s);
  cfg.seed = seed;
  return run_experiment(cfg);
}

// Paper abstract: scAtteR++ improves multi-client framerate ~2.5x.
TEST(PaperInvariants, ScatterPPBeatsScatterAtLoad) {
  const auto placement = SymbolicPlacement::single(Site::kE2);
  const ExperimentResult scatter = run(core::PipelineMode::kScatter, placement, 4, 100);
  const ExperimentResult pp = run(core::PipelineMode::kScatterPP, placement, 4, 100);
  EXPECT_GT(pp.fps_mean, scatter.fps_mean * 1.5);
  EXPECT_GT(pp.success_rate, scatter.success_rate * 1.5);
}

// §4: scAtteR degrades sharply with concurrent clients.
TEST(PaperInvariants, ScatterCollapsesWithClients) {
  const auto placement = SymbolicPlacement::single(Site::kE1);
  const ExperimentResult one = run(core::PipelineMode::kScatter, placement, 1, 101);
  const ExperimentResult four = run(core::PipelineMode::kScatter, placement, 4, 101);
  EXPECT_GT(one.fps_mean, 23.0);  // ~25 FPS single client
  EXPECT_LT(four.fps_mean, one.fps_mean / 2.5);
}

// §4: sift sees ~2x request load (extractions + fetches) in scAtteR.
TEST(PaperInvariants, SiftSeesDoubleLoad) {
  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatter;
  cfg.num_clients = 1;
  cfg.duration = seconds(20.0);
  cfg.seed = 102;
  Experiment e(cfg);
  e.run();
  std::uint64_t sift_received = 0, encoding_received = 0;
  for (const auto& s : e.result().services) {
    if (s.stage == Stage::kSift) sift_received = s.received;
    if (s.stage == Stage::kEncoding) encoding_received = s.received;
  }
  EXPECT_GT(sift_received, encoding_received * 3 / 2);
}

// §4: sift's memory grows with load in scAtteR (orphaned state), and
// dominates the other services.
TEST(PaperInvariants, StatefulSiftMemoryGrowsWithLoad) {
  const auto placement = SymbolicPlacement::single(Site::kE2);
  const ExperimentResult one = run(core::PipelineMode::kScatter, placement, 1, 103);
  const ExperimentResult four = run(core::PipelineMode::kScatter, placement, 4, 103);
  EXPECT_GT(four.stage_mem_gb(Stage::kSift), one.stage_mem_gb(Stage::kSift) * 1.3);
  EXPECT_GT(four.stage_mem_gb(Stage::kSift), four.stage_mem_gb(Stage::kLsh));
}

// Insight I: hardware utilization does not mirror QoS — under overload
// FPS collapses while CPU/GPU utilization stays far from saturation.
TEST(PaperInvariants, UtilizationDoesNotReflectQoS) {
  const auto placement = SymbolicPlacement::single(Site::kE2);
  const ExperimentResult four = run(core::PipelineMode::kScatter, placement, 4, 104);
  double gpu_total = 0.0;
  for (Stage s : {Stage::kSift, Stage::kEncoding, Stage::kLsh, Stage::kMatching}) {
    gpu_total += four.stage_gpu_share(s);
  }
  EXPECT_LT(four.fps_mean, 12.0);   // QoS collapsed...
  EXPECT_LT(gpu_total, 0.92);       // ...yet the GPUs are not saturated.
}

// §5: the sidecar turns request drops into queue/threshold drops and
// keeps resource use scaling with load.
TEST(PaperInvariants, SidecarShiftsDropsDownstream) {
  const auto placement = SymbolicPlacement::single(Site::kE2);
  const ExperimentResult pp = run(core::PipelineMode::kScatterPP, placement, 4, 105);
  double stale_drops = 0.0;
  for (const auto& s : pp.services) stale_drops += s.drop_ratio;
  EXPECT_GT(stale_drops, 0.0);  // the filter is active at this load
}

// §5 / fig 7: scaling out helps scAtteR++ (stateless sift) — capacity
// roughly doubles with the replicated deployment.
TEST(PaperInvariants, ScalingOutHelpsScatterPP) {
  const ExperimentResult single =
      run(core::PipelineMode::kScatterPP, SymbolicPlacement::single(Site::kE2), 6, 106);
  const ExperimentResult scaled = run(core::PipelineMode::kScatterPP,
                                      SymbolicPlacement::replicated({1, 2, 2, 1, 2}), 6, 106);
  EXPECT_GT(scaled.fps_mean, single.fps_mean * 1.2);
}

// §4 / fig 3: with stateful sift, the replicated-ingress configuration
// [2,2,1,1,1] is the worst of the replication options.
TEST(PaperInvariants, ReplicatedIngressIsWorstScalingChoice) {
  const ExperimentResult ingress = run(core::PipelineMode::kScatter,
                                       SymbolicPlacement::replicated({2, 2, 1, 1, 1}), 3, 107);
  const ExperimentResult best = run(core::PipelineMode::kScatter,
                                    SymbolicPlacement::replicated({1, 2, 2, 1, 2}), 3, 107);
  EXPECT_GT(best.fps_mean, ingress.fps_mean);
}

// §4: cloud deployment reaches lower FPS at higher E2E latency than
// the edge, without saturating its hardware.
TEST(PaperInvariants, CloudSlowerThanEdge) {
  const ExperimentResult edge =
      run(core::PipelineMode::kScatter, SymbolicPlacement::single(Site::kE2), 1, 108);
  const ExperimentResult cloud =
      run(core::PipelineMode::kScatter, SymbolicPlacement::single(Site::kCloud), 1, 108);
  EXPECT_LT(cloud.fps_mean, edge.fps_mean - 3.0);
  EXPECT_GT(cloud.e2e_ms_mean, edge.e2e_ms_mean);
  EXPECT_LT(cloud.machines[2].cpu_util, 0.5);  // not hardware-bound
}

// §A.1.1: packet loss trims FPS but leaves E2E roughly flat; extra
// latency shifts E2E but leaves FPS roughly flat (no threshold drops in
// scAtteR).
TEST(PaperInvariants, NetworkConditionsActIndependently) {
  ExperimentConfig base;
  base.placement = SymbolicPlacement::single(Site::kE2);
  base.num_clients = 1;
  base.duration = seconds(30.0);
  base.seed = 109;
  base.testbed.client_e1 = TestbedConfig::access_custom(millis(1.0), 1e-7, false);
  const ExperimentResult clean = run_experiment(base);

  base.testbed.client_e1 = TestbedConfig::access_custom(millis(1.0), 8e-4, false);
  const ExperimentResult lossy = run_experiment(base);
  EXPECT_LT(lossy.fps_mean, clean.fps_mean - 1.0);
  EXPECT_NEAR(lossy.e2e_ms_mean, clean.e2e_ms_mean, 8.0);

  base.testbed.client_e1 = TestbedConfig::access_custom(millis(40.0), 1e-7, false);
  const ExperimentResult slow = run_experiment(base);
  EXPECT_NEAR(slow.fps_mean, clean.fps_mean, 2.5);
  EXPECT_GT(slow.e2e_ms_mean, clean.e2e_ms_mean + 30.0);
}

// §A.1.2: the hybrid split performs worse than cloud-only.
TEST(PaperInvariants, HybridWorseThanCloudOnly) {
  const ExperimentResult cloud =
      run(core::PipelineMode::kScatter, SymbolicPlacement::single(Site::kCloud), 2, 110);
  const ExperimentResult hybrid = run(
      core::PipelineMode::kScatter,
      SymbolicPlacement::per_stage(
          {Site::kE1, Site::kCloud, Site::kCloud, Site::kCloud, Site::kCloud}),
      2, 110);
  EXPECT_LE(hybrid.fps_mean, cloud.fps_mean + 1.0);
  EXPECT_GT(hybrid.e2e_ms_mean, cloud.e2e_ms_mean);
}

// Jitter grows with concurrent clients (appendix fig 10).
TEST(PaperInvariants, JitterGrowsWithLoad) {
  const auto placement = SymbolicPlacement::single(Site::kE2);
  const ExperimentResult one = run(core::PipelineMode::kScatter, placement, 1, 111);
  const ExperimentResult four = run(core::PipelineMode::kScatter, placement, 4, 111);
  EXPECT_GT(four.jitter_ms, one.jitter_ms);
}

// The fast-detector variant (§5, substituting SIFT) shifts the
// saturation point to more clients.
TEST(PaperInvariants, FasterDetectorShiftsSaturation) {
  ExperimentConfig cfg;
  // scAtteR's bottleneck is sift (extraction + fetch serving), so a
  // faster extractor directly raises multi-client framerate there.
  cfg.mode = core::PipelineMode::kScatter;
  cfg.placement = SymbolicPlacement::single(Site::kE2);
  cfg.num_clients = 3;
  cfg.duration = seconds(30.0);
  cfg.seed = 112;
  const ExperimentResult standard = run_experiment(cfg);
  cfg.costs = hw::CostModel::fast_detector();
  const ExperimentResult fast = run_experiment(cfg);
  EXPECT_GT(fast.fps_mean, standard.fps_mean * 1.05);
}

}  // namespace
}  // namespace mar::expt
