#include <gtest/gtest.h>

#include <cmath>

#include "vision/engine.h"
#include "vision/serialize.h"
#include "video/scene.h"

namespace mar::vision {
namespace {

// Shared trained engine: training is the expensive part, so the
// integration tests reuse one instance.
class EngineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scene_ = new video::WorkplaceScene(640, 360);
    EngineParams params;
    params.working_width = 320;
    params.sift.max_features = 250;
    engine_ = new ArEngine(params);
    engine_->add_reference("monitor",
                           scene_->render_reference(video::SceneObject::kMonitor, 220, 140));
    engine_->add_reference("keyboard",
                           scene_->render_reference(video::SceneObject::kKeyboard, 180, 70));
    engine_->add_reference("table",
                           scene_->render_reference(video::SceneObject::kTable, 290, 75));
    ASSERT_TRUE(engine_->finalize_training());
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete scene_;
    engine_ = nullptr;
    scene_ = nullptr;
  }

  static video::WorkplaceScene* scene_;
  static ArEngine* engine_;
};

video::WorkplaceScene* EngineFixture::scene_ = nullptr;
ArEngine* EngineFixture::engine_ = nullptr;

TEST_F(EngineFixture, TrainsOnReferences) {
  EXPECT_TRUE(engine_->trained());
  EXPECT_EQ(engine_->num_references(), 3u);
}

TEST_F(EngineFixture, DetectsObjectsInScene) {
  const FrameResult result = engine_->process(scene_->render(0.0));
  EXPECT_GT(result.feature_count, 50u);
  ASSERT_FALSE(result.detections.empty());
  // Detected centers must match the ground-truth object boxes.
  for (const Detection& d : result.detections) {
    const auto bbox = scene_->object_bbox_at(static_cast<video::SceneObject>(d.object_id), 0.0);
    const Point2f c = d.center();
    // Frame coords are at the preprocessed working resolution when the
    // engine downsizes; scale ground truth to compare. The engine
    // reports in original-frame coordinates via scale factors.
    EXPECT_GT(c.x, bbox[0] - 60.0f);
    EXPECT_LT(c.x, bbox[2] + 60.0f);
    EXPECT_GT(c.y, bbox[1] - 60.0f);
    EXPECT_LT(c.y, bbox[3] + 60.0f);
  }
}

TEST_F(EngineFixture, TracksAcrossFrames) {
  engine_->tracker().reset();
  std::uint64_t track_id = 0;
  int hits = 0;
  for (int i = 0; i < 5; ++i) {
    const FrameResult result = engine_->process(scene_->render(i / 30.0));
    for (const auto& t : result.tracks) {
      if (track_id == 0) track_id = t.track_id;
      if (t.track_id == track_id) ++hits;
    }
  }
  // The same physical object keeps the same track id across frames.
  EXPECT_GE(hits, 4);
}

TEST_F(EngineFixture, StageWiseMatchesProcess) {
  const Image frame = scene_->render(0.5);
  const Image pre = engine_->preprocess(frame);
  EXPECT_LE(pre.width(), engine_->params().working_width);
  const ExtractedFeatures features = engine_->extract(pre, frame);
  EXPECT_GT(features.features.size(), 30u);
  EXPECT_GT(features.scale_x, 1.5f);  // 640 -> 320

  const auto fisher = engine_->encode(features.features);
  EXPECT_FALSE(fisher.empty());
  const auto candidates = engine_->lookup(fisher);
  EXPECT_FALSE(candidates.empty());
  EXPECT_LE(candidates.size(),
            static_cast<std::size_t>(engine_->params().nn_candidates));
  const auto detections = engine_->match_and_pose(features, candidates);
  EXPECT_FALSE(detections.empty());
}

TEST_F(EngineFixture, UntrainedEngineReturnsNothing) {
  ArEngine fresh;
  const FrameResult result = fresh.process(scene_->render(0.0));
  EXPECT_TRUE(result.detections.empty());
  EXPECT_TRUE(fresh.encode({}).empty());
  EXPECT_TRUE(fresh.lookup({1.0f, 2.0f}).empty());
}

TEST_F(EngineFixture, TimingsPopulated) {
  const FrameResult result = engine_->process(scene_->render(0.2));
  EXPECT_GT(result.timings.extract_ms, 0.0);
  EXPECT_GT(result.timings.total_ms(), result.timings.extract_ms);
}

// --- payload serialization --------------------------------------------------------

TEST(VisionSerialize, FeatureRoundTrip) {
  FeatureList features;
  for (int i = 0; i < 5; ++i) {
    Feature f;
    f.keypoint = {static_cast<float>(i), 2.0f * i, 1.5f, 0.7f, 0.3f, i % 3};
    for (std::size_t d = 0; d < f.descriptor.size(); ++d) {
      f.descriptor[d] = static_cast<float>(d + i) / 128.0f;
    }
    features.push_back(f);
  }
  const auto parsed = parse_features(serialize_features(features));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 5u);
  EXPECT_EQ((*parsed)[3].keypoint.x, 3.0f);
  EXPECT_EQ((*parsed)[3].keypoint.octave, 0);
  EXPECT_EQ((*parsed)[4].descriptor, features[4].descriptor);
}

TEST(VisionSerialize, FeatureRejectsGarbage) {
  const std::vector<std::uint8_t> garbage = {0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3};
  EXPECT_FALSE(parse_features(garbage).has_value());
}

TEST(VisionSerialize, FloatsRoundTrip) {
  const std::vector<float> v = {1.5f, -2.25f, 0.0f, 1e9f};
  const auto parsed = parse_floats(serialize_floats(v));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, v);
}

TEST(VisionSerialize, IdsRoundTrip) {
  const std::vector<std::uint32_t> ids = {0, 7, 0xFFFFFFFF};
  const auto parsed = parse_ids(serialize_ids(ids));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, ids);
}

TEST(VisionSerialize, DetectionsRoundTrip) {
  Detection d;
  d.object_id = 3;
  d.label = "keyboard";
  d.corners = {Point2f{1, 2}, Point2f{3, 4}, Point2f{5, 6}, Point2f{7, 8}};
  d.pose.h = {1, 0, 10, 0, 1, 20, 0, 0, 1};
  d.inliers = 12;
  d.score = 0.75f;
  const auto parsed = parse_detections(serialize_detections({d}));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].label, "keyboard");
  EXPECT_EQ((*parsed)[0].corners[2].x, 5.0f);
  EXPECT_EQ((*parsed)[0].pose.h[2], 10.0);
  EXPECT_EQ((*parsed)[0].inliers, 12);
}

TEST(VisionSerialize, EmptyCollections) {
  EXPECT_TRUE(parse_features(serialize_features({}))->empty());
  EXPECT_TRUE(parse_floats(serialize_floats({}))->empty());
  EXPECT_TRUE(parse_ids(serialize_ids({}))->empty());
  EXPECT_TRUE(parse_detections(serialize_detections({}))->empty());
}

}  // namespace
}  // namespace mar::vision
