#include <gtest/gtest.h>

#include "core/client.h"
#include "core/frame_flow.h"
#include "core/services.h"
#include "expt/deployment.h"
#include "expt/experiment.h"
#include "expt/testbed.h"

namespace mar::core {
namespace {

// --- frame flow ---------------------------------------------------------------

TEST(FrameFlow, PayloadSizesFollowPaper) {
  EXPECT_EQ(payload_for_hop(Stage::kEncoding, false), wire::sizes::kSiftOut);
  EXPECT_EQ(payload_for_hop(Stage::kEncoding, true), wire::sizes::kSiftOutStateful);
  // In-band state inflates every downstream hop.
  EXPECT_GT(payload_for_hop(Stage::kLsh, true), payload_for_hop(Stage::kLsh, false));
  EXPECT_GT(payload_for_hop(Stage::kMatching, true), payload_for_hop(Stage::kMatching, false));
  EXPECT_EQ(payload_for_hop(Stage::kResult, false), wire::sizes::kResult);
}

TEST(FrameFlow, ModeNames) {
  EXPECT_STREQ(to_string(PipelineMode::kScatter), "scAtteR");
  EXPECT_STREQ(to_string(PipelineMode::kScatterPP), "scAtteR++");
}

TEST(FrameFlow, HostConfigMatchesMode) {
  const dsp::HostConfig scatter = host_config_for(PipelineMode::kScatter, Stage::kSift);
  EXPECT_EQ(scatter.mode, dsp::IngressMode::kDropWhenBusy);
  const dsp::HostConfig pp = host_config_for(PipelineMode::kScatterPP, Stage::kSift);
  EXPECT_EQ(pp.mode, dsp::IngressMode::kSidecar);
  // Only primary is CPU-only.
  EXPECT_FALSE(host_config_for(PipelineMode::kScatter, Stage::kPrimary).uses_gpu);
  EXPECT_TRUE(host_config_for(PipelineMode::kScatter, Stage::kMatching).uses_gpu);
}

TEST(FrameFlow, ServiceletFactoryCoversAllStages) {
  PipelineEnv env;
  for (int s = 0; s < kNumStages; ++s) {
    EXPECT_NE(make_servicelet(env, static_cast<Stage>(s)), nullptr);
  }
  EXPECT_EQ(make_servicelet(env, Stage::kResult), nullptr);
}

// --- end-to-end pipelines in the simulator ----------------------------------------

struct PipelineFixture : ::testing::Test {
  // Deploys one pipeline and one client, runs for `run_for` seconds.
  void run_pipeline(PipelineMode mode, double run_for = 5.0) {
    testbed = std::make_unique<expt::Testbed>();
    deployment = std::make_unique<expt::Deployment>(
        *testbed, mode, expt::PlacementConfig::single(testbed->e1()), costs);
    ClientConfig cc;
    cc.id = ClientId{1};
    client = std::make_unique<ArClient>(
        testbed->runtime(), testbed->orchestrator().machine(testbed->client_machine()),
        testbed->orchestrator(), cc, Rng{5});
    client->start();
    testbed->loop().run_until(seconds(run_for));
    client->stop();
  }

  hw::CostModel costs = hw::CostModel::standard();
  std::unique_ptr<expt::Testbed> testbed;
  std::unique_ptr<expt::Deployment> deployment;
  std::unique_ptr<ArClient> client;
};

TEST_F(PipelineFixture, ScatterDeliversResults) {
  run_pipeline(PipelineMode::kScatter);
  const ClientStats& s = client->stats();
  EXPECT_GT(s.frames_sent, 140u);  // ~30 fps for 5 s
  EXPECT_GT(s.results_received, 100u);
  EXPECT_GT(s.successes, 80u);
  EXPECT_GT(s.e2e_ms.mean(), 20.0);
  EXPECT_LT(s.e2e_ms.mean(), 100.0);
}

TEST_F(PipelineFixture, ScatterPPDeliversResults) {
  run_pipeline(PipelineMode::kScatterPP);
  EXPECT_GT(client->stats().successes, 80u);
}

TEST_F(PipelineFixture, ScatterSiftStoresAndServesState) {
  run_pipeline(PipelineMode::kScatter);
  auto* sift = dynamic_cast<SiftService*>(
      &deployment->hosts_of(Stage::kSift)[0]->servicelet());
  ASSERT_NE(sift, nullptr);
  ASSERT_NE(sift->store(), nullptr);
  EXPECT_GT(sift->fetch_hits(), 80u);  // matching fetched state
  // sift saw ~2x load: extractions + fetches.
  const auto& stats = deployment->hosts_of(Stage::kSift)[0]->stats();
  EXPECT_GT(stats.received, client->stats().results_received * 3 / 2);
}

TEST_F(PipelineFixture, ScatterPPSiftIsStateless) {
  run_pipeline(PipelineMode::kScatterPP);
  auto* sift = dynamic_cast<SiftService*>(
      &deployment->hosts_of(Stage::kSift)[0]->servicelet());
  ASSERT_NE(sift, nullptr);
  EXPECT_EQ(sift->store(), nullptr);
  EXPECT_EQ(sift->fetch_hits(), 0u);
  // sift load equals frame load (no fetch amplification).
  const auto& sift_stats = deployment->hosts_of(Stage::kSift)[0]->stats();
  const auto& primary_stats = deployment->hosts_of(Stage::kPrimary)[0]->stats();
  EXPECT_LE(sift_stats.received, primary_stats.received);
}

TEST_F(PipelineFixture, ScatterPPCarriesStateInBand) {
  run_pipeline(PipelineMode::kScatterPP, 2.0);
  auto* matching = dynamic_cast<MatchingService*>(
      &deployment->hosts_of(Stage::kMatching)[0]->servicelet());
  ASSERT_NE(matching, nullptr);
  EXPECT_EQ(matching->fetch_timeouts(), 0u);  // never needs a fetch
}

TEST_F(PipelineFixture, ClientJitterTracked) {
  run_pipeline(PipelineMode::kScatter);
  EXPECT_GT(client->stats().jitter_ms.count(), 50u);
  EXPECT_GE(client->stats().jitter_ms.mean(), 0.0);
}

TEST_F(PipelineFixture, ClientSuccessRateBelowOne) {
  run_pipeline(PipelineMode::kScatter);
  // Recognition failures exist even unloaded.
  EXPECT_LT(client->stats().success_rate(), 0.99);
  EXPECT_GT(client->stats().success_rate(), 0.6);
}

TEST_F(PipelineFixture, ClientStopsCleanly) {
  run_pipeline(PipelineMode::kScatter, 1.0);
  const auto sent = client->stats().frames_sent;
  testbed->loop().run_until(seconds(3.0));
  EXPECT_EQ(client->stats().frames_sent, sent);  // no sends after stop
}

TEST_F(PipelineFixture, ScatterPPHopTelemetryReachesClient) {
  run_pipeline(PipelineMode::kScatterPP, 3.0);
  const ClientStats& s = client->stats();
  // Every delivered frame carries one hop record per sidecar stage.
  for (int st = 0; st < kNumStages; ++st) {
    EXPECT_GT(s.hop_process_ms[static_cast<std::size_t>(st)].count(), 40u)
        << to_string(static_cast<Stage>(st));
  }
  // Stage processing times reflect the cost model's ordering: sift is
  // the heaviest GPU stage.
  const double sift_ms = s.hop_process_ms[static_cast<std::size_t>(Stage::kSift)].mean();
  EXPECT_GT(sift_ms, s.hop_process_ms[static_cast<std::size_t>(Stage::kLsh)].mean());
  EXPECT_GT(sift_ms, 5.0);
}

TEST_F(PipelineFixture, ScatterHasNoHopTelemetry) {
  run_pipeline(PipelineMode::kScatter, 2.0);
  // Drop-when-busy services attach no sidecar hop records.
  for (int st = 0; st < kNumStages; ++st) {
    EXPECT_EQ(client->stats().hop_process_ms[static_cast<std::size_t>(st)].count(), 0u);
  }
}

TEST_F(PipelineFixture, FpsSinceWindow) {
  run_pipeline(PipelineMode::kScatter, 4.0);
  const double fps = client->fps_since(0);
  EXPECT_GT(fps, 15.0);
  EXPECT_LT(fps, 31.0);
}

}  // namespace
}  // namespace mar::core
