#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "vision/homography.h"
#include "vision/lsh.h"
#include "vision/matcher.h"
#include "vision/pose.h"

namespace mar::vision {
namespace {

Homography make_similarity(float scale, float angle, float tx, float ty) {
  Homography h;
  h.h = {scale * std::cos(angle), -scale * std::sin(angle), tx,
         scale * std::sin(angle), scale * std::cos(angle),  ty,
         0.0,                     0.0,                      1.0};
  return h;
}

// --- homography -------------------------------------------------------------

TEST(Homography, IdentityMapsPointsToThemselves) {
  const Homography h = Homography::identity();
  const Point2f p = h.apply({3.0f, 4.0f});
  EXPECT_FLOAT_EQ(p.x, 3.0f);
  EXPECT_FLOAT_EQ(p.y, 4.0f);
}

TEST(Homography, DltRecoversKnownTransform) {
  const Homography truth = make_similarity(1.5f, 0.3f, 20.0f, -10.0f);
  std::vector<Point2f> src, dst;
  for (float x : {0.0f, 100.0f, 0.0f, 100.0f, 50.0f}) {
    for (float y : {0.0f, 0.0f, 80.0f, 80.0f, 40.0f}) {
      src.push_back({x, y});
      dst.push_back(truth.apply({x, y}));
    }
  }
  const auto estimated = homography_dlt(src, dst);
  ASSERT_TRUE(estimated.has_value());
  for (const Point2f& p : src) {
    const Point2f a = truth.apply(p);
    const Point2f b = estimated->apply(p);
    EXPECT_NEAR(a.x, b.x, 0.01f);
    EXPECT_NEAR(a.y, b.y, 0.01f);
  }
}

TEST(Homography, DltNeedsFourPoints) {
  const std::vector<Point2f> three = {{0, 0}, {1, 0}, {0, 1}};
  EXPECT_FALSE(homography_dlt(three, three).has_value());
}

TEST(Homography, DltRejectsSizeMismatch) {
  const std::vector<Point2f> four = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  const std::vector<Point2f> five = {{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 2}};
  EXPECT_FALSE(homography_dlt(four, five).has_value());
}

TEST(Ransac, RejectsOutliers) {
  Rng rng(1);
  const Homography truth = make_similarity(1.2f, -0.2f, 5.0f, 8.0f);
  std::vector<Point2f> src, dst;
  // 40 inliers.
  for (int i = 0; i < 40; ++i) {
    const Point2f p{static_cast<float>(rng.uniform(0, 200)),
                    static_cast<float>(rng.uniform(0, 150))};
    src.push_back(p);
    dst.push_back(truth.apply(p));
  }
  // 20 gross outliers.
  for (int i = 0; i < 20; ++i) {
    src.push_back({static_cast<float>(rng.uniform(0, 200)),
                   static_cast<float>(rng.uniform(0, 150))});
    dst.push_back({static_cast<float>(rng.uniform(0, 200)),
                   static_cast<float>(rng.uniform(0, 150))});
  }
  RansacParams params;
  const auto result = find_homography_ransac(src, dst, params, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->inliers.size(), 35u);
  EXPECT_LE(result->inliers.size(), 45u);
  // Recovered transform agrees with the truth.
  const Point2f check = result->homography.apply({100.0f, 75.0f});
  const Point2f expected = truth.apply({100.0f, 75.0f});
  EXPECT_NEAR(check.x, expected.x, 1.0f);
  EXPECT_NEAR(check.y, expected.y, 1.0f);
}

TEST(Ransac, FailsWhenTooFewInliers) {
  Rng rng(2);
  std::vector<Point2f> src, dst;
  for (int i = 0; i < 20; ++i) {
    src.push_back({static_cast<float>(rng.uniform(0, 100)),
                   static_cast<float>(rng.uniform(0, 100))});
    dst.push_back({static_cast<float>(rng.uniform(0, 100)),
                   static_cast<float>(rng.uniform(0, 100))});
  }
  RansacParams params;
  params.min_inliers = 15;
  EXPECT_FALSE(find_homography_ransac(src, dst, params, rng).has_value());
}

// Property sweep: random similarity transforms recovered with noise.
class RansacTransformSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RansacTransformSweep, RecoversWithNoiseAndOutliers) {
  Rng rng(GetParam());
  const Homography truth =
      make_similarity(static_cast<float>(rng.uniform(0.7, 1.5)),
                      static_cast<float>(rng.uniform(-0.5, 0.5)),
                      static_cast<float>(rng.uniform(-30, 30)),
                      static_cast<float>(rng.uniform(-30, 30)));
  std::vector<Point2f> src, dst;
  for (int i = 0; i < 50; ++i) {
    const Point2f p{static_cast<float>(rng.uniform(0, 300)),
                    static_cast<float>(rng.uniform(0, 200))};
    Point2f q = truth.apply(p);
    q.x += static_cast<float>(rng.gaussian(0, 0.5));
    q.y += static_cast<float>(rng.gaussian(0, 0.5));
    src.push_back(p);
    dst.push_back(q);
  }
  for (int i = 0; i < 15; ++i) {
    src.push_back({static_cast<float>(rng.uniform(0, 300)),
                   static_cast<float>(rng.uniform(0, 200))});
    dst.push_back({static_cast<float>(rng.uniform(0, 300)),
                   static_cast<float>(rng.uniform(0, 200))});
  }
  RansacParams params;
  const auto result = find_homography_ransac(src, dst, params, rng);
  ASSERT_TRUE(result.has_value());
  const Point2f check = result->homography.apply({150.0f, 100.0f});
  const Point2f expected = truth.apply({150.0f, 100.0f});
  EXPECT_NEAR(check.x, expected.x, 3.0f);
  EXPECT_NEAR(check.y, expected.y, 3.0f);
}

INSTANTIATE_TEST_SUITE_P(Transforms, RansacTransformSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

// --- matcher -------------------------------------------------------------------

Feature feature_with(float fill, int hot_bin) {
  Feature f;
  f.descriptor.fill(fill);
  f.descriptor[static_cast<std::size_t>(hot_bin)] = 1.0f;
  return f;
}

TEST(Matcher, FindsObviousMatch) {
  const FeatureList query = {feature_with(0.0f, 3)};
  const FeatureList train = {feature_with(0.0f, 3), feature_with(0.0f, 90)};
  const auto matches = match_features(query, train);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].train_index, 0);
  EXPECT_NEAR(matches[0].distance, 0.0f, 1e-6);
}

TEST(Matcher, RatioTestRejectsAmbiguous) {
  // The query sits equidistant between two train descriptors: the
  // best/second-best ratio is ~1, so the match must be rejected.
  FeatureList train = {feature_with(0.0f, 3), feature_with(0.0f, 3)};
  train[0].descriptor[4] = 0.05f;
  train[1].descriptor[5] = 0.05f;
  const FeatureList query = {feature_with(0.0f, 3)};
  EXPECT_TRUE(match_features(query, train).empty());
}

TEST(Matcher, DistanceCutoffRejectsFar) {
  const FeatureList query = {feature_with(0.0f, 3)};
  const FeatureList train = {feature_with(0.0f, 90), feature_with(0.0f, 50)};
  MatcherParams params;
  params.max_distance = 0.5f;
  EXPECT_TRUE(match_features(query, train, params).empty());
}

TEST(Matcher, NeedsTwoTrainFeatures) {
  const FeatureList query = {feature_with(0.0f, 3)};
  const FeatureList train = {feature_with(0.0f, 3)};
  EXPECT_TRUE(match_features(query, train).empty());
}

// --- LSH -----------------------------------------------------------------------------

TEST(Lsh, NearestFindsSelf) {
  Rng rng(3);
  LshIndex index(16, LshParams{}, rng);
  std::vector<std::vector<float>> items;
  for (std::uint32_t i = 0; i < 20; ++i) {
    std::vector<float> v(16);
    for (float& x : v) x = static_cast<float>(rng.gaussian(0, 1));
    index.insert(i, v);
    items.push_back(std::move(v));
  }
  for (std::uint32_t i = 0; i < 20; ++i) {
    const auto nearest = index.nearest(items[i], 1);
    ASSERT_EQ(nearest.size(), 1u);
    EXPECT_EQ(nearest[0], i);
  }
}

TEST(Lsh, QueryRanksByCollisions) {
  Rng rng(4);
  LshIndex index(8, LshParams{}, rng);
  std::vector<float> a(8, 1.0f);
  std::vector<float> near_a = a;
  near_a[0] = 1.1f;
  std::vector<float> far(8, -1.0f);
  index.insert(0, a);
  index.insert(1, far);
  const auto candidates = index.query(near_a);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].id, 0u);
}

TEST(Lsh, NearestPrefersCloserVector) {
  Rng rng(5);
  LshIndex index(12, LshParams{}, rng);
  std::vector<float> target(12, 0.5f);
  std::vector<float> close = target;
  close[3] += 0.05f;
  std::vector<float> medium = target;
  for (std::size_t i = 0; i < 6; ++i) medium[i] = -0.2f;
  index.insert(7, close);
  index.insert(8, medium);
  // LSH is approximate: the far vector may not collide in any table,
  // so only the top result is guaranteed.
  const auto nearest = index.nearest(target, 2);
  ASSERT_GE(nearest.size(), 1u);
  EXPECT_EQ(nearest[0], 7u);
}

TEST(Lsh, FallsBackToLinearScan) {
  Rng rng(6);
  LshParams params;
  params.tables = 1;
  params.bits_per_table = 16;  // hard to collide
  LshIndex index(4, params, rng);
  index.insert(1, {1.0f, 0.0f, 0.0f, 0.0f});
  // Query orthogonal-ish vector: likely no bucket collision, but
  // nearest() must still return something.
  const auto nearest = index.nearest({-1.0f, 0.2f, 0.0f, 0.0f}, 1);
  ASSERT_EQ(nearest.size(), 1u);
}

TEST(Lsh, SizeTracksInsertions) {
  Rng rng(7);
  LshIndex index(4, LshParams{}, rng);
  EXPECT_EQ(index.size(), 0u);
  index.insert(1, {1, 2, 3, 4});
  index.insert(2, {4, 3, 2, 1});
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.dim(), 4);
}

// --- pose / tracker ------------------------------------------------------------------------

TEST(Pose, ProjectCornersIdentity) {
  const auto corners = project_corners(Homography::identity(), 100.0f, 50.0f);
  EXPECT_FLOAT_EQ(corners[0].x, 0.0f);
  EXPECT_FLOAT_EQ(corners[1].x, 100.0f);
  EXPECT_FLOAT_EQ(corners[2].y, 50.0f);
  EXPECT_FLOAT_EQ(corners[3].x, 0.0f);
}

Detection detection_at(std::uint32_t id, float cx, float cy) {
  Detection d;
  d.object_id = id;
  d.corners = {Point2f{cx - 10, cy - 10}, Point2f{cx + 10, cy - 10}, Point2f{cx + 10, cy + 10},
               Point2f{cx - 10, cy + 10}};
  d.inliers = 10;
  d.score = 1.0f;
  return d;
}

TEST(Tracker, CreatesTrackPerDetection) {
  ObjectTracker tracker;
  const auto& tracks = tracker.update({detection_at(1, 50, 50), detection_at(2, 100, 100)});
  EXPECT_EQ(tracks.size(), 2u);
  EXPECT_NE(tracks[0].track_id, tracks[1].track_id);
}

TEST(Tracker, AssociatesAcrossFrames) {
  ObjectTracker tracker;
  tracker.update({detection_at(1, 50, 50)});
  const auto id = tracker.tracks()[0].track_id;
  tracker.update({detection_at(1, 55, 52)});  // small motion
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].track_id, id);
  EXPECT_EQ(tracker.tracks()[0].missed, 0);
}

TEST(Tracker, SmoothsCorners) {
  ObjectTracker::Params params;
  params.smoothing = 0.5f;
  ObjectTracker tracker(params);
  tracker.update({detection_at(1, 50, 50)});
  tracker.update({detection_at(1, 60, 50)});
  // Smoothed center is between the two observations.
  const Point2f c = tracker.tracks()[0].detection.center();
  EXPECT_GT(c.x, 50.0f);
  EXPECT_LT(c.x, 60.0f);
}

TEST(Tracker, LargeJumpStartsNewTrack) {
  ObjectTracker tracker;
  tracker.update({detection_at(1, 50, 50)});
  tracker.update({detection_at(1, 500, 500)});  // beyond max_center_jump
  EXPECT_EQ(tracker.tracks().size(), 2u);
}

TEST(Tracker, DifferentObjectsDoNotAssociate) {
  ObjectTracker tracker;
  tracker.update({detection_at(1, 50, 50)});
  tracker.update({detection_at(2, 51, 51)});
  EXPECT_EQ(tracker.tracks().size(), 2u);
}

TEST(Tracker, ExpiresAfterMissedFrames) {
  ObjectTracker::Params params;
  params.max_missed = 2;
  ObjectTracker tracker(params);
  tracker.update({detection_at(1, 50, 50)});
  for (int i = 0; i < 3; ++i) tracker.update({});
  EXPECT_TRUE(tracker.tracks().empty());
}

TEST(Tracker, ResetClearsTracks) {
  ObjectTracker tracker;
  tracker.update({detection_at(1, 50, 50)});
  tracker.reset();
  EXPECT_TRUE(tracker.tracks().empty());
}

}  // namespace
}  // namespace mar::vision
