// Exposition-format conformance: a strict line parser over everything
// the process can serve at /metrics — MetricRegistry::prometheus_text()
// and Tracer::prometheus_text(). Prometheus scrapers are unforgiving;
// one unescaped quote in a label value corrupts every sample after it,
// so the contract is pinned here: label-value escaping (\\ \" \n), HELP
// escaping, cumulative buckets, +Inf == _count, _sum/_count presence,
// and OpenMetrics exemplar suffixes on bucket lines only.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mar::telemetry {
namespace {

struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // unescaped values
  std::string value_text;
  double value = 0.0;
  bool has_exemplar = false;
  std::uint32_t exemplar_trace_id = 0;
  double exemplar_value = 0.0;

  [[nodiscard]] std::string label(const std::string& key) const {
    for (const auto& [k, v] : labels) {
      if (k == key) return v;
    }
    return "";
  }
};

bool is_name_char(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') return true;
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

// Strict value token: a C double or the Prometheus spellings +Inf/-Inf/NaN.
bool parse_value(const std::string& text, double* out) {
  if (text == "+Inf") {
    *out = HUGE_VAL;
    return true;
  }
  if (text == "-Inf") {
    *out = -HUGE_VAL;
    return true;
  }
  if (text == "NaN") {
    *out = 0.0;
    return true;
  }
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

// One sample line, strictly:
//   name[{k="v",...}] value[ # {trace_id="N"} value]
// Returns nullopt (and records a test failure) on any grammar breach.
std::optional<Sample> parse_sample(const std::string& line) {
  Sample s;
  std::size_t i = 0;
  while (i < line.size() && is_name_char(line[i], i == 0)) ++i;
  if (i == 0) {
    ADD_FAILURE() << "sample must start with a metric name: " << line;
    return std::nullopt;
  }
  s.name = line.substr(0, i);

  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t k0 = i;
      while (i < line.size() && is_name_char(line[i], i == k0)) ++i;
      if (i == k0 || i + 1 >= line.size() || line[i] != '=' || line[i + 1] != '"') {
        ADD_FAILURE() << "bad label at col " << k0 << ": " << line;
        return std::nullopt;
      }
      std::string key = line.substr(k0, i - k0);
      i += 2;  // past ="
      std::string val;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= line.size()) break;
          const char esc = line[i + 1];
          if (esc == '\\') {
            val += '\\';
          } else if (esc == '"') {
            val += '"';
          } else if (esc == 'n') {
            val += '\n';
          } else {
            ADD_FAILURE() << "illegal escape \\" << esc << " in: " << line;
            return std::nullopt;
          }
          i += 2;
          continue;
        }
        if (line[i] == '\n') {
          ADD_FAILURE() << "raw newline inside label value: " << line;
          return std::nullopt;
        }
        val += line[i++];
      }
      if (i >= line.size()) {
        ADD_FAILURE() << "unterminated label value: " << line;
        return std::nullopt;
      }
      ++i;  // closing quote
      s.labels.emplace_back(std::move(key), std::move(val));
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      ADD_FAILURE() << "unterminated label set: " << line;
      return std::nullopt;
    }
    ++i;
  }

  if (i >= line.size() || line[i] != ' ') {
    ADD_FAILURE() << "expected space before value: " << line;
    return std::nullopt;
  }
  ++i;
  std::size_t v0 = i;
  while (i < line.size() && line[i] != ' ') ++i;
  s.value_text = line.substr(v0, i - v0);
  if (!parse_value(s.value_text, &s.value)) {
    ADD_FAILURE() << "unparseable value '" << s.value_text << "' in: " << line;
    return std::nullopt;
  }

  if (i < line.size()) {
    // Only an OpenMetrics exemplar may follow: ` # {trace_id="N"} value`
    const std::string rest = line.substr(i);
    const std::string prefix = " # {trace_id=\"";
    if (rest.compare(0, prefix.size(), prefix) != 0) {
      ADD_FAILURE() << "trailing garbage after value: " << line;
      return std::nullopt;
    }
    std::size_t j = prefix.size();
    std::size_t d0 = j;
    while (j < rest.size() && std::isdigit(static_cast<unsigned char>(rest[j]))) ++j;
    if (j == d0 || rest.compare(j, 3, "\"} ") != 0) {
      ADD_FAILURE() << "malformed exemplar: " << line;
      return std::nullopt;
    }
    s.exemplar_trace_id =
        static_cast<std::uint32_t>(std::strtoul(rest.substr(d0, j - d0).c_str(), nullptr, 10));
    double exv = 0.0;
    if (!parse_value(rest.substr(j + 3), &exv)) {
      ADD_FAILURE() << "unparseable exemplar value: " << line;
      return std::nullopt;
    }
    s.has_exemplar = true;
    s.exemplar_value = exv;
  }
  return s;
}

// Parse a whole exposition body; validates comment lines too.
std::vector<Sample> parse_exposition(const std::string& body) {
  std::vector<Sample> out;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name kind" — and HELP text must
      // not smuggle a raw newline (it would have split the line).
      std::istringstream ls(line);
      std::string hash, kind, name;
      ls >> hash >> kind >> name;
      EXPECT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      EXPECT_FALSE(name.empty()) << line;
      continue;
    }
    if (auto s = parse_sample(line)) out.push_back(std::move(*s));
  }
  return out;
}

struct ConformanceTest : ::testing::Test {
  void SetUp() override {
    registry().set_enabled(true);
    registry().reset_values();
  }
  void TearDown() override {
    registry().reset_values();
    registry().set_enabled(false);
  }
  static MetricRegistry& registry() { return MetricRegistry::instance(); }
};

TEST_F(ConformanceTest, LabelValueEscapingRoundTrips) {
  const std::string nasty = "pa\\th \"quoted\"\nline2";
  registry().counter("conf_escape_total", "escape probe", {{"site", nasty}}).inc(3);

  const std::string body = registry().prometheus_text();
  // The raw text must carry the escaped forms...
  EXPECT_NE(body.find("site=\"pa\\\\th \\\"quoted\\\"\\nline2\""), std::string::npos)
      << body;
  // ...and the strict parser must recover the original value exactly.
  bool found = false;
  for (const Sample& s : parse_exposition(body)) {
    if (s.name == "conf_escape_total") {
      found = true;
      EXPECT_EQ(s.label("site"), nasty);
      EXPECT_EQ(s.value, 3.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ConformanceTest, HelpTextEscapesBackslashAndNewline) {
  registry().counter("conf_help_total", "line1\nline2 \\ backslash").inc();
  const std::string body = registry().prometheus_text();
  EXPECT_NE(body.find("# HELP conf_help_total line1\\nline2 \\\\ backslash"),
            std::string::npos)
      << body;
  parse_exposition(body);  // still one line per sample / comment
}

TEST_F(ConformanceTest, HistogramBucketsAreCumulativeAndInfEqualsCount) {
  auto& h = registry().histogram("conf_lat_ms", "latency probe",
                                 {1.0, 5.0, 25.0}, {{"stage", "sift"}});
  const double obs[] = {0.5, 0.7, 3.0, 10.0, 100.0, 400.0};
  for (double v : obs) h.observe(v);

  std::map<std::string, std::uint64_t> bucket;  // le -> cumulative
  std::uint64_t count = 0;
  bool saw_sum = false, saw_count = false;
  double sum = 0.0;
  for (const Sample& s : parse_exposition(registry().prometheus_text())) {
    if (s.name == "conf_lat_ms_bucket" && s.label("stage") == "sift") {
      bucket[s.label("le")] = static_cast<std::uint64_t>(s.value);
    } else if (s.name == "conf_lat_ms_sum") {
      saw_sum = true;
      sum = s.value;
    } else if (s.name == "conf_lat_ms_count") {
      saw_count = true;
      count = static_cast<std::uint64_t>(s.value);
    }
  }
  ASSERT_TRUE(saw_sum);
  ASSERT_TRUE(saw_count);
  ASSERT_EQ(bucket.size(), 4u);  // 3 bounds + +Inf
  EXPECT_EQ(bucket["1"], 2u);
  EXPECT_EQ(bucket["5"], 3u);
  EXPECT_EQ(bucket["25"], 4u);
  EXPECT_EQ(bucket["+Inf"], 6u);
  EXPECT_EQ(bucket["+Inf"], count) << "+Inf bucket must equal _count";
  EXPECT_LE(bucket["1"], bucket["5"]);
  EXPECT_LE(bucket["5"], bucket["25"]);
  EXPECT_LE(bucket["25"], bucket["+Inf"]);
  EXPECT_DOUBLE_EQ(sum, 0.5 + 0.7 + 3.0 + 10.0 + 100.0 + 400.0);
}

TEST_F(ConformanceTest, ExemplarsRideOnlyOnBucketLines) {
  auto& h = registry().histogram("conf_exm_ms", "exemplar probe", {10.0, 50.0});
  h.observe(3.0);                 // no exemplar
  h.observe(30.0, /*trace_id=*/77);
  h.observe(500.0, /*trace_id=*/91);

  std::size_t exemplars = 0;
  for (const Sample& s : parse_exposition(registry().prometheus_text())) {
    if (!s.has_exemplar) continue;
    ++exemplars;
    EXPECT_NE(s.name.find("_bucket"), std::string::npos)
        << "exemplar outside a bucket line: " << s.name;
    if (s.name == "conf_exm_ms_bucket" && s.label("le") == "50") {
      EXPECT_EQ(s.exemplar_trace_id, 77u);
      EXPECT_DOUBLE_EQ(s.exemplar_value, 30.0);
    }
    if (s.name == "conf_exm_ms_bucket" && s.label("le") == "+Inf") {
      EXPECT_EQ(s.exemplar_trace_id, 91u);
    }
  }
  EXPECT_EQ(exemplars, 2u);
}

TEST_F(ConformanceTest, StatuszNamesTheWorstExemplar) {
  auto& h = registry().histogram("conf_statusz_ms", "statusz probe", {10.0});
  h.observe(4.0, 5);
  h.observe(80.0, 6);
  const std::string statusz = registry().statusz_text();
  EXPECT_NE(statusz.find("exemplar=trace_id:6"), std::string::npos) << statusz;
}

TEST_F(ConformanceTest, TracerExpositionIsStrictlyParseable) {
  auto& tracer = Tracer::instance();
  tracer.reserve(1024);
  tracer.set_enabled(true);
  tracer.clear();
  tracer.begin(0, spans::kService, 1000, ClientId{0}, FrameId{1}, Stage::kSift);
  tracer.end(0, spans::kService, 3'000'000, ClientId{0}, FrameId{1}, Stage::kSift);
  tracer.instant(0, spans::kDropStale, 4'000'000, ClientId{0}, FrameId{2}, Stage::kSift);

  const auto samples = parse_exposition(tracer.prometheus_text());
  bool saw_span = false, saw_instant = false;
  for (const Sample& s : samples) {
    EXPECT_FALSE(s.has_exemplar) << s.name;  // tracer gauges carry none
    if (s.name == "mar_trace_span_ms" && s.label("span") == spans::kService) {
      saw_span = true;
      EXPECT_EQ(s.label("stage"), "sift");
    }
    if (s.name == "mar_trace_instants_total" && s.label("event") == spans::kDropStale) {
      saw_instant = true;
      EXPECT_EQ(s.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  tracer.clear();
  tracer.set_enabled(false);
}

}  // namespace
}  // namespace mar::telemetry
