#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "telemetry/build_info.h"
#include "telemetry/procstat.h"
#include "telemetry/registry.h"

namespace mar::telemetry {
namespace {

// The registry is a process-wide singleton; each test uses unique
// family names, enables updates on entry, and zeroes cells on exit.
struct RegistryFixture : ::testing::Test {
  void SetUp() override {
    reg.reset_values();
    reg.set_enabled(true);
  }
  void TearDown() override {
    reg.set_enabled(false);
    reg.reset_values();
  }
  MetricRegistry& reg = MetricRegistry::instance();
};

// --- Counter ---------------------------------------------------------------

TEST_F(RegistryFixture, CounterTotalsAreExactUnderThreads) {
  Counter& c = reg.counter("t_threads_total", "concurrency test");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIncs = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kIncs);
}

TEST_F(RegistryFixture, CounterTotalsAreExactUnderPoolLanes) {
  // Updates from parallel_for workers shard by lane; the read-side sum
  // must still be exact.
  Counter& c = reg.counter("t_lanes_total", "pool lane test");
  constexpr std::int64_t kN = 100'000;
  parallel_for(0, kN, 128, [&c](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) c.inc();
  });
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kN));
}

TEST_F(RegistryFixture, CounterIncByN) {
  Counter& c = reg.counter("t_incn_total", "inc(n)");
  c.inc(5);
  c.inc(7);
  EXPECT_EQ(c.value(), 12u);
}

// --- Gauge -----------------------------------------------------------------

TEST_F(RegistryFixture, GaugeSetAndAdd) {
  Gauge& g = reg.gauge("t_gauge", "gauge test");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);
}

TEST_F(RegistryFixture, GaugeConcurrentAddIsExactForRepresentableSteps) {
  Gauge& g = reg.gauge("t_gauge_cas", "CAS add test");
  constexpr int kThreads = 4;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kAdds; ++i) g.add(1.0);  // exact in double
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kAdds));
}

// --- FixedHistogram --------------------------------------------------------

TEST_F(RegistryFixture, HistogramBucketsSumCount) {
  FixedHistogram& h = reg.histogram("t_hist_ms", "hist test", {1.0, 10.0});
  h.observe(0.5);   // <= 1
  h.observe(5.0);   // <= 10
  h.observe(100.0);  // +Inf
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  EXPECT_DOUBLE_EQ(h.mean(), 105.5 / 3.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST_F(RegistryFixture, HistogramCountExactUnderThreads) {
  FixedHistogram& h =
      reg.histogram("t_hist_mt_ms", "hist concurrency",
                    FixedHistogram::default_latency_ms_bounds());
  constexpr int kThreads = 8;
  constexpr int kObs = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) h.observe(static_cast<double>(t));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kObs));
}

TEST_F(RegistryFixture, HistogramQuantileInterpolates) {
  FixedHistogram& h = reg.histogram("t_hist_q_ms", "quantiles", {10.0, 20.0, 40.0});
  for (int i = 0; i < 100; ++i) h.observe(15.0);  // all in (10, 20]
  EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));  // clamped
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST_F(RegistryFixture, HistogramEmptyQuantileIsZero) {
  FixedHistogram& h = reg.histogram("t_hist_empty_ms", "empty", {1.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

// --- disabled path ---------------------------------------------------------

TEST_F(RegistryFixture, DisabledUpdatesAreNoOps) {
  Counter& c = reg.counter("t_off_total", "disabled");
  Gauge& g = reg.gauge("t_off_gauge", "disabled");
  FixedHistogram& h = reg.histogram("t_off_ms", "disabled", {1.0});
  reg.set_enabled(false);
  c.inc();
  g.set(7.0);
  h.observe(3.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  reg.set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

// --- families, labels, exposition ------------------------------------------

TEST_F(RegistryFixture, SameNameAndLabelsReturnsSameMetric) {
  Counter& a = reg.counter("t_same_total", "dedup", {{"stage", "sift"}});
  Counter& b = reg.counter("t_same_total", "dedup", {{"stage", "sift"}});
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("t_same_total", "dedup", {{"stage", "matching"}});
  EXPECT_NE(&a, &c);
}

TEST_F(RegistryFixture, TypeMismatchThrows) {
  reg.counter("t_kind_total", "a counter");
  EXPECT_THROW(reg.gauge("t_kind_total", "as gauge"), std::logic_error);
  EXPECT_THROW(reg.histogram("t_kind_total", "as hist", {1.0}), std::logic_error);
}

TEST_F(RegistryFixture, PrometheusExposition) {
  reg.counter("t_expo_total", "an exposition counter", {{"stage", "sift"}}).inc(3);
  reg.gauge("t_expo_gauge", "an exposition gauge").set(2.5);
  FixedHistogram& h = reg.histogram("t_expo_ms", "an exposition histogram", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(100.0);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP t_expo_total an exposition counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_expo_total counter"), std::string::npos);
  EXPECT_NE(text.find("t_expo_total{stage=\"sift\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_expo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("t_expo_gauge 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_expo_ms histogram"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("t_expo_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("t_expo_ms_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_expo_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("t_expo_ms_sum 105.5"), std::string::npos);
  EXPECT_NE(text.find("t_expo_ms_count 3"), std::string::npos);
}

TEST_F(RegistryFixture, StatuszSnapshotRendersAllKinds) {
  reg.counter("t_sz_total", "statusz counter").inc();
  reg.histogram("t_sz_ms", "statusz hist", {1.0}).observe(0.5);
  const std::string text = reg.statusz_text();
  EXPECT_NE(text.find("t_sz_total: 1"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST_F(RegistryFixture, StatuszRendersHistogramQuantiles) {
  FixedHistogram& h = reg.histogram("t_quant_ms", "quantile hist",
                               {1.0, 2.0, 4.0, 8.0, 16.0});
  for (int i = 0; i < 90; ++i) h.observe(0.5);   // below first bucket
  for (int i = 0; i < 9; ++i) h.observe(3.0);    // p90 in the (2,4] bucket
  h.observe(12.0);                               // p99 in the (8,16] bucket
  const std::string text = reg.statusz_text();
  const auto line_at = text.find("t_quant_ms");
  ASSERT_NE(line_at, std::string::npos);
  const std::string line = text.substr(line_at, text.find('\n', line_at) - line_at);
  EXPECT_NE(line.find("p50="), std::string::npos) << line;
  EXPECT_NE(line.find("p90="), std::string::npos) << line;
  EXPECT_NE(line.find("p99="), std::string::npos) << line;
  // The rendered quantiles obey the same interpolation as quantile().
  EXPECT_LE(h.quantile(0.50), 1.0);
  EXPECT_GT(h.quantile(0.99), h.quantile(0.50));
}

TEST_F(RegistryFixture, CollectHooksRunBeforeEveryScrape) {
  // Hooks persist for the process lifetime (the registry is a
  // singleton), so capture state that outlives this test.
  static std::atomic<int> fired{0};
  Gauge& g = reg.gauge("t_hook_gauge", "collect-hook target");
  reg.add_collect_hook([&g] { fired.fetch_add(1); g.set(42.0); });

  const int before = fired.load();
  const std::string prom = reg.prometheus_text();
  EXPECT_GT(fired.load(), before);
  EXPECT_NE(prom.find("t_hook_gauge 42"), std::string::npos);

  // statusz scrapes run the same hooks, and a reset_values() in between
  // is repaired by the hook before the text is rendered.
  reg.reset_values();
  const std::string sz = reg.statusz_text();
  EXPECT_NE(sz.find("t_hook_gauge: 42"), std::string::npos);
}

TEST_F(RegistryFixture, BuildInfoMetricSurvivesResetViaCollectHook) {
  register_build_info_metric();
  register_build_info_metric();  // idempotent
  const std::string prom = reg.prometheus_text();
  const auto at = prom.find("mar_build_info{");
  ASSERT_NE(at, std::string::npos);
  const std::string line = prom.substr(at, prom.find('\n', at) - at);
  EXPECT_NE(line.find("git_sha=\""), std::string::npos) << line;
  EXPECT_NE(line.find("build_type=\""), std::string::npos) << line;
  EXPECT_NE(line.find("sanitizer=\""), std::string::npos) << line;
  EXPECT_EQ(line.substr(line.size() - 2), " 1") << line;

  // The identity gauge is constant-1 by convention: a reset_values()
  // must not leave a scrape showing 0.
  reg.reset_values();
  const std::string again = reg.prometheus_text();
  const auto at2 = again.find("mar_build_info{");
  ASSERT_NE(at2, std::string::npos);
  const std::string line2 = again.substr(at2, again.find('\n', at2) - at2);
  EXPECT_EQ(line2.substr(line2.size() - 2), " 1") << line2;

  // The human header used by /statusz carries the same identity.
  const std::string header = build_info_line();
  EXPECT_NE(header.find(build_info().build_type), std::string::npos);
}

TEST_F(RegistryFixture, ResetValuesKeepsFamilies) {
  Counter& c = reg.counter("t_reset_total", "reset");
  c.inc(9);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  // Same reference comes back after reset.
  EXPECT_EQ(&reg.counter("t_reset_total", "reset"), &c);
}

// --- procstat --------------------------------------------------------------

TEST(ProcStat, ReaderSmoke) {
  ProcStatReader reader;
  const ProcStatSample s = reader.sample();
  EXPECT_TRUE(s.ok);
  EXPECT_GT(s.rss_bytes, 0u);
  EXPECT_GE(s.num_threads, 1u);
  EXPECT_GE(s.cpu_seconds, 0.0);
  EXPECT_EQ(s.cpu_percent, 0.0);  // no previous sample yet
  const ProcStatSample s2 = reader.sample();
  EXPECT_TRUE(s2.ok);
  EXPECT_GE(s2.cpu_percent, 0.0);
  EXPECT_GE(s2.cpu_seconds, s.cpu_seconds);
}

TEST(ProcStat, GetrusageFallbackWhenStatUnreadable) {
  // Pointing the reader at a missing stat file forces the portable
  // getrusage() path: CPU time and peak RSS must still come back.
  ProcStatReader reader("/nonexistent/definitely_missing_stat");
  const ProcStatSample s = reader.sample();
  EXPECT_TRUE(s.ok);
  EXPECT_GT(s.rss_bytes, 0u);       // ru_maxrss (peak, not current)
  EXPECT_GE(s.cpu_seconds, 0.0);
  EXPECT_EQ(s.num_threads, 0u);     // /proc-only field stays unset
}

TEST(ProcStat, SamplerPublishesGauges) {
  MetricRegistry& reg = MetricRegistry::instance();
  reg.set_enabled(true);
  {
    ProcStatSampler sampler(reg);
    sampler.start(std::chrono::milliseconds(50));
    EXPECT_TRUE(sampler.running());
    // start() publishes synchronously, so the gauges are already live.
    EXPECT_GT(reg.gauge("mar_process_rss_bytes", "").value(), 0.0);
    EXPECT_GE(reg.gauge("mar_process_threads", "").value(), 1.0);
    sampler.stop();
    EXPECT_FALSE(sampler.running());
  }
  reg.set_enabled(false);
  reg.reset_values();
}

}  // namespace
}  // namespace mar::telemetry
