#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "vision/fisher.h"
#include "vision/gmm.h"
#include "vision/kmeans.h"
#include "vision/pca.h"

namespace mar::vision {
namespace {

// Draws `n` points from a Gaussian around `center`.
std::vector<std::vector<float>> cluster(Rng& rng, const std::vector<float>& center, int n,
                                        double sigma = 0.3) {
  std::vector<std::vector<float>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<float> p(center.size());
    for (std::size_t d = 0; d < p.size(); ++d) {
      p[d] = center[d] + static_cast<float>(rng.gaussian(0.0, sigma));
    }
    out.push_back(std::move(p));
  }
  return out;
}

// --- k-means ----------------------------------------------------------------

TEST(KMeans, RecoversSeparatedClusters) {
  Rng rng(1);
  auto data = cluster(rng, {0.0f, 0.0f}, 100);
  auto c2 = cluster(rng, {10.0f, 10.0f}, 100);
  data.insert(data.end(), c2.begin(), c2.end());

  KMeansParams params;
  params.k = 2;
  const KMeansResult result = kmeans(data, params, rng);
  ASSERT_EQ(result.centers.size(), 2u);
  // One center near each true mean.
  const auto near = [&](float cx, float cy) {
    return std::any_of(result.centers.begin(), result.centers.end(),
                       [&](const std::vector<float>& c) {
                         return std::abs(c[0] - cx) < 1.0f && std::abs(c[1] - cy) < 1.0f;
                       });
  };
  EXPECT_TRUE(near(0.0f, 0.0f));
  EXPECT_TRUE(near(10.0f, 10.0f));
  // Assignments are consistent: points 0..99 share a label.
  for (int i = 1; i < 100; ++i) EXPECT_EQ(result.assignment[0], result.assignment[static_cast<std::size_t>(i)]);
}

TEST(KMeans, EmptyInput) {
  Rng rng(2);
  KMeansParams params;
  EXPECT_TRUE(kmeans({}, params, rng).centers.empty());
}

TEST(KMeans, MoreClustersThanPointsClamps) {
  Rng rng(3);
  const std::vector<std::vector<float>> data = {{1.0f}, {2.0f}};
  KMeansParams params;
  params.k = 10;
  EXPECT_EQ(kmeans(data, params, rng).centers.size(), 2u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(4);
  auto data = cluster(rng, {0.0f, 0.0f}, 60, 2.0);
  auto c2 = cluster(rng, {8.0f, 0.0f}, 60, 2.0);
  auto c3 = cluster(rng, {4.0f, 7.0f}, 60, 2.0);
  data.insert(data.end(), c2.begin(), c2.end());
  data.insert(data.end(), c3.begin(), c3.end());
  KMeansParams p1, p3;
  p1.k = 1;
  p3.k = 3;
  Rng r1(5), r3(5);
  EXPECT_GT(kmeans(data, p1, r1).inertia, kmeans(data, p3, r3).inertia * 2.0);
}

// --- PCA ----------------------------------------------------------------------

TEST(Pca, RecoversDominantDirection) {
  Rng rng(6);
  // Points along y = 2x with small noise: first PC ~ (1,2)/sqrt(5).
  std::vector<std::vector<float>> data;
  for (int i = 0; i < 500; ++i) {
    const float t = static_cast<float>(rng.gaussian(0.0, 3.0));
    data.push_back({t + static_cast<float>(rng.gaussian(0, 0.05)),
                    2 * t + static_cast<float>(rng.gaussian(0, 0.05))});
  }
  Pca pca;
  pca.fit(data, 1);
  ASSERT_TRUE(pca.fitted());
  const auto z = pca.transform({1.0f, 2.0f});
  const auto z0 = pca.transform({0.0f, 0.0f});
  // Projection along the line direction has magnitude sqrt(5).
  EXPECT_NEAR(std::abs(z[0] - z0[0]), std::sqrt(5.0f), 0.05f);
  EXPECT_GT(pca.explained_variance_ratio(), 0.99);
}

TEST(Pca, TransformReducesDimension) {
  Rng rng(7);
  auto data = cluster(rng, std::vector<float>(16, 0.0f), 100, 1.0);
  Pca pca;
  pca.fit(data, 4);
  EXPECT_EQ(pca.input_dim(), 16);
  EXPECT_EQ(pca.output_dim(), 4);
  EXPECT_EQ(pca.transform(data[0]).size(), 4u);
  EXPECT_EQ(pca.transform(data).size(), data.size());
}

TEST(Pca, InverseTransformApproximates) {
  Rng rng(8);
  // Rank-2 data embedded in 5-D reconstructs nearly exactly from 2 PCs.
  std::vector<std::vector<float>> data;
  for (int i = 0; i < 300; ++i) {
    const float a = static_cast<float>(rng.gaussian(0, 1));
    const float b = static_cast<float>(rng.gaussian(0, 1));
    data.push_back({a, b, a + b, a - b, 2 * a});
  }
  Pca pca;
  pca.fit(data, 2);
  const auto z = pca.transform(data[0]);
  const auto back = pca.inverse_transform(z);
  for (std::size_t d = 0; d < back.size(); ++d) {
    EXPECT_NEAR(back[d], data[0][d], 0.05f);
  }
}

TEST(Pca, EigenvaluesDescending) {
  Rng rng(9);
  auto data = cluster(rng, std::vector<float>(8, 0.0f), 200, 1.0);
  Pca pca;
  pca.fit(data, 8);
  const auto& ev = pca.explained_variance();
  for (std::size_t i = 1; i < ev.size(); ++i) EXPECT_GE(ev[i - 1], ev[i]);
}

// --- GMM --------------------------------------------------------------------------

TEST(Gmm, RecoversTwoComponents) {
  Rng rng(10);
  auto data = cluster(rng, {0.0f, 0.0f}, 300, 0.5);
  auto c2 = cluster(rng, {6.0f, 6.0f}, 300, 0.5);
  data.insert(data.end(), c2.begin(), c2.end());

  Gmm gmm;
  GmmParams params;
  params.components = 2;
  ASSERT_TRUE(gmm.fit(data, params, rng));
  EXPECT_EQ(gmm.components(), 2);
  EXPECT_EQ(gmm.dim(), 2);
  // Weights roughly balanced; means near the truth.
  EXPECT_NEAR(gmm.weights()[0], 0.5, 0.1);
  const bool found_origin = std::abs(gmm.means()[0][0]) < 0.5 || std::abs(gmm.means()[1][0]) < 0.5;
  EXPECT_TRUE(found_origin);
}

TEST(Gmm, PosteriorsSumToOneAndSeparate) {
  Rng rng(11);
  auto data = cluster(rng, {0.0f}, 200, 0.4);
  auto c2 = cluster(rng, {8.0f}, 200, 0.4);
  data.insert(data.end(), c2.begin(), c2.end());
  Gmm gmm;
  GmmParams params;
  params.components = 2;
  ASSERT_TRUE(gmm.fit(data, params, rng));

  const auto g0 = gmm.posteriors({0.0f});
  const auto g8 = gmm.posteriors({8.0f});
  EXPECT_NEAR(g0[0] + g0[1], 1.0, 1e-9);
  // A point at one mode is confidently assigned.
  EXPECT_GT(std::max(g0[0], g0[1]), 0.99);
  // The two modes prefer different components.
  const int argmax0 = g0[0] > g0[1] ? 0 : 1;
  const int argmax8 = g8[0] > g8[1] ? 0 : 1;
  EXPECT_NE(argmax0, argmax8);
}

TEST(Gmm, LikelihoodHigherInDenseRegion) {
  Rng rng(12);
  auto data = cluster(rng, {0.0f, 0.0f}, 400, 0.5);
  Gmm gmm;
  GmmParams params;
  params.components = 2;
  ASSERT_TRUE(gmm.fit(data, params, rng));
  EXPECT_GT(gmm.log_likelihood({0.0f, 0.0f}), gmm.log_likelihood({30.0f, 30.0f}));
}

TEST(Gmm, RejectsDegenerateInput) {
  Rng rng(13);
  Gmm gmm;
  GmmParams params;
  params.components = 8;
  EXPECT_FALSE(gmm.fit({}, params, rng));
  EXPECT_FALSE(gmm.fit({{1.0f}, {2.0f}}, params, rng));  // fewer points than K
}

// --- Fisher vectors ------------------------------------------------------------------

struct FisherFixture : ::testing::Test {
  void SetUp() override {
    Rng rng(14);
    auto data = cluster(rng, {0.0f, 0.0f, 0.0f}, 300, 0.5);
    auto c2 = cluster(rng, {5.0f, 5.0f, 5.0f}, 300, 0.5);
    data.insert(data.end(), c2.begin(), c2.end());
    GmmParams params;
    params.components = 2;
    ASSERT_TRUE(gmm.fit(data, params, rng));
    encoder.set_model(&gmm);
  }

  Gmm gmm;
  FisherEncoder encoder;
};

TEST_F(FisherFixture, OutputDimIs2KD) {
  EXPECT_EQ(encoder.output_dim(), 2 * 2 * 3);
  Rng rng(15);
  const auto fv = encoder.encode(cluster(rng, {0.0f, 0.0f, 0.0f}, 20, 0.5));
  EXPECT_EQ(fv.size(), 12u);
}

TEST_F(FisherFixture, L2Normalized) {
  Rng rng(16);
  const auto fv = encoder.encode(cluster(rng, {1.0f, 1.0f, 1.0f}, 30, 0.5));
  double norm = 0.0;
  for (float v : fv) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-6);
}

TEST_F(FisherFixture, SimilarSetsEncodeSimilarly) {
  Rng rng(17);
  const auto fv_a = encoder.encode(cluster(rng, {0.0f, 0.0f, 0.0f}, 50, 0.5));
  const auto fv_b = encoder.encode(cluster(rng, {0.0f, 0.0f, 0.0f}, 50, 0.5));
  const auto fv_c = encoder.encode(cluster(rng, {5.0f, 5.0f, 5.0f}, 50, 0.5));
  EXPECT_GT(cosine_similarity(fv_a, fv_b), cosine_similarity(fv_a, fv_c));
}

TEST_F(FisherFixture, EmptyDescriptorSetIsZeroVector) {
  const auto fv = encoder.encode({});
  ASSERT_EQ(fv.size(), 12u);
  for (float v : fv) EXPECT_EQ(v, 0.0f);
}

TEST(CosineSimilarity, Basics) {
  EXPECT_FLOAT_EQ(cosine_similarity({1, 0}, {1, 0}), 1.0f);
  EXPECT_FLOAT_EQ(cosine_similarity({1, 0}, {0, 1}), 0.0f);
  EXPECT_FLOAT_EQ(cosine_similarity({1, 0}, {-1, 0}), -1.0f);
  EXPECT_EQ(cosine_similarity({1, 0}, {1, 0, 0}), 0.0f);  // size mismatch
  EXPECT_EQ(cosine_similarity({}, {}), 0.0f);
}

}  // namespace
}  // namespace mar::vision
