#include <gtest/gtest.h>

#include "video/scene.h"

namespace mar::video {
namespace {

TEST(Scene, DefaultIs720p) {
  const WorkplaceScene scene;
  EXPECT_EQ(scene.width(), 1280);
  EXPECT_EQ(scene.height(), 720);
  const auto frame = scene.render(0.0);
  EXPECT_EQ(frame.width(), 1280);
  EXPECT_EQ(frame.height(), 720);
}

TEST(Scene, RenderIsDeterministic) {
  const WorkplaceScene a(320, 180), b(320, 180);
  const auto fa = a.render(1.25);
  const auto fb = b.render(1.25);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) ASSERT_EQ(fa.data()[i], fb.data()[i]);
}

TEST(Scene, FramesChangeOverTime) {
  const WorkplaceScene scene(320, 180);
  const auto f0 = scene.render(0.0);
  const auto f1 = scene.render(2.0);
  double diff = 0.0;
  for (std::size_t i = 0; i < f0.size(); ++i) {
    diff += std::abs(f0.data()[i] - f1.data()[i]);
  }
  EXPECT_GT(diff / static_cast<double>(f0.size()), 0.005);  // camera moved
}

TEST(Scene, HasThreeObjects) {
  const WorkplaceScene scene;
  EXPECT_EQ(scene.placements().size(), 3u);
  EXPECT_EQ(kNumSceneObjects, 3);
}

TEST(Scene, ReferenceImagesDiffer) {
  const WorkplaceScene scene;
  const auto monitor = scene.render_reference(SceneObject::kMonitor, 64, 64);
  const auto keyboard = scene.render_reference(SceneObject::kKeyboard, 64, 64);
  double diff = 0.0;
  for (std::size_t i = 0; i < monitor.size(); ++i) {
    diff += std::abs(monitor.data()[i] - keyboard.data()[i]);
  }
  EXPECT_GT(diff / static_cast<double>(monitor.size()), 0.05);
}

TEST(Scene, ReferenceHasRequestedDims) {
  const WorkplaceScene scene;
  const auto img = scene.render_reference(SceneObject::kTable, 100, 40);
  EXPECT_EQ(img.width(), 100);
  EXPECT_EQ(img.height(), 40);
}

TEST(Scene, GroundTruthBboxMovesWithCamera) {
  const WorkplaceScene scene;
  const auto b0 = scene.object_bbox_at(SceneObject::kMonitor, 0.0);
  const auto b1 = scene.object_bbox_at(SceneObject::kMonitor, 2.5);
  EXPECT_NE(b0[0], b1[0]);  // camera pan shifts the box
  // Box stays ordered.
  EXPECT_LT(b0[0], b0[2]);
  EXPECT_LT(b0[1], b0[3]);
}

TEST(Scene, CameraIsPeriodicish) {
  const WorkplaceScene scene;
  const CameraPose p0 = scene.camera_at(0.0);
  const CameraPose p10 = scene.camera_at(10.0);
  EXPECT_NEAR(p0.offset_x, p10.offset_x, 1.0f);  // 10 s pan loop
}

TEST(Scene, PixelValuesInRange) {
  const WorkplaceScene scene(320, 180);
  const auto frame = scene.render(3.7);
  for (float v : frame.data()) {
    ASSERT_GE(v, -0.2f);
    ASSERT_LE(v, 1.3f);
  }
}

TEST(VideoSource, LoopsClip) {
  VideoSource source(WorkplaceScene(160, 90), 30.0, 10.0);
  EXPECT_EQ(source.frames_per_loop(), 300u);
  const auto first = source.frame(0);
  const auto looped = source.frame(300);  // exactly one clip later
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_NEAR(first.data()[i], looped.data()[i], 1e-5f);
  }
}

TEST(VideoSource, FpsAccessors) {
  VideoSource source(WorkplaceScene(160, 90), 25.0, 4.0);
  EXPECT_DOUBLE_EQ(source.fps(), 25.0);
  EXPECT_EQ(source.frames_per_loop(), 100u);
}

}  // namespace
}  // namespace mar::video
