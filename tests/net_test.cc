#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "net/fragment.h"
#include "net/frame_channel.h"
#include "net/udp.h"

namespace mar::net {
namespace {

// --- fragmentation ------------------------------------------------------------

std::vector<std::uint8_t> random_blob(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(Fragment, SmallMessageIsOneFragment) {
  const auto msg = random_blob(100, 1);
  const auto frags = fragment_message(msg, 42);
  ASSERT_EQ(frags.size(), 1u);
  Reassembler r;
  const auto out = r.add(frags[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST(Fragment, LargeMessageSplitsAndReassembles) {
  const auto msg = random_blob(480 * 1024, 2);  // the paper's stateful frame size
  const auto frags = fragment_message(msg, 7);
  EXPECT_EQ(frags.size(), (msg.size() + kMaxFragmentPayload - 1) / kMaxFragmentPayload);
  Reassembler r;
  std::optional<std::vector<std::uint8_t>> out;
  for (const auto& f : frags) {
    EXPECT_FALSE(out.has_value());
    out = r.add(f);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST(Fragment, OutOfOrderReassembly) {
  const auto msg = random_blob(200'000, 3);
  auto frags = fragment_message(msg, 9);
  std::reverse(frags.begin(), frags.end());
  Reassembler r;
  std::optional<std::vector<std::uint8_t>> out;
  for (const auto& f : frags) out = r.add(f);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST(Fragment, DuplicateFragmentsIgnored) {
  const auto msg = random_blob(150'000, 4);
  const auto frags = fragment_message(msg, 11);
  Reassembler r;
  r.add(frags[0]);
  r.add(frags[0]);  // duplicate must not complete or corrupt
  std::optional<std::vector<std::uint8_t>> out;
  for (std::size_t i = 1; i < frags.size(); ++i) out = r.add(frags[i]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST(Fragment, MissingFragmentNeverCompletes) {
  const auto msg = random_blob(150'000, 5);
  const auto frags = fragment_message(msg, 13);
  Reassembler r;
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
    EXPECT_FALSE(r.add(frags[i]).has_value());
  }
  EXPECT_EQ(r.pending(), 1u);
}

TEST(Fragment, InterleavedMessages) {
  const auto m1 = random_blob(100'000, 6);
  const auto m2 = random_blob(100'000, 7);
  const auto f1 = fragment_message(m1, 100);
  const auto f2 = fragment_message(m2, 200);
  Reassembler r;
  std::optional<std::vector<std::uint8_t>> out1, out2;
  for (std::size_t i = 0; i < std::max(f1.size(), f2.size()); ++i) {
    if (i < f1.size()) {
      if (auto v = r.add(f1[i])) out1 = v;
    }
    if (i < f2.size()) {
      if (auto v = r.add(f2[i])) out2 = v;
    }
  }
  ASSERT_TRUE(out1.has_value());
  ASSERT_TRUE(out2.has_value());
  EXPECT_EQ(*out1, m1);
  EXPECT_EQ(*out2, m2);
}

TEST(Fragment, GarbageCollectionExpiresPartials) {
  Reassembler r(std::chrono::milliseconds(0));
  const auto frags = fragment_message(random_blob(150'000, 8), 17);
  r.add(frags[0]);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  r.garbage_collect();
  EXPECT_EQ(r.pending(), 0u);
  EXPECT_EQ(r.expired(), 1u);
}

TEST(Fragment, RejectsCorruptHeader) {
  Reassembler r;
  const std::vector<std::uint8_t> junk = {0x00, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_FALSE(r.add(junk).has_value());
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Fragment, EmptyMessageRoundTrip) {
  const auto frags = fragment_message({}, 21);
  ASSERT_EQ(frags.size(), 1u);
  Reassembler r;
  const auto out = r.add(frags[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

// Property: arbitrary sizes round-trip.
class FragmentSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FragmentSizeSweep, RoundTrip) {
  const auto msg = random_blob(GetParam(), GetParam() + 1);
  Reassembler r;
  std::optional<std::vector<std::uint8_t>> out;
  for (const auto& f : fragment_message(msg, 33)) out = r.add(f);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FragmentSizeSweep,
                         ::testing::Values(1u, 100u, kMaxFragmentPayload - 1,
                                           kMaxFragmentPayload, kMaxFragmentPayload + 1,
                                           3 * kMaxFragmentPayload + 17, 250u * 1024u));

// --- UDP socket -----------------------------------------------------------------

TEST(UdpSocket, OpenBindAndLocalAddr) {
  UdpSocket sock;
  ASSERT_TRUE(sock.open(0).is_ok());
  EXPECT_TRUE(sock.is_open());
  const auto addr = sock.local_addr();
  ASSERT_TRUE(addr.is_ok());
  EXPECT_GT(addr.value().port, 0);
}

TEST(UdpSocket, LoopbackSendReceive) {
  UdpSocket a, b;
  ASSERT_TRUE(a.open(0).is_ok());
  ASSERT_TRUE(b.open(0).is_ok());
  const SockAddr b_addr = SockAddr::loopback(b.local_addr().value().port);

  const std::vector<std::uint8_t> payload = {1, 2, 3, 4};
  const auto sent = a.send_to(payload, b_addr);
  ASSERT_TRUE(sent.is_ok());
  EXPECT_EQ(sent.value(), 4u);

  ASSERT_TRUE(b.wait_readable(1'000));
  const auto received = b.receive();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->data, payload);
}

TEST(UdpSocket, ReceiveOnEmptySocketReturnsNothing) {
  UdpSocket sock;
  ASSERT_TRUE(sock.open(0).is_ok());
  EXPECT_FALSE(sock.receive().has_value());  // non-blocking
}

TEST(UdpSocket, ClosedSocketRefusesOps) {
  UdpSocket sock;
  EXPECT_FALSE(sock.is_open());
  EXPECT_FALSE(sock.send_to(std::vector<std::uint8_t>{1}, SockAddr::loopback(1)).is_ok());
  EXPECT_FALSE(sock.local_addr().is_ok());
}

TEST(UdpSocket, MoveTransfersOwnership) {
  UdpSocket a;
  ASSERT_TRUE(a.open(0).is_ok());
  UdpSocket b = std::move(a);
  EXPECT_FALSE(a.is_open());
  EXPECT_TRUE(b.is_open());
}

TEST(SockAddr, Formatting) {
  EXPECT_EQ(SockAddr::loopback(8080).to_string(), "127.0.0.1:8080");
}

// --- FrameChannel --------------------------------------------------------------------

TEST(FrameChannel, RoundTripsLargeFramePacket) {
  FrameChannel a, b;
  ASSERT_TRUE(a.open(0).is_ok());
  ASSERT_TRUE(b.open(0).is_ok());
  const SockAddr b_addr = SockAddr::loopback(b.local_addr().value().port);

  wire::FramePacket pkt;
  pkt.header.client = ClientId{5};
  pkt.header.frame = FrameId{77};
  pkt.header.stage = Stage::kEncoding;
  pkt.payload = random_blob(300'000, 9);  // multi-fragment
  pkt.header.payload_bytes = static_cast<std::uint32_t>(pkt.payload.size());
  ASSERT_TRUE(a.send(pkt, b_addr).is_ok());

  std::optional<FrameChannel::Received> received;
  for (int attempt = 0; attempt < 100 && !received; ++attempt) {
    received = b.poll(50);
  }
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->packet.header.frame, FrameId{77});
  EXPECT_EQ(received->packet.payload, pkt.payload);
  EXPECT_EQ(b.messages_received(), 1u);
  EXPECT_EQ(a.messages_sent(), 1u);
}

TEST(FrameChannel, MultipleMessagesInOrderOfArrival) {
  FrameChannel a, b;
  ASSERT_TRUE(a.open(0).is_ok());
  ASSERT_TRUE(b.open(0).is_ok());
  const SockAddr b_addr = SockAddr::loopback(b.local_addr().value().port);

  for (std::uint64_t i = 0; i < 5; ++i) {
    wire::FramePacket pkt;
    pkt.header.frame = FrameId{i};
    pkt.payload = {static_cast<std::uint8_t>(i)};
    ASSERT_TRUE(a.send(pkt, b_addr).is_ok());
  }
  int got = 0;
  for (int attempt = 0; attempt < 200 && got < 5; ++attempt) {
    if (b.poll(20)) ++got;
  }
  EXPECT_EQ(got, 5);
}

}  // namespace
}  // namespace mar::net
