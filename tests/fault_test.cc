// Fault plane tests: plan grammar, opt-in neutrality, deterministic
// replay (same seed + same plan => bit-identical results), and the
// behavioral signatures of the windowed fault kinds.
//
// Runs under the `tsan` ctest label: the replay test is the
// determinism witness the fault experiments lean on, and it must hold
// when the vision pool threads are instrumented too.
#include <gtest/gtest.h>

#include "expt/experiment.h"
#include "fault/fault_plan.h"

namespace mar {
namespace {

using expt::ExperimentConfig;
using expt::ExperimentResult;
using expt::Site;
using expt::SymbolicPlacement;
using fault::FaultKind;
using fault::FaultPlan;

// --- plan grammar ------------------------------------------------------------

TEST(FaultPlan, ParsesCrashEntry) {
  const auto plan = FaultPlan::parse("crash@10s:stage=sift,replica=1");
  ASSERT_TRUE(plan.is_ok());
  ASSERT_EQ(plan.value().faults.size(), 1u);
  const auto& f = plan.value().faults[0];
  EXPECT_EQ(f.kind, FaultKind::kInstanceCrash);
  EXPECT_EQ(f.at, seconds(10.0));
  EXPECT_EQ(f.stage, Stage::kSift);
  EXPECT_EQ(f.replica, 1u);
}

TEST(FaultPlan, ParsesEveryKindAndRoundTrips) {
  const char* text =
      "crash@500ms:stage=matching,replica=0; "
      "reboot@1s+2s:machine=1; "
      "blackout@2s+250ms:link=3-0; "
      "degrade@3s+1s:link=0-1,loss=0.05,latency=10ms; "
      "lossburst@4s+1s:link=0-2,loss=0.2; "
      "brownout@5s+2s:machine=0,frac=0.25";
  const auto plan = FaultPlan::parse(text);
  ASSERT_TRUE(plan.is_ok()) << plan.status().message();
  ASSERT_EQ(plan.value().faults.size(), 6u);
  EXPECT_EQ(plan.value().faults[1].kind, FaultKind::kMachineReboot);
  EXPECT_EQ(plan.value().faults[1].duration, seconds(2.0));
  EXPECT_EQ(plan.value().faults[3].loss_rate, 0.05);
  EXPECT_EQ(plan.value().faults[3].extra_latency, millis(10.0));
  EXPECT_EQ(plan.value().faults[5].capacity_fraction, 0.25);

  // to_string() must re-parse to the same plan (stable logging form).
  const auto again = FaultPlan::parse(plan.value().to_string());
  ASSERT_TRUE(again.is_ok()) << again.status().message();
  EXPECT_EQ(again.value().to_string(), plan.value().to_string());
  ASSERT_EQ(again.value().faults.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(again.value().faults[i].kind, plan.value().faults[i].kind) << i;
    EXPECT_EQ(again.value().faults[i].at, plan.value().faults[i].at) << i;
    EXPECT_EQ(again.value().faults[i].duration, plan.value().faults[i].duration) << i;
  }
}

TEST(FaultPlan, RejectsMalformedEntries) {
  EXPECT_FALSE(FaultPlan::parse("melt@1s").is_ok());                    // unknown kind
  EXPECT_FALSE(FaultPlan::parse("crash 10s").is_ok());                  // missing '@'
  EXPECT_FALSE(FaultPlan::parse("crash@ten").is_ok());                  // malformed time
  EXPECT_FALSE(FaultPlan::parse("crash@1s:stage=warp").is_ok());        // unknown stage
  EXPECT_FALSE(FaultPlan::parse("crash@1s:color=red").is_ok());         // unknown key
  EXPECT_FALSE(FaultPlan::parse("blackout@1s+1s:link=01").is_ok());     // malformed link
  EXPECT_FALSE(FaultPlan::parse("degrade@1s:link=0-1,loss=x").is_ok());  // malformed loss
}

TEST(FaultPlan, EmptyTextIsEmptyPlan) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan.value().empty());
}

// --- experiment-level behavior -----------------------------------------------

ExperimentConfig base_cfg() {
  ExperimentConfig cfg;
  cfg.mode = core::PipelineMode::kScatter;
  cfg.placement = SymbolicPlacement::single(Site::kE1);
  cfg.num_clients = 2;
  cfg.warmup = seconds(2.0);
  cfg.duration = seconds(8.0);
  cfg.seed = 77;
  return cfg;
}

bool same_perf(const ExperimentResult& a, const ExperimentResult& b) {
  return a.fps_mean == b.fps_mean && a.fps_median == b.fps_median &&
         a.e2e_ms_mean == b.e2e_ms_mean && a.e2e_ms_p95 == b.e2e_ms_p95 &&
         a.success_rate == b.success_rate && a.jitter_ms == b.jitter_ms &&
         a.per_client_fps == b.per_client_fps;
}

TEST(FaultExperiment, ArmedButIdlePlaneIsANoOp) {
  // Opt-in criterion: turning the machinery on without any fault that
  // fires inside the window must not perturb the run at all — no extra
  // RNG draws, no event reordering visible in the metrics.
  const ExperimentResult plain = expt::run_experiment(base_cfg());

  ExperimentConfig armed = base_cfg();
  armed.failover = orchestra::FailoverConfig{};
  armed.fault_plan = FaultPlan::parse("crash@1000s:stage=sift,replica=0").value();
  const ExperimentResult idle = expt::run_experiment(armed);

  EXPECT_TRUE(same_perf(plain, idle));
  EXPECT_TRUE(idle.fault.enabled);
  EXPECT_EQ(idle.fault.injected, 0u);  // scheduled beyond the window end
  EXPECT_EQ(idle.fault.suspected, 0u);
  EXPECT_FALSE(plain.fault.enabled);
}

TEST(FaultExperiment, SameSeedSamePlanIsBitIdentical) {
  ExperimentConfig cfg = base_cfg();
  cfg.placement = SymbolicPlacement::replicated({1, 2, 1, 1, 1}, Site::kE2, Site::kE1);
  cfg.duration = seconds(12.0);
  cfg.costs.state_fetch_retries = 1;
  cfg.fault_plan = FaultPlan::parse("crash@3s:stage=sift,replica=0").value();
  orchestra::FailoverConfig fo;
  fo.heartbeat_interval = millis(200.0);
  fo.suspicion_timeout = millis(600.0);
  fo.respawn_delay = millis(800.0);
  cfg.failover = fo;

  const ExperimentResult a = expt::run_experiment(cfg);
  const ExperimentResult b = expt::run_experiment(cfg);

  EXPECT_TRUE(same_perf(a, b));
  EXPECT_EQ(a.fault.injected, b.fault.injected);
  EXPECT_EQ(a.fault.suspected, b.fault.suspected);
  EXPECT_EQ(a.fault.respawns, b.fault.respawns);
  EXPECT_EQ(a.fault.state_lost, b.fault.state_lost);
  EXPECT_EQ(a.fault.fetch_timeouts, b.fault.fetch_timeouts);
  EXPECT_EQ(a.fault.fetch_retries, b.fault.fetch_retries);
  EXPECT_EQ(a.fault.tx_suppressed, b.fault.tx_suppressed);
  EXPECT_EQ(a.fault.routing_failures, b.fault.routing_failures);
  // The crash actually happened (the replay is not vacuous).
  EXPECT_EQ(a.fault.injected, 1u);
  EXPECT_GE(a.fault.suspected, 1u);
  EXPECT_GE(a.fault.respawns, 1u);
}

TEST(FaultExperiment, BlackoutOnClientLinkDropsDeliveries) {
  const ExperimentResult plain = expt::run_experiment(base_cfg());

  // Machines are ordered E1=0, E2=1, C=2, clients from 3 up; this
  // blacks out client 0's uplink for 3 s of the 8 s window.
  ExperimentConfig cfg = base_cfg();
  cfg.fault_plan = FaultPlan::parse("blackout@2s+3s:link=3-0").value();
  const ExperimentResult dark = expt::run_experiment(cfg);

  EXPECT_EQ(dark.fault.injected, 1u);
  EXPECT_LT(dark.success_rate, plain.success_rate);
  EXPECT_LT(dark.per_client_fps[0], plain.per_client_fps[0]);
}

TEST(FaultExperiment, BrownoutShrinksThroughput) {
  const ExperimentResult plain = expt::run_experiment(base_cfg());

  // frac=0.05 leaves E1 a single core (the floor), serializing the
  // whole pipeline; milder brownouts can hide inside spare cores.
  ExperimentConfig cfg = base_cfg();
  cfg.fault_plan = FaultPlan::parse("brownout@1s+6s:machine=0,frac=0.05").value();
  const ExperimentResult slow = expt::run_experiment(cfg);

  EXPECT_EQ(slow.fault.injected, 1u);
  EXPECT_LT(slow.fps_mean, plain.fps_mean);
  EXPECT_LT(slow.success_rate, plain.success_rate);
}

}  // namespace
}  // namespace mar
