#!/usr/bin/env python3
"""Fail when curated docs reference repo paths that no longer exist.

The architecture/experiment docs are full of pointers like
`src/net/fragment.cc` or `scripts/verify.sh`; refactors silently
strand them. This lint extracts every path-like token from the curated
doc set and checks it against the working tree.

Only docs that describe THIS repo are linted. ROADMAP/PAPERS/SNIPPETS/
ISSUE/CHANGES quote external repos, papers, and historical states, so
they are exempt by design.

Rules:
  * a token must contain a '/' and end in a known source/doc extension,
    or be a bare top-level *.md/script reference;
  * `{a,b}` brace groups expand (src/net/fragment.{h,cc} checks both);
  * tokens containing '*', '<', '$', or 'N' placeholders are skipped;
  * paths under build/, out/, or starting with http are skipped.

Usage: scripts/docs_lint.py [repo-root]   (exit 1 on stale references)
"""
import itertools
import os
import re
import sys

LINTED_DOCS = [
    "README.md",
    "ARCHITECTURE.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "bench/TRAJECTORY.md",
]

# Things that look like repo paths: dir/file.ext with an optional
# {h,cc}-style brace suffix. Extensions limited to what the repo uses.
PATH_RE = re.compile(
    r"\b[A-Za-z0-9_.\-]+(?:/[A-Za-z0-9_.\-{},]+)+"
    r"\.(?:h|cc|cpp|cmake|md|py|sh|json|txt|yaml)\b"
    r"|\b[A-Za-z0-9_.\-]+/CMakeLists\.txt\b")

SKIP_PREFIXES = ("build/", "out/", "http", "bench/BENCH_")
SKIP_IF_CONTAINS = ("*", "<", "$", "...")


def expand_braces(token):
    """src/net/fragment.{h,cc} -> [src/net/fragment.h, src/net/fragment.cc]."""
    m = re.search(r"\{([^{}]*)\}", token)
    if not m:
        return [token]
    head, tail = token[:m.start()], token[m.end():]
    return list(itertools.chain.from_iterable(
        expand_braces(head + alt + tail) for alt in m.group(1).split(",")))


def candidate_paths(text):
    for raw in PATH_RE.findall(text):
        if any(s in raw for s in SKIP_IF_CONTAINS):
            continue
        for token in expand_braces(raw):
            if token.startswith(SKIP_PREFIXES):
                continue
            # BENCH_*.json are run artifacts, not tracked files.
            if os.path.basename(token).startswith("BENCH_"):
                continue
            yield token


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    stale = []
    checked = 0
    for doc in LINTED_DOCS:
        doc_path = os.path.join(root, doc)
        if not os.path.isfile(doc_path):
            stale.append((doc, 0, doc + " (linted doc itself is missing)"))
            continue
        with open(doc_path) as f:
            for lineno, line in enumerate(f, 1):
                for token in candidate_paths(line):
                    checked += 1
                    # Docs may use include-style paths ("vision/engine.h"),
                    # which are rooted at src/ like the -I flag.
                    if not os.path.exists(os.path.join(root, token)) and \
                       not os.path.exists(os.path.join(root, "src", token)):
                        stale.append((doc, lineno, token))
    if stale:
        print(f"docs_lint: {len(stale)} stale path reference(s):", file=sys.stderr)
        for doc, lineno, token in stale:
            print(f"  {doc}:{lineno}: {token}", file=sys.stderr)
        return 1
    print(f"docs_lint: OK ({checked} path references across {len(LINTED_DOCS)} docs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
