#!/usr/bin/env python3
"""Validate a collapsed-stack ("folded") profile file.

The in-process profiler (src/telemetry/profiler.h) and the
/debug/pprof/profile endpoint emit the flamegraph.pl input format: one
stack per line, semicolon-separated frames root-first, a space, and a
positive sample count:

    sift;sift_pyramid;mar::vision::SiftDetector::detect 17

This checker is what verify.sh runs against a live
/debug/pprof/profile?seconds=1 scrape: it fails on structurally broken
lines (no count, non-numeric count, empty frames) and can require a
substring so the gate proves the profile saw *the pipeline* and not
just, say, the HTTP accept loop.

Usage:
    scripts/flamegraph_check.py PATH [--min-lines N] [--min-samples N]
                                [--require SUBSTR ...]

PATH may be "-" for stdin. Exit status: 0 valid, 1 invalid, 2 usage.
"""
import argparse
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="folded profile file, or - for stdin")
    parser.add_argument("--min-lines", type=int, default=1,
                        help="minimum distinct stacks (default 1)")
    parser.add_argument("--min-samples", type=int, default=1,
                        help="minimum total sample count (default 1)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="SUBSTR",
                        help="substring that must appear in some stack "
                             "(repeatable; each must match)")
    args = parser.parse_args()

    try:
        stream = sys.stdin if args.path == "-" else open(args.path)
    except OSError as err:
        print(f"flamegraph_check: cannot open {args.path}: {err}", file=sys.stderr)
        return 2

    lines = 0
    samples = 0
    unmatched = {substr: True for substr in args.require}
    with stream:
        for lineno, raw in enumerate(stream, 1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue  # comments/blank are fine (provenance headers)
            stack, sep, count_text = line.rpartition(" ")
            if not sep or not stack:
                print(f"flamegraph_check: line {lineno}: no 'stack count' "
                      f"split: {line!r}", file=sys.stderr)
                return 1
            try:
                count = int(count_text)
            except ValueError:
                print(f"flamegraph_check: line {lineno}: sample count "
                      f"{count_text!r} is not an integer", file=sys.stderr)
                return 1
            if count <= 0:
                print(f"flamegraph_check: line {lineno}: non-positive count "
                      f"{count}", file=sys.stderr)
                return 1
            if any(frame == "" for frame in stack.split(";")):
                print(f"flamegraph_check: line {lineno}: empty frame in "
                      f"{stack!r}", file=sys.stderr)
                return 1
            lines += 1
            samples += count
            for substr in args.require:
                if substr in stack:
                    unmatched[substr] = False

    if lines < args.min_lines:
        print(f"flamegraph_check: {lines} stack(s), need >= {args.min_lines}",
              file=sys.stderr)
        return 1
    if samples < args.min_samples:
        print(f"flamegraph_check: {samples} sample(s), need >= "
              f"{args.min_samples}", file=sys.stderr)
        return 1
    missing = [s for s, miss in unmatched.items() if miss]
    if missing:
        print(f"flamegraph_check: no stack contains: {missing}",
              file=sys.stderr)
        return 1
    print(f"flamegraph_check: OK ({lines} stacks, {samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
