#!/usr/bin/env python3
"""Keep the metric reference honest: every registered mar_* series must
be documented, and the docs must not name series that do not exist.

Forward check (hard): every double-quoted "mar_*" literal registered in
src/ must appear somewhere in README.md or ARCHITECTURE.md (the metric
reference tables live there).

Reverse check (hard): every mar_* token the docs mention must resolve
to a registered name. A doc token resolves when it equals a registered
name, extends one (histogram suffixes like mar_frame_e2e_ms_bucket),
or is a prefix of one (prose shorthand like mar_ctrl_* or the brace
form mar_ctrl_{scale_up,...}_total truncates to mar_ctrl_). File-level
exporter names that never touch the registry are allowlisted.

Usage: scripts/metrics_lint.py [--repo .]
Exit status: 0 clean, 1 violations.
"""
import argparse
import os
import re
import sys

SRC_DIRS = ("src", "examples")
DOC_FILES = ("README.md", "ARCHITECTURE.md")

# Written by expt::to_prometheus / expt file reports, not the live
# MetricRegistry; documented but never "registered".
ALLOWLIST = {"mar_fps", "mar_e2e_ms"}

LITERAL = re.compile(r'"(mar_[a-z0-9_]+)"')
DOC_TOKEN = re.compile(r"(mar_[a-z0-9_*{]+)")
CMAKE_TARGET = re.compile(r"add_library\(\s*(mar_[a-z0-9_]+)")


def cmake_targets(repo):
    """Library names (mar_core, mar_dsp, ...) share the mar_ prefix but
    are not metrics; the docs' layer tables mention them freely."""
    targets = set()
    for dirpath, _, files in os.walk(os.path.join(repo, "src")):
        for fname in files:
            if fname != "CMakeLists.txt":
                continue
            with open(os.path.join(dirpath, fname), errors="replace") as f:
                targets.update(CMAKE_TARGET.findall(f.read()))
    return targets


def registered_names(repo):
    names = set()
    for top in SRC_DIRS:
        for dirpath, _, files in os.walk(os.path.join(repo, top)):
            for fname in files:
                if not fname.endswith((".cc", ".h", ".cpp")):
                    continue
                with open(os.path.join(dirpath, fname), errors="replace") as f:
                    names.update(LITERAL.findall(f.read()))
    return names


def doc_tokens(repo):
    tokens = {}  # token -> first "file:line" mention
    for doc in DOC_FILES:
        path = os.path.join(repo, doc)
        if not os.path.isfile(path):
            continue
        with open(path, errors="replace") as f:
            for lineno, line in enumerate(f, 1):
                for tok in DOC_TOKEN.findall(line):
                    # Truncate prose shorthand at the first glob/brace
                    # (mar_ctrl_{scale_up,..} -> mar_ctrl_) and strip
                    # punctuation dangle.
                    tok = re.split(r"[*{]", tok)[0]
                    if tok in ("mar", "mar_"):
                        continue
                    tokens.setdefault(tok, f"{doc}:{lineno}")
    return tokens


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=os.path.join(os.path.dirname(__file__), ".."))
    args = ap.parse_args()
    repo = os.path.abspath(args.repo)

    registered = registered_names(repo)
    if not registered:
        print("metrics_lint: found no registered mar_* names under src/ — "
              "is --repo right?", file=sys.stderr)
        return 1
    docs_text = ""
    for doc in DOC_FILES:
        path = os.path.join(repo, doc)
        if os.path.isfile(path):
            with open(path, errors="replace") as f:
                docs_text += f.read()

    failures = []
    for name in sorted(registered):
        if name not in docs_text:
            failures.append(f"registered metric {name} is documented in neither "
                            f"{' nor '.join(DOC_FILES)}")

    libraries = cmake_targets(repo)
    for tok, where in sorted(doc_tokens(repo).items()):
        if tok in ALLOWLIST or tok in registered or tok in libraries:
            continue
        # Histogram suffix of a registered name, or prose prefix of one.
        if any(tok.startswith(r) or r.startswith(tok) for r in registered):
            continue
        failures.append(f"{where}: doc names unregistered metric {tok}")

    if failures:
        print(f"metrics_lint: {len(failures)} violation(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"metrics_lint: OK ({len(registered)} registered mar_* series, "
          f"all documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
