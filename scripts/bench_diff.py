#!/usr/bin/env python3
"""Compare fresh BENCH_*.json files against the committed baselines.

Every bench run is deterministic (fixed seeds), so day-to-day the fresh
numbers match the baselines exactly; this gate exists for the day a
code change moves a headline metric. A *regression* — worse in the
metric's own direction (lower fps, higher e2e latency, slower MTTR,
lower retention coverage) — beyond the tolerance fails the gate.
Improvements and sub-tolerance drift only print, so intentional wins
just need a baseline refresh, not a fight with the gate.

Usage:
    scripts/bench_diff.py [--baselines bench/baselines] [--fresh build/bench]
                          [--tolerance 0.15]

Baselines are committed under bench/baselines/ (an exception to the
BENCH_*.json gitignore rule). Refresh one by copying the fresh file
over it and committing the diff alongside the change that moved it.

Exit status: 0 clean, 1 regression(s), 2 usage/missing-files.
"""
import argparse
import json
import os
import re
import sys

# Headline metrics per bench: (path-regex, direction). Paths are dotted,
# with list elements keyed by their "name"/"clients" field when present
# (e.g. "systems.scAtteR.runs.clients=2.fps"). Only scalars matched here
# are gated; everything else in the JSON is informational.
HEADLINES = {
    "fig2_baseline_edge": [
        (r"placements\..*\.runs\..*\.fps$", "higher"),
        (r"placements\..*\.runs\..*\.e2e_ms$", "lower"),
        (r"placements\..*\.runs\..*\.success_rate$", "higher"),
    ],
    "fig5_utilization": [
        (r"systems\..*\.runs\..*\.fps$", "higher"),
        (r"systems\..*\.runs\..*\.e2e_ms$", "lower"),
    ],
    "fault_recovery": [
        (r"systems\..*\.baseline_fps$", "higher"),
        (r"systems\..*\.mttr_s$", "lower"),
        (r"systems\..*\.frames_lost$", "lower"),
        (r"gates_failed$", "zero"),
    ],
    "tail_forensics": [
        (r"stale_coverage$", "higher"),
        (r"slo_coverage$", "higher"),
        (r"retained_frac$", "lower"),
        (r"fps_mean$", "higher"),
        (r"gates_failed$", "zero"),
    ],
    # Live UDP transport duel. Success rates are deterministic (seeded
    # tx-loss harness); mean_e2e_ms is wall-clock and deliberately not
    # gated.
    "lossy_link": [
        (r"runs\..*\.success_rate$", "higher"),
        (r"runs\..*\.delivered$", "higher"),
        (r"gates_failed$", "zero"),
    ],
    # The committed events_per_sec baseline is deliberately set well
    # below the measured rate (sandbagged ~2x): wall-clock throughput
    # varies with host load, so the gate catches engine-level
    # regressions, not scheduler jitter. Plan densities and digests are
    # deterministic and locked exactly (within tolerance 0).
    "capacity": [
        (r"events_per_sec_sequential$", "higher"),
        (r"plans\..*\.machines_per_100k$", "lower"),
        (r"plans\..*\.fps_at_plan$", "higher"),
        (r"plans\..*\.success_at_plan$", "higher"),
        (r"gates_failed$", "zero"),
        (r"lookahead_violations$", "zero"),
    ],
    # Profiling plane. attributed_fraction is sandbagged in the
    # baseline (the bench's own hard gate is 0.70; measured runs sit
    # near 1.0) so the 15% tolerance floor stays below the gate.
    # overhead_pct and samples are wall-clock/scheduler-dependent and
    # deliberately not gated here — the bench gates overhead itself.
    "profile": [
        (r"attributed_fraction$", "higher"),
        (r"sift_alloc_dominance$", "higher"),
        (r"gates_failed$", "zero"),
    ],
    # Latency attribution + burn-rate forecasting. The committed
    # decomp_err_pct / gap_pct baselines are sandbagged at the bench's
    # own hard gate (2.0; measured runs sit under 0.05) and
    # predictive_lead_s at 0.5 (measured ~2.25 s) so the 15% relative
    # tolerance never trips on sub-millisecond drift in numbers whose
    # absolute scale is tiny.
    "blame": [
        (r"decomp_err_pct$", "lower"),
        (r"gap_pct$", "lower"),
        (r"blame\.scatterpp_state_fetch_ms$", "zero"),
        (r"forecast\.predictive_lead_s$", "higher"),
        (r"forecast\.flat_actions$", "zero"),
        (r"gates_failed$", "zero"),
    ],
    # Closed-loop control plane vs static placement. The run is a
    # seeded DES, so the p99 improvement and drain-loss numbers are
    # deterministic; drain losses and gate failures are locked at zero.
    "placement": [
        (r"reopt\.peak_p99_ms$", "lower"),
        (r"reopt\.peak_fps$", "higher"),
        (r"p99_improvement_pct$", "higher"),
        (r"reopt\.drain_frames_lost$", "zero"),
        (r"reopt\.forced_retires$", "zero"),
        (r"gates_failed$", "zero"),
    ],
}


def flatten(node, prefix=""):
    """Yield (dotted_path, number) for every numeric scalar in the doc."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        yield prefix, float(node)
    elif isinstance(node, dict):
        for key, val in node.items():
            yield from flatten(val, f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            if isinstance(item, dict):
                tag = item.get("name") or (
                    f"clients={item['clients']}" if "clients" in item else str(i))
            else:
                tag = str(i)
            yield from flatten(item, f"{prefix}.{tag}" if prefix else str(tag))


def bench_key(path):
    """BENCH_fig2_baseline_edge.json -> fig2_baseline_edge."""
    name = os.path.basename(path)
    name = re.sub(r"^BENCH_", "", name)
    return re.sub(r"\.json$", "", name)


def compare(base_path, fresh_path, tolerance):
    key = bench_key(base_path)
    rules = HEADLINES.get(key)
    if rules is None:
        print(f"  {key}: no headline rules registered, skipping")
        return []
    with open(base_path) as f:
        base = dict(flatten(json.load(f)))
    with open(fresh_path) as f:
        fresh = dict(flatten(json.load(f)))

    regressions = []
    checked = 0
    for pattern, direction in rules:
        rx = re.compile(pattern)
        for path, old in base.items():
            if not rx.search(path):
                continue
            if path not in fresh:
                regressions.append(f"{key}: {path} vanished from fresh run")
                continue
            new = fresh[path]
            checked += 1
            if direction == "zero":
                if new != 0:
                    regressions.append(f"{key}: {path} = {new:g} (must be 0)")
                continue
            delta = new - old
            rel = delta / abs(old) if old else (0.0 if delta == 0 else float("inf"))
            worse = rel < -tolerance if direction == "higher" else rel > tolerance
            if worse:
                regressions.append(
                    f"{key}: {path} {old:g} -> {new:g} ({rel:+.1%}, "
                    f"tolerance {tolerance:.0%}, direction {direction})")
            elif abs(rel) > 1e-12:
                print(f"  {key}: {path} {old:g} -> {new:g} ({rel:+.1%}) within tolerance")
    print(f"  {key}: {checked} headline metrics checked")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baselines", default="bench/baselines")
    ap.add_argument("--fresh", default="build/bench")
    ap.add_argument("--tolerance", type=float, default=0.15)
    args = ap.parse_args()

    if not os.path.isdir(args.baselines):
        print(f"bench_diff: baseline dir {args.baselines} missing", file=sys.stderr)
        return 2
    baselines = sorted(
        os.path.join(args.baselines, f)
        for f in os.listdir(args.baselines) if f.endswith(".json"))
    if not baselines:
        print(f"bench_diff: no baselines in {args.baselines}", file=sys.stderr)
        return 2

    regressions = []
    missing = []
    for base_path in baselines:
        fresh_path = os.path.join(args.fresh, os.path.basename(base_path))
        if not os.path.isfile(fresh_path):
            missing.append(fresh_path)
            continue
        regressions.extend(compare(base_path, fresh_path, args.tolerance))

    if missing:
        for path in missing:
            print(f"bench_diff: fresh result {path} missing (bench not run?)",
                  file=sys.stderr)
        return 2
    if regressions:
        print(f"bench_diff: {len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for r in regressions:
            print(f"  REGRESSION {r}", file=sys.stderr)
        return 1
    print("bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
