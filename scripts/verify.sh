#!/usr/bin/env sh
# Convenience verification: tier-1 tests + a traced quickstart run.
#
# Builds (if needed), runs the full ctest suite, then runs the
# quickstart with --trace_out and fails if the trace JSON is missing,
# empty, or malformed. Usage:
#
#   scripts/verify.sh [build-dir]     # default: build
#
# Also available as a build target:  cmake --build build --target verify
set -eu

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc 2>/dev/null || echo 2)"

# Tier-1 gate: the full test suite.
(cd "$BUILD_DIR" && ctest --output-on-failure -j2)

# Traced quickstart: outputs land under out/ (gitignored).
OUT_DIR="$BUILD_DIR/out"
TRACE="$OUT_DIR/quickstart_trace.json"
mkdir -p "$OUT_DIR"
"$BUILD_DIR/examples/quickstart" --trace_out="$TRACE" --out_dir="$OUT_DIR"

# The trace must exist, be non-empty, and parse as Chrome trace JSON
# with at least one event. Prefer python3; fall back to grep checks.
[ -s "$TRACE" ] || { echo "verify: FAIL — $TRACE missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TRACE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert len(events) > 0, "trace has no events"
spans = {e.get("name") for e in events if e.get("ph") == "X"}
for required in ("service", "sidecar_queue", "state_fetch"):
    assert required in spans, f"trace is missing {required} spans"
print(f"verify: trace OK ({len(events)} events, span kinds: {sorted(spans)})")
EOF
else
  grep -q '"traceEvents"' "$TRACE" || { echo "verify: FAIL — not a trace JSON" >&2; exit 1; }
  grep -q '"ph":"X"' "$TRACE" || { echo "verify: FAIL — no complete spans" >&2; exit 1; }
  for required in service sidecar_queue state_fetch; do
    grep -q "\"name\":\"$required\"" "$TRACE" || {
      echo "verify: FAIL — trace missing $required spans" >&2; exit 1; }
  done
  echo "verify: trace OK (grep checks)"
fi

echo "verify: PASSED"
