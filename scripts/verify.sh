#!/usr/bin/env sh
# Convenience verification: tier-1 tests + the fault-recovery and
# tail-forensics gates + the bench-regression diff + a traced
# quickstart run + a live /metrics scrape (exemplar-aware) + a UBSan
# pass over the telemetry/forensics tests.
#
# Builds (if needed), runs the full ctest suite, runs the quickstart
# with --trace_out and fails if the trace JSON is missing, empty, or
# malformed, then re-runs it with --metrics_port=0 and scrapes the
# embedded HTTP server: /healthz must answer "ok" and /metrics must be
# Prometheus-parseable with the per-service histograms and procstat
# gauges present. Usage:
#
#   scripts/verify.sh [build-dir]     # default: build
#
# Also available as a build target:  cmake --build build --target verify
set -eu

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc 2>/dev/null || echo 2)"

# Tier-1 gate: the full test suite.
(cd "$BUILD_DIR" && ctest --output-on-failure -j2)

# Fault-recovery gate: the crash experiment must pass all of its own
# gates (scAtteR++ recovers faster and loses less than scAtteR, and a
# same-seed rerun is bit-identical), recorded in its JSON.
(cd "$BUILD_DIR/bench" && ./fault_recovery)
FAULT_JSON="$BUILD_DIR/bench/BENCH_fault_recovery.json"
grep -q '"gates_failed": 0' "$FAULT_JSON" || {
  echo "verify: FAIL — fault-recovery gates violated (see $FAULT_JSON)" >&2; exit 1; }
echo "verify: fault recovery OK"

# Tail-retention gate: the tail_forensics bench enforces its own
# coverage/budget/exemplar gates (>=95% of stale-dropped and
# SLO-breaching frames retained, <=10% of frames kept, every exemplar
# resolving to a retained trace) and records them in its JSON.
(cd "$BUILD_DIR/bench" && ./tail_forensics)
TAIL_JSON="$BUILD_DIR/bench/BENCH_tail_forensics.json"
grep -q '"gates_failed": 0' "$TAIL_JSON" || {
  echo "verify: FAIL — tail-forensics gates violated (see $TAIL_JSON)" >&2; exit 1; }
echo "verify: tail forensics OK"

# Capacity-planning gate: a balanced smoke config on which the
# aggregate-vs-detailed agreement gate arms. The bench's own gates
# require the parallel digest to equal the sequential digest, the
# fluid tail's served/offered ratio to track the detailed probes
# within 5%, and zero conservative-lookahead violations.
(cd "$BUILD_DIR/bench" && ./capacity_planning --population=3 --machines=2 \
    --detailed_clients=2 --session_mean_s=20 --duration_s=20 --roaming=1.0 \
    --sim_threads=2,4)
CAP_JSON="$BUILD_DIR/bench/BENCH_capacity.json"
grep -q '"gates_failed": 0' "$CAP_JSON" || {
  echo "verify: FAIL — capacity-planning gates violated (see $CAP_JSON)" >&2; exit 1; }
grep -q '"digests_equal": true' "$CAP_JSON" || {
  echo "verify: FAIL — parallel capacity digest != sequential" >&2; exit 1; }
grep -q '"agreement_armed": true' "$CAP_JSON" || {
  echo "verify: FAIL — fluid-vs-detailed agreement gate never armed" >&2; exit 1; }
echo "verify: capacity planning OK"

# Lossy-link gate: the live-transport duel over real UDP sockets. Its
# own gates require FEC+rtx to strictly beat fire-and-forget at 5% and
# 10% per-datagram loss, at least one FEC-only recovery, and the
# mar_net_* recovery counters visible on a live /metrics scrape.
(cd "$BUILD_DIR/bench" && ./lossy_link)
LOSSY_JSON="$BUILD_DIR/bench/BENCH_lossy_link.json"
grep -q '"gates_failed": 0' "$LOSSY_JSON" || {
  echo "verify: FAIL — lossy-link gates violated (see $LOSSY_JSON)" >&2; exit 1; }
echo "verify: lossy link OK"

# Profiling-plane gate: the sampling profiler must attribute >= 70% of
# CPU samples to named pipeline stages on the real vision engine, the
# sift allocation story must dwarf the stateless stages, and the
# mar_profile_* counters must show on a live scrape.
(cd "$BUILD_DIR/bench" && ./profile_attribution)
PROFILE_JSON="$BUILD_DIR/bench/BENCH_profile.json"
grep -q '"gates_failed": 0' "$PROFILE_JSON" || {
  echo "verify: FAIL — profile-attribution gates violated (see $PROFILE_JSON)" >&2; exit 1; }
echo "verify: profile attribution OK"

# Control-plane gate: the closed loop (scale-up under breach, drain-
# based scale-down after the ramp-down, same-seed bit-identical rerun,
# deterministic placement search) must strictly beat the static
# deployment on plateau E2E p99 and lose zero frames on the drain path.
(cd "$BUILD_DIR/bench" && ./placement_reopt)
PLACEMENT_JSON="$BUILD_DIR/bench/BENCH_placement.json"
grep -q '"gates_failed": 0' "$PLACEMENT_JSON" || {
  echo "verify: FAIL — placement/reopt gates violated (see $PLACEMENT_JSON)" >&2; exit 1; }
grep -q '"rerun_identical": true' "$PLACEMENT_JSON" || {
  echo "verify: FAIL — closed-loop rerun not bit-identical" >&2; exit 1; }
echo "verify: placement reopt OK"

# Attribution gate: the critical-path decomposition must agree with
# the experiment's own counters (<=2%), state fetch must own the
# scAtteR tail while the scAtteR++ hand-off stays flat, the predictive
# arm must beat the reactive trigger on a ramp and stay silent on a
# flat workload, and the blame gauges must be live-scrapable.
(cd "$BUILD_DIR/bench" && ./blame_attribution)
BLAME_JSON="$BUILD_DIR/bench/BENCH_blame.json"
grep -q '"gates_failed": 0' "$BLAME_JSON" || {
  echo "verify: FAIL — blame-attribution gates violated (see $BLAME_JSON)" >&2; exit 1; }
grep -q '"rerun_identical": true' "$BLAME_JSON" || {
  echo "verify: FAIL — blame/forecast rerun not bit-identical" >&2; exit 1; }
echo "verify: blame attribution OK"

# Docs lint: path references in the curated docs must resolve against
# the working tree (stale pointers after refactors fail verify).
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/docs_lint.py || {
    echo "verify: FAIL — stale path references in docs" >&2; exit 1; }
else
  echo "verify: SKIP docs_lint (no python3)"
fi

# Metrics lint: every registered mar_* series must be documented in
# the README/ARCHITECTURE metric tables, and the docs must not name
# series that no code registers.
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/metrics_lint.py || {
    echo "verify: FAIL — metric reference out of sync with src/" >&2; exit 1; }
else
  echo "verify: SKIP metrics_lint (no python3)"
fi

# Bench-regression gate: fresh headline numbers vs the committed
# baselines in bench/baselines/ (>15% regression in a metric's own
# direction fails; see bench/TRAJECTORY.md for the refresh policy).
# capacity_planning re-runs at its default full-scale config here so
# the diff compares like against like (the smoke run above overwrote
# BENCH_capacity.json with tiny-config numbers).
(cd "$BUILD_DIR/bench" && ./fig2_baseline_edge && ./fig5_utilization && ./capacity_planning)
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_diff.py --fresh "$BUILD_DIR/bench" || {
    echo "verify: FAIL — bench regression vs bench/baselines" >&2; exit 1; }
else
  echo "verify: SKIP bench_diff (no python3)"
fi

# Traced quickstart: outputs land under out/ (gitignored).
OUT_DIR="$BUILD_DIR/out"
TRACE="$OUT_DIR/quickstart_trace.json"
mkdir -p "$OUT_DIR"
"$BUILD_DIR/examples/quickstart" --trace_out="$TRACE" --out_dir="$OUT_DIR"

# The trace must exist, be non-empty, and parse as Chrome trace JSON
# with at least one event. Prefer python3; fall back to grep checks.
[ -s "$TRACE" ] || { echo "verify: FAIL — $TRACE missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TRACE" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert len(events) > 0, "trace has no events"
spans = {e.get("name") for e in events if e.get("ph") == "X"}
for required in ("service", "sidecar_queue", "state_fetch"):
    assert required in spans, f"trace is missing {required} spans"
print(f"verify: trace OK ({len(events)} events, span kinds: {sorted(spans)})")
EOF
else
  grep -q '"traceEvents"' "$TRACE" || { echo "verify: FAIL — not a trace JSON" >&2; exit 1; }
  grep -q '"ph":"X"' "$TRACE" || { echo "verify: FAIL — no complete spans" >&2; exit 1; }
  for required in service sidecar_queue state_fetch; do
    grep -q "\"name\":\"$required\"" "$TRACE" || {
      echo "verify: FAIL — trace missing $required spans" >&2; exit 1; }
  done
  echo "verify: trace OK (grep checks)"
fi

# Live metrics plane: background the quickstart on an ephemeral port,
# grab the bound port from its stdout, and scrape it while it serves.
METRICS_LOG="$OUT_DIR/quickstart_metrics.log"
"$BUILD_DIR/examples/quickstart" --metrics_port=0 --serve_ms=15000 \
    --out_dir="$OUT_DIR" >"$METRICS_LOG" 2>&1 &
QS_PID=$!
trap 'kill "$QS_PID" 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*metrics plane listening on port \([0-9]*\).*/\1/p' "$METRICS_LOG")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "verify: FAIL — quickstart never announced a metrics port" >&2; exit 1; }

# Scrape only after the retention sim has filled the registry (the
# "serving metrics for ..." line comes after it) — exemplars are part
# of the contract below.
READY=""
for _ in $(seq 1 600); do
  if grep -q "serving metrics for" "$METRICS_LOG"; then READY=1; break; fi
  sleep 0.1
done
[ -n "$READY" ] || { echo "verify: FAIL — quickstart never reached its serve phase" >&2; exit 1; }

fetch() {
  if command -v curl >/dev/null 2>&1; then
    curl -sf "http://127.0.0.1:$PORT$1"
  else
    python3 -c 'import sys, urllib.request
print(urllib.request.urlopen(f"http://127.0.0.1:{sys.argv[1]}{sys.argv[2]}").read().decode(), end="")' "$PORT" "$1"
  fi
}

HEALTH="$(fetch /healthz)" || { echo "verify: FAIL — /healthz unreachable" >&2; exit 1; }
[ "$HEALTH" = "ok" ] || { echo "verify: FAIL — /healthz said '$HEALTH'" >&2; exit 1; }

SCRAPE="$OUT_DIR/metrics_scrape.txt"
fetch /metrics >"$SCRAPE" || { echo "verify: FAIL — /metrics unreachable" >&2; exit 1; }
[ -s "$SCRAPE" ] || { echo "verify: FAIL — /metrics scrape empty" >&2; exit 1; }

if command -v python3 >/dev/null 2>&1; then
  python3 - "$SCRAPE" <<'EOF'
import sys
names = set()
exemplars = 0
with open(sys.argv[1]) as f:
    for line in f:
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        # Histogram bucket lines may carry an OpenMetrics exemplar
        # suffix: name_bucket{le="x"} 7 # {trace_id="42"} 3.5
        if " # {" in line:
            line, _, suffix = line.partition(" # {")
            assert suffix.startswith('trace_id="'), f"bad exemplar: {suffix!r}"
            assert "_bucket" in line.split(" ")[0], \
                f"exemplar outside a bucket line: {line!r}"
            exemplars += 1
        # Every sample line must be "<name>[{labels}] <value>".
        head, _, value = line.rpartition(" ")
        assert head, f"unparseable line: {line!r}"
        float(value)
        names.add(head.split("{")[0])
for required in ("mar_service_ms_bucket", "mar_frame_e2e_ms_bucket",
                 "mar_process_rss_bytes", "mar_process_cpu_percent",
                 "mar_blame_ms"):
    assert required in names, f"/metrics is missing {required}"
assert exemplars >= 1, "no histogram exemplars on /metrics (retention run absent?)"
print(f"verify: /metrics OK ({len(names)} series names, {exemplars} exemplars)")
EOF
else
  for required in mar_service_ms_bucket mar_process_rss_bytes; do
    grep -q "^$required" "$SCRAPE" || {
      echo "verify: FAIL — /metrics missing $required" >&2; exit 1; }
  done
  echo "verify: /metrics OK (grep checks)"
fi

# Live blame plane, same serving quickstart: /debug/blame must return
# the banded JSON built from the retention run's traces, and /statusz
# must carry the rendered blame table.
BLAME_OUT="$OUT_DIR/debug_blame.json"
fetch /debug/blame >"$BLAME_OUT" || {
  echo "verify: FAIL — /debug/blame unreachable" >&2; exit 1; }
grep -q '"bands"' "$BLAME_OUT" || {
  echo "verify: FAIL — /debug/blame payload has no bands" >&2; exit 1; }
if grep -q '"frames_delivered": 0' "$BLAME_OUT"; then
  echo "verify: FAIL — /debug/blame saw no delivered frames" >&2; exit 1
fi
fetch /statusz | grep -q "blame report" || {
  echo "verify: FAIL — /statusz missing the blame table" >&2; exit 1; }
echo "verify: blame plane OK"

# Live pprof plane, scraped from the same serving quickstart: a 1 s
# CPU capture must come back as valid folded stacks that include the
# vision pipeline (a demo-load thread keeps the engine busy during the
# serve window), the heap endpoint must attribute the sift pyramid,
# and cmdline must name the binary. Runs after the /metrics checks —
# the capture blocks the single accept thread for its full duration.
PPROF="$OUT_DIR/pprof_profile.folded"
fetch "/debug/pprof/profile?seconds=1" >"$PPROF" || {
  echo "verify: FAIL — /debug/pprof/profile unreachable" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/flamegraph_check.py "$PPROF" --min-samples 5 --require vision || {
    echo "verify: FAIL — /debug/pprof/profile capture invalid (see $PPROF)" >&2; exit 1; }
else
  [ -s "$PPROF" ] || { echo "verify: FAIL — pprof capture empty" >&2; exit 1; }
fi
HEAP="$OUT_DIR/pprof_heap.folded"
fetch "/debug/pprof/heap" >"$HEAP" || {
  echo "verify: FAIL — /debug/pprof/heap unreachable" >&2; exit 1; }
grep -q "sift_pyramid" "$HEAP" || {
  echo "verify: FAIL — heap profile missing sift_pyramid attribution" >&2; exit 1; }
fetch "/debug/pprof/cmdline" | grep -q "quickstart" || {
  echo "verify: FAIL — /debug/pprof/cmdline does not name the binary" >&2; exit 1; }
echo "verify: pprof plane OK"

kill "$QS_PID" 2>/dev/null || true
wait "$QS_PID" 2>/dev/null || true
trap - EXIT

# UBSan pass: the telemetry/forensics layers are full of enum
# round-trips, packed exemplar words, and reinterpreted trace ids —
# build just their tests with -DMAR_SANITIZE=undefined and run the
# `ubsan`-labeled subset.
UBSAN_DIR="${BUILD_DIR}-ubsan"
cmake -B "$UBSAN_DIR" -S . -DMAR_SANITIZE=undefined
cmake --build "$UBSAN_DIR" -j"$(nproc 2>/dev/null || echo 2)" \
  --target flight_recorder_test forensics_test telemetry_conformance_test
(cd "$UBSAN_DIR" && ctest -L ubsan --output-on-failure) || {
  echo "verify: FAIL — ubsan-labeled tests under MAR_SANITIZE=undefined" >&2; exit 1; }
echo "verify: ubsan OK"

# TSan pass: the partitioned DES runs windows concurrently on the
# thread pool, and the profiler's signal handler + start/stop quiesce
# protocol race against attribution from worker threads. Build just
# those tsan-labeled binaries with -DMAR_SANITIZE=thread and run them
# directly (the full tsan label set is `ctest -L tsan` in a complete
# sanitizer build).
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S . -DMAR_SANITIZE=thread
cmake --build "$TSAN_DIR" -j"$(nproc 2>/dev/null || echo 2)" \
  --target sim_partition_test capacity_test telemetry_profiler_test
(cd "$TSAN_DIR/tests" && ./sim_partition_test && ./capacity_test \
   && ./telemetry_profiler_test) || {
  echo "verify: FAIL — partitioned-engine tests under MAR_SANITIZE=thread" >&2; exit 1; }
echo "verify: tsan OK"

echo "verify: PASSED"
