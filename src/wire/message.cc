#include "wire/message.h"

namespace mar::wire {
namespace {
constexpr std::uint8_t kMagic = 0xA7;
constexpr std::uint8_t kVersion = 2;  // v2 added TraceContext
}  // namespace

std::vector<std::uint8_t> serialize(const FramePacket& pkt) {
  ByteWriter w(FramePacket::kHeaderWireBytes + pkt.hops.size() * FramePacket::kHopWireBytes +
               pkt.payload.size() + 16);
  w.put_u8(kMagic);
  w.put_u8(kVersion);
  w.put_u32(pkt.header.client.value());
  w.put_u64(pkt.header.frame.value());
  w.put_u8(static_cast<std::uint8_t>(pkt.header.stage));
  w.put_u8(static_cast<std::uint8_t>(pkt.header.kind));
  w.put_i64(pkt.header.capture_ts);
  w.put_u32(pkt.header.client_endpoint.value());
  w.put_u32(pkt.header.reply_to.value());
  w.put_u32(pkt.header.sift_instance.value());
  w.put_u32(pkt.header.payload_bytes);
  w.put_u8(pkt.header.carries_state ? 1 : 0);
  w.put_u8(pkt.header.match_ok ? 1 : 0);
  w.put_u32(pkt.header.trace.trace_id);
  w.put_u16(static_cast<std::uint16_t>(pkt.hops.size()));
  for (const HopRecord& h : pkt.hops) {
    w.put_u8(static_cast<std::uint8_t>(h.stage));
    w.put_i64(h.queue_time);
    w.put_i64(h.process_time);
  }
  w.put_u32(static_cast<std::uint32_t>(pkt.payload.size()));
  w.put_bytes(pkt.payload);
  return std::move(w).take();
}

std::optional<FramePacket> parse(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.get_u8() != kMagic || r.get_u8() != kVersion) return std::nullopt;
  FramePacket pkt;
  pkt.header.client = ClientId{r.get_u32()};
  pkt.header.frame = FrameId{r.get_u64()};
  pkt.header.stage = static_cast<Stage>(r.get_u8());
  pkt.header.kind = static_cast<MessageKind>(r.get_u8());
  pkt.header.capture_ts = r.get_i64();
  pkt.header.client_endpoint = EndpointId{r.get_u32()};
  pkt.header.reply_to = EndpointId{r.get_u32()};
  pkt.header.sift_instance = InstanceId{r.get_u32()};
  pkt.header.payload_bytes = r.get_u32();
  pkt.header.carries_state = r.get_u8() != 0;
  pkt.header.match_ok = r.get_u8() != 0;
  pkt.header.trace.trace_id = r.get_u32();
  const std::uint16_t n_hops = r.get_u16();
  pkt.hops.reserve(n_hops);
  for (std::uint16_t i = 0; i < n_hops; ++i) {
    HopRecord h;
    h.stage = static_cast<Stage>(r.get_u8());
    h.queue_time = r.get_i64();
    h.process_time = r.get_i64();
    pkt.hops.push_back(h);
  }
  const std::uint32_t n_payload = r.get_u32();
  if (n_payload > r.remaining()) return std::nullopt;
  pkt.payload = r.get_bytes(n_payload);
  if (!r.ok()) return std::nullopt;
  return pkt;
}

}  // namespace mar::wire
