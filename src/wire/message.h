// Wire format for inter-service datagrams.
//
// Every message travelling between the client and the five pipeline
// services is a FramePacket: a fixed header carrying routing state
// (client id, frame number, current pipeline step, return address --
// exactly the fields the paper lists as intermediary results), a list of
// per-hop telemetry records (the sidecar metrics scAtteR++ attaches to
// the data's state), and an opaque payload.
//
// In the simulator the payload is usually absent and only
// `payload_bytes` (the modeled on-wire size) matters; in live mode the
// payload holds real serialized feature data and `payload_bytes` must
// equal `payload.size()`.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/time.h"
#include "common/types.h"

namespace mar::wire {

// What a datagram means to the receiving service.
enum class MessageKind : std::uint8_t {
  // A frame (or derived feature data) moving down the pipeline.
  kFrameData = 0,
  // matching -> sift: request the stored features for a frame (scAtteR).
  kStateFetchRequest = 1,
  // sift -> matching: stored features (scAtteR).
  kStateFetchResponse = 2,
  // matching -> client: final augmented result.
  kResult = 3,
};

[[nodiscard]] constexpr const char* to_string(MessageKind k) {
  switch (k) {
    case MessageKind::kFrameData:
      return "frame_data";
    case MessageKind::kStateFetchRequest:
      return "state_fetch_req";
    case MessageKind::kStateFetchResponse:
      return "state_fetch_resp";
    case MessageKind::kResult:
      return "result";
  }
  return "?";
}

// In-band trace context. A client that samples a frame for tracing
// stamps a nonzero trace id here; every hop the frame (and any derived
// request/response) takes checks this to decide whether to record
// spans, so one frame's whole distributed timeline shares an id. Like
// the HopRecords, it travels with the data's state. Its 4 bytes are
// accounted inside the modeled kHeaderWireBytes.
struct TraceContext {
  std::uint32_t trace_id = 0;  // 0 = frame is not traced

  [[nodiscard]] constexpr bool active() const { return trace_id != 0; }
};

// One sidecar/service hop record (scAtteR++ telemetry carried in-band).
struct HopRecord {
  Stage stage = Stage::kPrimary;
  SimDuration queue_time = 0;    // time spent in the sidecar queue
  SimDuration process_time = 0;  // service compute time
};

struct FrameHeader {
  ClientId client;
  FrameId frame;
  Stage stage = Stage::kPrimary;  // pipeline step this message targets
  MessageKind kind = MessageKind::kFrameData;
  // Capture timestamp at the client; basis for E2E latency and the
  // scAtteR++ staleness threshold.
  SimTime capture_ts = 0;
  // Return address for the final result.
  EndpointId client_endpoint;
  // Reply address for request/response exchanges (state fetches).
  EndpointId reply_to;
  // Which sift replica holds this frame's state (scAtteR only): fetches
  // are tied to that instance and cannot be load-balanced.
  InstanceId sift_instance;
  // Modeled on-wire size of this message in bytes.
  std::uint32_t payload_bytes = 0;
  // True when the frame carries the SIFT feature state in-band
  // (scAtteR++ statelessness; inflates payload 180 KB -> 480 KB).
  bool carries_state = false;
  // Result messages: whether the object was recognized and posed.
  bool match_ok = false;
  // Distributed-tracing context; propagated to every derived message.
  TraceContext trace;
};

struct FramePacket {
  FrameHeader header;
  std::vector<HopRecord> hops;
  std::vector<std::uint8_t> payload;  // real data in live mode; often empty in sim

  // Total serialized size used for transmission-delay modeling. Falls
  // back to header.payload_bytes when no real payload is attached.
  [[nodiscard]] std::size_t wire_size() const {
    return kHeaderWireBytes + hops.size() * kHopWireBytes +
           (payload.empty() ? header.payload_bytes : payload.size());
  }

  static constexpr std::size_t kHeaderWireBytes = 56;
  static constexpr std::size_t kHopWireBytes = 17;
};

// Serialize/parse for live (UDP) transport. The format is
// little-endian and versioned by a magic byte.
[[nodiscard]] std::vector<std::uint8_t> serialize(const FramePacket& pkt);
[[nodiscard]] std::optional<FramePacket> parse(std::span<const std::uint8_t> bytes);

// Canonical payload sizes (bytes) used by the simulator; see DESIGN.md.
// The 180 KB / 480 KB values are the paper's own numbers for sift output
// without/with in-band state.
namespace sizes {
inline constexpr std::uint32_t kClientFrame = 250 * 1024;    // client -> primary
inline constexpr std::uint32_t kPreprocessed = 180 * 1024;   // primary -> sift
inline constexpr std::uint32_t kSiftOut = 180 * 1024;        // sift -> encoding (scAtteR)
inline constexpr std::uint32_t kSiftOutStateful = 480 * 1024;  // scAtteR++ in-band state
inline constexpr std::uint32_t kFisherVector = 32 * 1024;    // encoding -> lsh
inline constexpr std::uint32_t kNnCandidates = 16 * 1024;    // lsh -> matching
inline constexpr std::uint32_t kStateFetchReq = 256;         // matching -> sift
inline constexpr std::uint32_t kStateFetchResp = 300 * 1024;  // sift -> matching
inline constexpr std::uint32_t kResult = 20 * 1024;          // matching -> client
}  // namespace sizes

}  // namespace mar::wire
