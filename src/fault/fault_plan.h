// Scripted fault plans.
//
// A FaultPlan is an ordered list of faults to inject at fixed virtual
// times, so a failure experiment is exactly as deterministic as the
// run it perturbs: same seed + same plan => bit-identical event
// trajectory. Plans have a small text grammar so the CLI can take
// them on the command line (and experiments can embed them):
//
//   entry    := kind '@' time ['+' duration] [':' key '=' value {',' ...}]
//   plan     := entry {';' entry}           (newlines also separate)
//   time     := float ('ms' | 's' | 'us')
//
// Kinds and their keys:
//   crash     — kill one replica.           stage=<name>, replica=<ordinal>
//   reboot    — machine down, then cold boot. machine=<index>   (+duration)
//   blackout  — link drops everything.       link=<a>-<b>       (+duration)
//   degrade   — add loss/latency to a link.  link=<a>-<b>, loss=<p>, latency=<time>
//   lossburst — loss only, latency intact.   link=<a>-<b>, loss=<p>
//   brownout  — shrink a machine's CPU pool. machine=<index>, frac=<0..1>
//
// Example: "crash@10s:stage=sift,replica=0; degrade@5s+2s:link=0-1,loss=0.05"
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "common/types.h"

namespace mar::fault {

enum class FaultKind : std::uint8_t {
  kInstanceCrash,
  kMachineReboot,
  kLinkBlackout,
  kLinkDegrade,
  kLinkLossBurst,
  kBrownout,
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kInstanceCrash;
  // Injection time, relative to when the injector is armed (for
  // experiments: the start of the measurement window).
  SimDuration at = 0;
  // Fault window; faults without a natural window (crash) ignore it.
  SimDuration duration = 0;

  // crash: which replica of which stage (ordinal among that stage's
  // instances, in deployment order).
  Stage stage = Stage::kSift;
  std::uint32_t replica = 0;

  // reboot / brownout: the machine; link faults: both ends.
  std::uint32_t machine_a = 0;
  std::uint32_t machine_b = 0;

  // degrade / lossburst: extra per-datagram loss probability and added
  // one-way latency (degrade only).
  double loss_rate = 0.0;
  SimDuration extra_latency = 0;

  // brownout: fraction of CPU capacity that survives, (0, 1].
  double capacity_fraction = 1.0;
};

struct FaultPlan {
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }

  // Parse the text grammar above. Unknown kinds/keys and malformed
  // times are errors (kInvalidArgument) naming the offending entry.
  [[nodiscard]] static Result<FaultPlan> parse(std::string_view text);

  // Round-trip back to the grammar (stable, for logging/JSON).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace mar::fault
