#include "fault/fault_plan.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace mar::fault {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

bool parse_double(std::string_view s, double& out) {
  const std::string tmp(s);
  char* end = nullptr;
  out = std::strtod(tmp.c_str(), &end);
  return end != tmp.c_str() && *end == '\0';
}

// "<float>(us|ms|s)" -> SimDuration.
bool parse_time(std::string_view s, SimDuration& out) {
  s = trim(s);
  double scale = 0.0;
  if (s.size() > 2 && s.substr(s.size() - 2) == "us") {
    scale = static_cast<double>(kMicrosecond);
    s.remove_suffix(2);
  } else if (s.size() > 2 && s.substr(s.size() - 2) == "ms") {
    scale = static_cast<double>(kMillisecond);
    s.remove_suffix(2);
  } else if (s.size() > 1 && s.back() == 's') {
    scale = static_cast<double>(kSecond);
    s.remove_suffix(1);
  } else {
    return false;
  }
  double v = 0.0;
  if (!parse_double(s, v)) return false;
  out = static_cast<SimDuration>(v * scale);
  return true;
}

bool parse_kind(std::string_view s, FaultKind& out) {
  if (s == "crash") out = FaultKind::kInstanceCrash;
  else if (s == "reboot") out = FaultKind::kMachineReboot;
  else if (s == "blackout") out = FaultKind::kLinkBlackout;
  else if (s == "degrade") out = FaultKind::kLinkDegrade;
  else if (s == "lossburst") out = FaultKind::kLinkLossBurst;
  else if (s == "brownout") out = FaultKind::kBrownout;
  else return false;
  return true;
}

bool parse_stage(std::string_view s, Stage& out) {
  for (int i = 0; i <= static_cast<int>(Stage::kResult); ++i) {
    const auto stage = static_cast<Stage>(i);
    if (s == to_string(stage)) {
      out = stage;
      return true;
    }
  }
  return false;
}

Status bad(std::string_view entry, const std::string& why) {
  return Status{StatusCode::kInvalidArgument,
                "fault plan entry '" + std::string(entry) + "': " + why};
}

std::string time_str(SimDuration d) {
  std::ostringstream os;
  if (d % kSecond == 0) {
    os << d / kSecond << "s";
  } else {
    os << to_millis(d) << "ms";
  }
  return os.str();
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kInstanceCrash:
      return "crash";
    case FaultKind::kMachineReboot:
      return "reboot";
    case FaultKind::kLinkBlackout:
      return "blackout";
    case FaultKind::kLinkDegrade:
      return "degrade";
    case FaultKind::kLinkLossBurst:
      return "lossburst";
    case FaultKind::kBrownout:
      return "brownout";
  }
  return "?";
}

Result<FaultPlan> FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find_first_of(";\n", pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view entry = trim(text.substr(pos, end - pos));
    pos = end + 1;
    if (entry.empty()) {
      if (end == text.size()) break;
      continue;
    }

    FaultSpec spec;
    const std::size_t at_pos = entry.find('@');
    if (at_pos == std::string_view::npos) return bad(entry, "missing '@<time>'");
    if (!parse_kind(trim(entry.substr(0, at_pos)), spec.kind)) {
      return bad(entry, "unknown fault kind");
    }

    std::string_view rest = entry.substr(at_pos + 1);
    std::string_view timing = rest;
    std::string_view argstr;
    const std::size_t colon = rest.find(':');
    if (colon != std::string_view::npos) {
      timing = rest.substr(0, colon);
      argstr = rest.substr(colon + 1);
    }
    const std::size_t plus = timing.find('+');
    if (plus != std::string_view::npos) {
      if (!parse_time(timing.substr(plus + 1), spec.duration)) {
        return bad(entry, "malformed duration");
      }
      timing = timing.substr(0, plus);
    }
    if (!parse_time(timing, spec.at)) return bad(entry, "malformed time");

    // key=value args, comma-separated.
    std::size_t apos = 0;
    while (apos < argstr.size()) {
      std::size_t aend = argstr.find(',', apos);
      if (aend == std::string_view::npos) aend = argstr.size();
      const std::string_view kv = trim(argstr.substr(apos, aend - apos));
      apos = aend + 1;
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) return bad(entry, "argument without '='");
      const std::string_view key = trim(kv.substr(0, eq));
      const std::string_view val = trim(kv.substr(eq + 1));
      double num = 0.0;
      if (key == "stage") {
        if (!parse_stage(val, spec.stage)) return bad(entry, "unknown stage");
      } else if (key == "replica") {
        if (!parse_double(val, num)) return bad(entry, "malformed replica");
        spec.replica = static_cast<std::uint32_t>(num);
      } else if (key == "machine") {
        if (!parse_double(val, num)) return bad(entry, "malformed machine");
        spec.machine_a = static_cast<std::uint32_t>(num);
      } else if (key == "link") {
        const std::size_t dash = val.find('-');
        double a = 0.0;
        double b = 0.0;
        if (dash == std::string_view::npos || !parse_double(val.substr(0, dash), a) ||
            !parse_double(val.substr(dash + 1), b)) {
          return bad(entry, "malformed link (want a-b)");
        }
        spec.machine_a = static_cast<std::uint32_t>(a);
        spec.machine_b = static_cast<std::uint32_t>(b);
      } else if (key == "loss") {
        if (!parse_double(val, spec.loss_rate)) return bad(entry, "malformed loss");
      } else if (key == "latency") {
        if (!parse_time(val, spec.extra_latency)) return bad(entry, "malformed latency");
      } else if (key == "frac") {
        if (!parse_double(val, spec.capacity_fraction)) return bad(entry, "malformed frac");
      } else {
        return bad(entry, "unknown key '" + std::string(key) + "'");
      }
    }
    plan.faults.push_back(spec);
    if (end == text.size()) break;
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const FaultSpec& f : faults) {
    if (!first) os << "; ";
    first = false;
    os << fault::to_string(f.kind) << "@" << time_str(f.at);
    if (f.duration > 0) os << "+" << time_str(f.duration);
    switch (f.kind) {
      case FaultKind::kInstanceCrash:
        os << ":stage=" << mar::to_string(f.stage) << ",replica=" << f.replica;
        break;
      case FaultKind::kMachineReboot:
        os << ":machine=" << f.machine_a;
        break;
      case FaultKind::kLinkBlackout:
        os << ":link=" << f.machine_a << "-" << f.machine_b;
        break;
      case FaultKind::kLinkDegrade:
        os << ":link=" << f.machine_a << "-" << f.machine_b << ",loss=" << f.loss_rate
           << ",latency=" << time_str(f.extra_latency);
        break;
      case FaultKind::kLinkLossBurst:
        os << ":link=" << f.machine_a << "-" << f.machine_b << ",loss=" << f.loss_rate;
        break;
      case FaultKind::kBrownout:
        os << ":machine=" << f.machine_a << ",frac=" << f.capacity_fraction;
        break;
    }
  }
  return os.str();
}

}  // namespace mar::fault
