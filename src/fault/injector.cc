#include "fault/injector.h"

#include <algorithm>
#include <string>

#include "hw/machine.h"
#include "sim/network.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mar::fault {
namespace {

telemetry::Gauge& active_gauge() {
  return telemetry::MetricRegistry::instance().gauge(
      "mar_fault_active", "windowed faults currently in effect");
}

void count_injected(FaultKind kind) {
  telemetry::MetricRegistry::instance()
      .counter("mar_fault_injected_total", "faults injected, by kind",
               {{"kind", std::string(to_string(kind))}})
      .inc();
}

}  // namespace

void FaultInjector::arm(const FaultPlan& plan) {
  for (const FaultSpec& spec : plan.faults) {
    rt_.schedule_after(spec.at, [this, spec, alive = alive_] {
      if (*alive) inject(spec);
    });
  }
}

void FaultInjector::window_opened(const FaultSpec& spec) {
  ++active_;
  active_gauge().add(1.0);
  auto& tracer = telemetry::Tracer::instance();
  if (tracer.enabled()) {
    tracer.complete(telemetry::kFaultTrack, telemetry::spans::kFault, rt_.now(),
                    spec.duration, ClientId{0}, FrameId{0}, spec.stage,
                    static_cast<double>(spec.kind));
  }
}

void FaultInjector::window_closed() {
  --active_;
  active_gauge().add(-1.0);
}

void FaultInjector::inject(const FaultSpec& spec) {
  ++injected_;
  count_injected(spec.kind);

  switch (spec.kind) {
    case FaultKind::kInstanceCrash: {
      const auto replicas = orch_.instances_of(spec.stage);
      if (spec.replica >= replicas.size()) return;
      orch_.kill_instance(replicas[spec.replica]);
      auto& tracer = telemetry::Tracer::instance();
      if (tracer.enabled()) {
        tracer.instant(telemetry::kFaultTrack, telemetry::spans::kFault, rt_.now(),
                       ClientId{0}, FrameId{0}, spec.stage,
                       static_cast<double>(spec.kind));
      }
      return;
    }

    case FaultKind::kMachineReboot: {
      // reboot_machine owns the whole window (down, then cold boot).
      orch_.reboot_machine(MachineId{spec.machine_a}, spec.duration);
      window_opened(spec);
      rt_.schedule_after(spec.duration, [this, alive = alive_] {
        if (*alive) window_closed();
      });
      return;
    }

    case FaultKind::kLinkBlackout:
    case FaultKind::kLinkDegrade:
    case FaultKind::kLinkLossBurst: {
      const MachineId a{spec.machine_a};
      const MachineId b{spec.machine_b};
      sim::SimNetwork& net = rt_.network();
      sim::LinkModel model = net.base_link(a, b);
      if (spec.kind == FaultKind::kLinkBlackout) {
        model.loss_rate = 1.0;
      } else {
        model.loss_rate = std::min(1.0, model.loss_rate + spec.loss_rate);
        if (spec.kind == FaultKind::kLinkDegrade) model.latency += spec.extra_latency;
      }
      net.set_link_override(a, b, model);
      window_opened(spec);
      rt_.schedule_after(spec.duration, [this, a, b, alive = alive_] {
        if (!*alive) return;
        rt_.network().clear_link_override(a, b);
        window_closed();
      });
      return;
    }

    case FaultKind::kBrownout: {
      hw::ResourcePool& cpu = orch_.machine(MachineId{spec.machine_a}).cpu();
      const std::uint32_t full = cpu.capacity();
      const double frac = std::clamp(spec.capacity_fraction, 0.0, 1.0);
      const auto reduced = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(static_cast<double>(full) * frac));
      cpu.set_capacity(reduced);
      window_opened(spec);
      rt_.schedule_after(spec.duration, [this, spec, full, alive = alive_] {
        if (!*alive) return;
        orch_.machine(MachineId{spec.machine_a}).cpu().set_capacity(full);
        window_closed();
      });
      return;
    }
  }
}

}  // namespace mar::fault
