// FaultInjector: plays a FaultPlan against a running deployment.
//
// Armed once (usually at the start of the measurement window), it
// schedules every fault on the simulation event loop at its scripted
// virtual time. It draws no randomness of its own and perturbs
// nothing until a fault fires, so a run with an empty plan is
// bit-identical to a run without an injector, and two runs with the
// same seed + plan are bit-identical to each other.
//
// Fault semantics:
//   crash     -> Orchestrator::kill_instance (recovery, if any, comes
//                from the watchdog or the heartbeat failover path)
//   reboot    -> Orchestrator::reboot_machine (instances cold-boot per
//                the cost model's reboot_cold_start when it returns)
//   blackout  -> link override with loss_rate = 1.0 for the window
//   degrade   -> link override adding loss and latency for the window
//   lossburst -> link override adding loss only
//   brownout  -> ResourcePool::set_capacity to a fraction of the CPU
//                pool for the window (floor of one core)
//
// Observability: every injected fault bumps
// mar_fault_injected_total{kind=...}; windowed faults raise the
// mar_fault_active gauge for their duration and emit a complete span
// on the fault-plane trace track.
#pragma once

#include <cstdint>
#include <memory>

#include "dsp/runtime.h"
#include "fault/fault_plan.h"
#include "orchestra/orchestrator.h"

namespace mar::fault {

class FaultInjector {
 public:
  FaultInjector(dsp::SimRuntime& rt, orchestra::Orchestrator& orch) : rt_(rt), orch_(orch) {}
  ~FaultInjector() { *alive_ = false; }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedule every fault in `plan` relative to now. May be called once
  // per plan; faults from multiple arm() calls coexist. Windowed
  // faults on the same link/machine must not overlap within a plan
  // (the restore would clobber the other window's baseline).
  void arm(const FaultPlan& plan);

  // Telemetry (mirrors the registry metrics, for direct assertions).
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t active_windows() const { return active_; }

 private:
  void inject(const FaultSpec& spec);
  void window_opened(const FaultSpec& spec);
  void window_closed();

  dsp::SimRuntime& rt_;
  orchestra::Orchestrator& orch_;
  std::uint64_t injected_ = 0;
  std::uint64_t active_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mar::fault
