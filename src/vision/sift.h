// SIFT feature detector and descriptor (Lowe 2004), from scratch.
//
// Pipeline: Gaussian scale-space pyramid -> difference-of-Gaussians ->
// 3x3x3 extrema -> quadratic subpixel refinement with contrast and
// edge-response rejection -> gradient-orientation histogram for the
// dominant angle(s) -> 4x4x8 gradient descriptor with trilinear
// binning, clipped at 0.2 and renormalized.
#pragma once

#include <vector>

#include "vision/image.h"
#include "vision/keypoint.h"

namespace mar::vision {

struct SiftParams {
  int octaves = 4;                 // capped further by image size
  int scales_per_octave = 3;       // s: DoG layers used for extrema
  float base_sigma = 1.6f;
  float contrast_threshold = 0.03f;
  float edge_threshold = 10.0f;    // Hessian ratio limit
  bool upsample_first_octave = false;
  int max_features = 800;          // keep strongest N (0 = unlimited)
};

class SiftDetector {
 public:
  explicit SiftDetector(SiftParams params = {}) : params_(params) {}

  // Detect keypoints and compute descriptors for a grayscale image.
  [[nodiscard]] FeatureList detect(const Image& image) const;

  [[nodiscard]] const SiftParams& params() const { return params_; }

 private:
  SiftParams params_;
};

}  // namespace mar::vision
