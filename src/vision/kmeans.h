// k-means clustering (k-means++ init), used to seed the GMM for Fisher
// encoding and as a standalone vocabulary builder.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace mar::vision {

struct KMeansResult {
  // centers[k]: flattened center vectors, k * dim values.
  std::vector<std::vector<float>> centers;
  std::vector<int> assignment;  // per input point
  double inertia = 0.0;         // sum of squared distances to centers
  int iterations = 0;
};

struct KMeansParams {
  int k = 16;
  int max_iterations = 50;
  double tolerance = 1e-4;  // relative inertia improvement to stop
};

// `points` is row-major: points[i] is one vector; all must share `dim`.
[[nodiscard]] KMeansResult kmeans(const std::vector<std::vector<float>>& points,
                                  const KMeansParams& params, Rng& rng);

}  // namespace mar::vision
