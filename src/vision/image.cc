#include "vision/image.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/parallel.h"

namespace mar::vision {
namespace {

// Rows per parallel chunk for the per-pixel kernels below. The value
// only affects scheduling: each output pixel is computed exactly as in
// the serial code, so results are bit-identical at any pool size.
constexpr std::int64_t kRowGrain = 16;

}  // namespace

float Image::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

float Image::sample(float x, float y) const {
  x = std::clamp(x, 0.0f, static_cast<float>(width_ - 1));
  y = std::clamp(y, 0.0f, static_cast<float>(height_ - 1));
  const int x0 = static_cast<int>(x);
  const int y0 = static_cast<int>(y);
  const int x1 = std::min(x0 + 1, width_ - 1);
  const int y1 = std::min(y0 + 1, height_ - 1);
  const float fx = x - static_cast<float>(x0);
  const float fy = y - static_cast<float>(y0);
  const float top = at(x0, y0) * (1.0f - fx) + at(x1, y0) * fx;
  const float bot = at(x0, y1) * (1.0f - fx) + at(x1, y1) * fx;
  return top * (1.0f - fy) + bot * fy;
}

Image gaussian_blur(const Image& src, float sigma) {
  if (sigma <= 0.0f || src.empty()) return src;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float sum = 0.0f;
  for (int i = -radius; i <= radius; ++i) {
    const float v = std::exp(-static_cast<float>(i * i) / (2.0f * sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = v;
    sum += v;
  }
  for (float& k : kernel) k /= sum;
  const float* kern = kernel.data() + radius;  // kern[i] for i in [-radius, radius]

  const int w = src.width(), h = src.height();
  // Columns [xl, xr) never index outside the row, so the inner loop can
  // use raw loads; only the border columns pay for clamping.
  const int xl = std::min(radius, w);
  const int xr = std::max(xl, w - radius);

  Image tmp(w, h);
  // Horizontal pass, row-parallel. The per-chunk ProfScope annotates
  // whichever pool worker (or the caller) runs the chunk.
  parallel_for(0, h, kRowGrain, [&](std::int64_t y0, std::int64_t y1) {
    telemetry::ProfScope prof("img_blur");
    for (int y = static_cast<int>(y0); y < static_cast<int>(y1); ++y) {
      const float* srow = src.data().data() + static_cast<std::size_t>(y) * w;
      float* trow = tmp.data().data() + static_cast<std::size_t>(y) * w;
      for (int x = 0; x < xl; ++x) {
        float acc = 0.0f;
        for (int i = -radius; i <= radius; ++i) acc += kern[i] * src.at_clamped(x + i, y);
        trow[x] = acc;
      }
      for (int x = xl; x < xr; ++x) {
        float acc = 0.0f;
        for (int i = -radius; i <= radius; ++i) acc += kern[i] * srow[x + i];
        trow[x] = acc;
      }
      for (int x = xr; x < w; ++x) {
        float acc = 0.0f;
        for (int i = -radius; i <= radius; ++i) acc += kern[i] * src.at_clamped(x + i, y);
        trow[x] = acc;
      }
    }
  });

  // Vertical pass, row-parallel. Row clamping is hoisted out of the
  // pixel loop: each tap reads one (possibly replicated) source row.
  Image out(w, h);
  parallel_for(0, h, kRowGrain, [&](std::int64_t y0, std::int64_t y1) {
    telemetry::ProfScope prof("img_blur");
    std::vector<const float*> rows(static_cast<std::size_t>(2 * radius + 1));
    for (int y = static_cast<int>(y0); y < static_cast<int>(y1); ++y) {
      for (int i = -radius; i <= radius; ++i) {
        const int py = std::clamp(y + i, 0, h - 1);
        rows[static_cast<std::size_t>(i + radius)] =
            tmp.data().data() + static_cast<std::size_t>(py) * w;
      }
      float* orow = out.data().data() + static_cast<std::size_t>(y) * w;
      for (int x = 0; x < w; ++x) {
        float acc = 0.0f;
        for (int i = 0; i <= 2 * radius; ++i) {
          acc += kernel[static_cast<std::size_t>(i)] * rows[static_cast<std::size_t>(i)][x];
        }
        orow[x] = acc;
      }
    }
  });
  return out;
}

Image resize(const Image& src, int new_width, int new_height) {
  Image out(new_width, new_height);
  if (src.empty() || new_width <= 0 || new_height <= 0) return out;
  const float sx = static_cast<float>(src.width()) / static_cast<float>(new_width);
  const float sy = static_cast<float>(src.height()) / static_cast<float>(new_height);
  parallel_for(0, new_height, kRowGrain, [&](std::int64_t y0, std::int64_t y1) {
    for (int y = static_cast<int>(y0); y < static_cast<int>(y1); ++y) {
      for (int x = 0; x < new_width; ++x) {
        out.at(x, y) = src.sample((static_cast<float>(x) + 0.5f) * sx - 0.5f,
                                  (static_cast<float>(y) + 0.5f) * sy - 0.5f);
      }
    }
  });
  return out;
}

Image half_size(const Image& src) {
  Image out(std::max(1, src.width() / 2), std::max(1, src.height() / 2));
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      out.at(x, y) = src.at(std::min(2 * x, src.width() - 1), std::min(2 * y, src.height() - 1));
    }
  }
  return out;
}

Image double_size(const Image& src) {
  Image out(src.width() * 2, src.height() * 2);
  parallel_for(0, out.height(), kRowGrain, [&](std::int64_t y0, std::int64_t y1) {
    for (int y = static_cast<int>(y0); y < static_cast<int>(y1); ++y) {
      for (int x = 0; x < out.width(); ++x) {
        out.at(x, y) = src.sample(static_cast<float>(x) / 2.0f, static_cast<float>(y) / 2.0f);
      }
    }
  });
  return out;
}

Image subtract(const Image& a, const Image& b) {
  Image out(a.width(), a.height());
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* po = out.data().data();
  parallel_for(0, static_cast<std::int64_t>(out.size()), 64 * 1024,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) po[i] = pa[i] - pb[i];
               });
  return out;
}

Image from_bytes(const std::uint8_t* data, int width, int height) {
  Image out(width, height);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = static_cast<float>(data[i]) / 255.0f;
  }
  return out;
}

std::vector<std::uint8_t> to_bytes(const Image& img) {
  std::vector<std::uint8_t> out(img.size());
  for (std::size_t i = 0; i < img.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(std::clamp(img.data()[i], 0.0f, 1.0f) * 255.0f + 0.5f);
  }
  return out;
}

bool write_pgm(const Image& img, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "P5\n%d %d\n255\n", img.width(), img.height());
  const auto bytes = to_bytes(img);
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

}  // namespace mar::vision
