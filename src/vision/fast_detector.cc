#include "vision/fast_detector.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace mar::vision {
namespace {

// Bresenham circle of radius 3 (the classic FAST ring).
constexpr int kRing = 16;
constexpr int kRingDx[kRing] = {0, 1, 2, 3, 3, 3, 2, 1, 0, -1, -2, -3, -3, -3, -2, -1};
constexpr int kRingDy[kRing] = {-3, -3, -2, -1, 0, 1, 2, 3, 3, 3, 2, 1, 0, -1, -2, -3};

struct Corner {
  int x;
  int y;
  float score;
};

// True when >= arc contiguous ring pixels are all brighter (sign=+1)
// or all darker (sign=-1) than center +/- threshold.
bool has_arc(const Image& img, int x, int y, float threshold, int arc) {
  const float c = img.at(x, y);
  // Unrolled circular scan over 2*kRing to handle wrap-around.
  int run_bright = 0, run_dark = 0;
  int best_bright = 0, best_dark = 0;
  for (int i = 0; i < 2 * kRing; ++i) {
    const int k = i % kRing;
    const float v = img.at(x + kRingDx[k], y + kRingDy[k]);
    if (v > c + threshold) {
      ++run_bright;
      run_dark = 0;
    } else if (v < c - threshold) {
      ++run_dark;
      run_bright = 0;
    } else {
      run_bright = 0;
      run_dark = 0;
    }
    best_bright = std::max(best_bright, run_bright);
    best_dark = std::max(best_dark, run_dark);
    if (best_bright >= arc || best_dark >= arc) return true;
  }
  return false;
}

float corner_score(const Image& img, int x, int y) {
  const float c = img.at(x, y);
  float score = 0.0f;
  for (int k = 0; k < kRing; ++k) {
    score += std::fabs(img.at(x + kRingDx[k], y + kRingDy[k]) - c);
  }
  return score;
}

// Intensity-centroid orientation (Rosin moments) within `radius`.
float orientation_at(const Image& img, int x, int y, int radius) {
  float m01 = 0.0f, m10 = 0.0f;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy > radius * radius) continue;
      const float v = img.at_clamped(x + dx, y + dy);
      m10 += static_cast<float>(dx) * v;
      m01 += static_cast<float>(dy) * v;
    }
  }
  return std::atan2(m01, m10);
}

// The fixed sampling pattern: kDescriptorDim point pairs inside the
// patch, generated once from a deterministic stream.
struct PairPattern {
  float ax[kDescriptorDim];
  float ay[kDescriptorDim];
  float bx[kDescriptorDim];
  float by[kDescriptorDim];
};

const PairPattern& pattern(int radius) {
  static const PairPattern p = [radius] {
    PairPattern out;
    Rng rng(0xFA57);
    const auto r = static_cast<double>(radius);
    for (int i = 0; i < kDescriptorDim; ++i) {
      // Gaussian-concentrated pairs (BRIEF's G(0, patch/5) pattern).
      auto clamp_r = [r](double v) { return std::clamp(v, -r, r); };
      out.ax[i] = static_cast<float>(clamp_r(rng.gaussian(0.0, r / 3.0)));
      out.ay[i] = static_cast<float>(clamp_r(rng.gaussian(0.0, r / 3.0)));
      out.bx[i] = static_cast<float>(clamp_r(rng.gaussian(0.0, r / 3.0)));
      out.by[i] = static_cast<float>(clamp_r(rng.gaussian(0.0, r / 3.0)));
    }
    return out;
  }();
  return p;
}

Descriptor compute_descriptor(const Image& img, float x, float y, float angle, int radius) {
  const PairPattern& p = pattern(radius);
  const float ca = std::cos(angle);
  const float sa = std::sin(angle);
  Descriptor desc{};
  for (int i = 0; i < kDescriptorDim; ++i) {
    // Rotate the sampling pairs into the keypoint frame.
    const float axr = ca * p.ax[i] - sa * p.ay[i];
    const float ayr = sa * p.ax[i] + ca * p.ay[i];
    const float bxr = ca * p.bx[i] - sa * p.by[i];
    const float byr = sa * p.bx[i] + ca * p.by[i];
    desc[static_cast<std::size_t>(i)] = img.sample(x + axr, y + ayr) - img.sample(x + bxr, y + byr);
  }
  // L2 normalization makes the descriptor compatible with the
  // library's distance-based matcher and Fisher encoding.
  float norm = 0.0f;
  for (float v : desc) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 1e-9f) {
    for (float& v : desc) v /= norm;
  }
  return desc;
}

}  // namespace

FeatureList FastDetector::detect(const Image& image) const {
  FeatureList features;
  if (image.width() < 16 || image.height() < 16) return features;

  // Light smoothing stabilizes both the ring test and the descriptor.
  const Image smoothed = gaussian_blur(image, 1.0f);

  std::vector<Corner> corners;
  const int border = std::max(4, params_.patch_radius);
  for (int y = border; y < smoothed.height() - border; ++y) {
    for (int x = border; x < smoothed.width() - border; ++x) {
      if (!has_arc(smoothed, x, y, params_.threshold, params_.arc_length)) continue;
      corners.push_back(Corner{x, y, corner_score(smoothed, x, y)});
    }
  }

  // Non-maximum suppression on a coarse grid.
  std::sort(corners.begin(), corners.end(),
            [](const Corner& a, const Corner& b) { return a.score > b.score; });
  std::vector<Corner> kept;
  const int r2 = params_.nms_radius * params_.nms_radius;
  for (const Corner& c : corners) {
    bool suppressed = false;
    for (const Corner& k : kept) {
      const int dx = c.x - k.x;
      const int dy = c.y - k.y;
      if (dx * dx + dy * dy <= r2) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) {
      kept.push_back(c);
      if (params_.max_features > 0 &&
          static_cast<int>(kept.size()) >= params_.max_features) {
        break;
      }
    }
  }

  features.reserve(kept.size());
  for (const Corner& c : kept) {
    Feature f;
    f.keypoint.x = static_cast<float>(c.x);
    f.keypoint.y = static_cast<float>(c.y);
    f.keypoint.scale = 1.0f;
    f.keypoint.response = c.score;
    f.keypoint.angle =
        orientation_at(smoothed, c.x, c.y, params_.patch_radius);
    f.descriptor = compute_descriptor(smoothed, f.keypoint.x, f.keypoint.y, f.keypoint.angle,
                                      params_.patch_radius);
    features.push_back(std::move(f));
  }
  return features;
}

}  // namespace mar::vision
