// ArEngine: the complete single-process AR pipeline — the same five
// stages the distributed system deploys as microservices, exposed as a
// clean library API. Examples and the live UDP demo run this for real;
// the simulator charges calibrated costs for the identical stage graph.
//
//   preprocess -> extract (SIFT) -> encode (PCA+Fisher) ->
//   lookup (LSH NN) -> match & pose (+ tracking)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "vision/fast_detector.h"
#include "vision/fisher.h"
#include "vision/gmm.h"
#include "vision/image.h"
#include "vision/lsh.h"
#include "vision/matcher.h"
#include "vision/pca.h"
#include "vision/pose.h"
#include "vision/sift.h"

namespace mar::vision {

// Which feature extractor backs the sift stage: classic SIFT, or the
// fast FAST+BRIEF-style extractor (the paper's §5 "substituting SIFT
// with a faster model" direction).
enum class DetectorKind { kSift, kFast };

struct EngineParams {
  DetectorKind detector = DetectorKind::kSift;
  SiftParams sift;
  FastParams fast;
  int working_width = 480;   // primary downscales frames to this width
  int pca_components = 32;
  GmmParams gmm;             // Fisher codebook
  LshParams lsh;
  MatcherParams matcher;
  RansacParams ransac;
  int nn_candidates = 2;     // reference objects shortlisted per frame
  ObjectTracker::Params tracker;
  std::uint64_t seed = 7;

  EngineParams() {
    gmm.components = 8;
    sift.max_features = 400;
    ransac.min_inliers = 8;
  }
};

struct StageTimings {
  double preprocess_ms = 0.0;
  double extract_ms = 0.0;
  double encode_ms = 0.0;
  double lookup_ms = 0.0;
  double match_ms = 0.0;
  [[nodiscard]] double total_ms() const {
    return preprocess_ms + extract_ms + encode_ms + lookup_ms + match_ms;
  }
};

struct FrameResult {
  std::vector<Detection> detections;
  std::vector<ObjectTracker::Track> tracks;
  std::size_t feature_count = 0;
  StageTimings timings;
};

// Intermediate per-stage artifacts, exposed so the distributed example
// can run each stage in a different process.
struct ExtractedFeatures {
  FeatureList features;
  float scale_x = 1.0f;  // working -> original frame coordinates
  float scale_y = 1.0f;
};

class ArEngine {
 public:
  explicit ArEngine(EngineParams params = {});
  ~ArEngine();

  ArEngine(const ArEngine&) = delete;
  ArEngine& operator=(const ArEngine&) = delete;

  // --- training -------------------------------------------------------
  // Register a reference object; returns its object id. Call
  // finalize_training() once after the last add.
  std::uint32_t add_reference(const std::string& label, const Image& image);
  // Builds PCA, the GMM codebook, per-object Fisher vectors, and the
  // LSH index. Returns false when there is not enough feature data.
  bool finalize_training();
  [[nodiscard]] bool trained() const { return trained_; }
  [[nodiscard]] std::size_t num_references() const { return references_.size(); }

  // --- whole-pipeline processing ---------------------------------------
  [[nodiscard]] FrameResult process(const Image& frame);

  // --- stage-wise API (mirrors the five services) -----------------------
  [[nodiscard]] Image preprocess(const Image& frame) const;
  [[nodiscard]] ExtractedFeatures extract(const Image& preprocessed,
                                          const Image& original_size_hint) const;
  [[nodiscard]] std::vector<float> encode(const FeatureList& features) const;
  [[nodiscard]] std::vector<std::uint32_t> lookup(const std::vector<float>& fisher) const;
  [[nodiscard]] std::vector<Detection> match_and_pose(
      const ExtractedFeatures& features, const std::vector<std::uint32_t>& candidates);

  [[nodiscard]] const EngineParams& params() const { return params_; }
  [[nodiscard]] ObjectTracker& tracker() { return tracker_; }

 private:
  struct Reference {
    std::uint32_t id;
    std::string label;
    FeatureList features;
    std::vector<float> fisher;
    float width;
    float height;
  };

  [[nodiscard]] std::vector<std::vector<float>> reduced_descriptors(
      const FeatureList& features) const;
  [[nodiscard]] FeatureList run_detector(const Image& image) const;

  EngineParams params_;
  mutable Rng rng_;
  SiftDetector detector_;
  FastDetector fast_detector_;
  std::vector<Reference> references_;
  Pca pca_;
  Gmm gmm_;
  FisherEncoder fisher_;
  std::unique_ptr<LshIndex> index_;
  ObjectTracker tracker_;
  bool trained_ = false;
};

}  // namespace mar::vision
