// Payload (de)serialization for the live distributed pipeline: feature
// lists, Fisher vectors, NN candidate lists, and detections travel as
// FramePacket payloads between real services.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "vision/keypoint.h"
#include "vision/pose.h"

namespace mar::vision {

[[nodiscard]] std::vector<std::uint8_t> serialize_features(const FeatureList& features);
[[nodiscard]] std::optional<FeatureList> parse_features(std::span<const std::uint8_t> bytes);

[[nodiscard]] std::vector<std::uint8_t> serialize_floats(const std::vector<float>& v);
[[nodiscard]] std::optional<std::vector<float>> parse_floats(
    std::span<const std::uint8_t> bytes);

[[nodiscard]] std::vector<std::uint8_t> serialize_ids(const std::vector<std::uint32_t>& ids);
[[nodiscard]] std::optional<std::vector<std::uint32_t>> parse_ids(
    std::span<const std::uint8_t> bytes);

[[nodiscard]] std::vector<std::uint8_t> serialize_detections(
    const std::vector<Detection>& detections);
[[nodiscard]] std::optional<std::vector<Detection>> parse_detections(
    std::span<const std::uint8_t> bytes);

}  // namespace mar::vision
