// Planar homography estimation: normalized DLT inside a RANSAC loop.
// The matching service estimates the object's pose in the frame from
// feature correspondences against the reference image.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "common/rng.h"

namespace mar::vision {

struct Point2f {
  float x = 0.0f;
  float y = 0.0f;
};

// Row-major 3x3 homography, maps src -> dst in homogeneous coordinates.
struct Homography {
  std::array<double, 9> h{1, 0, 0, 0, 1, 0, 0, 0, 1};

  [[nodiscard]] Point2f apply(const Point2f& p) const;
  [[nodiscard]] static Homography identity() { return {}; }
};

// Exact DLT from >= 4 correspondences (least squares for more), with
// Hartley normalization. Returns nullopt for degenerate configurations.
[[nodiscard]] std::optional<Homography> homography_dlt(const std::vector<Point2f>& src,
                                                       const std::vector<Point2f>& dst);

struct RansacParams {
  int iterations = 200;
  float inlier_threshold = 3.0f;  // reprojection distance in pixels
  int min_inliers = 8;
};

struct RansacResult {
  Homography homography;
  std::vector<int> inliers;  // indices into the correspondence list
};

[[nodiscard]] std::optional<RansacResult> find_homography_ransac(
    const std::vector<Point2f>& src, const std::vector<Point2f>& dst,
    const RansacParams& params, Rng& rng);

}  // namespace mar::vision
