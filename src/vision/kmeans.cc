#include "vision/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mar::vision {
namespace {

double sq_dist(const std::vector<float>& a, const std::vector<float>& b) {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    d2 += d * d;
  }
  return d2;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<float>>& points, const KMeansParams& params,
                    Rng& rng) {
  KMeansResult result;
  if (points.empty() || params.k <= 0) return result;
  const int k = std::min<int>(params.k, static_cast<int>(points.size()));
  const std::size_t n = points.size();

  // k-means++ seeding.
  result.centers.push_back(points[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))]);
  std::vector<double> min_d2(n, std::numeric_limits<double>::max());
  while (static_cast<int>(result.centers.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_d2[i] = std::min(min_d2[i], sq_dist(points[i], result.centers.back()));
      total += min_d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a center; duplicate one.
      result.centers.push_back(points[0]);
      continue;
    }
    double target = rng.next_double() * total;
    std::size_t pick = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= min_d2[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    result.centers.push_back(points[pick]);
  }

  result.assignment.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assign.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double d2 = sq_dist(points[i], result.centers[static_cast<std::size_t>(c)]);
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;

    // Update.
    const std::size_t dim = points[0].size();
    std::vector<std::vector<double>> sums(static_cast<std::size_t>(k),
                                          std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (counts[c] == 0) continue;  // keep the old center for empty clusters
      for (std::size_t d = 0; d < dim; ++d) {
        result.centers[c][d] = static_cast<float>(sums[c][d] / static_cast<double>(counts[c]));
      }
    }

    if (prev_inertia < std::numeric_limits<double>::max() &&
        std::fabs(prev_inertia - inertia) <= params.tolerance * std::max(prev_inertia, 1e-12)) {
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace mar::vision
