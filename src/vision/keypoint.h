// Keypoints and SIFT descriptors.
#pragma once

#include <array>
#include <cmath>
#include <limits>
#include <vector>

namespace mar::vision {

inline constexpr int kDescriptorDim = 128;
using Descriptor = std::array<float, kDescriptorDim>;

struct Keypoint {
  float x = 0.0f;  // image coordinates at base resolution
  float y = 0.0f;
  float scale = 1.0f;      // absolute scale (sigma at base resolution)
  float angle = 0.0f;      // dominant orientation, radians in [0, 2pi)
  float response = 0.0f;   // |DoG| at the extremum
  int octave = 0;
};

struct Feature {
  Keypoint keypoint;
  Descriptor descriptor{};
};

// Squared Euclidean distance with a running-best early exit: once the
// partial sum reaches `limit` the pair can no longer beat the caller's
// current best/second-best, so the scan stops. The returned partial is
// >= limit in that case, which makes every `< limit` comparison come
// out exactly as if the full sum had been computed — accumulation
// order is unchanged, so completed sums are bit-identical to the
// serial full-sum code.
[[nodiscard]] inline float descriptor_distance_sq(
    const Descriptor& a, const Descriptor& b,
    float limit = std::numeric_limits<float>::max()) {
  float d2 = 0.0f;
  for (int i = 0; i < kDescriptorDim; i += 16) {
    for (int j = i; j < i + 16; ++j) {
      const float d = a[j] - b[j];
      d2 += d * d;
    }
    if (d2 >= limit) return d2;
  }
  return d2;
}

// Euclidean distance between two descriptors.
[[nodiscard]] inline float descriptor_distance(const Descriptor& a, const Descriptor& b) {
  return std::sqrt(descriptor_distance_sq(a, b));
}

using FeatureList = std::vector<Feature>;

}  // namespace mar::vision
