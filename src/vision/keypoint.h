// Keypoints and SIFT descriptors.
#pragma once

#include <array>
#include <cmath>
#include <vector>

namespace mar::vision {

inline constexpr int kDescriptorDim = 128;
using Descriptor = std::array<float, kDescriptorDim>;

struct Keypoint {
  float x = 0.0f;  // image coordinates at base resolution
  float y = 0.0f;
  float scale = 1.0f;      // absolute scale (sigma at base resolution)
  float angle = 0.0f;      // dominant orientation, radians in [0, 2pi)
  float response = 0.0f;   // |DoG| at the extremum
  int octave = 0;
};

struct Feature {
  Keypoint keypoint;
  Descriptor descriptor{};
};

// Euclidean distance between two descriptors.
[[nodiscard]] inline float descriptor_distance(const Descriptor& a, const Descriptor& b) {
  float d2 = 0.0f;
  for (int i = 0; i < kDescriptorDim; ++i) {
    const float d = a[i] - b[i];
    d2 += d * d;
  }
  return std::sqrt(d2);
}

using FeatureList = std::vector<Feature>;

}  // namespace mar::vision
