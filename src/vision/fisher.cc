#include "vision/fisher.h"

#include <cmath>

#include "common/parallel.h"
#include "telemetry/profiler.h"

namespace mar::vision {

std::vector<float> FisherEncoder::encode(
    const std::vector<std::vector<float>>& descriptors) const {
  if (gmm_ == nullptr || gmm_->components() == 0) return {};
  const int k = gmm_->components();
  const int d = gmm_->dim();
  const std::size_t fv_dim = static_cast<std::size_t>(2 * k * d);
  std::vector<double> fv(fv_dim, 0.0);
  if (descriptors.empty()) return std::vector<float>(fv.begin(), fv.end());

  const auto& means = gmm_->means();
  const auto& vars = gmm_->variances();
  const auto& weights = gmm_->weights();

  // Descriptors accumulate into per-chunk partial vectors that are
  // reduced in chunk-index order. The chunk grid depends only on the
  // descriptor count and grain — never on the pool size — so the
  // summation order (and thus the float result) is identical whether
  // the chunks ran on 1 thread or N.
  const std::int64_t n_desc = static_cast<std::int64_t>(descriptors.size());
  constexpr std::int64_t kDescGrain = 32;
  const std::int64_t nchunks = ThreadPool::num_chunks(0, n_desc, kDescGrain);
  std::vector<std::vector<double>> partial(static_cast<std::size_t>(nchunks),
                                           std::vector<double>(fv_dim, 0.0));
  parallel_for_chunks(0, n_desc, kDescGrain, [&](std::int64_t chunk, std::int64_t i0,
                                                 std::int64_t i1) {
    telemetry::ProfScope prof("fisher_accum");
    std::vector<double>& acc = partial[static_cast<std::size_t>(chunk)];
    for (std::int64_t i = i0; i < i1; ++i) {
      const auto& x = descriptors[static_cast<std::size_t>(i)];
      const std::vector<double> gamma = gmm_->posteriors(x);
      for (int c = 0; c < k; ++c) {
        const double g = gamma[static_cast<std::size_t>(c)];
        if (g < 1e-8) continue;
        for (int j = 0; j < d; ++j) {
          const double sigma = std::sqrt(vars[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)]);
          const double u = (x[static_cast<std::size_t>(j)] -
                            means[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)]) /
                           sigma;
          acc[static_cast<std::size_t>(c * d + j)] += g * u;                    // d/d mean
          acc[static_cast<std::size_t>(k * d + c * d + j)] += g * (u * u - 1);  // d/d sigma
        }
      }
    }
  });
  for (const std::vector<double>& acc : partial) {
    for (std::size_t i = 0; i < fv_dim; ++i) fv[i] += acc[i];
  }

  // Fisher information normalization.
  const double n = static_cast<double>(descriptors.size());
  for (int c = 0; c < k; ++c) {
    const double wk = weights[static_cast<std::size_t>(c)];
    const double norm_mean = 1.0 / (n * std::sqrt(wk));
    const double norm_sigma = 1.0 / (n * std::sqrt(2.0 * wk));
    for (int j = 0; j < d; ++j) {
      fv[static_cast<std::size_t>(c * d + j)] *= norm_mean;
      fv[static_cast<std::size_t>(k * d + c * d + j)] *= norm_sigma;
    }
  }

  // Improved FV: signed square root, then L2 normalization.
  for (double& v : fv) v = (v >= 0 ? 1.0 : -1.0) * std::sqrt(std::fabs(v));
  double norm = 0.0;
  for (double v : fv) norm += v * v;
  norm = std::sqrt(norm);
  std::vector<float> out(fv.size());
  for (std::size_t i = 0; i < fv.size(); ++i) {
    out[i] = norm > 1e-12 ? static_cast<float>(fv[i] / norm) : 0.0f;
  }
  return out;
}

float cosine_similarity(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0f;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0f;
  return static_cast<float>(dot / std::sqrt(na * nb));
}

}  // namespace mar::vision
