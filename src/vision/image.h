// Grayscale float image container and basic operations.
//
// The AR pipeline's primary service works on single-channel 8-bit or
// float images; everything downstream (SIFT, tracking) is float.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/profiler.h"

namespace mar::vision {

class Image {
 public:
  Image() = default;
  // The frame-path allocation choke point: every frame, pyramid level,
  // and DoG plane passes through here, so the allocation profiler hooks
  // the byte count (one relaxed load when profiling is off).
  Image(int width, int height, float fill = 0.0f)
      : width_(width), height_(height), data_(static_cast<std::size_t>(width * height), fill) {
    telemetry::profile_alloc(data_.size() * sizeof(float));
  }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] float& at(int x, int y) {
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  [[nodiscard]] float at(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  // Clamped access (border replicate).
  [[nodiscard]] float at_clamped(int x, int y) const;
  // Bilinear sample at floating-point coordinates (clamped).
  [[nodiscard]] float sample(float x, float y) const;

  [[nodiscard]] const std::vector<float>& data() const { return data_; }
  [[nodiscard]] std::vector<float>& data() { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> data_;
};

// --- operations --------------------------------------------------------

// Separable Gaussian blur with the given sigma (kernel radius 3*sigma).
[[nodiscard]] Image gaussian_blur(const Image& src, float sigma);

// Bilinear resize to (new_width, new_height).
[[nodiscard]] Image resize(const Image& src, int new_width, int new_height);

// Downsample by 2 (every other pixel).
[[nodiscard]] Image half_size(const Image& src);

// 2x upsample (bilinear), used for SIFT's -1 octave.
[[nodiscard]] Image double_size(const Image& src);

// Per-pixel difference a - b (same dimensions required).
[[nodiscard]] Image subtract(const Image& a, const Image& b);

// Convert 8-bit buffer (row-major, single channel) to float [0,1].
[[nodiscard]] Image from_bytes(const std::uint8_t* data, int width, int height);
[[nodiscard]] std::vector<std::uint8_t> to_bytes(const Image& img);

// Minimal PGM (P5) I/O so examples can dump inspectable frames.
bool write_pgm(const Image& img, const std::string& path);

}  // namespace mar::vision
