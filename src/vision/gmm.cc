#include "vision/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "vision/kmeans.h"

namespace mar::vision {
namespace {
constexpr double kLog2Pi = 1.8378770664093453;
}

bool Gmm::fit(const std::vector<std::vector<float>>& data, const GmmParams& params, Rng& rng) {
  weights_.clear();
  means_.clear();
  variances_.clear();
  log_norms_.clear();
  if (data.empty() || params.components <= 0 ||
      data.size() < static_cast<std::size_t>(params.components)) {
    return false;
  }
  const std::size_t n = data.size();
  const std::size_t dim = data[0].size();
  const auto k = static_cast<std::size_t>(params.components);

  // Init from k-means.
  KMeansParams kmp;
  kmp.k = params.components;
  kmp.max_iterations = 20;
  const KMeansResult km = kmeans(data, kmp, rng);

  weights_.assign(k, 1.0 / static_cast<double>(k));
  means_.assign(k, std::vector<double>(dim, 0.0));
  variances_.assign(k, std::vector<double>(dim, 1.0));
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(km.assignment[i]);
    ++counts[c];
    for (std::size_t d = 0; d < dim; ++d) means_[c][d] += data[i][d];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) {
      for (std::size_t d = 0; d < dim; ++d) means_[c][d] = km.centers[c][d];
      continue;
    }
    for (std::size_t d = 0; d < dim; ++d) means_[c][d] /= static_cast<double>(counts[c]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(km.assignment[i]);
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = data[i][d] - means_[c][d];
      variances_[c][d] += diff * diff;
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    const double denom = std::max<double>(static_cast<double>(counts[c]), 2.0);
    for (std::size_t d = 0; d < dim; ++d) {
      variances_[c][d] = std::max(variances_[c][d] / denom, params.variance_floor);
    }
    weights_[c] = std::max(static_cast<double>(counts[c]) / static_cast<double>(n), 1e-6);
  }

  auto refresh_norms = [this, dim] {
    log_norms_.assign(weights_.size(), 0.0);
    for (std::size_t c = 0; c < weights_.size(); ++c) {
      double sum_log_var = 0.0;
      for (std::size_t d = 0; d < dim; ++d) sum_log_var += std::log(variances_[c][d]);
      log_norms_[c] = -0.5 * (static_cast<double>(dim) * kLog2Pi + sum_log_var);
    }
  };
  refresh_norms();

  // EM.
  std::vector<std::vector<double>> resp(n, std::vector<double>(k, 0.0));
  double prev_ll = -std::numeric_limits<double>::max();
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    // E-step.
    double total_ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double max_log = -std::numeric_limits<double>::max();
      std::vector<double> logs(k);
      for (std::size_t c = 0; c < k; ++c) {
        logs[c] = std::log(weights_[c]) + log_gaussian(static_cast<int>(c), data[i]);
        max_log = std::max(max_log, logs[c]);
      }
      double sum = 0.0;
      for (std::size_t c = 0; c < k; ++c) sum += std::exp(logs[c] - max_log);
      const double log_px = max_log + std::log(sum);
      total_ll += log_px;
      for (std::size_t c = 0; c < k; ++c) resp[i][c] = std::exp(logs[c] - log_px);
    }

    // M-step.
    for (std::size_t c = 0; c < k; ++c) {
      double nk = 0.0;
      std::vector<double> mean(dim, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        nk += resp[i][c];
        for (std::size_t d = 0; d < dim; ++d) mean[d] += resp[i][c] * data[i][d];
      }
      if (nk < 1e-8) continue;  // degenerate component: keep old params
      for (std::size_t d = 0; d < dim; ++d) mean[d] /= nk;
      std::vector<double> var(dim, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t d = 0; d < dim; ++d) {
          const double diff = data[i][d] - mean[d];
          var[d] += resp[i][c] * diff * diff;
        }
      }
      for (std::size_t d = 0; d < dim; ++d) {
        variances_[c][d] = std::max(var[d] / nk, params.variance_floor);
      }
      means_[c] = std::move(mean);
      weights_[c] = nk / static_cast<double>(n);
    }
    // Renormalize weights (numerical drift).
    double wsum = 0.0;
    for (double w : weights_) wsum += w;
    for (double& w : weights_) w /= wsum;
    refresh_norms();

    if (iter > 0 &&
        std::fabs(total_ll - prev_ll) <= params.tolerance * std::fabs(prev_ll)) {
      break;
    }
    prev_ll = total_ll;
  }
  return true;
}

double Gmm::log_gaussian(int k, const std::vector<float>& x) const {
  const auto c = static_cast<std::size_t>(k);
  double quad = 0.0;
  for (std::size_t d = 0; d < means_[c].size(); ++d) {
    const double diff = x[d] - means_[c][d];
    quad += diff * diff / variances_[c][d];
  }
  return log_norms_[c] - 0.5 * quad;
}

std::vector<double> Gmm::posteriors(const std::vector<float>& x) const {
  const std::size_t k = weights_.size();
  std::vector<double> logs(k);
  double max_log = -std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < k; ++c) {
    logs[c] = std::log(weights_[c]) + log_gaussian(static_cast<int>(c), x);
    max_log = std::max(max_log, logs[c]);
  }
  double sum = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    logs[c] = std::exp(logs[c] - max_log);
    sum += logs[c];
  }
  for (double& v : logs) v /= sum;
  return logs;
}

double Gmm::log_likelihood(const std::vector<float>& x) const {
  const std::size_t k = weights_.size();
  double max_log = -std::numeric_limits<double>::max();
  std::vector<double> logs(k);
  for (std::size_t c = 0; c < k; ++c) {
    logs[c] = std::log(weights_[c]) + log_gaussian(static_cast<int>(c), x);
    max_log = std::max(max_log, logs[c]);
  }
  double sum = 0.0;
  for (std::size_t c = 0; c < k; ++c) sum += std::exp(logs[c] - max_log);
  return max_log + std::log(sum);
}

}  // namespace mar::vision
