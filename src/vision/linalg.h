// Small dense linear-algebra helpers shared by PCA and homography
// estimation: symmetric eigen-decomposition via cyclic Jacobi.
#pragma once

#include <vector>

namespace mar::vision {

// Eigen-decomposition of a symmetric n x n matrix `a` (row-major;
// destroyed in place). On return `values[i]` holds the i-th eigenvalue
// (unsorted) and column i of `vectors` the matching eigenvector.
void jacobi_eigen_sym(std::vector<double>& a, int n, std::vector<double>& values,
                      std::vector<double>& vectors);

}  // namespace mar::vision
