#include "vision/lsh.h"

#include <algorithm>

#include "telemetry/profiler.h"
#include "vision/fisher.h"

namespace mar::vision {

LshIndex::LshIndex(int dim, LshParams params, Rng& rng) : dim_(dim), params_(params) {
  const int total = params_.tables * params_.bits_per_table;
  hyperplanes_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    std::vector<float> plane(static_cast<std::size_t>(dim_));
    for (float& v : plane) v = static_cast<float>(rng.next_gaussian());
    hyperplanes_.push_back(std::move(plane));
  }
  buckets_.resize(static_cast<std::size_t>(params_.tables));
}

std::uint64_t LshIndex::hash_in_table(int table, const std::vector<float>& v) const {
  std::uint64_t h = 0;
  for (int b = 0; b < params_.bits_per_table; ++b) {
    const auto& plane = hyperplanes_[static_cast<std::size_t>(table * params_.bits_per_table + b)];
    double dot = 0.0;
    const std::size_t n = std::min(v.size(), plane.size());
    for (std::size_t i = 0; i < n; ++i) dot += static_cast<double>(v[i]) * plane[i];
    h = (h << 1) | (dot >= 0.0 ? 1u : 0u);
  }
  return h;
}

void LshIndex::insert(std::uint32_t id, const std::vector<float>& v) {
  for (int t = 0; t < params_.tables; ++t) {
    buckets_[static_cast<std::size_t>(t)][hash_in_table(t, v)].push_back(id);
  }
  items_[id] = v;
}

std::vector<LshIndex::Candidate> LshIndex::query(const std::vector<float>& v) const {
  std::unordered_map<std::uint32_t, int> counts;
  for (int t = 0; t < params_.tables; ++t) {
    const auto it = buckets_[static_cast<std::size_t>(t)].find(hash_in_table(t, v));
    if (it == buckets_[static_cast<std::size_t>(t)].end()) continue;
    for (std::uint32_t id : it->second) ++counts[id];
  }
  std::vector<Candidate> out;
  out.reserve(counts.size());
  for (const auto& [id, c] : counts) out.push_back(Candidate{id, c});
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.collisions != b.collisions) return a.collisions > b.collisions;
    return a.id < b.id;
  });
  return out;
}

std::vector<std::uint32_t> LshIndex::nearest(const std::vector<float>& v, int k) const {
  telemetry::ProfScope prof("lsh_query");
  std::vector<std::pair<float, std::uint32_t>> scored;
  const auto candidates = query(v);
  if (!candidates.empty()) {
    for (const Candidate& c : candidates) {
      scored.emplace_back(cosine_similarity(items_.at(c.id), v), c.id);
    }
  } else {
    // Degenerate case: no bucket collisions; scan everything.
    for (const auto& [id, item] : items_) {
      scored.emplace_back(cosine_similarity(item, v), id);
    }
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < scored.size() && static_cast<int>(i) < k; ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

}  // namespace mar::vision
