// Diagonal-covariance Gaussian mixture model trained with EM,
// initialized from k-means. The Fisher encoder differentiates the GMM
// log-likelihood with respect to its parameters.
#pragma once

#include <vector>

#include "common/rng.h"

namespace mar::vision {

struct GmmParams {
  int components = 16;
  int max_iterations = 30;
  double tolerance = 1e-4;       // relative log-likelihood improvement
  double variance_floor = 1e-4;  // keeps the model well-conditioned
};

class Gmm {
 public:
  // Fit on row-major data. Returns false when the data is unusable
  // (empty, or fewer points than components).
  bool fit(const std::vector<std::vector<float>>& data, const GmmParams& params, Rng& rng);

  // Posterior responsibilities gamma_k(x) for one point.
  [[nodiscard]] std::vector<double> posteriors(const std::vector<float>& x) const;
  // Log-likelihood of one point under the mixture.
  [[nodiscard]] double log_likelihood(const std::vector<float>& x) const;

  [[nodiscard]] int components() const { return static_cast<int>(weights_.size()); }
  [[nodiscard]] int dim() const { return weights_.empty() ? 0 : static_cast<int>(means_[0].size()); }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }
  [[nodiscard]] const std::vector<std::vector<double>>& means() const { return means_; }
  [[nodiscard]] const std::vector<std::vector<double>>& variances() const { return variances_; }

 private:
  // Per-component log N(x | mean_k, var_k), diagonal covariance.
  [[nodiscard]] double log_gaussian(int k, const std::vector<float>& x) const;

  std::vector<double> weights_;
  std::vector<std::vector<double>> means_;
  std::vector<std::vector<double>> variances_;
  std::vector<double> log_norms_;  // precomputed -0.5*(d*log(2pi)+sum(log var))
};

}  // namespace mar::vision
