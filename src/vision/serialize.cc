#include "vision/serialize.h"

#include "common/bytes.h"

namespace mar::vision {

std::vector<std::uint8_t> serialize_features(const FeatureList& features) {
  ByteWriter w(16 + features.size() * (24 + kDescriptorDim * 4));
  w.put_u32(static_cast<std::uint32_t>(features.size()));
  for (const Feature& f : features) {
    w.put_f32(f.keypoint.x);
    w.put_f32(f.keypoint.y);
    w.put_f32(f.keypoint.scale);
    w.put_f32(f.keypoint.angle);
    w.put_f32(f.keypoint.response);
    w.put_u32(static_cast<std::uint32_t>(f.keypoint.octave));
    for (float d : f.descriptor) w.put_f32(d);
  }
  return std::move(w).take();
}

std::optional<FeatureList> parse_features(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint32_t n = r.get_u32();
  if (!r.ok() || n > 1'000'000) return std::nullopt;
  FeatureList out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Feature f;
    f.keypoint.x = r.get_f32();
    f.keypoint.y = r.get_f32();
    f.keypoint.scale = r.get_f32();
    f.keypoint.angle = r.get_f32();
    f.keypoint.response = r.get_f32();
    f.keypoint.octave = static_cast<int>(r.get_u32());
    for (float& d : f.descriptor) d = r.get_f32();
    if (!r.ok()) return std::nullopt;
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<std::uint8_t> serialize_floats(const std::vector<float>& v) {
  ByteWriter w(4 + v.size() * 4);
  w.put_u32(static_cast<std::uint32_t>(v.size()));
  for (float x : v) w.put_f32(x);
  return std::move(w).take();
}

std::optional<std::vector<float>> parse_floats(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint32_t n = r.get_u32();
  if (!r.ok() || n > 10'000'000) return std::nullopt;
  std::vector<float> out(n);
  for (float& x : out) x = r.get_f32();
  if (!r.ok()) return std::nullopt;
  return out;
}

std::vector<std::uint8_t> serialize_ids(const std::vector<std::uint32_t>& ids) {
  ByteWriter w(4 + ids.size() * 4);
  w.put_u32(static_cast<std::uint32_t>(ids.size()));
  for (std::uint32_t id : ids) w.put_u32(id);
  return std::move(w).take();
}

std::optional<std::vector<std::uint32_t>> parse_ids(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint32_t n = r.get_u32();
  if (!r.ok() || n > 1'000'000) return std::nullopt;
  std::vector<std::uint32_t> out(n);
  for (std::uint32_t& id : out) id = r.get_u32();
  if (!r.ok()) return std::nullopt;
  return out;
}

std::vector<std::uint8_t> serialize_detections(const std::vector<Detection>& detections) {
  ByteWriter w(4 + detections.size() * 128);
  w.put_u32(static_cast<std::uint32_t>(detections.size()));
  for (const Detection& d : detections) {
    w.put_u32(d.object_id);
    w.put_string(d.label);
    for (const Point2f& c : d.corners) {
      w.put_f32(c.x);
      w.put_f32(c.y);
    }
    for (double h : d.pose.h) w.put_f64(h);
    w.put_u32(static_cast<std::uint32_t>(d.inliers));
    w.put_f32(d.score);
  }
  return std::move(w).take();
}

std::optional<std::vector<Detection>> parse_detections(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint32_t n = r.get_u32();
  if (!r.ok() || n > 100'000) return std::nullopt;
  std::vector<Detection> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Detection d;
    d.object_id = r.get_u32();
    d.label = r.get_string();
    for (Point2f& c : d.corners) {
      c.x = r.get_f32();
      c.y = r.get_f32();
    }
    for (double& h : d.pose.h) h = r.get_f64();
    d.inliers = static_cast<int>(r.get_u32());
    d.score = r.get_f32();
    if (!r.ok()) return std::nullopt;
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace mar::vision
