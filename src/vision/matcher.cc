#include "vision/matcher.h"

#include <limits>

namespace mar::vision {

std::vector<Match> match_features(const FeatureList& query, const FeatureList& train,
                                  const MatcherParams& params) {
  std::vector<Match> matches;
  if (train.size() < 2) return matches;
  for (std::size_t qi = 0; qi < query.size(); ++qi) {
    float best = std::numeric_limits<float>::max();
    float second = std::numeric_limits<float>::max();
    int best_ti = -1;
    for (std::size_t ti = 0; ti < train.size(); ++ti) {
      const float d = descriptor_distance(query[qi].descriptor, train[ti].descriptor);
      if (d < best) {
        second = best;
        best = d;
        best_ti = static_cast<int>(ti);
      } else if (d < second) {
        second = d;
      }
    }
    if (best_ti >= 0 && best <= params.max_distance && best < params.ratio * second) {
      matches.push_back(Match{static_cast<int>(qi), best_ti, best});
    }
  }
  return matches;
}

}  // namespace mar::vision
