#include "vision/matcher.h"

#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "telemetry/profiler.h"

namespace mar::vision {

std::vector<Match> match_features(const FeatureList& query, const FeatureList& train,
                                  const MatcherParams& params) {
  std::vector<Match> matches;
  if (train.size() < 2) return matches;

  // All comparisons run in squared-distance space (monotone in the
  // Euclidean distance), so the per-pair sqrt disappears and
  // descriptor_distance_sq can early-exit against the running
  // second-best. One sqrt per accepted match keeps Match::distance
  // Euclidean.
  const float max_d2 = params.max_distance * params.max_distance;
  const float ratio2 = params.ratio * params.ratio;

  // Query descriptors are independent: fill a per-query slot in
  // parallel, then compact in query order so the output matches the
  // serial scan exactly.
  std::vector<Match> slots(query.size(), Match{0, -1, 0.0f});
  parallel_for(0, static_cast<std::int64_t>(query.size()), 32,
               [&](std::int64_t q0, std::int64_t q1) {
                 telemetry::ProfScope prof("match_distance");
                 for (std::int64_t qi = q0; qi < q1; ++qi) {
                   float best = std::numeric_limits<float>::max();
                   float second = std::numeric_limits<float>::max();
                   int best_ti = -1;
                   const Descriptor& qd = query[static_cast<std::size_t>(qi)].descriptor;
                   for (std::size_t ti = 0; ti < train.size(); ++ti) {
                     const float d2 = descriptor_distance_sq(qd, train[ti].descriptor, second);
                     if (d2 < best) {
                       second = best;
                       best = d2;
                       best_ti = static_cast<int>(ti);
                     } else if (d2 < second) {
                       second = d2;
                     }
                   }
                   if (best_ti >= 0 && best <= max_d2 && best < ratio2 * second) {
                     slots[static_cast<std::size_t>(qi)] =
                         Match{static_cast<int>(qi), best_ti, std::sqrt(best)};
                   }
                 }
               });
  for (const Match& m : slots) {
    if (m.train_index >= 0) matches.push_back(m);
  }
  return matches;
}

}  // namespace mar::vision
