// Locality-sensitive hashing with random hyperplanes (sign hashes):
// the lsh service maps Fisher vectors into hash tables to shortlist
// nearest-neighbour reference objects for the matching service.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace mar::vision {

struct LshParams {
  int tables = 8;          // independent hash tables
  int bits_per_table = 12;  // hyperplanes per table
};

class LshIndex {
 public:
  // `dim` is the vector dimensionality (e.g. the Fisher vector size).
  LshIndex(int dim, LshParams params, Rng& rng);

  // Insert a vector under an integer item id.
  void insert(std::uint32_t id, const std::vector<float>& v);

  // Candidate ids whose buckets collide with v in any table, with
  // collision counts (more tables agreeing = stronger candidate),
  // sorted by descending count.
  struct Candidate {
    std::uint32_t id;
    int collisions;
  };
  [[nodiscard]] std::vector<Candidate> query(const std::vector<float>& v) const;

  // Exact top-k by cosine similarity among LSH candidates; falls back
  // to a linear scan when the tables return nothing.
  [[nodiscard]] std::vector<std::uint32_t> nearest(const std::vector<float>& v, int k) const;

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] int dim() const { return dim_; }

 private:
  [[nodiscard]] std::uint64_t hash_in_table(int table, const std::vector<float>& v) const;

  int dim_;
  LshParams params_;
  // hyperplanes_[t * bits + b] is one plane normal of length dim_.
  std::vector<std::vector<float>> hyperplanes_;
  std::vector<std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>> buckets_;
  std::unordered_map<std::uint32_t, std::vector<float>> items_;
};

}  // namespace mar::vision
