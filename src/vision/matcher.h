// Descriptor matching with Lowe's ratio test: the matching service
// correlates frame features with a shortlisted reference object.
#pragma once

#include <vector>

#include "vision/keypoint.h"

namespace mar::vision {

struct Match {
  int query_index = 0;  // index into the query FeatureList
  int train_index = 0;  // index into the reference FeatureList
  float distance = 0.0f;
};

struct MatcherParams {
  float ratio = 0.75f;      // best/second-best distance ratio
  float max_distance = 0.7f;  // absolute distance cutoff
};

// Brute-force nearest + second-nearest with the ratio test.
[[nodiscard]] std::vector<Match> match_features(const FeatureList& query,
                                                const FeatureList& train,
                                                const MatcherParams& params = {});

}  // namespace mar::vision
