// Principal component analysis for descriptor compression (the
// encoding service reduces 128-d SIFT descriptors before Fisher
// encoding, following Perronnin et al. 2010).
//
// Eigen-decomposition of the covariance matrix via cyclic Jacobi
// rotations — exact, dependency-free, and fast enough for the 128x128
// matrices involved.
#pragma once

#include <vector>

namespace mar::vision {

class Pca {
 public:
  // Fit on row-major data (each inner vector is one sample). Keeps the
  // top `components` principal directions.
  void fit(const std::vector<std::vector<float>>& data, int components);

  // Project one vector (must match the training dimension).
  [[nodiscard]] std::vector<float> transform(const std::vector<float>& x) const;
  [[nodiscard]] std::vector<std::vector<float>> transform(
      const std::vector<std::vector<float>>& data) const;

  // Reconstruct from the reduced space back to the original dimension.
  [[nodiscard]] std::vector<float> inverse_transform(const std::vector<float>& z) const;

  [[nodiscard]] bool fitted() const { return !basis_.empty(); }
  [[nodiscard]] int input_dim() const { return static_cast<int>(mean_.size()); }
  [[nodiscard]] int output_dim() const { return static_cast<int>(basis_.size()); }
  // Eigenvalues of the kept components, descending.
  [[nodiscard]] const std::vector<float>& explained_variance() const { return eigenvalues_; }
  // Fraction of total variance captured by the kept components.
  [[nodiscard]] double explained_variance_ratio() const;

 private:
  std::vector<float> mean_;
  std::vector<std::vector<float>> basis_;  // basis_[c] = c-th eigenvector
  std::vector<float> eigenvalues_;
  double total_variance_ = 0.0;
};

}  // namespace mar::vision
