#include "vision/linalg.h"

#include <cmath>

namespace mar::vision {

void jacobi_eigen_sym(std::vector<double>& a, int n, std::vector<double>& values,
                      std::vector<double>& vectors) {
  vectors.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) vectors[static_cast<std::size_t>(i) * n + i] = 1.0;

  auto A = [&a, n](int r, int c) -> double& { return a[static_cast<std::size_t>(r) * n + c]; };
  auto V = [&vectors, n](int r, int c) -> double& {
    return vectors[static_cast<std::size_t>(r) * n + c];
  };

  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += A(p, q) * A(p, q);
    }
    if (off < 1e-18) break;

    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = A(p, q);
        if (std::fabs(apq) < 1e-30) continue;
        const double theta = (A(q, q) - A(p, p)) / (2.0 * apq);
        const double t =
            (theta >= 0 ? 1.0 : -1.0) / (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int i = 0; i < n; ++i) {
          const double aip = A(i, p), aiq = A(i, q);
          A(i, p) = c * aip - s * aiq;
          A(i, q) = s * aip + c * aiq;
        }
        for (int i = 0; i < n; ++i) {
          const double api = A(p, i), aqi = A(q, i);
          A(p, i) = c * api - s * aqi;
          A(q, i) = s * api + c * aqi;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = V(i, p), viq = V(i, q);
          V(i, p) = c * vip - s * viq;
          V(i, q) = s * vip + c * viq;
        }
      }
    }
  }
  values.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) values[static_cast<std::size_t>(i)] = A(i, i);
}

}  // namespace mar::vision
