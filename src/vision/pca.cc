#include "vision/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "vision/linalg.h"

namespace mar::vision {

void Pca::fit(const std::vector<std::vector<float>>& data, int components) {
  mean_.clear();
  basis_.clear();
  eigenvalues_.clear();
  total_variance_ = 0.0;
  if (data.empty()) return;
  const int dim = static_cast<int>(data[0].size());
  components = std::clamp(components, 1, dim);
  const double n = static_cast<double>(data.size());

  mean_.assign(static_cast<std::size_t>(dim), 0.0f);
  for (const auto& row : data) {
    for (int d = 0; d < dim; ++d) mean_[static_cast<std::size_t>(d)] += row[static_cast<std::size_t>(d)];
  }
  for (float& m : mean_) m = static_cast<float>(m / n);

  // Covariance (upper triangle mirrored).
  std::vector<double> cov(static_cast<std::size_t>(dim) * static_cast<std::size_t>(dim), 0.0);
  for (const auto& row : data) {
    for (int i = 0; i < dim; ++i) {
      const double xi = row[static_cast<std::size_t>(i)] - mean_[static_cast<std::size_t>(i)];
      for (int j = i; j < dim; ++j) {
        const double xj = row[static_cast<std::size_t>(j)] - mean_[static_cast<std::size_t>(j)];
        cov[static_cast<std::size_t>(i) * dim + j] += xi * xj;
      }
    }
  }
  const double denom = std::max(n - 1.0, 1.0);
  for (int i = 0; i < dim; ++i) {
    for (int j = i; j < dim; ++j) {
      const double v = cov[static_cast<std::size_t>(i) * dim + j] / denom;
      cov[static_cast<std::size_t>(i) * dim + j] = v;
      cov[static_cast<std::size_t>(j) * dim + i] = v;
    }
  }
  for (int i = 0; i < dim; ++i) total_variance_ += cov[static_cast<std::size_t>(i) * dim + i];

  std::vector<double> values, vecs;
  jacobi_eigen_sym(cov, dim, values, vecs);

  // Sort eigenpairs by descending eigenvalue.
  std::vector<int> order(static_cast<std::size_t>(dim));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&values](int a, int b) { return values[static_cast<std::size_t>(a)] > values[static_cast<std::size_t>(b)]; });

  basis_.reserve(static_cast<std::size_t>(components));
  eigenvalues_.reserve(static_cast<std::size_t>(components));
  for (int c = 0; c < components; ++c) {
    const int col = order[static_cast<std::size_t>(c)];
    std::vector<float> vec(static_cast<std::size_t>(dim));
    for (int r = 0; r < dim; ++r) {
      vec[static_cast<std::size_t>(r)] = static_cast<float>(vecs[static_cast<std::size_t>(r) * dim + col]);
    }
    basis_.push_back(std::move(vec));
    eigenvalues_.push_back(static_cast<float>(std::max(values[static_cast<std::size_t>(col)], 0.0)));
  }
}

std::vector<float> Pca::transform(const std::vector<float>& x) const {
  std::vector<float> out(basis_.size(), 0.0f);
  for (std::size_t c = 0; c < basis_.size(); ++c) {
    double acc = 0.0;
    for (std::size_t d = 0; d < mean_.size(); ++d) {
      acc += static_cast<double>(x[d] - mean_[d]) * basis_[c][d];
    }
    out[c] = static_cast<float>(acc);
  }
  return out;
}

std::vector<std::vector<float>> Pca::transform(
    const std::vector<std::vector<float>>& data) const {
  // Rows project independently; slots are pre-sized so parallel chunks
  // write disjoint entries and the output order is the input order.
  std::vector<std::vector<float>> out(data.size());
  parallel_for(0, static_cast<std::int64_t>(data.size()), 32,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) {
                   out[static_cast<std::size_t>(i)] = transform(data[static_cast<std::size_t>(i)]);
                 }
               });
  return out;
}

std::vector<float> Pca::inverse_transform(const std::vector<float>& z) const {
  std::vector<float> out(mean_.begin(), mean_.end());
  for (std::size_t c = 0; c < basis_.size() && c < z.size(); ++c) {
    for (std::size_t d = 0; d < out.size(); ++d) out[d] += z[c] * basis_[c][d];
  }
  return out;
}

double Pca::explained_variance_ratio() const {
  if (total_variance_ <= 0.0) return 0.0;
  double kept = 0.0;
  for (float v : eigenvalues_) kept += v;
  return kept / total_variance_;
}

}  // namespace mar::vision
