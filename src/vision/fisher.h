// Fisher vector encoding (Perronnin et al., CVPR 2010) over a diagonal
// GMM: the encoding service compresses a frame's set of PCA-reduced
// SIFT descriptors into one fixed-length vector (2 * K * D dims),
// with the standard power- and L2-normalization ("improved FV").
#pragma once

#include <vector>

#include "vision/gmm.h"

namespace mar::vision {

class FisherEncoder {
 public:
  explicit FisherEncoder(const Gmm* gmm = nullptr) : gmm_(gmm) {}

  void set_model(const Gmm* gmm) { gmm_ = gmm; }

  // Encode a set of descriptors into one Fisher vector of size
  // 2 * K * D (gradients w.r.t. means and standard deviations).
  [[nodiscard]] std::vector<float> encode(
      const std::vector<std::vector<float>>& descriptors) const;

  [[nodiscard]] int output_dim() const {
    return gmm_ == nullptr ? 0 : 2 * gmm_->components() * gmm_->dim();
  }

 private:
  const Gmm* gmm_;
};

// Cosine similarity between two encoded vectors (used by retrieval).
[[nodiscard]] float cosine_similarity(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace mar::vision
