#include "vision/pose.h"

#include <cmath>

namespace mar::vision {

std::array<Point2f, 4> project_corners(const Homography& pose, float width, float height) {
  return {pose.apply({0.0f, 0.0f}), pose.apply({width, 0.0f}), pose.apply({width, height}),
          pose.apply({0.0f, height})};
}

const std::vector<ObjectTracker::Track>& ObjectTracker::update(
    const std::vector<Detection>& detections) {
  std::vector<bool> used(detections.size(), false);

  for (Track& track : tracks_) {
    // Find the closest unused detection of the same object.
    int best = -1;
    float best_dist = params_.max_center_jump;
    const Point2f tc = track.detection.center();
    for (std::size_t i = 0; i < detections.size(); ++i) {
      if (used[i] || detections[i].object_id != track.detection.object_id) continue;
      const Point2f dc = detections[i].center();
      const float dist = std::hypot(dc.x - tc.x, dc.y - tc.y);
      if (dist < best_dist) {
        best_dist = dist;
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) {
      used[static_cast<std::size_t>(best)] = true;
      const Detection& d = detections[static_cast<std::size_t>(best)];
      const float a = params_.smoothing;
      for (int c = 0; c < 4; ++c) {
        auto& tc2 = track.detection.corners[static_cast<std::size_t>(c)];
        const auto& dc2 = d.corners[static_cast<std::size_t>(c)];
        tc2.x = a * tc2.x + (1.0f - a) * dc2.x;
        tc2.y = a * tc2.y + (1.0f - a) * dc2.y;
      }
      track.detection.pose = d.pose;
      track.detection.inliers = d.inliers;
      track.detection.score = d.score;
      track.missed = 0;
    } else {
      ++track.missed;
    }
    ++track.age;
  }

  // New tracks for unmatched detections.
  for (std::size_t i = 0; i < detections.size(); ++i) {
    if (used[i]) continue;
    Track t;
    t.track_id = next_track_id_++;
    t.detection = detections[i];
    tracks_.push_back(std::move(t));
  }

  // Expire stale tracks.
  std::erase_if(tracks_, [this](const Track& t) { return t.missed > params_.max_missed; });
  return tracks_;
}

}  // namespace mar::vision
