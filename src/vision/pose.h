// Object pose (planar) and cross-frame tracking.
//
// matching projects the reference object's corners through the
// estimated homography to obtain the frame bounding quad, and the
// tracker smooths/associates detections across frames (the "tracking
// objects across multiple frames" half of the pipeline's job).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "vision/homography.h"

namespace mar::vision {

struct Detection {
  std::uint32_t object_id = 0;
  std::string label;
  std::array<Point2f, 4> corners{};  // projected reference quad, clockwise
  Homography pose;                   // reference -> frame
  int inliers = 0;
  float score = 0.0f;  // inlier ratio

  [[nodiscard]] Point2f center() const {
    Point2f c;
    for (const Point2f& p : corners) {
      c.x += p.x / 4.0f;
      c.y += p.y / 4.0f;
    }
    return c;
  }
};

// Project the rectangle (0,0)-(w,h) through `pose`.
[[nodiscard]] std::array<Point2f, 4> project_corners(const Homography& pose, float width,
                                                     float height);

// Simple IoU-free tracker: detections associate to tracks of the same
// object id by center distance; corners are exponentially smoothed;
// tracks expire after `max_missed` frames without support.
class ObjectTracker {
 public:
  struct Params {
    float smoothing = 0.6f;       // weight of the previous estimate
    float max_center_jump = 120.0f;  // px; larger jumps start a new track
    int max_missed = 10;
  };

  struct Track {
    std::uint64_t track_id = 0;
    Detection detection;
    int age = 0;     // frames since track start
    int missed = 0;  // consecutive frames without a matching detection
  };

  ObjectTracker() : ObjectTracker(Params{}) {}
  explicit ObjectTracker(Params params) : params_(params) {}

  // Feed one frame's detections; returns the updated live tracks.
  const std::vector<Track>& update(const std::vector<Detection>& detections);

  [[nodiscard]] const std::vector<Track>& tracks() const { return tracks_; }
  void reset() { tracks_.clear(); }

 private:
  Params params_;
  std::vector<Track> tracks_;
  std::uint64_t next_track_id_ = 1;
};

}  // namespace mar::vision
