#include "vision/homography.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "vision/linalg.h"

namespace mar::vision {
namespace {

struct Normalization {
  double cx = 0, cy = 0, scale = 1;
};

// Hartley normalization: translate centroid to origin, mean distance
// sqrt(2).
Normalization normalize_points(const std::vector<Point2f>& pts, std::vector<Point2f>& out) {
  Normalization n;
  for (const Point2f& p : pts) {
    n.cx += p.x;
    n.cy += p.y;
  }
  n.cx /= static_cast<double>(pts.size());
  n.cy /= static_cast<double>(pts.size());
  double mean_dist = 0.0;
  for (const Point2f& p : pts) {
    mean_dist += std::sqrt((p.x - n.cx) * (p.x - n.cx) + (p.y - n.cy) * (p.y - n.cy));
  }
  mean_dist /= static_cast<double>(pts.size());
  n.scale = mean_dist > 1e-9 ? std::sqrt(2.0) / mean_dist : 1.0;
  out.resize(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    out[i].x = static_cast<float>((pts[i].x - n.cx) * n.scale);
    out[i].y = static_cast<float>((pts[i].y - n.cy) * n.scale);
  }
  return n;
}

}  // namespace

Point2f Homography::apply(const Point2f& p) const {
  const double w = h[6] * p.x + h[7] * p.y + h[8];
  if (std::fabs(w) < 1e-12) return Point2f{0.0f, 0.0f};
  return Point2f{static_cast<float>((h[0] * p.x + h[1] * p.y + h[2]) / w),
                 static_cast<float>((h[3] * p.x + h[4] * p.y + h[5]) / w)};
}

std::optional<Homography> homography_dlt(const std::vector<Point2f>& src,
                                         const std::vector<Point2f>& dst) {
  if (src.size() < 4 || src.size() != dst.size()) return std::nullopt;

  std::vector<Point2f> ns, nd;
  const Normalization tn_s = normalize_points(src, ns);
  const Normalization tn_d = normalize_points(dst, nd);

  // Build A^T A directly (9x9) from the 2n x 9 DLT system.
  std::vector<double> ata(81, 0.0);
  auto accumulate_row = [&ata](const double row[9]) {
    for (int i = 0; i < 9; ++i) {
      for (int j = 0; j < 9; ++j) ata[static_cast<std::size_t>(i) * 9 + j] += row[i] * row[j];
    }
  };
  for (std::size_t k = 0; k < ns.size(); ++k) {
    const double x = ns[k].x, y = ns[k].y;
    const double u = nd[k].x, v = nd[k].y;
    const double r1[9] = {-x, -y, -1, 0, 0, 0, u * x, u * y, u};
    const double r2[9] = {0, 0, 0, -x, -y, -1, v * x, v * y, v};
    accumulate_row(r1);
    accumulate_row(r2);
  }

  std::vector<double> values, vectors;
  jacobi_eigen_sym(ata, 9, values, vectors);
  int min_idx = 0;
  for (int i = 1; i < 9; ++i) {
    if (values[static_cast<std::size_t>(i)] < values[static_cast<std::size_t>(min_idx)]) {
      min_idx = i;
    }
  }
  std::array<double, 9> hn{};
  for (int i = 0; i < 9; ++i) hn[static_cast<std::size_t>(i)] = vectors[static_cast<std::size_t>(i) * 9 + min_idx];
  if (std::fabs(hn[8]) < 1e-12) {
    // Normalize by the largest element instead.
    double max_abs = 0.0;
    for (double v : hn) max_abs = std::max(max_abs, std::fabs(v));
    if (max_abs < 1e-12) return std::nullopt;
  }

  // Denormalize: H = T_d^-1 * Hn * T_s.
  // T_s maps src -> normalized: [s, 0, -s*cx; 0, s, -s*cy; 0, 0, 1].
  const double ss = tn_s.scale, sd = tn_d.scale;
  const std::array<double, 9> ts = {ss, 0, -ss * tn_s.cx, 0, ss, -ss * tn_s.cy, 0, 0, 1};
  const std::array<double, 9> td_inv = {1.0 / sd, 0, tn_d.cx, 0, 1.0 / sd, tn_d.cy, 0, 0, 1};

  auto matmul = [](const std::array<double, 9>& a, const std::array<double, 9>& b) {
    std::array<double, 9> c{};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        double acc = 0.0;
        for (int k = 0; k < 3; ++k) {
          acc += a[static_cast<std::size_t>(i * 3 + k)] * b[static_cast<std::size_t>(k * 3 + j)];
        }
        c[static_cast<std::size_t>(i * 3 + j)] = acc;
      }
    }
    return c;
  };

  Homography result;
  result.h = matmul(matmul(td_inv, hn), ts);
  if (std::fabs(result.h[8]) > 1e-12) {
    for (double& v : result.h) v /= result.h[8];
  }
  return result;
}

std::optional<RansacResult> find_homography_ransac(const std::vector<Point2f>& src,
                                                   const std::vector<Point2f>& dst,
                                                   const RansacParams& params, Rng& rng) {
  if (src.size() < 4 || src.size() != dst.size()) return std::nullopt;
  const auto n = static_cast<std::int64_t>(src.size());

  std::vector<int> best_inliers;
  for (int iter = 0; iter < params.iterations; ++iter) {
    // Sample 4 distinct indices.
    int idx[4];
    for (int i = 0; i < 4; ++i) {
      bool unique = true;
      do {
        idx[i] = static_cast<int>(rng.uniform_int(0, n - 1));
        unique = true;
        for (int j = 0; j < i; ++j) {
          if (idx[j] == idx[i]) unique = false;
        }
      } while (!unique);
    }
    const std::vector<Point2f> s4 = {src[static_cast<std::size_t>(idx[0])], src[static_cast<std::size_t>(idx[1])],
                                     src[static_cast<std::size_t>(idx[2])], src[static_cast<std::size_t>(idx[3])]};
    const std::vector<Point2f> d4 = {dst[static_cast<std::size_t>(idx[0])], dst[static_cast<std::size_t>(idx[1])],
                                     dst[static_cast<std::size_t>(idx[2])], dst[static_cast<std::size_t>(idx[3])]};
    const auto h = homography_dlt(s4, d4);
    if (!h) continue;

    std::vector<int> inliers;
    for (std::size_t i = 0; i < src.size(); ++i) {
      const Point2f proj = h->apply(src[i]);
      const float dx = proj.x - dst[i].x;
      const float dy = proj.y - dst[i].y;
      if (dx * dx + dy * dy <=
          params.inlier_threshold * params.inlier_threshold) {
        inliers.push_back(static_cast<int>(i));
      }
    }
    if (inliers.size() > best_inliers.size()) best_inliers = std::move(inliers);
  }

  if (static_cast<int>(best_inliers.size()) < params.min_inliers) return std::nullopt;

  // Refit on all inliers.
  std::vector<Point2f> s_in, d_in;
  for (int i : best_inliers) {
    s_in.push_back(src[static_cast<std::size_t>(i)]);
    d_in.push_back(dst[static_cast<std::size_t>(i)]);
  }
  const auto refined = homography_dlt(s_in, d_in);
  if (!refined) return std::nullopt;

  RansacResult result;
  result.homography = *refined;
  result.inliers = std::move(best_inliers);
  return result;
}

}  // namespace mar::vision
