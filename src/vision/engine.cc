#include "vision/engine.h"

#include <algorithm>
#include <chrono>

#include "common/parallel.h"
#include "telemetry/profiler.h"

namespace mar::vision {
namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ArEngine::ArEngine(EngineParams params)
    : params_(params),
      rng_(params.seed),
      detector_(params.sift),
      fast_detector_(params.fast),
      tracker_(params.tracker) {}

FeatureList ArEngine::run_detector(const Image& image) const {
  return params_.detector == DetectorKind::kFast ? fast_detector_.detect(image)
                                                 : detector_.detect(image);
}

ArEngine::~ArEngine() = default;

std::uint32_t ArEngine::add_reference(const std::string& label, const Image& image) {
  Reference ref;
  ref.id = static_cast<std::uint32_t>(references_.size());
  ref.label = label;
  ref.features = run_detector(image);
  ref.width = static_cast<float>(image.width());
  ref.height = static_cast<float>(image.height());
  references_.push_back(std::move(ref));
  trained_ = false;
  return references_.back().id;
}

bool ArEngine::finalize_training() {
  trained_ = false;
  std::vector<std::vector<float>> all_desc;
  for (const Reference& ref : references_) {
    for (const Feature& f : ref.features) {
      all_desc.emplace_back(f.descriptor.begin(), f.descriptor.end());
    }
  }
  if (all_desc.size() < static_cast<std::size_t>(params_.gmm.components) * 4) return false;

  pca_.fit(all_desc, params_.pca_components);
  const auto reduced = pca_.transform(all_desc);
  if (!gmm_.fit(reduced, params_.gmm, rng_)) return false;
  fisher_.set_model(&gmm_);

  index_ = std::make_unique<LshIndex>(fisher_.output_dim(), params_.lsh, rng_);
  for (Reference& ref : references_) {
    ref.fisher = fisher_.encode(reduced_descriptors(ref.features));
    index_->insert(ref.id, ref.fisher);
  }
  trained_ = true;
  return true;
}

std::vector<std::vector<float>> ArEngine::reduced_descriptors(
    const FeatureList& features) const {
  // Per-descriptor PCA projections are independent; pre-sized slots
  // keep the output in feature order regardless of pool size.
  std::vector<std::vector<float>> out(features.size());
  parallel_for(0, static_cast<std::int64_t>(features.size()), 32,
               [&](std::int64_t i0, std::int64_t i1) {
                 for (std::int64_t i = i0; i < i1; ++i) {
                   const Feature& f = features[static_cast<std::size_t>(i)];
                   out[static_cast<std::size_t>(i)] = pca_.transform(
                       std::vector<float>(f.descriptor.begin(), f.descriptor.end()));
                 }
               });
  return out;
}

Image ArEngine::preprocess(const Image& frame) const {
  if (frame.width() <= params_.working_width) return frame;
  const int new_h = frame.height() * params_.working_width / frame.width();
  return resize(frame, params_.working_width, new_h);
}

ExtractedFeatures ArEngine::extract(const Image& preprocessed,
                                    const Image& original_size_hint) const {
  ExtractedFeatures out;
  out.features = run_detector(preprocessed);
  out.scale_x = preprocessed.width() > 0 ? static_cast<float>(original_size_hint.width()) /
                                               static_cast<float>(preprocessed.width())
                                         : 1.0f;
  out.scale_y = preprocessed.height() > 0 ? static_cast<float>(original_size_hint.height()) /
                                                static_cast<float>(preprocessed.height())
                                          : 1.0f;
  return out;
}

std::vector<float> ArEngine::encode(const FeatureList& features) const {
  if (!trained_) return {};
  return fisher_.encode(reduced_descriptors(features));
}

std::vector<std::uint32_t> ArEngine::lookup(const std::vector<float>& fisher) const {
  if (!trained_ || index_ == nullptr || fisher.empty()) return {};
  return index_->nearest(fisher, params_.nn_candidates);
}

std::vector<Detection> ArEngine::match_and_pose(const ExtractedFeatures& features,
                                                const std::vector<std::uint32_t>& candidates) {
  std::vector<Detection> detections;
  for (std::uint32_t id : candidates) {
    if (id >= references_.size()) continue;
    const Reference& ref = references_[id];
    const auto matches = match_features(features.features, ref.features, params_.matcher);
    if (matches.size() < static_cast<std::size_t>(params_.ransac.min_inliers)) continue;

    std::vector<Point2f> src, dst;
    src.reserve(matches.size());
    dst.reserve(matches.size());
    for (const Match& m : matches) {
      const Keypoint& rk = ref.features[static_cast<std::size_t>(m.train_index)].keypoint;
      const Keypoint& qk = features.features[static_cast<std::size_t>(m.query_index)].keypoint;
      src.push_back(Point2f{rk.x, rk.y});
      dst.push_back(Point2f{qk.x * features.scale_x, qk.y * features.scale_y});
    }
    const auto ransac = find_homography_ransac(src, dst, params_.ransac, rng_);
    if (!ransac) continue;

    Detection det;
    det.object_id = ref.id;
    det.label = ref.label;
    det.pose = ransac->homography;
    det.corners = project_corners(ransac->homography, ref.width, ref.height);
    det.inliers = static_cast<int>(ransac->inliers.size());
    det.score = matches.empty()
                    ? 0.0f
                    : static_cast<float>(ransac->inliers.size()) / static_cast<float>(matches.size());
    detections.push_back(std::move(det));
  }
  return detections;
}

FrameResult ArEngine::process(const Image& frame) {
  FrameResult result;
  if (!trained_) return result;

  // Stage scopes mirror the paper's five services; the profiler
  // attributes CPU samples and frame allocations to the innermost
  // scope active on the sampled thread.
  auto t0 = std::chrono::steady_clock::now();
  Image pre;
  {
    telemetry::ProfScope prof("preprocess");
    pre = preprocess(frame);
  }
  result.timings.preprocess_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  ExtractedFeatures features;
  {
    telemetry::ProfScope prof("sift");
    features = extract(pre, frame);
  }
  result.feature_count = features.features.size();
  result.timings.extract_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  std::vector<float> fisher;
  {
    telemetry::ProfScope prof("encoding");
    fisher = encode(features.features);
    telemetry::profile_alloc_as("encoding", fisher.size() * sizeof(float));
  }
  result.timings.encode_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  std::vector<std::uint32_t> candidates;
  {
    telemetry::ProfScope prof("lsh");
    candidates = lookup(fisher);
  }
  result.timings.lookup_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  {
    telemetry::ProfScope prof("matching");
    result.detections = match_and_pose(features, candidates);
    result.tracks = tracker_.update(result.detections);
  }
  result.timings.match_ms = ms_since(t0);
  return result;
}

}  // namespace mar::vision
