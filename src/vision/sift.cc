#include "vision/sift.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "common/parallel.h"
#include "telemetry/profiler.h"

namespace mar::vision {
namespace {

constexpr float kPi = 3.14159265358979323846f;
// Assumed blur of the input image (Lowe 2004).
constexpr float kInputSigma = 0.5f;
constexpr int kOrientationBins = 36;
constexpr int kDescWidth = 4;   // 4x4 spatial cells
constexpr int kDescBins = 8;    // orientation bins per cell
constexpr float kDescMagThreshold = 0.2f;

struct ScaleSpace {
  // gauss[o][i]: i-th Gaussian image of octave o (s+3 per octave).
  std::vector<std::vector<Image>> gauss;
  // dog[o][i] = gauss[o][i+1] - gauss[o][i] (s+2 per octave).
  std::vector<std::vector<Image>> dog;
  float base_scale = 1.0f;  // pixel scale of octave 0 relative to input
};

ScaleSpace build_scale_space(const Image& input, const SiftParams& p) {
  // The pyramid is sift's 1.6->4.8 GB story (Fig. 2/5): every Gaussian
  // and DoG plane allocated below lands in the profiler under this
  // stage via the Image constructor hook.
  telemetry::ProfScope prof("sift_pyramid");
  ScaleSpace ss;
  Image base = input;
  ss.base_scale = 1.0f;
  float start_sigma = kInputSigma;
  if (p.upsample_first_octave) {
    base = double_size(input);
    ss.base_scale = 0.5f;
    start_sigma = kInputSigma * 2.0f;
  }
  // Bring the base image to base_sigma.
  const float diff = std::sqrt(std::max(p.base_sigma * p.base_sigma - start_sigma * start_sigma,
                                        0.01f));
  base = gaussian_blur(base, diff);

  const int s = p.scales_per_octave;
  const float k = std::pow(2.0f, 1.0f / static_cast<float>(s));
  int octaves = p.octaves;
  {
    // Cap octaves so the smallest image stays >= 16 px.
    int max_oct = 1;
    int dim = std::min(base.width(), base.height());
    while (dim / 2 >= 16) {
      dim /= 2;
      ++max_oct;
    }
    octaves = std::min(octaves, max_oct);
  }

  Image current = std::move(base);
  for (int o = 0; o < octaves; ++o) {
    std::vector<Image> gauss;
    gauss.reserve(static_cast<std::size_t>(s + 3));
    gauss.push_back(std::move(current));
    float sigma = p.base_sigma;
    for (int i = 1; i < s + 3; ++i) {
      const float next_sigma = sigma * k;
      // Incremental blur: sigma_inc^2 = next^2 - current^2.
      const float inc = std::sqrt(std::max(next_sigma * next_sigma - sigma * sigma, 1e-6f));
      gauss.push_back(gaussian_blur(gauss.back(), inc));
      sigma = next_sigma;
    }
    std::vector<Image> dog;
    dog.reserve(static_cast<std::size_t>(s + 2));
    for (int i = 0; i < s + 2; ++i) dog.push_back(subtract(gauss[i + 1], gauss[i]));

    if (o + 1 < octaves) current = half_size(gauss[static_cast<std::size_t>(s)]);
    ss.gauss.push_back(std::move(gauss));
    ss.dog.push_back(std::move(dog));
  }
  return ss;
}

// Solve A * x = b for 3x3 A via Cramer's rule; returns false if singular.
bool solve3(const float a[3][3], const float b[3], float x[3]) {
  const float det = a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1]) -
                    a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0]) +
                    a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
  if (std::fabs(det) < 1e-12f) return false;
  const float inv = 1.0f / det;
  x[0] = inv * (b[0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1]) -
                a[0][1] * (b[1] * a[2][2] - a[1][2] * b[2]) +
                a[0][2] * (b[1] * a[2][1] - a[1][1] * b[2]));
  x[1] = inv * (a[0][0] * (b[1] * a[2][2] - a[1][2] * b[2]) -
                b[0] * (a[1][0] * a[2][2] - a[1][2] * a[2][0]) +
                a[0][2] * (a[1][0] * b[2] - b[1] * a[2][0]));
  x[2] = inv * (a[0][0] * (a[1][1] * b[2] - b[1] * a[2][1]) -
                a[0][1] * (a[1][0] * b[2] - b[1] * a[2][0]) +
                b[0] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]));
  return true;
}

// Quadratic refinement of an extremum at (x, y, layer). Returns false
// to reject. On success fills the refined keypoint location/scale.
bool refine_extremum(const std::vector<Image>& dog, int s, float base_sigma, int octave,
                     float base_scale, int x, int y, int layer, const SiftParams& p,
                     Keypoint& out) {
  const int w = dog[0].width();
  const int h = dog[0].height();
  float dx = 0, dy = 0, ds = 0;
  float contrast = 0;
  for (int iter = 0; iter < 5; ++iter) {
    const Image& d0 = dog[static_cast<std::size_t>(layer - 1)];
    const Image& d1 = dog[static_cast<std::size_t>(layer)];
    const Image& d2 = dog[static_cast<std::size_t>(layer + 1)];

    const float gx = 0.5f * (d1.at(x + 1, y) - d1.at(x - 1, y));
    const float gy = 0.5f * (d1.at(x, y + 1) - d1.at(x, y - 1));
    const float gs = 0.5f * (d2.at(x, y) - d0.at(x, y));

    const float dxx = d1.at(x + 1, y) - 2 * d1.at(x, y) + d1.at(x - 1, y);
    const float dyy = d1.at(x, y + 1) - 2 * d1.at(x, y) + d1.at(x, y - 1);
    const float dss = d2.at(x, y) - 2 * d1.at(x, y) + d0.at(x, y);
    const float dxy = 0.25f * (d1.at(x + 1, y + 1) - d1.at(x - 1, y + 1) -
                               d1.at(x + 1, y - 1) + d1.at(x - 1, y - 1));
    const float dxs = 0.25f * (d2.at(x + 1, y) - d2.at(x - 1, y) -
                               d0.at(x + 1, y) + d0.at(x - 1, y));
    const float dys = 0.25f * (d2.at(x, y + 1) - d2.at(x, y - 1) -
                               d0.at(x, y + 1) + d0.at(x, y - 1));

    const float hess[3][3] = {{dxx, dxy, dxs}, {dxy, dyy, dys}, {dxs, dys, dss}};
    const float grad[3] = {gx, gy, gs};
    float offset[3];
    if (!solve3(hess, grad, offset)) return false;
    dx = -offset[0];
    dy = -offset[1];
    ds = -offset[2];

    if (std::fabs(dx) < 0.5f && std::fabs(dy) < 0.5f && std::fabs(ds) < 0.5f) {
      contrast = d1.at(x, y) + 0.5f * (gx * dx + gy * dy + gs * ds);
      // Edge rejection on the 2x2 spatial Hessian.
      const float tr = dxx + dyy;
      const float det = dxx * dyy - dxy * dxy;
      const float r = p.edge_threshold;
      if (det <= 0.0f || tr * tr * r >= (r + 1) * (r + 1) * det) return false;
      if (std::fabs(contrast) < p.contrast_threshold / static_cast<float>(s)) return false;

      const float oct_scale = base_scale * std::pow(2.0f, static_cast<float>(octave));
      out.x = (static_cast<float>(x) + dx) * oct_scale;
      out.y = (static_cast<float>(y) + dy) * oct_scale;
      out.scale = base_sigma *
                  std::pow(2.0f, (static_cast<float>(layer) + ds) / static_cast<float>(s)) *
                  oct_scale;
      out.response = std::fabs(contrast);
      out.octave = octave;
      return true;
    }
    x += static_cast<int>(std::round(dx));
    y += static_cast<int>(std::round(dy));
    layer += static_cast<int>(std::round(ds));
    if (x < 1 || x >= w - 1 || y < 1 || y >= h - 1 || layer < 1 || layer > s) return false;
  }
  return false;
}

// Dominant orientation(s) from a 36-bin gradient histogram.
void compute_orientations(const Image& gauss, float x, float y, float sigma_rel,
                          std::vector<float>& angles) {
  angles.clear();
  float hist[kOrientationBins] = {};
  const int radius = std::max(1, static_cast<int>(std::round(4.5f * sigma_rel)));
  const float weight_sigma = 1.5f * sigma_rel;
  const int cx = static_cast<int>(std::round(x));
  const int cy = static_cast<int>(std::round(y));

  for (int j = -radius; j <= radius; ++j) {
    for (int i = -radius; i <= radius; ++i) {
      const int px = cx + i, py = cy + j;
      if (px < 1 || px >= gauss.width() - 1 || py < 1 || py >= gauss.height() - 1) continue;
      const float gx = gauss.at(px + 1, py) - gauss.at(px - 1, py);
      const float gy = gauss.at(px, py + 1) - gauss.at(px, py - 1);
      const float mag = std::sqrt(gx * gx + gy * gy);
      const float ang = std::atan2(gy, gx);  // [-pi, pi]
      const float w = std::exp(-static_cast<float>(i * i + j * j) /
                               (2.0f * weight_sigma * weight_sigma));
      int bin = static_cast<int>(std::round((ang + kPi) / (2.0f * kPi) * kOrientationBins));
      bin = ((bin % kOrientationBins) + kOrientationBins) % kOrientationBins;
      hist[bin] += w * mag;
    }
  }

  // Smooth the histogram twice with a [1 1 1]/3 box.
  for (int pass = 0; pass < 2; ++pass) {
    float smoothed[kOrientationBins];
    for (int b = 0; b < kOrientationBins; ++b) {
      const int prev = (b + kOrientationBins - 1) % kOrientationBins;
      const int next = (b + 1) % kOrientationBins;
      smoothed[b] = (hist[prev] + hist[b] + hist[next]) / 3.0f;
    }
    std::copy(smoothed, smoothed + kOrientationBins, hist);
  }

  float max_val = 0.0f;
  for (float v : hist) max_val = std::max(max_val, v);
  if (max_val <= 0.0f) return;

  for (int b = 0; b < kOrientationBins; ++b) {
    const int prev = (b + kOrientationBins - 1) % kOrientationBins;
    const int next = (b + 1) % kOrientationBins;
    if (hist[b] >= 0.8f * max_val && hist[b] > hist[prev] && hist[b] > hist[next]) {
      // Parabolic peak interpolation.
      const float denom = hist[prev] - 2.0f * hist[b] + hist[next];
      const float delta = std::fabs(denom) > 1e-9f
                              ? 0.5f * (hist[prev] - hist[next]) / denom
                              : 0.0f;
      float ang = (static_cast<float>(b) + delta) / kOrientationBins * 2.0f * kPi - kPi;
      if (ang < 0.0f) ang += 2.0f * kPi;
      if (ang >= 2.0f * kPi) ang -= 2.0f * kPi;
      angles.push_back(ang);
    }
  }
}

// 4x4x8 gradient descriptor with trilinear interpolation.
Descriptor compute_descriptor(const Image& gauss, float x, float y, float sigma_rel,
                              float angle) {
  Descriptor desc{};
  const float cell = 3.0f * sigma_rel;  // histogram cell width in pixels
  const int radius = static_cast<int>(
      std::round(cell * std::sqrt(2.0f) * (kDescWidth + 1) * 0.5f));
  const float cos_a = std::cos(-angle);
  const float sin_a = std::sin(-angle);
  const float weight_sigma = 0.5f * kDescWidth;

  for (int j = -radius; j <= radius; ++j) {
    for (int i = -radius; i <= radius; ++i) {
      const int px = static_cast<int>(std::round(x)) + i;
      const int py = static_cast<int>(std::round(y)) + j;
      if (px < 1 || px >= gauss.width() - 1 || py < 1 || py >= gauss.height() - 1) continue;

      // Rotate into the keypoint frame and express in cell units.
      const float rx = (cos_a * static_cast<float>(i) - sin_a * static_cast<float>(j)) / cell;
      const float ry = (sin_a * static_cast<float>(i) + cos_a * static_cast<float>(j)) / cell;
      const float cbin_x = rx + kDescWidth / 2.0f - 0.5f;
      const float cbin_y = ry + kDescWidth / 2.0f - 0.5f;
      if (cbin_x <= -1.0f || cbin_x >= kDescWidth || cbin_y <= -1.0f || cbin_y >= kDescWidth) {
        continue;
      }

      const float gx = gauss.at(px + 1, py) - gauss.at(px - 1, py);
      const float gy = gauss.at(px, py + 1) - gauss.at(px, py - 1);
      const float mag = std::sqrt(gx * gx + gy * gy);
      float theta = std::atan2(gy, gx) - angle;
      while (theta < 0.0f) theta += 2.0f * kPi;
      while (theta >= 2.0f * kPi) theta -= 2.0f * kPi;
      const float obin = theta / (2.0f * kPi) * kDescBins;
      const float w = std::exp(-(rx * rx + ry * ry) / (2.0f * weight_sigma * weight_sigma));

      // Trilinear distribution over (cell_x, cell_y, orientation).
      const int x0 = static_cast<int>(std::floor(cbin_x));
      const int y0 = static_cast<int>(std::floor(cbin_y));
      const int o0 = static_cast<int>(std::floor(obin));
      const float fx = cbin_x - static_cast<float>(x0);
      const float fy = cbin_y - static_cast<float>(y0);
      const float fo = obin - static_cast<float>(o0);
      for (int dyy = 0; dyy <= 1; ++dyy) {
        const int yb = y0 + dyy;
        if (yb < 0 || yb >= kDescWidth) continue;
        const float wy = dyy ? fy : 1.0f - fy;
        for (int dxx = 0; dxx <= 1; ++dxx) {
          const int xb = x0 + dxx;
          if (xb < 0 || xb >= kDescWidth) continue;
          const float wx = dxx ? fx : 1.0f - fx;
          for (int doo = 0; doo <= 1; ++doo) {
            const int ob = (o0 + doo) % kDescBins;
            const float wo = doo ? fo : 1.0f - fo;
            desc[static_cast<std::size_t>((yb * kDescWidth + xb) * kDescBins + ob)] +=
                w * mag * wy * wx * wo;
          }
        }
      }
    }
  }

  // Normalize, clip, renormalize (illumination invariance).
  auto normalize = [&desc] {
    float norm = 0.0f;
    for (float v : desc) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 1e-9f) {
      for (float& v : desc) v /= norm;
    }
  };
  normalize();
  for (float& v : desc) v = std::min(v, kDescMagThreshold);
  normalize();
  return desc;
}

}  // namespace

FeatureList SiftDetector::detect(const Image& image) const {
  FeatureList features;
  if (image.empty() || image.width() < 32 || image.height() < 32) return features;

  const ScaleSpace ss = build_scale_space(image, params_);
  const int s = params_.scales_per_octave;
  // Rows per band for the parallel extrema scan. Each band runs the
  // full extremum -> refine -> orientation -> descriptor chain for its
  // rows into a private list; bands are concatenated in row order, so
  // the feature order (and every value) matches the serial y-major
  // scan exactly at any pool size.
  constexpr std::int64_t kBandRows = 8;

  for (std::size_t o = 0; o < ss.dog.size(); ++o) {
    const auto& dog = ss.dog[o];
    const int w = dog[0].width();
    const int h = dog[0].height();
    const float oct_scale =
        ss.base_scale * std::pow(2.0f, static_cast<float>(o));

    for (int layer = 1; layer <= s; ++layer) {
      const Image& d1 = dog[static_cast<std::size_t>(layer)];
      std::vector<FeatureList> bands(
          static_cast<std::size_t>(ThreadPool::num_chunks(1, h - 1, kBandRows)));
      parallel_for_chunks(1, h - 1, kBandRows, [&](std::int64_t band, std::int64_t y0,
                                                   std::int64_t y1) {
        // Per-chunk scope: pool workers have their own (empty) stage
        // stacks, so each band annotates its own thread.
        telemetry::ProfScope prof_band("sift_extrema");
        FeatureList& band_features = bands[static_cast<std::size_t>(band)];
        std::vector<float> angles;
        for (int y = static_cast<int>(y0); y < static_cast<int>(y1); ++y) {
          for (int x = 1; x < w - 1; ++x) {
            const float v = d1.at(x, y);
            if (std::fabs(v) < 0.8f * params_.contrast_threshold / static_cast<float>(s)) {
              continue;
            }
            // 26-neighbour extremum test.
            bool is_max = true, is_min = true;
            for (int dl = -1; dl <= 1 && (is_max || is_min); ++dl) {
              const Image& dn = dog[static_cast<std::size_t>(layer + dl)];
              for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                  if (dl == 0 && dx == 0 && dy == 0) continue;
                  const float nv = dn.at(x + dx, y + dy);
                  if (nv >= v) is_max = false;
                  if (nv <= v) is_min = false;
                }
              }
            }
            if (!is_max && !is_min) continue;

            Keypoint kp;
            if (!refine_extremum(dog, s, params_.base_sigma, static_cast<int>(o), ss.base_scale,
                                 x, y, layer, params_, kp)) {
              continue;
            }

            // Orientation and descriptor use the Gaussian image closest
            // to the keypoint's scale within this octave.
            const float sigma_rel = kp.scale / oct_scale;
            int best_layer = static_cast<int>(std::round(
                std::log2(std::max(sigma_rel / params_.base_sigma, 1e-6f)) *
                static_cast<float>(s)));
            best_layer = std::clamp(best_layer, 0, s + 2);
            const Image& gimg = ss.gauss[o][static_cast<std::size_t>(best_layer)];
            const float gx = kp.x / oct_scale;
            const float gy = kp.y / oct_scale;

            compute_orientations(gimg, gx, gy, sigma_rel, angles);
            for (float ang : angles) {
              Feature f;
              f.keypoint = kp;
              f.keypoint.angle = ang;
              f.descriptor = compute_descriptor(gimg, gx, gy, sigma_rel, ang);
              band_features.push_back(std::move(f));
            }
          }
        }
      });
      for (FeatureList& band : bands) {
        std::move(band.begin(), band.end(), std::back_inserter(features));
      }
    }
  }

  if (params_.max_features > 0 &&
      features.size() > static_cast<std::size_t>(params_.max_features)) {
    std::nth_element(features.begin(),
                     features.begin() + params_.max_features, features.end(),
                     [](const Feature& a, const Feature& b) {
                       return a.keypoint.response > b.keypoint.response;
                     });
    features.resize(static_cast<std::size_t>(params_.max_features));
  }
  // Keypoint + 128-float descriptor storage for this frame's output.
  telemetry::profile_alloc_as("sift_descriptors", features.size() * sizeof(Feature));
  return features;
}

}  // namespace mar::vision
