// Fast feature extractor: FAST-9 corner detection with an oriented,
// normalized intensity-pair descriptor (ORB-flavoured but emitting the
// library's standard 128-float descriptors so it is a drop-in
// replacement for SIFT).
//
// This is the real counterpart of the paper's §5 remark about
// substituting SIFT with a faster extractor ([59]) to shift the
// pipeline's saturation point: same interface, same downstream
// encoding/matching path, a fraction of the compute.
#pragma once

#include "vision/image.h"
#include "vision/keypoint.h"

namespace mar::vision {

struct FastParams {
  // Minimum absolute intensity difference for a circle pixel to count
  // as brighter/darker than the center.
  float threshold = 0.03f;
  // Contiguous circle pixels required (FAST-N).
  int arc_length = 8;
  // Non-maximum suppression radius in pixels.
  int nms_radius = 4;
  int max_features = 500;
  // Descriptor sampling patch half-width.
  int patch_radius = 12;
};

class FastDetector {
 public:
  explicit FastDetector(FastParams params = {}) : params_(params) {}

  // Same contract as SiftDetector::detect.
  [[nodiscard]] FeatureList detect(const Image& image) const;

  [[nodiscard]] const FastParams& params() const { return params_; }

 private:
  FastParams params_;
};

}  // namespace mar::vision
