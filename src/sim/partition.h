// Parallel logical-process DES: conservative-lookahead partitions.
//
// The simulation is split into P logical processes ("partitions"), one
// per hw machine (clients co-located with their access link live in
// their machine's partition). Each partition owns a private EventLoop;
// events inside a partition only touch partition-local state. The only
// way state crosses a partition boundary is post(): a timestamped
// callback delivered into the destination partition's queue at a
// barrier.
//
// Synchronization is conservative: time advances in windows of
// `lookahead` = the minimum cross-partition link latency (from the
// SimNetwork topology). Because any cross-partition message sent
// during window [W, W+L) arrives no earlier than W+L, every partition
// can run its window to completion without seeing a message from a
// concurrently-running peer — so windows execute in parallel on the
// process-wide ThreadPool with zero locks on the event hot path.
//
// Determinism: outboxes are per-source buffers written only by the
// thread running that partition; at the window barrier they are merged
// in (arrival time, source partition, source sequence) order and
// scheduled into the destination loops. Since each partition's
// execution is internally sequential and the merge order is a pure
// function of message content, the event trajectory — and therefore
// every result bit — is identical at any thread count, including the
// sequential (threads <= 1) engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/time.h"
#include "sim/event_loop.h"

namespace mar::sim {

class PartitionedEngine {
 public:
  using Callback = EventLoop::Callback;

  // `lookahead` must be > 0; it is the conservative bound every
  // cross-partition post must respect.
  PartitionedEngine(int partitions, SimDuration lookahead);

  [[nodiscard]] int partitions() const { return static_cast<int>(parts_.size()); }
  [[nodiscard]] SimDuration lookahead() const { return lookahead_; }

  // The partition's private event queue. Only the thread currently
  // running partition `p` (or the coordinator between windows) may
  // touch it.
  [[nodiscard]] EventLoop& loop(int p) { return parts_[static_cast<std::size_t>(p)]->loop; }

  // End of the window currently executing (or about to execute).
  [[nodiscard]] SimTime window_end() const { return window_end_; }

  // Cross-partition send: run `fn` on partition `dst` at absolute time
  // `t`. Must be called from partition `src`'s running window (or
  // before the first window). Arrival times that violate the
  // conservative bound (t <= the current window's end) are clamped to
  // just after the window boundary and counted — a correctly modelled
  // topology (every cross-partition delay >= lookahead) never clamps.
  void post(int src, int dst, SimTime t, Callback fn);

  // Advance every partition to `deadline` in lookahead-sized windows.
  // threads <= 1 runs partitions in index order on the calling thread
  // (the sequential engine); threads > 1 fans each window out over the
  // process ThreadPool. The trajectory is bit-identical either way.
  // `on_window` (optional) runs on the coordinator thread after each
  // window's barrier with the window's [start, end] — capacity cohorts
  // and samplers hook here.
  void run_until(SimTime deadline, int threads,
                 const std::function<void(SimTime, SimTime)>& on_window = nullptr);

  // --- engine telemetry ------------------------------------------------
  [[nodiscard]] std::uint64_t events_fired() const;
  [[nodiscard]] std::uint64_t messages_posted() const { return posted_; }
  [[nodiscard]] std::uint64_t lookahead_violations() const { return violations_; }
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }

 private:
  struct Message {
    SimTime t;
    int src;
    int dst;
    std::uint64_t seq;  // per-source emission counter
    Callback fn;
  };
  struct Partition {
    EventLoop loop;
    std::vector<Message> outbox;  // written only by this partition's runner
    std::uint64_t next_msg_seq = 0;
  };

  // High bit of Message::seq marks a clamped (bound-violating) post;
  // counted at the barrier so workers never touch shared counters.
  static constexpr std::uint64_t kViolationFlag = 1ULL << 63;

  void run_window(int p, SimTime wend);
  void merge_outboxes();

  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<Message> scratch_;  // barrier merge buffer, coordinator-only
  SimDuration lookahead_;
  SimTime window_start_ = 0;
  SimTime window_end_ = 0;
  std::uint64_t posted_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace mar::sim
