#include "sim/network.h"

#include <utility>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mar::sim {
namespace {

// Record a network-track event for a traced packet. All link traffic
// shares one track; the span's stage label is the hop's destination.
void trace_net(const wire::FramePacket& pkt, const char* name, SimTime ts,
               SimDuration dur) {
  auto& tracer = telemetry::Tracer::instance();
  if (!tracer.enabled() || !pkt.header.trace.active()) return;
  static const bool registered = [&tracer] {
    tracer.set_track_name(telemetry::kNetworkTrack, "network");
    return true;
  }();
  (void)registered;
  if (dur >= 0) {
    tracer.complete(telemetry::kNetworkTrack, name, ts, dur, pkt.header.client,
                    pkt.header.frame, pkt.header.stage,
                    static_cast<double>(pkt.wire_size()), pkt.header.trace.trace_id);
  } else {
    tracer.instant(telemetry::kNetworkTrack, name, ts, pkt.header.client,
                   pkt.header.frame, pkt.header.stage, 0.0, pkt.header.trace.trace_id);
  }
}

}  // namespace
EndpointId SimNetwork::create_endpoint(MachineId machine, DatagramHandler handler) {
  endpoints_.push_back(Endpoint{machine, std::move(handler), /*alive=*/true});
  return EndpointId{static_cast<std::uint32_t>(endpoints_.size() - 1)};
}

void SimNetwork::rebind(EndpointId ep, DatagramHandler handler) {
  if (ep.value() >= endpoints_.size()) return;
  endpoints_[ep.value()].handler = std::move(handler);
  endpoints_[ep.value()].alive = true;
}

void SimNetwork::destroy_endpoint(EndpointId ep) {
  if (ep.value() >= endpoints_.size()) return;
  endpoints_[ep.value()].alive = false;
  endpoints_[ep.value()].handler = nullptr;
}

void SimNetwork::set_link(MachineId a, MachineId b, const LinkModel& model) {
  links_[link_key(a, b)] = model;
  links_[link_key(b, a)] = model;
}

void SimNetwork::set_link_override(MachineId a, MachineId b, const LinkModel& model) {
  link_overrides_[link_key(a, b)] = model;
  link_overrides_[link_key(b, a)] = model;
}

void SimNetwork::clear_link_override(MachineId a, MachineId b) {
  link_overrides_.erase(link_key(a, b));
  link_overrides_.erase(link_key(b, a));
}

const LinkModel& SimNetwork::base_link(MachineId a, MachineId b) const {
  if (a == b) {
    static const LinkModel kLoopback = LinkModel::loopback();
    return kLoopback;
  }
  auto it = links_.find(link_key(a, b));
  return it == links_.end() ? default_link_ : it->second;
}

const LinkModel& SimNetwork::link_between(MachineId a, MachineId b) const {
  if (!link_overrides_.empty()) {
    auto it = link_overrides_.find(link_key(a, b));
    if (it != link_overrides_.end()) return it->second;
  }
  return base_link(a, b);
}

void SimNetwork::send(EndpointId from, EndpointId to, wire::FramePacket pkt) {
  if (from.value() >= endpoints_.size() || to.value() >= endpoints_.size()) return;
  ++sent_;
  const std::size_t bytes = pkt.wire_size();
  bytes_ += bytes;
  const MachineId src = endpoints_[from.value()].machine;
  const MachineId dst_machine = endpoints_[to.value()].machine;
  const LinkModel& link = link_between(src, dst_machine);
  // Recovery-enabled links share the live transport's loss story:
  // FEC repairs single losses in place, NACK rounds re-request the
  // rest at one extra RTT each, and only budget exhaustion loses the
  // frame (same counters as net::FrameChannel).
  SimDuration recovery_delay = 0;
  if (link.recovery.enabled() && link.loss_rate > 0.0) {
    const DeliveryOutcome outcome = link.deliver(bytes, rng_);
    auto& registry = telemetry::MetricRegistry::instance();
    if (outcome.fec_repairs > 0) {
      registry
          .counter("mar_net_fec_repairs_total",
                   "Fragments rebuilt from XOR parity without a round trip")
          .inc(static_cast<std::uint64_t>(outcome.fec_repairs));
      trace_net(pkt, telemetry::spans::kFecRepair, loop_.now(), /*dur=*/-1);
    }
    if (outcome.rtx_fragments > 0) {
      registry.counter("mar_net_rtx_total", "Fragments retransmitted in answer to NACKs")
          .inc(static_cast<std::uint64_t>(outcome.rtx_fragments));
      trace_net(pkt, telemetry::spans::kUdpRtx, loop_.now(), /*dur=*/-1);
    }
    if (!outcome.delivered) {
      ++lost_;
      registry
          .counter("mar_net_frames_unrecoverable_total",
                   "Frames abandoned after FEC+retransmission could not complete them")
          .inc();
      trace_net(pkt, telemetry::spans::kUnrecoverable, loop_.now(), /*dur=*/-1);
      return;
    }
    // Each NACK round waits out one more round trip.
    recovery_delay = static_cast<SimDuration>(outcome.rtx_rounds) * 2 * link.latency;
  } else if (!link.survives(bytes, rng_)) {
    ++lost_;
    trace_net(pkt, telemetry::spans::kPacketLoss, loop_.now(), /*dur=*/-1);
    return;
  }

  // Shared serialization: all traffic in one link direction queues
  // behind the same transmitter. A datagram whose queueing backlog
  // would exceed the link's buffer budget is tail-dropped (bufferbloat
  // followed by loss — the hybrid edge-cloud pathology).
  SimDuration serialization = link.serialization_delay(bytes);
  if (serialization > 0 && src != dst_machine) {
    SimTime& next_free = tx_free_at_[link_key(src, dst_machine)];
    const SimTime now = loop_.now();
    const SimTime start = next_free > now ? next_free : now;
    if (start - now > link.max_queue_delay) {
      ++lost_;
      trace_net(pkt, telemetry::spans::kTailDrop, now, /*dur=*/-1);
      return;
    }
    next_free = start + serialization;
    serialization = (start - now) + serialization;
  }

  const SimDuration delay = link.propagation_delay(rng_) + serialization + recovery_delay;
  trace_net(pkt, telemetry::spans::kLink, loop_.now(), delay);
  if (recovery_delay > 0) {
    // The recovery wait sits at the tail of the transit: the first
    // transmission goes out immediately; each NACK round adds an RTT.
    trace_net(pkt, telemetry::spans::kRtxStall, loop_.now() + (delay - recovery_delay),
              recovery_delay);
  }
  loop_.schedule_after(delay, [this, to, p = std::move(pkt)]() mutable {
    Endpoint& dst = endpoints_[to.value()];
    if (dst.alive && dst.handler) dst.handler(std::move(p));
  });
}

MachineId SimNetwork::machine_of(EndpointId ep) const {
  if (ep.value() >= endpoints_.size()) return MachineId::invalid();
  return endpoints_[ep.value()].machine;
}

}  // namespace mar::sim
