#include "sim/partition.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/parallel.h"

namespace mar::sim {

PartitionedEngine::PartitionedEngine(int partitions, SimDuration lookahead)
    : lookahead_(lookahead > 0 ? lookahead : 1) {
  assert(partitions > 0);
  parts_.reserve(static_cast<std::size_t>(partitions));
  for (int p = 0; p < partitions; ++p) parts_.push_back(std::make_unique<Partition>());
}

void PartitionedEngine::post(int src, int dst, SimTime t, Callback fn) {
  Partition& from = *parts_[static_cast<std::size_t>(src)];
  if (t < window_end_) {
    // Conservative-bound violation: the destination may already have
    // run past `t` in this window. Deliver at the barrier instead.
    t = window_end_;
    from.outbox.push_back(Message{t, src, dst, from.next_msg_seq++, std::move(fn)});
    from.outbox.back().seq |= kViolationFlag;
    return;
  }
  from.outbox.push_back(Message{t, src, dst, from.next_msg_seq++, std::move(fn)});
}

void PartitionedEngine::run_window(int p, SimTime wend) {
  parts_[static_cast<std::size_t>(p)]->loop.run_until(wend);
}

void PartitionedEngine::merge_outboxes() {
  scratch_.clear();
  for (auto& part : parts_) {
    for (Message& m : part->outbox) scratch_.push_back(std::move(m));
    part->outbox.clear();
  }
  // Total order on (arrival, source, emission): unique per message and
  // independent of which thread ran which partition, so the seq numbers
  // the destination loops assign to equal-time events — and with them
  // the whole downstream trajectory — are thread-count invariant.
  std::sort(scratch_.begin(), scratch_.end(), [](const Message& a, const Message& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.src != b.src) return a.src < b.src;
    return (a.seq & ~kViolationFlag) < (b.seq & ~kViolationFlag);
  });
  for (Message& m : scratch_) {
    ++posted_;
    if (m.seq & kViolationFlag) ++violations_;
    parts_[static_cast<std::size_t>(m.dst)]->loop.schedule_at(m.t, std::move(m.fn));
  }
  scratch_.clear();
}

void PartitionedEngine::run_until(SimTime deadline, int threads,
                                  const std::function<void(SimTime, SimTime)>& on_window) {
  const int P = partitions();
  while (window_end_ < deadline) {
    window_start_ = window_end_;
    window_end_ = std::min(window_start_ + lookahead_, deadline);
    ++windows_;
    const SimTime wend = window_end_;
    if (threads > 1 && P > 1) {
      // One chunk per partition; the pool join is the window barrier
      // (and the happens-before edge that publishes the outboxes).
      parallel_for(0, P, /*grain=*/1, [this, wend](std::int64_t b, std::int64_t e) {
        for (std::int64_t p = b; p < e; ++p) run_window(static_cast<int>(p), wend);
      });
    } else {
      for (int p = 0; p < P; ++p) run_window(p, wend);
    }
    merge_outboxes();
    if (on_window) on_window(window_start_, window_end_);
  }
}

std::uint64_t PartitionedEngine::events_fired() const {
  std::uint64_t total = 0;
  for (const auto& part : parts_) total += part->loop.stats().fired;
  return total;
}

}  // namespace mar::sim
