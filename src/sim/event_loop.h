// Discrete-event simulation loop.
//
// A single-threaded virtual-time scheduler: events fire in timestamp
// order (FIFO among equal timestamps), and `now()` jumps instantly
// between events, so a five-minute ten-client experiment completes in
// milliseconds of wall time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.h"

namespace mar::sim {

// Token for cancelling a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const { return seq != 0; }
};

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule `fn` at absolute time `t` (clamped to `now()` if in the past).
  EventId schedule_at(SimTime t, Callback fn);

  // Schedule `fn` after a relative delay.
  EventId schedule_after(SimDuration delay, Callback fn) {
    return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  // Cancel a pending event. Safe to call on already-fired or invalid ids.
  void cancel(EventId id);

  // Run until the queue drains. Returns the number of events fired.
  std::size_t run();

  // Fire events with timestamp <= deadline, then set now() = deadline.
  std::size_t run_until(SimTime deadline);

  // Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
    bool cancelled = false;
  };
  struct Order {
    bool operator()(const std::shared_ptr<Event>& a, const std::shared_ptr<Event>& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;  // FIFO among ties
    }
  };

  // Fires the next non-cancelled event, if any. Returns false when drained.
  bool fire_next(SimTime deadline, bool bounded);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::priority_queue<std::shared_ptr<Event>, std::vector<std::shared_ptr<Event>>, Order> queue_;
  std::unordered_map<std::uint64_t, std::weak_ptr<Event>> live_;
};

}  // namespace mar::sim
