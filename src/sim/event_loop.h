// Discrete-event simulation loop.
//
// A single-threaded virtual-time scheduler: events fire in timestamp
// order (FIFO among equal timestamps), and `now()` jumps instantly
// between events, so a five-minute ten-client experiment completes in
// milliseconds of wall time.
//
// Storage is a slab: event callbacks live in reusable slots handed out
// from a free list, and the priority queue is a flat binary heap of
// POD entries (time, seq, slot, generation) — no per-event shared_ptr
// or hash-map churn on the hot path. Cancellation is lazy: cancel()
// bumps the slot's generation (invalidating the EventId and releasing
// the callback immediately) and the stale heap entry is reclaimed when
// it surfaces. Generation checks make stale ids — including ids whose
// slot has since been reused — safe no-ops.
//
// Engine health is observable: every loop counts scheduled / fired /
// cancelled events and clamped schedules, and mirrors the totals into
// the process-wide MetricRegistry (mar_sim_events_fired_total,
// mar_sim_events_cancelled_total, mar_sim_schedule_clamped_total) so a
// sim whose virtual time is advancing through cancelled-only queues or
// silently clamping negative delays shows up on /metrics like
// everything else.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"

namespace mar::sim {

// Token for cancelling a scheduled event. Generation-checked: a
// default-constructed id, an already-fired id, and an id whose slot was
// recycled all fail the check and cancel() is a safe no-op.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;  // 0 = never issued
  [[nodiscard]] bool valid() const { return gen != 0; }
};

// Per-loop accounting (monotone over the loop's lifetime).
struct EventLoopStats {
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  // schedule_after(delay < 0) clamped to "now" — almost always a logic
  // bug upstream (e.g. a negative backoff), previously silent.
  std::uint64_t negative_delay_clamps = 0;
  // schedule_at(t < now) clamped forward (documented behaviour, but
  // worth counting: a busy loop of past-time schedules is a spin).
  std::uint64_t past_time_clamps = 0;
};

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule `fn` at absolute time `t` (clamped to `now()` if in the past).
  EventId schedule_at(SimTime t, Callback fn);

  // Schedule `fn` after a relative delay. Negative delays are clamped
  // to zero and counted (stats().negative_delay_clamps +
  // mar_sim_schedule_clamped_total) instead of silently swallowed.
  EventId schedule_after(SimDuration delay, Callback fn);

  // Cancel a pending event. Safe to call on already-fired or invalid ids.
  void cancel(EventId id);

  // Run until the queue drains. Returns the number of events fired.
  std::size_t run();

  // Fire events with timestamp <= deadline, then set now() = deadline.
  std::size_t run_until(SimTime deadline);

  // Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_; }

  [[nodiscard]] const EventLoopStats& stats() const { return stats_; }

 private:
  // Slab slot: callback storage plus the generation that validates
  // EventIds. A slot cycles armed -> (fired | cancelled) -> free.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 1;
    bool armed = false;
  };
  // Flat heap entry; PODs move in O(1) during sift, no allocation.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  // std::push_heap keeps the *largest* element on top; "largest" here
  // means "fires latest", so the top of the heap is the earliest event.
  struct FiresLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among ties
    }
  };

  // Fires the next non-cancelled event, if any. Returns false when
  // drained (or, when bounded, when the next event is past `deadline`).
  bool fire_next(SimTime deadline, bool bounded);
  void bump_gen(Slot& s) {
    if (++s.gen == 0) s.gen = 1;  // 0 stays the never-issued sentinel
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;
  std::size_t live_ = 0;
  EventLoopStats stats_;
};

}  // namespace mar::sim
