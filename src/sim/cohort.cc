#include "sim/cohort.h"

#include <algorithm>
#include <cmath>

namespace mar::sim {

double ClientCohort::demand_units() const {
  if (config_.service_time <= 0) return 0.0;
  const double unit_rate = static_cast<double>(kSecond) / static_cast<double>(config_.service_time);
  return active_ * config_.target_fps / unit_rate;
}

CohortWindow ClientCohort::advance(SimDuration window, double arrival_rate,
                                   double capacity_units) {
  CohortWindow w;
  const double dt = to_seconds(window);
  if (dt <= 0.0) {
    w.active = active_;
    return w;
  }

  // Fluid session dynamics ds/dt = lambda - s/Ts, integrated in closed
  // form over the window; the load calculation uses the window-mean
  // population so short windows don't alias the churn.
  const double ts = std::max(config_.session_mean_s, 1e-9);
  const double s0 = active_;
  const double s_inf = arrival_rate * ts;
  const double decay = std::exp(-dt / ts);
  const double s1 = s_inf + (s0 - s_inf) * decay;
  // Exact window mean of the exponential trajectory.
  const double s_mean = s_inf + (s0 - s_inf) * (1.0 - decay) * ts / dt;

  w.arrivals = arrival_rate * dt;
  w.departures = std::max(0.0, s0 - s1 + w.arrivals);
  w.active = std::max(0.0, s1);
  active_ = w.active;
  sessions_arrived_ += w.arrivals;

  const double unit_rate =
      config_.service_time > 0
          ? static_cast<double>(kSecond) / static_cast<double>(config_.service_time)
          : 0.0;
  w.offered_fps = s_mean * config_.target_fps;
  const double max_service_fps = capacity_units * unit_rate;
  w.served_fps = config_.service_time > 0 ? std::min(w.offered_fps, max_service_fps)
                                          : w.offered_fps;
  w.session_fps = s_mean > 1e-9 ? w.served_fps / s_mean : 0.0;
  w.demand_units = unit_rate > 0.0 ? w.offered_fps / unit_rate : 0.0;
  w.utilization =
      capacity_units > 1e-9 && unit_rate > 0.0 ? w.served_fps / max_service_fps : 0.0;

  frames_offered_ += w.offered_fps * dt;
  frames_served_ += w.served_fps * dt;
  return w;
}

void ClientCohort::remove_sessions(double n) { active_ = std::max(0.0, active_ - n); }

}  // namespace mar::sim
