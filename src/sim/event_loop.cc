#include "sim/event_loop.h"

#include <limits>
#include <utility>

namespace mar::sim {

EventId EventLoop::schedule_at(SimTime t, Callback fn) {
  auto ev = std::make_shared<Event>();
  ev->time = t < now_ ? now_ : t;
  ev->seq = next_seq_++;
  ev->fn = std::move(fn);
  live_.emplace(ev->seq, ev);
  queue_.push(std::move(ev));
  return EventId{next_seq_ - 1};
}

void EventLoop::cancel(EventId id) {
  auto it = live_.find(id.seq);
  if (it == live_.end()) return;
  if (auto ev = it->second.lock()) ev->cancelled = true;
  live_.erase(it);
}

bool EventLoop::fire_next(SimTime deadline, bool bounded) {
  while (!queue_.empty()) {
    std::shared_ptr<Event> ev = queue_.top();
    if (ev->cancelled) {
      queue_.pop();
      continue;
    }
    if (bounded && ev->time > deadline) return false;
    queue_.pop();
    live_.erase(ev->seq);
    now_ = ev->time;
    ev->fn();
    return true;
  }
  return false;
}

std::size_t EventLoop::run() {
  std::size_t fired = 0;
  while (fire_next(std::numeric_limits<SimTime>::max(), /*bounded=*/false)) ++fired;
  return fired;
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t fired = 0;
  while (fire_next(deadline, /*bounded=*/true)) ++fired;
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace mar::sim
