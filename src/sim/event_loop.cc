#include "sim/event_loop.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "telemetry/registry.h"

namespace mar::sim {
namespace {

// Process-wide sim-engine health counters, shared by every loop (all
// partitions of a partitioned run sum into the same series). Created
// once; inc() is a single relaxed load when metrics are disabled.
struct SimCounters {
  telemetry::Counter& fired;
  telemetry::Counter& cancelled;
  telemetry::Counter& clamped;
};

SimCounters& sim_counters() {
  auto& reg = telemetry::MetricRegistry::instance();
  static SimCounters c{
      reg.counter("mar_sim_events_fired_total",
                  "Simulation events executed across all event loops"),
      reg.counter("mar_sim_events_cancelled_total",
                  "Scheduled simulation events cancelled before firing"),
      reg.counter("mar_sim_schedule_clamped_total",
                  "Schedules clamped forward (negative delay or past timestamp)"),
  };
  return c;
}

}  // namespace

EventLoop::EventLoop() {
  slots_.reserve(64);
  heap_.reserve(64);
}

EventId EventLoop::schedule_at(SimTime t, Callback fn) {
  if (t < now_) {
    t = now_;
    ++stats_.past_time_clamps;
    sim_counters().clamped.inc();
  }
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  heap_.push_back(HeapEntry{t, next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
  ++live_;
  ++stats_.scheduled;
  return EventId{slot, s.gen};
}

EventId EventLoop::schedule_after(SimDuration delay, Callback fn) {
  if (delay < 0) {
    delay = 0;
    ++stats_.negative_delay_clamps;
    sim_counters().clamped.inc();
  }
  return schedule_at(now_ + delay, std::move(fn));
}

void EventLoop::cancel(EventId id) {
  if (id.slot >= slots_.size()) return;
  Slot& s = slots_[id.slot];
  if (s.gen != id.gen || !s.armed) return;
  // Invalidate the id and release the closure now; the stale heap entry
  // is reclaimed lazily when it surfaces in fire_next.
  bump_gen(s);
  s.armed = false;
  s.fn = nullptr;
  --live_;
  ++stats_.cancelled;
  sim_counters().cancelled.inc();
}

bool EventLoop::fire_next(SimTime deadline, bool bounded) {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    Slot& s = slots_[top.slot];
    if (top.gen != s.gen) {
      // Cancelled: the slot was re-generationed; reclaim it.
      free_.push_back(top.slot);
      std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
      heap_.pop_back();
      continue;
    }
    if (bounded && top.time > deadline) return false;
    const SimTime t = top.time;
    const std::uint32_t slot = top.slot;
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
    heap_.pop_back();
    // Consume the slot before invoking so the callback can schedule new
    // events (possibly reusing this very slot).
    Callback fn = std::move(s.fn);
    s.fn = nullptr;
    s.armed = false;
    bump_gen(s);
    free_.push_back(slot);
    --live_;
    ++stats_.fired;
    sim_counters().fired.inc();
    now_ = t;
    fn();
    return true;
  }
  return false;
}

std::size_t EventLoop::run() {
  std::size_t fired = 0;
  while (fire_next(std::numeric_limits<SimTime>::max(), /*bounded=*/false)) ++fired;
  return fired;
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t fired = 0;
  while (fire_next(deadline, /*bounded=*/true)) ++fired;
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace mar::sim
