// Flow-level aggregate client model.
//
// Simulating 100k+ AR clients frame-by-frame is 10^7 events per
// simulated second — and for the long tail of healthy clients, every
// one of those events tells the same story. A ClientCohort replaces N
// per-frame clients with a fluid approximation advanced once per
// conservative-sync window: sessions arrive at a (population-model
// driven) rate, churn out exponentially, and their offered frame load
// is served by the capacity units the cohort holds on its machine's
// ResourcePool. Only SLO-interesting clients — probes, or sessions
// promoted out of a cohort whose fluid FPS degrades — pay per-frame
// event cost (see expt::CapacityEngine).
//
// The model is deliberately RNG-free: a cohort advance is a closed-form
// function of (state, window, arrival rate, capacity), so the fluid
// tail adds zero nondeterminism to the partitioned engine's digest.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace mar::sim {

struct CohortConfig {
  // Per-session offered frame rate (the paper's 25-30 FPS camera).
  double target_fps = 25.0;
  // Mean per-frame service demand of one capacity unit (one GPU slot
  // serves 1/service_time frames per second).
  SimDuration service_time = 0;
  // Mean session duration; sessions churn out at rate active/mean.
  double session_mean_s = 300.0;
  // Resident bytes one active session pins on the serving machine
  // (scAtteR: sift state entries; scAtteR++: sidecar client buffers).
  std::uint64_t memory_per_session = 0;
};

// Flow stats for one advanced window.
struct CohortWindow {
  double arrivals = 0.0;    // fluid sessions that arrived
  double departures = 0.0;  // fluid sessions that churned out
  double active = 0.0;      // sessions after the advance
  double offered_fps = 0.0;   // aggregate frames/s the cohort wanted
  double served_fps = 0.0;    // aggregate frames/s capacity admitted
  double session_fps = 0.0;   // served / active — the cohort's QoS
  double demand_units = 0.0;  // capacity units needed for offered load
  double utilization = 0.0;   // served demand / granted capacity
};

class ClientCohort {
 public:
  explicit ClientCohort(CohortConfig config) : config_(config) {}

  // Advance the fluid state over a `window`-long interval with the
  // given session arrival rate (sessions/s) and `capacity_units`
  // service slots granted to this cohort. Frames offered beyond
  // capacity are dropped (AR frames are latency-bound: a frame that
  // cannot be served now is stale, exactly like the sidecar's
  // staleness threshold), so overload shows up as session_fps sagging
  // below target_fps rather than as an unbounded backlog.
  CohortWindow advance(SimDuration window, double arrival_rate, double capacity_units);

  [[nodiscard]] double active_sessions() const { return active_; }
  // Capacity units needed to serve the current population at target
  // fps — what the cohort asks its partition's pool for next window.
  [[nodiscard]] double demand_units() const;
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(active_ * static_cast<double>(config_.memory_per_session));
  }
  [[nodiscard]] const CohortConfig& config() const { return config_; }

  // Promotion/demotion between the fluid tail and detailed per-frame
  // clients: the capacity engine moves sessions out when the cohort
  // becomes SLO-interesting (and back when a probe's session ends).
  void remove_sessions(double n);
  void add_sessions(double n) { active_ += n; }

  // Cumulative flow totals since construction.
  [[nodiscard]] double frames_offered() const { return frames_offered_; }
  [[nodiscard]] double frames_served() const { return frames_served_; }
  [[nodiscard]] double sessions_arrived() const { return sessions_arrived_; }

 private:
  CohortConfig config_;
  double active_ = 0.0;
  double frames_offered_ = 0.0;
  double frames_served_ = 0.0;
  double sessions_arrived_ = 0.0;
};

}  // namespace mar::sim
