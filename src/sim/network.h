// Simulated datagram network.
//
// Endpoints live on machines; sending resolves the (src-machine,
// dst-machine) link model, applies loss and delay, and schedules
// delivery on the event loop. Semantics mirror UDP: unreliable,
// unordered under jitter, fire-and-forget.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "wire/message.h"

namespace mar::sim {

class SimNetwork {
 public:
  using DatagramHandler = std::function<void(wire::FramePacket)>;

  SimNetwork(EventLoop& loop, Rng rng) : loop_(loop), rng_(rng) {}

  // Register an endpoint bound to `machine`; `handler` is invoked (in
  // virtual time) for each delivered datagram.
  EndpointId create_endpoint(MachineId machine, DatagramHandler handler);

  // Rebind an endpoint's handler (used when a service replica restarts).
  void rebind(EndpointId ep, DatagramHandler handler);

  // Remove an endpoint; in-flight datagrams to it are dropped on arrival.
  void destroy_endpoint(EndpointId ep);

  // Install a symmetric link between two machines (both directions).
  void set_link(MachineId a, MachineId b, const LinkModel& model);

  // Fault injection: temporarily replace the effective link model
  // between two machines (both directions) without touching the base
  // model installed by set_link. Used for blackout / degradation
  // windows; clear restores the base model.
  void set_link_override(MachineId a, MachineId b, const LinkModel& model);
  void clear_link_override(MachineId a, MachineId b);
  // The base (non-overridden) model between two machines, for composing
  // degradations on top of the installed link.
  [[nodiscard]] const LinkModel& base_link(MachineId a, MachineId b) const;

  // Send `pkt` from `from` to `to`. Unknown endpoints drop silently
  // (like UDP to a closed port).
  void send(EndpointId from, EndpointId to, wire::FramePacket pkt);

  [[nodiscard]] MachineId machine_of(EndpointId ep) const;

  // Telemetry.
  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_lost() const { return lost_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

 private:
  struct Endpoint {
    MachineId machine;
    DatagramHandler handler;
    bool alive = true;
  };

  [[nodiscard]] const LinkModel& link_between(MachineId a, MachineId b) const;

  static std::uint64_t link_key(MachineId a, MachineId b) {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }

  EventLoop& loop_;
  Rng rng_;
  std::vector<Endpoint> endpoints_;
  std::unordered_map<std::uint64_t, LinkModel> links_;  // key: a<<32|b
  std::unordered_map<std::uint64_t, LinkModel> link_overrides_;
  // Per-directed-link transmitter availability (shared bandwidth).
  std::unordered_map<std::uint64_t, SimTime> tx_free_at_;
  LinkModel default_link_ = LinkModel::loopback();
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace mar::sim
