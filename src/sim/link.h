// Network link models.
//
// Each (src machine, dst machine) pair has a LinkModel describing
// propagation latency, Gaussian jitter, Bernoulli loss, serialization
// bandwidth, and the paper's mobility emulation (a +10 ms delay
// oscillation applied with 20 % probability, §A.1.1).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/rng.h"
#include "common/time.h"

namespace mar::sim {

struct LinkModel {
  // One-way propagation delay (RTT / 2 for symmetric links).
  SimDuration latency = 0;
  // Std-dev of zero-mean Gaussian jitter added per datagram.
  SimDuration jitter_stddev = 0;
  // Independent per-datagram loss probability in [0, 1].
  double loss_rate = 0.0;
  // Serialization bandwidth; <= 0 means infinite. Bandwidth is a
  // *shared* bottleneck per link direction: concurrent senders queue
  // behind each other (bufferbloat), and datagrams whose queueing
  // backlog would exceed `max_queue_delay` are tail-dropped.
  double bandwidth_bytes_per_sec = 0.0;
  SimDuration max_queue_delay = millis(200.0);
  // Mobility emulation: extra delay added with `oscillation_prob`.
  SimDuration oscillation_delay = 0;
  double oscillation_prob = 0.0;

  // Loopback (intra-machine) link: effectively free, lossless.
  static LinkModel loopback() {
    LinkModel m;
    m.latency = 20'000;  // 20 us kernel/loopback cost
    return m;
  }

  // Symmetric link with the given RTT.
  static LinkModel with_rtt(SimDuration rtt, double loss = 0.0,
                            double bandwidth_bytes_per_sec = 0.0) {
    LinkModel m;
    m.latency = rtt / 2;
    m.loss_rate = loss;
    m.bandwidth_bytes_per_sec = bandwidth_bytes_per_sec;
    return m;
  }

  // Whether a message of `bytes` bytes survives the link. Loss is per
  // UDP datagram: a 250 KB frame fragments into ~180 MTU-sized packets
  // and the frame is lost if ANY fragment is — which is why even small
  // per-packet loss rates devastate large-frame hops (the paper's
  // hybrid edge-cloud pathology, §A.1.2).
  [[nodiscard]] bool survives(std::size_t bytes, Rng& rng) const {
    if (loss_rate <= 0.0) return true;
    const auto fragments = static_cast<double>((bytes + kMtuBytes - 1) / kMtuBytes);
    const double survival = std::pow(1.0 - loss_rate, fragments);
    return rng.bernoulli(survival);
  }

  static constexpr std::size_t kMtuBytes = 1400;

  // Propagation + jitter + mobility delay for one datagram (the
  // bandwidth/serialization part is handled by the network's shared
  // per-link serializer, see SimNetwork::send).
  [[nodiscard]] SimDuration propagation_delay(Rng& rng) const {
    double d = static_cast<double>(latency);
    if (jitter_stddev > 0) {
      d += rng.gaussian(0.0, static_cast<double>(jitter_stddev));
    }
    if (oscillation_prob > 0.0 && rng.bernoulli(oscillation_prob)) {
      d += static_cast<double>(oscillation_delay);
    }
    return std::max<SimDuration>(static_cast<SimDuration>(d), 1'000);  // >= 1 us
  }

  // Time to push `bytes` onto the wire at this link's bandwidth.
  [[nodiscard]] SimDuration serialization_delay(std::size_t bytes) const {
    if (bandwidth_bytes_per_sec <= 0.0) return 0;
    return static_cast<SimDuration>(static_cast<double>(bytes) / bandwidth_bytes_per_sec *
                                    static_cast<double>(kSecond));
  }
};

}  // namespace mar::sim
