// Network link models.
//
// Each (src machine, dst machine) pair has a LinkModel describing
// propagation latency, Gaussian jitter, Bernoulli loss, serialization
// bandwidth, and the paper's mobility emulation (a +10 ms delay
// oscillation applied with 20 % probability, §A.1.1).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace mar::sim {

// Loss-recovery knobs mirroring the live transport (net/fragment.h,
// net/rtx.h): XOR-parity FEC repairs a single loss per k-fragment
// group without a round trip; NACK retransmission re-requests the rest
// for up to `rtx_rounds` receiver-driven rounds, each costing one
// extra RTT. Both default off, which keeps every existing experiment
// bit-identical (survives() draws exactly one Bernoulli per message).
struct LinkRecovery {
  int fec_group = 0;   // data fragments per parity datagram; 0 = off
  int rtx_rounds = 0;  // NACK rounds before the frame is abandoned
  [[nodiscard]] bool enabled() const { return fec_group > 0 || rtx_rounds > 0; }
};

// What happened to one message on a lossy link with recovery on.
struct DeliveryOutcome {
  bool delivered = true;
  int fragments = 0;     // first-shot data fragments
  int fec_repairs = 0;   // single-loss groups repaired by parity
  int rtx_fragments = 0; // fragments retransmitted across all rounds
  int rtx_rounds = 0;    // rounds actually used (extra RTTs to charge)
};

struct LinkModel {
  // One-way propagation delay (RTT / 2 for symmetric links).
  SimDuration latency = 0;
  // Std-dev of zero-mean Gaussian jitter added per datagram.
  SimDuration jitter_stddev = 0;
  // Independent per-datagram loss probability in [0, 1].
  double loss_rate = 0.0;
  // Serialization bandwidth; <= 0 means infinite. Bandwidth is a
  // *shared* bottleneck per link direction: concurrent senders queue
  // behind each other (bufferbloat), and datagrams whose queueing
  // backlog would exceed `max_queue_delay` are tail-dropped.
  double bandwidth_bytes_per_sec = 0.0;
  SimDuration max_queue_delay = millis(200.0);
  // Mobility emulation: extra delay added with `oscillation_prob`.
  SimDuration oscillation_delay = 0;
  double oscillation_prob = 0.0;
  // Loss recovery (FEC + NACK retransmission), mirroring the live
  // transport. Off by default: survives() stays the delivery model and
  // existing runs stay bit-identical.
  LinkRecovery recovery;

  // Loopback (intra-machine) link: effectively free, lossless.
  static LinkModel loopback() {
    LinkModel m;
    m.latency = 20'000;  // 20 us kernel/loopback cost
    return m;
  }

  // Symmetric link with the given RTT.
  static LinkModel with_rtt(SimDuration rtt, double loss = 0.0,
                            double bandwidth_bytes_per_sec = 0.0) {
    LinkModel m;
    m.latency = rtt / 2;
    m.loss_rate = loss;
    m.bandwidth_bytes_per_sec = bandwidth_bytes_per_sec;
    return m;
  }

  // Whether a message of `bytes` bytes survives the link. Loss is per
  // UDP datagram: a 250 KB frame fragments into ~180 MTU-sized packets
  // and the frame is lost if ANY fragment is — which is why even small
  // per-packet loss rates devastate large-frame hops (the paper's
  // hybrid edge-cloud pathology, §A.1.2).
  [[nodiscard]] bool survives(std::size_t bytes, Rng& rng) const {
    if (loss_rate <= 0.0) return true;
    const auto fragments = static_cast<double>((bytes + kMtuBytes - 1) / kMtuBytes);
    const double survival = std::pow(1.0 - loss_rate, fragments);
    return rng.bernoulli(survival);
  }

  static constexpr std::size_t kMtuBytes = 1400;

  // Per-fragment delivery with the recovery tiers applied — the sim
  // mirror of net::FrameChannel's FEC + NACK machinery. Fragments are
  // lost independently; a group with exactly one data loss repairs
  // from its parity datagram (if that parity itself survived); the
  // rest go through up to `recovery.rtx_rounds` retransmission rounds,
  // each round costing the caller one extra RTT (DeliveryOutcome::
  // rtx_rounds). Draws rng only when recovery is enabled; otherwise
  // call survives().
  [[nodiscard]] DeliveryOutcome deliver(std::size_t bytes, Rng& rng) const {
    DeliveryOutcome out;
    out.fragments = static_cast<int>((bytes + kMtuBytes - 1) / kMtuBytes);
    if (out.fragments == 0) out.fragments = 1;
    if (loss_rate <= 0.0) return out;
    // First shot: which data fragments were lost.
    std::vector<int> missing;
    for (int i = 0; i < out.fragments; ++i) {
      if (rng.bernoulli(loss_rate)) missing.push_back(i);
    }
    // FEC pass: a group with exactly one loss repairs iff its parity
    // datagram also survived the link.
    if (recovery.fec_group > 0 && !missing.empty()) {
      const int k = recovery.fec_group;
      std::vector<int> still_missing;
      std::size_t cursor = 0;
      const int groups = (out.fragments + k - 1) / k;
      for (int g = 0; g < groups; ++g) {
        const int lo = g * k;
        const int hi = std::min(lo + k, out.fragments);
        std::size_t first = cursor;
        while (cursor < missing.size() && missing[cursor] < hi) ++cursor;
        const std::size_t lost_in_group = cursor - first;
        const bool parity_survived = !rng.bernoulli(loss_rate);
        if (lost_in_group == 1 && parity_survived) {
          ++out.fec_repairs;
        } else {
          for (std::size_t i = first; i < cursor; ++i) still_missing.push_back(missing[i]);
        }
      }
      missing.swap(still_missing);
    }
    // NACK rounds: each still-missing fragment is resent, and may be
    // lost again.
    while (!missing.empty() && out.rtx_rounds < recovery.rtx_rounds) {
      ++out.rtx_rounds;
      std::vector<int> still_missing;
      for (int idx : missing) {
        ++out.rtx_fragments;
        if (rng.bernoulli(loss_rate)) still_missing.push_back(idx);
      }
      missing.swap(still_missing);
    }
    out.delivered = missing.empty();
    return out;
  }

  // Propagation + jitter + mobility delay for one datagram (the
  // bandwidth/serialization part is handled by the network's shared
  // per-link serializer, see SimNetwork::send).
  [[nodiscard]] SimDuration propagation_delay(Rng& rng) const {
    double d = static_cast<double>(latency);
    if (jitter_stddev > 0) {
      d += rng.gaussian(0.0, static_cast<double>(jitter_stddev));
    }
    if (oscillation_prob > 0.0 && rng.bernoulli(oscillation_prob)) {
      d += static_cast<double>(oscillation_delay);
    }
    return std::max<SimDuration>(static_cast<SimDuration>(d), 1'000);  // >= 1 us
  }

  // Time to push `bytes` onto the wire at this link's bandwidth.
  [[nodiscard]] SimDuration serialization_delay(std::size_t bytes) const {
    if (bandwidth_bytes_per_sec <= 0.0) return 0;
    return static_cast<SimDuration>(static_cast<double>(bytes) / bandwidth_bytes_per_sec *
                                    static_cast<double>(kSecond));
  }
};

}  // namespace mar::sim
