#include "video/scene.h"

#include <cmath>

namespace mar::video {
namespace {

constexpr float kPi = 3.14159265358979323846f;

// Deterministic integer hash -> [0,1) (value-noise lattice).
float hash01(int x, int y, std::uint32_t salt) {
  std::uint32_t h = static_cast<std::uint32_t>(x) * 374761393u +
                    static_cast<std::uint32_t>(y) * 668265263u + salt * 2246822519u;
  h = (h ^ (h >> 13)) * 1274126177u;
  h ^= h >> 16;
  return static_cast<float>(h & 0xFFFFFFu) / static_cast<float>(0x1000000u);
}

// Smooth value noise at (x, y) with unit lattice.
float value_noise(float x, float y, std::uint32_t salt) {
  const int x0 = static_cast<int>(std::floor(x));
  const int y0 = static_cast<int>(std::floor(y));
  const float fx = x - static_cast<float>(x0);
  const float fy = y - static_cast<float>(y0);
  const float sx = fx * fx * (3.0f - 2.0f * fx);
  const float sy = fy * fy * (3.0f - 2.0f * fy);
  const float v00 = hash01(x0, y0, salt);
  const float v10 = hash01(x0 + 1, y0, salt);
  const float v01 = hash01(x0, y0 + 1, salt);
  const float v11 = hash01(x0 + 1, y0 + 1, salt);
  const float top = v00 * (1 - sx) + v10 * sx;
  const float bot = v01 * (1 - sx) + v11 * sx;
  return top * (1 - sy) + bot * sy;
}

}  // namespace

WorkplaceScene::WorkplaceScene(int width, int height) : width_(width), height_(height) {
  // Scene coordinates == frame coordinates at the neutral camera pose.
  // A desk: table surface across the lower half, monitor upper middle,
  // keyboard front-center.
  placements_ = {
      {SceneObject::kTable, 60.0f, 380.0f, 1160.0f, 300.0f},
      {SceneObject::kMonitor, 420.0f, 90.0f, 440.0f, 280.0f},
      {SceneObject::kKeyboard, 470.0f, 450.0f, 360.0f, 140.0f},
  };
}

float WorkplaceScene::texture(SceneObject object, float u, float v) const {
  // u, v in [0,1] across the object's face. Each texture mixes strong
  // structure (edges/corners for SIFT) with fine noise.
  switch (object) {
    case SceneObject::kMonitor: {
      // Dark bezel, bright "window" blocks on the screen.
      const float bezel = 0.06f;
      if (u < bezel || u > 1 - bezel || v < bezel || v > 1 - bezel) return 0.12f;
      const float su = (u - bezel) / (1 - 2 * bezel);
      const float sv = (v - bezel) / (1 - 2 * bezel);
      // Two overlapping windows + a taskbar.
      float val = 0.25f + 0.1f * value_noise(su * 24, sv * 24, 11);
      if (su > 0.08f && su < 0.55f && sv > 0.1f && sv < 0.7f) {
        val = 0.82f - 0.25f * value_noise(su * 40, sv * 40, 12);
        if (sv < 0.16f) val = 0.55f;  // title bar
      }
      if (su > 0.45f && su < 0.93f && sv > 0.3f && sv < 0.85f) {
        val = 0.68f - 0.3f * value_noise(su * 32, sv * 32, 13);
        if (sv < 0.36f) val = 0.45f;
      }
      if (sv > 0.94f) val = 0.3f + 0.3f * ((std::fmod(su * 12.0f, 1.0f) < 0.5f) ? 1.0f : 0.0f);
      return val;
    }
    case SceneObject::kKeyboard: {
      // Key grid: bright keycaps with dark gaps.
      const float cols = 14.0f, rows = 5.0f;
      const float fu = std::fmod(u * cols, 1.0f);
      const float fv = std::fmod(v * rows, 1.0f);
      const bool gap = fu < 0.12f || fu > 0.88f || fv < 0.15f || fv > 0.85f;
      if (gap) return 0.1f;
      const int kx = static_cast<int>(u * cols);
      const int ky = static_cast<int>(v * rows);
      return 0.55f + 0.35f * hash01(kx, ky, 21) -
             0.15f * value_noise(u * 60, v * 60, 22);
    }
    case SceneObject::kTable: {
      // Wood: directional stripes + grain noise + strong border.
      if (u < 0.015f || u > 0.985f || v < 0.03f || v > 0.97f) return 0.08f;
      const float stripes = 0.5f + 0.22f * std::sin(v * 46.0f + 3.0f * value_noise(u * 6, v * 6, 31));
      return stripes + 0.18f * value_noise(u * 90, v * 90, 32) - 0.1f;
    }
  }
  return 0.0f;
}

float WorkplaceScene::background(float x, float y) const {
  // Wall gradient with low-frequency mottling.
  const float g = 0.35f + 0.25f * (y / static_cast<float>(height_));
  return g + 0.06f * value_noise(x / 97.0f, y / 97.0f, 41);
}

CameraPose WorkplaceScene::camera_at(double t_seconds) const {
  CameraPose pose;
  const auto t = static_cast<float>(t_seconds);
  // Smooth handheld-style pan (one slow loop per 10 s clip) + zoom sway.
  pose.offset_x = 60.0f * std::sin(2.0f * kPi * t / 10.0f);
  pose.offset_y = 25.0f * std::sin(2.0f * kPi * t / 7.3f + 0.9f);
  pose.zoom = 1.0f + 0.06f * std::sin(2.0f * kPi * t / 8.1f + 2.1f);
  return pose;
}

vision::Image WorkplaceScene::render(double t_seconds) const {
  const CameraPose cam = camera_at(t_seconds);
  vision::Image out(width_, height_);
  const float cx = static_cast<float>(width_) / 2.0f;
  const float cy = static_cast<float>(height_) / 2.0f;

  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      // Inverse camera map: frame pixel -> scene coordinates.
      const float sx = (static_cast<float>(x) - cx) / cam.zoom + cx + cam.offset_x;
      const float sy = (static_cast<float>(y) - cy) / cam.zoom + cy + cam.offset_y;

      float val = background(sx, sy);
      // Later placements draw on top (monitor/keyboard over table).
      for (const ScenePlacement& p : placements_) {
        if (sx >= p.x && sx < p.x + p.width && sy >= p.y && sy < p.y + p.height) {
          val = texture(p.object, (sx - p.x) / p.width, (sy - p.y) / p.height);
        }
      }
      out.at(x, y) = val;
    }
  }
  return out;
}

vision::Image WorkplaceScene::render_reference(SceneObject object, int width,
                                               int height) const {
  vision::Image out(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      out.at(x, y) = texture(object, (static_cast<float>(x) + 0.5f) / static_cast<float>(width),
                             (static_cast<float>(y) + 0.5f) / static_cast<float>(height));
    }
  }
  return out;
}

std::array<float, 4> WorkplaceScene::object_bbox_at(SceneObject object,
                                                    double t_seconds) const {
  const CameraPose cam = camera_at(t_seconds);
  const float cx = static_cast<float>(width_) / 2.0f;
  const float cy = static_cast<float>(height_) / 2.0f;
  for (const ScenePlacement& p : placements_) {
    if (p.object != object) continue;
    // Scene -> frame (forward camera map).
    const float x0 = (p.x - cam.offset_x - cx) * cam.zoom + cx;
    const float y0 = (p.y - cam.offset_y - cy) * cam.zoom + cy;
    const float x1 = (p.x + p.width - cam.offset_x - cx) * cam.zoom + cx;
    const float y1 = (p.y + p.height - cam.offset_y - cy) * cam.zoom + cy;
    return {x0, y0, x1, y1};
  }
  return {0, 0, 0, 0};
}

}  // namespace mar::video
