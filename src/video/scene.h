// Deterministic synthetic "workplace" video (paper §3.2: a 10 s,
// 30 FPS, 720p clip of a desk with a monitor, keyboard, and table).
//
// Objects are textured planar rectangles in scene coordinates; a
// slowly panning/zooming camera produces the frames. Reference images
// for training come from the same texture functions, so the vision
// pipeline (SIFT -> ... -> pose) genuinely recognizes and tracks them.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "vision/image.h"

namespace mar::video {

enum class SceneObject : std::uint32_t {
  kMonitor = 0,
  kKeyboard = 1,
  kTable = 2,
};
inline constexpr int kNumSceneObjects = 3;

[[nodiscard]] constexpr const char* to_string(SceneObject o) {
  switch (o) {
    case SceneObject::kMonitor:
      return "monitor";
    case SceneObject::kKeyboard:
      return "keyboard";
    case SceneObject::kTable:
      return "table";
  }
  return "?";
}

struct ScenePlacement {
  SceneObject object;
  float x, y;          // top-left in scene coordinates
  float width, height;
};

struct CameraPose {
  float offset_x = 0.0f;
  float offset_y = 0.0f;
  float zoom = 1.0f;
};

class WorkplaceScene {
 public:
  // Frame dimensions default to 720p.
  explicit WorkplaceScene(int width = 1280, int height = 720);

  // Canonical (frontal) reference image of one object, for training.
  [[nodiscard]] vision::Image render_reference(SceneObject object, int width,
                                               int height) const;

  // Camera pose at time `t_seconds` (smooth deterministic pan + zoom).
  [[nodiscard]] CameraPose camera_at(double t_seconds) const;

  // Render the frame seen at time `t_seconds`.
  [[nodiscard]] vision::Image render(double t_seconds) const;

  // Ground truth: the object's corner positions in the frame at time t
  // (scene rect mapped through the camera), for accuracy tests.
  [[nodiscard]] std::array<float, 4> object_bbox_at(SceneObject object,
                                                    double t_seconds) const;

  [[nodiscard]] const std::vector<ScenePlacement>& placements() const { return placements_; }
  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

 private:
  [[nodiscard]] float texture(SceneObject object, float u, float v) const;
  [[nodiscard]] float background(float x, float y) const;

  int width_;
  int height_;
  std::vector<ScenePlacement> placements_;
};

// Replayable source: loops a fixed-length clip at a fixed framerate.
class VideoSource {
 public:
  VideoSource(WorkplaceScene scene, double fps = 30.0, double clip_seconds = 10.0)
      : scene_(std::move(scene)), fps_(fps), clip_seconds_(clip_seconds) {}

  [[nodiscard]] vision::Image frame(std::uint64_t index) const {
    const double t = static_cast<double>(index) / fps_;
    const double looped = clip_seconds_ > 0 ? std::fmod(t, clip_seconds_) : t;
    return scene_.render(looped);
  }

  [[nodiscard]] double fps() const { return fps_; }
  [[nodiscard]] std::uint64_t frames_per_loop() const {
    return static_cast<std::uint64_t>(fps_ * clip_seconds_);
  }
  [[nodiscard]] const WorkplaceScene& scene() const { return scene_; }

 private:
  WorkplaceScene scene_;
  double fps_;
  double clip_seconds_;
};

}  // namespace mar::video
