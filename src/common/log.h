// Leveled logging with a global verbosity switch. Benchmarks run with
// logging off; examples enable kInfo to narrate pipeline activity.
#pragma once

#include <sstream>
#include <string>

namespace mar {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace internal {
void log_write(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace mar

#define MAR_LOG(level)                           \
  if (static_cast<int>(level) < static_cast<int>(::mar::log_level())) { \
  } else                                         \
    ::mar::internal::LogLine(level)

#define MAR_DEBUG MAR_LOG(::mar::LogLevel::kDebug)
#define MAR_INFO MAR_LOG(::mar::LogLevel::kInfo)
#define MAR_WARN MAR_LOG(::mar::LogLevel::kWarn)
#define MAR_ERROR MAR_LOG(::mar::LogLevel::kError)
