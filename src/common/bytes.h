// Byte-buffer serialization primitives used by the wire format.
//
// Little-endian, bounds-checked reader/writer over a contiguous byte
// vector. The writer owns its buffer; the reader is a non-owning view.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mar {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }
  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  // Length-prefixed (u32) string.
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t get_u8() { return get_le<std::uint8_t>(); }
  std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
  float get_f32() {
    const std::uint32_t bits = get_le<std::uint32_t>();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double get_f64() {
    const std::uint64_t bits = get_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string get_string() {
    const std::uint32_t n = get_u32();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_ - n), n);
    return s;
  }
  std::vector<std::uint8_t> get_bytes(std::size_t n) {
    if (!take(n)) return {};
    return {data_.begin() + static_cast<std::ptrdiff_t>(pos_ - n),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_)};
  }

 private:
  template <typename T>
  T get_le() {
    if (!take(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ - sizeof(T) + i]) << (8 * i)));
    }
    return v;
  }

  // Advance by n if available; otherwise mark the reader failed.
  bool take(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mar
