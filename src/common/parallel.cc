#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace mar {
namespace {

// True on pool workers, and on any thread currently executing a chunk:
// nested parallel_for calls run serially over the same chunk grid
// instead of deadlocking on the (single-job) pool.
thread_local bool tl_in_parallel = false;

// Pool-lane id of this thread (0 = not a pool worker); see parallel_lane().
thread_local int tl_lane = 0;

int default_pool_size() {
  if (const char* env = std::getenv("MAR_THREADS")) {
    char* parse_end = nullptr;
    const long v = std::strtol(env, &parse_end, 10);
    if (parse_end != env && v >= 1) return static_cast<int>(std::min(v, 256L));
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace

std::int64_t ThreadPool::num_chunks(std::int64_t begin, std::int64_t end,
                                    std::int64_t grain) {
  if (end <= begin) return 0;
  grain = std::max<std::int64_t>(1, grain);
  return (end - begin + grain - 1) / grain;
}

ThreadPool::ThreadPool(int threads) : size_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int i = 0; i + 1 < size_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop(int lane) {
  tl_in_parallel = true;
  tl_lane = lane;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || job_seq_ != seen; });
      if (stop_) return;
      seen = job_seq_;
      active_workers_.fetch_add(1, std::memory_order_relaxed);
    }
    run_chunks();
    active_workers_.fetch_sub(1, std::memory_order_release);
  }
}

void ThreadPool::run_chunks() {
  for (;;) {
    const std::int64_t c = next_chunk_.fetch_add(1, std::memory_order_acq_rel);
    if (c >= total_chunks_) return;
    if (!cancelled_.load(std::memory_order_relaxed)) {
      try {
        (*fn_)(c, begin_ + c * grain_, std::min(end_, begin_ + (c + 1) * grain_));
      } catch (...) {
        cancelled_.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
    if (done_chunks_.fetch_add(1, std::memory_order_acq_rel) + 1 == total_chunks_) {
      std::lock_guard<std::mutex> lk(mu_);  // pairs with the caller's wait
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::for_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                            const ChunkFn& fn) {
  const std::int64_t total = num_chunks(begin, end, grain);
  if (total == 0) return;
  grain = std::max<std::int64_t>(1, grain);
  if (size_ == 1 || total == 1 || tl_in_parallel) {
    // Same chunk grid, executed in order on the calling thread.
    for (std::int64_t c = 0; c < total; ++c) {
      fn(c, begin + c * grain, std::min(end, begin + (c + 1) * grain));
    }
    return;
  }

  std::lock_guard<std::mutex> job_lk(job_mu_);
  // Quiesce stragglers from the previous job before resetting state.
  while (active_workers_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    begin_ = begin;
    end_ = end;
    grain_ = grain;
    total_chunks_ = total;
    done_chunks_.store(0, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    next_chunk_.store(0, std::memory_order_release);
    ++job_seq_;
  }
  cv_.notify_all();

  tl_in_parallel = true;  // the caller participates as a lane
  run_chunks();
  tl_in_parallel = false;

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return done_chunks_.load(std::memory_order_acquire) == total_chunks_;
  });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::for_range(std::int64_t begin, std::int64_t end, std::int64_t grain,
                           const RangeFn& fn) {
  for_chunks(begin, end, grain,
             [&fn](std::int64_t, std::int64_t i0, std::int64_t i1) { fn(i0, i1); });
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_pool_size());
  return *g_pool;
}

int parallel_threads() { return global_pool().size(); }

int parallel_lane() { return tl_lane; }

void set_parallel_threads(int n) {
  ThreadPool* fresh = new ThreadPool(n <= 0 ? default_pool_size() : n);
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool.reset(fresh);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const ThreadPool::RangeFn& fn) {
  global_pool().for_range(begin, end, grain, fn);
}

void parallel_for_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                         const ThreadPool::ChunkFn& fn) {
  global_pool().for_chunks(begin, end, grain, fn);
}

}  // namespace mar
