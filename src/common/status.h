// Minimal status/result types. The library avoids exceptions on hot
// paths (per-frame processing); fallible setup APIs return Status or
// Result<T> instead.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace mar {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnavailable,
  kResourceExhausted,
  kInternal,
  kDeadlineExceeded,
};

[[nodiscard]] constexpr const char* to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "?";
}

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "ok";
    return std::string(mar::to_string(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_{StatusCode::kInternal, "unset"};
};

}  // namespace mar
