// Strong identifier types shared across the library.
//
// The pipeline routes frames between clients, services, machines, and
// endpoints; using distinct wrapper types prevents the classic bug of
// passing a client id where a frame number was expected.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace mar {

// CRTP-free strongly typed integer id. Distinct Tag types produce distinct,
// non-convertible id types with value semantics and ordering.
template <typename Tag, typename Rep = std::uint64_t>
class Id {
 public:
  using rep_type = Rep;

  constexpr Id() = default;
  constexpr explicit Id(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;

  static constexpr Rep kInvalid = static_cast<Rep>(-1);
  static constexpr Id invalid() { return Id{kInvalid}; }

 private:
  Rep value_ = kInvalid;
};

struct ClientIdTag {};
struct FrameIdTag {};
struct ServiceIdTag {};
struct InstanceIdTag {};
struct MachineIdTag {};
struct EndpointIdTag {};
struct GpuIdTag {};

// A logical AR client (one video stream).
using ClientId = Id<ClientIdTag, std::uint32_t>;
// Monotone per-client frame number.
using FrameId = Id<FrameIdTag, std::uint64_t>;
// A logical pipeline service (primary, sift, ...).
using ServiceId = Id<ServiceIdTag, std::uint32_t>;
// One deployed replica of a service.
using InstanceId = Id<InstanceIdTag, std::uint32_t>;
// A physical (simulated) machine.
using MachineId = Id<MachineIdTag, std::uint32_t>;
// A datagram endpoint (client socket or service ingress).
using EndpointId = Id<EndpointIdTag, std::uint32_t>;
// A GPU device on a machine.
using GpuId = Id<GpuIdTag, std::uint32_t>;

// The five pipeline stages, in pipeline order. `kResult` marks a frame that
// has completed the pipeline and is being returned to the client.
enum class Stage : std::uint8_t {
  kPrimary = 0,
  kSift = 1,
  kEncoding = 2,
  kLsh = 3,
  kMatching = 4,
  kResult = 5,
};

inline constexpr int kNumStages = 5;

[[nodiscard]] constexpr const char* to_string(Stage s) {
  switch (s) {
    case Stage::kPrimary:
      return "primary";
    case Stage::kSift:
      return "sift";
    case Stage::kEncoding:
      return "encoding";
    case Stage::kLsh:
      return "lsh";
    case Stage::kMatching:
      return "matching";
    case Stage::kResult:
      return "result";
  }
  return "?";
}

// Next stage in the linear pipeline; kMatching -> kResult.
[[nodiscard]] constexpr Stage next_stage(Stage s) {
  return static_cast<Stage>(static_cast<std::uint8_t>(s) + 1);
}

}  // namespace mar

namespace std {
template <typename Tag, typename Rep>
struct hash<mar::Id<Tag, Rep>> {
  size_t operator()(mar::Id<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
