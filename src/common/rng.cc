#include "common/rng.h"

#include <cmath>

namespace mar {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % range);
}

double Rng::next_gaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  have_spare_ = true;
  return u * mul;
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * next_gaussian(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace mar
