// Simulation time. All simulated timestamps and durations are signed
// 64-bit nanosecond counts; helpers convert to/from human units.
#pragma once

#include <cstdint>

namespace mar {

// Absolute simulated time (ns since simulation start).
using SimTime = std::int64_t;
// Simulated duration in ns.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1'000;
inline constexpr SimDuration kMillisecond = 1'000'000;
inline constexpr SimDuration kSecond = 1'000'000'000;

[[nodiscard]] constexpr SimDuration micros(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}
[[nodiscard]] constexpr SimDuration millis(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}
[[nodiscard]] constexpr SimDuration seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

[[nodiscard]] constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
[[nodiscard]] constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace mar
