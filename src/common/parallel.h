// Process-wide work-sharing thread pool for the vision kernels.
//
// The pool is created once (first use) and reused for every frame —
// no thread spawn per call. Work is expressed as a deterministic chunk
// grid over an index range: chunk boundaries depend only on
// (begin, end, grain), never on the number of workers, so algorithms
// that reduce per-chunk partial results in chunk order produce
// bit-identical output at any pool size (including 1). Pure
// element-wise kernels are bit-identical for free.
//
// Sizing: `MAR_THREADS` env var when set (>= 1), otherwise
// std::thread::hardware_concurrency(). Tests and benchmarks can
// override at runtime with set_parallel_threads().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mar {

class ThreadPool {
 public:
  // fn(chunk_index, chunk_begin, chunk_end) over a half-open range.
  using ChunkFn = std::function<void(std::int64_t, std::int64_t, std::int64_t)>;
  // fn(chunk_begin, chunk_end).
  using RangeFn = std::function<void(std::int64_t, std::int64_t)>;

  // `threads` is the total number of lanes including the calling
  // thread; the pool spawns threads-1 workers. Clamped to >= 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return size_; }

  // Deterministic chunk count for a range: depends only on the range
  // and grain, never on the pool size.
  [[nodiscard]] static std::int64_t num_chunks(std::int64_t begin, std::int64_t end,
                                               std::int64_t grain);

  // Run fn over every chunk of [begin, end). Blocks until all chunks
  // complete; the calling thread participates. The first exception
  // thrown by fn is rethrown here (remaining chunks are skipped).
  // Nested calls from inside a chunk run serially over the same grid.
  void for_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const ChunkFn& fn);
  void for_range(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const RangeFn& fn);

 private:
  void worker_loop(int lane);
  // Claim and execute chunks of the current job until none remain.
  void run_chunks();

  const int size_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards job fields + cvs
  std::condition_variable cv_;     // wakes workers for a new job
  std::condition_variable done_cv_;  // wakes the caller on completion
  std::mutex job_mu_;              // serializes external submitters
  bool stop_ = false;
  std::uint64_t job_seq_ = 0;

  // Current job (valid while done_chunks_ < total_chunks_).
  const ChunkFn* fn_ = nullptr;
  std::int64_t begin_ = 0;
  std::int64_t end_ = 0;
  std::int64_t grain_ = 1;
  std::int64_t total_chunks_ = 0;
  std::atomic<std::int64_t> next_chunk_{0};
  std::atomic<std::int64_t> done_chunks_{0};
  std::atomic<int> active_workers_{0};
  std::atomic<bool> cancelled_{false};
  std::exception_ptr error_;
};

// The shared process-wide pool (created on first use).
ThreadPool& global_pool();

// Stable small id of the calling thread within the pool: 0 for any
// thread outside the pool (including the submitting thread), 1..N-1
// for pool workers. Used to tag trace events with the recording lane.
[[nodiscard]] int parallel_lane();

// Number of lanes in the global pool.
[[nodiscard]] int parallel_threads();

// Replace the global pool with one of `n` lanes (n <= 0 restores the
// MAR_THREADS / hardware_concurrency default). Not safe to call while
// another thread is inside parallel_for.
void set_parallel_threads(int n);

// Convenience wrappers over the global pool.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const ThreadPool::RangeFn& fn);
void parallel_for_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain,
                         const ThreadPool::ChunkFn& fn);

}  // namespace mar
