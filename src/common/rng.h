// Deterministic random number generation.
//
// Every stochastic element of the simulator (service time noise, link
// jitter, packet loss) draws from an explicitly seeded Rng so experiment
// runs are exactly reproducible.
#pragma once

#include <cstdint>

namespace mar {

// xoshiro256** with a splitmix64 seeder. Small, fast, and good enough for
// simulation noise; NOT cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double next_double();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Standard normal via Marsaglia polar method.
  double next_gaussian();

  // Gaussian with the given mean/stddev.
  double gaussian(double mean, double stddev);

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Exponentially distributed value with the given mean.
  double exponential(double mean);

  // Derive an independent child stream (for per-entity RNGs).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace mar
