#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace mar {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void log_write(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace internal
}  // namespace mar
