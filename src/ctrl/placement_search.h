// ctrl::PlacementSearch — deterministic multi-objective placement
// search over C1/C2/C12/C21-style plans.
//
// The genome is per-stage {site, replica count}; the search is a
// seeded small genetic algorithm in the shape of Herabad et al.
// (arXiv:2403.12849): elitist survival, tournament parents, point
// mutations over site/replica genes, memoized evaluations. Candidate
// plans are scored on four objectives — predicted E2E p99, delivered
// FPS against the target, machine count (the energy objective of
// arXiv:1611.09243: every occupied box and extra replica costs), and
// predicted cross-site state-transfer bytes — using the capacity
// engine's fluid model as the fast evaluator: one partition per
// distinct site, probes homed at the client attach point and served
// where the GPU-heavy stage lives, so split placements pay real
// cross-partition latency and scAtteR pays its state-fetch round trip.
//
// Same seed => same evaluation sequence => the same plan and digest,
// at any point in any process (the evaluator runs single-threaded and
// the partitioned engine is bit-identical regardless).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "common/rng.h"
#include "expt/capacity.h"
#include "expt/experiment.h"
#include "hw/cost_model.h"

namespace mar::ctrl {

struct CandidatePlan {
  std::array<expt::Site, kNumStages> site{};  // site of every replica of the stage
  std::array<int, kNumStages> replicas{};     // >= 1; primary is always 1

  [[nodiscard]] expt::SymbolicPlacement to_placement() const;
  [[nodiscard]] std::string label() const;  // e.g. "E2.E2x2.E2.E2.E2"
  // Packed genome (4 bits per stage: 2 site + 2 replica) — memo key
  // and digest input.
  [[nodiscard]] std::uint32_t key() const;

  static CandidatePlan uniform(expt::Site site);  // C1/C2/cloud-style
};

struct PlanScore {
  double e2e_p99_ms = 0.0;
  double fps = 0.0;
  double success = 0.0;
  int machines = 0;          // occupied sites + extra replicas
  double state_mbytes_s = 0.0;  // predicted cross-site transfer
  double score = 0.0;           // weighted objective; lower is better
};

struct PlacementSearchConfig {
  std::uint64_t seed = 1;
  core::PipelineMode mode = core::PipelineMode::kScatterPP;
  hw::CostModel costs = hw::CostModel::standard();
  double target_fps = 25.0;
  // Offered load the evaluator simulates: detailed probes at
  // target_fps, plus an optional fluid background population.
  int offered_clients = 6;
  double fluid_population = 0.0;
  int max_replicas = 3;
  // GA shape: population per generation, generations after the seeded
  // first one, elites carried over unchanged.
  int population = 6;
  int generations = 4;
  int elites = 2;
  SimDuration eval_warmup = seconds(1.0);
  SimDuration eval_duration = seconds(6.0);
  // Objective weights over normalized terms (lower total = better):
  // p99/budget, FPS shortfall vs target, (sites+extras)/3, MB/s / 10.
  double w_latency = 1.0;
  double w_fps = 2.0;
  double w_machines = 0.3;
  double w_state = 0.15;
  bool allow_cloud = true;
};

class PlacementSearch {
 public:
  explicit PlacementSearch(PlacementSearchConfig config);

  // Evaluate one plan on the capacity engine's fluid model (memoized).
  [[nodiscard]] PlanScore evaluate(const CandidatePlan& plan);

  struct Result {
    CandidatePlan best;
    PlanScore best_score;
    std::uint64_t evaluations = 0;  // capacity-engine runs (cache misses)
    std::uint64_t cache_hits = 0;
    std::uint64_t digest = 0;  // FNV over (key, score bits) in eval order
  };
  Result run();

  [[nodiscard]] const PlacementSearchConfig& config() const { return config_; }

 private:
  [[nodiscard]] CandidatePlan mutate(const CandidatePlan& parent, Rng& rng) const;
  PlanScore evaluate_tracked(const CandidatePlan& plan, Result& out);

  PlacementSearchConfig config_;
  std::map<std::uint32_t, PlanScore> memo_;
};

}  // namespace mar::ctrl
