// ctrl::ScalePolicy — the control plane's scaling actuator, for the
// application-aware orchestration study (paper §6 and Insights I/IV).
//
// The scale-*up* arm is the former expt::AutoScaler: two signals over
// the same actuation (add a replica of the worst stage):
//  * kHardware   — what today's orchestrators can see: scale when a
//    machine's GPU occupancy crosses a threshold. Under scAtteR-style
//    overload utilization stays LOW (services stall on drops), so this
//    scaler never reacts.
//  * kApplication — reads the sidecar's QoS metrics (queue drop ratio)
//    through the proposed virtualization-boundary hook and scales the
//    stage that is actually shedding load.
//
// The scale-*down* arm is new: drain-before-decommission. A surplus
// replica is marked draining (the orchestrator stops routing new
// frames to it immediately), the policy polls it until in-flight
// frames and sidecar state settle (idle, empty queue, no new arrivals
// for drain_settle), then retires it through the orchestrator's
// graveyard-contract path. A drain that does not settle by
// drain_deadline is force-retired (counted separately) so a stuck
// replica cannot pin a machine forever.
//
// Every action is exported as mar_ctrl_* counters and control-track
// trace instants — fixing the old AutoScaler's silent ScaleEvents.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "expt/deployment.h"
#include "expt/experiment.h"

namespace mar::ctrl {

class ScalePolicy {
 public:
  enum class Signal { kHardware, kApplication };

  struct Config {
    Signal signal = Signal::kApplication;
    // kHardware: mean normalized GPU occupancy that triggers a scale-up.
    // kApplication: per-stage drop ratio (drops/received per interval).
    double up_threshold = 0.10;
    // Scale-down candidate: a stage whose interval drop ratio stays
    // under down_threshold AND whose per-replica ingress is under
    // down_ingress_fps may give a replica back (never below
    // min_replicas_per_stage). down_ingress_fps == 0 disables the
    // periodic down arm (the ReOptimizer can still drive scale_down()).
    double down_threshold = 0.02;
    double down_ingress_fps = 0.0;
    SimDuration interval = seconds(2.0);
    int max_replicas_per_stage = 3;
    int min_replicas_per_stage = 1;
    // Machine that receives spilled replicas.
    expt::Site spill_site = expt::Site::kE1;
    // Drain monitor: poll cadence, how long the replica must sit fully
    // quiet (not busy, empty queue, no new arrivals) before retiring,
    // and the deadline after which it is retired regardless.
    SimDuration drain_poll = millis(100.0);
    SimDuration drain_settle = millis(300.0);
    SimDuration drain_deadline = seconds(10.0);
  };

  struct Event {
    enum class Kind { kScaleUp, kDrainBegin, kRetire, kForcedRetire };
    SimTime t = 0;
    Kind kind = Kind::kScaleUp;
    Stage stage = Stage::kPrimary;
    InstanceId instance = InstanceId::invalid();
    double observed_signal = 0.0;
  };

  // One signal scan's view of a stage: interval ingress per live
  // replica and interval drop ratio.
  struct StageWindow {
    double ingress_fps = 0.0;
    double drop_ratio = 0.0;
  };

  struct Reading {
    Stage stage = Stage::kPrimary;
    double signal = 0.0;
  };

  ScalePolicy(expt::Deployment& deployment, Config config);
  ~ScalePolicy();

  // Periodic standalone controller: every interval, scan the signal
  // and scale up (plus the down arm when down_ingress_fps > 0). Run
  // either this OR a ctrl::ReOptimizer (which drives the actuators
  // below itself) — both would double-consume the delta-based signal.
  void start();

  // --- sensors ----------------------------------------------------------
  // Scan the per-stage signals since the previous scan (delta-based;
  // resynchronizes across stats-window resets). Always refreshes
  // stage_window(); the returned worst reading follows config().signal.
  [[nodiscard]] Reading read_worst();
  [[nodiscard]] const StageWindow& stage_window(Stage s) const {
    return window_[static_cast<std::size_t>(s)];
  }

  // --- actuators --------------------------------------------------------
  // Add a replica of `stage` on the spill site. Returns the new
  // instance, or invalid() when the stage is at max_replicas_per_stage
  // (or is the primary, which never scales).
  InstanceId scale_up(Stage stage, double observed_signal);
  // Stage best able to give a replica back under the last scan, by the
  // down_threshold/down_ingress_fps criteria; false when none can.
  [[nodiscard]] bool scale_down_candidate(Stage* stage, double* ingress_fps) const;
  // Drain the newest live replica of `stage` (never below
  // min_replicas_per_stage); retires once settled or at the deadline.
  bool scale_down(Stage stage, double observed_signal);
  // Drain a specific replica (example/demo hook).
  bool drain(InstanceId id);

  // --- introspection ----------------------------------------------------
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::uint64_t scale_ups() const { return scale_ups_; }
  [[nodiscard]] std::uint64_t drains_begun() const { return drains_begun_; }
  [[nodiscard]] std::uint64_t retired() const { return retired_; }
  [[nodiscard]] std::uint64_t forced_retires() const { return forced_retires_; }
  [[nodiscard]] std::uint64_t drains_active() const { return drains_active_; }
  // Frames lost on the drain path: drops recorded by a draining
  // replica between drain-begin and retire, plus frames still queued
  // or in service when a deadline forced the retire. A clean drain
  // contributes zero.
  [[nodiscard]] std::uint64_t drain_frames_lost() const { return drain_frames_lost_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] expt::Deployment& deployment() { return deployment_; }

 private:
  struct Drain {
    InstanceId id = InstanceId::invalid();
    Stage stage = Stage::kPrimary;
    SimTime started = 0;
    SimTime quiet_since = -1;
    std::uint64_t last_received = 0;
    std::uint64_t dropped_at_begin = 0;
    bool done = false;
  };

  void tick();
  void poll_drain(std::size_t index);
  [[nodiscard]] MachineId spill_machine() const;

  expt::Deployment& deployment_;
  Config config_;
  std::vector<Event> events_;
  // Per-stage counters at the previous scan (delta-based signals).
  struct StageCounters {
    std::uint64_t received = 0;
    std::uint64_t dropped = 0;
  };
  std::array<StageCounters, kNumStages> last_{};
  std::array<StageWindow, kNumStages> window_{};
  SimTime last_scan_t_ = 0;
  std::vector<Drain> drains_;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t drains_begun_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t forced_retires_ = 0;
  std::uint64_t drains_active_ = 0;
  std::uint64_t drain_frames_lost_ = 0;
  bool running_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mar::ctrl
