// ctrl::ReOptimizer — the closed loop. Every tick it reads the
// sensors (SloWatchdog breach/clear state, the ScalePolicy's per-stage
// drop/ingress scan, in-flight failover on the fault plane), decides
// with hysteresis and a cooldown, and actuates:
//
//   sustained breach + shedding stage  -> scale UP the worst stage
//   scale-up capped repeatedly         -> (optional) PlacementSearch
//                                         replan, applied live via
//                                         Orchestrator::move_instance
//   sustained quiet + idle replicas    -> scale DOWN (drain + retire)
//
// Guard rails: actions respect a cooldown (no thrash), a breach must
// persist breach_ticks consecutive ticks (no one-window panic), quiet
// must persist clear_ticks ticks, and while a failover is in flight
// (suspected > respawned) the loop holds — a crash mid-cooldown is the
// fault plane's to fix first, and blocked decisions are counted
// (mar_ctrl_blocked_total{reason}) rather than silently skipped.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "ctrl/placement_search.h"
#include "ctrl/scale_policy.h"
#include "expt/slo.h"

namespace mar::ctrl {

struct ReOptimizerConfig {
  SimDuration interval = millis(500.0);
  // Hysteresis: consecutive violating ticks before acting up,
  // consecutive quiet ticks before acting down.
  int breach_ticks = 3;
  int clear_ticks = 6;
  SimDuration cooldown = seconds(3.0);
  // Replan arm: after this many capped scale-up attempts, run a
  // PlacementSearch and apply the winning plan via move_instance.
  bool allow_replan = false;
  int replan_after_blocked = 3;
  PlacementSearchConfig search;
};

struct CtrlAction {
  enum class Kind { kScaleUp, kScaleDown, kReplan, kBlocked };
  SimTime t = 0;
  Kind kind = Kind::kScaleUp;
  Stage stage = Stage::kPrimary;
  double signal = 0.0;
  const char* reason = "";  // blocked actions: "cooldown" | "fault" | "capped"
};

class ReOptimizer {
 public:
  // `watchdog` may be null: the loop then acts on the drop-ratio scan
  // alone. With a watchdog, scale-up requires breach AND a shedding
  // stage (a breach with clean queues — e.g. clients leaving — is not
  // a capacity problem).
  ReOptimizer(ScalePolicy& policy, expt::SloWatchdog* watchdog, ReOptimizerConfig config);
  ~ReOptimizer();

  void start();

  [[nodiscard]] const std::vector<CtrlAction>& actions() const { return actions_; }
  [[nodiscard]] std::uint64_t scale_up_actions() const { return scale_ups_; }
  [[nodiscard]] std::uint64_t scale_down_actions() const { return scale_downs_; }
  [[nodiscard]] std::uint64_t replans() const { return replans_; }
  [[nodiscard]] std::uint64_t blocked() const { return blocked_; }
  [[nodiscard]] const ReOptimizerConfig& config() const { return config_; }

 private:
  void tick();
  void record_blocked(SimTime now, Stage stage, double signal, const char* reason);
  void try_replan(SimTime now);

  ScalePolicy& policy_;
  expt::SloWatchdog* watchdog_;
  ReOptimizerConfig config_;
  std::vector<CtrlAction> actions_;
  int breach_run_ = 0;
  int clear_run_ = 0;
  int capped_run_ = 0;
  SimTime last_action_t_ = std::numeric_limits<SimTime>::min() / 2;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  std::uint64_t replans_ = 0;
  std::uint64_t blocked_ = 0;
  bool running_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mar::ctrl
