// ctrl::ReOptimizer — the closed loop. Every tick it reads the
// sensors (SloWatchdog breach/clear state, the ScalePolicy's per-stage
// drop/ingress scan, in-flight failover on the fault plane), decides
// with hysteresis and a cooldown, and actuates:
//
//   sustained breach + shedding stage  -> scale UP the worst stage
//   scale-up capped repeatedly         -> (optional) PlacementSearch
//                                         replan, applied live via
//                                         Orchestrator::move_instance
//   sustained quiet + idle replicas    -> scale DOWN (drain + retire)
//
// Guard rails: actions respect a cooldown (no thrash), a breach must
// persist breach_ticks consecutive ticks (no one-window panic), quiet
// must persist clear_ticks ticks, and while a failover is in flight
// (suspected > respawned) the loop holds — a crash mid-cooldown is the
// fault plane's to fix first, and blocked decisions are counted
// (mar_ctrl_blocked_total{reason}) rather than silently skipped.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/placement_search.h"
#include "ctrl/scale_policy.h"
#include "expt/attribution.h"
#include "expt/slo.h"

namespace mar::ctrl {

struct ReOptimizerConfig {
  SimDuration interval = millis(500.0);
  // Hysteresis: consecutive violating ticks before acting up,
  // consecutive quiet ticks before acting down.
  int breach_ticks = 3;
  int clear_ticks = 6;
  SimDuration cooldown = seconds(3.0);
  // Replan arm: after this many capped scale-up attempts, run a
  // PlacementSearch and apply the winning plan via move_instance.
  bool allow_replan = false;
  int replan_after_blocked = 3;
  PlacementSearchConfig search;
  // Predictive arm (requires a watchdog): scale up BEFORE drops appear
  // when the fast burn window and a rising ingress trend agree for
  // predict_ticks consecutive ticks. The latency-p99 SLO breach is the
  // leading indicator — queues lengthen before frames shed — so the
  // predictive loop front-runs the reactive drop-ratio trigger. A flat
  // workload under capacity never breaches, so it never false-fires.
  bool predictive = false;
  expt::BurnRateConfig burn;
  double predict_burn_threshold = 1.0;     // fast-window burn >= this
  double predict_trend_fps_per_s = 0.5;    // ingress slope >= this
  int predict_ticks = 2;                   // consecutive agreeing ticks
};

struct CtrlAction {
  enum class Kind { kScaleUp, kScaleDown, kReplan, kBlocked };
  SimTime t = 0;
  Kind kind = Kind::kScaleUp;
  Stage stage = Stage::kPrimary;
  double signal = 0.0;
  // Blocked actions: "cooldown" | "fault" | "capped". Scale-ups fired
  // by the predictive arm carry "predictive"; reactive ones "".
  const char* reason = "";
};

[[nodiscard]] const char* to_string(CtrlAction::Kind kind);

class ReOptimizer {
 public:
  // `watchdog` may be null: the loop then acts on the drop-ratio scan
  // alone. With a watchdog, scale-up requires breach AND a shedding
  // stage (a breach with clean queues — e.g. clients leaving — is not
  // a capacity problem).
  ReOptimizer(ScalePolicy& policy, expt::SloWatchdog* watchdog, ReOptimizerConfig config);
  ~ReOptimizer();

  void start();

  [[nodiscard]] const std::vector<CtrlAction>& actions() const { return actions_; }
  [[nodiscard]] std::uint64_t scale_up_actions() const { return scale_ups_; }
  [[nodiscard]] std::uint64_t scale_down_actions() const { return scale_downs_; }
  [[nodiscard]] std::uint64_t predictive_scale_ups() const { return predictive_ups_; }
  [[nodiscard]] std::uint64_t replans() const { return replans_; }
  [[nodiscard]] std::uint64_t blocked() const { return blocked_; }
  [[nodiscard]] const ReOptimizerConfig& config() const { return config_; }
  // Forecasting state (predictive arm): the burn windows + trend fit
  // the loop feeds each tick. Valid whenever config().predictive.
  [[nodiscard]] const expt::BurnRate& burn_rate() const { return burn_; }

 private:
  void tick();
  [[nodiscard]] Stage predict_target_stage() const;
  void record_blocked(SimTime now, Stage stage, double signal, const char* reason);
  void try_replan(SimTime now);

  ScalePolicy& policy_;
  expt::SloWatchdog* watchdog_;
  ReOptimizerConfig config_;
  std::vector<CtrlAction> actions_;
  int breach_run_ = 0;
  int clear_run_ = 0;
  int capped_run_ = 0;
  int predict_run_ = 0;
  expt::BurnRate burn_;
  SimTime last_action_t_ = std::numeric_limits<SimTime>::min() / 2;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
  std::uint64_t predictive_ups_ = 0;
  std::uint64_t replans_ = 0;
  std::uint64_t blocked_ = 0;
  bool running_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

// Last `n` control decisions, newest last, one line each — the
// /statusz "recent actions" block (today the decisions are only
// visible as counters on /metrics).
[[nodiscard]] std::string render_recent_actions(const ReOptimizer& reopt,
                                                std::size_t n = 10);

}  // namespace mar::ctrl
