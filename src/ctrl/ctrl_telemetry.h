// Shared telemetry for control-plane actions: every scale/drain/replan
// decision is exported as a mar_ctrl_* counter and, when tracing is
// on, as an instant on the dedicated control-plane track so forensics
// timelines show *why* a replica appeared or drained next to the
// frames it affected.
#pragma once

#include <string>

#include "common/types.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mar::ctrl {

inline void ctrl_count(const char* name, const char* help, Stage stage) {
  telemetry::MetricRegistry::instance()
      .counter(name, help, {{"stage", std::string(to_string(stage))}})
      .inc();
}

inline void ctrl_count(const char* name, const char* help, const char* reason) {
  telemetry::MetricRegistry::instance()
      .counter(name, help, {{"reason", std::string(reason)}})
      .inc();
}

inline void ctrl_trace(const char* what, SimTime ts, Stage stage, double value = 0.0) {
  auto& tracer = telemetry::Tracer::instance();
  if (tracer.enabled()) {
    tracer.instant(telemetry::kCtrlTrack, what, ts, ClientId{0}, FrameId{0}, stage, value);
  }
}

}  // namespace mar::ctrl
