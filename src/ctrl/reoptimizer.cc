#include "ctrl/reoptimizer.h"

#include <array>

#include "ctrl/ctrl_telemetry.h"

namespace mar::ctrl {

ReOptimizer::ReOptimizer(ScalePolicy& policy, expt::SloWatchdog* watchdog,
                         ReOptimizerConfig config)
    : policy_(policy), watchdog_(watchdog), config_(config) {}

ReOptimizer::~ReOptimizer() { *alive_ = false; }

void ReOptimizer::start() {
  if (running_) return;
  running_ = true;
  telemetry::Tracer::instance().set_track_name(telemetry::kCtrlTrack, "control plane");
  auto& rt = policy_.deployment().testbed().runtime();
  rt.schedule_after(config_.interval, [this, alive = alive_] {
    if (*alive) tick();
  });
}

void ReOptimizer::record_blocked(SimTime now, Stage stage, double signal,
                                 const char* reason) {
  ++blocked_;
  actions_.push_back(CtrlAction{now, CtrlAction::Kind::kBlocked, stage, signal, reason});
  ctrl_count("mar_ctrl_blocked_total",
             "control actions withheld (cooldown, fault in flight, replica cap)", reason);
  ctrl_trace(telemetry::spans::kCtrlBlocked, now, stage, signal);
}

void ReOptimizer::try_replan(SimTime now) {
  auto& deployment = policy_.deployment();
  auto& orch = deployment.orchestrator();
  PlacementSearch search(config_.search);
  const PlacementSearch::Result res = search.run();
  ++replans_;
  capped_run_ = 0;
  breach_run_ = 0;
  last_action_t_ = now;
  actions_.push_back(CtrlAction{now, CtrlAction::Kind::kReplan, Stage::kPrimary,
                                res.best_score.score, ""});
  ctrl_count("mar_ctrl_replan_total",
             "placement searches run and applied by the closed loop", "search");
  ctrl_trace(telemetry::spans::kCtrlReplan, now, Stage::kPrimary, res.best_score.score);

  // Apply: rebuild replicas whose stage the winning plan places on a
  // different site (same InstanceId, respawn machinery). Draining or
  // retired replicas are left to finish their exit.
  auto machine_for = [&](expt::Site site) {
    switch (site) {
      case expt::Site::kE1:
        return deployment.testbed().e1();
      case expt::Site::kE2:
        return deployment.testbed().e2();
      case expt::Site::kCloud:
        return deployment.testbed().cloud();
    }
    return deployment.testbed().e1();
  };
  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    const MachineId target = machine_for(res.best.site[static_cast<std::size_t>(s)]);
    for (InstanceId id : orch.instances_of(stage)) {
      if (orch.is_retired(id) || orch.is_draining(id)) continue;
      if (orch.host(id).machine().id() == target) continue;
      orch.move_instance(id, target);
    }
  }
}

void ReOptimizer::tick() {
  auto& deployment = policy_.deployment();
  auto& orch = deployment.orchestrator();
  const SimTime now = deployment.testbed().runtime().now();

  const ScalePolicy::Reading r = policy_.read_worst();
  const double up_threshold = policy_.config().up_threshold;
  // Overload = the watchdog says frames miss their budget AND a stage
  // is actually shedding load. Without a watchdog the drop scan alone
  // decides. A breach with clean queues (e.g. half the clients walked
  // away and the per-client FPS denominator is stale) must not trigger
  // a pointless scale-up.
  const bool shedding = r.signal >= up_threshold;
  const bool overloaded = watchdog_ ? (watchdog_->violating() && shedding) : shedding;
  breach_run_ = overloaded ? breach_run_ + 1 : 0;
  clear_run_ = overloaded ? 0 : clear_run_ + 1;

  const bool fault_hold =
      orch.failover_enabled() && orch.failover_suspected() > orch.failover_respawns();
  const bool cooling = now - last_action_t_ < config_.cooldown;

  if (breach_run_ >= config_.breach_ticks) {
    if (fault_hold) {
      record_blocked(now, r.stage, r.signal, "fault");
    } else if (cooling) {
      record_blocked(now, r.stage, r.signal, "cooldown");
    } else {
      const InstanceId id = policy_.scale_up(r.stage, r.signal);
      if (id.valid()) {
        ++scale_ups_;
        capped_run_ = 0;
        breach_run_ = 0;
        last_action_t_ = now;
        actions_.push_back(
            CtrlAction{now, CtrlAction::Kind::kScaleUp, r.stage, r.signal, ""});
      } else {
        ++capped_run_;
        if (config_.allow_replan && capped_run_ >= config_.replan_after_blocked) {
          try_replan(now);
        } else {
          record_blocked(now, r.stage, r.signal, "capped");
        }
      }
    }
  } else if (clear_run_ >= config_.clear_ticks && !fault_hold && !cooling) {
    Stage stage = Stage::kPrimary;
    double ingress = 0.0;
    if (policy_.scale_down_candidate(&stage, &ingress) &&
        policy_.scale_down(stage, ingress)) {
      ++scale_downs_;
      clear_run_ = 0;
      last_action_t_ = now;
      actions_.push_back(CtrlAction{now, CtrlAction::Kind::kScaleDown, stage, ingress, ""});
    }
  }

  deployment.testbed().runtime().schedule_after(config_.interval, [this, alive = alive_] {
    if (*alive) tick();
  });
}

}  // namespace mar::ctrl
