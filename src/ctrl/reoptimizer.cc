#include "ctrl/reoptimizer.h"

#include <array>
#include <cstdio>

#include "ctrl/ctrl_telemetry.h"

namespace mar::ctrl {

const char* to_string(CtrlAction::Kind kind) {
  switch (kind) {
    case CtrlAction::Kind::kScaleUp:
      return "scale_up";
    case CtrlAction::Kind::kScaleDown:
      return "scale_down";
    case CtrlAction::Kind::kReplan:
      return "replan";
    case CtrlAction::Kind::kBlocked:
      return "blocked";
  }
  return "?";
}

ReOptimizer::ReOptimizer(ScalePolicy& policy, expt::SloWatchdog* watchdog,
                         ReOptimizerConfig config)
    : policy_(policy), watchdog_(watchdog), config_(config), burn_(config.burn) {}

ReOptimizer::~ReOptimizer() { *alive_ = false; }

void ReOptimizer::start() {
  if (running_) return;
  running_ = true;
  telemetry::Tracer::instance().set_track_name(telemetry::kCtrlTrack, "control plane");
  auto& rt = policy_.deployment().testbed().runtime();
  rt.schedule_after(config_.interval, [this, alive = alive_] {
    if (*alive) tick();
  });
}

void ReOptimizer::record_blocked(SimTime now, Stage stage, double signal,
                                 const char* reason) {
  ++blocked_;
  actions_.push_back(CtrlAction{now, CtrlAction::Kind::kBlocked, stage, signal, reason});
  ctrl_count("mar_ctrl_blocked_total",
             "control actions withheld (cooldown, fault in flight, replica cap)", reason);
  ctrl_trace(telemetry::spans::kCtrlBlocked, now, stage, signal);
}

void ReOptimizer::try_replan(SimTime now) {
  auto& deployment = policy_.deployment();
  auto& orch = deployment.orchestrator();
  PlacementSearch search(config_.search);
  const PlacementSearch::Result res = search.run();
  ++replans_;
  capped_run_ = 0;
  breach_run_ = 0;
  last_action_t_ = now;
  actions_.push_back(CtrlAction{now, CtrlAction::Kind::kReplan, Stage::kPrimary,
                                res.best_score.score, ""});
  ctrl_count("mar_ctrl_replan_total",
             "placement searches run and applied by the closed loop", "search");
  ctrl_trace(telemetry::spans::kCtrlReplan, now, Stage::kPrimary, res.best_score.score);

  // Apply: rebuild replicas whose stage the winning plan places on a
  // different site (same InstanceId, respawn machinery). Draining or
  // retired replicas are left to finish their exit.
  auto machine_for = [&](expt::Site site) {
    switch (site) {
      case expt::Site::kE1:
        return deployment.testbed().e1();
      case expt::Site::kE2:
        return deployment.testbed().e2();
      case expt::Site::kCloud:
        return deployment.testbed().cloud();
    }
    return deployment.testbed().e1();
  };
  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    const MachineId target = machine_for(res.best.site[static_cast<std::size_t>(s)]);
    for (InstanceId id : orch.instances_of(stage)) {
      if (orch.is_retired(id) || orch.is_draining(id)) continue;
      if (orch.host(id).machine().id() == target) continue;
      orch.move_instance(id, target);
    }
  }
}

Stage ReOptimizer::predict_target_stage() const {
  // Before drops appear the drop-ratio scan is silent, so the
  // predictive arm targets the stage with the highest per-replica
  // ingress — the fewest replicas per offered frame is the bottleneck.
  // Primary never scales, so it is excluded.
  Stage best = Stage::kSift;
  double best_fps = -1.0;
  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    if (stage == Stage::kPrimary) continue;
    const double fps = policy_.stage_window(stage).ingress_fps;
    if (fps > best_fps) {
      best_fps = fps;
      best = stage;
    }
  }
  return best;
}

void ReOptimizer::tick() {
  auto& deployment = policy_.deployment();
  auto& orch = deployment.orchestrator();
  const SimTime now = deployment.testbed().runtime().now();

  const ScalePolicy::Reading r = policy_.read_worst();
  const double up_threshold = policy_.config().up_threshold;
  // Overload = the watchdog says frames miss their budget AND a stage
  // is actually shedding load. Without a watchdog the drop scan alone
  // decides. A breach with clean queues (e.g. half the clients walked
  // away and the per-client FPS denominator is stale) must not trigger
  // a pointless scale-up.
  const bool shedding = r.signal >= up_threshold;
  const bool overloaded = watchdog_ ? (watchdog_->violating() && shedding) : shedding;
  breach_run_ = overloaded ? breach_run_ + 1 : 0;
  clear_run_ = overloaded ? 0 : clear_run_ + 1;

  // Predictive arm: feed the burn windows every tick; fire when the
  // fast window burns AND ingress is rising, for predict_ticks in a
  // row. Acting on the latency breach (a leading indicator — queues
  // lengthen before frames shed) front-runs the drop-ratio trigger.
  bool predict_fire = false;
  double fast = 0.0;
  if (config_.predictive && watchdog_ != nullptr) {
    const double ingress = policy_.stage_window(Stage::kPrimary).ingress_fps;
    burn_.observe(now, watchdog_->violating(), ingress);
    burn_.publish(now);
    fast = burn_.fast_burn(now);
    const double trend = burn_.ingress_trend_fps_per_s(now);
    const bool agree = fast >= config_.predict_burn_threshold &&
                       trend >= config_.predict_trend_fps_per_s;
    predict_run_ = agree ? predict_run_ + 1 : 0;
    predict_fire = predict_run_ >= config_.predict_ticks;
  }

  const bool fault_hold =
      orch.failover_enabled() && orch.failover_suspected() > orch.failover_respawns();
  const bool cooling = now - last_action_t_ < config_.cooldown;

  if (breach_run_ >= config_.breach_ticks || predict_fire) {
    // The reactive trigger knows the shedding stage; a purely
    // predictive firing picks the bottleneck by per-replica ingress.
    const bool predictive_only = predict_fire && breach_run_ < config_.breach_ticks;
    const Stage stage = predictive_only ? predict_target_stage() : r.stage;
    const double signal = predictive_only ? fast : r.signal;
    if (fault_hold) {
      record_blocked(now, stage, signal, "fault");
    } else if (cooling) {
      record_blocked(now, stage, signal, "cooldown");
    } else {
      const InstanceId id = policy_.scale_up(stage, signal);
      if (id.valid()) {
        ++scale_ups_;
        capped_run_ = 0;
        breach_run_ = 0;
        predict_run_ = 0;
        last_action_t_ = now;
        actions_.push_back(CtrlAction{now, CtrlAction::Kind::kScaleUp, stage, signal,
                                      predictive_only ? "predictive" : ""});
        if (predictive_only) {
          ++predictive_ups_;
          ctrl_count("mar_ctrl_predictive_total",
                     "scale-ups fired by the burn-rate + ingress-trend forecast "
                     "before the reactive drop trigger",
                     stage);
          ctrl_trace(telemetry::spans::kCtrlPredict, now, stage, signal);
        }
      } else {
        ++capped_run_;
        if (config_.allow_replan && capped_run_ >= config_.replan_after_blocked) {
          try_replan(now);
        } else {
          record_blocked(now, stage, signal, "capped");
        }
      }
    }
  } else if (clear_run_ >= config_.clear_ticks && !fault_hold && !cooling) {
    Stage stage = Stage::kPrimary;
    double ingress = 0.0;
    if (policy_.scale_down_candidate(&stage, &ingress) &&
        policy_.scale_down(stage, ingress)) {
      ++scale_downs_;
      clear_run_ = 0;
      last_action_t_ = now;
      actions_.push_back(CtrlAction{now, CtrlAction::Kind::kScaleDown, stage, ingress, ""});
    }
  }

  deployment.testbed().runtime().schedule_after(config_.interval, [this, alive = alive_] {
    if (*alive) tick();
  });
}

std::string render_recent_actions(const ReOptimizer& reopt, std::size_t n) {
  const auto& actions = reopt.actions();
  std::string out = "control plane: recent actions (newest last)\n";
  if (actions.empty()) {
    out += "  (none)\n";
    return out;
  }
  const std::size_t first = actions.size() > n ? actions.size() - n : 0;
  char buf[160];
  for (std::size_t i = first; i < actions.size(); ++i) {
    const CtrlAction& a = actions[i];
    const char* why = a.reason[0] != '\0'                        ? a.reason
                      : a.kind == CtrlAction::Kind::kScaleUp     ? "reactive"
                      : a.kind == CtrlAction::Kind::kScaleDown   ? "quiet"
                      : a.kind == CtrlAction::Kind::kReplan      ? "capped"
                                                                 : "-";
    std::snprintf(buf, sizeof(buf), "  t=%8.2fs %-10s stage=%-9s signal=%.3f reason=%s\n",
                  to_millis(a.t) / 1000.0, to_string(a.kind), to_string(a.stage), a.signal,
                  why);
    out += buf;
  }
  return out;
}

}  // namespace mar::ctrl
