#include "ctrl/placement_search.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "core/frame_flow.h"
#include "expt/testbed.h"

namespace mar::ctrl {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

hw::MachineSpec spec_for(expt::Site site) {
  switch (site) {
    case expt::Site::kE1:
      return hw::MachineSpec::edge1();
    case expt::Site::kE2:
      return hw::MachineSpec::edge2();
    case expt::Site::kCloud:
      return hw::MachineSpec::cloud();
  }
  return hw::MachineSpec::edge2();
}

// One-way latencies mirroring the Testbed's default link table, so the
// fast evaluator prices a candidate split the way the full DES would.
SimDuration access_latency_to(expt::Site site) {
  const expt::TestbedConfig tb{};
  switch (site) {
    case expt::Site::kE1:
      return tb.client_e1.latency;
    case expt::Site::kE2:
      return tb.client_e1.latency + tb.e1_e2.latency;
    case expt::Site::kCloud:
      return tb.client_cloud.latency;
  }
  return tb.client_e1.latency;
}

SimDuration cross_latency_between(expt::Site a, expt::Site b) {
  const expt::TestbedConfig tb{};
  if (a == b) return 0;
  if (a == expt::Site::kCloud || b == expt::Site::kCloud) return tb.edge_cloud.latency;
  return tb.e1_e2.latency;
}

Stage gpu_heavy_stage(const hw::CostModel& costs) {
  Stage heavy = Stage::kSift;
  SimDuration best = 0;
  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    if (costs.stage(stage).gpu_time > best) {
      best = costs.stage(stage).gpu_time;
      heavy = stage;
    }
  }
  return heavy;
}

}  // namespace

expt::SymbolicPlacement CandidatePlan::to_placement() const {
  expt::SymbolicPlacement p;
  for (int s = 0; s < kNumStages; ++s) {
    const int n = std::max(replicas[static_cast<std::size_t>(s)], 1);
    for (int r = 0; r < n; ++r) {
      p.replicas[static_cast<std::size_t>(s)].push_back(site[static_cast<std::size_t>(s)]);
    }
  }
  return p;
}

std::string CandidatePlan::label() const {
  std::string out;
  for (int s = 0; s < kNumStages; ++s) {
    if (s) out += '.';
    out += expt::to_string(site[static_cast<std::size_t>(s)]);
    if (replicas[static_cast<std::size_t>(s)] > 1) {
      out += 'x';
      out += std::to_string(replicas[static_cast<std::size_t>(s)]);
    }
  }
  return out;
}

std::uint32_t CandidatePlan::key() const {
  std::uint32_t k = 0;
  for (int s = 0; s < kNumStages; ++s) {
    const auto site_bits = static_cast<std::uint32_t>(site[static_cast<std::size_t>(s)]) & 3u;
    const auto rep_bits =
        static_cast<std::uint32_t>(std::clamp(replicas[static_cast<std::size_t>(s)], 1, 4) - 1) &
        3u;
    k |= (site_bits | (rep_bits << 2)) << (s * 4);
  }
  return k;
}

CandidatePlan CandidatePlan::uniform(expt::Site site) {
  CandidatePlan p;
  p.site.fill(site);
  p.replicas.fill(1);
  return p;
}

PlacementSearch::PlacementSearch(PlacementSearchConfig config) : config_(std::move(config)) {}

PlanScore PlacementSearch::evaluate(const CandidatePlan& plan) {
  const auto hit = memo_.find(plan.key());
  if (hit != memo_.end()) return hit->second;

  // Distinct sites, in stage order, define the evaluator's partitions.
  std::vector<expt::Site> sites;
  std::array<int, kNumStages> part_of{};
  for (int s = 0; s < kNumStages; ++s) {
    const expt::Site st = plan.site[static_cast<std::size_t>(s)];
    auto it = std::find(sites.begin(), sites.end(), st);
    if (it == sites.end()) {
      part_of[static_cast<std::size_t>(s)] = static_cast<int>(sites.size());
      sites.push_back(st);
    } else {
      part_of[static_cast<std::size_t>(s)] = static_cast<int>(it - sites.begin());
    }
  }

  const Stage heavy = gpu_heavy_stage(config_.costs);
  const int heavy_reps = std::clamp(
      plan.replicas[static_cast<std::size_t>(heavy)], 1, std::max(config_.max_replicas, 1));

  expt::CapacityConfig cc;
  cc.mode = config_.mode;
  cc.machines = static_cast<int>(sites.size());
  cc.costs = config_.costs;
  // The GPU-heavy stage's site is the bottleneck box; replicating that
  // stage multiplies its slot pool (extra boxes show up in the machine
  // objective instead of as magically bigger GPUs elsewhere).
  cc.machine_spec = spec_for(plan.site[static_cast<std::size_t>(heavy)]);
  for (auto& g : cc.machine_spec.gpus) g.slots *= static_cast<std::uint32_t>(heavy_reps);
  cc.access_latency = access_latency_to(plan.site[0]);
  // The partitioned engine prices every cross hop with one latency;
  // use the smallest used pair so the conservative lookahead stays
  // valid (an underestimate for mixed edge+cloud splits — the latency
  // objective still separates them via the access link).
  SimDuration cross = millis(2.0);
  bool first = true;
  for (std::size_t a = 0; a < sites.size(); ++a) {
    for (std::size_t b = a + 1; b < sites.size(); ++b) {
      const SimDuration l = cross_latency_between(sites[a], sites[b]);
      if (first || l < cross) {
        cross = l;
        first = false;
      }
    }
  }
  cc.cross_latency = cross;
  cc.population.mean_population = config_.fluid_population;
  cc.warmup = config_.eval_warmup;
  cc.duration = config_.eval_duration;
  cc.target_fps = config_.target_fps;
  cc.seed = config_.seed;
  cc.timeline_interval = 0;
  // Probes sit where the plan puts the work: homed at the client
  // attach partition (first stage's site), served by the GPU-heavy
  // stage's partition — a split plan pays the cross-partition hop (and
  // scAtteR its state-fetch round trip) on every probe frame.
  const int home = part_of[0];
  const int serve = part_of[static_cast<std::size_t>(heavy)];
  for (int i = 0; i < std::max(config_.offered_clients, 1); ++i) {
    cc.probe_set.push_back(expt::CapacityProbeSpec{home, serve, config_.target_fps});
  }

  expt::CapacityEngine engine(cc);
  const expt::CapacityResult r = engine.run(/*threads=*/1);

  PlanScore s;
  s.e2e_p99_ms = r.detailed_e2e_p99_ms;
  s.fps = r.detailed_fps_mean;
  s.success = r.detailed_success_rate;
  int extras = 0;
  for (int st = 0; st < kNumStages; ++st) {
    extras += std::max(plan.replicas[static_cast<std::size_t>(st)] - 1, 0);
  }
  s.machines = static_cast<int>(sites.size()) + extras;

  // Predicted cross-site transfer: consecutive-hop payloads that cross
  // a site boundary, plus scAtteR's out-of-band state fetch when the
  // stateful sift and the matcher are split.
  const bool in_band = config_.mode == core::PipelineMode::kScatterPP;
  double bytes_per_frame = 0.0;
  for (int st = 0; st + 1 < kNumStages; ++st) {
    if (plan.site[static_cast<std::size_t>(st)] == plan.site[static_cast<std::size_t>(st + 1)])
      continue;
    bytes_per_frame +=
        static_cast<double>(core::payload_for_hop(static_cast<Stage>(st + 1), in_band));
  }
  if (config_.mode == core::PipelineMode::kScatter &&
      plan.site[static_cast<std::size_t>(Stage::kSift)] !=
          plan.site[static_cast<std::size_t>(Stage::kMatching)]) {
    bytes_per_frame += static_cast<double>(config_.costs.state_entry_bytes);
  }
  const double offered_fps = static_cast<double>(config_.offered_clients) * config_.target_fps;
  s.state_mbytes_s = bytes_per_frame * offered_fps / 1e6;

  const double budget = to_millis(config_.costs.sidecar_threshold);
  const double lat =
      (s.success > 0.0 && s.e2e_p99_ms > 0.0 ? s.e2e_p99_ms : 2.0 * budget) / budget;
  const double shortfall = std::max(0.0, 1.0 - s.fps / config_.target_fps);
  s.score = config_.w_latency * lat + config_.w_fps * shortfall +
            config_.w_machines * static_cast<double>(s.machines) / 3.0 +
            config_.w_state * s.state_mbytes_s / 10.0;
  if (s.success < 0.5) s.score += 10.0;  // infeasible plans sink

  memo_.emplace(plan.key(), s);
  return s;
}

PlanScore PlacementSearch::evaluate_tracked(const CandidatePlan& plan, Result& out) {
  const bool cached = memo_.count(plan.key()) > 0;
  const PlanScore s = evaluate(plan);
  if (cached) {
    ++out.cache_hits;
  } else {
    ++out.evaluations;
  }
  out.digest = fnv_mix(out.digest, plan.key());
  out.digest = fnv_mix(out.digest, std::bit_cast<std::uint64_t>(s.score));
  return s;
}

CandidatePlan PlacementSearch::mutate(const CandidatePlan& parent, Rng& rng) const {
  CandidatePlan child = parent;
  const auto s = static_cast<std::size_t>(rng.uniform_int(0, kNumStages - 1));
  const int num_sites = config_.allow_cloud ? 3 : 2;
  if (s == 0 || rng.uniform(0.0, 1.0) < 0.5) {
    // Site flip (to a different allowed site).
    const int cur = static_cast<int>(child.site[s]);
    const int step = 1 + static_cast<int>(rng.uniform_int(0, num_sites - 2));
    child.site[s] = static_cast<expt::Site>((cur + step) % num_sites);
  } else {
    // Replica nudge (the primary never replicates).
    const int delta = rng.uniform(0.0, 1.0) < 0.5 ? 1 : -1;
    child.replicas[s] =
        std::clamp(child.replicas[s] + delta, 1, std::max(config_.max_replicas, 1));
  }
  child.replicas[0] = 1;
  return child;
}

PlacementSearch::Result PlacementSearch::run() {
  Result out;
  out.digest = kFnvOffset;
  Rng rng(config_.seed ^ 0x9e3779b97f4a7c15ULL);

  // Seed population: the paper's baseline placements, then mutants.
  std::vector<CandidatePlan> pop;
  pop.push_back(CandidatePlan::uniform(expt::Site::kE2));  // C2
  pop.push_back(CandidatePlan::uniform(expt::Site::kE1));  // C1
  if (config_.allow_cloud) pop.push_back(CandidatePlan::uniform(expt::Site::kCloud));
  CandidatePlan c12 = CandidatePlan::uniform(expt::Site::kE2);
  c12.site[0] = expt::Site::kE1;
  c12.site[1] = expt::Site::kE1;
  pop.push_back(c12);  // C12 = {E1,E1,E2,E2,E2}
  CandidatePlan c21 = CandidatePlan::uniform(expt::Site::kE1);
  c21.site[0] = expt::Site::kE2;
  c21.site[1] = expt::Site::kE2;
  pop.push_back(c21);  // C21 = {E2,E2,E1,E1,E1}
  while (static_cast<int>(pop.size()) < config_.population) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1));
    pop.push_back(mutate(pop[pick], rng));
  }

  struct Scored {
    CandidatePlan plan;
    PlanScore score;
  };
  Scored best{};
  for (int gen = 0; gen <= std::max(config_.generations, 0); ++gen) {
    std::vector<Scored> scored;
    scored.reserve(pop.size());
    for (const CandidatePlan& p : pop) scored.push_back(Scored{p, evaluate_tracked(p, out)});
    std::stable_sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
      if (a.score.score != b.score.score) return a.score.score < b.score.score;
      return a.plan.key() < b.plan.key();
    });
    best = scored.front();
    if (gen == std::max(config_.generations, 0)) break;
    const auto elites = static_cast<std::size_t>(
        std::clamp<int>(config_.elites, 1, static_cast<int>(scored.size())));
    std::vector<CandidatePlan> next;
    next.reserve(pop.size());
    for (std::size_t i = 0; i < elites; ++i) next.push_back(scored[i].plan);
    const std::size_t half = std::max<std::size_t>(scored.size() / 2, 1);
    while (next.size() < pop.size()) {
      // Tournament of two over the fitter half.
      const auto a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(half) - 1));
      const auto b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(half) - 1));
      next.push_back(mutate(scored[std::min(a, b)].plan, rng));
    }
    pop = std::move(next);
  }

  out.best = best.plan;
  out.best_score = best.score;
  return out;
}

}  // namespace mar::ctrl
