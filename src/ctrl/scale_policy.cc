#include "ctrl/scale_policy.h"

#include "ctrl/ctrl_telemetry.h"

namespace mar::ctrl {

ScalePolicy::ScalePolicy(expt::Deployment& deployment, Config config)
    : deployment_(deployment), config_(config) {}

ScalePolicy::~ScalePolicy() { *alive_ = false; }

void ScalePolicy::start() {
  if (running_) return;
  running_ = true;
  deployment_.testbed().runtime().schedule_after(config_.interval, [this, alive = alive_] {
    if (*alive) tick();
  });
}

MachineId ScalePolicy::spill_machine() const {
  switch (config_.spill_site) {
    case expt::Site::kE1:
      return deployment_.testbed().e1();
    case expt::Site::kE2:
      return deployment_.testbed().e2();
    case expt::Site::kCloud:
      return deployment_.testbed().cloud();
  }
  return deployment_.testbed().e1();
}

ScalePolicy::Reading ScalePolicy::read_worst() {
  auto& orch = deployment_.orchestrator();
  const SimTime now = deployment_.testbed().runtime().now();
  const double dt_s = to_seconds(now - last_scan_t_);
  last_scan_t_ = now;

  Reading app;  // worst application signal, always computed for window_
  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    std::uint64_t received = 0, dropped = 0;
    for (dsp::ServiceHost* host : deployment_.hosts_of(stage)) {
      received += host->stats().received;
      dropped += host->stats().dropped_total();
    }
    StageCounters& prev = last_[static_cast<std::size_t>(s)];
    if (received < prev.received || dropped < prev.dropped) {
      // Stats window was reset (warmup boundary); resynchronize.
      prev = StageCounters{received, dropped};
      window_[static_cast<std::size_t>(s)] = StageWindow{};
      continue;
    }
    const std::uint64_t d_recv = received - prev.received;
    const std::uint64_t d_drop = dropped - prev.dropped;
    prev.received = received;
    prev.dropped = dropped;
    StageWindow& w = window_[static_cast<std::size_t>(s)];
    const std::size_t live = std::max<std::size_t>(orch.live_replicas(stage), 1);
    w.ingress_fps = dt_s > 0.0 ? static_cast<double>(d_recv) / dt_s /
                                     static_cast<double>(live)
                               : 0.0;
    w.drop_ratio = d_recv > 0
                       ? static_cast<double>(d_drop) / static_cast<double>(d_recv)
                       : 0.0;
    if (d_recv > 0 && w.drop_ratio > app.signal) {
      app.signal = w.drop_ratio;
      app.stage = stage;
    }
  }
  if (config_.signal == Signal::kApplication) return app;

  // Hardware-only view: instantaneous normalized GPU occupancy per
  // machine; attribute the signal to the busiest stage on the busiest
  // machine (the orchestrator cannot do better than that).
  Reading hw;
  double busiest = 0.0;
  MachineId busiest_machine = MachineId::invalid();
  for (std::size_t m = 0; m < orch.num_machines(); ++m) {
    hw::Machine& machine = orch.machine(MachineId{static_cast<std::uint32_t>(m)});
    double occupancy = 0.0;
    for (std::size_t g = 0; g < machine.num_gpus(); ++g) {
      occupancy += static_cast<double>(machine.gpu(g).in_use()) / machine.gpu(g).capacity();
    }
    if (machine.num_gpus()) occupancy /= static_cast<double>(machine.num_gpus());
    if (occupancy > busiest) {
      busiest = occupancy;
      busiest_machine = machine.id();
    }
  }
  if (busiest_machine.valid()) {
    hw.signal = busiest;
    // Blindly scale the heaviest-by-utilization stage on that machine.
    double best_share = -1.0;
    for (InstanceId id : deployment_.instances()) {
      dsp::ServiceHost& host = orch.host(id);
      if (host.machine().id() != busiest_machine) continue;
      const auto share = static_cast<double>(host.compute().gpu_busy());
      if (share > best_share) {
        best_share = share;
        hw.stage = host.stage();
      }
    }
  }
  return hw;
}

InstanceId ScalePolicy::scale_up(Stage stage, double observed_signal) {
  if (stage == Stage::kPrimary) return InstanceId::invalid();
  auto& orch = deployment_.orchestrator();
  if (orch.live_replicas(stage) >=
      static_cast<std::size_t>(config_.max_replicas_per_stage)) {
    return InstanceId::invalid();
  }
  const InstanceId id = deployment_.add_replica(stage, spill_machine());
  const SimTime now = deployment_.testbed().runtime().now();
  events_.push_back(Event{now, Event::Kind::kScaleUp, stage, id, observed_signal});
  ++scale_ups_;
  ctrl_count("mar_ctrl_scale_up_total",
             "replicas added by the control plane's scale-up arm", stage);
  ctrl_trace(telemetry::spans::kCtrlScaleUp, now, stage, observed_signal);
  return id;
}

bool ScalePolicy::scale_down_candidate(Stage* stage, double* ingress_fps) const {
  auto& orch = deployment_.orchestrator();
  std::size_t best_replicas = 0;
  for (int s = 1; s < kNumStages; ++s) {  // the primary never scales
    const auto st = static_cast<Stage>(s);
    const std::size_t live = orch.live_replicas(st);
    if (live <= static_cast<std::size_t>(config_.min_replicas_per_stage)) continue;
    const StageWindow& w = window_[static_cast<std::size_t>(s)];
    if (w.drop_ratio > config_.down_threshold) continue;
    if (config_.down_ingress_fps > 0.0 && w.ingress_fps >= config_.down_ingress_fps) {
      continue;
    }
    if (live > best_replicas) {
      best_replicas = live;
      *stage = st;
      *ingress_fps = w.ingress_fps;
    }
  }
  return best_replicas > 0;
}

bool ScalePolicy::scale_down(Stage stage, double observed_signal) {
  auto& orch = deployment_.orchestrator();
  if (orch.live_replicas(stage) <=
      static_cast<std::size_t>(config_.min_replicas_per_stage)) {
    return false;
  }
  // Newest live replica first: scale-down unwinds scale-up.
  const std::vector<InstanceId> ids = orch.instances_of(stage);
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    const InstanceId id = *it;
    if (orch.is_retired(id) || orch.is_draining(id)) continue;
    if (orch.host(id).is_down()) continue;
    if (!drain(id)) continue;
    events_.back().observed_signal = observed_signal;
    ctrl_count("mar_ctrl_scale_down_total",
               "replicas the control plane decided to drain away", stage);
    return true;
  }
  return false;
}

bool ScalePolicy::drain(InstanceId id) {
  auto& orch = deployment_.orchestrator();
  if (orch.is_retired(id) || orch.is_draining(id)) return false;
  dsp::ServiceHost& host = orch.host(id);
  orch.begin_drain(id);
  Drain d;
  d.id = id;
  d.stage = host.stage();
  d.started = deployment_.testbed().runtime().now();
  d.quiet_since = -1;
  d.last_received = host.stats().received;
  d.dropped_at_begin = host.stats().dropped_total();
  drains_.push_back(d);
  ++drains_active_;
  ++drains_begun_;
  events_.push_back(Event{d.started, Event::Kind::kDrainBegin, d.stage, id, 0.0});
  ctrl_count("mar_ctrl_drain_begun_total",
             "replica drains started (routing stopped, settling)", d.stage);
  ctrl_trace(telemetry::spans::kCtrlDrain, d.started, d.stage);
  const std::size_t index = drains_.size() - 1;
  deployment_.testbed().runtime().schedule_after(config_.drain_poll,
                                                 [this, index, alive = alive_] {
                                                   if (*alive) poll_drain(index);
                                                 });
  return true;
}

void ScalePolicy::poll_drain(std::size_t index) {
  Drain& d = drains_[index];
  if (d.done) return;
  auto& orch = deployment_.orchestrator();
  dsp::ServiceHost& host = orch.host(d.id);
  const SimTime now = deployment_.testbed().runtime().now();
  const auto& st = host.stats();
  if (st.received < d.last_received) {
    // Stats window reset mid-drain (warmup boundary); resynchronize.
    d.last_received = st.received;
    d.dropped_at_begin = st.dropped_total();
  }
  const bool quiet =
      !host.busy() && host.queue_length() == 0 && st.received == d.last_received;
  if (!quiet) {
    d.quiet_since = -1;
    d.last_received = st.received;
  } else if (d.quiet_since < 0) {
    d.quiet_since = now;
  }
  const bool settled =
      quiet && d.quiet_since >= 0 && now - d.quiet_since >= config_.drain_settle;
  const bool expired = now - d.started >= config_.drain_deadline;
  if (settled || expired) {
    const std::uint64_t in_flight =
        settled ? 0
                : static_cast<std::uint64_t>(host.queue_length()) + (host.busy() ? 1 : 0);
    const std::uint64_t dropped_during = st.dropped_total() >= d.dropped_at_begin
                                             ? st.dropped_total() - d.dropped_at_begin
                                             : 0;
    drain_frames_lost_ += dropped_during + in_flight;
    orch.retire_instance(d.id);
    d.done = true;
    --drains_active_;
    ++retired_;
    const bool forced = expired && !settled;
    if (forced) ++forced_retires_;
    events_.push_back(Event{
        now, forced ? Event::Kind::kForcedRetire : Event::Kind::kRetire, d.stage, d.id,
        static_cast<double>(dropped_during + in_flight)});
    ctrl_count(forced ? "mar_ctrl_drain_forced_total" : "mar_ctrl_drain_retired_total",
               forced ? "drains force-retired at the deadline with work in flight"
                      : "drains completed cleanly and retired",
               d.stage);
    ctrl_trace(telemetry::spans::kCtrlRetire, now, d.stage,
               static_cast<double>(dropped_during + in_flight));
    return;
  }
  deployment_.testbed().runtime().schedule_after(config_.drain_poll,
                                                 [this, index, alive = alive_] {
                                                   if (*alive) poll_drain(index);
                                                 });
}

void ScalePolicy::tick() {
  const Reading r = read_worst();
  if (r.signal >= config_.up_threshold) {
    scale_up(r.stage, r.signal);
  } else if (config_.down_ingress_fps > 0.0) {
    Stage stage = Stage::kPrimary;
    double ingress = 0.0;
    if (scale_down_candidate(&stage, &ingress)) scale_down(stage, ingress);
  }
  deployment_.testbed().runtime().schedule_after(config_.interval, [this, alive = alive_] {
    if (*alive) tick();
  });
}

}  // namespace mar::ctrl
