// Frame flow helpers: pipeline mode and per-hop payload sizing.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "wire/message.h"

namespace mar::core {

// Which system is deployed.
enum class PipelineMode {
  kScatter,    // stateful sift, drop-when-busy ingress
  kScatterPP,  // stateless sift, sidecar ingress (scAtteR++)
};

[[nodiscard]] constexpr const char* to_string(PipelineMode m) {
  return m == PipelineMode::kScatter ? "scAtteR" : "scAtteR++";
}

// scAtteR++ bundles two independent mechanisms; the ablation benches
// toggle them separately to attribute the gains.
struct PipelineFeatures {
  // Carry sift's feature state in-band (no fetch loop, larger frames).
  bool stateless_sift = false;
  // Sidecar ingress queue with filtering and the staleness threshold.
  bool sidecar = false;

  static constexpr PipelineFeatures for_mode(PipelineMode m) {
    return m == PipelineMode::kScatterPP ? PipelineFeatures{true, true}
                                         : PipelineFeatures{false, false};
  }
};

// Extra bytes per message when the SIFT feature state rides in-band
// (scAtteR++): the paper's 180 KB -> 480 KB growth of sift's output.
inline constexpr std::uint32_t kInBandStateBytes =
    wire::sizes::kSiftOutStateful - wire::sizes::kSiftOut;

// On-wire payload for the hop *into* `to`.
[[nodiscard]] constexpr std::uint32_t payload_for_hop(Stage to, bool carries_state) {
  switch (to) {
    case Stage::kPrimary:
      return wire::sizes::kClientFrame;
    case Stage::kSift:
      return wire::sizes::kPreprocessed;
    case Stage::kEncoding:
      return carries_state ? wire::sizes::kSiftOutStateful : wire::sizes::kSiftOut;
    case Stage::kLsh:
      return wire::sizes::kFisherVector + (carries_state ? kInBandStateBytes : 0);
    case Stage::kMatching:
      return wire::sizes::kNnCandidates + (carries_state ? kInBandStateBytes : 0);
    case Stage::kResult:
      return wire::sizes::kResult;
  }
  return 0;
}

}  // namespace mar::core
