#include "core/services.h"

#include <utility>

#include "telemetry/trace.h"

namespace mar::core {
namespace {

// matching's compute splits into a pre-match part (descriptor matching
// against the NN candidates) and a pose part (homography + tracking),
// separated in scAtteR by the state fetch round-trip to sift.
constexpr double kPrematchGpuFraction = 0.45;

}  // namespace

// --------------------------------------------------------------------
// primary

void PrimaryService::process(wire::FramePacket pkt) {
  host().compute().run_stage(host().costs(), Stage::kPrimary,
                             [this, pkt = std::move(pkt)]() mutable {
                               pkt.header.stage = Stage::kSift;
                               pkt.header.payload_bytes =
                                   payload_for_hop(Stage::kSift, /*carries_state=*/false);
                               pkt.payload.clear();
                               host().send(env_.router->resolve(Stage::kSift, pkt.header),
                                           std::move(pkt));
                               host().finish_current();
                             });
}

// --------------------------------------------------------------------
// sift

void SiftService::on_attached() {
  if (!env_.features.stateless_sift) {
    store_ = std::make_unique<dsp::StateStore>(host(), host().costs().state_timeout,
                                               host().costs().state_entry_bytes);
  }
}

void SiftService::process(wire::FramePacket pkt) {
  if (pkt.header.kind == wire::MessageKind::kStateFetchRequest) {
    handle_fetch(std::move(pkt));
  } else {
    handle_frame(std::move(pkt));
  }
}

void SiftService::handle_frame(wire::FramePacket pkt) {
  host().compute().run_stage(
      host().costs(), Stage::kSift, [this, pkt = std::move(pkt)]() mutable {
        const bool stateful = !env_.features.stateless_sift;
        if (stateful) {
          // Keep the frame's features in memory until matching fetches
          // them (or the state timeout evicts the orphan).
          store_->put(pkt.header.client, pkt.header.frame);
          pkt.header.sift_instance = host().instance();
        } else {
          // scAtteR++: package the feature state into the frame itself.
          pkt.header.carries_state = true;
        }
        pkt.header.stage = Stage::kEncoding;
        pkt.header.payload_bytes = payload_for_hop(Stage::kEncoding, pkt.header.carries_state);
        host().send(env_.router->resolve(Stage::kEncoding, pkt.header), std::move(pkt));
        host().finish_current();
      });
}

void SiftService::handle_fetch(wire::FramePacket pkt) {
  // Serving a fetch occupies the (single-threaded) service just like an
  // extraction does — this is why sift sees 2x request load in scAtteR.
  const auto& costs = host().costs();
  host().compute().run(costs.state_fetch_cpu, 0, costs.stage(Stage::kSift).noise_cv,
                       [this, pkt = std::move(pkt)]() mutable {
                         if (store_ != nullptr &&
                             store_->take(pkt.header.client, pkt.header.frame)) {
                           ++fetch_hits_;
                           wire::FramePacket resp;
                           resp.header = pkt.header;
                           resp.header.kind = wire::MessageKind::kStateFetchResponse;
                           resp.header.payload_bytes = wire::sizes::kStateFetchResp;
                           host().send(pkt.header.reply_to, std::move(resp));
                         } else {
                           // Missing/expired state: no reply; the
                           // requester times out.
                           ++fetch_misses_;
                         }
                         host().finish_current();
                       });
}

// --------------------------------------------------------------------
// encoding / lsh

void ForwardService::process(wire::FramePacket pkt) {
  host().compute().run_stage(host().costs(), stage_, [this, pkt = std::move(pkt)]() mutable {
    const Stage next = next_stage(stage_);
    pkt.header.stage = next;
    pkt.header.payload_bytes = payload_for_hop(next, pkt.header.carries_state);
    host().send(env_.router->resolve(next, pkt.header), std::move(pkt));
    host().finish_current();
  });
}

// --------------------------------------------------------------------
// matching

void MatchingService::process(wire::FramePacket pkt) {
  const auto& cost = host().costs().stage(Stage::kMatching);
  if (pkt.header.carries_state) {
    // Stateless pipeline: everything needed is in-band; one compute pass.
    host().compute().run(cost.cpu_time, cost.gpu_time, cost.noise_cv,
                         [this, pkt = std::move(pkt)]() mutable {
                           finish_frame(std::move(pkt));
                         });
    return;
  }
  // scAtteR: match against NN candidates, then fetch the frame's stored
  // features from the sift replica that extracted them.
  const auto prematch_gpu =
      static_cast<SimDuration>(static_cast<double>(cost.gpu_time) * kPrematchGpuFraction);
  host().compute().run(cost.cpu_time / 2, prematch_gpu, cost.noise_cv,
                       [this, pkt = std::move(pkt)]() mutable {
                         request_state(std::move(pkt));
                       });
}

void MatchingService::request_state(wire::FramePacket pkt) {
  PendingFetch pending;
  pending.client = pkt.header.client;
  pending.frame = pkt.header.frame;
  pending.pkt = std::move(pkt);
  pending_ = std::move(pending);
  {
    // The state-fetch round trip (matching -> sift -> matching) is the
    // scAtteR bottleneck the paper calls out; record it as its own span
    // on matching's track.
    auto& tracer = telemetry::Tracer::instance();
    if (tracer.enabled() && pending_->pkt.header.trace.active()) {
      tracer.begin(host().instance().value(), telemetry::spans::kStateFetch,
                   host().runtime().now(), pending_->client, pending_->frame,
                   Stage::kMatching, 0.0, pending_->pkt.header.trace.trace_id);
    }
  }
  send_fetch();
}

void MatchingService::send_fetch() {
  wire::FramePacket req;
  req.header = pending_->pkt.header;
  req.header.kind = wire::MessageKind::kStateFetchRequest;
  req.header.stage = Stage::kSift;
  req.header.payload_bytes = wire::sizes::kStateFetchReq;
  req.header.reply_to = host().ingress();

  // Re-resolved on every attempt: after a failover the pinned instance
  // id maps to the respawned replica (whose store is empty, so the
  // fetch still misses — state died with the process).
  const EndpointId sift_ep = env_.router->endpoint_of(req.header.sift_instance);
  // Busy-wait with a deadline: while waiting, matching stays busy and
  // its ingress drops new lsh results (the paper's backpressure loop).
  pending_->timeout_event = host().runtime().schedule_after(
      host().costs().state_fetch_timeout, [this] { on_fetch_timeout(); });
  host().send(sift_ep, std::move(req));
}

void MatchingService::on_fetch_timeout() {
  if (!pending_) return;
  const auto& costs = host().costs();
  if (pending_->attempts < costs.state_fetch_retries) {
    // Bounded retry with backoff: the response (or the replica) may
    // just be late. The frame keeps occupying matching while it waits.
    ++pending_->attempts;
    ++fetch_retries_;
    pending_->timeout_event = host().runtime().schedule_after(
        costs.state_fetch_backoff, [this] {
          if (pending_) send_fetch();
        });
    return;
  }
  // Deadline + retry budget exhausted: deliberately fail the frame.
  ++fetch_timeouts_;
  auto& tracer = telemetry::Tracer::instance();
  if (tracer.enabled() && pending_->pkt.header.trace.active()) {
    const auto now = host().runtime().now();
    const std::uint32_t tid = pending_->pkt.header.trace.trace_id;
    tracer.end(host().instance().value(), telemetry::spans::kStateFetch, now,
               pending_->client, pending_->frame, Stage::kMatching, 0.0, tid);
    tracer.instant(host().instance().value(), telemetry::spans::kFetchTimeout, now,
                   pending_->client, pending_->frame, Stage::kMatching, 0.0, tid);
  }
  pending_.reset();
  host().finish_current();
}

bool MatchingService::consume_inline(wire::FramePacket& pkt) {
  if (pkt.header.kind != wire::MessageKind::kStateFetchResponse) return false;
  if (!pending_ || pending_->client != pkt.header.client ||
      pending_->frame != pkt.header.frame) {
    return true;  // stale response for a timed-out frame; swallow it
  }
  host().runtime().cancel(pending_->timeout_event);
  wire::FramePacket frame = std::move(pending_->pkt);
  pending_.reset();

  {
    auto& tracer = telemetry::Tracer::instance();
    if (tracer.enabled() && frame.header.trace.active()) {
      tracer.end(host().instance().value(), telemetry::spans::kStateFetch,
                 host().runtime().now(), frame.header.client, frame.header.frame,
                 Stage::kMatching, 0.0, frame.header.trace.trace_id);
    }
  }

  const auto& cost = host().costs().stage(Stage::kMatching);
  const auto pose_gpu = static_cast<SimDuration>(static_cast<double>(cost.gpu_time) *
                                                 (1.0 - kPrematchGpuFraction));
  host().compute().run(cost.cpu_time / 2, pose_gpu, cost.noise_cv,
                       [this, frame = std::move(frame)]() mutable {
                         finish_frame(std::move(frame));
                       });
  return true;
}

void MatchingService::finish_frame(wire::FramePacket pkt) {
  emit_result(pkt);
  host().finish_current();
}

void MatchingService::emit_result(const wire::FramePacket& pkt) {
  wire::FramePacket result;
  result.header = pkt.header;
  result.header.stage = Stage::kResult;
  result.header.kind = wire::MessageKind::kResult;
  result.header.payload_bytes = wire::sizes::kResult;
  result.header.carries_state = false;
  // Vision-level recognition can fail independently of system load
  // (insufficient inliers / pose rejected).
  result.header.match_ok =
      !host().rng().bernoulli(host().costs().recognition_failure_prob);
  result.hops = pkt.hops;
  host().send(pkt.header.client_endpoint, std::move(result));
}

// --------------------------------------------------------------------

std::unique_ptr<dsp::Servicelet> make_servicelet(const PipelineEnv& env, Stage stage) {
  switch (stage) {
    case Stage::kPrimary:
      return std::make_unique<PrimaryService>(env);
    case Stage::kSift:
      return std::make_unique<SiftService>(env);
    case Stage::kEncoding:
    case Stage::kLsh:
      return std::make_unique<ForwardService>(env, stage);
    case Stage::kMatching:
      return std::make_unique<MatchingService>(env);
    case Stage::kResult:
      break;
  }
  return nullptr;
}

dsp::HostConfig host_config_for(PipelineMode mode, Stage stage) {
  return host_config_for(PipelineFeatures::for_mode(mode), stage);
}

dsp::HostConfig host_config_for(const PipelineFeatures& features, Stage stage) {
  dsp::HostConfig cfg;
  cfg.stage = stage;
  cfg.uses_gpu = stage != Stage::kPrimary;  // all services but primary are GPU-bound
  cfg.mode = features.sidecar ? dsp::IngressMode::kSidecar : dsp::IngressMode::kDropWhenBusy;
  cfg.queue_capacity = 256;
  return cfg;
}

}  // namespace mar::core
