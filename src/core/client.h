// Simulated AR client: replays a pre-recorded video (paper: 10 s,
// 30 FPS, 720p workplace scene, looped) into the pipeline ingress and
// collects QoS statistics from returned results.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "core/frame_flow.h"
#include "dsp/runtime.h"
#include "hw/machine.h"
#include "telemetry/histogram.h"
#include "telemetry/stats.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace mar::core {

struct ClientConfig {
  ClientId id;
  double fps = 30.0;
  // Small per-client phase offset so concurrent clients do not send in
  // lockstep (virtual clients start at different instants in reality).
  SimDuration phase_offset = 0;
  // Distributed tracing (head sampling): sample every Nth frame for
  // tracing when the global Tracer is enabled (1 = trace every frame,
  // 0 = never trace). Same default as telemetry::kDefaultTraceSampleEvery
  // and the experiment_cli --trace_sample flag.
  std::uint32_t trace_sample_every = telemetry::kDefaultTraceSampleEvery;
  // Tail-based retention: when true, frames that head sampling skips
  // still get a trace id and a FlightRecorder buffer, so the retention
  // policy can promote them at completion. Head-sampled frames keep
  // going straight to the durable ring — the two compose.
  bool trace_all_frames = false;
  // Invoked for every delivered result, after stats are updated:
  // (arrival time, E2E latency in ms, recognition success). SLO
  // watchdogs and live exporters hook in here.
  std::function<void(SimTime, double, bool)> on_frame;
  // Invoked after on_frame with the frame's full header (including its
  // trace context) — the completion point where expt::TailSampler takes
  // the promote/recycle verdict for flight-recorded frames.
  std::function<void(const wire::FrameHeader&, SimTime, double, bool)> on_frame_closed;
};

struct ClientStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t results_received = 0;
  std::uint64_t successes = 0;  // results with a recognized, posed object

  telemetry::Histogram e2e_ms;  // capture -> result, successful frames
  // Inter-frame receive jitter: |arrival gap - camera inter-frame time|
  // measured over consecutively-numbered delivered frames, so frame
  // drops don't masquerade as jitter.
  telemetry::Accumulator jitter_ms;
  telemetry::TimeSeries success_per_sec{kSecond};

  // Per-stage telemetry carried back in-band by the scAtteR++ sidecars
  // (HopRecords attached to the data's state, paper §5/A.2): the
  // client-side view of where delivered frames spent their time.
  std::array<telemetry::Accumulator, kNumStages> hop_queue_ms;
  std::array<telemetry::Accumulator, kNumStages> hop_process_ms;

  // Measured over the window since the last reset().
  [[nodiscard]] double success_rate() const {
    return frames_sent ? static_cast<double>(successes) / static_cast<double>(frames_sent) : 0.0;
  }

  void reset() {
    frames_sent = 0;
    results_received = 0;
    successes = 0;
    e2e_ms.reset();
    jitter_ms.reset();
    success_per_sec.reset();
    for (auto& acc : hop_queue_ms) acc.reset();
    for (auto& acc : hop_process_ms) acc.reset();
  }
};

class ArClient {
 public:
  ArClient(dsp::Runtime& rt, hw::Machine& machine, dsp::Router& router, ClientConfig config,
           Rng rng);
  ~ArClient();

  ArClient(const ArClient&) = delete;
  ArClient& operator=(const ArClient&) = delete;

  // Start streaming frames; keeps sending until stop().
  void start();
  void stop();

  [[nodiscard]] ClientStats& stats() { return stats_; }
  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] ClientId id() const { return config_.id; }
  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }

  // Achieved framerate (successful frames / window) since `window_start`.
  [[nodiscard]] double fps_since(SimTime window_start) const;

 private:
  void send_frame();
  void on_result(const wire::FramePacket& pkt);

  dsp::Runtime& rt_;
  dsp::Router& router_;
  ClientConfig config_;
  Rng rng_;
  EndpointId endpoint_;

  bool running_ = false;
  std::uint64_t next_frame_ = 0;
  sim::EventId next_send_event_{};

  // Jitter tracking: arrival time of the last delivered frame.
  SimTime last_result_ts_ = -1;
  FrameId last_result_frame_ = FrameId::invalid();

  ClientStats stats_;
};

}  // namespace mar::core
