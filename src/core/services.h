// The five scAtteR pipeline services (paper §3.1, Fig. 1), written as
// servicelets over the DSP framework:
//
//   primary  — pre-processing (grayscale + dimension reduction), CPU-only
//   sift     — object detection / SIFT feature extraction; STATEFUL in
//              scAtteR (stores per-frame features until matching fetches
//              them), stateless in scAtteR++ (features ride in-band)
//   encoding — PCA + Fisher encoding of descriptors
//   lsh      — locality-sensitive-hash nearest-neighbour lookup
//   matching — feature matching + pose estimation + tracking; in scAtteR
//              it calls back into sift to fetch the frame's stored state
//              (the dependency loop behind the paper's backpressure
//              findings), in scAtteR++ it reads the in-band state.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/types.h"
#include "core/frame_flow.h"
#include "dsp/runtime.h"
#include "dsp/service_host.h"
#include "dsp/servicelet.h"
#include "dsp/state_store.h"

namespace mar::core {

// Shared pipeline wiring handed to every servicelet. The router is the
// orchestrator's semantic-addressing layer; it is installed before any
// traffic flows.
struct PipelineEnv {
  PipelineMode mode = PipelineMode::kScatter;
  PipelineFeatures features = PipelineFeatures::for_mode(PipelineMode::kScatter);
  dsp::Router* router = nullptr;
};

class PrimaryService final : public dsp::Servicelet {
 public:
  explicit PrimaryService(const PipelineEnv& env) : env_(env) {}
  void process(wire::FramePacket pkt) override;

 private:
  const PipelineEnv& env_;
};

class SiftService final : public dsp::Servicelet {
 public:
  explicit SiftService(const PipelineEnv& env) : env_(env) {}
  void process(wire::FramePacket pkt) override;

  // scAtteR telemetry: state store occupancy and fetch accounting.
  [[nodiscard]] const dsp::StateStore* store() const { return store_.get(); }
  [[nodiscard]] std::uint64_t fetch_hits() const { return fetch_hits_; }
  [[nodiscard]] std::uint64_t fetch_misses() const { return fetch_misses_; }
  // Stored entries dropped because the replica crashed (scAtteR only).
  [[nodiscard]] std::uint64_t state_lost() const {
    return store_ ? store_->lost_to_crash() : 0;
  }

  // Crash semantics: the store dies with the process. Every in-flight
  // frame pinned to this replica will now miss its state fetch.
  void on_killed() override {
    if (store_) store_->clear();
  }

 protected:
  void on_attached() override;

 private:
  void handle_frame(wire::FramePacket pkt);
  void handle_fetch(wire::FramePacket pkt);

  const PipelineEnv& env_;
  std::unique_ptr<dsp::StateStore> store_;  // scAtteR only
  std::uint64_t fetch_hits_ = 0;
  std::uint64_t fetch_misses_ = 0;
};

// encoding and lsh share the "compute, then forward" shape.
class ForwardService final : public dsp::Servicelet {
 public:
  ForwardService(const PipelineEnv& env, Stage stage) : env_(env), stage_(stage) {}
  void process(wire::FramePacket pkt) override;

 private:
  const PipelineEnv& env_;
  Stage stage_;
};

class MatchingService final : public dsp::Servicelet {
 public:
  explicit MatchingService(const PipelineEnv& env) : env_(env) {}
  void process(wire::FramePacket pkt) override;
  bool consume_inline(wire::FramePacket& pkt) override;

  // scAtteR telemetry: fetches that exhausted their deadline + retry
  // budget (the frame is failed), and retries attempted.
  [[nodiscard]] std::uint64_t fetch_timeouts() const { return fetch_timeouts_; }
  [[nodiscard]] std::uint64_t fetch_retries() const { return fetch_retries_; }

 private:
  void request_state(wire::FramePacket pkt);
  void send_fetch();        // (re)send the pending fetch, arming its deadline
  void on_fetch_timeout();  // deadline hit: retry with backoff or fail the frame
  void finish_frame(wire::FramePacket pkt);
  void emit_result(const wire::FramePacket& pkt);

  struct PendingFetch {
    ClientId client;
    FrameId frame;
    wire::FramePacket pkt;      // the lsh output being completed
    sim::EventId timeout_event;
    std::uint32_t attempts = 0;
  };

  const PipelineEnv& env_;
  std::optional<PendingFetch> pending_;
  std::uint64_t fetch_timeouts_ = 0;
  std::uint64_t fetch_retries_ = 0;
};

// Factory used by deployments: builds the right servicelet for `stage`.
[[nodiscard]] std::unique_ptr<dsp::Servicelet> make_servicelet(const PipelineEnv& env,
                                                               Stage stage);

// Host configuration matching the pipeline mode: primary is the only
// CPU-only service; scAtteR++ replicas get a sidecar ingress.
[[nodiscard]] dsp::HostConfig host_config_for(PipelineMode mode, Stage stage);
[[nodiscard]] dsp::HostConfig host_config_for(const PipelineFeatures& features, Stage stage);

}  // namespace mar::core
