#include "core/client.h"

#include <cmath>

#include "telemetry/flight_recorder.h"

namespace mar::core {

ArClient::ArClient(dsp::Runtime& rt, hw::Machine& machine, dsp::Router& router,
                   ClientConfig config, Rng rng)
    : rt_(rt), router_(router), config_(config), rng_(rng) {
  endpoint_ = rt_.make_endpoint(machine.id(),
                                [this](wire::FramePacket pkt) { on_result(pkt); });
  telemetry::Tracer::instance().set_track_name(
      telemetry::kClientTrackBase + config_.id.value(),
      "client#" + std::to_string(config_.id.value()));
}

ArClient::~ArClient() { stop(); }

void ArClient::start() {
  if (running_) return;
  running_ = true;
  next_send_event_ = rt_.schedule_after(config_.phase_offset, [this] { send_frame(); });
}

void ArClient::stop() {
  if (!running_) return;
  running_ = false;
  rt_.cancel(next_send_event_);
}

void ArClient::send_frame() {
  if (!running_) return;

  wire::FramePacket pkt;
  pkt.header.client = config_.id;
  pkt.header.frame = FrameId{next_frame_++};
  pkt.header.stage = Stage::kPrimary;
  pkt.header.kind = wire::MessageKind::kFrameData;
  pkt.header.capture_ts = rt_.now();
  pkt.header.client_endpoint = endpoint_;
  pkt.header.payload_bytes = payload_for_hop(Stage::kPrimary, false);

  // Distributed tracing: stamp every Nth frame with a trace id; the id
  // propagates through every derived message so each hop can attribute
  // spans to this frame's timeline. Head-sampled frames record straight
  // into the durable ring; with trace_all_frames, the frames head
  // sampling skips get an id plus a flight-recorder buffer instead, and
  // survive only if the retention policy promotes them at completion.
  auto& tracer = telemetry::Tracer::instance();
  if (tracer.enabled()) {
    const bool head_sampled = config_.trace_sample_every != 0 &&
                              pkt.header.frame.value() % config_.trace_sample_every == 0;
    if (head_sampled || config_.trace_all_frames) {
      pkt.header.trace.trace_id = tracer.next_trace_id();
      if (!head_sampled) {
        telemetry::FlightRecorder::instance().open(pkt.header.trace.trace_id);
      }
      tracer.begin(telemetry::kClientTrackBase + config_.id.value(),
                   telemetry::spans::kFrameE2e, rt_.now(), pkt.header.client,
                   pkt.header.frame, Stage::kPrimary, 0.0, pkt.header.trace.trace_id);
    }
  }

  rt_.send(endpoint_, router_.resolve(Stage::kPrimary, pkt.header), std::move(pkt));
  ++stats_.frames_sent;

  // Camera pacing with sub-millisecond sensor timing noise.
  const auto interval = static_cast<SimDuration>(kSecond / config_.fps);
  const auto noise =
      static_cast<SimDuration>(rng_.gaussian(0.0, 100.0 * static_cast<double>(kMicrosecond)));
  next_send_event_ = rt_.schedule_after(interval + noise, [this] { send_frame(); });
}

void ArClient::on_result(const wire::FramePacket& pkt) {
  if (pkt.header.kind != wire::MessageKind::kResult) return;
  ++stats_.results_received;

  {
    auto& tracer = telemetry::Tracer::instance();
    if (tracer.enabled() && pkt.header.trace.active()) {
      tracer.end(telemetry::kClientTrackBase + config_.id.value(),
                 telemetry::spans::kFrameE2e, rt_.now(), pkt.header.client,
                 pkt.header.frame, Stage::kPrimary, 0.0, pkt.header.trace.trace_id);
    }
  }

  const SimTime now = rt_.now();
  const double e2e_ms = to_millis(now - pkt.header.capture_ts);
  if (config_.on_frame) config_.on_frame(now, e2e_ms, pkt.header.match_ok);
  // The frame is closed: everything it will ever record has been
  // recorded, so the retention verdict can be taken now.
  if (config_.on_frame_closed) {
    config_.on_frame_closed(pkt.header, now, e2e_ms, pkt.header.match_ok);
  }

  if (!pkt.header.match_ok) return;

  ++stats_.successes;
  stats_.e2e_ms.add(e2e_ms);
  stats_.success_per_sec.add(now);

  // Fold in the sidecar telemetry that rode back with the result.
  for (const wire::HopRecord& hop : pkt.hops) {
    const auto idx = static_cast<std::size_t>(hop.stage);
    if (idx >= kNumStages) continue;
    stats_.hop_queue_ms[idx].add(to_millis(hop.queue_time));
    stats_.hop_process_ms[idx].add(to_millis(hop.process_time));
  }

  if (last_result_ts_ >= 0 && last_result_frame_.valid() &&
      pkt.header.frame.value() == last_result_frame_.value() + 1) {
    // Consecutive camera frames both delivered: their arrival gap
    // should equal the camera's inter-frame time; the deviation is the
    // network+pipeline jitter.
    const SimDuration gap = now - last_result_ts_;
    const auto inter_frame = static_cast<SimDuration>(kSecond / config_.fps);
    stats_.jitter_ms.add(std::abs(to_millis(gap - inter_frame)));
  }
  last_result_ts_ = now;
  last_result_frame_ = pkt.header.frame;
}

double ArClient::fps_since(SimTime window_start) const {
  const double elapsed = to_seconds(rt_.now() - window_start);
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(stats_.successes) / elapsed;
}

}  // namespace mar::core
