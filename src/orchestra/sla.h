// Service-level-agreement descriptors for orchestrated deployment.
//
// Mirrors how the paper deploys scAtteR through Oakestra: each service
// declares high-level hardware constraints (GPU required, memory
// demand, compatible GPU architectures — container images are compiled
// per sm architecture and are not portable across them, §3.2) and the
// orchestrator picks a feasible machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace mar::orchestra {

struct ServiceSla {
  Stage stage = Stage::kPrimary;
  bool needs_gpu = true;
  // Requested resident memory.
  std::uint64_t memory_bytes = 0;
  // GPU architectures this service's image was compiled for; empty
  // means the image runs anywhere (e.g. the CPU-only primary).
  std::vector<std::string> gpu_archs;
};

}  // namespace mar::orchestra
