// Edge-native orchestrator modeled on Oakestra (paper §3.2).
//
// Responsibilities reproduced here:
//  * cluster registry of heterogeneous machines,
//  * SLA-constrained placement of service replicas,
//  * semantic addressing: senders resolve a *stage*, the orchestrator
//    round-robins across ready replicas (the paper's load balancing),
//  * hardware-only monitoring — the orchestrator samples CPU/GPU/memory
//    but cannot see application QoS (the blindness Insights I and IV
//    are about),
//  * failure detection and automatic re-deployment of dead replicas.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dsp/runtime.h"
#include "dsp/service_host.h"
#include "hw/cost_model.h"
#include "hw/machine.h"
#include "orchestra/sla.h"

namespace mar::orchestra {

using ServiceletFactory = std::function<std::unique_ptr<dsp::Servicelet>()>;

// One hardware-metric snapshot per machine (what Oakestra can see).
struct MachineSample {
  MachineId machine;
  double cpu_util = 0.0;  // normalized to total cores, [0,1]
  double gpu_util = 0.0;  // mean across GPUs, [0,1]
  std::uint64_t memory_used = 0;
};

struct MonitorSample {
  SimTime t = 0;
  std::vector<MachineSample> machines;
};

// Heartbeat-driven failure detection + respawn (the fault plane's
// recovery half). Instances ack a liveness probe every
// `heartbeat_interval`; one whose last ack is older than
// `suspicion_timeout` is declared dead (suspect -> evict) and a
// replacement is scheduled on a surviving machine after
// `respawn_delay` plus the cost model's instance_cold_start.
struct FailoverConfig {
  SimDuration heartbeat_interval = millis(250.0);
  SimDuration suspicion_timeout = millis(750.0);
  SimDuration respawn_delay = seconds(1.0);
  // Cluster-local placement (Oakestra-style): prefer respawn targets
  // that already run a live replica of the deployment, falling back to
  // any feasible machine. Keeps a failover from scattering a LAN
  // pipeline across the WAN.
  bool prefer_occupied_machines = true;
};

class Orchestrator final : public dsp::Router {
 public:
  explicit Orchestrator(dsp::SimRuntime& rt, Rng rng = Rng{42});
  ~Orchestrator() override;

  // --- cluster ---------------------------------------------------------
  MachineId add_machine(hw::MachineSpec spec);
  [[nodiscard]] hw::Machine& machine(MachineId id) { return *machines_.at(id.value()); }
  [[nodiscard]] std::size_t num_machines() const { return machines_.size(); }

  // --- placement -------------------------------------------------------
  // Pick a feasible machine for `sla`: GPU present and architecture
  // compatible, requested memory available; prefers the machine with
  // the fewest deployed replicas, then most free memory.
  [[nodiscard]] Result<MachineId> schedule(const ServiceSla& sla) const;

  // Deploy one replica of `stage` onto `target`.
  InstanceId deploy(Stage stage, MachineId target, dsp::HostConfig config,
                    const hw::CostModel& costs, ServiceletFactory make);

  [[nodiscard]] dsp::ServiceHost& host(InstanceId id) { return *instances_.at(id.value()).host; }
  [[nodiscard]] const dsp::ServiceHost& host(InstanceId id) const {
    return *instances_.at(id.value()).host;
  }
  [[nodiscard]] std::vector<InstanceId> instances_of(Stage stage) const;
  [[nodiscard]] std::size_t instance_count() const { return instances_.size(); }

  // --- semantic addressing (Router) -------------------------------------
  EndpointId resolve(Stage stage, const wire::FrameHeader& header) override;
  EndpointId endpoint_of(InstanceId instance) override;

  // --- monitoring --------------------------------------------------------
  void start_monitor(SimDuration interval);
  void stop_monitor();
  [[nodiscard]] const std::vector<MonitorSample>& monitor_samples() const { return samples_; }

  // --- failure handling ---------------------------------------------------
  // Watchdog: poll replica liveness every `detection_interval`; dead
  // replicas are re-deployed (restarted in place) after `redeploy_delay`.
  void enable_auto_restart(SimDuration detection_interval, SimDuration redeploy_delay);
  void kill_instance(InstanceId id);
  [[nodiscard]] std::uint64_t redeploy_count() const { return redeploys_; }

  // Heartbeat failover: suspect -> evict -> respawn on a surviving
  // machine -> route repair (resolve() immediately stops handing out
  // the dead replica; the respawned one keeps its InstanceId, so
  // endpoint_of() pins re-map automatically).
  void enable_failover(FailoverConfig config);
  [[nodiscard]] bool failover_enabled() const { return failover_enabled_; }
  [[nodiscard]] std::uint64_t failover_suspected() const { return suspected_; }
  [[nodiscard]] std::uint64_t failover_respawns() const { return respawns_; }

  // Machine-level faults: a down machine is excluded from routing and
  // from respawn placement. reboot_machine kills every instance on the
  // machine, marks it down for `down_for`, then brings it back and
  // cold-restarts instances still placed there.
  void set_machine_down(MachineId m, bool down);
  [[nodiscard]] bool is_machine_down(MachineId m) const;
  void reboot_machine(MachineId m, SimDuration down_for);

  // --- control plane (drain / retire / move) -----------------------------
  // Drain-before-decommission: a draining replica is excluded from
  // resolve() immediately (no new frames are routed to it) but keeps
  // processing everything already queued or in flight. The control
  // plane polls the host until it settles, then calls retire_instance.
  void begin_drain(InstanceId id);
  void cancel_drain(InstanceId id);
  [[nodiscard]] bool is_draining(InstanceId id) const;

  // Permanently retire a (normally drained) replica: the host is
  // decommissioned — killed, memory returned, ingress unbound — and
  // stays parked inside its record under the same
  // absorb-stray-callbacks contract as the failover graveyard (the
  // record keeps ownership so host(id) and the experiment's counter
  // aggregation remain valid, and nothing is double-counted). Retired
  // records are skipped by routing, the heartbeat (no resurrection of
  // a deliberately removed replica), and live_replicas().
  void retire_instance(InstanceId id);
  [[nodiscard]] bool is_retired(InstanceId id) const;
  [[nodiscard]] std::uint64_t retired_instances() const { return retired_count_; }

  // Apply-plan: rebuild the replica on `target` with the same
  // InstanceId (the failover respawn machinery minus the suspicion);
  // the old host is parked in the graveyard and frames already routed
  // toward it are lost, so callers should drain first or move at low
  // load. Pays instance_cold_start before the replacement serves.
  // Returns false when infeasible (unknown/down target, same machine,
  // replica retired or mid-failover).
  bool move_instance(InstanceId id, MachineId target);
  [[nodiscard]] std::uint64_t instance_moves() const { return moves_; }

  // Replicas of `stage` able to take new work: not draining, not
  // retired, not down, and not on a down machine.
  [[nodiscard]] std::size_t live_replicas(Stage stage) const;

  // Routing failures: resolve() calls that found zero live replicas
  // (also exported as mar_routing_failures_total{stage=...}).
  [[nodiscard]] std::uint64_t routing_failures(Stage stage) const {
    return routing_failures_[static_cast<std::size_t>(stage)];
  }
  [[nodiscard]] std::uint64_t routing_failures() const;

  // Replicas retired by failover (kept parked so event-loop callbacks
  // scheduled against them stay safe); exposed so experiment reports
  // can also aggregate the counters of dead replicas.
  [[nodiscard]] const std::vector<std::unique_ptr<dsp::ServiceHost>>& retired_hosts() const {
    return graveyard_;
  }

 private:
  struct InstanceRecord {
    Stage stage;
    MachineId machine;
    std::unique_ptr<dsp::ServiceHost> host;
    bool restart_pending = false;
    // Respawn bookkeeping: everything needed to rebuild the replica on
    // another machine after a failover eviction.
    dsp::HostConfig config;
    const hw::CostModel* costs = nullptr;
    ServiceletFactory factory;
    SimTime last_ack = 0;
    bool failover_pending = false;
    // Control-plane lifecycle: a draining replica takes no new routes;
    // a retired one is permanently out (and never resurrected by the
    // heartbeat or machine reboots).
    bool draining = false;
    bool retired = false;
  };

  void monitor_tick();
  void watchdog_tick();
  void heartbeat_tick();
  void respawn(std::size_t index);
  [[nodiscard]] MachineId pick_respawn_target(const InstanceRecord& rec) const;

  dsp::SimRuntime& rt_;
  Rng rng_;
  std::vector<std::unique_ptr<hw::Machine>> machines_;
  std::vector<InstanceRecord> instances_;
  std::array<std::uint64_t, kNumStages> rr_counters_{};

  SimDuration monitor_interval_ = 0;
  bool monitoring_ = false;
  std::vector<MonitorSample> samples_;

  bool watchdog_enabled_ = false;
  SimDuration detection_interval_ = 0;
  SimDuration redeploy_delay_ = 0;
  std::uint64_t redeploys_ = 0;

  bool failover_enabled_ = false;
  FailoverConfig failover_config_;
  std::uint64_t suspected_ = 0;
  std::uint64_t respawns_ = 0;
  std::array<std::uint64_t, kNumStages> routing_failures_{};
  std::uint64_t retired_count_ = 0;
  std::uint64_t moves_ = 0;
  std::vector<bool> machine_down_;
  std::vector<std::unique_ptr<dsp::ServiceHost>> graveyard_;

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mar::orchestra
