// Edge-native orchestrator modeled on Oakestra (paper §3.2).
//
// Responsibilities reproduced here:
//  * cluster registry of heterogeneous machines,
//  * SLA-constrained placement of service replicas,
//  * semantic addressing: senders resolve a *stage*, the orchestrator
//    round-robins across ready replicas (the paper's load balancing),
//  * hardware-only monitoring — the orchestrator samples CPU/GPU/memory
//    but cannot see application QoS (the blindness Insights I and IV
//    are about),
//  * failure detection and automatic re-deployment of dead replicas.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dsp/runtime.h"
#include "dsp/service_host.h"
#include "hw/cost_model.h"
#include "hw/machine.h"
#include "orchestra/sla.h"

namespace mar::orchestra {

using ServiceletFactory = std::function<std::unique_ptr<dsp::Servicelet>()>;

// One hardware-metric snapshot per machine (what Oakestra can see).
struct MachineSample {
  MachineId machine;
  double cpu_util = 0.0;  // normalized to total cores, [0,1]
  double gpu_util = 0.0;  // mean across GPUs, [0,1]
  std::uint64_t memory_used = 0;
};

struct MonitorSample {
  SimTime t = 0;
  std::vector<MachineSample> machines;
};

class Orchestrator final : public dsp::Router {
 public:
  explicit Orchestrator(dsp::SimRuntime& rt, Rng rng = Rng{42});
  ~Orchestrator() override;

  // --- cluster ---------------------------------------------------------
  MachineId add_machine(hw::MachineSpec spec);
  [[nodiscard]] hw::Machine& machine(MachineId id) { return *machines_.at(id.value()); }
  [[nodiscard]] std::size_t num_machines() const { return machines_.size(); }

  // --- placement -------------------------------------------------------
  // Pick a feasible machine for `sla`: GPU present and architecture
  // compatible, requested memory available; prefers the machine with
  // the fewest deployed replicas, then most free memory.
  [[nodiscard]] Result<MachineId> schedule(const ServiceSla& sla) const;

  // Deploy one replica of `stage` onto `target`.
  InstanceId deploy(Stage stage, MachineId target, dsp::HostConfig config,
                    const hw::CostModel& costs, ServiceletFactory make);

  [[nodiscard]] dsp::ServiceHost& host(InstanceId id) { return *instances_.at(id.value()).host; }
  [[nodiscard]] const dsp::ServiceHost& host(InstanceId id) const {
    return *instances_.at(id.value()).host;
  }
  [[nodiscard]] std::vector<InstanceId> instances_of(Stage stage) const;
  [[nodiscard]] std::size_t instance_count() const { return instances_.size(); }

  // --- semantic addressing (Router) -------------------------------------
  EndpointId resolve(Stage stage, const wire::FrameHeader& header) override;
  EndpointId endpoint_of(InstanceId instance) override;

  // --- monitoring --------------------------------------------------------
  void start_monitor(SimDuration interval);
  void stop_monitor();
  [[nodiscard]] const std::vector<MonitorSample>& monitor_samples() const { return samples_; }

  // --- failure handling ---------------------------------------------------
  // Watchdog: poll replica liveness every `detection_interval`; dead
  // replicas are re-deployed (restarted) after `redeploy_delay`.
  void enable_auto_restart(SimDuration detection_interval, SimDuration redeploy_delay);
  void kill_instance(InstanceId id);
  [[nodiscard]] std::uint64_t redeploy_count() const { return redeploys_; }

 private:
  struct InstanceRecord {
    Stage stage;
    MachineId machine;
    std::unique_ptr<dsp::ServiceHost> host;
    bool restart_pending = false;
  };

  void monitor_tick();
  void watchdog_tick();

  dsp::SimRuntime& rt_;
  Rng rng_;
  std::vector<std::unique_ptr<hw::Machine>> machines_;
  std::vector<InstanceRecord> instances_;
  std::array<std::uint64_t, kNumStages> rr_counters_{};

  SimDuration monitor_interval_ = 0;
  bool monitoring_ = false;
  std::vector<MonitorSample> samples_;

  bool watchdog_enabled_ = false;
  SimDuration detection_interval_ = 0;
  SimDuration redeploy_delay_ = 0;
  std::uint64_t redeploys_ = 0;

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mar::orchestra
