#include "orchestra/orchestrator.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mar::orchestra {
namespace {

void count_event(const char* name, const char* help, Stage stage) {
  telemetry::MetricRegistry::instance()
      .counter(name, help, {{"stage", std::string(to_string(stage))}})
      .inc();
}

void trace_failover(const char* what, SimTime ts, Stage stage) {
  auto& tracer = telemetry::Tracer::instance();
  if (tracer.enabled()) {
    tracer.instant(telemetry::kFaultTrack, what, ts, ClientId{0}, FrameId{0}, stage);
  }
}

void trace_ctrl(const char* what, SimTime ts, Stage stage) {
  auto& tracer = telemetry::Tracer::instance();
  if (tracer.enabled()) {
    tracer.instant(telemetry::kCtrlTrack, what, ts, ClientId{0}, FrameId{0}, stage);
  }
}

}  // namespace

Orchestrator::Orchestrator(dsp::SimRuntime& rt, Rng rng) : rt_(rt), rng_(rng) {}

Orchestrator::~Orchestrator() { *alive_ = false; }

MachineId Orchestrator::add_machine(hw::MachineSpec spec) {
  const MachineId id{static_cast<std::uint32_t>(machines_.size())};
  machines_.push_back(std::make_unique<hw::Machine>(rt_.loop(), id, std::move(spec)));
  machine_down_.push_back(false);
  return id;
}

Result<MachineId> Orchestrator::schedule(const ServiceSla& sla) const {
  const InstanceRecord* unused = nullptr;
  (void)unused;
  MachineId best = MachineId::invalid();
  std::size_t best_replicas = std::numeric_limits<std::size_t>::max();
  std::uint64_t best_free_mem = 0;

  for (const auto& m : machines_) {
    const hw::MachineSpec& spec = m->spec();
    if (sla.needs_gpu) {
      if (spec.gpus.empty()) continue;
      if (!sla.gpu_archs.empty()) {
        const bool compatible = std::any_of(
            spec.gpus.begin(), spec.gpus.end(), [&](const hw::GpuModel& g) {
              return std::find(sla.gpu_archs.begin(), sla.gpu_archs.end(), g.arch) !=
                     sla.gpu_archs.end();
            });
        if (!compatible) continue;
      }
    }
    const std::uint64_t free_mem =
        m->memory().capacity() - std::min(m->memory().capacity(), m->memory().used());
    if (free_mem < sla.memory_bytes) continue;

    const auto replicas = static_cast<std::size_t>(
        std::count_if(instances_.begin(), instances_.end(),
                      [&](const InstanceRecord& r) { return r.machine == m->id(); }));
    if (replicas < best_replicas ||
        (replicas == best_replicas && free_mem > best_free_mem)) {
      best = m->id();
      best_replicas = replicas;
      best_free_mem = free_mem;
    }
  }
  if (!best.valid()) {
    return Status{StatusCode::kResourceExhausted, "no feasible machine for SLA"};
  }
  return best;
}

InstanceId Orchestrator::deploy(Stage stage, MachineId target, dsp::HostConfig config,
                                const hw::CostModel& costs, ServiceletFactory make) {
  const InstanceId id{static_cast<std::uint32_t>(instances_.size())};
  InstanceRecord rec;
  rec.stage = stage;
  rec.machine = target;
  rec.host = std::make_unique<dsp::ServiceHost>(rt_, machine(target), id, config, costs,
                                                make(), rng_.fork());
  rec.config = config;
  rec.costs = &costs;
  rec.factory = std::move(make);
  rec.last_ack = rt_.now();
  instances_.push_back(std::move(rec));
  return id;
}

std::vector<InstanceId> Orchestrator::instances_of(Stage stage) const {
  std::vector<InstanceId> out;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].stage == stage) out.push_back(InstanceId{static_cast<std::uint32_t>(i)});
  }
  return out;
}

EndpointId Orchestrator::resolve(Stage stage, const wire::FrameHeader& header) {
  (void)header;
  // Round-robin over ready replicas: Oakestra's semantic addressing
  // gives each stage a stable service address and balances requests
  // across its instances.
  std::vector<const InstanceRecord*> ready;
  for (const auto& rec : instances_) {
    if (rec.stage != stage || rec.host->is_down()) continue;
    if (rec.draining || rec.retired) continue;
    if (machine_down_[rec.machine.value()]) continue;
    ready.push_back(&rec);
  }
  if (ready.empty()) {
    // Zero live replicas: the caller fails the frame deliberately
    // instead of sending it into the void. Counted so the fault plane
    // can report how many frames died in routing.
    ++routing_failures_[static_cast<std::size_t>(stage)];
    count_event("mar_routing_failures_total",
                "resolve() calls that found zero live replicas for a stage", stage);
    return EndpointId::invalid();
  }
  auto& counter = rr_counters_[static_cast<std::size_t>(stage)];
  const InstanceRecord* pick = ready[counter % ready.size()];
  ++counter;
  return pick->host->ingress();
}

EndpointId Orchestrator::endpoint_of(InstanceId instance) {
  if (instance.value() >= instances_.size()) return EndpointId::invalid();
  return instances_[instance.value()].host->ingress();
}

void Orchestrator::start_monitor(SimDuration interval) {
  monitor_interval_ = interval;
  if (monitoring_) return;
  monitoring_ = true;
  rt_.schedule_after(interval, [this, alive = alive_] {
    if (*alive) monitor_tick();
  });
}

void Orchestrator::stop_monitor() { monitoring_ = false; }

void Orchestrator::monitor_tick() {
  if (!monitoring_) return;
  MonitorSample sample;
  sample.t = rt_.now();
  for (const auto& m : machines_) {
    MachineSample ms;
    ms.machine = m->id();
    ms.cpu_util = m->cpu().capacity()
                      ? static_cast<double>(m->cpu().in_use()) / m->cpu().capacity()
                      : 0.0;
    double gpu_sum = 0.0;
    for (std::size_t g = 0; g < m->num_gpus(); ++g) {
      gpu_sum += static_cast<double>(m->gpu(g).in_use());
    }
    ms.gpu_util = m->num_gpus() ? gpu_sum / static_cast<double>(m->num_gpus()) : 0.0;
    ms.memory_used = m->memory().used();
    sample.machines.push_back(ms);
  }
  samples_.push_back(std::move(sample));
  rt_.schedule_after(monitor_interval_, [this, alive = alive_] {
    if (*alive) monitor_tick();
  });
}

void Orchestrator::enable_auto_restart(SimDuration detection_interval,
                                       SimDuration redeploy_delay) {
  detection_interval_ = detection_interval;
  redeploy_delay_ = redeploy_delay;
  if (watchdog_enabled_) return;
  watchdog_enabled_ = true;
  rt_.schedule_after(detection_interval_, [this, alive = alive_] {
    if (*alive) watchdog_tick();
  });
}

void Orchestrator::watchdog_tick() {
  if (!watchdog_enabled_) return;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    InstanceRecord& rec = instances_[i];
    // Replicas the failover path owns (being evicted/respawned) and
    // replicas on a down machine (reboot_machine restores those) are
    // not the watchdog's to restart.
    if (rec.host->is_down() && !rec.restart_pending && !rec.failover_pending &&
        !rec.host->is_decommissioned() && !machine_down_[rec.machine.value()]) {
      rec.restart_pending = true;
      rt_.schedule_after(redeploy_delay_, [this, i, alive = alive_] {
        if (!*alive) return;
        InstanceRecord& r = instances_[i];
        r.restart_pending = false;
        if (r.failover_pending || r.host->is_decommissioned()) return;
        r.host->restart();
        r.last_ack = rt_.now();
        ++redeploys_;
      });
    }
  }
  rt_.schedule_after(detection_interval_, [this, alive = alive_] {
    if (*alive) watchdog_tick();
  });
}

void Orchestrator::kill_instance(InstanceId id) {
  if (id.value() >= instances_.size()) return;
  instances_[id.value()].host->kill();
}

void Orchestrator::enable_failover(FailoverConfig config) {
  failover_config_ = config;
  if (failover_enabled_) return;
  failover_enabled_ = true;
  const SimTime now = rt_.now();
  for (auto& rec : instances_) rec.last_ack = now;
  telemetry::Tracer::instance().set_track_name(telemetry::kFaultTrack, "fault plane");
  rt_.schedule_after(failover_config_.heartbeat_interval, [this, alive = alive_] {
    if (*alive) heartbeat_tick();
  });
}

void Orchestrator::heartbeat_tick() {
  if (!failover_enabled_) return;
  const SimTime now = rt_.now();
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    InstanceRecord& rec = instances_[i];
    if (rec.failover_pending) continue;
    // A retired replica is down *on purpose*; resurrecting it here
    // would undo a control-plane scale-down.
    if (rec.retired) continue;
    if (!rec.host->is_down() && !machine_down_[rec.machine.value()]) {
      rec.last_ack = now;  // probe acked
      continue;
    }
    if (now - rec.last_ack < failover_config_.suspicion_timeout) continue;
    // Suspicion confirmed: evict the replica (its memory and endpoint
    // are released, in-flight traffic toward it is dropped by the
    // network) and schedule a replacement on a surviving machine.
    ++suspected_;
    rec.failover_pending = true;
    rec.host->decommission();
    count_event("mar_failover_suspected_total",
                "replicas declared dead after missing heartbeats", rec.stage);
    trace_failover(telemetry::spans::kFailover, now, rec.stage);
    rt_.schedule_after(failover_config_.respawn_delay, [this, i, alive = alive_] {
      if (*alive) respawn(i);
    });
  }
  rt_.schedule_after(failover_config_.heartbeat_interval, [this, alive = alive_] {
    if (*alive) heartbeat_tick();
  });
}

void Orchestrator::respawn(std::size_t index) {
  InstanceRecord& rec = instances_[index];
  const MachineId target = pick_respawn_target(rec);
  if (!target.valid()) {
    // Nowhere to place the replacement right now; let the heartbeat
    // re-suspect the (already decommissioned) replica and retry.
    rec.failover_pending = false;
    return;
  }
  // Park the dead replica: compute/timer callbacks already scheduled
  // against it must find the object alive (it absorbs them as no-ops).
  graveyard_.push_back(std::move(rec.host));
  rec.draining = false;  // the replacement starts with a clean slate
  rec.machine = target;
  rec.host = std::make_unique<dsp::ServiceHost>(
      rt_, machine(target), InstanceId{static_cast<std::uint32_t>(index)}, rec.config,
      *rec.costs, rec.factory(), rng_.fork());
  ++respawns_;
  count_event("mar_failover_respawn_total",
              "replicas respawned on a surviving machine after eviction", rec.stage);
  trace_failover(telemetry::spans::kFailover, rt_.now(), rec.stage);
  // Route repair is implicit: the replacement keeps its InstanceId, so
  // round-robin and endpoint_of() pins now map to the new ingress.
  const SimDuration cold = rec.costs->instance_cold_start;
  if (cold > 0) {
    // The replacement is dead-to-the-world until the image is pulled
    // and the process boots; failover_pending stays set so the
    // heartbeat does not re-suspect a replica that is still starting.
    rec.host->kill();
    rt_.schedule_after(cold, [this, index, alive = alive_] {
      if (!*alive) return;
      InstanceRecord& r = instances_[index];
      r.host->restart();
      r.last_ack = rt_.now();
      r.failover_pending = false;
    });
  } else {
    rec.last_ack = rt_.now();
    rec.failover_pending = false;
  }
}

MachineId Orchestrator::pick_respawn_target(const InstanceRecord& rec) const {
  const std::uint64_t need = rec.costs->stage(rec.config.stage).base_memory_bytes;
  const auto live_replicas_on = [this](MachineId id) {
    return static_cast<std::size_t>(
        std::count_if(instances_.begin(), instances_.end(), [&](const InstanceRecord& r) {
          return r.machine == id && !r.failover_pending && !r.host->is_decommissioned();
        }));
  };
  const auto pick = [&](bool occupied_only) {
    MachineId best = MachineId::invalid();
    std::size_t best_replicas = std::numeric_limits<std::size_t>::max();
    std::uint64_t best_free = 0;
    for (const auto& m : machines_) {
      if (machine_down_[m->id().value()]) continue;
      if (rec.config.uses_gpu && m->spec().gpus.empty()) continue;
      const std::uint64_t cap = m->memory().capacity();
      const std::uint64_t free_mem = cap - std::min(cap, m->memory().used());
      if (free_mem < need) continue;
      const std::size_t replicas = live_replicas_on(m->id());
      if (occupied_only && replicas == 0) continue;
      if (replicas < best_replicas || (replicas == best_replicas && free_mem > best_free)) {
        best = m->id();
        best_replicas = replicas;
        best_free = free_mem;
      }
    }
    return best;
  };
  if (failover_config_.prefer_occupied_machines) {
    const MachineId local = pick(/*occupied_only=*/true);
    if (local.valid()) return local;
  }
  return pick(/*occupied_only=*/false);
}

void Orchestrator::set_machine_down(MachineId m, bool down) {
  machine_down_.at(m.value()) = down;
}

bool Orchestrator::is_machine_down(MachineId m) const {
  return machine_down_.at(m.value());
}

void Orchestrator::reboot_machine(MachineId m, SimDuration down_for) {
  if (machine_down_.at(m.value())) return;  // already rebooting
  machine_down_[m.value()] = true;
  for (auto& rec : instances_) {
    if (rec.machine == m && !rec.retired) rec.host->kill();
  }
  rt_.schedule_after(down_for, [this, m, alive = alive_] {
    if (!*alive) return;
    machine_down_[m.value()] = false;
    // Cold-restart the instances still placed here; ones failover has
    // moved (or is moving) elsewhere are not ours to revive.
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      InstanceRecord& rec = instances_[i];
      if (rec.machine != m || rec.failover_pending || rec.host->is_decommissioned()) continue;
      if (!rec.host->is_down() || rec.restart_pending) continue;
      rec.restart_pending = true;
      const SimDuration cold = rec.costs != nullptr ? rec.costs->reboot_cold_start : 0;
      rt_.schedule_after(cold, [this, i, alive2 = alive_] {
        if (!*alive2) return;
        InstanceRecord& r = instances_[i];
        r.restart_pending = false;
        if (r.failover_pending || r.host->is_decommissioned()) return;
        r.host->restart();
        r.last_ack = rt_.now();
      });
    }
  });
}

void Orchestrator::begin_drain(InstanceId id) {
  if (id.value() >= instances_.size()) return;
  InstanceRecord& rec = instances_[id.value()];
  if (rec.retired || rec.host->is_decommissioned()) return;
  rec.draining = true;
}

void Orchestrator::cancel_drain(InstanceId id) {
  if (id.value() >= instances_.size()) return;
  instances_[id.value()].draining = false;
}

bool Orchestrator::is_draining(InstanceId id) const {
  if (id.value() >= instances_.size()) return false;
  return instances_[id.value()].draining;
}

void Orchestrator::retire_instance(InstanceId id) {
  if (id.value() >= instances_.size()) return;
  InstanceRecord& rec = instances_[id.value()];
  if (rec.retired) return;
  rec.retired = true;
  rec.draining = false;
  rec.failover_pending = false;
  rec.restart_pending = false;
  if (!rec.host->is_decommissioned()) rec.host->decommission();
  ++retired_count_;
}

bool Orchestrator::is_retired(InstanceId id) const {
  if (id.value() >= instances_.size()) return false;
  return instances_[id.value()].retired;
}

bool Orchestrator::move_instance(InstanceId id, MachineId target) {
  if (id.value() >= instances_.size()) return false;
  if (target.value() >= machines_.size() || machine_down_[target.value()]) return false;
  InstanceRecord& rec = instances_[id.value()];
  if (rec.retired || rec.failover_pending || rec.host->is_decommissioned()) return false;
  if (rec.machine == target) return false;
  const std::size_t index = id.value();
  rec.host->decommission();
  graveyard_.push_back(std::move(rec.host));
  rec.draining = false;
  rec.machine = target;
  rec.host = std::make_unique<dsp::ServiceHost>(rt_, machine(target), id, rec.config,
                                                *rec.costs, rec.factory(), rng_.fork());
  ++moves_;
  count_event("mar_instance_moves_total",
              "replicas rebuilt on another machine by a control-plane plan", rec.stage);
  trace_ctrl(telemetry::spans::kCtrlMove, rt_.now(), rec.stage);
  const SimDuration cold = rec.costs->instance_cold_start;
  if (cold > 0) {
    // Same contract as a failover respawn: dead-to-the-world during
    // the cold start, shielded from the heartbeat until it boots.
    rec.failover_pending = true;
    rec.host->kill();
    rt_.schedule_after(cold, [this, index, alive = alive_] {
      if (!*alive) return;
      InstanceRecord& r = instances_[index];
      if (r.retired) return;
      r.host->restart();
      r.last_ack = rt_.now();
      r.failover_pending = false;
    });
  } else {
    rec.last_ack = rt_.now();
  }
  return true;
}

std::size_t Orchestrator::live_replicas(Stage stage) const {
  std::size_t n = 0;
  for (const auto& rec : instances_) {
    if (rec.stage != stage || rec.retired || rec.draining) continue;
    if (rec.host->is_down() || machine_down_[rec.machine.value()]) continue;
    ++n;
  }
  return n;
}

std::uint64_t Orchestrator::routing_failures() const {
  std::uint64_t total = 0;
  for (const auto n : routing_failures_) total += n;
  return total;
}

}  // namespace mar::orchestra
