#include "orchestra/orchestrator.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace mar::orchestra {

Orchestrator::Orchestrator(dsp::SimRuntime& rt, Rng rng) : rt_(rt), rng_(rng) {}

Orchestrator::~Orchestrator() { *alive_ = false; }

MachineId Orchestrator::add_machine(hw::MachineSpec spec) {
  const MachineId id{static_cast<std::uint32_t>(machines_.size())};
  machines_.push_back(std::make_unique<hw::Machine>(rt_.loop(), id, std::move(spec)));
  return id;
}

Result<MachineId> Orchestrator::schedule(const ServiceSla& sla) const {
  const InstanceRecord* unused = nullptr;
  (void)unused;
  MachineId best = MachineId::invalid();
  std::size_t best_replicas = std::numeric_limits<std::size_t>::max();
  std::uint64_t best_free_mem = 0;

  for (const auto& m : machines_) {
    const hw::MachineSpec& spec = m->spec();
    if (sla.needs_gpu) {
      if (spec.gpus.empty()) continue;
      if (!sla.gpu_archs.empty()) {
        const bool compatible = std::any_of(
            spec.gpus.begin(), spec.gpus.end(), [&](const hw::GpuModel& g) {
              return std::find(sla.gpu_archs.begin(), sla.gpu_archs.end(), g.arch) !=
                     sla.gpu_archs.end();
            });
        if (!compatible) continue;
      }
    }
    const std::uint64_t free_mem =
        m->memory().capacity() - std::min(m->memory().capacity(), m->memory().used());
    if (free_mem < sla.memory_bytes) continue;

    const auto replicas = static_cast<std::size_t>(
        std::count_if(instances_.begin(), instances_.end(),
                      [&](const InstanceRecord& r) { return r.machine == m->id(); }));
    if (replicas < best_replicas ||
        (replicas == best_replicas && free_mem > best_free_mem)) {
      best = m->id();
      best_replicas = replicas;
      best_free_mem = free_mem;
    }
  }
  if (!best.valid()) {
    return Status{StatusCode::kResourceExhausted, "no feasible machine for SLA"};
  }
  return best;
}

InstanceId Orchestrator::deploy(Stage stage, MachineId target, dsp::HostConfig config,
                                const hw::CostModel& costs, ServiceletFactory make) {
  const InstanceId id{static_cast<std::uint32_t>(instances_.size())};
  InstanceRecord rec;
  rec.stage = stage;
  rec.machine = target;
  rec.host = std::make_unique<dsp::ServiceHost>(rt_, machine(target), id, config, costs,
                                                make(), rng_.fork());
  instances_.push_back(std::move(rec));
  return id;
}

std::vector<InstanceId> Orchestrator::instances_of(Stage stage) const {
  std::vector<InstanceId> out;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].stage == stage) out.push_back(InstanceId{static_cast<std::uint32_t>(i)});
  }
  return out;
}

EndpointId Orchestrator::resolve(Stage stage, const wire::FrameHeader& header) {
  (void)header;
  // Round-robin over ready replicas: Oakestra's semantic addressing
  // gives each stage a stable service address and balances requests
  // across its instances.
  std::vector<const InstanceRecord*> ready;
  for (const auto& rec : instances_) {
    if (rec.stage == stage && !rec.host->is_down()) ready.push_back(&rec);
  }
  if (ready.empty()) return EndpointId::invalid();
  auto& counter = rr_counters_[static_cast<std::size_t>(stage)];
  const InstanceRecord* pick = ready[counter % ready.size()];
  ++counter;
  return pick->host->ingress();
}

EndpointId Orchestrator::endpoint_of(InstanceId instance) {
  if (instance.value() >= instances_.size()) return EndpointId::invalid();
  return instances_[instance.value()].host->ingress();
}

void Orchestrator::start_monitor(SimDuration interval) {
  monitor_interval_ = interval;
  if (monitoring_) return;
  monitoring_ = true;
  rt_.schedule_after(interval, [this, alive = alive_] {
    if (*alive) monitor_tick();
  });
}

void Orchestrator::stop_monitor() { monitoring_ = false; }

void Orchestrator::monitor_tick() {
  if (!monitoring_) return;
  MonitorSample sample;
  sample.t = rt_.now();
  for (const auto& m : machines_) {
    MachineSample ms;
    ms.machine = m->id();
    ms.cpu_util = m->cpu().capacity()
                      ? static_cast<double>(m->cpu().in_use()) / m->cpu().capacity()
                      : 0.0;
    double gpu_sum = 0.0;
    for (std::size_t g = 0; g < m->num_gpus(); ++g) {
      gpu_sum += static_cast<double>(m->gpu(g).in_use());
    }
    ms.gpu_util = m->num_gpus() ? gpu_sum / static_cast<double>(m->num_gpus()) : 0.0;
    ms.memory_used = m->memory().used();
    sample.machines.push_back(ms);
  }
  samples_.push_back(std::move(sample));
  rt_.schedule_after(monitor_interval_, [this, alive = alive_] {
    if (*alive) monitor_tick();
  });
}

void Orchestrator::enable_auto_restart(SimDuration detection_interval,
                                       SimDuration redeploy_delay) {
  detection_interval_ = detection_interval;
  redeploy_delay_ = redeploy_delay;
  if (watchdog_enabled_) return;
  watchdog_enabled_ = true;
  rt_.schedule_after(detection_interval_, [this, alive = alive_] {
    if (*alive) watchdog_tick();
  });
}

void Orchestrator::watchdog_tick() {
  if (!watchdog_enabled_) return;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    InstanceRecord& rec = instances_[i];
    if (rec.host->is_down() && !rec.restart_pending) {
      rec.restart_pending = true;
      rt_.schedule_after(redeploy_delay_, [this, i, alive = alive_] {
        if (!*alive) return;
        instances_[i].host->restart();
        instances_[i].restart_pending = false;
        ++redeploys_;
      });
    }
  }
  rt_.schedule_after(detection_interval_, [this, alive = alive_] {
    if (*alive) watchdog_tick();
  });
}

void Orchestrator::kill_instance(InstanceId id) {
  if (id.value() >= instances_.size()) return;
  instances_[id.value()].host->kill();
}

}  // namespace mar::orchestra
