// Single-threaded epoll event loop for the live transport.
//
// One loop owns every socket of a live deployment — service ingress,
// client channels, hundreds of them if need be — replacing the
// thread-per-socket pattern the first live_udp_pipeline used. Handlers
// run inline on the loop thread (no locking anywhere), and a deadline
// timer heap drives the transport's housekeeping (NACK backoff ticks,
// reassembly GC, periodic frame capture) off the same epoll_wait call:
// the wait timeout is clamped to the nearest timer deadline, so timers
// fire without a dedicated thread and without busy-polling.
//
// Level-triggered EPOLLIN only — the transport's sockets are drained
// by their handlers (FrameChannel::poll(0) until empty), which is the
// pattern level-triggering makes safe by construction.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace mar::net {

class EpollLoop {
 public:
  using Clock = std::chrono::steady_clock;
  using Handler = std::function<void()>;

  EpollLoop() = default;
  ~EpollLoop();
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  Status init();
  [[nodiscard]] bool is_open() const { return epfd_ >= 0; }
  void close();

  // Watch `fd` for readability; `on_readable` must drain it.
  Status add(int fd, Handler on_readable);
  Status remove(int fd);
  [[nodiscard]] std::size_t watched() const { return handlers_.size(); }

  // One-shot (period == 0) or periodic timer; returns a cancel token.
  std::uint64_t schedule_after(std::chrono::milliseconds delay, Handler fn,
                               std::chrono::milliseconds period = std::chrono::milliseconds(0));
  void cancel(std::uint64_t timer_id);

  // Dispatch ready fds and due timers, waiting at most `max_wait_ms`
  // (clamped to the nearest timer deadline). Returns the number of
  // handlers fired, or -1 on epoll failure.
  int run_once(int max_wait_ms);

  // Loop until `keep_going` returns false.
  void run(const std::function<bool()>& keep_going, int max_wait_ms = 50);

  [[nodiscard]] std::uint64_t events_dispatched() const { return events_dispatched_; }
  [[nodiscard]] std::uint64_t timers_fired() const { return timers_fired_; }

 private:
  struct Timer {
    Clock::time_point deadline;
    std::chrono::milliseconds period{0};
    std::uint64_t id = 0;
    Handler fn;
  };
  // Min-heap ordering (latest deadline at front of the heap's array).
  static bool timer_later(const Timer& a, const Timer& b) {
    return a.deadline > b.deadline || (a.deadline == b.deadline && a.id > b.id);
  }
  void fire_due_timers(Clock::time_point now);

  int epfd_ = -1;
  std::unordered_map<int, Handler> handlers_;
  std::vector<Timer> timers_;  // heap by timer_later
  std::vector<std::uint64_t> cancelled_;
  std::uint64_t next_timer_id_ = 1;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t timers_fired_ = 0;
};

}  // namespace mar::net
