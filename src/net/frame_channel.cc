#include "net/frame_channel.h"

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace mar::net {
namespace {

// Live-mode hop marker: wall-clock instants on the network track, so a
// UDP deployment produces the same trace shape as the simulator.
void trace_udp(const wire::FramePacket& pkt, const char* name) {
  auto& tracer = telemetry::Tracer::instance();
  if (!tracer.enabled() || !pkt.header.trace.active()) return;
  static const bool registered = [&tracer] {
    tracer.set_track_name(telemetry::kNetworkTrack, "network");
    return true;
  }();
  (void)registered;
  tracer.instant(telemetry::kNetworkTrack, name, telemetry::trace_wallclock_now(),
                 pkt.header.client, pkt.header.frame, pkt.header.stage,
                 static_cast<double>(pkt.wire_size()), pkt.header.trace.trace_id);
}

}  // namespace

Status FrameChannel::send(const wire::FramePacket& pkt, const SockAddr& dst) {
  const std::vector<std::uint8_t> message = wire::serialize(pkt);
  const auto fragments = fragment_message(message, next_message_id_++);
  for (const auto& frag : fragments) {
    const auto result = socket_.send_to(frag, dst);
    if (!result.is_ok()) {
      ++send_errors_;
      telemetry::MetricRegistry::instance()
          .counter("mar_net_send_errors_total", "FrameChannel messages that failed mid-send")
          .inc();
      return result.status();
    }
  }
  ++sent_;
  trace_udp(pkt, telemetry::spans::kUdpTx);
  return Status::ok();
}

std::optional<FrameChannel::Received> FrameChannel::poll(int timeout_ms) {
  if (!socket_.is_open()) return std::nullopt;
  if (timeout_ms > 0 && !socket_.wait_readable(timeout_ms)) {
    reassembler_.garbage_collect();
    return std::nullopt;
  }
  while (auto datagram = socket_.receive()) {
    if (auto message = reassembler_.add(datagram->data)) {
      if (auto pkt = wire::parse(*message)) {
        ++received_;
        trace_udp(*pkt, telemetry::spans::kUdpRx);
        return Received{std::move(*pkt), datagram->from};
      }
      // Complete reassembly, undecodable bytes: corrupt or foreign
      // traffic. Counted instead of silently swallowed.
      ++parse_errors_;
      telemetry::MetricRegistry::instance()
          .counter("mar_net_parse_errors_total",
                   "reassembled messages that failed wire::parse")
          .inc();
    }
  }
  reassembler_.garbage_collect();
  return std::nullopt;
}

}  // namespace mar::net
