#include "net/frame_channel.h"

namespace mar::net {

Status FrameChannel::send(const wire::FramePacket& pkt, const SockAddr& dst) {
  const std::vector<std::uint8_t> message = wire::serialize(pkt);
  const auto fragments = fragment_message(message, next_message_id_++);
  for (const auto& frag : fragments) {
    const auto result = socket_.send_to(frag, dst);
    if (!result.is_ok()) return result.status();
  }
  ++sent_;
  return Status::ok();
}

std::optional<FrameChannel::Received> FrameChannel::poll(int timeout_ms) {
  if (!socket_.is_open()) return std::nullopt;
  if (timeout_ms > 0 && !socket_.wait_readable(timeout_ms)) {
    reassembler_.garbage_collect();
    return std::nullopt;
  }
  while (auto datagram = socket_.receive()) {
    if (auto message = reassembler_.add(datagram->data)) {
      if (auto pkt = wire::parse(*message)) {
        ++received_;
        return Received{std::move(*pkt), datagram->from};
      }
    }
  }
  reassembler_.garbage_collect();
  return std::nullopt;
}

}  // namespace mar::net
